// Filestore: the specialization the paper's conclusion weighs — "a
// computer system dedicated to just file storage and management" with
// no general-purpose user programming. Requests arrive as frames on
// the network multiplexer, a small fixed set of service processes
// executes them against the kernel's file system, and the paper's
// open questions are visible: the quota, naming-vs-protection, and
// accounting conflicts all remain even without user programs.
package main

import (
	"fmt"
	"log"

	"multics"
	"multics/internal/audit"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/uproc"
)

// Request opcodes carried in the first payload word.
const (
	opCreate = 1
	opWrite  = 2
	opRead   = 3
	opList   = 4
)

// A server executes file-store requests on behalf of one network
// connection, inside a dedicated service process.
type server struct {
	k    *multics.Kernel
	cpu  *hw.Processor
	proc *uproc.Process
	// open segment numbers by file index
	segs map[hw.Word]int
}

func (s *server) handle(data []hw.Word) (string, error) {
	if len(data) < 2 {
		return "", fmt.Errorf("short request")
	}
	op, file := data[0], data[1]
	name := fmt.Sprintf("file%d", file)
	switch op {
	case opCreate:
		if _, err := s.k.CreateFile(s.cpu, s.proc, []string{"store"}, name, multics.Public(multics.Read|multics.Write), multics.Bottom); err != nil {
			return "", err
		}
		return "created " + name, nil
	case opWrite:
		if len(data) < 4 {
			return "", fmt.Errorf("short write")
		}
		segno, err := s.open(file, name)
		if err != nil {
			return "", err
		}
		if err := s.k.Write(s.cpu, s.proc, segno, int(data[2]), data[3]); err != nil {
			return "", err
		}
		return fmt.Sprintf("wrote %s+%d", name, data[2]), nil
	case opRead:
		if len(data) < 3 {
			return "", fmt.Errorf("short read")
		}
		segno, err := s.open(file, name)
		if err != nil {
			return "", err
		}
		w, err := s.k.Read(s.cpu, s.proc, segno, int(data[2]))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s+%d = %d", name, data[2], w), nil
	case opList:
		id, err := s.k.WalkPath(s.cpu, s.proc, []string{"store"})
		if err != nil {
			return "", err
		}
		names, err := s.k.Dirs.List("fileserver.daemon", multics.Bottom, id)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d files: %v", len(names), names), nil
	default:
		return "", fmt.Errorf("bad op %d", op)
	}
}

func (s *server) open(file hw.Word, name string) (int, error) {
	if segno, ok := s.segs[file]; ok {
		return segno, nil
	}
	segno, err := s.k.OpenPath(s.cpu, s.proc, []string{"store", name})
	if err != nil {
		return 0, err
	}
	s.segs[file] = segno
	return segno, nil
}

func main() {
	k, err := multics.Boot(multics.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The fixed service processes — in a dedicated file store one
	// might fix the process count outright (the paper doubts even
	// that, but a file store gets closest).
	const nServers = 2
	var servers []*server
	for i := 0; i < nServers; i++ {
		proc, err := k.CreateProcess("fileserver.daemon", multics.Bottom)
		if err != nil {
			log.Fatal(err)
		}
		cpu := k.CPUs[i%len(k.CPUs)]
		k.Attach(cpu, proc)
		servers = append(servers, &server{k: k, cpu: cpu, proc: proc, segs: make(map[hw.Word]int)})
	}
	cpu0 := servers[0].cpu
	if _, err := k.CreateDir(cpu0, servers[0].proc, nil, "store", multics.Public(multics.Read|multics.Write), multics.Bottom); err != nil {
		log.Fatal(err)
	}

	// Requests arrive on the generic network demultiplexer — the
	// residue the redesign leaves in the kernel.
	mux := netmux.New(netmux.GenericKernel, k.Meter)
	if err := mux.Attach(netmux.Arpanet{Links: nServers}); err != nil {
		log.Fatal(err)
	}

	requests := [][]hw.Word{
		{opCreate, 0},
		{opCreate, 1},
		{opWrite, 0, 5, 111},
		{opWrite, 1, 2048, 222},
		{opRead, 0, 5},
		{opRead, 1, 2048},
		{opRead, 0, 9000}, // a hole: zero
		{opList, 0},
	}
	for i, req := range requests {
		link := i % nServers
		// Frame the request ARPANET-style (leader parity word).
		var parity hw.Word
		for _, w := range req {
			parity ^= w
		}
		frame := netmux.Frame{Channel: link, Payload: append([]hw.Word{parity & 1}, req...)}
		if err := mux.Deliver(cpu0, "arpanet", frame); err != nil {
			log.Fatal(err)
		}
		d, ok := mux.Receive("arpanet", link)
		if !ok {
			log.Fatal("no delivery")
		}
		reply, err := servers[link].handle(d.Data)
		if err != nil {
			reply = "error: " + err.Error()
		}
		fmt.Printf("req %d via link %d: %s\n", i, link, reply)
	}

	fmt.Printf("\nnetwork kernel residue: %d lines; file store ran with %d fixed service processes\n",
		mux.KernelLines(), nServers)

	// Even here, the paper's conflicts remain: storage accounting
	// still moves on reads of zero pages, quota still charges, and
	// the audit still has the whole kernel to cover.
	report := audit.Run(k)
	if report.Clean() {
		fmt.Println("post-workload audit: clean")
	} else {
		fmt.Print(report)
	}
	fmt.Println("\n(the paper estimates specializing the kernel to this configuration")
	fmt.Println(" would shed at most another 15-25% of its bulk — most removable")
	fmt.Println(" function is already out)")
}
