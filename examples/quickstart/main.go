// Quickstart: boot Kernel/Multics, create a user process, build a
// little hierarchy with a quota directory, write and read a file
// through the full fault machinery, and print what the kernel did.
package main

import (
	"fmt"
	"log"

	"multics"
	"multics/internal/hw"
)

func main() {
	// A small machine: 96 page frames, 8 of them wired for core
	// segments, 8 virtual processors, two disk packs.
	k, err := multics.Boot(multics.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted; kernel dependency structure verified loop-free")

	// A user process, attached to the first simulated CPU.
	p, err := k.CreateProcess("alice.sys", multics.Bottom)
	if err != nil {
		log.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)

	// A home directory, designated a quota directory of 50 pages.
	homeID, err := k.CreateDir(cpu, p, nil, "alice", multics.Owner("alice.sys"), multics.Bottom)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.DesignateQuota(cpu, p, homeID, 50); err != nil {
		log.Fatal(err)
	}

	// A file, written through the quota-exception growth path and
	// read back through the missing-page path.
	if _, err := k.CreateFile(cpu, p, []string{"alice"}, "notes", nil, multics.Bottom); err != nil {
		log.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"alice", "notes"})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(100+i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		w, err := k.Read(cpu, p, segno, i*hw.PageWords)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("page %d word 0 = %d\n", i, w)
	}

	// Quota accounting is live.
	limit, used, err := k.Dirs.QuotaInfo(homeID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quota: %d of %d pages used under >alice\n", used, limit)

	st := k.Frames.Stats()
	fmt.Printf("kernel: %d faults, %d evictions, %d zero pages reclaimed, %d simulated cycles\n",
		st.Faults, st.Evictions, st.ZeroEvictions, k.Meter.Cycles())
}
