// Securefs: the multilevel-secure file store the project aimed the
// kernel at. Demonstrates the Access Isolation Mechanism (sensitivity
// levels and compartments), the Bratt naming semantics (probing an
// inaccessible directory reveals nothing), and the zero-page
// accounting covert channel the paper identifies as a confinement
// violation.
package main

import (
	"fmt"
	"log"

	"multics"
	"multics/internal/aim"
	"multics/internal/hw"
)

func main() {
	cfg := multics.DefaultConfig()
	cfg.MemFrames = 16 // small memory so zero pages get evicted
	cfg.WiredFrames = 8
	k, err := multics.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}

	secret := aim.Label{Level: aim.Secret}

	// An intelligence analyst cleared to Secret and an uncleared
	// clerk.
	analyst, err := k.CreateProcess("analyst.intel", secret)
	if err != nil {
		log.Fatal(err)
	}
	clerk, err := k.CreateProcess("clerk.admin", multics.Bottom)
	if err != nil {
		log.Fatal(err)
	}
	cpuA, cpuC := k.CPUs[0], k.CPUs[1]
	k.Attach(cpuA, analyst)
	k.Attach(cpuC, clerk)

	// The analyst builds a Secret vault inside an unclassified
	// directory (creating the entry is an unclassified act; the
	// vault's label dominates its container's).
	low, err := k.CreateProcess("analyst.intel", multics.Bottom)
	if err != nil {
		log.Fatal(err)
	}
	k.Attach(cpuA, low)
	vaultID, err := k.CreateDir(cpuA, low, nil, "vault", multics.Public(multics.Read|multics.Write), secret)
	if err != nil {
		log.Fatal(err)
	}
	_ = vaultID
	k.Attach(cpuA, analyst)
	// The dossier's own ACL names only the analyst — a permissive
	// ACL would still let lower processes open it for blind append
	// (the *-property allows write up), confirming its existence.
	if _, err := k.CreateFile(cpuA, analyst, []string{"vault"}, "dossier", multics.Owner("analyst.intel"), secret); err != nil {
		log.Fatal(err)
	}
	segno, err := k.OpenPath(cpuA, analyst, []string{"vault", "dossier"})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Write(cpuA, analyst, segno, 0, 0o1234); err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyst (Secret) wrote the dossier")

	// No read up: the clerk's open of the Secret file is denied with
	// the same bare answer a nonexistent file would get.
	_, errReal := k.OpenPath(cpuC, clerk, []string{"vault", "dossier"})
	_, errFake := k.OpenPath(cpuC, clerk, []string{"vault", "no-such-file"})
	fmt.Printf("clerk opens existing secret:    %v\n", errReal)
	fmt.Printf("clerk opens nonexistent secret: %v\n", errFake)
	if errReal.Error() == errFake.Error() {
		fmt.Println("=> the two answers are identical: existence is not confirmed")
	}

	// No write down: the analyst cannot write unclassified files
	// while operating at Secret.
	if _, err := k.CreateFile(cpuC, clerk, nil, "memo", multics.Public(multics.Read|multics.Write), multics.Bottom); err != nil {
		log.Fatal(err)
	}
	memoSeg, err := k.OpenPath(cpuA, analyst, []string{"memo"})
	if err == nil {
		err = k.Write(cpuA, analyst, memoSeg, 0, 1)
	}
	fmt.Printf("analyst (Secret) writes unclassified memo: %v\n", err)

	// The confinement violation (paper, final case study): reading
	// a page of all zeros allocates storage and updates accounting —
	// information written by a pure read, observable below.
	if _, err := k.CreateFile(cpuC, clerk, nil, "ledger", multics.Public(multics.Read|multics.Write), multics.Bottom); err != nil {
		log.Fatal(err)
	}
	lseg, err := k.OpenPath(cpuC, clerk, []string{"ledger"})
	if err != nil {
		log.Fatal(err)
	}
	// Touch page 0 (never written), then flood memory so it is
	// reclaimed as a zero page.
	if _, err := k.Read(cpuC, clerk, lseg, 0); err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := k.Write(cpuC, clerk, lseg, i*hw.PageWords, 1); err != nil {
			log.Fatal(err)
		}
	}
	rootEntry, err := k.Dirs.Status("clerk.admin", multics.Bottom, k.Dirs.RootID())
	if err != nil {
		log.Fatal(err)
	}
	_, before, err := k.Cells.Info(rootEntry.Addr)
	if err != nil {
		log.Fatal(err)
	}
	// A high-clearance reader now READS the zero page...
	hseg, err := k.OpenPath(cpuA, analyst, []string{"ledger"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Read(cpuA, analyst, hseg, 0); err != nil {
		log.Fatal(err)
	}
	_, after, err := k.Cells.Info(rootEntry.Addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quota count before the secret read: %d, after: %d\n", before, after)
	if after > before {
		fmt.Println("=> a pure READ caused an accounting WRITE visible at a lower label:")
		fmt.Println("   the zero-page storage optimization violates confinement (Lampson 1973),")
		fmt.Println("   exactly as the paper's final case study describes.")
	}
}
