// Timesharing: a full computer-utility session. Users log in through
// the split answering service (authentication in the small trusted
// part), get processes scheduled by the two-level multiplexer, link
// to a shared library through the user-ring dynamic linker, receive
// terminal traffic through the generic network demultiplexer, and are
// accounted for at logout.
package main

import (
	"fmt"
	"log"

	"multics"
	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/hw"
	"multics/internal/linker"
	"multics/internal/netmux"
	"multics/internal/uproc"
)

func main() {
	k, err := multics.Boot(multics.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The split answering service: only the authentication residue
	// is trusted.
	svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		return k.CreateProcess(principal, label)
	})
	for _, u := range []struct{ name, pw string }{
		{"alice.sys", "m00n"}, {"bob.dev", "s3cret"}, {"carol.ops", "pa55"},
	} {
		if err := svc.Register(u.name, u.pw, aim.Top); err != nil {
			log.Fatal(err)
		}
	}

	// A failed login reveals nothing about which part was wrong.
	if _, err := svc.Login("mallory.x", "guess", multics.Bottom); err != nil {
		fmt.Println("mallory:", err)
	}

	// Three real sessions.
	var sessions []*answering.Session
	for _, u := range []struct{ name, pw string }{
		{"alice.sys", "m00n"}, {"bob.dev", "s3cret"}, {"carol.ops", "pa55"},
	} {
		sess, err := svc.Login(u.name, u.pw, multics.Bottom)
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, sess)
		fmt.Printf("%s logged in (trusted answering-service residue: %d lines)\n",
			u.name, answering.KernelLines(answering.Split))
	}

	// A shared library; each user links to it dynamically from the
	// user ring.
	alice := sessions[0].Process.(*uproc.Process)
	cpu := k.CPUs[0]
	k.Attach(cpu, alice)
	if _, err := k.CreateDir(cpu, alice, nil, "lib", multics.Public(multics.Read|multics.Write), multics.Bottom); err != nil {
		log.Fatal(err)
	}
	for _, sym := range []string{"sqrt_", "sort_", "format_"} {
		if _, err := k.CreateFile(cpu, alice, []string{"lib"}, sym, multics.Public(multics.Read|multics.Execute), multics.Bottom); err != nil {
			log.Fatal(err)
		}
	}
	for _, sess := range sessions {
		p := sess.Process.(*uproc.Process)
		k.Attach(cpu, p)
		l := linker.New(linker.UserRing, k.Meter, func(symbol string) (linker.Target, error) {
			segno, err := k.OpenPath(cpu, p, []string{"lib", symbol})
			return linker.Target{Segno: segno}, err
		})
		lk := linker.NewLinkage()
		for _, sym := range []string{"sqrt_", "sort_", "format_"} {
			if _, err := l.Reference(cpu, lk, sym); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s snapped %d links (%d link faults)\n", sess.Principal, lk.Snapped(), l.Faults())
	}

	// Terminal traffic through the generic demultiplexer.
	mux := netmux.New(netmux.GenericKernel, k.Meter)
	if err := mux.Attach(netmux.FrontEnd{Terminals: 8}); err != nil {
		log.Fatal(err)
	}
	if err := mux.Attach(netmux.Arpanet{Links: 4}); err != nil {
		log.Fatal(err)
	}
	for term := 0; term < 3; term++ {
		frame := netmux.Frame{Channel: term, Payload: []hw.Word{'h', 'i', 0o777}}
		if err := mux.Deliver(cpu, "front-end", frame); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("delivered %d terminal blocks; network kernel residue: %d lines for %d networks\n",
		mux.Delivered(), mux.KernelLines(), len(mux.Networks()))

	// A scheduling mix over the two-level multiplexer.
	n, err := k.Procs.RunQuantum(9, func(p *uproc.Process) { p.AddCPU(7) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler ran %d quanta over %d processes on %d virtual processors\n",
		n, k.Procs.Count(), k.VProcs.N())

	// Logout with accounting.
	for _, sess := range sessions {
		p := sess.Process.(*uproc.Process)
		if err := svc.Logout(sess, p.CPU()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\naccounting records:")
	for _, r := range svc.Records() {
		fmt.Printf("    %-12s login-cost=%5d cyc  cpu=%d cyc\n", r.Principal, r.LoginCycles, r.CPUUsed)
	}
}
