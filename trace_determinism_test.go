// Determinism of the meters: two kernels booted with the same
// configuration and driven through the same workload must produce
// byte-identical event streams and identical snapshots. This is the
// property that makes the trace usable as evidence — a cycle
// attribution that varied from run to run could not support the
// paper-style performance arguments, and a diff of two traces could
// not localize a behavior change.
package multics

import (
	"fmt"
	"reflect"
	"testing"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/directory"
	"multics/internal/fnp"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/schedsim"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// traceWorkloads drive every instrumented subsystem. The single-CPU
// workloads run single-goroutine so the event order is fully
// determined; the smp workloads run several simulated processors under
// the deterministic executor, whose seeded schedule makes the
// multi-CPU event order just as reproducible.
var traceWorkloads = []struct {
	name string
	cfg  func(*Config)
	run  func(t *testing.T, k *Kernel)
}{
	{
		name: "fault-storm",
		cfg:  func(c *Config) { c.MemFrames = 24; c.WiredFrames = 8 },
		run: func(t *testing.T, k *Kernel) {
			cpu, p := traceProcess(t, k)
			segno := traceFile(t, k, p, nil, "hot")
			for i := 0; i < 24; i++ {
				if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				if _, err := k.Read(cpu, p, segno, (i%24)*hw.PageWords); err != nil {
					t.Fatal(err)
				}
			}
		},
	},
	{
		// A sequential scan of a freshly-deactivated file: the disk
		// pipeline's queue/issue/hit events, the elevator's seek-cost
		// attribution, and the second-chance cache's bookkeeping must
		// replay byte-identically — with read-ahead actually firing,
		// or the workload exercises nothing.
		name: "sequential-readahead",
		cfg:  func(c *Config) { c.MemFrames = 64; c.WiredFrames = 8 },
		run: func(t *testing.T, k *Kernel) {
			cpu, p := traceProcess(t, k)
			segno := traceFile(t, k, p, nil, "scan")
			for i := 0; i < 24; i++ {
				if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			e, err := p.KST().Entry(segno)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Segs.Deactivate(e.UID); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 24; i++ {
				got, err := k.Read(cpu, p, segno, i*hw.PageWords)
				if err != nil {
					t.Fatal(err)
				}
				if got != hw.Word(i+1) {
					t.Fatalf("page %d reads %d, want %d", i, got, i+1)
				}
			}
			if st := k.Frames.Stats(); st.PrefetchHits == 0 {
				t.Fatal("sequential scan produced no read-ahead hits")
			}
		},
	},
	{
		name: "directory-tree-walks",
		run: func(t *testing.T, k *Kernel) {
			cpu, p := traceProcess(t, k)
			var path []string
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("d%d", i)
				if _, err := k.CreateDir(cpu, p, path, name, directory.Public(hw.Read|hw.Write), Bottom); err != nil {
					t.Fatal(err)
				}
				path = append(path, name)
			}
			traceFile(t, k, p, path, "leaf")
			for i := 0; i < 20; i++ {
				if _, err := k.WalkPath(cpu, p, append(append([]string{}, path...), "leaf")); err != nil {
					t.Fatal(err)
				}
			}
		},
	},
	{
		name: "scheduler-quanta",
		run: func(t *testing.T, k *Kernel) {
			for i := 0; i < 4; i++ {
				if _, err := k.CreateProcess(fmt.Sprintf("u%d.x", i), Bottom); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := k.Procs.RunQuantum(30, func(*uproc.Process) {}); err != nil {
				t.Fatal(err)
			}
		},
	},
	{
		// Re-references served by the associative memory, then enough
		// growth to force evictions and their shootdown clears: the
		// hit/miss/clear events and the cache contents themselves must
		// replay identically.
		name: "assoc-re-reference",
		cfg:  func(c *Config) { c.MemFrames = 24; c.WiredFrames = 8 },
		run: func(t *testing.T, k *Kernel) {
			cpu, p := traceProcess(t, k)
			segno := traceFile(t, k, p, nil, "warm")
			for i := 0; i < 8; i++ {
				if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 40; r++ {
				for i := 0; i < 8; i++ {
					if _, err := k.Read(cpu, p, segno, i*hw.PageWords+r%hw.PageWords); err != nil {
						t.Fatal(err)
					}
				}
			}
			cold := traceFile(t, k, p, nil, "cold")
			for i := 0; i < 24; i++ {
				if err := k.Write(cpu, p, cold, i*hw.PageWords, hw.Word(i+1)); err != nil {
					t.Fatal(err)
				}
			}
		},
	},
	{
		name: "quota-growth-truncate",
		run: func(t *testing.T, k *Kernel) {
			cpu, p := traceProcess(t, k)
			segno := traceFile(t, k, p, nil, "grow")
			for i := 0; i < 30; i++ {
				if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := k.Truncate(cpu, p, segno, 4); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+100)); err != nil {
					t.Fatal(err)
				}
			}
		},
	},
	{
		// Two booted kernels joined by the inter-node channel. The
		// traced kernel's side of a remote segment read and copy — the
		// demux crossings, the internode connection table's frame and
		// credit events, and the local write faults of the copy — must
		// replay byte-identically, as must a burst of terminal frames
		// through the front-end connection plane.
		name: "remote-segment",
		run: func(t *testing.T, k *Kernel) {
			node, err := k.AttachFNP(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			// The second node is untraced scaffolding: it publishes a
			// file the traced node pulls across the link.
			rcfg := DefaultConfig()
			rcfg.RootQuota = 10000
			rk, err := Boot(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := rk.AttachFNP(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			link, err := Connect(node, remote)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := rk.CreateProcess("pub.x", Bottom)
			if err != nil {
				t.Fatal(err)
			}
			rcpu := rk.CPUs[0]
			rk.Attach(rcpu, rp)
			if _, err := rk.CreateFile(rcpu, rp, nil, "published", Public(Read|Write), Bottom); err != nil {
				t.Fatal(err)
			}
			rseg, err := rk.OpenPath(rcpu, rp, []string{"published"})
			if err != nil {
				t.Fatal(err)
			}
			const n = 32
			for i := 0; i < n; i++ {
				if err := rk.Write(rcpu, rp, rseg, i, hw.Word(0o400*i+3)); err != nil {
					t.Fatal(err)
				}
			}
			got, err := link.RemoteRead([]string{"published"}, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != hw.Word(0o400*i+3) {
					t.Fatalf("remote read word %d = %o, want %o", i, got[i], 0o400*i+3)
				}
			}
			cpu, p := traceProcess(t, k)
			segno := traceFile(t, k, p, nil, "mirror")
			moved, err := link.RemoteCopy(cpu, p, []string{"published"}, 0, n, segno, 0)
			if err != nil {
				t.Fatal(err)
			}
			if moved != n {
				t.Fatalf("copied %d words, want %d", moved, n)
			}
			for i := 0; i < n; i++ {
				w, err := k.Read(cpu, p, segno, i)
				if err != nil || w != hw.Word(0o400*i+3) {
					t.Fatalf("copied word %d = %o (%v), want %o", i, w, err, 0o400*i+3)
				}
			}
			// A burst of terminal frames through the traced node's
			// front-end plane: frame, delivery and credit events.
			for i := 0; i < 6; i++ {
				f := netmux.Frame{Channel: i, Payload: []hw.Word{hw.Word(i + 1), 0o777}}
				if err := node.Mux.Deliver(nil, "front-end", f); err != nil {
					t.Fatal(err)
				}
			}
			seen := 0
			for sh := 0; sh < node.Terminals.Shards(); sh++ {
				node.Terminals.Drain(sh, func(fnp.Delivery) { seen++ })
			}
			if seen != 6 {
				t.Fatalf("drained %d terminal frames, want 6", seen)
			}
		},
	},
	{
		// Two simulated processors running the paging storm under the
		// deterministic executor: cross-CPU faults, evictions and
		// shootdowns must produce byte-identical streams run over run.
		name: "smp2-sim-storm",
		cfg:  func(c *Config) { c.Processors = 2; c.MemFrames = 24; c.WiredFrames = 8 },
		run:  func(t *testing.T, k *Kernel) { simTraceStorm(t, k, 2) },
	},
	{
		name: "smp4-sim-storm",
		cfg:  func(c *Config) { c.Processors = 4; c.MemFrames = 28; c.WiredFrames = 8 },
		run:  func(t *testing.T, k *Kernel) { simTraceStorm(t, k, 4) },
	},
	{
		// A miniature login storm through the answering service on
		// two processors under the deterministic executor: the
		// sharded run queues, block/wake churn over the real-memory
		// queue, and the logout flood must replay byte-identically.
		name: "login-storm",
		cfg:  func(c *Config) { c.Processors = 2; c.RootQuota = 10000 },
		run: func(t *testing.T, k *Kernel) {
			svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
				return k.CreateProcess(principal, label)
			})
			_, err := svc.RunStorm(answering.StormConfig{
				Users:          12,
				Rounds:         2,
				QuantaPerRound: 16,
				BlockEvery:     3,
			}, k.StormOps(uproc.SimExecutor{Seed: 1977}, k.CPUs))
			if err != nil {
				t.Fatal(err)
			}
		},
	},
	{
		// The scheduler's quantum loop on two processors under the
		// pluggable deterministic executor.
		name: "smp2-sim-quanta",
		cfg:  func(c *Config) { c.Processors = 2 },
		run: func(t *testing.T, k *Kernel) {
			for i := 0; i < 4; i++ {
				if _, err := k.CreateProcess(fmt.Sprintf("u%d.x", i), Bottom); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := k.Procs.RunQuantumWith(uproc.SimExecutor{Seed: 1977}, k.CPUs, 15, nil); err != nil {
				t.Fatal(err)
			}
		},
	},
}

// simTraceStorm drives one oscillating writer per processor as
// cooperative tasks of a seeded deterministic executor.
func simTraceStorm(t *testing.T, k *Kernel, nCPU int) {
	t.Helper()
	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		segno int
	}
	var ws []*worker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("det%d.x", i), Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		name := fmt.Sprintf("det%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, Bottom); err != nil {
			t.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, &worker{cpu: cpu, p: p, segno: segno})
	}
	ex := schedsim.New(schedsim.Config{Name: "trace-storm", Seed: 1977})
	for wi, w := range ws {
		wi, w := wi, w
		ex.Go(fmt.Sprintf("cpu%d", w.cpu.ID), func() {
			defer trace.BindCPU(w.cpu.ID)()
			for r := 0; r < 3; r++ {
				for pg := 0; pg < 6; pg++ {
					off := pg * hw.PageWords
					v := hw.Word(1 + wi*100 + r)
					if err := k.Write(w.cpu, w.p, w.segno, off, v); err != nil {
						panic(fmt.Sprintf("write: %v", err))
					}
					got, err := k.Read(w.cpu, w.p, w.segno, off)
					if err != nil {
						panic(fmt.Sprintf("read: %v", err))
					}
					if got != v {
						panic(fmt.Sprintf("lost write: page %d read %d, want %d", pg, got, v))
					}
					if err := k.Write(w.cpu, w.p, w.segno, off, 0); err != nil {
						panic(fmt.Sprintf("re-zero: %v", err))
					}
				}
			}
		})
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
}

func traceProcess(t *testing.T, k *Kernel) (*hw.Processor, *uproc.Process) {
	t.Helper()
	p, err := k.CreateProcess("det.x", Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	return cpu, p
}

func traceFile(t *testing.T, k *Kernel, p *uproc.Process, dir []string, name string) int {
	t.Helper()
	cpu := k.CPUs[0]
	if _, err := k.CreateFile(cpu, p, dir, name, nil, Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, append(append([]string{}, dir...), name))
	if err != nil {
		t.Fatal(err)
	}
	return segno
}

// TestTraceDeterminism boots each workload twice from identical
// configurations and requires byte-identical event streams and deeply
// equal snapshots.
func TestTraceDeterminism(t *testing.T) {
	for _, w := range traceWorkloads {
		t.Run(w.name, func(t *testing.T) {
			runOnce := func() (string, string, string, trace.Snapshot) {
				cfg := DefaultConfig()
				cfg.RootQuota = 10000
				cfg.TraceEvents = 1 << 14
				if w.cfg != nil {
					w.cfg(&cfg)
				}
				k, err := Boot(cfg)
				if err != nil {
					t.Fatal(err)
				}
				w.run(t, k)
				if unknown := k.Trace.Unknown(); len(unknown) > 0 {
					t.Errorf("events from modules outside the dependency graph: %v", unknown)
				}
				if m := k.Trace.SpanMismatches(); m != 0 {
					t.Errorf("%d span ends without a matching begin: instrumentation bug", m)
				}
				// The associative-memory contents are part of the
				// determinism surface: identical runs must leave
				// byte-identical cache state, not just event streams.
				return trace.FormatEvents(k.Trace.Events()), trace.FormatSpans(k.Trace.Spans()), k.AssocFingerprint(), k.Trace.Snapshot()
			}
			events1, spans1, assoc1, snap1 := runOnce()
			events2, spans2, assoc2, snap2 := runOnce()
			if events1 == "" {
				t.Fatal("workload emitted no events")
			}
			if spans1 == "" {
				t.Fatal("workload completed no spans")
			}
			if events1 != events2 {
				t.Errorf("event streams differ between identical runs:\nrun1:\n%srun2:\n%s", events1, events2)
			}
			if spans1 != spans2 {
				t.Errorf("span streams differ between identical runs:\nrun1:\n%srun2:\n%s", spans1, spans2)
			}
			if assoc1 != assoc2 {
				t.Errorf("associative memories differ between identical runs:\nrun1:\n%srun2:\n%s", assoc1, assoc2)
			}
			if !reflect.DeepEqual(snap1, snap2) {
				t.Errorf("snapshots differ between identical runs:\nrun1:\n%srun2:\n%s", snap1.PromText(), snap2.PromText())
			}
		})
	}
}
