// Command kerneltrace boots a Kernel/Multics instance with event
// tracing on, runs a representative workload (directory building,
// pathname walks, a page-fault storm heavy enough to force eviction,
// scheduling, truncation, and an audit pass), and prints the meters:
// a sample of the kernel event stream, the per-module
// cycle-attribution table in certification order, and the
// Prometheus-style exposition lines.
//
// It exits non-zero if any event arrived with a module name that is
// not registered in the kernel dependency graph — the cheap lint
// that instrumentation stays in sync with internal/deps.
//
// With -kind the printed sample is restricted to the named event
// kinds (comma-separated); -kinds alone lists every kind the tracer
// knows, including the associative-memory triple (assoc-hit,
// assoc-miss, assoc-clear) added with the translation cache.
//
// With -spans the report adds the latency observatory: per
// (module, span kind) log₂ latency histograms with p50/p99/max (the
// percentiles are bucket upper bounds, deterministic overestimates of
// at most 2×) and a critical-path decomposition showing where each
// compound operation's cycles went. With -flame the command instead
// emits the retained spans in collapsed-stack format for standard
// flamegraph tooling and prints nothing else.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"multics/internal/aim"
	"multics/internal/audit"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// eventSample is how many trailing events of the stream are printed.
const eventSample = 25

// kindHelp documents the event kinds that deserve more than their
// name; everything else is self-describing.
var kindHelp = map[string]string{
	"assoc-hit":      "translation served by the processor's associative memory (arg0 segno, arg1 page)",
	"assoc-miss":     "translation walked the descriptor tables and filled the cache (arg0 segno, arg1 page)",
	"assoc-clear":    "associative entries invalidated (arg0: 0 page shootdown, 1 segment shootdown, 2 process switch; arg1 page/segno or -1; arg2 entries cleared)",
	"write-error":    "a grouped page write-back failed after retries and its evicted pages were lost (arg0 pages in the submission, arg1 first record address)",
	"disk-queue":     "a transfer joined a pack's elevator queue (arg0 first record, arg1 queue depth at submission, arg2: 1 speculative read-ahead, 0 demand read or write batch)",
	"prefetch-issue": "a speculative read for a predicted-next page was queued into the second-chance cache (arg0 record, arg1 page)",
	"prefetch-hit":   "a demand fault claimed a prefetched frame and skipped its disk read (arg0 record, arg1 page)",
	"prefetch-drop":  "a speculative entry was discarded unclaimed (arg0 record, arg1 page, arg2: 0 transfer fault, 1 stale identity, 2 second-chance steal)",
	"net-frame":      "a frame cleared the demultiplexer or landed in a connection's ring (arg0 channel/connection, arg1 payload words, arg2: 1 handed straight to a subscriber, 0 queued)",
	"net-drop":       "a frame was lost, never silently (arg0 channel/connection, arg1: 0 bounded queue full, 1 protocol error, 2 connection out of credits; arg2 depth or credits)",
	"net-credit":     "a consumer returned a flow-control credit, reopening one window slot on its line (arg0 connection, arg1 credits after)",
	"remote-seg":     "the inter-node channel moved segment words (arg0: 0 read served/returned, 1 copy; arg1 words, arg2 link channel)",
}

// kindNames lists every event kind the tracer can emit or filter on.
func kindNames() []string {
	names := make([]string, 0, trace.NumKinds)
	for i := 0; i < trace.NumKinds; i++ {
		names = append(names, trace.Kind(i).String())
	}
	return names
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: kerneltrace [-kind k1,k2,...] [-kinds]\n\n")
	fmt.Fprintf(flag.CommandLine.Output(), "Boots a traced kernel, runs a representative workload, and prints the\nevent stream sample, the per-module cycle table, and Prometheus lines.\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), "\nevent kinds:\n")
	for _, name := range kindNames() {
		if help, ok := kindHelp[name]; ok {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", name, help)
		} else {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", name)
		}
	}
}

func main() {
	kindFilter := flag.String("kind", "", "restrict the printed event sample to these comma-separated kinds")
	listKinds := flag.Bool("kinds", false, "list the event kinds and exit")
	showSpans := flag.Bool("spans", false, "print span latency histograms and the critical-path decomposition")
	flame := flag.Bool("flame", false, "emit folded-stack (flamegraph) lines for the workload's spans and exit")
	flag.Usage = usage
	flag.Parse()
	if *listKinds {
		for _, name := range kindNames() {
			if help, ok := kindHelp[name]; ok {
				fmt.Printf("%-14s %s\n", name, help)
			} else {
				fmt.Println(name)
			}
		}
		return
	}
	wanted, err := parseKinds(*kindFilter)
	check(err)

	cfg := core.DefaultConfig()
	cfg.TraceEvents = 1 << 15
	k, err := core.Boot(cfg)
	check(err)
	rec := k.Trace

	if *flame {
		workload(k)
		fmt.Print(trace.FoldedStacks(rec.Spans()))
		failOnUnknown(rec)
		return
	}

	fmt.Println("kerneltrace: kernel-wide event tracing and per-module meters")
	fmt.Println()

	workload(k)

	report := audit.Run(k)
	fmt.Printf("audit: clean=%v, %d findings, audit pass itself cost %d cycles\n\n", report.Clean(), len(report.Findings), report.Cycles)

	events := rec.Events()
	emitted := int(rec.Snapshot().Events)
	retained := len(events)
	if wanted != nil {
		var kept []trace.Event
		for _, e := range events {
			if wanted[e.Kind] {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	n := len(events)
	sample := min(eventSample, n)
	if wanted != nil {
		fmt.Printf("event stream: %d events emitted, %d retained, %d overwritten; %d match -kind %s, last %d:\n",
			emitted, retained, int(rec.Dropped()), n, *kindFilter, sample)
	} else {
		fmt.Printf("event stream: %d events emitted, %d retained, %d overwritten; last %d:\n",
			emitted, retained, int(rec.Dropped()), sample)
	}
	fmt.Println("         seq      cycle kind          module                     cost  args")
	fmt.Print(trace.FormatEvents(events[n-sample:]))
	fmt.Println()

	snap := rec.Snapshot()
	fmt.Print(snap.Table(k.CertificationOrder()))
	fmt.Println()
	if *showSpans {
		printSpans(rec, snap)
		fmt.Println()
	}
	fmt.Print(snap.PromText())

	failOnUnknown(rec)
}

func failOnUnknown(rec *trace.Recorder) {
	if unknown := rec.Unknown(); len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "kerneltrace: events arrived from modules not in the dependency graph: %v\n", unknown)
		os.Exit(1)
	}
}

// printSpans renders the latency observatory: the per-(module, kind)
// histograms and a decomposition of each compound operation's cycles
// into its child spans' shares, computed from the retained spans.
func printSpans(rec *trace.Recorder, snap trace.Snapshot) {
	keys := make([]trace.SpanKey, 0, len(snap.Spans))
	for key := range snap.Spans {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Module != keys[j].Module {
			return keys[i].Module < keys[j].Module
		}
		return keys[i].Kind < keys[j].Kind
	})
	fmt.Println("span latency by (module, kind) — p50/p99 are log2 bucket upper bounds:")
	for _, key := range keys {
		h := snap.Spans[key]
		fmt.Printf("    %-26s %-13s %6d spans %10d cyc (self %10d)  p50 %7d  p99 %7d  max %7d\n",
			key.Module, key.Kind, h.Count, h.Cycles, h.Self(), h.Percentile(0.50), h.Percentile(0.99), h.Max)
	}

	// Aggregate, over the retained spans, each (module, kind)'s total
	// cycles and its children's contributions, to show where the time
	// inside each compound operation went.
	spans := rec.Spans()
	byID := make(map[uint64]*trace.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	total := make(map[trace.SpanKey]int64)
	childOf := make(map[trace.SpanKey]map[string]int64)
	for i := range spans {
		sp := &spans[i]
		key := trace.SpanKey{Module: sp.Module, Kind: sp.Kind}
		total[key] += sp.Cycles()
		if parent, ok := byID[sp.Parent]; ok {
			pk := trace.SpanKey{Module: parent.Module, Kind: parent.Kind}
			if childOf[pk] == nil {
				childOf[pk] = make(map[string]int64)
			}
			childOf[pk][sp.Module+":"+sp.Kind.String()] += sp.Cycles()
		}
	}
	fmt.Println()
	fmt.Println("critical-path decomposition (share of each compound operation, from retained spans):")
	for _, key := range keys {
		kids := childOf[key]
		tot := total[key]
		if len(kids) == 0 || tot <= 0 {
			continue
		}
		names := make([]string, 0, len(kids))
		var inKids int64
		for name, cyc := range kids {
			names = append(names, name)
			inKids += cyc
		}
		// Largest share first; ties by name for determinism.
		sort.Slice(names, func(i, j int) bool {
			if kids[names[i]] != kids[names[j]] {
				return kids[names[i]] > kids[names[j]]
			}
			return names[i] < names[j]
		})
		parts := make([]string, 0, len(names)+1)
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%.1f%% %s", 100*float64(kids[name])/float64(tot), name))
		}
		self := tot - inKids
		if self > 0 {
			parts = append(parts, fmt.Sprintf("%.1f%% self", 100*float64(self)/float64(tot)))
		}
		fmt.Printf("    %s %s = %s\n", key.Module, key.Kind, strings.Join(parts, " + "))
	}
}

// workload exercises every instrumented path: gates and pathname
// walks, quota-charged growth, enough paging pressure to evict,
// rereads that fetch from disk, the two-level scheduler, truncation,
// and eventcount/IPC traffic.
func workload(k *core.Kernel) {
	cpu := k.CPUs[0]
	p, err := k.CreateProcess("tracer.sys", aim.Bottom)
	check(err)
	k.Attach(cpu, p)

	// A small tree, walked in the user ring: gate crossings per
	// component.
	var path []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("d%d", i)
		_, err := k.CreateDir(cpu, p, path, name, directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		path = append(path, name)
	}

	// Three segments grown past primary memory: quota checks on
	// every added page, then evictions with disk write-backs.
	var segnos []int
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("f%d", f)
		_, err := k.CreateFile(cpu, p, path, name, nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), name))
		check(err)
		segnos = append(segnos, segno)
		for i := 0; i < 40; i++ {
			check(k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(f*100+i+1)))
		}
	}
	// Reread everything: missing-page faults served from disk.
	for _, segno := range segnos {
		for i := 0; i < 40; i++ {
			_, err := k.Read(cpu, p, segno, i*hw.PageWords)
			check(err)
		}
	}

	// Truncate one segment: quota released.
	check(k.Truncate(cpu, p, segnos[0], 5))

	// The two-level scheduler: dispatches, process swaps, queue
	// messages.
	for i := 0; i < 3; i++ {
		_, err := k.CreateProcess(fmt.Sprintf("user%d.x", i), aim.Bottom)
		check(err)
	}
	_, err = k.Procs.RunQuantum(20, func(*uproc.Process) {})
	check(err)
}

// parseKinds resolves a comma-separated kind list to a filter set; an
// empty list means no filtering (nil set).
func parseKinds(list string) (map[trace.Kind]bool, error) {
	if list == "" {
		return nil, nil
	}
	byName := make(map[string]trace.Kind, trace.NumKinds)
	for i := 0; i < trace.NumKinds; i++ {
		byName[trace.Kind(i).String()] = trace.Kind(i)
	}
	wanted := make(map[trace.Kind]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		k, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown event kind %q (valid: %s)", name, strings.Join(kindNames(), ", "))
		}
		wanted[k] = true
	}
	return wanted, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kerneltrace:", err)
		os.Exit(1)
	}
}
