// Command kerneltrace boots a Kernel/Multics instance with event
// tracing on, runs a representative workload (directory building,
// pathname walks, a page-fault storm heavy enough to force eviction,
// scheduling, truncation, and an audit pass), and prints the meters:
// a sample of the kernel event stream, the per-module
// cycle-attribution table in certification order, and the
// Prometheus-style exposition lines.
//
// It exits non-zero if any event arrived with a module name that is
// not registered in the kernel dependency graph — the cheap lint
// that instrumentation stays in sync with internal/deps.
package main

import (
	"fmt"
	"os"

	"multics/internal/aim"
	"multics/internal/audit"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// eventSample is how many trailing events of the stream are printed.
const eventSample = 25

func main() {
	cfg := core.DefaultConfig()
	cfg.TraceEvents = 1 << 15
	k, err := core.Boot(cfg)
	check(err)
	rec := k.Trace

	fmt.Println("kerneltrace: kernel-wide event tracing and per-module meters")
	fmt.Println()

	workload(k)

	report := audit.Run(k)
	fmt.Printf("audit: clean=%v, %d findings, audit pass itself cost %d cycles\n\n", report.Clean(), len(report.Findings), report.Cycles)

	events := rec.Events()
	n := len(events)
	sample := min(eventSample, n)
	fmt.Printf("event stream: %d events emitted, %d retained, %d overwritten; last %d:\n",
		int(rec.Snapshot().Events), n, int(rec.Dropped()), sample)
	fmt.Println("         seq      cycle kind          module                     cost  args")
	fmt.Print(trace.FormatEvents(events[n-sample:]))
	fmt.Println()

	snap := rec.Snapshot()
	fmt.Print(snap.Table(k.CertificationOrder()))
	fmt.Println()
	fmt.Print(snap.PromText())

	if unknown := rec.Unknown(); len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "kerneltrace: events arrived from modules not in the dependency graph: %v\n", unknown)
		os.Exit(1)
	}
}

// workload exercises every instrumented path: gates and pathname
// walks, quota-charged growth, enough paging pressure to evict,
// rereads that fetch from disk, the two-level scheduler, truncation,
// and eventcount/IPC traffic.
func workload(k *core.Kernel) {
	cpu := k.CPUs[0]
	p, err := k.CreateProcess("tracer.sys", aim.Bottom)
	check(err)
	k.Attach(cpu, p)

	// A small tree, walked in the user ring: gate crossings per
	// component.
	var path []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("d%d", i)
		_, err := k.CreateDir(cpu, p, path, name, directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		path = append(path, name)
	}

	// Three segments grown past primary memory: quota checks on
	// every added page, then evictions with disk write-backs.
	var segnos []int
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("f%d", f)
		_, err := k.CreateFile(cpu, p, path, name, nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), name))
		check(err)
		segnos = append(segnos, segno)
		for i := 0; i < 40; i++ {
			check(k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(f*100+i+1)))
		}
	}
	// Reread everything: missing-page faults served from disk.
	for _, segno := range segnos {
		for i := 0; i < 40; i++ {
			_, err := k.Read(cpu, p, segno, i*hw.PageWords)
			check(err)
		}
	}

	// Truncate one segment: quota released.
	check(k.Truncate(cpu, p, segnos[0], 5))

	// The two-level scheduler: dispatches, process swaps, queue
	// messages.
	for i := 0; i < 3; i++ {
		_, err := k.CreateProcess(fmt.Sprintf("user%d.x", i), aim.Bottom)
		check(err)
	}
	_, err = k.Procs.RunQuantum(20, func(*uproc.Process) {})
	check(err)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kerneltrace:", err)
		os.Exit(1)
	}
}
