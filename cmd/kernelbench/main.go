// Command kernelbench runs the performance comparisons of the paper's
// evaluation against the deterministic cycle meter and prints
// paper-claim versus measured-shape for each:
//
//	P1 linker in kernel vs user ring     (paper: somewhat slower out)
//	P2 name manager in vs out            (paper: somewhat faster out)
//	P3 answering service split           (paper: about 3% slower)
//	P4 memory manager asm vs PL/I        (paper: code twice as slow)
//	P5 page-fault path baseline vs new   (paper: negative, not significant)
//	P6 quota static cell vs dynamic walk (depth sweep)
//	P7 network kernel bulk per networks  (paper: linear vs nearly flat)
//	P8 scheduler one-level vs two-level  (paper: about the same)
//	P9 fault-storm cycle attribution     (the meters, per module)
//	P10 parallel speedup                 (1/2/4 processors, makespan)
//	P11 associative memory               (translation cache on/off)
//	P12 login storm                      (1k/10k users; O(1) dispatch)
//	P13 fault-service latency            (span p50/p99/max, 1/2/4 CPUs)
//	P14 deterministic parallel storm     (sim executor; gated SMP cycles)
//	P15 disk pipeline fault storm        (1/2/4 CPUs x 1/2/4 packs; gated)
//	P16 connection storm                 (10k/100k/1M lines; O(1) cyc/conn)
//
// Every comparison is also written machine-readable to the path named
// by -json (default BENCH_kernel.json; empty disables). With
// -compare OLD.json the run diffs its cycle figures against a previous
// report and exits non-zero when any has regressed by more than 10%,
// so a committed baseline turns the benchmark into a gate.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/baseline"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/fnp"
	"multics/internal/hw"
	"multics/internal/linker"
	"multics/internal/lockrank"
	"multics/internal/netmux"
	"multics/internal/pageframe"
	"multics/internal/schedsim"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// A benchResult is one comparison's machine-readable form.
type benchResult struct {
	Name    string         `json:"name"`
	Metrics map[string]any `json:"metrics"`
}

var results []benchResult

// record keeps one comparison's numbers for the JSON report.
func record(name string, metrics map[string]any) {
	results = append(results, benchResult{Name: name, Metrics: metrics})
}

func main() {
	jsonPath := flag.String("json", "BENCH_kernel.json", "write machine-readable results to this path (empty disables)")
	comparePath := flag.String("compare", "", "diff cycle figures against this previous report; exit non-zero on a >10% regression")
	flag.Parse()
	fmt.Println("kernelbench: deterministic simulated-cycle comparisons")
	fmt.Println()
	p1()
	p2()
	p3()
	p4()
	p5()
	p6()
	p7()
	p8()
	p9()
	p10()
	p11()
	p12()
	p13()
	p14()
	p15()
	p16()
	if *jsonPath != "" {
		out, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
		check(err)
		check(os.WriteFile(*jsonPath, append(out, '\n'), 0o644))
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	if *comparePath != "" {
		if !compare(*comparePath) {
			os.Exit(1)
		}
	}
}

// compare diffs every cycle-denominated figure of this run against the
// report at path and reports whether the run is free of regressions
// beyond 10%. Figures are matched by benchmark name and metric path,
// so reordering or adding benchmarks does not misalign the diff.
func compare(path string) bool {
	oldRaw, err := os.ReadFile(path)
	check(err)
	var oldDoc any
	check(json.Unmarshal(oldRaw, &oldDoc))
	// Round-trip the fresh results through JSON so both sides flatten
	// from the same generic shape.
	newRaw, err := json.Marshal(map[string]any{"benchmarks": results})
	check(err)
	var newDoc any
	check(json.Unmarshal(newRaw, &newDoc))
	oldCyc := make(map[string]float64)
	newCyc := make(map[string]float64)
	cycleLeaves("", oldDoc, oldCyc)
	cycleLeaves("", newDoc, newCyc)
	const tolerance = 1.10
	regressed := 0
	compared := 0
	for key, old := range oldCyc {
		now, ok := newCyc[key]
		if !ok || old <= 0 {
			continue
		}
		compared++
		if now > old*tolerance {
			fmt.Printf("REGRESSION %s: %.0f -> %.0f cycles (%+.1f%%)\n", key, old, now, 100*(now-old)/old)
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Printf("kernelbench: %d of %d cycle figures regressed more than 10%% vs %s\n", regressed, compared, path)
		return false
	}
	fmt.Printf("compared %d cycle figures against %s: no regression beyond 10%%\n", compared, path)
	return true
}

// cycleLeaves collects every numeric leaf whose key mentions cycles,
// keyed by its path. Array elements carrying a "name" field (the
// benchmark list) are keyed by that name instead of their index.
// Makespan figures and leaves suffixed _smp are skipped:
// multiprocessor storms run on real goroutines, so which processor
// pays a grouped write-back (and hence the per-processor maximum or a
// latency tail) varies a few percent run to run — gating on them
// would make the comparison flaky. Every serial cycle figure,
// including the P11 translation-cycle pair and the P13 1-processor
// latency percentiles, is deterministic and kept.
func cycleLeaves(path string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, v2 := range x {
			cycleLeaves(path+"/"+k, v2, out)
		}
	case []any:
		for i, v2 := range x {
			key := fmt.Sprintf("%d", i)
			if m, ok := v2.(map[string]any); ok {
				if n, ok := m["name"].(string); ok {
					key = n
				}
			}
			cycleLeaves(path+"/"+key, v2, out)
		}
	case float64:
		parts := strings.Split(path, "/")
		leaf := strings.ToLower(parts[len(parts)-1])
		if strings.Contains(leaf, "cycles") && !strings.Contains(leaf, "makespan") && !strings.HasSuffix(leaf, "_smp") {
			out[path] = x
		}
	}
}

func bootKernel(mutate func(*core.Config)) *core.Kernel {
	cfg := core.DefaultConfig()
	cfg.RootQuota = 100000
	cfg.Packs = []core.PackSpec{{ID: "dska", Records: 8192}, {ID: "dskb", Records: 8192}}
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := core.Boot(cfg)
	check(err)
	return k
}

func bootBase(mutate func(*baseline.Config)) *baseline.Supervisor {
	cfg := baseline.DefaultConfig()
	cfg.RootQuota = 100000
	cfg.Packs = cfg.Packs[:0]
	cfg.Packs = append(cfg.Packs, struct {
		ID      string
		Records int
	}{"dska", 8192}, struct {
		ID      string
		Records int
	}{"dskb", 8192})
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := baseline.BootBaseline(cfg)
	check(err)
	return s
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
}

func ratio(a, b int64) string {
	return fmt.Sprintf("%+.1f%%", 100*float64(a-b)/float64(b))
}

func p1() {
	cost := func(mode linker.Mode) int64 {
		k := bootKernel(nil)
		p, err := k.CreateProcess("u.x", aim.Bottom)
		check(err)
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		_, err = k.CreateDir(cpu, p, nil, "lib", directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		for i := 0; i < 32; i++ {
			_, err = k.CreateFile(cpu, p, []string{"lib"}, fmt.Sprintf("s%d_", i), directory.Public(hw.Read|hw.Execute), aim.Bottom)
			check(err)
		}
		l := linker.New(mode, k.Meter, func(sym string) (linker.Target, error) {
			segno, err := k.OpenPath(cpu, p, []string{"lib", sym})
			return linker.Target{Segno: segno}, err
		})
		k.Meter.Reset()
		lk := linker.NewLinkage()
		for i := 0; i < 32; i++ {
			_, err := l.Reference(cpu, lk, fmt.Sprintf("s%d_", i))
			check(err)
		}
		return k.Meter.Cycles() / 32
	}
	in, out := cost(linker.InKernel), cost(linker.UserRing)
	fmt.Printf("P1 linker snap:        in-kernel %6d cyc, user-ring %6d cyc (%s)  [paper: somewhat slower when removed]\n",
		in, out, ratio(out, in))
	record("P1 linker snap", map[string]any{"in_kernel_cycles": in, "user_ring_cycles": out})
}

func p2() {
	k := bootKernel(nil)
	p, err := k.CreateProcess("u.x", aim.Bottom)
	check(err)
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	var path []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("d%d", i)
		_, err := k.CreateDir(cpu, p, path, name, directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		path = append(path, name)
	}
	_, err = k.CreateFile(cpu, p, path, "leaf", directory.Public(hw.Read), aim.Bottom)
	check(err)
	full := append(path, "leaf")
	k.Meter.Reset()
	for i := 0; i < 100; i++ {
		_, err := k.WalkPath(cpu, p, full)
		check(err)
	}
	walk := k.Meter.Cycles() / 100
	k.Meter.Reset()
	for i := 0; i < 100; i++ {
		_, err := k.ResolveKernel(cpu, p, full)
		check(err)
	}
	buried := k.Meter.Cycles() / 100
	fmt.Printf("P2 pathname resolve:   in-kernel %6d cyc, user-ring %6d cyc (%s)  [paper: somewhat faster when removed]\n",
		buried, walk, ratio(walk, buried))
	record("P2 pathname resolve", map[string]any{"in_kernel_cycles": buried, "user_ring_cycles": walk})
}

func p3() {
	cost := func(mode answering.Mode) int64 {
		meter := &hw.CostMeter{}
		svc := answering.New(mode, meter, func(string, aim.Label) (any, error) { return 1, nil })
		check(svc.Register("u.x", "pw", aim.Top))
		meter.Reset()
		for i := 0; i < 50; i++ {
			sess, err := svc.Login("u.x", "pw", aim.Bottom)
			check(err)
			check(svc.Logout(sess, 1))
		}
		return meter.Cycles() / 50
	}
	mono, split := cost(answering.Monolithic), cost(answering.Split)
	fmt.Printf("P3 login:              monolithic %4d cyc, split %4d cyc (%s)  [paper: about 3%% slower]\n",
		mono, split, ratio(split, mono))
	record("P3 login", map[string]any{"monolithic_cycles": mono, "split_cycles": split})
}

func p4() {
	factor := float64(hw.BodyCycles(1000, hw.PLI)) / 1000
	fmt.Printf("P4 PL/I recode:        algorithm body x%.1f instructions (hw.BodyCycles model)  [paper: somewhat more than a factor of two]\n",
		factor)
	record("P4 PL/I recode", map[string]any{"instruction_factor": factor})
}

func faultStorm(k *core.Kernel) int64 {
	p, err := k.CreateProcess("u.x", aim.Bottom)
	check(err)
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	_, err = k.CreateFile(cpu, p, nil, "hot", nil, aim.Bottom)
	check(err)
	segno, err := k.OpenPath(cpu, p, []string{"hot"})
	check(err)
	for i := 0; i < 32; i++ {
		check(k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)))
	}
	start := k.Meter.Snapshot()
	for i := 0; i < 200; i++ {
		_, err := k.Read(cpu, p, segno, (i%32)*hw.PageWords)
		check(err)
	}
	return k.Meter.Since(start) / 200
}

func p5() {
	s := bootBase(func(c *baseline.Config) { c.MemFrames = 24; c.WiredFrames = 8 })
	check(s.Create("u.x", "hot", false))
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "hot")
	check(err)
	for i := 0; i < 32; i++ {
		check(s.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)))
	}
	s.Meter.Reset()
	for i := 0; i < 200; i++ {
		_, err := s.Read(cpu, p, segno, (i%32)*hw.PageWords)
		check(err)
	}
	base := s.Meter.Cycles() / 200
	kern := faultStorm(bootKernel(func(c *core.Config) { c.MemFrames = 24; c.WiredFrames = 8 }))
	fmt.Printf("P5 page-fault path:    1974 %5d cyc, kernel %5d cyc (%s)  [paper: negative, not significant]\n",
		base, kern, ratio(kern, base))
	record("P5 page-fault path", map[string]any{"baseline_cycles": base, "kernel_cycles": kern})
}

func p6() {
	fmt.Println("P6 quota growth (cycles per charged page):")
	var rows []map[string]any
	for _, depth := range []int{1, 2, 4, 8, 16} {
		k := bootKernel(nil)
		p, err := k.CreateProcess("u.x", aim.Bottom)
		check(err)
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		var path []string
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("d%d", i)
			_, err := k.CreateDir(cpu, p, path, name, directory.Public(hw.Read|hw.Write), aim.Bottom)
			check(err)
			path = append(path, name)
		}
		_, err = k.CreateFile(cpu, p, path, "f", nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), "f"))
		check(err)
		k.Meter.Reset()
		for i := 0; i < 50; i++ {
			check(k.Write(cpu, p, segno, i*hw.PageWords, 1))
		}
		kern := k.Meter.Cycles() / 50

		s := bootBase(nil)
		bp := ""
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("d%d", i)
			if bp == "" {
				bp = name
			} else {
				bp += ">" + name
			}
			check(s.Create("u.x", bp, true))
		}
		check(s.Create("u.x", bp+">f", false))
		proc := s.CreateProcess("u.x")
		bcpu := s.CPUs[0]
		s.Attach(bcpu, proc)
		bsegno, err := s.Open(proc, bp+">f")
		check(err)
		s.Meter.Reset()
		for i := 0; i < 50; i++ {
			check(s.Write(bcpu, proc, bsegno, i*hw.PageWords, 1))
		}
		base := s.Meter.Cycles() / 50
		fmt.Printf("    depth %2d: static cell %5d cyc, dynamic walk %5d cyc\n", depth, kern, base)
		rows = append(rows, map[string]any{"depth": depth, "static_cell_cycles": kern, "dynamic_walk_cycles": base})
	}
	fmt.Println("    [paper: the static binding removes the upward search entirely]")
	record("P6 quota growth", map[string]any{"per_depth": rows})
}

func p7() {
	fmt.Println("P7 network kernel bulk (source lines) by attached networks:")
	var rows []map[string]any
	for n := 1; n <= 6; n++ {
		per, gen := netmux.KernelLines(netmux.PerNetworkKernel, n), netmux.KernelLines(netmux.GenericKernel, n)
		fmt.Printf("    %d networks: per-network-in-kernel %6d lines, generic %5d lines\n", n, per, gen)
		rows = append(rows, map[string]any{"networks": n, "per_network_lines": per, "generic_lines": gen})
	}
	fmt.Println("    [paper: 7,000 lines shrink below 1,000 and grow only slightly per network]")
	record("P7 network kernel bulk", map[string]any{"per_networks": rows})
}

func p8() {
	s := bootBase(nil)
	for i := 0; i < 4; i++ {
		s.CreateProcess("u.x")
	}
	s.Meter.Reset()
	_, err := s.RunQuantum(100, func(*baseline.Process) {})
	check(err)
	one := s.Meter.Cycles() / 100

	k := bootKernel(nil)
	for i := 0; i < 4; i++ {
		_, err := k.CreateProcess("u.x", aim.Bottom)
		check(err)
	}
	k.Meter.Reset()
	_, err = k.Procs.RunQuantum(100, func(*uproc.Process) {})
	check(err)
	two := k.Meter.Cycles() / 100
	fmt.Printf("P8 scheduler quantum:  one-level %4d cyc, two-level %4d cyc (%s)  [paper: about the same]\n",
		one, two, ratio(two, one))
	record("P8 scheduler quantum", map[string]any{"one_level_cycles": one, "two_level_cycles": two})
}

// p9 reruns the P5 fault storm on a traced kernel and attributes its
// cycles module by module: the meters say where the page-fault path
// actually spends its time.
func p9() {
	fmt.Println("P9 fault-storm cycle attribution (event tracing on):")
	k := bootKernel(func(c *core.Config) {
		c.MemFrames = 24
		c.WiredFrames = 8
		c.TraceEvents = 1 << 14
	})
	before := k.Trace.Snapshot()
	faultStorm(k)
	diff := k.Trace.Snapshot().Since(before)
	fmt.Print(diff.Table(k.CertificationOrder()))
	record("P9 fault-storm attribution", map[string]any{"table": diff.Table(k.CertificationOrder())})
}

// p10 measures true-multiprocessor throughput on a paging- and
// quota-heavy workload. A fixed amount of work — rounds of growing a
// file page by page under quota, reading it back, and truncating it —
// is divided among 1, 2 and 4 simulated processors running on real
// goroutines; the figure of merit is the simulated makespan: the
// busiest processor's cycle account (lock waits cost no simulated
// cycles, so this is the ideal-hardware speedup; the rank checker is
// off, as a release build would have it).
func p10() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	fmt.Println("P10 parallel speedup (fixed work, simulated makespan = busiest processor's cycles):")
	const (
		totalRounds = 192
		pages       = 8
	)
	var base int64
	var rows []map[string]any
	for _, nCPU := range []int{1, 2, 4} {
		makespan, ops := parallelStorm(nCPU, totalRounds, pages, false)
		speedup := 1.0
		if base == 0 {
			base = makespan
		} else {
			speedup = float64(base) / float64(makespan)
		}
		fmt.Printf("    %d processors: %9d cyc makespan over %d rounds  speedup x%.2f\n", nCPU, makespan, ops, speedup)
		rows = append(rows, map[string]any{"processors": nCPU, "makespan_cycles": makespan, "rounds": ops, "speedup": speedup})
	}
	fmt.Println("    [design: distinct processes on distinct processors under lattice-ranked locks]")
	record("P10 parallel speedup", map[string]any{"per_processors": rows})
}

// parallelStorm boots an nCPU kernel and drives totalRounds rounds of
// the paging+quota workload, split evenly across the processors, each
// worker against its own quota directory. It returns the makespan —
// the maximum per-processor cycle account — and the rounds run.
func parallelStorm(nCPU, totalRounds, pages int, assocOff bool) (int64, int) {
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		c.MemFrames = 48 // pressure enough that pages cycle through disk
		c.WiredFrames = 8
		c.AssocOff = assocOff
	})
	ops := runStorm(k, nCPU, totalRounds, pages)
	var makespan int64
	for i := 0; i < nCPU; i++ {
		if c := k.Meter.CPUCycles(i); c > makespan {
			makespan = c
		}
	}
	return makespan, ops
}

// A stormWorker is one processor's process and private quota-bound
// file in the parallel paging+quota workload.
type stormWorker struct {
	cpu   *hw.Processor
	p     *uproc.Process
	segno int
}

// stormWorkers creates one worker per processor, each against its own
// quota directory.
func stormWorkers(k *core.Kernel, nCPU int) []*stormWorker {
	var workers []*stormWorker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("par%d.x", i), aim.Bottom)
		check(err)
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		dir := fmt.Sprintf("w%d", i)
		id, err := k.CreateDir(cpu, p, nil, dir, directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		check(k.DesignateQuota(cpu, p, id, 4096))
		_, err = k.CreateFile(cpu, p, []string{dir}, "f", nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, []string{dir, "f"})
		check(err)
		workers = append(workers, &stormWorker{cpu: cpu, p: p, segno: segno})
	}
	return workers
}

// stormRound runs one round of the workload for one worker: grow the
// file page by page under quota, read it back, truncate it away.
func stormRound(k *core.Kernel, wi int, w *stormWorker, r, pages int) {
	for pg := 0; pg < pages; pg++ {
		check(k.Write(w.cpu, w.p, w.segno, pg*hw.PageWords+r%hw.PageWords, hw.Word(wi+1)))
	}
	for pg := 0; pg < pages; pg++ {
		_, err := k.Read(w.cpu, w.p, w.segno, pg*hw.PageWords+r%hw.PageWords)
		check(err)
	}
	check(k.Truncate(w.cpu, w.p, w.segno, 0))
}

// runStorm drives the parallel paging+quota workload on an
// already-booted kernel and returns the rounds run.
func runStorm(k *core.Kernel, nCPU, totalRounds, pages int) int {
	workers := stormWorkers(k, nCPU)
	rounds := totalRounds / nCPU
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *stormWorker) {
			defer wg.Done()
			defer trace.BindCPU(w.cpu.ID)()
			for r := 0; r < rounds; r++ {
				stormRound(k, wi, w, r, pages)
			}
		}(wi, w)
	}
	wg.Wait()
	return rounds * nCPU
}

// p11 measures the associative memory two ways. First, a single
// processor re-references a resident working set: with the cache off
// every reference walks the descriptor tables (CycTableWalk); with it
// on the re-references hit (CycAssocHit), and the processor's own
// translation meter shows the cycles saved. Second, the P10 fault
// storm reruns on 1, 2 and 4 processors with the cache on and off: the
// on-configuration pays the shootdown broadcasts but keeps the fast
// path, and the makespans show the net effect under real contention.
func p11() {
	fmt.Println("P11 associative memory (per-processor SDW/PTW cache):")
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	reReference := func(assocOff bool) (xlatCycles int64, stats pageframe.Stats) {
		k := bootKernel(func(c *core.Config) { c.AssocOff = assocOff })
		p, err := k.CreateProcess("u.x", aim.Bottom)
		check(err)
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		_, err = k.CreateFile(cpu, p, nil, "hot", nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, []string{"hot"})
		check(err)
		const pages = 16 // resident throughout: re-references, not faults
		for i := 0; i < pages; i++ {
			check(k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)))
		}
		_, start := cpu.TranslationStats()
		for r := 0; r < 400; r++ {
			_, err := k.Read(cpu, p, segno, (r%pages)*hw.PageWords+r%hw.PageWords)
			check(err)
		}
		_, end := cpu.TranslationStats()
		return end - start, k.Frames.Stats()
	}
	onCycles, onStats := reReference(false)
	offCycles, _ := reReference(true)
	hitRate := 0.0
	if total := onStats.AssocHits + onStats.AssocMisses; total > 0 {
		hitRate = float64(onStats.AssocHits) / float64(total)
	}
	fmt.Printf("    re-reference translation cycles: cache on %6d, off %6d (x%.1f saved); hit rate %.1f%% (%d hits, %d misses)\n",
		onCycles, offCycles, float64(offCycles)/float64(onCycles), 100*hitRate, onStats.AssocHits, onStats.AssocMisses)
	metrics := map[string]any{
		"re_reference_cache_on_translation_cycles":  onCycles,
		"re_reference_cache_off_translation_cycles": offCycles,
		"translation_speedup":                       float64(offCycles) / float64(onCycles),
		"hits":                                      onStats.AssocHits,
		"misses":                                    onStats.AssocMisses,
		"hit_rate":                                  hitRate,
	}
	var rows []map[string]any
	for _, nCPU := range []int{1, 2, 4} {
		on, _ := parallelStorm(nCPU, 192, 8, false)
		off, _ := parallelStorm(nCPU, 192, 8, true)
		fmt.Printf("    %d-processor fault-storm makespan: cache on %9d cyc, off %9d cyc (%s)\n",
			nCPU, on, off, ratio(on, off))
		rows = append(rows, map[string]any{
			"processors":               nCPU,
			"makespan_cycles_cache_on": on, "makespan_cycles_cache_off": off,
		})
	}
	fmt.Println("    [6180 hardware: the associative memory absorbs the descriptor re-fetches; shootdowns keep it coherent]")
	metrics["smp_makespan"] = rows
	record("P11 associative memory", metrics)
}

// p12 drives the answering service's login storm through the sharded
// scheduler: 1k and 10k users register, log in, timeshare through
// rounds of quanta with block/wake churn over the real-memory queue,
// and log out, on 1, 2 and 4 processors. The figures of merit are the
// per-login cycle cost, the dispatch cost per quantum — which stays
// flat as the user count grows tenfold, the O(1) run-queue claim —
// and the time-to-first-quantum tail, each process's creation to its
// first dispatch. The 1-processor runs are single goroutines and
// hence deterministic; their figures feed the -compare gate, while
// the multiprocessor rows carry _smp keys the gate skips.
func p12() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	fmt.Println("P12 login storm (sharded run queues, work stealing, eventcount wakeups):")
	var rows []map[string]any
	for _, users := range []int{1000, 10000} {
		for _, nCPU := range []int{1, 2, 4} {
			rows = append(rows, loginStorm(users, nCPU))
		}
	}
	fmt.Println("    [the per-quantum dispatch cost holds flat from 1k to 10k users: O(1) run-queue dispatch]")
	record("P12 login storm", map[string]any{"per_config": rows})
}

// loginStorm runs one P12 configuration and returns its report row.
// Primary memory is sized so the process states stay resident: the
// figures measure the scheduler, not the pager.
func loginStorm(users, nCPU int) map[string]any {
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		c.ASTPages = (users+256)/128 + 2 // an ASTE per resident process state
		c.WiredFrames = c.ASTPages + 6
		c.MemFrames = users + 512 + c.WiredFrames
		c.Packs = []core.PackSpec{{ID: "dska", Records: 16384}, {ID: "dskb", Records: 16384}}
	})
	var procs []*uproc.Process
	svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		p, err := k.CreateProcess(principal, label)
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
		return p, nil
	})
	ops := k.StormOps(uproc.GoroutineExecutor{}, k.CPUs)
	inner := ops.RunQuanta
	var quantaCycles int64
	ops.RunQuanta = func(n int, body func(any)) (int, error) {
		start := k.Meter.Snapshot()
		ran, err := inner(n, body)
		quantaCycles += k.Meter.Since(start)
		return ran, err
	}
	st, err := svc.RunStorm(answering.StormConfig{
		Users:          users,
		Rounds:         2,
		QuantaPerRound: 2*users/nCPU + 32,
		BlockEvery:     97,
	}, ops)
	check(err)
	stats := k.Procs.SchedStats()
	var loginSum int64
	for _, r := range svc.Records() {
		loginSum += r.LoginCycles
	}
	loginPer := loginSum / int64(st.Logins)
	var ttfq []int64
	for _, p := range procs {
		if fr := p.FirstRunCycle(); fr >= 0 {
			ttfq = append(ttfq, fr-p.CreatedCycle())
		}
	}
	sort.Slice(ttfq, func(i, j int) bool { return ttfq[i] < ttfq[j] })
	pct := func(q float64) int64 {
		if len(ttfq) == 0 {
			return 0
		}
		return ttfq[int(q*float64(len(ttfq)-1))]
	}
	var perQuantum int64
	if stats.Dispatches > 0 {
		perQuantum = quantaCycles / stats.Dispatches
	}
	fmt.Printf("    %5d users %d cpu: login %5d cyc/user, dispatch %4d cyc/quantum, ttfq p50 %9d p99 %9d max %9d cyc, %5d steals, depth %d\n",
		users, nCPU, loginPer, perQuantum, pct(0.50), pct(0.99), ttfq[len(ttfq)-1], stats.Steals, stats.MaxQueueDepth)
	row := map[string]any{
		"users": users, "processors": nCPU,
		"dispatches": stats.Dispatches, "first_quanta": len(ttfq),
		"steals": stats.Steals, "migrations": stats.Migrations,
		"donations": stats.Donations, "wakeups": stats.Wakeups,
		"blocked": st.Blocked, "woken": st.Woken,
		"max_queue_depth": stats.MaxQueueDepth,
	}
	if nCPU == 1 {
		row["login_cycles_per_user"] = loginPer
		row["dispatch_cycles_per_quantum"] = perQuantum
		row["ttfq_p50_cycles"] = pct(0.50)
		row["ttfq_p99_cycles"] = pct(0.99)
		row["ttfq_max_cycles"] = ttfq[len(ttfq)-1]
	} else {
		row["login_cycles_per_user_smp"] = loginPer
		row["dispatch_cycles_per_quantum_smp"] = perQuantum
		row["ttfq_p50_cycles_smp"] = pct(0.50)
		row["ttfq_p99_cycles_smp"] = pct(0.99)
		row["ttfq_max_cycles_smp"] = ttfq[len(ttfq)-1]
	}
	return row
}

// p13 measures fault-service latency with the span tracer on: the P10
// fault storm reruns at 1, 2 and 4 processors, and the page frame
// manager's fault-service histogram yields p50/p99/max. The
// 1-processor figures are byte-deterministic (spans are stamped from
// the simulated cycle clock) and feed the -compare regression gate;
// the multiprocessor tails depend on real goroutine interleaving and
// are recorded under _smp keys the gate skips, like the makespans.
func p13() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	fmt.Println("P13 fault-service latency (log2-bucketed span histograms over the fault storm):")
	var rows []map[string]any
	for _, nCPU := range []int{1, 2, 4} {
		k := latencyStorm(nCPU)
		snap := k.Trace.Snapshot()
		h := snap.Spans[trace.SpanKey{Module: pageframe.ModuleName, Kind: trace.SpanFaultService}]
		p50, p99 := h.Percentile(0.50), h.Percentile(0.99)
		fmt.Printf("    %d processors: p50 %7d cyc  p99 %7d cyc  max %7d cyc  over %d fault services\n",
			nCPU, p50, p99, h.Max, h.Count)
		row := map[string]any{"processors": nCPU, "services": h.Count}
		if nCPU == 1 {
			row["p50_cycles"] = p50
			row["p99_cycles"] = p99
			row["max_cycles"] = h.Max
		} else {
			row["p50_cycles_smp"] = p50
			row["p99_cycles_smp"] = p99
			row["max_cycles_smp"] = h.Max
		}
		rows = append(rows, row)
	}
	fmt.Println("    [percentiles are log2 bucket upper bounds; the 1-processor figures are deterministic and gated]")
	record("P13 fault-service latency", map[string]any{"per_processors": rows})
}

// latencyStorm boots an nCPU kernel with span tracing on and drives
// the P5-shaped fault storm per processor: each worker writes a file
// larger than its share of primary memory, then cycles reads over it,
// so every service in the steady state fetches from disk and the
// fault-service histogram shows the full path — disk read, eviction
// write-back batches, shootdowns.
func latencyStorm(nCPU int) *core.Kernel {
	const (
		filePages = 32
		reads     = 200
	)
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		// The pageable pool grows with the processors — keeping the
		// overcommit ratio moderate enough that a fetched page
		// normally survives until the faulter's rereference — but is
		// clamped below a single worker's file, so the steady-state
		// reads always fetch from disk even when one worker runs far
		// ahead of the others.
		c.MemFrames = 16 + 8*nCPU
		if c.MemFrames > 8+filePages-2 {
			c.MemFrames = 8 + filePages - 2
		}
		c.WiredFrames = 8
		c.TraceEvents = 1 << 15
	})
	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		segno int
	}
	var workers []*worker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("lat%d.x", i), aim.Bottom)
		check(err)
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		dir := fmt.Sprintf("l%d", i)
		id, err := k.CreateDir(cpu, p, nil, dir, directory.Public(hw.Read|hw.Write), aim.Bottom)
		check(err)
		check(k.DesignateQuota(cpu, p, id, 4096))
		_, err = k.CreateFile(cpu, p, []string{dir}, "f", nil, aim.Bottom)
		check(err)
		segno, err := k.OpenPath(cpu, p, []string{dir, "f"})
		check(err)
		workers = append(workers, &worker{cpu: cpu, p: p, segno: segno})
	}
	// Under the deliberate overcommit the kernel can report a
	// fault loop: the faulter's page was evicted by the other
	// processors before every one of its rereferences. That is the
	// thrashing condition a real user program retries, so the
	// workload does too — the retried services all land in the
	// histograms, which is the point.
	retry := func(f func() error) {
		for tries := 0; ; tries++ {
			err := f()
			if errors.Is(err, core.ErrFaultLoop) && tries < 25 {
				continue
			}
			check(err)
			return
		}
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer trace.BindCPU(w.cpu.ID)()
			for i := 0; i < filePages; i++ {
				retry(func() error {
					return k.Write(w.cpu, w.p, w.segno, i*hw.PageWords, hw.Word(i+1))
				})
			}
			for r := 0; r < reads; r++ {
				retry(func() error {
					_, err := k.Read(w.cpu, w.p, w.segno, (r%filePages)*hw.PageWords)
					return err
				})
			}
		}(w)
	}
	wg.Wait()
	return k
}

// p14 reruns the P10 parallel storm under the deterministic executor:
// the same paging+quota workload, but the workers are cooperative
// tasks interleaved by a seeded schedule instead of real goroutines.
// The busiest processor's cycle account is therefore byte-reproducible
// run over run, so — unlike the goroutine makespans, which cycleLeaves
// skips — these multiprocessor figures are named to feed the -compare
// regression gate.
func p14() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	const schedSeed = 1977
	fmt.Printf("P14 deterministic parallel storm (sim executor, seed %d):\n", schedSeed)
	var rows []map[string]any
	for _, nCPU := range []int{1, 2, 4} {
		busiest, ops := simParallelStorm(nCPU, 96, 8, schedSeed)
		fmt.Printf("    %d processors: busiest processor %9d cyc over %d rounds\n", nCPU, busiest, ops)
		rows = append(rows, map[string]any{"processors": nCPU, "busiest_cpu_cycles": busiest, "rounds": ops})
	}
	fmt.Println("    [the seeded schedule pins the interleaving, so the gate holds the SMP figures too]")
	record("P14 deterministic parallel storm", map[string]any{"per_processors": rows})
}

// simParallelStorm is parallelStorm with the workers run as tasks of
// the deterministic executor. It returns the busiest processor's
// cycle account and the rounds run.
func simParallelStorm(nCPU, totalRounds, pages int, seed int64) (int64, int) {
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		c.MemFrames = 48
		c.WiredFrames = 8
	})
	workers := stormWorkers(k, nCPU)
	rounds := totalRounds / nCPU
	ex := schedsim.New(schedsim.Config{Name: "kernelbench", Seed: seed})
	for wi, w := range workers {
		wi, w := wi, w
		ex.Go(fmt.Sprintf("cpu%d", w.cpu.ID), func() {
			defer trace.BindCPU(w.cpu.ID)()
			for r := 0; r < rounds; r++ {
				stormRound(k, wi, w, r, pages)
			}
		})
	}
	check(ex.Run())
	var busiest int64
	for i := 0; i < nCPU; i++ {
		if c := k.Meter.CPUCycles(i); c > busiest {
			busiest = c
		}
	}
	return busiest, rounds * nCPU
}

// p15 measures the async disk pipeline: per-CPU workers each write a
// private file, the segments are deactivated (pages written back,
// frames freed), and every worker then scans its file sequentially
// under the deterministic executor — a pure fault storm of stored
// pages. New files spread round-robin across the packs, so pack count
// divides the transfer load between device arms. The bottleneck
// figure is the busier of the busiest processor account and the
// busiest device account: the makespan of the overlapped pipeline,
// since a faulter blocks on its pack's completion eventcount while
// the other packs' elevators and the other processors keep running.
// Every row is produced under the sim executor, so — like P14 — the
// figures are named to feed the -compare gate, 1-CPU rows included.
func p15() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	const schedSeed = 1977
	fmt.Println("P15 disk pipeline fault storm (sequential scans; bottleneck = max of busiest CPU and busiest device):")
	var rows []map[string]any
	for _, nCPU := range []int{1, 2, 4} {
		var onePack int64
		for _, nPack := range []int{1, 2, 4} {
			r := diskStorm(nCPU, nPack, schedSeed)
			gain := ""
			if nPack == 1 {
				onePack = r.bottleneck
			} else if r.bottleneck > 0 {
				gain = fmt.Sprintf("  x%.2f vs 1 pack", float64(onePack)/float64(r.bottleneck))
			}
			hitRate := 0.0
			if r.faults > 0 {
				hitRate = float64(r.hits) / float64(r.faults)
			}
			fmt.Printf("    %d CPU %d pack: bottleneck %8d cyc (cpu %8d, device %8d)  read-ahead %3.0f%% of %d faults%s\n",
				nCPU, nPack, r.bottleneck, r.cpu, r.device, 100*hitRate, r.faults, gain)
			rows = append(rows, map[string]any{
				"processors":            nCPU,
				"packs":                 nPack,
				"bottleneck_cycles":     r.bottleneck,
				"busiest_cpu_cycles":    r.cpu,
				"busiest_device_cycles": r.device,
				"faults":                r.faults,
				"prefetch_hits":         r.hits,
				"readahead_hit_rate":    hitRate,
			})
		}
	}
	fmt.Println("    [spreading the storm's files over four packs beats one pack because the per-pack elevators run concurrently]")
	record("P15 disk pipeline fault storm", map[string]any{"per_config": rows})
}

// A diskStormResult is one P15 configuration's scan-phase figures.
type diskStormResult struct {
	bottleneck, cpu, device int64
	faults, hits            int64
}

// diskStorm runs one P15 configuration and returns the scan phase's
// deltas: busiest processor account, busiest pack device account,
// fault count and read-ahead hits.
func diskStorm(nCPU, nPacks int, seed int64) diskStormResult {
	const filePages = 24
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		c.Packs = nil
		for i := 0; i < nPacks; i++ {
			c.Packs = append(c.Packs, core.PackSpec{ID: fmt.Sprintf("dsk%c", 'a'+i), Records: 8192})
		}
		c.SpreadPacks = nPacks > 1
		// Memory holds every file plus read-ahead slack: the storm
		// measures the disk pipeline, not eviction thrash.
		c.MemFrames = nCPU*filePages + 64
		c.WiredFrames = 8
	})
	workers := stormWorkers(k, nCPU)
	// Populate: each worker writes its file, then the segment is
	// deactivated so every page lives only on its disk record.
	for _, w := range workers {
		for pg := 0; pg < filePages; pg++ {
			check(k.Write(w.cpu, w.p, w.segno, pg*hw.PageWords, hw.Word(pg+1)))
		}
		e, err := w.p.KST().Entry(w.segno)
		check(err)
		check(k.Segs.Deactivate(e.UID))
	}
	// Snapshot the accounts so only the scan phase is measured.
	cpu0 := make([]int64, nCPU)
	for i := range cpu0 {
		cpu0[i] = k.Meter.CPUCycles(i)
	}
	dev0 := make(map[string]int64)
	for _, id := range k.Vols.Packs() {
		p, err := k.Vols.Pack(id)
		check(err)
		dev0[id] = p.DeviceCycles()
	}
	st0 := k.Frames.Stats()

	ex := schedsim.New(schedsim.Config{Name: "kernelbench-p15", Seed: seed})
	for _, w := range workers {
		w := w
		ex.Go(fmt.Sprintf("cpu%d", w.cpu.ID), func() {
			defer trace.BindCPU(w.cpu.ID)()
			for pg := 0; pg < filePages; pg++ {
				v, err := k.Read(w.cpu, w.p, w.segno, pg*hw.PageWords)
				check(err)
				if v != hw.Word(pg+1) {
					check(fmt.Errorf("p15: page %d read back %d, want %d", pg, v, pg+1))
				}
			}
		})
	}
	check(ex.Run())

	var res diskStormResult
	for i := 0; i < nCPU; i++ {
		if c := k.Meter.CPUCycles(i) - cpu0[i]; c > res.cpu {
			res.cpu = c
		}
	}
	for _, id := range k.Vols.Packs() {
		p, err := k.Vols.Pack(id)
		check(err)
		if c := p.DeviceCycles() - dev0[id]; c > res.device {
			res.device = c
		}
	}
	st := k.Frames.Stats()
	res.faults = st.Faults - st0.Faults
	res.hits = st.PrefetchHits - st0.PrefetchHits
	res.bottleneck = res.cpu
	if res.device > res.bottleneck {
		res.bottleneck = res.device
	}
	return res
}

// p16 scales the front-end connection plane: one terminal frame per
// connection storms through the generic demultiplexer into the
// sharded connection table at 10k, 100k and a million lines, on 1, 2
// and 4 processors. The figure of merit is cycles per connection —
// demux, protocol body, routing into the ring, and the returned
// credit are each O(1), so the figure holds flat across two orders of
// magnitude of table growth. Delivery latency (enqueue to pop, in
// simulated cycles) comes from the plane's log2 histogram. A small
// subset of lines runs the real dialog — login frames through the
// answering service — and every row re-proves isolation: a line
// flooded past its credit window drops its own frames while a
// neighbor on the same shard loses nothing. The 1-processor rows are
// single-goroutine and deterministic; their figures feed the -compare
// gate, while the multiprocessor rows carry _smp keys the gate skips.
func p16() {
	prev := lockrank.SetChecking(false)
	defer lockrank.SetChecking(prev)
	fmt.Println("P16 connection storm (front-end processor: sharded table, credit flow control, eventcount delivery):")
	var rows []map[string]any
	for _, conns := range []int{10_000, 100_000, 1_000_000} {
		for _, nCPU := range []int{1, 2, 4} {
			rows = append(rows, connStorm(conns, nCPU))
		}
	}
	fmt.Println("    [cycles per connection hold flat from 10k to 1M lines, and a slow line's drops land on it alone]")
	record("P16 connection storm", map[string]any{"per_config": rows})
}

// connStorm runs one P16 configuration and returns its report row.
func connStorm(conns, nCPU int) map[string]any {
	const loginUsers = 32
	k := bootKernel(func(c *core.Config) {
		c.Processors = nCPU
		c.ASTPages = (loginUsers+256)/128 + 2
		c.WiredFrames = c.ASTPages + 6
		c.MemFrames = loginUsers + 256 + c.WiredFrames
	})
	node, err := k.AttachFNP(conns, 0)
	check(err)
	terms := node.Terminals

	// The dialog subset: real logins arrive as terminal frames and run
	// the answering service's full admission path.
	svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		return k.CreateProcess(principal, label)
	})
	connector := answering.NewConnector(svc, func(proc any) error {
		return k.Procs.Destroy(proc.(*uproc.Process))
	})
	for i := 0; i < loginUsers; i++ {
		check(svc.Register(answering.StormPrincipal(i), "storm-pw", aim.Top))
	}
	for i := 0; i < loginUsers; i++ {
		line := append(answering.EncodeLine("login "+answering.StormPrincipal(i)+" storm-pw"), 0o777)
		check(node.Mux.Deliver(k.CPUs[0], "front-end", netmux.Frame{Channel: i, Payload: line}))
	}
	for sh := 0; sh < terms.Shards(); sh++ {
		terms.Drain(sh, func(d fnp.Delivery) { check(connector.HandleFrame(d.Conn, d.Data)) })
	}
	if got := connector.Stats().Logins; got != loginUsers {
		check(fmt.Errorf("p16: %d logins, want %d", got, loginUsers))
	}

	// The storm: one frame per connection. Single-processor rows
	// deliver and drain in fixed batches on one goroutine, so the
	// figures are deterministic; multiprocessor rows run one producer
	// per processor against a read-drain-await consumer per shard.
	start := k.Meter.Snapshot()
	payload := []hw.Word{0o101, 0o777}
	if nCPU == 1 {
		const batch = 8192
		cpu := k.CPUs[0]
		for lo := 0; lo < conns; lo += batch {
			hi := lo + batch
			if hi > conns {
				hi = conns
			}
			for id := lo; id < hi; id++ {
				check(node.Mux.Deliver(cpu, "front-end", netmux.Frame{Channel: id, Payload: payload}))
			}
			for sh := 0; sh < terms.Shards(); sh++ {
				terms.Drain(sh, nil)
			}
		}
	} else {
		var producers, consumers sync.WaitGroup
		var done atomic.Bool
		for sh := 0; sh < terms.Shards(); sh++ {
			sh := sh
			consumers.Add(1)
			go func() {
				defer consumers.Done()
				ec := terms.DeliveryEC(sh)
				for {
					seen := ec.Read()
					if terms.Drain(sh, nil) > 0 {
						continue
					}
					if done.Load() {
						return
					}
					ec.Await(seen + 1)
				}
			}()
		}
		per := (conns + nCPU - 1) / nCPU
		for w := 0; w < nCPU; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > conns {
				hi = conns
			}
			cpu := k.CPUs[w]
			producers.Add(1)
			go func(lo, hi int, cpu *hw.Processor) {
				defer producers.Done()
				for id := lo; id < hi; id++ {
					check(node.Mux.Deliver(cpu, "front-end", netmux.Frame{Channel: id, Payload: payload}))
				}
			}(lo, hi, cpu)
		}
		producers.Wait()
		done.Store(true)
		for sh := 0; sh < terms.Shards(); sh++ {
			terms.DeliveryEC(sh).Advance()
		}
		consumers.Wait()
	}
	perConn := k.Meter.Since(start) / int64(conns)
	p50, p99 := terms.LatencyPercentile(50), terms.LatencyPercentile(99)

	// Isolation: flood one line past its credit window without
	// returning credits; its frames drop, counted on it alone, while a
	// neighbor on the same shard keeps its full window.
	slow := loginUsers + 1
	healthy := slow + terms.Shards()
	for i := 0; i < fnp.RingSlots+2; i++ {
		check(node.Mux.Deliver(k.CPUs[0], "front-end", netmux.Frame{Channel: slow, Payload: payload}))
	}
	check(node.Mux.Deliver(k.CPUs[0], "front-end", netmux.Frame{Channel: healthy, Payload: payload}))
	slowSt, healthySt := terms.ConnStats(slow), terms.ConnStats(healthy)
	if slowSt.Drops == 0 || healthySt.Drops != 0 {
		check(fmt.Errorf("p16: isolation broken: slow line dropped %d, healthy neighbor %d", slowSt.Drops, healthySt.Drops))
	}
	st := terms.Stats()
	fmt.Printf("    %7d conns %d cpu: %4d cyc/conn, delivery p50 %7d p99 %7d cyc, %7d frames, slow-line drops %d, healthy neighbor %d\n",
		conns, nCPU, perConn, p50, p99, st.Frames, slowSt.Drops, healthySt.Drops)
	row := map[string]any{
		"connections": conns, "processors": nCPU,
		"frames": st.Frames, "delivered": st.Delivered,
		"logins":          loginUsers,
		"slow_conn_drops": slowSt.Drops, "healthy_conn_drops": healthySt.Drops,
		"mux_dropped": node.Mux.MuxStats().Dropped,
	}
	if nCPU == 1 {
		row["cycles_per_connection"] = perConn
		row["delivery_p50_cycles"] = p50
		row["delivery_p99_cycles"] = p99
	} else {
		row["cycles_per_connection_smp"] = perConn
		row["delivery_p50_cycles_smp"] = p50
		row["delivery_p99_cycles_smp"] = p99
	}
	return row
}
