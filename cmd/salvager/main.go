// Command salvager demonstrates the crash-recovery story end to end:
// it boots a Kernel/Multics instance, runs a relocation-heavy
// workload with a deterministic crash injected at the Nth disk
// mutation, then reboots a second kernel on the surviving packs. The
// boot-time volume salvager repairs the half-updated tables of
// contents, free lists and quota cells, and the repair report is
// printed along with the salvage events from the kernel trace.
//
// Usage:
//
//	salvager [-crash N] [-records R]
//
// -crash selects the mutation at which the machine halts (default
// 140, which lands inside a segment relocation and leaves a
// duplicated table-of-contents entry); -records sizes the root pack
// (default 64, small enough that
// the workload overflows it and relocates segments mid-crash). The
// same flags always produce the same report: the fault plane is
// seeded and counts simulated operations, never wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"

	"multics/internal/aim"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/trace"
)

func main() {
	crashAt := flag.Int("crash", 140, "halt the machine at the Nth disk mutation")
	records := flag.Int("records", 64, "records on the root pack")
	flag.Parse()

	fmt.Println("salvager: deterministic crash, reboot, and volume salvage")
	fmt.Println()

	// First incarnation: boot, fill the small root pack until
	// segments relocate, and crash mid-flight.
	cfg := core.DefaultConfig()
	cfg.Packs = []core.PackSpec{{ID: "dska", Records: *records}, {ID: "dskb", Records: 4 * *records}}
	cfg.Processors = 1
	k, err := core.Boot(cfg)
	check(err)

	plan := &disk.FaultPlan{CrashAtMutation: *crashAt, Seed: uint64(*crashAt)}
	k.Vols.SetFaultPlan(plan)
	workload(k)
	if !plan.Crashed() {
		fmt.Printf("workload finished before mutation %d (made %d); raise -records pressure or lower -crash\n",
			*crashAt, plan.Mutations())
		os.Exit(1)
	}
	fmt.Printf("first incarnation crashed at disk mutation %d of its workload\n", *crashAt)

	// The packs survive; primary memory does not.
	var packs []*disk.Pack
	for _, id := range k.Vols.Packs() {
		p, err := k.Vols.Demount(id)
		check(err)
		p.SetFaultPlan(nil)
		if p.Dirty() {
			fmt.Printf("pack %s demounted dirty: %d of %d records in use\n", id, p.UsedRecords(), p.Capacity())
		} else {
			fmt.Printf("pack %s demounted clean\n", id)
		}
		packs = append(packs, p)
	}
	fmt.Println()

	// Second incarnation: boot on the survivors. Salvage runs before
	// any manager touches the packs.
	cfg2 := core.DefaultConfig()
	cfg2.Packs = nil
	cfg2.Mount = packs
	cfg2.Processors = 1
	cfg2.TraceEvents = 1 << 12
	k2, err := core.Boot(cfg2)
	check(err)

	fmt.Print(k2.Salvage)
	fmt.Println()

	var events []trace.Event
	for _, ev := range k2.Trace.Events() {
		if ev.Kind == trace.EvSalvageRepair {
			events = append(events, ev)
		}
	}
	fmt.Printf("trace: %d salvage-repair events attributed to the volume salvager\n", len(events))
	if len(events) > 0 {
		fmt.Print(trace.FormatEvents(events))
	}
	fmt.Println()

	// Proof of life: the rebooted hierarchy accepts new segments.
	cpu := k2.CPUs[0]
	p, err := k2.CreateProcess("salvager.sys", aim.Bottom)
	check(err)
	k2.Attach(cpu, p)
	_, err = k2.CreateFile(cpu, p, nil, "after-reboot", nil, aim.Bottom)
	check(err)
	segno, err := k2.OpenPath(cpu, p, []string{"after-reboot"})
	check(err)
	check(k2.Write(cpu, p, segno, 0, 1977))
	w, err := k2.Read(cpu, p, segno, 0)
	check(err)
	fmt.Printf("rebooted kernel is live: wrote and read back %d from a fresh segment\n", w)
}

// workload fills the root pack past capacity: directory growth, three
// files of thirty pages each, forcing full-pack relocations while the
// crash plan counts down. Errors past the crash point are the point.
func workload(k *core.Kernel) {
	cpu := k.CPUs[0]
	p, err := k.CreateProcess("victim.sys", aim.Bottom)
	check(err)
	k.Attach(cpu, p)
	if _, err := k.CreateDir(cpu, p, nil, "work", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		return
	}
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("f%d", f)
		if _, err := k.CreateFile(cpu, p, []string{"work"}, name, nil, aim.Bottom); err != nil {
			continue
		}
		segno, err := k.OpenPath(cpu, p, []string{"work", name})
		if err != nil {
			continue
		}
		for i := 0; i < 30; i++ {
			_ = k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(f*100+i+1))
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "salvager:", err)
		os.Exit(1)
	}
}
