// Command census regenerates the paper's kernel-size accounting: the
// starting inventory (44K lines in ring zero plus the 10K answering
// service), the six re-engineering projects and their reductions, and
// the entry-point statistics around the linker removal.
package main

import (
	"flag"
	"fmt"

	"multics/internal/census"
)

func main() {
	entries := flag.Bool("entries", false, "also print entry-point statistics")
	inventory := flag.Bool("inventory", false, "also print the module inventories")
	flag.Parse()

	tab := census.SizeTable()
	fmt.Print(tab.String())

	if *entries {
		st := census.LinkerEntryStats()
		fmt.Printf("\nEntry points (ring zero): %d, of which %d are user-callable gates\n", st.StartEntries, st.StartGates)
		fmt.Printf("After linker removal:     %d entries (-%.1f%%), %d gates (-%.1f%%)\n",
			st.AfterEntries, st.EntryDropPercent, st.AfterGates, st.GateDropPercent)
		fmt.Printf("\nFile-store specialization of the finished kernel would remove at most another %.0f%%\n",
			census.FileStoreSpecialization())
	}
	if *inventory {
		fmt.Println("\nStarting inventory:")
		printInv(census.StartInventory())
		fmt.Println("\nFinal inventory:")
		printInv(census.FinalInventory())
	}
	for _, p := range census.Projects() {
		fmt.Printf("\n%s: %s\n", p.Name, p.Note)
	}
}

func printInv(inv census.Inventory) {
	for _, m := range inv.Modules {
		state := "kernel"
		if !m.InKernel {
			state = "removed"
		}
		fmt.Printf("    %-26s %6d lines  ring %d  %3d entries  %2d gates  [%s]\n",
			m.Name, m.Lines, m.Ring, m.Entries, m.UserGates, state)
	}
	fmt.Printf("    kernel total: %d lines (%d PL/I-equivalent)\n", inv.KernelLines(), inv.PLIEquivalentLines())
}
