// Command depgraph renders the three dependency structures of the
// paper — Figure 2 (the 1974 supervisor from afar), Figure 3 (the
// same system up close, with its loops), and Figure 4 (the redesigned
// loop-free kernel) — as text or Graphviz dot, and reports cycles,
// undisciplined dependencies, and the bottom-up certification order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multics/internal/aim"
	"multics/internal/baseline"
	"multics/internal/core"
	"multics/internal/deps"
	"multics/internal/lockrank"
)

func main() {
	view := flag.String("view", "kernel", "which structure: superficial (fig 2), actual (fig 3), kernel (fig 4)")
	format := flag.String("format", "text", "output: text or dot")
	flag.Parse()

	var g *deps.Graph
	var title string
	switch *view {
	case "superficial":
		g, title = baseline.SuperficialGraph(), "Figure 2: superficial dependency structure of the 1974 supervisor"
	case "actual":
		g, title = baseline.ActualGraph(), "Figure 3: actual dependency structure of the 1974 supervisor"
	case "kernel":
		g, title = core.BuildGraph(), "Figure 4: dependency structure of the redesigned kernel"
	default:
		fmt.Fprintf(os.Stderr, "depgraph: unknown view %q\n", *view)
		os.Exit(2)
	}

	if *format == "dot" {
		fmt.Print(g.DOT(title))
		return
	}

	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Print(g.Text())
	fmt.Println()

	if cycles := g.Cycles(); len(cycles) > 0 {
		fmt.Println("Dependency loops (iterative certification impossible):")
		for _, c := range cycles {
			fmt.Printf("    {%s}\n", strings.Join(c, ", "))
		}
	} else {
		fmt.Println("Loop-free: correctness can be established one module at a time.")
		layers, err := g.Layers()
		if err != nil {
			fmt.Fprintln(os.Stderr, "depgraph:", err)
			os.Exit(1)
		}
		fmt.Println("Certification order (bottom-up):")
		for i, layer := range layers {
			fmt.Printf("    layer %d: %s\n", i, strings.Join(layer, ", "))
		}
	}
	if und := g.Undisciplined(); len(und) > 0 {
		fmt.Println("Undisciplined dependencies (to be eliminated):")
		for _, e := range und {
			fmt.Printf("    %s -> %s [%v] %s\n", e.From, e.To, e.Kind, e.Note)
		}
	}
	if *view == "kernel" {
		printLockRanks()
	}
	if err := g.Verify(); err != nil {
		fmt.Printf("\nVerify: FAIL — %v\n", err)
	} else {
		fmt.Printf("\nVerify: ok — the structure satisfies the type-extension rationale\n")
	}
}

// printLockRanks boots a minimal kernel — which installs the
// certification layers as lock ranks and declares every manager's
// ranked lock — and prints the resulting table, highest rank first:
// the order in which one call chain may acquire them.
func printLockRanks() {
	k, err := core.Boot(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "depgraph: boot for lock ranks:", err)
		os.Exit(1)
	}
	// A process declares the per-process locks (the known segment
	// table), completing the table.
	if _, err := k.CreateProcess("depgraph.x", aim.Bottom); err != nil {
		fmt.Fprintln(os.Stderr, "depgraph: process for lock ranks:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("Lock ranks (a chain of acquisitions must strictly descend):")
	table := lockrank.Table()
	for i := len(table) - 1; i >= 0; i-- {
		e := table[i]
		if e.Rank == lockrank.Unranked {
			fmt.Printf("    unranked           %s\n", e.Name())
			continue
		}
		fmt.Printf("    rank %3d  layer %d  %s\n", e.Rank, e.Layer, e.Name())
	}
}
