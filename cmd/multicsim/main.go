// Command multicsim boots Kernel/Multics and runs a scripted
// timesharing workload against it, printing a trace of what the
// kernel did: faults serviced, pages moved, quota charged, relocation
// signals dispatched, the per-process top-talkers table from the span
// tracer, and the certification order of the booted structure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/audit"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/fnp"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/schedsim"
	"multics/internal/trace"
	"multics/internal/uproc"
)

func main() {
	frames := flag.Int("frames", 96, "primary memory page frames")
	wired := flag.Int("wired", 8, "frames reserved for core segments")
	vprocs := flag.Int("vprocs", 8, "fixed virtual processor count")
	users := flag.Int("users", 3, "simulated users")
	files := flag.Int("files", 4, "files per user")
	pages := flag.Int("pages", 6, "pages written per file")
	packs := flag.Int("packs", 2, "mounted disk packs; more than one spreads new files round-robin so their faults ride separate device queues")
	runAudit := flag.Bool("audit", true, "run the invariant audit after the workload")
	schedSeed := flag.Int64("sched-seed", 0, "when nonzero, run a multiprocessor storm under the deterministic executor with this schedule seed; a failure prints the seed that replays it")
	storm := flag.Bool("storm", false, "drive a login/timesharing storm of -users users through the answering service instead of the scripted file workload")
	connections := flag.Int("connections", 0, "when positive, attach the front-end communications processor and storm this many terminal connections through the demultiplexer")
	slowConsumers := flag.Int("slow-consumers", 0, "connections (of -connections) whose consumers never return credits: their lines throttle and drop, everyone else keeps a full window")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.MemFrames = *frames
	cfg.WiredFrames = *wired
	cfg.VProcs = *vprocs
	cfg.RootQuota = 100000
	if *packs < 1 || *packs > 26 {
		fmt.Fprintln(os.Stderr, "multicsim: -packs must be between 1 and 26")
		os.Exit(2)
	}
	cfg.Packs = packSpecs(*packs, 8192)
	cfg.SpreadPacks = *packs > 1
	if *storm {
		// Scale the machine to the storm: an active-segment entry and
		// a resident state page per logged-in user.
		cfg.ASTPages = (*users+256)/128 + 2
		cfg.WiredFrames = cfg.ASTPages + 6
		if need := *users + 512 + cfg.WiredFrames; cfg.MemFrames < need {
			cfg.MemFrames = need
		}
		cfg.Packs = packSpecs(*packs, 16384)
	}
	// Tracing on: the span layer attributes kernel cycles to the
	// running process for the top-talkers table.
	cfg.TraceEvents = 1 << 15

	k, err := core.Boot(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multicsim: boot:", err)
		os.Exit(1)
	}
	fmt.Println("Kernel/Multics booted; dependency structure verified loop-free.")
	fmt.Println("Certification order:")
	for i, layer := range k.CertificationOrder() {
		fmt.Printf("    layer %d: %s\n", i, strings.Join(layer, ", "))
	}

	if *storm {
		if err := runLoginStorm(k, *users); err != nil {
			fatal("login storm", err)
		}
	}

	for u := 0; !*storm && u < *users; u++ {
		principal := fmt.Sprintf("user%d.proj", u)
		p, err := k.CreateProcess(principal, aim.Bottom)
		if err != nil {
			fatal("create process", err)
		}
		cpu := k.CPUs[u%len(k.CPUs)]
		k.Attach(cpu, p)
		home := fmt.Sprintf("user%d", u)
		if _, err := k.CreateDir(cpu, p, nil, home, directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
			fatal("create home", err)
		}
		for f := 0; f < *files; f++ {
			name := fmt.Sprintf("file%d", f)
			if _, err := k.CreateFile(cpu, p, []string{home}, name, nil, aim.Bottom); err != nil {
				fatal("create file", err)
			}
			segno, err := k.OpenPath(cpu, p, []string{home, name})
			if err != nil {
				fatal("open", err)
			}
			for pg := 0; pg < *pages; pg++ {
				if err := k.Write(cpu, p, segno, pg*hw.PageWords+pg, hw.Word(u*100+f*10+pg)); err != nil {
					fatal("write", err)
				}
			}
			for pg := 0; pg < *pages; pg++ {
				w, err := k.Read(cpu, p, segno, pg*hw.PageWords+pg)
				if err != nil {
					fatal("read", err)
				}
				if w != hw.Word(u*100+f*10+pg) {
					fatal("verify", fmt.Errorf("user %d file %d page %d: got %d", u, f, pg, w))
				}
			}
		}
		fmt.Printf("user %-12s wrote and verified %d files x %d pages\n", principal, *files, *pages)
	}

	if *schedSeed != 0 {
		if err := runSchedStorm(k, *schedSeed); err != nil {
			fmt.Fprintln(os.Stderr, "multicsim: deterministic storm:", err)
			os.Exit(1)
		}
	}

	if *connections > 0 {
		if *slowConsumers < 0 || *slowConsumers > *connections {
			fmt.Fprintln(os.Stderr, "multicsim: -slow-consumers must be between 0 and -connections")
			os.Exit(2)
		}
		if err := runConnectionPlane(k, *connections, *slowConsumers); err != nil {
			fatal("connection plane", err)
		}
	}

	st := k.Frames.Stats()
	fmt.Println("\nKernel statistics:")
	fmt.Printf("    page faults serviced:     %d\n", st.Faults)
	fmt.Printf("    pages evicted:            %d\n", st.Evictions)
	fmt.Printf("    zero pages reclaimed:     %d\n", st.ZeroEvictions)
	fmt.Printf("    zero-reclaim rescues:     %d\n", st.ZeroRescues)
	fmt.Printf("    quota grow races:         %d\n", k.Cells.Stats().GrowRaces)
	halfBudget, exhausted := k.RetryStats()
	fmt.Printf("    retry pressure:           %d references past half budget, %d exhausted\n", halfBudget, exhausted)
	fmt.Printf("    translation cache:        %d hits, %d misses, %d shootdowns\n", st.AssocHits, st.AssocMisses, st.Shootdowns)
	fmt.Printf("    read-ahead:               %d issued, %d hits, %d dropped, %d stolen\n",
		st.PrefetchIssued, st.PrefetchHits, st.PrefetchDrops, st.PrefetchSteals)
	for _, id := range k.Vols.Packs() {
		if p, err := k.Vols.Pack(id); err == nil {
			enq, depth := p.QueueStats()
			fmt.Printf("    pack %-4s device:         %d cycles, %d queued requests, deepest queue %d\n",
				id, p.DeviceCycles(), enq, depth)
		}
	}
	if st.WriteBackErrors > 0 {
		fmt.Printf("    write-back errors:        %d\n", st.WriteBackErrors)
	}
	fmt.Printf("    relocation restores:      %d\n", k.Restores())
	raised, handled := k.Signals.Stats()
	fmt.Printf("    upward signals:           %d raised, %d handled\n", raised, handled)
	fmt.Printf("    kernel daemon dispatches: %d\n", k.VProcs.Dispatches())
	ss := k.Procs.SchedStats()
	fmt.Printf("    scheduler dispatches:     %d (%d steals, %d migrations, %d donations)\n",
		ss.Dispatches, ss.Steals, ss.Migrations, ss.Donations)
	fmt.Printf("    run queues:               %d queues, deepest %d, %d wakeups\n",
		ss.RunQueues, ss.MaxQueueDepth, ss.Wakeups)
	fmt.Printf("    simulated cycles:         %d\n", k.Meter.Cycles())

	topTalkers(k)

	if *runAudit {
		fmt.Println("\nPost-workload audit:")
		report := audit.Run(k)
		if report.Clean() {
			fmt.Println("    clean: every module invariant and the accounting balance hold")
		} else {
			fmt.Print(report)
			os.Exit(1)
		}
	}
}

// runLoginStorm registers and logs in users simulated users through
// the answering service, timeshares them through rounds of quanta
// with block/wake churn over the real-memory queue on the sharded
// run queues, and logs them all out.
func runLoginStorm(k *core.Kernel, users int) error {
	svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		return k.CreateProcess(principal, label)
	})
	st, err := svc.RunStorm(answering.StormConfig{
		Users:          users,
		Rounds:         2,
		QuantaPerRound: 2*users/len(k.CPUs) + 32,
		BlockEvery:     97,
	}, k.StormOps(uproc.GoroutineExecutor{}, k.CPUs))
	if err != nil {
		return err
	}
	fmt.Printf("\nLogin storm: %d logins, %d logouts, %d quanta run, %d blocked, %d woken.\n",
		st.Logins, st.Logouts, st.Quanta, st.Blocked, st.Woken)
	return nil
}

// runConnectionPlane attaches the front-end communications processor
// and storms frames through it: every connection receives a frame per
// round, consumers drain the sharded table and return credits — except
// the first `slow` lines, whose consumers never credit. Those lines
// exhaust their windows and drop; every other line rides through
// untouched. The statistics block shows the accounting.
func runConnectionPlane(k *core.Kernel, conns, slow int) error {
	node, err := k.AttachFNP(conns, 0)
	if err != nil {
		return err
	}
	terms := node.Terminals
	const rounds = fnp.RingSlots + 2 // enough to overflow an uncredited window
	for r := 0; r < rounds; r++ {
		for id := 0; id < conns; id++ {
			f := netmux.Frame{Channel: id, Payload: []hw.Word{hw.Word(r + 1), 0o777}}
			if err := node.Mux.Deliver(k.CPUs[0], "front-end", f); err != nil {
				return err
			}
		}
		for sh := 0; sh < terms.Shards(); sh++ {
			for {
				d, ok := terms.Next(sh)
				if !ok {
					break
				}
				if d.Conn >= slow {
					terms.Credit(d.Conn)
				}
			}
		}
	}
	st := terms.Stats()
	ms := node.Mux.MuxStats()
	var slowDrops int64
	for id := 0; id < slow; id++ {
		slowDrops += terms.ConnStats(id).Drops
	}
	fmt.Println("\nConnection plane (front-end processor):")
	fmt.Printf("    connections:              %d over %d shards (%d slow consumers)\n", conns, terms.Shards(), slow)
	fmt.Printf("    frames accepted:          %d of %d offered\n", st.Frames, int64(conns)*rounds)
	fmt.Printf("    frames dropped:           %d no-credit (%d on the slow lines), %d demux queue-full\n", st.Drops, slowDrops, ms.Dropped)
	fmt.Printf("    delivered / credited:     %d / %d\n", st.Delivered, st.Credits)
	fmt.Printf("    delivery latency:         p50 %d cyc, p99 %d cyc\n", terms.LatencyPercentile(50), terms.LatencyPercentile(99))
	fmt.Printf("    demux:                    %d delivered, %d protocol errors\n", ms.Delivered, ms.ProtocolErrors)
	return nil
}

// runSchedStorm drives one oscillating writer per processor as
// cooperative tasks of the deterministic executor: the seed fully
// determines the interleaving, and any lost write or deadlock is
// reported with the seed that replays it.
func runSchedStorm(k *core.Kernel, seed int64) error {
	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		segno int
	}
	var ws []*worker
	for i := range k.CPUs {
		principal := fmt.Sprintf("sim%d.sched", i)
		p, err := k.CreateProcess(principal, aim.Bottom)
		if err != nil {
			return err
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		name := fmt.Sprintf("sched%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); err != nil {
			return err
		}
		segno, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			return err
		}
		ws = append(ws, &worker{cpu: cpu, p: p, segno: segno})
	}
	ex := schedsim.New(schedsim.Config{Name: "multicsim", Seed: seed})
	for wi, w := range ws {
		wi, w := wi, w
		ex.Go(fmt.Sprintf("cpu%d", w.cpu.ID), func() {
			defer trace.BindCPU(w.cpu.ID)()
			for r := 0; r < 4; r++ {
				for pg := 0; pg < 6; pg++ {
					off := pg * hw.PageWords
					v := hw.Word(1 + wi*100 + r)
					if err := k.Write(w.cpu, w.p, w.segno, off, v); err != nil {
						panic(fmt.Sprintf("write: %v", err))
					}
					got, err := k.Read(w.cpu, w.p, w.segno, off)
					if err != nil {
						panic(fmt.Sprintf("read: %v", err))
					}
					if got != v {
						panic(fmt.Sprintf("lost write: page %d read %d, want %d", pg, got, v))
					}
					if err := k.Write(w.cpu, w.p, w.segno, off, 0); err != nil {
						panic(fmt.Sprintf("re-zero: %v", err))
					}
				}
			}
		})
	}
	if err := ex.Run(); err != nil {
		return err
	}
	fmt.Printf("\nDeterministic storm: %d processors, seed %d, %d scheduling decisions, no invariant violated.\n",
		len(k.CPUs), seed, ex.Steps())
	return nil
}

// topTalkers prints the processes that cost the kernel the most,
// from the span tracer's per-process accounting: the self-time of
// every span that completed while the process was running on the
// span's processor.
func topTalkers(k *core.Kernel) {
	snap := k.Trace.Snapshot()
	if len(snap.Procs) == 0 {
		return
	}
	pids := make([]uint64, 0, len(snap.Procs))
	for pid := range snap.Procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool {
		a, b := snap.Procs[pids[i]], snap.Procs[pids[j]]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		return pids[i] < pids[j]
	})
	const top = 10
	fmt.Println("\nTop talkers (kernel span self-cycles attributed to the running process):")
	for i, pid := range pids {
		if i >= top {
			fmt.Printf("    ... and %d more\n", len(pids)-top)
			break
		}
		who := fmt.Sprintf("pid %d", pid)
		if p, err := k.Procs.Lookup(pid); err == nil {
			who = fmt.Sprintf("%s (pid %d)", p.Principal(), pid)
		}
		pa := snap.Procs[pid]
		fmt.Printf("    %-28s %10d cyc across %d spans\n", who, pa.Cycles, pa.Spans)
	}
}

// packSpecs names n packs dska, dskb, ... each with the given record
// capacity.
func packSpecs(n, records int) []core.PackSpec {
	specs := make([]core.PackSpec, n)
	for i := range specs {
		specs[i] = core.PackSpec{ID: fmt.Sprintf("dsk%c", 'a'+i), Records: records}
	}
	return specs
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "multicsim: %s: %v\n", what, err)
	os.Exit(1)
}
