package multics_test

import (
	"fmt"
	"log"

	"multics"
	"multics/internal/hw"
)

// Example boots Kernel/Multics, exercises the file system through the
// fault machinery, and shows the machine-checked certification order —
// the paper's central artifact.
func Example() {
	k, err := multics.Boot(multics.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	p, err := k.CreateProcess("alice.sys", multics.Bottom)
	if err != nil {
		log.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)

	if _, err := k.CreateFile(cpu, p, nil, "notes", nil, multics.Bottom); err != nil {
		log.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"notes"})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Write(cpu, p, segno, 2*hw.PageWords, 42); err != nil {
		log.Fatal(err)
	}
	w, err := k.Read(cpu, p, segno, 2*hw.PageWords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read back:", w)
	fmt.Println("loop-free:", k.Graph.LoopFree())
	fmt.Println("bottom of the certification order:", k.CertificationOrder()[0][0])
	// Output:
	// read back: 42
	// loop-free: true
	// bottom of the certification order: core-segment-manager
}

// ExampleSizeTable regenerates the paper's kernel-size accounting.
func ExampleSizeTable() {
	t := multics.SizeTable()
	fmt.Printf("start %dK, reductions %dK, remaining %dK\n",
		t.StartTotal/1000, t.TotalReduction/1000, t.Final/1000)
	// Output:
	// start 54K, reductions 28K, remaining 26K
}
