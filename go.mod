module multics

go 1.22
