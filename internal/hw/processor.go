package hw

import (
	"fmt"
	"sync/atomic"

	"multics/internal/trace"
)

func init() {
	// Teach the trace exporters the hardware's fault-kind names, so
	// the trace package needs no dependency on this one.
	trace.SetFaultNamer(func(kind int) string { return FaultKind(kind).String() })
}

// UnattributedModule is the module name stamped on trace events when
// the kernel has not told the processor whom to charge (a missing
// FaultModules entry or an unset GateModule). It is deliberately not
// a dependency-graph module name, so the unknown-module lint catches
// instrumentation that drifted out of sync.
const UnattributedModule = "unattributed"

// NRings is the number of protection rings (Multics hardware provides
// eight).
const NRings = 8

// KernelRing is the ring of the security kernel (ring zero).
const KernelRing = 0

// UserRing is the ring in which ordinary user programs execute.
const UserRing = 4

// A Processor simulates one CPU. It holds the two descriptor base
// registers of the kernel design: SystemDT, the permanently resident
// descriptor table through which all segment numbers below SystemSegMax
// translate, and UserDT, the per-process table for user segment
// numbers. It also carries the per-processor state the paper adds to
// make the two-level process design work: the wakeup-waiting switch
// and the locked-descriptor-address register.
type Processor struct {
	ID    int
	Mem   *Memory
	Meter *CostMeter

	// SystemDT translates segment numbers < SystemSegMax. It is
	// fixed at initialization; kernel modules using such numbers
	// therefore cannot depend on the user address-space machinery.
	SystemDT     *DescriptorTable
	SystemSegMax int
	// UserDT translates segment numbers >= SystemSegMax. It changes
	// on every user-process dispatch.
	UserDT *DescriptorTable

	// Ring is the current validation ring.
	Ring int

	// DescriptorLockHW enables the descriptor-lock addition: a
	// missing-page fault atomically sets the descriptor's lock bit.
	// The baseline (1974) processor runs with this false and its
	// page control must take a global lock and interpretively
	// retranslate.
	DescriptorLockHW bool

	// wakeupWaiting is the per-processor switch that prevents a
	// lost notification between a locked-descriptor fault and the
	// wait primitive.
	wakeupWaiting atomic.Bool

	// lockedSeg/lockedPage form the register recording the address
	// of the descriptor whose lock bit caused the most recent
	// locked-descriptor or missing-page fault.
	lockedSeg  atomic.Int64
	lockedPage atomic.Int64

	// Trace receives fault and ring-crossing events when non-nil.
	Trace trace.Sink
	// FaultModules attributes each fault kind to the module that
	// services it; the kernel fills it from its dependency graph.
	FaultModules map[FaultKind]string
	// GateModule is the module the current gate call is attributed
	// to; the kernel's gate wrapper sets it per processor before
	// each GateCall, so no cross-processor race exists.
	GateModule string

	// Assoc, when non-nil, is this processor's associative memory:
	// the SDW/PTW cache consulted before any table walk. Its mutex
	// doubles as the reference lock Read/Write/Translate hold across
	// translate-plus-access, which is what makes a shootdown
	// broadcast a barrier against stale translations.
	Assoc *AssociativeMemory
	// AssocModule is the module associative-memory events are
	// attributed to; the kernel points it at the page frame manager,
	// whose descriptor traffic the cache exists to absorb.
	AssocModule string

	// xlats/xlatCycles count address translations and the simulated
	// cycles charged for the translation step alone (walks and
	// associative hits, not faults or the final memory reference),
	// so the fast path's effect is measurable with the cache off.
	xlats      atomic.Int64
	xlatCycles atomic.Int64
}

// NewProcessor returns a processor with the given id attached to mem,
// metering onto meter (which may be nil).
func NewProcessor(id int, mem *Memory, meter *CostMeter) *Processor {
	return &Processor{ID: id, Mem: mem, Meter: meter, Ring: KernelRing}
}

// emitFault traces one taken fault, charged the cycles the hardware
// actually metered for it. The module charged is the one the kernel
// registered to service that fault kind.
func (p *Processor) emitFault(f *Fault, cost int64) {
	if p.Trace == nil {
		return
	}
	mod := p.FaultModules[f.Kind]
	if mod == "" {
		mod = UnattributedModule
	}
	p.Trace.Emit(trace.Event{
		Kind: trace.EvFault, Module: mod, CPU: int32(p.ID) + 1, Cost: cost,
		Arg0: int64(f.Kind), Arg1: int64(f.Seg), Arg2: int64(f.Page),
	})
}

// emitCross traces one ring crossing, attributed to the module the
// kernel's gate wrapper named.
func (p *Processor) emitCross(from, to int) {
	if p.Trace == nil {
		return
	}
	mod := p.GateModule
	if mod == "" {
		mod = UnattributedModule
	}
	p.Trace.Emit(trace.Event{
		Kind: trace.EvGateCross, Module: mod, CPU: int32(p.ID) + 1, Cost: CycRingCross,
		Arg0: int64(from), Arg1: int64(to),
	})
}

// tableFor selects the descriptor table and reports whether the
// segment number is a system number.
func (p *Processor) tableFor(segno int) (*DescriptorTable, bool) {
	if p.SystemDT != nil && segno < p.SystemSegMax {
		return p.SystemDT, true
	}
	return p.UserDT, false
}

// Translate performs a full address translation of (segno, offset) for
// a reference of the given mode, accruing cycle costs, and returns the
// absolute memory address. On an exception it returns a *Fault; for
// missing-page faults on descriptor-lock hardware the fault records
// that this processor set the lock bit, and the locked-descriptor-
// address register is loaded.
//
// When an associative memory is fitted, the translation is first
// offered to it; Translate holds its mutex (the reference lock) for
// the duration, so a caller wanting the returned address to stay
// valid across the access must use Read or Write, which hold the lock
// across both steps.
func (p *Processor) Translate(segno, offset int, mode AccessMode) (int, error) {
	if p.Assoc != nil {
		p.Assoc.mu.Lock()
		defer p.Assoc.mu.Unlock()
	}
	return p.translate(segno, offset, mode)
}

// translate is the translation body; the caller holds the associative
// memory's mutex when one is fitted.
func (p *Processor) translate(segno, offset int, mode AccessMode) (int, error) {
	if p.Assoc != nil {
		if addr, ok := p.assocLookup(segno, offset, mode); ok {
			return addr, nil
		}
		p.Assoc.misses++
		pg := 0
		if offset >= 0 {
			pg = PageOf(offset)
		}
		p.emitAssoc(trace.EvAssocMiss, CycTableWalk, segno, pg, 0)
	}
	p.Meter.Add(CycTableWalk)
	p.xlats.Add(1)
	p.xlatCycles.Add(CycTableWalk)
	dt, system := p.tableFor(segno)
	if dt == nil {
		return 0, p.fault(&Fault{Kind: FaultMissingSegment, Seg: segno, Offset: offset, Ring: p.Ring}, 0)
	}
	sdw, err := dt.Get(segno)
	if err != nil || !sdw.Present || sdw.Table == nil {
		return 0, p.fault(&Fault{Kind: FaultMissingSegment, Seg: segno, Offset: offset, Ring: p.Ring}, 0)
	}
	if system && p.Ring > KernelRing {
		// System segment numbers are not visible outside ring 0.
		return 0, p.fault(&Fault{Kind: FaultAccess, Seg: segno, Offset: offset, Ring: p.Ring}, 0)
	}
	if p.Ring > sdw.MaxRing || !sdw.Access.Has(mode) || (mode.Has(Write) && p.Ring > sdw.WriteRing) {
		return 0, p.fault(&Fault{Kind: FaultAccess, Seg: segno, Offset: offset, Write: mode.Has(Write), Ring: p.Ring}, 0)
	}
	if offset < 0 {
		return 0, p.fault(&Fault{Kind: FaultBounds, Seg: segno, Offset: offset, Ring: p.Ring}, 0)
	}
	page := PageOf(offset)
	ptw, kind, faulted, locked := sdw.Table.translate(page, mode.Has(Write), p.DescriptorLockHW)
	if faulted {
		p.Meter.Add(CycFault)
		if kind == FaultLockedDescriptor || (kind == FaultMissingPage && locked) {
			p.lockedSeg.Store(int64(segno))
			p.lockedPage.Store(int64(page))
		}
		return 0, p.fault(&Fault{
			Kind: kind, Seg: segno, Offset: offset, Page: page,
			Write: mode.Has(Write), Ring: p.Ring, Locked: locked,
		}, CycFault)
	}
	p.Meter.Add(CycMemRef)
	if p.Assoc != nil {
		p.Assoc.fillLocked(dt, segno, page, ptw.Frame, sdw, system)
	}
	return p.Mem.FrameBase(ptw.Frame) + offset%PageWords, nil
}

// assocLookup consults the associative memory for (segno, offset). A
// hit re-validates the ring and access checks against the cached SDW —
// a gate crossing changes the validation ring between references, and
// a cached descriptor must never grant what the current ring may not
// use — and any check failure falls through to the table walk, which
// raises the canonical fault. Locked or quota-trapped descriptors can
// never be served here: only present, unlocked translations are ever
// filled, and every transition away from that state broadcasts a
// shootdown first. The caller holds the associative memory's mutex.
func (p *Processor) assocLookup(segno, offset int, mode AccessMode) (int, bool) {
	if offset < 0 {
		return 0, false
	}
	dt, system := p.tableFor(segno)
	if dt == nil {
		return 0, false
	}
	a := p.Assoc
	sdw, ok := a.lookupSDWLocked(dt, segno)
	if !ok {
		return 0, false
	}
	if system && p.Ring > KernelRing {
		return 0, false
	}
	if p.Ring > sdw.MaxRing || !sdw.Access.Has(mode) || (mode.Has(Write) && p.Ring > sdw.WriteRing) {
		return 0, false
	}
	page := PageOf(offset)
	frame, ok := a.lookupPTWLocked(sdw.Table, segno, page)
	if !ok {
		return 0, false
	}
	// Write-through of the hardware's reference bits: the walk is
	// skipped, but the eviction clock still needs Used/Modified.
	if _, err := sdw.Table.Update(page, func(d *PTW) {
		d.Used = true
		if mode.Has(Write) {
			d.Modified = true
		}
	}); err != nil {
		return 0, false
	}
	a.hits++
	p.Meter.Add(CycAssocHit + CycMemRef)
	p.xlats.Add(1)
	p.xlatCycles.Add(CycAssocHit)
	p.emitAssoc(trace.EvAssocHit, CycAssocHit, segno, page, 0)
	return p.Mem.FrameBase(frame) + offset%PageWords, true
}

// emitAssoc traces one associative-memory event.
func (p *Processor) emitAssoc(kind trace.Kind, cost int64, arg0, arg1, arg2 int) {
	if p.Trace == nil {
		return
	}
	mod := p.AssocModule
	if mod == "" {
		mod = UnattributedModule
	}
	p.Trace.Emit(trace.Event{
		Kind: kind, Module: mod, CPU: int32(p.ID) + 1, Cost: cost,
		Arg0: int64(arg0), Arg1: int64(arg1), Arg2: int64(arg2),
	})
}

// SwitchUserDT installs the descriptor table of a newly dispatched
// process. When the address space actually changes, the associative
// memory's user entries are cleared — the selective clear a process
// switch performs, leaving the wired system entries in place.
func (p *Processor) SwitchUserDT(dt *DescriptorTable) {
	if p.Assoc != nil && p.UserDT != dt {
		p.Assoc.mu.Lock()
		n := p.Assoc.clearUserLocked()
		p.Assoc.mu.Unlock()
		p.emitAssoc(trace.EvAssocClear, 0, 2, -1, n)
	}
	p.UserDT = dt
}

// TranslationStats reports the translations this processor has
// performed and the simulated cycles charged for the translation step
// alone (table walks and associative hits; fault and final
// memory-reference cycles are excluded).
func (p *Processor) TranslationStats() (count, cycles int64) {
	return p.xlats.Load(), p.xlatCycles.Load()
}

// fault traces f (charged the cycles the hardware metered for it) and
// returns it.
func (p *Processor) fault(f *Fault, cost int64) error {
	p.emitFault(f, cost)
	return f
}

// Read loads the word at virtual address (segno, offset). The
// reference lock is held across translation and the load, so a
// shootdown cannot retire the frame between the two.
func (p *Processor) Read(segno, offset int) (Word, error) {
	if p.Assoc != nil {
		p.Assoc.mu.Lock()
		defer p.Assoc.mu.Unlock()
	}
	addr, err := p.translate(segno, offset, Read)
	if err != nil {
		return 0, err
	}
	return p.Mem.Read(addr)
}

// Write stores w at virtual address (segno, offset), holding the
// reference lock across translation and the store.
func (p *Processor) Write(segno, offset int, w Word) error {
	if p.Assoc != nil {
		p.Assoc.mu.Lock()
		defer p.Assoc.mu.Unlock()
	}
	addr, err := p.translate(segno, offset, Write)
	if err != nil {
		return err
	}
	return p.Mem.Write(addr, w)
}

// GateCall simulates a call through a gate into ring to, accruing the
// ring-crossing cost, running fn, and returning to the original ring
// (a second crossing). Calls inward to a non-gate segment fault.
func (p *Processor) GateCall(to int, gate bool, fn func() error) error {
	if to < 0 || to >= NRings {
		return fmt.Errorf("hw: gate call to ring %d", to)
	}
	if to < p.Ring && !gate {
		p.Meter.Add(CycFault)
		return p.fault(&Fault{Kind: FaultGate, Ring: p.Ring}, CycFault)
	}
	from := p.Ring
	// The gate span covers both crossings and the kernel body between
	// them, attributed like the crossing events.
	var ss trace.SpanSink
	if to != from {
		if ss = trace.SpanSinkOf(p.Trace); ss != nil {
			mod := p.GateModule
			if mod == "" {
				mod = UnattributedModule
			}
			ss.BeginSpan(trace.SpanGate, mod, int64(to))
		}
		p.Meter.Add(CycRingCross)
		p.emitCross(from, to)
	}
	p.Ring = to
	err := fn()
	p.Ring = from
	if to != from {
		p.Meter.Add(CycRingCross)
		p.emitCross(to, from)
		if ss != nil {
			ss.EndSpan(trace.SpanGate)
		}
	}
	return err
}

// SetWakeupWaiting sets the wakeup-waiting switch; it is set by the
// hardware/handler just before a processor decides to wait for a
// locked descriptor, so that a notification arriving in the window
// between the fault and the wait primitive is not lost.
func (p *Processor) SetWakeupWaiting() { p.wakeupWaiting.Store(true) }

// ClearWakeupWaiting clears the switch, reporting whether it was set.
// The notify path clears it; a true result means a notification
// arrived and the wait primitive should return immediately.
func (p *Processor) ClearWakeupWaiting() bool { return p.wakeupWaiting.Swap(false) }

// WakeupWaiting reports the switch without clearing it.
func (p *Processor) WakeupWaiting() bool { return p.wakeupWaiting.Load() }

// LockedDescriptor reports the segment and page number held in the
// locked-descriptor-address register.
func (p *Processor) LockedDescriptor() (segno, page int) {
	return int(p.lockedSeg.Load()), int(p.lockedPage.Load())
}
