package hw

import "fmt"

// FaultKind identifies a hardware exception.
type FaultKind int

const (
	// FaultMissingSegment: the referenced segment number has no
	// usable descriptor (directed fault on the SDW).
	FaultMissingSegment FaultKind = iota
	// FaultMissingPage: the page descriptor indicates the page is
	// not in primary memory. On a processor with the descriptor-lock
	// addition the hardware sets the lock bit before faulting, and
	// the faulting processor is the one that must service the fault.
	FaultMissingPage
	// FaultLockedDescriptor: the page descriptor's lock bit was
	// already set -- another processor is servicing a fault on this
	// page. The handler should wait for the unlock notification.
	FaultLockedDescriptor
	// FaultQuota: the exception-causing bit was set on the page
	// descriptor -- a never-before-used page is being referenced, so
	// the segment must grow and quota must be checked above page
	// control.
	FaultQuota
	// FaultAccess: the reference violates the access modes or ring
	// brackets in the segment descriptor.
	FaultAccess
	// FaultBounds: the word offset lies beyond the segment's
	// current bound.
	FaultBounds
	// FaultGate: a cross-ring transfer did not enter through a gate.
	FaultGate
)

var faultNames = map[FaultKind]string{
	FaultMissingSegment:   "missing-segment",
	FaultMissingPage:      "missing-page",
	FaultLockedDescriptor: "locked-descriptor",
	FaultQuota:            "quota",
	FaultAccess:           "access-violation",
	FaultBounds:           "bounds-violation",
	FaultGate:             "gate-violation",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// A Fault describes one hardware exception: what happened and the
// virtual address whose translation caused it. It satisfies error so
// translation paths can return it directly.
type Fault struct {
	Kind FaultKind
	// Seg and Offset are the faulting virtual address; Page is the
	// page number within the segment.
	Seg    int
	Offset int
	Page   int
	// Write reports whether the faulting reference was a store.
	Write bool
	// Ring is the validation ring of the faulting reference.
	Ring int
	// Locked reports that this processor's missing-page fault also
	// set the descriptor lock bit (descriptor-lock hardware), making
	// this processor responsible for servicing the fault.
	Locked bool
}

func (f *Fault) Error() string {
	return fmt.Sprintf("hw: %v fault at segment %d offset %d (page %d, ring %d)", f.Kind, f.Seg, f.Offset, f.Page, f.Ring)
}

// IsFault reports whether err is a *Fault of the given kind.
func IsFault(err error, kind FaultKind) bool {
	f, ok := err.(*Fault)
	return ok && f.Kind == kind
}

// AsFault returns err as a *Fault if it is one.
func AsFault(err error) (*Fault, bool) {
	f, ok := err.(*Fault)
	return f, ok
}
