package hw

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWordMasking(t *testing.T) {
	m := NewMemory(1)
	if err := m.Write(0, Word(1)<<40|7); err != nil {
		t.Fatal(err)
	}
	w, err := m.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if w != ((Word(1)<<40 | 7) & WordMask) {
		t.Errorf("stored word = %o, want 36-bit masked value", w)
	}
	if w>>36 != 0 {
		t.Errorf("stored word has bits above 36: %o", w)
	}
}

func TestPageArithmetic(t *testing.T) {
	cases := []struct{ off, page, base int }{
		{0, 0, 0},
		{1023, 0, 0},
		{1024, 1, 1024},
		{5000, 4, 4096},
	}
	for _, c := range cases {
		if got := PageOf(c.off); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.off, got, c.page)
		}
	}
	for _, c := range cases {
		if got := PageBase(c.page); got != c.base {
			t.Errorf("PageBase(%d) = %d, want %d", c.page, got, c.base)
		}
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(2)
	if m.Frames() != 2 || m.Words() != 2*PageWords {
		t.Fatalf("Frames = %d, Words = %d", m.Frames(), m.Words())
	}
	if _, err := m.Read(-1); err == nil {
		t.Error("read of negative address succeeded")
	}
	if _, err := m.Read(2 * PageWords); err == nil {
		t.Error("read past end succeeded")
	}
	if err := m.Write(2*PageWords, 1); err == nil {
		t.Error("write past end succeeded")
	}
	if err := m.ZeroFrame(2); err == nil {
		t.Error("ZeroFrame past end succeeded")
	}
	if _, err := m.FrameIsZero(-1); err == nil {
		t.Error("FrameIsZero of negative frame succeeded")
	}
}

func TestFrameCopyAndZero(t *testing.T) {
	m := NewMemory(3)
	src := make([]Word, PageWords)
	for i := range src {
		src[i] = Word(i * 3)
	}
	if err := m.WriteFrame(1, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]Word, PageWords)
	if err := m.ReadFrame(1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i].Masked() {
			t.Fatalf("word %d = %d, want %d", i, dst[i], src[i])
		}
	}
	zero, err := m.FrameIsZero(1)
	if err != nil {
		t.Fatal(err)
	}
	if zero {
		t.Error("frame with data reported zero")
	}
	if err := m.ZeroFrame(1); err != nil {
		t.Fatal(err)
	}
	zero, err = m.FrameIsZero(1)
	if err != nil {
		t.Fatal(err)
	}
	if !zero {
		t.Error("zeroed frame not reported zero")
	}
	if err := m.ReadFrame(0, dst[:10]); err == nil {
		t.Error("short ReadFrame buffer accepted")
	}
	if err := m.WriteFrame(0, src[:10]); err == nil {
		t.Error("short WriteFrame buffer accepted")
	}
}

func TestBodyCycles(t *testing.T) {
	if got := BodyCycles(100, ASM); got != 100 {
		t.Errorf("ASM body = %d cycles, want 100", got)
	}
	got := BodyCycles(100, PLI)
	if got <= 200 {
		t.Errorf("PL/I body = %d cycles, want somewhat more than a factor of two over 100", got)
	}
	if got > 300 {
		t.Errorf("PL/I body = %d cycles, implausibly large", got)
	}
}

func TestCostMeter(t *testing.T) {
	var m CostMeter
	m.Add(5)
	m.AddBody(10, PLI)
	want := int64(5) + BodyCycles(10, PLI)
	if m.Cycles() != want {
		t.Errorf("Cycles = %d, want %d", m.Cycles(), want)
	}
	m.Reset()
	if m.Cycles() != 0 {
		t.Errorf("after Reset, Cycles = %d", m.Cycles())
	}
	// A nil meter is usable (metering disabled).
	var nilMeter *CostMeter
	nilMeter.Add(3)
	if nilMeter.Cycles() != 0 {
		t.Error("nil meter accrued cycles")
	}
}

func TestAccessModeString(t *testing.T) {
	cases := []struct {
		m    AccessMode
		want string
	}{
		{0, "---"},
		{Read, "r--"},
		{Read | Write, "rw-"},
		{Read | Execute, "r-e"},
		{Read | Write | Execute, "rwe"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.m, got, c.want)
		}
	}
	if !(Read | Write).Has(Read) {
		t.Error("rw does not Has(r)")
	}
	if (Read).Has(Write) {
		t.Error("r Has(w)")
	}
}

// newTestSpace builds a processor with one user segment (number 8) of
// npages pages, all present, and system segment max of 8.
func newTestSpace(t *testing.T, npages int, lockHW bool) (*Processor, *PageTable) {
	t.Helper()
	mem := NewMemory(npages + 4)
	pt := NewPageTable(npages, false)
	for i := 0; i < npages; i++ {
		if err := pt.Set(i, PTW{Present: true, Frame: i}); err != nil {
			t.Fatal(err)
		}
	}
	dt := NewDescriptorTable(16)
	if err := dt.Set(8, SDW{Present: true, Table: pt, Access: Read | Write, MaxRing: UserRing, WriteRing: UserRing}); err != nil {
		t.Fatal(err)
	}
	p := NewProcessor(0, mem, &CostMeter{})
	p.UserDT = dt
	p.SystemSegMax = 8
	p.SystemDT = NewDescriptorTable(8)
	p.Ring = UserRing
	p.DescriptorLockHW = lockHW
	return p, pt
}

func TestTranslateHit(t *testing.T) {
	p, _ := newTestSpace(t, 4, true)
	if err := p.Write(8, 2048+5, 42); err != nil {
		t.Fatal(err)
	}
	w, err := p.Read(8, 2048+5)
	if err != nil {
		t.Fatal(err)
	}
	if w != 42 {
		t.Errorf("read back %d, want 42", w)
	}
	if p.Meter.Cycles() == 0 {
		t.Error("translation accrued no cycles")
	}
}

func TestTranslateSetsUsedModified(t *testing.T) {
	p, pt := newTestSpace(t, 2, true)
	if _, err := p.Read(8, 0); err != nil {
		t.Fatal(err)
	}
	d, _ := pt.Get(0)
	if !d.Used || d.Modified {
		t.Errorf("after read: used=%v modified=%v, want used only", d.Used, d.Modified)
	}
	if err := p.Write(8, PageWords, 1); err != nil {
		t.Fatal(err)
	}
	d, _ = pt.Get(1)
	if !d.Used || !d.Modified {
		t.Errorf("after write: used=%v modified=%v, want both", d.Used, d.Modified)
	}
}

func TestMissingSegmentFault(t *testing.T) {
	p, _ := newTestSpace(t, 1, true)
	_, err := p.Read(9, 0)
	if !IsFault(err, FaultMissingSegment) {
		t.Errorf("read of empty segment number: %v, want missing-segment", err)
	}
	_, err = p.Read(200, 0)
	if !IsFault(err, FaultMissingSegment) {
		t.Errorf("read of out-of-range segment number: %v, want missing-segment", err)
	}
}

func TestBoundsFault(t *testing.T) {
	p, _ := newTestSpace(t, 2, true)
	_, err := p.Read(8, 2*PageWords)
	if !IsFault(err, FaultBounds) {
		t.Errorf("read past bound: %v, want bounds fault", err)
	}
	_, err = p.Read(8, -1)
	if !IsFault(err, FaultBounds) {
		t.Errorf("read of negative offset: %v, want bounds fault", err)
	}
}

func TestAccessFaults(t *testing.T) {
	p, pt := newTestSpace(t, 1, true)
	dt := p.UserDT
	// Read-only segment rejects writes.
	if err := dt.Set(9, SDW{Present: true, Table: pt, Access: Read, MaxRing: UserRing, WriteRing: UserRing}); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(9, 0, 1); !IsFault(err, FaultAccess) {
		t.Errorf("write to read-only segment: %v, want access fault", err)
	}
	// Ring bracket: segment visible only to ring <= 1.
	if err := dt.Set(10, SDW{Present: true, Table: pt, Access: Read | Write, MaxRing: 1, WriteRing: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(10, 0); !IsFault(err, FaultAccess) {
		t.Errorf("ring-4 read of ring-1 segment: %v, want access fault", err)
	}
	// Write ring lower than read ring: user can read, not write.
	if err := dt.Set(11, SDW{Present: true, Table: pt, Access: Read | Write, MaxRing: UserRing, WriteRing: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(11, 0); err != nil {
		t.Errorf("ring-4 read of write-ring-1 segment: %v", err)
	}
	if err := p.Write(11, 0, 1); !IsFault(err, FaultAccess) {
		t.Errorf("ring-4 write of write-ring-1 segment: %v, want access fault", err)
	}
}

func TestSystemSegmentInvisibleToUserRing(t *testing.T) {
	p, _ := newTestSpace(t, 1, true)
	// Install a present system segment at number 3.
	sysPT := NewPageTable(1, true)
	if err := sysPT.Set(0, PTW{Present: true, Frame: 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.SystemDT.Set(3, SDW{Present: true, Table: sysPT, Access: Read | Write, MaxRing: 0, WriteRing: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(3, 0); !IsFault(err, FaultAccess) {
		t.Errorf("user-ring read of system segment number: %v, want access fault", err)
	}
	// The kernel (ring 0) reads it through the system table even
	// though the user table has nothing at number 3.
	err := p.GateCall(KernelRing, true, func() error {
		_, err := p.Read(3, 0)
		return err
	})
	if err != nil {
		t.Errorf("kernel read of system segment: %v", err)
	}
}

func TestMissingPageFaultSetsLockWithHW(t *testing.T) {
	p, pt := newTestSpace(t, 2, true)
	if err := pt.Set(1, PTW{}); err != nil { // page 1 not present
		t.Fatal(err)
	}
	_, err := p.Read(8, PageWords)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMissingPage {
		t.Fatalf("read of missing page: %v, want missing-page fault", err)
	}
	if !f.Locked {
		t.Error("descriptor-lock hardware did not report setting the lock")
	}
	d, _ := pt.Get(1)
	if !d.Lock {
		t.Error("lock bit not set in descriptor")
	}
	seg, page := p.LockedDescriptor()
	if seg != 8 || page != 1 {
		t.Errorf("locked-descriptor register = (%d,%d), want (8,1)", seg, page)
	}
	// A second reference now takes a locked-descriptor fault.
	_, err = p.Read(8, PageWords)
	if !IsFault(err, FaultLockedDescriptor) {
		t.Errorf("second reference: %v, want locked-descriptor fault", err)
	}
	// After unlock and page arrival, the reference completes.
	if err := pt.Set(1, PTW{Present: true, Frame: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(8, PageWords); err != nil {
		t.Errorf("reference after service: %v", err)
	}
}

func TestMissingPageFaultWithoutLockHW(t *testing.T) {
	p, pt := newTestSpace(t, 1, false)
	if err := pt.Set(0, PTW{}); err != nil {
		t.Fatal(err)
	}
	_, err := p.Read(8, 0)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMissingPage {
		t.Fatalf("read of missing page: %v, want missing-page fault", err)
	}
	if f.Locked {
		t.Error("baseline hardware reported setting a lock bit")
	}
	d, _ := pt.Get(0)
	if d.Lock {
		t.Error("baseline hardware set the lock bit")
	}
}

func TestQuotaTrapFault(t *testing.T) {
	p, pt := newTestSpace(t, 2, true)
	if err := pt.Set(1, PTW{QuotaTrap: true}); err != nil {
		t.Fatal(err)
	}
	_, err := p.Read(8, PageWords+7)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultQuota {
		t.Fatalf("reference to never-used page: %v, want quota fault", err)
	}
	if f.Seg != 8 || f.Page != 1 || f.Offset != PageWords+7 {
		t.Errorf("quota fault address = seg %d page %d off %d", f.Seg, f.Page, f.Offset)
	}
}

func TestOnlyOneProcessorWinsTheLock(t *testing.T) {
	// Two simulated processors fault on the same missing page
	// concurrently; the descriptor-lock hardware must let exactly
	// one of them service the fault, with no interpretive
	// retranslation required.
	mem := NewMemory(4)
	pt := NewPageTable(1, false)
	dt := NewDescriptorTable(16)
	if err := dt.Set(8, SDW{Present: true, Table: pt, Access: Read | Write, MaxRing: UserRing, WriteRing: UserRing}); err != nil {
		t.Fatal(err)
	}
	meter := &CostMeter{}
	for trial := 0; trial < 100; trial++ {
		if err := pt.Set(0, PTW{}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		winners := make([]bool, 2)
		for i := 0; i < 2; i++ {
			p := NewProcessor(i, mem, meter)
			p.UserDT = dt
			p.SystemSegMax = 0
			p.Ring = UserRing
			p.DescriptorLockHW = true
			wg.Add(1)
			go func(i int, p *Processor) {
				defer wg.Done()
				_, err := p.Read(8, 0)
				if f, ok := AsFault(err); ok && f.Kind == FaultMissingPage && f.Locked {
					winners[i] = true
				}
			}(i, p)
		}
		wg.Wait()
		n := 0
		for _, w := range winners {
			if w {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("trial %d: %d processors won the descriptor lock, want exactly 1", trial, n)
		}
	}
}

func TestPageTableUnlock(t *testing.T) {
	pt := NewPageTable(1, false)
	if err := pt.Set(0, PTW{Lock: true}); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unlock(0); err != nil {
		t.Fatal(err)
	}
	d, _ := pt.Get(0)
	if d.Lock {
		t.Error("descriptor still locked after Unlock")
	}
	if err := pt.Unlock(5); err == nil {
		t.Error("Unlock of out-of-range page succeeded")
	}
}

func TestPageTableGrow(t *testing.T) {
	pt := NewPageTable(2, false)
	pt.Grow(5)
	if pt.Len() != 5 {
		t.Errorf("Len after Grow(5) = %d", pt.Len())
	}
	pt.Grow(3) // never shrinks
	if pt.Len() != 5 {
		t.Errorf("Len after Grow(3) = %d", pt.Len())
	}
	d, err := pt.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Present {
		t.Error("grown descriptor is present")
	}
}

func TestGateCall(t *testing.T) {
	p, _ := newTestSpace(t, 1, true)
	if p.Ring != UserRing {
		t.Fatalf("start ring = %d", p.Ring)
	}
	before := p.Meter.Snapshot()
	var ringInside int
	if err := p.GateCall(KernelRing, true, func() error {
		ringInside = p.Ring
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ringInside != KernelRing {
		t.Errorf("ring inside gate = %d, want %d", ringInside, KernelRing)
	}
	if p.Ring != UserRing {
		t.Errorf("ring after return = %d, want %d", p.Ring, UserRing)
	}
	if got := p.Meter.Since(before); got < 2*CycRingCross {
		t.Errorf("gate call accrued %d cycles, want >= %d", got, 2*CycRingCross)
	}
	// Inward call without a gate faults.
	err := p.GateCall(KernelRing, false, func() error { return nil })
	if !IsFault(err, FaultGate) {
		t.Errorf("inward non-gate call: %v, want gate fault", err)
	}
	// Same-ring call needs no gate and accrues no crossing cost.
	before = p.Meter.Snapshot()
	if err := p.GateCall(UserRing, false, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := p.Meter.Since(before); got != 0 {
		t.Errorf("same-ring call accrued %d cycles", got)
	}
	if err := p.GateCall(NRings, true, func() error { return nil }); err == nil {
		t.Error("call to out-of-range ring succeeded")
	}
}

func TestWakeupWaitingSwitch(t *testing.T) {
	p, _ := newTestSpace(t, 1, true)
	if p.WakeupWaiting() {
		t.Error("switch initially set")
	}
	p.SetWakeupWaiting()
	if !p.WakeupWaiting() {
		t.Error("switch not set after SetWakeupWaiting")
	}
	if !p.ClearWakeupWaiting() {
		t.Error("ClearWakeupWaiting did not report it was set")
	}
	if p.ClearWakeupWaiting() {
		t.Error("second ClearWakeupWaiting reported set")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: FaultQuota, Seg: 12, Offset: 1030, Page: 1, Ring: 4}
	msg := f.Error()
	if msg == "" {
		t.Fatal("empty fault message")
	}
	for _, want := range []string{"quota", "12", "1030"} {
		if !contains(msg, want) {
			t.Errorf("fault message %q missing %q", msg, want)
		}
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown fault kind has empty name")
	}
	if IsFault(nil, FaultQuota) {
		t.Error("IsFault(nil) = true")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: for any offset, PageBase(PageOf(off)) <= off and the
// distance is less than one page.
func TestPageOfProperty(t *testing.T) {
	f := func(off uint16) bool {
		o := int(off)
		p := PageOf(o)
		return PageBase(p) <= o && o-PageBase(p) < PageWords
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: masking is idempotent and stays within 36 bits.
func TestWordMaskProperty(t *testing.T) {
	f := func(v uint64) bool {
		w := Word(v).Masked()
		return w == w.Masked() && w>>36 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescriptorTableHousekeeping(t *testing.T) {
	dt := NewDescriptorTable(4)
	if dt.Len() != 4 {
		t.Errorf("Len = %d", dt.Len())
	}
	pt := NewPageTable(1, true)
	if !pt.Wired() {
		t.Error("wired table not wired")
	}
	if err := dt.Set(2, SDW{Present: true, Table: pt, Access: Read, MaxRing: 0}); err != nil {
		t.Fatal(err)
	}
	if err := dt.Clear(2); err != nil {
		t.Fatal(err)
	}
	sdw, err := dt.Get(2)
	if err != nil || sdw.Present {
		t.Errorf("cleared descriptor = %+v, %v", sdw, err)
	}
	if _, err := dt.Get(9); err == nil {
		t.Error("Get out of range succeeded")
	}
	if err := dt.Set(-1, SDW{}); err == nil {
		t.Error("Set out of range succeeded")
	}
}
