package hw

import (
	"sync/atomic"

	"multics/internal/trace"
)

// Simulated cycle costs for the operation classes the paper's
// performance discussion turns on. The absolute values are arbitrary;
// only their ratios matter, and those are chosen so that the shapes the
// paper reports (ring crossings dominating a moved-out linker, IPC
// adding a small unavoidable cost to a multi-process memory manager,
// and so on) emerge from the model rather than being asserted.
const (
	// CycMemRef is one primary-memory word reference.
	CycMemRef = 1
	// CycTableWalk is one address translation through the tables in
	// memory (descriptor fetch plus page-table fetch) when the
	// translation hits.
	CycTableWalk = 4
	// CycAssocHit is one address translation answered by the
	// processor's associative memory, far below CycTableWalk — the
	// 6180 fast path the kernel must keep coherent.
	CycAssocHit = 1
	// CycFault is the hardware cost of taking any exception: saving
	// processor state and transferring to the handler.
	CycFault = 50
	// CycRingCross is one crossing of a protection-ring boundary
	// (a gate call or its return), including argument validation.
	CycRingCross = 30
	// CycIPC is one message through the real-memory message queue
	// between the virtual-processor level and the user-process level
	// (send, wakeup, receive).
	CycIPC = 120
	// CycDispatch is one virtual-processor dispatch (binding a
	// process state to a processor).
	CycDispatch = 80
	// CycProcessSwap is loading or storing a user-process state
	// through the virtual memory (the expensive, top-level half of
	// the two-level process implementation).
	CycProcessSwap = 400
	// CycDiskSeek is positioning a disk pack before a transfer: the
	// full average-distance seek an isolated transfer pays.
	CycDiskSeek = 1000
	// CycDiskSeekShort is a short positioning movement between nearby
	// records, the cost tier elevator-ordered transfers earn: grouped
	// requests pay this instead of the full CycDiskSeek.
	CycDiskSeekShort = 250
	// CycDiskRecord is transferring one 1024-word record.
	CycDiskRecord = 2000
	// CycDiskQueue is enqueuing one request on a pack's device queue:
	// the submitter-side bookkeeping of the asynchronous pipeline.
	CycDiskQueue = 10
	// CycLockWait is one spin on a held global lock (baseline page
	// control) or locked descriptor (kernel design).
	CycLockWait = 5
)

// Language identifies the implementation language of a module body for
// the cost model. The paper reports that recoding an assembly-language
// module in PL/I roughly halves its source lines but slightly more
// than doubles its generated instructions; BodyCycles reproduces that
// factor.
type Language int

const (
	// ASM is hand-coded assembly language (ALM).
	ASM Language = iota
	// PLI is PL/I, the system programming language of Multics.
	PLI
)

// PLIInstructionFactor is the instruction-count penalty, in tenths, of
// a PL/I body relative to the same algorithm in assembly ("somewhat
// more than a factor of two" -- Huber 1976). 22 means x2.2.
const PLIInstructionFactor = 22

// BodyCycles returns the simulated cycles consumed by an algorithm
// body whose assembly-language cost would be base cycles, when coded
// in lang.
func BodyCycles(base int64, lang Language) int64 {
	if lang == PLI {
		return base * PLIInstructionFactor / 10
	}
	return base
}

// MeterCPUs is the number of per-processor cycle counters a CostMeter
// carries; processor ids wrap modulo it.
const MeterCPUs = 64

// A CostMeter accumulates simulated machine cycles. It is safe for
// concurrent use (the multiprocessor fault tests run two simulated
// processors against one meter). Alongside the global total it keeps
// a per-processor account: cycles accrued by a goroutine bound to a
// simulated processor (trace.BindCPU) are also charged to that
// processor, so a parallel run's makespan — the busiest processor's
// cycles — is measurable. Unbound accrual (the deterministic
// single-processor mode never binds) costs one extra atomic load.
type CostMeter struct {
	cycles atomic.Int64
	percpu [MeterCPUs]atomic.Int64
}

// Add accrues n simulated cycles.
func (m *CostMeter) Add(n int64) {
	if m != nil {
		m.cycles.Add(n)
		if c := trace.BoundCPU(); c > 0 {
			m.percpu[int(c-1)%MeterCPUs].Add(n)
		}
	}
}

// AddUnbound accrues n simulated cycles to the global total only,
// never to a processor's account: work a device performs on its own
// engine (a disk pack positioning its heads and transferring records
// from its queue) rather than work done by whichever processor happens
// to run the device service loop. Keeping it off the per-processor
// accounts is what lets a makespan be modeled as the busier of the
// busiest processor and the busiest device.
func (m *CostMeter) AddUnbound(n int64) {
	if m != nil {
		m.cycles.Add(n)
	}
}

// CPUCycles reports the cycles charged while bound to processor id.
func (m *CostMeter) CPUCycles(id int) int64 {
	if m == nil || id < 0 {
		return 0
	}
	return m.percpu[id%MeterCPUs].Load()
}

// AddBody accrues the cost of an algorithm body of base assembly
// cycles implemented in lang.
func (m *CostMeter) AddBody(base int64, lang Language) {
	m.Add(BodyCycles(base, lang))
}

// Cycles reports the total simulated cycles accrued so far.
func (m *CostMeter) Cycles() int64 {
	if m == nil {
		return 0
	}
	return m.cycles.Load()
}

// Reset zeroes the meter, including every per-processor account.
func (m *CostMeter) Reset() {
	if m != nil {
		m.cycles.Store(0)
		for i := range m.percpu {
			m.percpu[i].Store(0)
		}
	}
}

// A MeterSnapshot is the meter's reading at one instant. Taking one
// and later asking Since is the idiom for costing an interval;
// callers should not subtract raw Cycles values by hand.
type MeterSnapshot struct {
	// Cycles is the meter reading when the snapshot was taken.
	Cycles int64
}

// Snapshot captures the meter's current reading.
func (m *CostMeter) Snapshot() MeterSnapshot {
	return MeterSnapshot{Cycles: m.Cycles()}
}

// Since reports the cycles accrued since prev was taken.
func (m *CostMeter) Since(prev MeterSnapshot) int64 {
	return m.Cycles() - prev.Cycles
}
