package hw

// Word is one 36-bit Multics machine word. The simulation stores words
// in a uint64 but masks all stores to 36 bits so that arithmetic
// behaves like the real machine's.
type Word uint64

// WordMask keeps the low 36 bits of a stored value.
const WordMask Word = (1 << 36) - 1

// PageWords is the number of words in one page (and one disk record).
const PageWords = 1024

// Masked returns w truncated to 36 bits.
func (w Word) Masked() Word { return w & WordMask }

// PageOf returns the page number containing word offset off.
func PageOf(off int) int { return off / PageWords }

// PageBase returns the first word offset of page p.
func PageBase(p int) int { return p * PageWords }
