// Package hw simulates the hardware base assumed by the Multics kernel
// design project: a Honeywell 6180-style processor with segmented,
// paged addressing, rings of protection, and primary ("core") memory.
//
// The simulation includes the two processor additions the paper
// proposes for Kernel/Multics:
//
//   - a second descriptor base register, so that segment numbers below
//     a threshold translate through a permanently resident, per-system
//     descriptor table and kernel modules cannot depend on the
//     machinery that supports user address spaces; and
//
//   - a lock bit in each page descriptor that the hardware sets
//     atomically when it takes a missing-page fault, plus a
//     locked-descriptor exception, a wakeup-waiting switch and a
//     locked-descriptor-address register, which together eliminate the
//     interpretive retranslation the 1974 page control needed.
//
// It also includes the exception-causing ("quota trap") bit on page
// descriptors of never-before-used pages, which turns segment growth
// into a distinct hardware exception delivered above page control.
//
// Every simulated memory reference, table walk, fault, ring crossing
// and disk transfer accrues simulated machine cycles on a CostMeter,
// so that the paper's relative performance claims can be reproduced
// deterministically.
package hw
