package hw

import (
	"errors"
	"testing"
)

// assocFixture is a processor with an associative memory fitted, a
// user descriptor table, and one segment of npages present pages
// (page i in frame i).
type assocFixture struct {
	mem *Memory
	mtr *CostMeter
	p   *Processor
	dt  *DescriptorTable
	pt  *PageTable
}

func newAssocFixture(t *testing.T, npages int) *assocFixture {
	t.Helper()
	f := &assocFixture{
		mem: NewMemory(npages + 2),
		mtr: &CostMeter{},
		dt:  NewDescriptorTable(8),
		pt:  NewPageTable(npages, false),
	}
	for i := 0; i < npages; i++ {
		if err := f.pt.Set(i, PTW{Present: true, Frame: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.dt.Set(1, SDW{Present: true, Table: f.pt, Access: Read | Write, MaxRing: NRings - 1, WriteRing: NRings - 1}); err != nil {
		t.Fatal(err)
	}
	f.p = NewProcessor(0, f.mem, f.mtr)
	f.p.UserDT = f.dt
	f.p.Assoc = NewAssociativeMemory()
	return f
}

// A repeated reference is answered from the associative memory at the
// hit cost; the first reference walks the tables and fills it.
func TestAssocHitAfterWalk(t *testing.T) {
	f := newAssocFixture(t, 2)
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	st := f.p.Assoc.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first reference: %+v, want one miss", st)
	}
	before := f.mtr.Cycles()
	if _, err := f.p.Read(1, 5); err != nil {
		t.Fatal(err)
	}
	if got := f.mtr.Cycles() - before; got != CycAssocHit+CycMemRef {
		t.Errorf("hit charged %d cycles, want %d", got, CycAssocHit+CycMemRef)
	}
	st = f.p.Assoc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after second reference: %+v, want one hit one miss", st)
	}
	count, cycles := f.p.TranslationStats()
	if count != 2 || cycles != CycTableWalk+CycAssocHit {
		t.Errorf("TranslationStats = %d, %d; want 2, %d", count, cycles, CycTableWalk+CycAssocHit)
	}
}

// A hit writes the reference bits through to the page table even
// though the walk is skipped; the eviction clock depends on them.
func TestAssocHitWritesThroughReferenceBits(t *testing.T) {
	f := newAssocFixture(t, 1)
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.pt.Update(0, func(d *PTW) { d.Used = false; d.Modified = false }); err != nil {
		t.Fatal(err)
	}
	if err := f.p.Write(1, 0, 7); err != nil {
		t.Fatal(err)
	}
	if st := f.p.Assoc.Stats(); st.Hits != 1 {
		t.Fatalf("write was not a cache hit: %+v", st)
	}
	d, err := f.pt.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Used || !d.Modified {
		t.Errorf("PTW after cached write = %+v; want Used and Modified set", d)
	}
}

// A ring change between references must not let a cached SDW grant
// access the new ring may not use: the lookup re-validates the ring
// checks and falls through to the walk, which raises the canonical
// access fault.
func TestAssocRingChangeDoesNotServeStaleSDW(t *testing.T) {
	f := newAssocFixture(t, 1)
	// Kernel-only segment, filled while in ring 0.
	if err := f.dt.Set(2, SDW{Present: true, Table: f.pt, Access: Read, MaxRing: KernelRing, WriteRing: KernelRing}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.p.Read(2, 0); err != nil {
		t.Fatal(err)
	}
	f.p.Ring = UserRing
	_, err := f.p.Read(2, 0)
	var flt *Fault
	if !errors.As(err, &flt) || flt.Kind != FaultAccess {
		t.Fatalf("outer-ring reference after inner-ring fill: err = %v, want access fault", err)
	}
	if st := f.p.Assoc.Stats(); st.Hits != 0 {
		t.Errorf("outer-ring reference hit the cache: %+v", st)
	}

	// Same for the write bracket: readable from ring 4, writable
	// only from ring 0. The read fills; the write must still fault.
	if err := f.dt.Set(3, SDW{Present: true, Table: f.pt, Access: Read | Write, MaxRing: NRings - 1, WriteRing: KernelRing}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.p.Read(3, 0); err != nil {
		t.Fatal(err)
	}
	err = f.p.Write(3, 0, 1)
	if !errors.As(err, &flt) || flt.Kind != FaultAccess {
		t.Fatalf("outer-ring store after read fill: err = %v, want access fault", err)
	}
}

// Once a descriptor is locked (fault service in progress) and the
// shootdown has run, references take the locked-descriptor fault; the
// cache must not serve the old translation.
func TestAssocLockedDescriptorBypassesCache(t *testing.T) {
	f := newAssocFixture(t, 1)
	bus := NewShootdownBus()
	bus.Attach(f.p.Assoc)
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	// The page frame manager's protocol: update the descriptor,
	// then broadcast before the frame is touched again.
	if _, err := f.pt.Update(0, func(d *PTW) { d.Present = false; d.Frame = 0; d.Lock = true }); err != nil {
		t.Fatal(err)
	}
	bus.InvalidatePTW("page-frame", f.pt, 0)
	_, err := f.p.Read(1, 0)
	var flt *Fault
	if !errors.As(err, &flt) || flt.Kind != FaultLockedDescriptor {
		t.Fatalf("reference to locked descriptor: err = %v, want locked-descriptor fault", err)
	}
	if st := f.p.Assoc.Stats(); st.Hits != 0 {
		t.Errorf("locked reference served from cache: %+v", st)
	}
	if bus.Shootdowns() != 1 {
		t.Errorf("Shootdowns = %d, want 1", bus.Shootdowns())
	}
}

// A shootdown clears the translation on every attached processor, not
// just the broadcaster's.
func TestShootdownClearsAllProcessors(t *testing.T) {
	f := newAssocFixture(t, 2)
	p2 := NewProcessor(1, f.mem, f.mtr)
	p2.UserDT = f.dt
	p2.Assoc = NewAssociativeMemory()
	bus := NewShootdownBus()
	bus.Attach(f.p.Assoc)
	bus.Attach(p2.Assoc)
	for _, p := range []*Processor{f.p, p2} {
		if _, err := p.Read(1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Read(1, 0); err != nil {
			t.Fatal(err)
		}
		if st := p.Assoc.Stats(); st.Hits != 1 {
			t.Fatalf("cpu %d not warmed: %+v", p.ID, st)
		}
	}
	bus.InvalidatePTW("page-frame", f.pt, 0)
	for _, p := range []*Processor{f.p, p2} {
		if _, err := p.Read(1, 0); err != nil {
			t.Fatal(err)
		}
		if st := p.Assoc.Stats(); st.Misses != 2 {
			t.Errorf("cpu %d after shootdown: %+v, want a second miss", p.ID, st)
		}
	}
	// Wildcard: clear every page of the table.
	bus.InvalidatePTW("page-frame", f.pt, -1)
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	if st := f.p.Assoc.Stats(); st.Misses != 3 {
		t.Errorf("after wildcard shootdown: %+v, want a third miss", st)
	}
}

// A segment shootdown removes the cached SDW so the next reference
// sees the new descriptor.
func TestSDWShootdownSeesNewDescriptor(t *testing.T) {
	f := newAssocFixture(t, 1)
	bus := NewShootdownBus()
	bus.Attach(f.p.Assoc)
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	// Disconnect, as segment control does on Disconnect.
	if err := f.dt.Clear(1); err != nil {
		t.Fatal(err)
	}
	bus.InvalidateSDW("segment", f.dt, 1)
	_, err := f.p.Read(1, 0)
	var flt *Fault
	if !errors.As(err, &flt) || flt.Kind != FaultMissingSegment {
		t.Fatalf("reference after disconnect: err = %v, want missing-segment fault", err)
	}
}

// A process switch clears the user entries but keeps the wired system
// entries, and switching to the same table clears nothing.
func TestSwitchUserDTClearsOnlyUserEntries(t *testing.T) {
	f := newAssocFixture(t, 2)
	sysDT := NewDescriptorTable(2)
	sysPT := NewPageTable(1, true)
	if err := sysPT.Set(0, PTW{Present: true, Frame: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sysDT.Set(0, SDW{Present: true, Table: sysPT, Access: Read | Write, MaxRing: KernelRing, WriteRing: KernelRing}); err != nil {
		t.Fatal(err)
	}
	f.p.SystemDT = sysDT
	f.p.SystemSegMax = 1
	if _, err := f.p.Read(0, 0); err != nil { // system fill
		t.Fatal(err)
	}
	if _, err := f.p.Read(1, 0); err != nil { // user fill
		t.Fatal(err)
	}
	// Same table: no clear.
	f.p.SwitchUserDT(f.dt)
	if st := f.p.Assoc.Stats(); st.Cleared != 0 {
		t.Fatalf("switch to same table cleared %d entries", st.Cleared)
	}
	// New address space: user entries go, system entries stay.
	dt2 := NewDescriptorTable(8)
	if err := dt2.Set(1, SDW{Present: true, Table: f.pt, Access: Read, MaxRing: NRings - 1, WriteRing: NRings - 1}); err != nil {
		t.Fatal(err)
	}
	f.p.SwitchUserDT(dt2)
	if st := f.p.Assoc.Stats(); st.Cleared != 2 {
		t.Fatalf("process switch cleared %d entries, want 2 (SDW and PTW of the user segment)", st.Cleared)
	}
	before := f.p.Assoc.Stats().Hits
	if _, err := f.p.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	if hits := f.p.Assoc.Stats().Hits; hits != before+1 {
		t.Errorf("system entry did not survive the switch: hits %d -> %d", before, hits)
	}
	if _, err := f.p.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	if st := f.p.Assoc.Stats(); st.Misses != 3 {
		t.Errorf("reference through new table: %+v, want a fresh miss", st)
	}
}

// Nil receivers are inert: uncached configurations need no guards.
func TestNilBusAndNilAssoc(t *testing.T) {
	var bus *ShootdownBus
	bus.Attach(NewAssociativeMemory())
	bus.InvalidatePTW("x", NewPageTable(1, false), 0)
	bus.InvalidateSDW("x", NewDescriptorTable(1), 0)
	if bus.Shootdowns() != 0 {
		t.Error("nil bus counted shootdowns")
	}
	var a *AssociativeMemory
	if st := a.Stats(); st != (AssocMemStats{}) {
		t.Errorf("nil assoc stats = %+v", st)
	}
	if fp := a.Fingerprint(); fp != "assoc: off" {
		t.Errorf("nil assoc fingerprint = %q", fp)
	}
	// A live bus ignores nil attachments and nil tables.
	b := NewShootdownBus()
	b.Attach(nil)
	b.InvalidatePTW("x", nil, 0)
	b.InvalidateSDW("x", nil, 0)
	if b.Shootdowns() != 0 {
		t.Error("nil-table broadcast counted")
	}
}

// Two identical reference sequences leave byte-identical fingerprints:
// the cache state is part of the determinism surface.
func TestAssocFingerprintDeterministic(t *testing.T) {
	run := func() string {
		f := newAssocFixture(t, 2)
		for i := 0; i < 3; i++ {
			if _, err := f.p.Read(1, i%2*PageWords); err != nil {
				t.Fatal(err)
			}
		}
		return f.p.Assoc.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("fingerprints differ:\n%s\nvs\n%s", a, b)
	}
	if a == "" || a == "assoc: off" {
		t.Errorf("fingerprint empty: %q", a)
	}
}
