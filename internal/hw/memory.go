package hw

import "fmt"

// Memory is the simulated primary ("core") memory: a fixed number of
// page frames of PageWords words each. Frame ownership and allocation
// policy belong to higher layers (the core segment manager wires
// frames at initialization; the page frame manager multiplexes the
// rest); Memory itself only stores words and bounds-checks addresses.
type Memory struct {
	words []Word
}

// NewMemory returns a memory of the given number of page frames.
func NewMemory(frames int) *Memory {
	if frames <= 0 {
		panic(fmt.Sprintf("hw: NewMemory frames = %d", frames))
	}
	return &Memory{words: make([]Word, frames*PageWords)}
}

// Frames reports the number of page frames.
func (m *Memory) Frames() int { return len(m.words) / PageWords }

// Words reports the total number of words.
func (m *Memory) Words() int { return len(m.words) }

// Read returns the word at absolute address addr.
func (m *Memory) Read(addr int) (Word, error) {
	if addr < 0 || addr >= len(m.words) {
		return 0, fmt.Errorf("hw: read of absolute address %d outside memory of %d words", addr, len(m.words))
	}
	return m.words[addr], nil
}

// Write stores w at absolute address addr.
func (m *Memory) Write(addr int, w Word) error {
	if addr < 0 || addr >= len(m.words) {
		return fmt.Errorf("hw: write of absolute address %d outside memory of %d words", addr, len(m.words))
	}
	m.words[addr] = w.Masked()
	return nil
}

// FrameBase returns the absolute address of the first word of frame f.
func (m *Memory) FrameBase(f int) int { return f * PageWords }

// ReadFrame copies the contents of frame f into dst, which must have
// PageWords elements.
func (m *Memory) ReadFrame(f int, dst []Word) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if len(dst) != PageWords {
		return fmt.Errorf("hw: ReadFrame buffer of %d words, want %d", len(dst), PageWords)
	}
	copy(dst, m.words[f*PageWords:(f+1)*PageWords])
	return nil
}

// WriteFrame copies src, which must have PageWords elements, into
// frame f.
func (m *Memory) WriteFrame(f int, src []Word) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if len(src) != PageWords {
		return fmt.Errorf("hw: WriteFrame buffer of %d words, want %d", len(src), PageWords)
	}
	copy(m.words[f*PageWords:(f+1)*PageWords], src)
	return nil
}

// ZeroFrame clears every word of frame f.
func (m *Memory) ZeroFrame(f int) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	clear(m.words[f*PageWords : (f+1)*PageWords])
	return nil
}

// FrameIsZero reports whether every word of frame f is zero. The page
// removal algorithm of the storage system must scan page contents this
// way to implement the zero-page storage optimization -- the paper
// notes this gives the removal algorithm otherwise unnecessary access
// to the data of every page in the system.
func (m *Memory) FrameIsZero(f int) (bool, error) {
	if err := m.checkFrame(f); err != nil {
		return false, err
	}
	for _, w := range m.words[f*PageWords : (f+1)*PageWords] {
		if w != 0 {
			return false, nil
		}
	}
	return true, nil
}

func (m *Memory) checkFrame(f int) error {
	if f < 0 || f >= m.Frames() {
		return fmt.Errorf("hw: frame %d outside memory of %d frames", f, m.Frames())
	}
	return nil
}
