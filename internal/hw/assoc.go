package hw

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"multics/internal/schedsim"
	"multics/internal/trace"
)

// This file simulates the 6180 associative memory: a small
// per-processor cache of segment descriptor words and page table words
// consulted before any walk of the translation tables in memory. The
// paper's redesign keeps this hardware fast path while restructuring
// the kernel around it — the second, wired per-processor translation
// table and the descriptor-lock exceptions exist precisely so the
// descriptor data the associative memory caches stays coherent under a
// multiprocess kernel. Any kernel path that changes an SDW or PTW must
// therefore clear its own associative memory and send every other
// processor a connect fault telling it to do the same; ShootdownBus is
// that primitive.

const (
	// AssocSDWSlots is the number of SDW entries per processor,
	// direct-mapped by segment number.
	AssocSDWSlots = 16
	// AssocPTWSlots is the number of PTW entries per processor,
	// direct-mapped by (segment number, page).
	AssocPTWSlots = 64
)

// assocSDW is one cached segment descriptor word. The descriptor
// table pointer is recorded so a lookup never serves an entry filled
// from a different table that happened to use the same segment number,
// and so shootdowns can match by identity; it is never dereferenced
// for slot selection, which must be deterministic across runs.
type assocSDW struct {
	valid  bool
	dt     *DescriptorTable
	segno  int
	system bool
	sdw    SDW
}

// assocPTW is one cached page table word: the frame a (segno, page)
// pair translated to, tagged with the owning page table's identity.
type assocPTW struct {
	valid  bool
	pt     *PageTable
	segno  int
	page   int
	frame  int
	system bool
}

// AssocMemStats is one associative memory's counters.
type AssocMemStats struct {
	// Hits counts translations answered from the cache.
	Hits int64
	// Misses counts translations that had to walk the tables.
	Misses int64
	// Cleared counts entries invalidated (shootdowns, local clears
	// and process switches combined).
	Cleared int64
}

// An AssociativeMemory is one processor's translation cache. Its
// mutex doubles as the processor's reference lock: the processor holds
// it across translate-plus-memory-access, and a shootdown acquires it,
// so by the time a broadcast returns, every reference that could have
// used a now-stale entry has completed and no later reference can.
type AssociativeMemory struct {
	mu      sync.Mutex
	sdws    [AssocSDWSlots]assocSDW
	ptws    [AssocPTWSlots]assocPTW
	hits    int64
	misses  int64
	cleared int64
}

// NewAssociativeMemory returns an empty associative memory.
func NewAssociativeMemory() *AssociativeMemory { return new(AssociativeMemory) }

// sdwSlot and ptwSlot are the direct-mapped slot indices. They hash
// only segment and page numbers — never pointers — so cache geometry
// is identical across runs and the single-processor event stream stays
// byte-deterministic.
func sdwSlot(segno int) int { return segno % AssocSDWSlots }

// The multiplier is odd so it is coprime with the power-of-two slot
// count and distinct segments spread across slots.
func ptwSlot(segno, page int) int {
	return (segno*257 + page) % AssocPTWSlots
}

// lookupSDWLocked returns the cached SDW for (dt, segno), if any.
// The caller holds a.mu.
func (a *AssociativeMemory) lookupSDWLocked(dt *DescriptorTable, segno int) (SDW, bool) {
	e := &a.sdws[sdwSlot(segno)]
	if e.valid && e.dt == dt && e.segno == segno {
		return e.sdw, true
	}
	return SDW{}, false
}

// lookupPTWLocked returns the cached frame for (pt, segno, page), if
// any. The caller holds a.mu.
func (a *AssociativeMemory) lookupPTWLocked(pt *PageTable, segno, page int) (int, bool) {
	e := &a.ptws[ptwSlot(segno, page)]
	if e.valid && e.pt == pt && e.segno == segno && e.page == page {
		return e.frame, true
	}
	return 0, false
}

// fillLocked caches a successful translation: the SDW that passed the
// access checks and the present, unlocked PTW it yielded. The caller
// holds a.mu.
func (a *AssociativeMemory) fillLocked(dt *DescriptorTable, segno, page, frame int, sdw SDW, system bool) {
	a.sdws[sdwSlot(segno)] = assocSDW{valid: true, dt: dt, segno: segno, system: system, sdw: sdw}
	a.ptws[ptwSlot(segno, page)] = assocPTW{valid: true, pt: sdw.Table, segno: segno, page: page, frame: frame, system: system}
}

// invalidatePTW clears the cached PTW for (pt, page); a negative page
// clears every entry of pt. It returns the entries cleared.
func (a *AssociativeMemory) invalidatePTW(pt *PageTable, page int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for i := range a.ptws {
		e := &a.ptws[i]
		if e.valid && e.pt == pt && (page < 0 || e.page == page) {
			*e = assocPTW{}
			n++
		}
	}
	a.cleared += int64(n)
	return n
}

// invalidateSDW clears the cached SDW for (dt, segno); a negative
// segno clears every entry of dt. It returns the entries cleared.
func (a *AssociativeMemory) invalidateSDW(dt *DescriptorTable, segno int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for i := range a.sdws {
		e := &a.sdws[i]
		if e.valid && e.dt == dt && (segno < 0 || e.segno == segno) {
			*e = assocSDW{}
			n++
		}
	}
	a.cleared += int64(n)
	return n
}

// clearUserLocked invalidates every entry filled through a user
// descriptor table, keeping the wired system entries — the selective
// clear a process switch performs. The caller holds a.mu.
func (a *AssociativeMemory) clearUserLocked() int {
	n := 0
	for i := range a.sdws {
		if a.sdws[i].valid && !a.sdws[i].system {
			a.sdws[i] = assocSDW{}
			n++
		}
	}
	for i := range a.ptws {
		if a.ptws[i].valid && !a.ptws[i].system {
			a.ptws[i] = assocPTW{}
			n++
		}
	}
	a.cleared += int64(n)
	return n
}

// HoldReference runs fn while holding the associative memory's mutex —
// the processor's reference lock. It models a processor in the middle
// of a reference sequence that translated through this cache: until fn
// returns, a shootdown broadcast targeting this processor cannot
// complete. Tests of shootdown ordering use it to pin the window a
// real reference would occupy.
func (a *AssociativeMemory) HoldReference(fn func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fn()
}

// Stats returns the memory's counters.
func (a *AssociativeMemory) Stats() AssocMemStats {
	if a == nil {
		return AssocMemStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return AssocMemStats{Hits: a.hits, Misses: a.misses, Cleared: a.cleared}
}

// Fingerprint renders the cache's valid entries and counters in a
// fixed format, part of the determinism surface: two identical
// single-processor runs must produce byte-identical fingerprints.
func (a *AssociativeMemory) Fingerprint() string {
	if a == nil {
		return "assoc: off"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "assoc: hits=%d misses=%d cleared=%d\n", a.hits, a.misses, a.cleared)
	for i, e := range a.sdws {
		if e.valid {
			fmt.Fprintf(&b, "  sdw[%d] seg=%d sys=%t ring=%d/%d acc=%d\n",
				i, e.segno, e.system, e.sdw.MaxRing, e.sdw.WriteRing, int(e.sdw.Access))
		}
	}
	for i, e := range a.ptws {
		if e.valid {
			fmt.Fprintf(&b, "  ptw[%d] seg=%d page=%d frame=%d sys=%t\n",
				i, e.segno, e.page, e.frame, e.system)
		}
	}
	return b.String()
}

// A ShootdownBus is the connect-fault plane: it carries selective
// associative-memory invalidations to every processor. A kernel path
// that changes a descriptor broadcasts after the table update and
// before the old translation's target (a page frame, a record) is
// reused; because each processor's references hold its associative
// memory's mutex, the broadcast returning means no processor holds or
// can regain the stale translation. Broadcasters must not hold the
// descriptor or page table lock they just updated — the bus takes each
// processor's cache mutex in turn, and a reference path holds that
// mutex while taking table locks.
//
// A nil bus is valid and does nothing, so uncached configurations need
// no guards at the call sites.
type ShootdownBus struct {
	mu         sync.Mutex
	mems       []*AssociativeMemory
	sink       trace.Sink
	shootdowns atomic.Int64
}

// NewShootdownBus returns an empty bus.
func NewShootdownBus() *ShootdownBus { return new(ShootdownBus) }

// Attach connects one processor's associative memory to the bus.
func (b *ShootdownBus) Attach(a *AssociativeMemory) {
	if b == nil || a == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mems = append(b.mems, a)
}

// SetTrace directs the bus's clear events to s.
func (b *ShootdownBus) SetTrace(s trace.Sink) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sink = s
}

// Shootdowns reports the broadcasts sent so far.
func (b *ShootdownBus) Shootdowns() int64 {
	if b == nil {
		return 0
	}
	return b.shootdowns.Load()
}

func (b *ShootdownBus) targets() ([]*AssociativeMemory, trace.Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mems, b.sink
}

// InvalidatePTW broadcasts a page shootdown: every processor forgets
// its cached translation of (pt, page); a negative page clears every
// cached page of pt. module names the kernel module the clear event is
// attributed to.
func (b *ShootdownBus) InvalidatePTW(module string, pt *PageTable, page int) {
	if b == nil || pt == nil {
		return
	}
	// The broadcast is a yield point: under the deterministic
	// executor another processor may run between the table update and
	// the invalidation reaching its cache — the stale-translation
	// window the shootdown protocol exists to close.
	schedsim.Yield(schedsim.PointShootdown, module)
	mems, sink := b.targets()
	ss := trace.SpanSinkOf(sink)
	if ss != nil {
		ss.BeginSpan(trace.SpanShootdown, module, int64(page))
	}
	n := 0
	for _, a := range mems {
		n += a.invalidatePTW(pt, page)
	}
	b.shootdowns.Add(1)
	if sink != nil {
		sink.Emit(trace.Event{
			Kind: trace.EvAssocClear, Module: module,
			Arg0: 0, Arg1: int64(page), Arg2: int64(n),
		})
	}
	if ss != nil {
		ss.EndSpan(trace.SpanShootdown)
	}
}

// InvalidateSDW broadcasts a segment shootdown: every processor
// forgets its cached descriptor for (dt, segno); a negative segno
// clears every cached descriptor of dt.
func (b *ShootdownBus) InvalidateSDW(module string, dt *DescriptorTable, segno int) {
	if b == nil || dt == nil {
		return
	}
	schedsim.Yield(schedsim.PointShootdown, module)
	mems, sink := b.targets()
	ss := trace.SpanSinkOf(sink)
	if ss != nil {
		ss.BeginSpan(trace.SpanShootdown, module, int64(segno))
	}
	n := 0
	for _, a := range mems {
		n += a.invalidateSDW(dt, segno)
	}
	b.shootdowns.Add(1)
	if sink != nil {
		sink.Emit(trace.Event{
			Kind: trace.EvAssocClear, Module: module,
			Arg0: 1, Arg1: int64(segno), Arg2: int64(n),
		})
	}
	if ss != nil {
		ss.EndSpan(trace.SpanShootdown)
	}
}
