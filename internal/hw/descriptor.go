package hw

import (
	"fmt"
	"sync"
)

// A PTW is one page table word: the hardware descriptor for one page
// of one segment. Besides the usual present/frame/used/modified
// fields it carries the two bits the kernel design adds:
//
//   - Lock, set atomically by descriptor-lock hardware when a
//     missing-page fault is taken, so that a second processor
//     encountering the same descriptor takes a locked-descriptor
//     fault instead of re-servicing the fault; and
//
//   - QuotaTrap, the exception-causing bit software sets on the
//     descriptor of a never-before-used page, so that first touch
//     raises a quota exception above page control instead of a plain
//     missing-page fault inside it.
type PTW struct {
	Present   bool
	Frame     int
	Lock      bool
	QuotaTrap bool
	Used      bool
	Modified  bool
}

// A PageTable is the array of page descriptors for one segment. The
// table itself conceptually lives in primary memory (in a core segment
// for permanently active segments, in a paged segment otherwise); the
// Wired flag records which, for the dependency analysis.
//
// A PageTable is safe for concurrent use by multiple simulated
// processors; the lock-bit operations are atomic with respect to
// translation, which is what the descriptor-lock hardware guarantees.
type PageTable struct {
	mu    sync.Mutex
	ptws  []PTW
	wired bool
}

// NewPageTable returns a page table of n descriptors, all not-present.
func NewPageTable(n int, wired bool) *PageTable {
	return &PageTable{ptws: make([]PTW, n), wired: wired}
}

// Len reports the number of page descriptors.
func (t *PageTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ptws)
}

// Wired reports whether the table lives in permanently resident
// memory.
func (t *PageTable) Wired() bool { return t.wired }

// Get returns a copy of descriptor p.
func (t *PageTable) Get(p int) (PTW, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p < 0 || p >= len(t.ptws) {
		return PTW{}, fmt.Errorf("hw: page %d outside page table of %d entries", p, len(t.ptws))
	}
	return t.ptws[p], nil
}

// Set replaces descriptor p.
func (t *PageTable) Set(p int, w PTW) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p < 0 || p >= len(t.ptws) {
		return fmt.Errorf("hw: page %d outside page table of %d entries", p, len(t.ptws))
	}
	t.ptws[p] = w
	return nil
}

// Grow appends not-present descriptors until the table has n entries.
func (t *PageTable) Grow(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.ptws) < n {
		t.ptws = append(t.ptws, PTW{})
	}
}

// Update applies fn to descriptor p under the table lock and reports
// the descriptor value fn produced.
func (t *PageTable) Update(p int, fn func(*PTW)) (PTW, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p < 0 || p >= len(t.ptws) {
		return PTW{}, fmt.Errorf("hw: page %d outside page table of %d entries", p, len(t.ptws))
	}
	fn(&t.ptws[p])
	return t.ptws[p], nil
}

// translate performs the hardware's page-level translation step for a
// reference to page p. It returns the current descriptor and, when the
// reference cannot complete, the fault kind. When lockHW is true
// (descriptor-lock hardware present) a missing-page encounter
// atomically sets the lock bit; locked reports whether this call was
// the one that set it.
func (t *PageTable) translate(p int, write, lockHW bool) (ptw PTW, kind FaultKind, fault, locked bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p < 0 || p >= len(t.ptws) {
		return PTW{}, FaultBounds, true, false
	}
	d := &t.ptws[p]
	switch {
	case d.Lock:
		return *d, FaultLockedDescriptor, true, false
	case d.QuotaTrap:
		return *d, FaultQuota, true, false
	case !d.Present:
		if lockHW {
			d.Lock = true
			return *d, FaultMissingPage, true, true
		}
		return *d, FaultMissingPage, true, false
	}
	d.Used = true
	if write {
		d.Modified = true
	}
	return *d, 0, false, false
}

// Unlock clears the lock bit of descriptor p. The page frame manager
// calls it when fault service is complete, before notifying waiters.
func (t *PageTable) Unlock(p int) error {
	_, err := t.Update(p, func(d *PTW) { d.Lock = false })
	return err
}

// AccessMode is the set of permitted reference types in a segment
// descriptor.
type AccessMode int

const (
	// Read permits load references.
	Read AccessMode = 1 << iota
	// Write permits store references.
	Write
	// Execute permits instruction fetch.
	Execute
)

// Has reports whether m includes all modes in want.
func (m AccessMode) Has(want AccessMode) bool { return m&want == want }

func (m AccessMode) String() string {
	b := []byte("---")
	if m.Has(Read) {
		b[0] = 'r'
	}
	if m.Has(Write) {
		b[1] = 'w'
	}
	if m.Has(Execute) {
		b[2] = 'e'
	}
	return string(b)
}

// An SDW is one segment descriptor word: presence, the page table,
// the permitted access modes, and the highest ring from which each
// mode is honoured (a simplified form of Multics ring brackets). Gate
// marks a descriptor that may be entered from outer rings by a gate
// call.
type SDW struct {
	Present bool
	Table   *PageTable
	Access  AccessMode
	// MaxRing is the highest (least privileged) ring number from
	// which the segment may be referenced at all.
	MaxRing int
	// WriteRing is the highest ring from which stores are honoured.
	WriteRing int
	Gate      bool
}

// A DescriptorTable is the array of segment descriptors defining one
// address space: the hardware indexes it by segment number. One
// descriptor table, stored in a core segment, defines the system
// (kernel) address space shared by all processors; another, stored in
// an ordinary segment, defines each user process's space.
type DescriptorTable struct {
	mu   sync.Mutex
	sdws []SDW
}

// NewDescriptorTable returns a descriptor table with room for n
// segment numbers.
func NewDescriptorTable(n int) *DescriptorTable {
	return &DescriptorTable{sdws: make([]SDW, n)}
}

// Len reports the number of segment-number slots.
func (dt *DescriptorTable) Len() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return len(dt.sdws)
}

// Get returns a copy of the descriptor for segment number segno.
func (dt *DescriptorTable) Get(segno int) (SDW, error) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if segno < 0 || segno >= len(dt.sdws) {
		return SDW{}, fmt.Errorf("hw: segment number %d outside descriptor table of %d entries", segno, len(dt.sdws))
	}
	return dt.sdws[segno], nil
}

// Set installs the descriptor for segment number segno.
func (dt *DescriptorTable) Set(segno int, w SDW) error {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if segno < 0 || segno >= len(dt.sdws) {
		return fmt.Errorf("hw: segment number %d outside descriptor table of %d entries", segno, len(dt.sdws))
	}
	dt.sdws[segno] = w
	return nil
}

// Clear makes segment number segno not-present (disconnects the
// address space from the segment).
func (dt *DescriptorTable) Clear(segno int) error {
	return dt.Set(segno, SDW{})
}
