package uproc

import (
	"math/bits"

	"multics/internal/lockrank"
)

// NumPriorities is the number of strict priority levels; higher
// numbers run first.
const NumPriorities = 32

// DefaultPriority is the priority a process is created with.
const DefaultPriority = 16

// clampPriority folds an arbitrary priority into a valid bucket.
func clampPriority(pri int) int {
	if pri < 0 {
		return 0
	}
	if pri >= NumPriorities {
		return NumPriorities - 1
	}
	return pri
}

// A runQueue is one per-CPU ready queue: an array of intrusive
// doubly-linked FIFO lists, one per priority level, plus a bitmask of
// the non-empty levels. Enqueue, dequeue and priority requeue are all
// O(1): the links live in the Process itself, and the highest
// non-empty bucket is one bits.Len32 away. The queue's lock protects
// every link field (next, prev, queued, bucket) of the processes on
// it.
type runQueue struct {
	// mu takes the layer's sub-rank below the per-process lock, so a
	// holder of p.pmu may enqueue p without violating the
	// certification order.
	mu lockrank.Mutex
	id int

	heads [NumPriorities]*Process
	tails [NumPriorities]*Process
	// mask has bit b set when bucket b is non-empty.
	mask uint32
	size int
	// maxDepth is the high-water mark of size, for the scheduler
	// statistics.
	maxDepth int
}

func newRunQueue(id int) *runQueue {
	rq := &runQueue{id: id}
	rq.mu.InitSub(ModuleName, subRunQueue)
	return rq
}

// push appends p to its effective-priority bucket (front prepends —
// used to return a process whose dispatch failed without sending it
// to the back of the line). Caller holds rq.mu and p.pmu (the latter
// pins p.eff and p.home).
func (rq *runQueue) push(p *Process, front bool) {
	b := clampPriority(p.eff)
	p.bucket = b
	p.queued = true
	p.next, p.prev = nil, nil
	if rq.heads[b] == nil {
		rq.heads[b], rq.tails[b] = p, p
	} else if front {
		p.next = rq.heads[b]
		rq.heads[b].prev = p
		rq.heads[b] = p
	} else {
		p.prev = rq.tails[b]
		rq.tails[b].next = p
		rq.tails[b] = p
	}
	rq.mask |= 1 << uint(b)
	rq.size++
	if rq.size > rq.maxDepth {
		rq.maxDepth = rq.size
	}
}

// remove unlinks p from its bucket. Caller holds rq.mu and p must be
// queued here.
func (rq *runQueue) remove(p *Process) {
	b := p.bucket
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		rq.heads[b] = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		rq.tails[b] = p.prev
	}
	if rq.heads[b] == nil {
		rq.mask &^= 1 << uint(b)
	}
	p.next, p.prev = nil, nil
	p.queued = false
	rq.size--
}

// popMax removes and returns the head of the highest non-empty
// bucket, nil when the queue is empty. Caller holds rq.mu.
func (rq *runQueue) popMax() *Process {
	if rq.mask == 0 {
		return nil
	}
	b := bits.Len32(rq.mask) - 1
	p := rq.heads[b]
	rq.remove(p)
	return p
}
