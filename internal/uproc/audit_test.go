package uproc

import (
	"testing"

	"multics/internal/aim"
)

func TestProcessAccessors(t *testing.T) {
	f := newFixture(t, 4)
	label := aim.Label{Level: aim.Secret}
	p, err := f.m.Create("alice.sys", label)
	if err != nil {
		t.Fatal(err)
	}
	if p.Principal() != "alice.sys" {
		t.Errorf("Principal = %q", p.Principal())
	}
	if p.Label() != label {
		t.Errorf("Label = %v", p.Label())
	}
	if p.DT() == nil || p.KST() == nil {
		t.Error("nil address space or KST")
	}
}

func TestAuditCleanThenCorrupt(t *testing.T) {
	f := newFixture(t, 4)
	a, err := f.m.Create("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create("b.x", aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Dispatch(); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("clean manager audits dirty: %v", bad)
	}
	// Corrupt: a running process loses its virtual processor.
	a.pmu.Lock()
	vp := a.vp
	a.vp = nil
	a.pmu.Unlock()
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a running process with no virtual processor")
	}
	a.pmu.Lock()
	a.vp = vp
	a.pmu.Unlock()
	// Corrupt: a ready process vanishes from its run queue.
	b, err := f.m.Lookup(2)
	if err != nil {
		t.Fatal(err)
	}
	rq := f.m.queues[b.home]
	rq.mu.Lock()
	rq.remove(b)
	rq.mu.Unlock()
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a ready process missing from the queue")
	}
}
