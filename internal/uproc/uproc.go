// Package uproc implements the user process manager: the top level of
// the two-level process implementation.
//
// The bottom level (package vproc) implements a fixed number of
// virtual processors whose states are always in primary memory. This
// level implements an arbitrary number of user processes whose states
// are stored in ordinary virtual-memory segments, multiplexing a
// subset of the virtual processors among them. Fixing the number of
// processes at the bottom buys Brinch Hansen's simplifications; paying
// the process-state storage through the virtual memory at the top
// avoids wiring down primary memory for the maximum process count.
//
// The complication the paper credits Reed with solving is upward
// event communication: events discovered by low-level virtual
// processors must be signalled to user processes whose states are, by
// design, not guaranteed to be in real memory at the discoverer's
// level. The solution is a special real-memory message queue between
// the two processor multiplexers, paired with eventcount
// synchronization so the discoverer of an event needs no knowledge of
// the identity of the processes awaiting it.
package uproc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multics/internal/aim"
	"multics/internal/coreseg"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/lockrank"
	"multics/internal/segment"
	"multics/internal/trace"
	"multics/internal/vproc"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for process swaps and queue messages are attributed
// to it.
const ModuleName = "user-process-manager"

// SchedulerModule is the kernel module name of the user-process
// scheduler's dedicated virtual processor.
const SchedulerModule = "user-scheduler"

// MsgWords is the size of one message in the real-memory queue.
const MsgWords = 4

// State is a user process's scheduling state.
type State int

const (
	// Ready: awaiting a virtual processor.
	Ready State = iota
	// Running: bound to a virtual processor.
	Running
	// Blocked: awaiting an eventcount.
	Blocked
	// Dead: destroyed.
	Dead
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// A Process is one user process.
type Process struct {
	id        uint64
	principal string
	label     aim.Label
	state     State
	vp        *vproc.VP
	dt        *hw.DescriptorTable
	kst       *knownseg.KST
	// stateUID is the virtual-memory segment holding the process
	// state — deliberately NOT wired memory.
	stateUID uint64
	// await is the eventcount/value pair a blocked process waits on.
	await      *eventcount.Eventcount
	awaitValue uint64
	// cpu accumulates simulated cycles consumed, for accounting.
	cpu int64
}

// ID returns the process identifier.
func (p *Process) ID() uint64 { return p.id }

// Principal returns the authenticated person.project.
func (p *Process) Principal() string { return p.principal }

// Label returns the process's AIM label (its clearance for this
// session).
func (p *Process) Label() aim.Label { return p.label }

// State returns the scheduling state.
func (p *Process) State() State { return p.state }

// DT returns the process's descriptor table (its address space).
func (p *Process) DT() *hw.DescriptorTable { return p.dt }

// KST returns the process's known segment table.
func (p *Process) KST() *knownseg.KST { return p.kst }

// StateSegment returns the UID of the virtual-memory segment holding
// the process state.
func (p *Process) StateSegment() uint64 { return p.stateUID }

// AddCPU accrues simulated cycles to the process's account.
func (p *Process) AddCPU(n int64) { p.cpu += n }

// CPU reports accumulated simulated cycles.
func (p *Process) CPU() int64 { return p.cpu }

// A Message is one entry in the real-memory queue between the
// processor multiplexing levels: an event discovered at the bottom
// that concerns a user process.
type Message struct {
	// Kind is a small code (wakeup, I/O done, quota warning...).
	Kind int
	// Process is the concerned user process id, 0 for broadcast.
	Process uint64
	// Datum is event-specific.
	Datum uint64
}

// Queue is the real-memory message queue: a bounded ring in a core
// segment, so posting never touches the virtual memory. An
// eventcount counts posted messages, so the upper-level multiplexer
// awaits it without the poster knowing who is listening.
type Queue struct {
	mu     lockrank.Mutex
	seg    *coreseg.Segment
	cap    int
	head   int
	n      int
	posted eventcount.Eventcount
	meter  *hw.CostMeter
	sink   trace.Sink
}

// SetTrace routes queue posts (and the posted eventcount's advances)
// to s.
func (q *Queue) SetTrace(s trace.Sink) {
	q.mu.Lock()
	q.sink = s
	q.mu.Unlock()
	q.posted.Trace(s, ModuleName)
}

// ErrQueueFull is returned when the fixed-size real-memory queue
// overflows; the poster must retry after the upper level drains.
var ErrQueueFull = errors.New("uproc: real-memory message queue full")

// NewQueue builds a message queue in the given core segment.
func NewQueue(seg *coreseg.Segment, meter *hw.CostMeter) (*Queue, error) {
	if seg == nil || seg.Words() < MsgWords {
		return nil, errors.New("uproc: queue segment too small")
	}
	q := &Queue{seg: seg, cap: seg.Words() / MsgWords, meter: meter}
	// The queue lock takes the layer's low sub-rank: the manager may
	// post to the queue, but the queue never calls up into the
	// manager.
	q.mu.InitSub(ModuleName, 0)
	return q, nil
}

// Cap reports the fixed message capacity.
func (q *Queue) Cap() int { return q.cap }

// Len reports the queued message count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Post appends a message; it runs entirely in real memory, so any
// virtual processor may call it regardless of what is paged in.
func (q *Queue) Post(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == q.cap {
		return ErrQueueFull
	}
	slot := (q.head + q.n) % q.cap
	base := slot * MsgWords
	if err := q.seg.Write(base, hw.Word(m.Kind)); err != nil {
		return err
	}
	if err := q.seg.Write(base+1, hw.Word(m.Process).Masked()); err != nil {
		return err
	}
	if err := q.seg.Write(base+2, hw.Word(m.Datum).Masked()); err != nil {
		return err
	}
	q.n++
	q.meter.Add(hw.CycIPC)
	if q.sink != nil {
		q.sink.Emit(trace.Event{Kind: trace.EvIPC, Module: ModuleName, Cost: hw.CycIPC, Arg0: int64(m.Kind), Arg1: int64(m.Process)})
	}
	q.posted.Advance()
	return nil
}

// Drain removes and returns all queued messages.
func (q *Queue) Drain() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Message
	for ; q.n > 0; q.n-- {
		base := q.head * MsgWords
		kind, err := q.seg.Read(base)
		if err != nil {
			return out, err
		}
		proc, err := q.seg.Read(base + 1)
		if err != nil {
			return out, err
		}
		datum, err := q.seg.Read(base + 2)
		if err != nil {
			return out, err
		}
		out = append(out, Message{Kind: int(kind), Process: uint64(proc), Datum: uint64(datum)})
		q.head = (q.head + 1) % q.cap
	}
	return out, nil
}

// Posted returns the eventcount of messages posted, for the upper
// multiplexer to await.
func (q *Queue) Posted() *eventcount.Eventcount { return &q.posted }

// A Manager is the user process manager and two-level scheduler top.
type Manager struct {
	vps   *vproc.Manager
	segs  *segment.Manager
	ksm   *knownseg.Manager
	queue *Queue
	meter *hw.CostMeter

	// KSTBase/KSTSize shape each process's address space.
	KSTBase int
	KSTSize int
	// StatePack is where process-state segments are created.
	StatePack string
	// StateCell is the quota cell charged for process states.
	StateCell segment.CellRef

	mu      lockrank.Mutex
	sink    trace.Sink
	spans   trace.SpanSink
	binder  trace.ProcessBinder
	nextPID uint64
	procs   map[uint64]*Process
	ready   []uint64
	swaps   int64
}

// SetTrace routes process-swap events (and the real-memory queue's
// posts) to s.
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	m.sink = s
	m.spans = trace.SpanSinkOf(s)
	m.binder, _ = s.(trace.ProcessBinder)
	m.mu.Unlock()
	if m.queue != nil {
		m.queue.SetTrace(s)
	}
}

// spanSink reads the span sink under the manager lock.
func (m *Manager) spanSink() trace.SpanSink {
	m.mu.Lock()
	s := m.spans
	m.mu.Unlock()
	return s
}

// NewManager returns a user process manager multiplexing vps and
// posting low-level events through queue.
func NewManager(vps *vproc.Manager, segs *segment.Manager, ksm *knownseg.Manager, queue *Queue, meter *hw.CostMeter) *Manager {
	m := &Manager{
		vps:     vps,
		segs:    segs,
		ksm:     ksm,
		queue:   queue,
		meter:   meter,
		KSTBase: 8,
		KSTSize: 64,
		nextPID: 1,
		procs:   make(map[uint64]*Process),
	}
	m.mu.InitSub(ModuleName, 1)
	return m
}

// Create makes a new user process for the authenticated principal at
// the given AIM label. Its state segment lives in the virtual memory,
// charged like any other segment.
func (m *Manager) Create(principal string, label aim.Label) (*Process, error) {
	if principal == "" {
		return nil, errors.New("uproc: empty principal")
	}
	m.mu.Lock()
	pid := m.nextPID
	m.nextPID++
	m.mu.Unlock()

	kst, err := m.ksm.NewKST(m.KSTBase, m.KSTSize)
	if err != nil {
		return nil, err
	}
	// The process state segment: ordinary, pageable, quota-charged.
	stateUID := m.segs.NewUID()
	stateAddr, err := m.segs.Create(m.StatePack, stateUID, false, m.StateCell.UID)
	if err != nil {
		return nil, err
	}
	if _, err := m.segs.Activate(stateUID, stateAddr, m.StateCell.Cell, m.StateCell.Has); err != nil {
		return nil, err
	}
	if _, err := m.segs.Grow(stateUID, 0, 0, 0); err != nil {
		return nil, err
	}
	if err := m.segs.WriteWord(stateUID, 0, hw.Word(pid).Masked()); err != nil {
		return nil, err
	}
	p := &Process{
		id:        pid,
		principal: principal,
		label:     label,
		state:     Ready,
		dt:        hw.NewDescriptorTable(m.KSTBase + m.KSTSize),
		kst:       kst,
		stateUID:  stateUID,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.procs[pid] = p
	m.ready = append(m.ready, pid)
	return p, nil
}

// Lookup returns the process with the given id.
func (m *Manager) Lookup(pid uint64) (*Process, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[pid]
	if !ok {
		return nil, fmt.Errorf("uproc: no process %d", pid)
	}
	return p, nil
}

// Count reports the number of live processes — arbitrary, unlike the
// fixed virtual-processor count below.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.procs {
		if p.state != Dead {
			n++
		}
	}
	return n
}

// Swaps reports how many process-state swaps (virtual-memory loads or
// stores of a state segment) have occurred.
func (m *Manager) Swaps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.swaps
}

// Dispatch binds the longest-waiting ready process to a free virtual
// processor and returns it. Loading the process state goes through
// the virtual memory — the expensive top-level half of the design.
func (m *Manager) Dispatch() (*Process, error) {
	m.mu.Lock()
	var p *Process
	for len(m.ready) > 0 {
		pid := m.ready[0]
		m.ready = m.ready[1:]
		cand := m.procs[pid]
		if cand != nil && cand.state == Ready {
			p = cand
			break
		}
	}
	if p == nil {
		m.mu.Unlock()
		return nil, errors.New("uproc: no ready process")
	}
	m.swaps++
	m.mu.Unlock()

	vp, err := m.vps.AcquireUser(p.id)
	if err != nil {
		m.mu.Lock()
		p.state = Ready
		m.ready = append([]uint64{p.id}, m.ready...)
		m.mu.Unlock()
		return nil, err
	}
	// Touch the state segment (a real virtual-memory reference) and
	// charge the swap cost.
	if _, err := m.segs.EnsureResident(p.stateUID, 0); err != nil {
		_ = m.vps.ReleaseUser(vp)
		return nil, err
	}
	m.meter.Add(hw.CycProcessSwap)
	m.mu.Lock()
	if m.sink != nil {
		// Arg1 = 0: a state load through the virtual memory.
		m.sink.Emit(trace.Event{Kind: trace.EvProcessSwap, Module: ModuleName, Cost: hw.CycProcessSwap, Arg0: int64(p.id)})
	}
	p.state = Running
	p.vp = vp
	if m.binder != nil {
		// Span self-time is now attributed to p; the binding is left
		// in place at preemption, so the tail of a quantum span still
		// charges the process that ran it.
		m.binder.SetRunningProcess(p.id)
	}
	m.mu.Unlock()
	return p, nil
}

// Preempt returns a running process to the ready queue, storing its
// state back through the virtual memory.
func (m *Manager) Preempt(p *Process) error {
	return m.unbind(p, Ready)
}

// Block parks a running process until ec reaches v.
func (m *Manager) Block(p *Process, ec *eventcount.Eventcount, v uint64) error {
	m.mu.Lock()
	p.await = ec
	p.awaitValue = v
	m.mu.Unlock()
	return m.unbind(p, Blocked)
}

func (m *Manager) unbind(p *Process, to State) error {
	m.mu.Lock()
	if p.state != Running || p.vp == nil {
		m.mu.Unlock()
		return fmt.Errorf("uproc: process %d is %v, not running", p.id, p.state)
	}
	vp := p.vp
	p.vp = nil
	p.state = to
	if to == Ready {
		m.ready = append(m.ready, p.id)
	}
	m.swaps++
	m.mu.Unlock()
	if err := m.segs.WriteWord(p.stateUID, 1, hw.Word(to)); err != nil {
		return err
	}
	m.meter.Add(hw.CycProcessSwap)
	m.mu.Lock()
	if m.sink != nil {
		// Arg1 = 1: a state store through the virtual memory.
		m.sink.Emit(trace.Event{Kind: trace.EvProcessSwap, Module: ModuleName, Cost: hw.CycProcessSwap, Arg0: int64(p.id), Arg1: 1})
	}
	m.mu.Unlock()
	return m.vps.ReleaseUser(vp)
}

// Wakeup posts a wakeup message for a process into the real-memory
// queue. It is callable from the bottom level: it touches only wired
// memory.
func (m *Manager) Wakeup(pid uint64, datum uint64) error {
	return m.queue.Post(Message{Kind: 1, Process: pid, Datum: datum})
}

// DeliverEvents drains the real-memory queue and unblocks every
// blocked process whose awaited eventcount has been reached, moving
// it to the ready queue. The scheduler's virtual processor runs this;
// it returns the number of processes made ready.
func (m *Manager) DeliverEvents() (int, error) {
	msgs, err := m.queue.Drain()
	if err != nil {
		return 0, err
	}
	woken := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, msg := range msgs {
		for pid, p := range m.procs {
			if p.state != Blocked {
				continue
			}
			if msg.Process != 0 && msg.Process != pid {
				continue
			}
			if p.await != nil {
				if _, ok := p.await.TryAwait(p.awaitValue); !ok {
					continue
				}
			}
			p.state = Ready
			p.await = nil
			m.ready = append(m.ready, pid)
			woken++
		}
	}
	return woken, nil
}

// Audit checks the manager's invariants: running processes hold
// exactly one user-bound virtual processor, ready processes appear on
// the ready queue, and nothing dead lingers.
func (m *Manager) Audit() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []string
	onQueue := make(map[uint64]bool, len(m.ready))
	for _, pid := range m.ready {
		onQueue[pid] = true
	}
	for pid, p := range m.procs {
		switch p.state {
		case Running:
			if p.vp == nil {
				bad = append(bad, fmt.Sprintf("process %d running without a virtual processor", pid))
			} else if p.vp.Binding() != vproc.UserBound || p.vp.User() != pid {
				bad = append(bad, fmt.Sprintf("process %d running on vp %d bound to %v/%d", pid, p.vp.ID(), p.vp.Binding(), p.vp.User()))
			}
		case Ready:
			if !onQueue[pid] {
				bad = append(bad, fmt.Sprintf("process %d ready but not queued", pid))
			}
			if p.vp != nil {
				bad = append(bad, fmt.Sprintf("process %d ready but still holds vp %d", pid, p.vp.ID()))
			}
		case Blocked:
			if p.vp != nil {
				bad = append(bad, fmt.Sprintf("process %d blocked but still holds vp %d", pid, p.vp.ID()))
			}
		case Dead:
			bad = append(bad, fmt.Sprintf("process %d dead but registered", pid))
		}
	}
	return bad
}

// Destroy ends a process, releasing its virtual processor, state
// segment and KST.
func (m *Manager) Destroy(p *Process) error {
	m.mu.Lock()
	if p.state == Dead {
		m.mu.Unlock()
		return fmt.Errorf("uproc: process %d already dead", p.id)
	}
	vp := p.vp
	p.vp = nil
	p.state = Dead
	delete(m.procs, p.id)
	m.mu.Unlock()
	if vp != nil {
		if err := m.vps.ReleaseUser(vp); err != nil {
			return err
		}
	}
	m.ksm.DropKST(p.kst)
	a, err := m.segs.Lookup(p.stateUID)
	if err == nil {
		return m.segs.Delete(p.stateUID, a.Addr())
	}
	return nil
}

// RunQuantum dispatches up to n ready processes round-robin, running
// body for each with the process bound to a virtual processor, then
// preempting it. It is the simple scheduling mix used by the
// benchmarks.
func (m *Manager) RunQuantum(n int, body func(*Process)) (int, error) {
	ss := m.spanSink()
	ran := 0
	for i := 0; i < n; i++ {
		if ss != nil {
			ss.BeginSpan(trace.SpanQuantum, ModuleName, int64(i))
		}
		p, err := m.Dispatch()
		if err != nil {
			if ss != nil {
				ss.EndSpan(trace.SpanQuantum)
			}
			break
		}
		if body != nil {
			body(p)
		}
		err = m.Preempt(p)
		if ss != nil {
			ss.EndSpan(trace.SpanQuantum)
		}
		if err != nil {
			return ran, err
		}
		ran++
	}
	return ran, nil
}

// RunQuantumParallel is the true-multiprocessor form of RunQuantum:
// one goroutine per processor, each dispatching ready processes onto
// its own virtual processor, running body with the process bound to
// that processor, and preempting. Each goroutine runs at most n
// processes; a goroutine stops when the ready queue (or the free
// virtual-processor pool) drains. Trace events emitted inside body
// are attributed to the running processor. The total across
// processors is returned with the first preemption error, if any.
func (m *Manager) RunQuantumParallel(cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error) {
	var (
		wg    sync.WaitGroup
		total atomic.Int64
		errMu sync.Mutex
		first error
	)
	for _, cpu := range cpus {
		wg.Add(1)
		go func(cpu *hw.Processor) {
			defer wg.Done()
			defer trace.BindCPU(cpu.ID)()
			ss := m.spanSink()
			for i := 0; i < n; i++ {
				if ss != nil {
					ss.BeginSpan(trace.SpanQuantum, ModuleName, int64(i))
				}
				p, err := m.Dispatch()
				if err != nil {
					if ss != nil {
						ss.EndSpan(trace.SpanQuantum)
					}
					return
				}
				if body != nil {
					body(cpu, p)
				}
				err = m.Preempt(p)
				if ss != nil {
					ss.EndSpan(trace.SpanQuantum)
				}
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
				total.Add(1)
			}
		}(cpu)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return int(total.Load()), first
}
