// Package uproc implements the user process manager: the top level of
// the two-level process implementation.
//
// The bottom level (package vproc) implements a fixed number of
// virtual processors whose states are always in primary memory. This
// level implements an arbitrary number of user processes whose states
// are stored in ordinary virtual-memory segments, multiplexing a
// subset of the virtual processors among them. Fixing the number of
// processes at the bottom buys Brinch Hansen's simplifications; paying
// the process-state storage through the virtual memory at the top
// avoids wiring down primary memory for the maximum process count.
//
// The complication the paper credits Reed with solving is upward
// event communication: events discovered by low-level virtual
// processors must be signalled to user processes whose states are, by
// design, not guaranteed to be in real memory at the discoverer's
// level. The solution is a special real-memory message queue between
// the two processor multiplexers, paired with eventcount
// synchronization so the discoverer of an event needs no knowledge of
// the identity of the processes awaiting it.
//
// The scheduling plane is built to survive storms of tens of
// thousands of processes: the process table is sharded, the ready
// set is per-CPU intrusive priority run queues with O(1)
// enqueue/dequeue and work stealing when a queue drains, dispatch is
// strict-priority with chained priority donation against inversion
// (see PLock), and idle schedulers block on eventcounts instead of
// polling. The locks split the manager's certification layer into
// sub-ranks, acquired strictly downward:
//
//	manager (trace wiring, queue reconfiguration)
//	> process-table shard (pid -> process map)
//	> per-process lock (state, bindings, priorities)
//	> per-CPU run queue (intrusive ready links)
//	> real-memory message queue
package uproc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"multics/internal/aim"
	"multics/internal/coreseg"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/lockrank"
	"multics/internal/schedsim"
	"multics/internal/segment"
	"multics/internal/trace"
	"multics/internal/vproc"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for process swaps and queue messages are attributed
// to it.
const ModuleName = "user-process-manager"

// SchedulerModule is the kernel module name of the user-process
// scheduler's dedicated virtual processor.
const SchedulerModule = "user-scheduler"

// MsgWords is the size of one message in the real-memory queue.
const MsgWords = 4

// The manager's certification layer is split into sub-ranks; a holder
// of one lock may only acquire strictly lower sub-ranks.
const (
	subQueue    = 0 // real-memory message queue
	subRunQueue = 1 // per-CPU run queues
	subProc     = 2 // per-process locks
	subShard    = 3 // process-table shards
	subManager  = 4 // trace wiring and queue reconfiguration
)

// State is a user process's scheduling state.
type State int

const (
	// Ready: awaiting a virtual processor.
	Ready State = iota
	// Running: bound to a virtual processor.
	Running
	// Blocked: awaiting an eventcount.
	Blocked
	// Dead: destroyed.
	Dead
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrNoReady is returned by Dispatch when every live process is
// running, blocked, or dead: there is nothing to schedule.
var ErrNoReady = errors.New("uproc: no ready process")

// ErrNotRunning is returned (wrapped) by Preempt and Block when the
// process is not bound to a virtual processor.
var ErrNotRunning = errors.New("uproc: process not running")

// A Process is one user process.
type Process struct {
	id        uint64
	principal string
	label     aim.Label
	dt        *hw.DescriptorTable
	kst       *knownseg.KST
	// stateUID is the virtual-memory segment holding the process
	// state — deliberately NOT wired memory.
	stateUID uint64

	// pmu orders every mutation of this process's scheduling state.
	// It ranks above the run-queue locks, so a holder can enqueue,
	// and below the shard locks, so a table scan can inspect.
	pmu lockrank.Mutex

	state State
	vp    *vproc.VP
	// epoch counts dispatches; an executor preempting after running a
	// body quotes the epoch it dispatched, so a process the body
	// blocked and another CPU re-dispatched is not torn down twice.
	epoch uint64
	// await is the eventcount/value pair a blocked process waits on.
	await      *eventcount.Eventcount
	awaitValue uint64
	// wakePending is the wakeup-waiting switch: a targeted wakeup
	// delivered while the process was not blocked is remembered
	// here, and the next awaitless Block consumes it instead of
	// parking forever.
	wakePending bool

	// base is the assigned priority; donated is the highest priority
	// donated by a waiter on a lock this process holds; eff is the
	// max of the two and is what the run queues sort by.
	base, donated, eff int
	// home is the index of the run queue this process is enqueued on;
	// it changes only when a stealing CPU claims the process.
	home int
	// held and waitingOn drive the donation chain: the priority locks
	// this process holds, and the one it is currently waiting for.
	held      []*PLock
	waitingOn *PLock

	// next/prev/queued/bucket are the intrusive run-queue links,
	// protected by the run queue's lock, not pmu.
	next, prev *Process
	queued     bool
	bucket     int

	// createdCycle and firstRunCycle bracket the time-to-first-
	// quantum latency the storm benchmark reports; firstRunCycle is
	// -1 until the first dispatch.
	createdCycle  int64
	firstRunCycle int64

	// cpu accumulates simulated cycles consumed, for accounting.
	cpu int64
}

// ID returns the process identifier.
func (p *Process) ID() uint64 { return p.id }

// Principal returns the authenticated person.project.
func (p *Process) Principal() string { return p.principal }

// Label returns the process's AIM label (its clearance for this
// session).
func (p *Process) Label() aim.Label { return p.label }

// State returns the scheduling state.
func (p *Process) State() State {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.state
}

// DT returns the process's descriptor table (its address space).
func (p *Process) DT() *hw.DescriptorTable { return p.dt }

// KST returns the process's known segment table.
func (p *Process) KST() *knownseg.KST { return p.kst }

// StateSegment returns the UID of the virtual-memory segment holding
// the process state.
func (p *Process) StateSegment() uint64 { return p.stateUID }

// AddCPU accrues simulated cycles to the process's account.
func (p *Process) AddCPU(n int64) { p.cpu += n }

// CPU reports accumulated simulated cycles.
func (p *Process) CPU() int64 { return p.cpu }

// Priority returns the assigned (base) priority.
func (p *Process) Priority() int {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.base
}

// Effective returns the effective priority: the base priority or the
// highest donation against it, whichever is higher.
func (p *Process) Effective() int {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.eff
}

// FirstRunCycle reports the simulated cycle of the process's first
// dispatch, -1 if it has never run; CreatedCycle the cycle it was
// created. Their difference is the time to first quantum.
func (p *Process) FirstRunCycle() int64 {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.firstRunCycle
}

// CreatedCycle reports the simulated cycle the process was created.
func (p *Process) CreatedCycle() int64 { return p.createdCycle }

// A Message is one entry in the real-memory queue between the
// processor multiplexing levels: an event discovered at the bottom
// that concerns a user process.
type Message struct {
	// Kind is a small code (wakeup, I/O done, quota warning...).
	Kind int
	// Process is the concerned user process id, 0 for broadcast.
	Process uint64
	// Datum is event-specific.
	Datum uint64
}

// Queue is the real-memory message queue: a bounded ring in a core
// segment, so posting never touches the virtual memory. An
// eventcount counts posted messages, so the upper-level multiplexer
// awaits it without the poster knowing who is listening.
type Queue struct {
	mu     lockrank.Mutex
	seg    *coreseg.Segment
	cap    int
	head   int
	n      int
	posted eventcount.Eventcount
	meter  *hw.CostMeter
	sink   trace.Sink
}

// SetTrace routes queue posts (and the posted eventcount's advances)
// to s.
func (q *Queue) SetTrace(s trace.Sink) {
	q.mu.Lock()
	q.sink = s
	q.mu.Unlock()
	q.posted.Trace(s, ModuleName)
}

// ErrQueueFull is returned when the fixed-size real-memory queue
// overflows; the poster must retry after the upper level drains.
var ErrQueueFull = errors.New("uproc: real-memory message queue full")

// NewQueue builds a message queue in the given core segment.
func NewQueue(seg *coreseg.Segment, meter *hw.CostMeter) (*Queue, error) {
	if seg == nil || seg.Words() < MsgWords {
		return nil, errors.New("uproc: queue segment too small")
	}
	q := &Queue{seg: seg, cap: seg.Words() / MsgWords, meter: meter}
	// The queue lock takes the layer's low sub-rank: the manager may
	// post to the queue, but the queue never calls up into the
	// manager.
	q.mu.InitSub(ModuleName, subQueue)
	return q, nil
}

// Cap reports the fixed message capacity.
func (q *Queue) Cap() int { return q.cap }

// Len reports the queued message count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Post appends a message; it runs entirely in real memory, so any
// virtual processor may call it regardless of what is paged in.
func (q *Queue) Post(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == q.cap {
		return ErrQueueFull
	}
	slot := (q.head + q.n) % q.cap
	base := slot * MsgWords
	if err := q.seg.Write(base, hw.Word(m.Kind)); err != nil {
		return err
	}
	if err := q.seg.Write(base+1, hw.Word(m.Process).Masked()); err != nil {
		return err
	}
	if err := q.seg.Write(base+2, hw.Word(m.Datum).Masked()); err != nil {
		return err
	}
	q.n++
	q.meter.Add(hw.CycIPC)
	if q.sink != nil {
		q.sink.Emit(trace.Event{Kind: trace.EvIPC, Module: ModuleName, Cost: hw.CycIPC, Arg0: int64(m.Kind), Arg1: int64(m.Process)})
	}
	q.posted.Advance()
	return nil
}

// Drain removes and returns all queued messages.
func (q *Queue) Drain() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Message
	for ; q.n > 0; q.n-- {
		base := q.head * MsgWords
		kind, err := q.seg.Read(base)
		if err != nil {
			return out, err
		}
		proc, err := q.seg.Read(base + 1)
		if err != nil {
			return out, err
		}
		datum, err := q.seg.Read(base + 2)
		if err != nil {
			return out, err
		}
		out = append(out, Message{Kind: int(kind), Process: uint64(proc), Datum: uint64(datum)})
		q.head = (q.head + 1) % q.cap
	}
	return out, nil
}

// Posted returns the eventcount of messages posted, for the upper
// multiplexer to await.
func (q *Queue) Posted() *eventcount.Eventcount { return &q.posted }

// numShards shards the pid -> process table so lookups and creations
// from many CPUs do not serialize on one lock.
const numShards = 32

type procShard struct {
	mu    lockrank.Mutex
	procs map[uint64]*Process
}

// sinkSet bundles the trace destinations so the dispatch hot path
// loads them with one atomic read instead of taking the manager lock.
type sinkSet struct {
	sink   trace.Sink
	spans  trace.SpanSink
	binder trace.ProcessBinder
}

// SchedStats is the scheduler's own meter block.
type SchedStats struct {
	// Dispatches counts successful process dispatches.
	Dispatches int64
	// Steals counts dispatches that took the process from another
	// CPU's run queue; Migrations counts the re-homings that result.
	Steals     int64
	Migrations int64
	// Donations counts priority donations; MaxDonationDepth is the
	// longest donation chain walked.
	Donations        int64
	MaxDonationDepth int64
	// Wakeups counts blocked processes made ready by event delivery.
	Wakeups int64
	// MaxQueueDepth is the deepest any run queue has been.
	MaxQueueDepth int
	// RunQueues is the configured run-queue count.
	RunQueues int
}

// A Manager is the user process manager and two-level scheduler top.
type Manager struct {
	vps   *vproc.Manager
	segs  *segment.Manager
	ksm   *knownseg.Manager
	queue *Queue
	meter *hw.CostMeter

	// KSTBase/KSTSize shape each process's address space.
	KSTBase int
	KSTSize int
	// StatePack is where process-state segments are created.
	StatePack string
	// StateCell is the quota cell charged for process states.
	StateCell segment.CellRef

	// mu serializes reconfiguration (trace wiring, run-queue count);
	// it is never on the dispatch path.
	mu    lockrank.Mutex
	sinks atomic.Pointer[sinkSet]

	nextPID atomic.Uint64
	shards  [numShards]procShard

	// queues is written once at boot (SetRunQueues, before any
	// process exists) and read-only thereafter.
	queues   []*runQueue
	nextHome atomic.Uint64

	// readyEC is advanced on every enqueue, so idle schedulers can
	// await work instead of polling.
	readyEC eventcount.Eventcount
	// donation gates priority donation, so the inversion tests can
	// demonstrate the failure mode donation exists to prevent.
	donation atomic.Bool

	// running counts processes currently bound to virtual
	// processors; the idle-wait path uses it to prove a future
	// free-pool advance exists before sleeping.
	running atomic.Int64

	swaps            atomic.Int64
	dispatches       atomic.Int64
	steals           atomic.Int64
	migrations       atomic.Int64
	donations        atomic.Int64
	maxDonationDepth atomic.Int64
	wakeups          atomic.Int64
}

// SetTrace routes process-swap events (and the real-memory queue's
// posts) to s.
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	ss := &sinkSet{sink: s, spans: trace.SpanSinkOf(s)}
	ss.binder, _ = s.(trace.ProcessBinder)
	m.sinks.Store(ss)
	m.mu.Unlock()
	if m.queue != nil {
		m.queue.SetTrace(s)
	}
	m.readyEC.Trace(s, ModuleName)
}

// spanSink reads the span sink without taking any lock.
func (m *Manager) spanSink() trace.SpanSink {
	return m.sinks.Load().spans
}

// NewManager returns a user process manager multiplexing vps and
// posting low-level events through queue. It starts with a single
// run queue; SetRunQueues reshapes it at boot.
func NewManager(vps *vproc.Manager, segs *segment.Manager, ksm *knownseg.Manager, queue *Queue, meter *hw.CostMeter) *Manager {
	m := &Manager{
		vps:     vps,
		segs:    segs,
		ksm:     ksm,
		queue:   queue,
		meter:   meter,
		KSTBase: 8,
		KSTSize: 64,
	}
	m.mu.InitSub(ModuleName, subManager)
	for i := range m.shards {
		m.shards[i].mu.InitSub(ModuleName, subShard)
		m.shards[i].procs = make(map[uint64]*Process)
	}
	m.queues = []*runQueue{newRunQueue(0)}
	m.sinks.Store(&sinkSet{})
	m.donation.Store(true)
	return m
}

// SetRunQueues reshapes the ready set into n per-CPU run queues. It
// must be called before any process exists (boot); reconfiguring a
// populated scheduler would strand queued processes.
func (m *Manager) SetRunQueues(n int) {
	if n <= 0 {
		panic("uproc: run-queue count must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		populated := len(sh.procs) > 0
		sh.mu.Unlock()
		if populated {
			panic("uproc: SetRunQueues with live processes")
		}
	}
	queues := make([]*runQueue, n)
	for i := range queues {
		queues[i] = newRunQueue(i)
	}
	m.queues = queues
	m.nextHome.Store(0)
}

// RunQueues reports the configured run-queue count.
func (m *Manager) RunQueues() int { return len(m.queues) }

// ReadyEC returns the eventcount advanced on every enqueue to a run
// queue; an idle scheduler awaits it instead of polling Dispatch.
func (m *Manager) ReadyEC() *eventcount.Eventcount { return &m.readyEC }

// SetDonation turns priority donation on or off (on by default). The
// inversion regression tests turn it off to demonstrate starvation.
func (m *Manager) SetDonation(on bool) { m.donation.Store(on) }

func (m *Manager) shard(pid uint64) *procShard {
	return &m.shards[pid%numShards]
}

// Create makes a new user process for the authenticated principal at
// the given AIM label. Its state segment lives in the virtual memory,
// charged like any other segment. The process starts Ready at
// DefaultPriority, homed round-robin across the run queues.
func (m *Manager) Create(principal string, label aim.Label) (*Process, error) {
	if principal == "" {
		return nil, errors.New("uproc: empty principal")
	}
	pid := m.nextPID.Add(1)

	kst, err := m.ksm.NewKST(m.KSTBase, m.KSTSize)
	if err != nil {
		return nil, err
	}
	// The process state segment: ordinary, pageable, quota-charged.
	stateUID := m.segs.NewUID()
	stateAddr, err := m.segs.Create(m.StatePack, stateUID, false, m.StateCell.UID)
	if err != nil {
		return nil, err
	}
	if _, err := m.segs.Activate(stateUID, stateAddr, m.StateCell.Cell, m.StateCell.Has); err != nil {
		return nil, err
	}
	if _, err := m.segs.Grow(stateUID, 0, 0, 0); err != nil {
		return nil, err
	}
	if err := m.segs.WriteWord(stateUID, 0, hw.Word(pid).Masked()); err != nil {
		return nil, err
	}
	p := &Process{
		id:            pid,
		principal:     principal,
		label:         label,
		state:         Ready,
		dt:            hw.NewDescriptorTable(m.KSTBase + m.KSTSize),
		kst:           kst,
		stateUID:      stateUID,
		base:          DefaultPriority,
		eff:           DefaultPriority,
		home:          int((m.nextHome.Add(1) - 1) % uint64(len(m.queues))),
		createdCycle:  m.meter.Cycles(),
		firstRunCycle: -1,
	}
	p.pmu.InitSub(ModuleName, subProc)
	sh := m.shard(pid)
	sh.mu.Lock()
	sh.procs[pid] = p
	sh.mu.Unlock()
	p.pmu.Lock()
	m.enqueue(p, false)
	p.pmu.Unlock()
	return p, nil
}

// enqueue puts p on its home run queue (front prepends). Caller holds
// p.pmu, which pins p.home and p.eff.
func (m *Manager) enqueue(p *Process, front bool) {
	rq := m.queues[p.home]
	rq.mu.Lock()
	rq.push(p, front)
	rq.mu.Unlock()
	m.readyEC.Advance()
}

// requeuePriority moves a queued process to its new effective-
// priority bucket, O(1). Caller holds p.pmu (pinning home and eff);
// the queued check runs under the run-queue lock, so a concurrent pop
// simply wins and the move becomes a no-op.
func (m *Manager) requeuePriority(p *Process) {
	rq := m.queues[p.home]
	rq.mu.Lock()
	if p.queued && p.bucket != clampPriority(p.eff) {
		rq.remove(p)
		rq.push(p, false)
	}
	rq.mu.Unlock()
}

// SetPriority assigns p's base priority and repositions it in its run
// queue if it is waiting.
func (m *Manager) SetPriority(p *Process, pri int) {
	pri = clampPriority(pri)
	p.pmu.Lock()
	p.base = pri
	eff := p.base
	if p.donated > eff {
		eff = p.donated
	}
	if eff != p.eff {
		p.eff = eff
		m.requeuePriority(p)
	}
	p.pmu.Unlock()
}

// Lookup returns the process with the given id.
func (m *Manager) Lookup(pid uint64) (*Process, error) {
	sh := m.shard(pid)
	sh.mu.Lock()
	p, ok := sh.procs[pid]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("uproc: no process %d", pid)
	}
	return p, nil
}

// Count reports the number of live processes — arbitrary, unlike the
// fixed virtual-processor count below.
func (m *Manager) Count() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.procs)
		sh.mu.Unlock()
	}
	return n
}

// allPIDs returns every registered process id in ascending order, so
// broadcast wakeups touch processes in a deterministic order.
func (m *Manager) allPIDs() []uint64 {
	var pids []uint64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for pid := range sh.procs {
			pids = append(pids, pid)
		}
		sh.mu.Unlock()
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// Swaps reports how many process-state swaps (virtual-memory loads or
// stores of a state segment) have occurred.
func (m *Manager) Swaps() int64 { return m.swaps.Load() }

// SchedStats returns the scheduler's counters: dispatch volume, work
// stealing, donation, wakeups, and queue depth.
func (m *Manager) SchedStats() SchedStats {
	st := SchedStats{
		Dispatches:       m.dispatches.Load(),
		Steals:           m.steals.Load(),
		Migrations:       m.migrations.Load(),
		Donations:        m.donations.Load(),
		MaxDonationDepth: m.maxDonationDepth.Load(),
		Wakeups:          m.wakeups.Load(),
		RunQueues:        len(m.queues),
	}
	for _, rq := range m.queues {
		rq.mu.Lock()
		if rq.maxDepth > st.MaxQueueDepth {
			st.MaxQueueDepth = rq.maxDepth
		}
		rq.mu.Unlock()
	}
	return st
}

// take pops the highest-priority ready process, preferring run queue
// qi and stealing from the others in ring order when it is empty. It
// returns the process and the queue it came from. One queue lock is
// held at a time.
func (m *Manager) take(qi int) (*Process, int) {
	n := len(m.queues)
	for i := 0; i < n; i++ {
		vi := (qi + i) % n
		rq := m.queues[vi]
		rq.mu.Lock()
		p := rq.popMax()
		rq.mu.Unlock()
		if p != nil {
			return p, vi
		}
	}
	return nil, -1
}

// Dispatch binds the highest-priority ready process to a free virtual
// processor and returns it; processes of equal priority run FIFO.
// Loading the process state goes through the virtual memory — the
// expensive top-level half of the design.
func (m *Manager) Dispatch() (*Process, error) {
	p, _, err := m.DispatchOn(0)
	return p, err
}

// DispatchOn is Dispatch preferring the given run queue — each
// scheduler worker passes its own CPU's queue — stealing from sibling
// queues when it is empty. It also returns the dispatch epoch, which
// preemptIfCurrent uses to tear down exactly the dispatch it made.
func (m *Manager) DispatchOn(qi int) (*Process, uint64, error) {
	if n := len(m.queues); qi < 0 || qi >= n {
		qi %= n
		if qi < 0 {
			qi += n
		}
	}
	for {
		p, from := m.take(qi)
		if p == nil {
			return nil, 0, ErrNoReady
		}
		ss := m.sinks.Load()
		if from != qi {
			m.steals.Add(1)
			if ss.sink != nil {
				ss.sink.Emit(trace.Event{Kind: trace.EvSchedSteal, Module: ModuleName, Arg0: int64(qi), Arg1: int64(from), Arg2: int64(p.id)})
			}
			schedsim.Yield(schedsim.PointMark, "uproc-steal")
		}
		// Claim: the pop made p invisible to other dispatchers, but a
		// concurrent Destroy can still have killed it.
		p.pmu.Lock()
		if p.state != Ready {
			p.pmu.Unlock()
			continue
		}
		if p.home != qi {
			old := p.home
			p.home = qi
			m.migrations.Add(1)
			if ss.sink != nil {
				ss.sink.Emit(trace.Event{Kind: trace.EvSchedMigrate, Module: ModuleName, Arg0: int64(old), Arg1: int64(qi), Arg2: int64(p.id)})
			}
		}
		p.pmu.Unlock()

		vp, err := m.vps.AcquireUser(p.id)
		if err != nil {
			m.requeueFront(p)
			return nil, 0, err
		}
		// Touch the state segment (a real virtual-memory reference) and
		// charge the swap cost.
		if _, err := m.segs.EnsureResident(p.stateUID, 0); err != nil {
			_ = m.vps.ReleaseUser(vp)
			m.requeueFront(p)
			return nil, 0, err
		}
		m.swaps.Add(1)
		m.meter.Add(hw.CycProcessSwap)

		p.pmu.Lock()
		if p.state != Ready {
			p.pmu.Unlock()
			_ = m.vps.ReleaseUser(vp)
			continue
		}
		p.state = Running
		p.vp = vp
		p.epoch++
		epoch := p.epoch
		if p.firstRunCycle < 0 {
			p.firstRunCycle = m.meter.Cycles()
		}
		p.pmu.Unlock()
		m.running.Add(1)
		m.dispatches.Add(1)
		if ss.sink != nil {
			// Arg1 = 0: a state load through the virtual memory.
			ss.sink.Emit(trace.Event{Kind: trace.EvProcessSwap, Module: ModuleName, Cost: hw.CycProcessSwap, Arg0: int64(p.id)})
		}
		if ss.binder != nil {
			// Span self-time is now attributed to p; the binding is left
			// in place at preemption, so the tail of a quantum span still
			// charges the process that ran it.
			ss.binder.SetRunningProcess(p.id)
		}
		return p, epoch, nil
	}
}

// requeueFront returns a claimed-but-undispatched process to the
// front of its queue, so a transient failure (no free virtual
// processor) does not cost it its place in line.
func (m *Manager) requeueFront(p *Process) {
	p.pmu.Lock()
	if p.state == Ready {
		m.enqueue(p, true)
	}
	p.pmu.Unlock()
}

// Preempt returns a running process to the ready queue, storing its
// state back through the virtual memory.
func (m *Manager) Preempt(p *Process) error {
	return m.unbind(p, Ready)
}

// preemptIfCurrent preempts p only if it is still running the
// dispatch identified by epoch; a no-op (nil) otherwise. Executors
// use it so a body that blocked its process — possibly already
// re-dispatched by another CPU — is not torn down twice.
func (m *Manager) preemptIfCurrent(p *Process, epoch uint64) error {
	p.pmu.Lock()
	if p.state != Running || p.vp == nil || p.epoch != epoch {
		p.pmu.Unlock()
		return nil
	}
	vp := p.vp
	p.vp = nil
	p.state = Ready
	m.enqueue(p, false)
	p.pmu.Unlock()
	return m.finishUnbind(p, vp, Ready)
}

// Block parks a running process until ec reaches v. A nil ec blocks
// until any wakeup message addressed to the process arrives. The
// rescue at the end closes the lost-wakeup window: an event delivered
// between the state store and this check wakes the process here
// instead of never.
func (m *Manager) Block(p *Process, ec *eventcount.Eventcount, v uint64) error {
	schedsim.Yield(schedsim.PointMark, "uproc-block")
	p.pmu.Lock()
	p.await = ec
	p.awaitValue = v
	p.pmu.Unlock()
	if err := m.unbind(p, Blocked); err != nil {
		return err
	}
	if ec != nil {
		if _, ok := ec.TryAwait(v); ok {
			m.tryWake(p)
		}
		return nil
	}
	// Wakeup-waiting rescue: a targeted wakeup delivered while the
	// process was still running could not unblock it then; the switch
	// remembers it, and consuming it here closes the lost-wakeup
	// window between the delivery scan and this block.
	p.pmu.Lock()
	if p.wakePending && p.state == Blocked {
		p.wakePending = false
		p.state = Ready
		p.await = nil
		m.enqueue(p, false)
		p.pmu.Unlock()
		m.wakeups.Add(1)
		return nil
	}
	p.pmu.Unlock()
	return nil
}

func (m *Manager) unbind(p *Process, to State) error {
	p.pmu.Lock()
	if p.state != Running || p.vp == nil {
		st := p.state
		p.pmu.Unlock()
		return fmt.Errorf("uproc: process %d is %v: %w", p.id, st, ErrNotRunning)
	}
	vp := p.vp
	p.vp = nil
	p.state = to
	if to == Ready {
		m.enqueue(p, false)
	}
	p.pmu.Unlock()
	return m.finishUnbind(p, vp, to)
}

// finishUnbind stores the state word back through the virtual memory,
// meters the swap, and frees the virtual processor (which advances
// the free-pool eventcount, waking idle schedulers).
func (m *Manager) finishUnbind(p *Process, vp *vproc.VP, to State) error {
	m.running.Add(-1)
	if err := m.segs.WriteWord(p.stateUID, 1, hw.Word(to)); err != nil {
		return err
	}
	m.swaps.Add(1)
	m.meter.Add(hw.CycProcessSwap)
	if ss := m.sinks.Load(); ss.sink != nil {
		// Arg1 = 1: a state store through the virtual memory.
		ss.sink.Emit(trace.Event{Kind: trace.EvProcessSwap, Module: ModuleName, Cost: hw.CycProcessSwap, Arg0: int64(p.id), Arg1: 1})
	}
	return m.vps.ReleaseUser(vp)
}

// tryWake moves a blocked process whose await is satisfied to Ready,
// reporting whether it woke.
func (m *Manager) tryWake(p *Process) bool {
	p.pmu.Lock()
	if p.state != Blocked {
		p.pmu.Unlock()
		return false
	}
	if p.await != nil {
		if _, ok := p.await.TryAwait(p.awaitValue); !ok {
			p.pmu.Unlock()
			return false
		}
	}
	p.state = Ready
	p.await = nil
	p.wakePending = false
	m.enqueue(p, false)
	p.pmu.Unlock()
	m.wakeups.Add(1)
	return true
}

// wakeTargeted delivers a wakeup addressed specifically to p. A
// blocked process wakes by the tryWake rules; one that is running or
// ready keeps the wakeup-waiting switch set instead, so its next
// awaitless Block finds the wakeup rather than losing it. The whole
// decision sits under the process lock — delivery and Block cannot
// interleave between the state check and the flag.
func (m *Manager) wakeTargeted(p *Process) bool {
	p.pmu.Lock()
	if p.state == Blocked && p.await == nil {
		p.state = Ready
		p.wakePending = false
		m.enqueue(p, false)
		p.pmu.Unlock()
		m.wakeups.Add(1)
		return true
	}
	if p.state == Blocked {
		p.pmu.Unlock()
		// Blocked on an eventcount: the count decides, as before.
		return m.tryWake(p)
	}
	if p.state != Dead {
		p.wakePending = true
	}
	p.pmu.Unlock()
	return false
}

// Wakeup posts a wakeup message for a process into the real-memory
// queue. It is callable from the bottom level: it touches only wired
// memory.
func (m *Manager) Wakeup(pid uint64, datum uint64) error {
	return m.queue.Post(Message{Kind: 1, Process: pid, Datum: datum})
}

// DeliverEvents drains the real-memory queue and unblocks every
// blocked process whose awaited eventcount has been reached, moving
// it to its ready queue. The scheduler's virtual processor runs this;
// it returns the number of processes made ready. Targeted messages
// cost one sharded lookup; broadcasts sweep the pid space in
// ascending order, so delivery order is deterministic.
func (m *Manager) DeliverEvents() (int, error) {
	msgs, err := m.queue.Drain()
	if err != nil {
		return 0, err
	}
	if len(msgs) == 0 {
		return 0, nil
	}
	schedsim.Yield(schedsim.PointMark, "uproc-deliver")
	woken := 0
	for _, msg := range msgs {
		if msg.Process != 0 {
			p, err := m.Lookup(msg.Process)
			if err != nil {
				continue
			}
			if m.wakeTargeted(p) {
				woken++
			}
			continue
		}
		for _, pid := range m.allPIDs() {
			p, err := m.Lookup(pid)
			if err != nil {
				continue
			}
			if m.tryWake(p) {
				woken++
			}
		}
	}
	return woken, nil
}

// Audit checks the manager's invariants: running processes hold
// exactly one user-bound virtual processor, ready processes appear on
// a run queue, effective priorities are consistent, and nothing dead
// lingers.
func (m *Manager) Audit() []string {
	var bad []string
	onQueue := make(map[uint64]bool)
	for _, rq := range m.queues {
		rq.mu.Lock()
		for b := 0; b < NumPriorities; b++ {
			n := 0
			for p := rq.heads[b]; p != nil; p = p.next {
				onQueue[p.id] = true
				n++
			}
			if n > 0 && rq.mask&(1<<uint(b)) == 0 {
				bad = append(bad, fmt.Sprintf("run queue %d bucket %d populated but mask clear", rq.id, b))
			}
			if n == 0 && rq.mask&(1<<uint(b)) != 0 {
				bad = append(bad, fmt.Sprintf("run queue %d bucket %d empty but mask set", rq.id, b))
			}
		}
		rq.mu.Unlock()
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for pid, p := range sh.procs {
			p.pmu.Lock()
			eff := p.base
			if p.donated > eff {
				eff = p.donated
			}
			if p.eff != eff {
				bad = append(bad, fmt.Sprintf("process %d effective priority %d, want max(base %d, donated %d)", pid, p.eff, p.base, p.donated))
			}
			switch p.state {
			case Running:
				if p.vp == nil {
					bad = append(bad, fmt.Sprintf("process %d running without a virtual processor", pid))
				} else if p.vp.Binding() != vproc.UserBound || p.vp.User() != pid {
					bad = append(bad, fmt.Sprintf("process %d running on vp %d bound to %v/%d", pid, p.vp.ID(), p.vp.Binding(), p.vp.User()))
				}
			case Ready:
				if !onQueue[pid] {
					bad = append(bad, fmt.Sprintf("process %d ready but not queued", pid))
				}
				if p.vp != nil {
					bad = append(bad, fmt.Sprintf("process %d ready but still holds vp %d", pid, p.vp.ID()))
				}
			case Blocked:
				if p.vp != nil {
					bad = append(bad, fmt.Sprintf("process %d blocked but still holds vp %d", pid, p.vp.ID()))
				}
			case Dead:
				bad = append(bad, fmt.Sprintf("process %d dead but registered", pid))
			}
			p.pmu.Unlock()
		}
		sh.mu.Unlock()
	}
	return bad
}

// Destroy ends a process, releasing its virtual processor, state
// segment and KST.
func (m *Manager) Destroy(p *Process) error {
	p.pmu.Lock()
	if p.state == Dead {
		p.pmu.Unlock()
		return fmt.Errorf("uproc: process %d already dead", p.id)
	}
	rq := m.queues[p.home]
	rq.mu.Lock()
	if p.queued {
		rq.remove(p)
	}
	rq.mu.Unlock()
	vp := p.vp
	wasRunning := p.state == Running && vp != nil
	p.vp = nil
	p.state = Dead
	p.pmu.Unlock()
	sh := m.shard(p.id)
	sh.mu.Lock()
	delete(sh.procs, p.id)
	sh.mu.Unlock()
	if wasRunning {
		m.running.Add(-1)
	}
	if vp != nil {
		if err := m.vps.ReleaseUser(vp); err != nil {
			return err
		}
	}
	m.ksm.DropKST(p.kst)
	a, err := m.segs.Lookup(p.stateUID)
	if err == nil {
		return m.segs.Delete(p.stateUID, a.Addr())
	}
	return nil
}

// RunQuantum dispatches up to n ready processes in priority order,
// running body for each with the process bound to a virtual
// processor, then preempting. It is the simple scheduling mix used by
// the benchmarks; it stops early when the ready set or the virtual-
// processor pool drains. Being a single worker standing in for every
// CPU, it rotates its preferred run queue so no queue starves.
func (m *Manager) RunQuantum(n int, body func(*Process)) (int, error) {
	ss := m.spanSink()
	ran := 0
	for i := 0; i < n; i++ {
		if ss != nil {
			ss.BeginSpan(trace.SpanQuantum, ModuleName, int64(i))
		}
		p, epoch, err := m.DispatchOn(i % len(m.queues))
		if err != nil {
			if ss != nil {
				ss.EndSpan(trace.SpanQuantum)
			}
			if errors.Is(err, ErrNoReady) || errors.Is(err, vproc.ErrNoFreeVP) {
				break
			}
			return ran, err
		}
		if body != nil {
			body(p)
		}
		err = m.preemptIfCurrent(p, epoch)
		if ss != nil {
			ss.EndSpan(trace.SpanQuantum)
		}
		if err != nil {
			return ran, err
		}
		ran++
	}
	return ran, nil
}

// RunQuantumParallel is the true-multiprocessor form of RunQuantum:
// one goroutine per processor, each dispatching from its own run
// queue (stealing when it drains), running body with the process
// bound to that processor, and preempting. Each goroutine runs at
// most n processes; a goroutine stops when the ready set drains, and
// sleeps on the free-pool eventcount when the virtual processors are
// all busy. Trace events emitted inside body are attributed to the
// running processor. The total across processors is returned with the
// first real error, if any.
func (m *Manager) RunQuantumParallel(cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error) {
	var (
		wg    sync.WaitGroup
		total atomic.Int64
		errMu sync.Mutex
		first error
	)
	for wi, cpu := range cpus {
		wg.Add(1)
		go func(wi int, cpu *hw.Processor) {
			defer wg.Done()
			defer trace.BindCPU(cpu.ID)()
			ran, err := m.workerLoop(wi, cpu, n, body, false)
			total.Add(int64(ran))
			if err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}(wi, cpu)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return int(total.Load()), first
}

// workerLoop is one scheduler worker's quantum loop, shared by both
// executors: dispatch from the worker's run queue, run the body,
// preempt-if-current. When every virtual processor is busy the worker
// parks on the free-pool eventcount — but only if some process is
// running, which proves a release (and advance) is coming; otherwise
// the pool is exhausted for good and the worker exits.
func (m *Manager) workerLoop(wi int, cpu *hw.Processor, n int, body func(cpu *hw.Processor, p *Process), sim bool) (int, error) {
	ss := m.spanSink()
	qi := wi % len(m.queues)
	ran := 0
	for i := 0; i < n; i++ {
		if sim {
			schedsim.Yield(schedsim.PointQuantum, "dispatch")
		}
		if ss != nil {
			ss.BeginSpan(trace.SpanQuantum, ModuleName, int64(i))
		}
		freeSeen := m.vps.FreeEC().Read()
		p, epoch, err := m.DispatchOn(qi)
		if err != nil {
			if ss != nil {
				ss.EndSpan(trace.SpanQuantum)
			}
			if errors.Is(err, vproc.ErrNoFreeVP) {
				if m.running.Load() > 0 {
					// A bound process exists, so a ReleaseUser —
					// and its advance past freeSeen — is coming.
					m.vps.FreeEC().Await(freeSeen + 1)
					continue
				}
				return ran, nil
			}
			if errors.Is(err, ErrNoReady) {
				return ran, nil
			}
			return ran, err
		}
		if body != nil {
			body(cpu, p)
		}
		err = m.preemptIfCurrent(p, epoch)
		if ss != nil {
			ss.EndSpan(trace.SpanQuantum)
		}
		if err != nil {
			return ran, err
		}
		ran++
	}
	return ran, nil
}
