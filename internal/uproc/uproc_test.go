package uproc

import (
	"errors"
	"testing"

	"multics/internal/aim"
	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/segment"
	"multics/internal/upsignal"
	"multics/internal/vproc"
)

type fixture struct {
	meter *hw.CostMeter
	vps   *vproc.Manager
	segs  *segment.Manager
	queue *Queue
	m     *Manager
}

func newFixture(t *testing.T, nvp int) *fixture {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(4 + 32)
	cm, err := coreseg.NewManager(mem, 4, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, _ := cm.Allocate("vp-states", nvp*vproc.StateWords)
	qtable, _ := cm.Allocate("quota-table", hw.PageWords)
	ast, _ := cm.Allocate("ast", hw.PageWords)
	qseg, _ := cm.Allocate("msg-queue", 16*MsgWords)
	vps, err := vproc.NewManager(nvp, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(pageframe.PageWriterModule); err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(SchedulerModule); err != nil {
		t.Fatal(err)
	}
	frames, err := pageframe.NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	if _, err := vols.AddPack("dska", 256); err != nil {
		t.Fatal(err)
	}
	cells, err := quota.NewManager(vols, qtable, meter)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segment.NewManager(vols, frames, cells, ast, meter)
	if err != nil {
		t.Fatal(err)
	}
	signals := upsignal.NewDispatcher()
	ksm := knownseg.NewManager(segs, signals, meter)
	queue, err := NewQueue(qseg, meter)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(vps, segs, ksm, queue, meter)
	m.StatePack = "dska"
	// A quota directory for process states.
	uid := segs.NewUID()
	cell, err := segs.Create("dska", uid, true, uid)
	if err != nil {
		t.Fatal(err)
	}
	if err := cells.InitCell(cell, 100); err != nil {
		t.Fatal(err)
	}
	m.StateCell = segment.CellRef{Cell: cell, UID: uid, Has: true}
	return &fixture{meter: meter, vps: vps, segs: segs, queue: queue, m: m}
}

func TestCreateArbitraryProcesses(t *testing.T) {
	// More processes than virtual processors: the point of the
	// two-level design.
	f := newFixture(t, 4) // 2 kernel-bound + 2 multiplexable
	for i := 0; i < 10; i++ {
		p, err := f.m.Create("user.proj", aim.Bottom)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if p.State() != Ready {
			t.Errorf("new process state = %v", p.State())
		}
	}
	if f.m.Count() != 10 {
		t.Errorf("Count = %d", f.m.Count())
	}
	if f.vps.N() != 4 {
		t.Errorf("virtual processors grew: %d", f.vps.N())
	}
	if _, err := f.m.Create("", aim.Bottom); err == nil {
		t.Error("empty principal accepted")
	}
}

func TestProcessStateInVirtualMemory(t *testing.T) {
	f := newFixture(t, 4)
	p, err := f.m.Create("user.proj", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// The state segment is an ordinary active segment with the pid
	// in word 0.
	a, err := f.segs.Lookup(p.StateSegment())
	if err != nil {
		t.Fatal(err)
	}
	w, err := f.segs.ReadWord(p.StateSegment(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(w) != p.ID() {
		t.Errorf("state word = %d, want pid %d", w, p.ID())
	}
	if a.PageTable().Wired() {
		t.Error("process state segment is wired; it must be pageable")
	}
}

func TestDispatchPreemptCycle(t *testing.T) {
	f := newFixture(t, 3) // 2 kernel + 1 multiplexable
	a, err := f.m.Create("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.m.Create("b.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.m.Dispatch()
	if err != nil {
		t.Fatal(err)
	}
	if got != a || a.State() != Running {
		t.Errorf("dispatched %v (%v)", got.ID(), got.State())
	}
	// Only one multiplexable vp: the second dispatch fails.
	if _, err := f.m.Dispatch(); err == nil {
		t.Error("dispatch without a free virtual processor succeeded")
	}
	if err := f.m.Preempt(a); err != nil {
		t.Fatal(err)
	}
	if a.State() != Ready {
		t.Errorf("preempted state = %v", a.State())
	}
	got, err = f.m.Dispatch()
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("round robin dispatched %d, want %d", got.ID(), b.ID())
	}
	if err := f.m.Preempt(b); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Preempt(b); err == nil {
		t.Error("double preempt succeeded")
	}
	if f.m.Swaps() == 0 {
		t.Error("no swaps recorded")
	}
}

func TestBlockWakeupDeliver(t *testing.T) {
	f := newFixture(t, 3)
	p, err := f.m.Create("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Dispatch(); err != nil {
		t.Fatal(err)
	}
	var ec eventcount.Eventcount
	if err := f.m.Block(p, &ec, 1); err != nil {
		t.Fatal(err)
	}
	if p.State() != Blocked {
		t.Fatalf("state = %v", p.State())
	}
	// A wakeup before the eventcount advances does not unblock.
	if err := f.m.Wakeup(p.ID(), 0); err != nil {
		t.Fatal(err)
	}
	woken, err := f.m.DeliverEvents()
	if err != nil || woken != 0 {
		t.Fatalf("premature deliver = %d, %v", woken, err)
	}
	// Advance and wake: the process becomes ready.
	ec.Advance()
	if err := f.m.Wakeup(p.ID(), 0); err != nil {
		t.Fatal(err)
	}
	woken, err = f.m.DeliverEvents()
	if err != nil || woken != 1 {
		t.Fatalf("deliver = %d, %v", woken, err)
	}
	if p.State() != Ready {
		t.Errorf("state after wakeup = %v", p.State())
	}
	// And it can run again.
	got, err := f.m.Dispatch()
	if err != nil || got != p {
		t.Errorf("re-dispatch = %v, %v", got, err)
	}
}

func TestBroadcastWakeup(t *testing.T) {
	f := newFixture(t, 4)
	var ec eventcount.Eventcount
	var procs []*Process
	for i := 0; i < 2; i++ {
		p, err := f.m.Create("u.x", aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.m.Dispatch(); err != nil {
			t.Fatal(err)
		}
		if err := f.m.Block(p, &ec, 1); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	ec.Advance()
	// Process-id 0 is a broadcast: the discoverer of the event does
	// not know who is waiting.
	if err := f.m.Wakeup(0, 7); err != nil {
		t.Fatal(err)
	}
	woken, err := f.m.DeliverEvents()
	if err != nil || woken != 2 {
		t.Fatalf("broadcast deliver = %d, %v", woken, err)
	}
	for _, p := range procs {
		if p.State() != Ready {
			t.Errorf("process %d state = %v", p.ID(), p.State())
		}
	}
}

func TestQueueIsRealMemoryAndBounded(t *testing.T) {
	f := newFixture(t, 3)
	// Core segments are allocated in whole frames, so the queue
	// holds a frame's worth of messages.
	cap := f.queue.Cap()
	if cap != hw.PageWords/MsgWords {
		t.Fatalf("Cap = %d", cap)
	}
	for i := 0; i < cap; i++ {
		if err := f.queue.Post(Message{Kind: 1, Process: uint64(i)}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if err := f.queue.Post(Message{Kind: 1}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("post to full queue: %v", err)
	}
	if f.queue.Len() != cap {
		t.Errorf("Len = %d", f.queue.Len())
	}
	msgs, err := f.queue.Drain()
	if err != nil || len(msgs) != cap {
		t.Fatalf("Drain = %d msgs, %v", len(msgs), err)
	}
	for i, msg := range msgs {
		if msg.Process != uint64(i) {
			t.Errorf("msg %d = %+v; FIFO broken", i, msg)
		}
	}
	if f.queue.Posted().Read() != uint64(cap) {
		t.Errorf("Posted eventcount = %d", f.queue.Posted().Read())
	}
	// Ring wraps correctly after drain.
	if err := f.queue.Post(Message{Kind: 2, Process: 99}); err != nil {
		t.Fatal(err)
	}
	msgs, _ = f.queue.Drain()
	if len(msgs) != 1 || msgs[0].Process != 99 {
		t.Errorf("post after wrap = %+v", msgs)
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	f := newFixture(t, 3)
	p, err := f.m.Create("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Dispatch(); err != nil {
		t.Fatal(err)
	}
	free := f.vps.FreeVPs()
	if err := f.m.Destroy(p); err != nil {
		t.Fatal(err)
	}
	if f.vps.FreeVPs() != free+1 {
		t.Error("virtual processor not released")
	}
	if _, err := f.segs.Lookup(p.StateSegment()); err == nil {
		t.Error("state segment survived destruction")
	}
	if _, err := f.m.Lookup(p.ID()); err == nil {
		t.Error("destroyed process still registered")
	}
	if err := f.m.Destroy(p); err == nil {
		t.Error("double destroy succeeded")
	}
	if f.m.Count() != 0 {
		t.Errorf("Count = %d", f.m.Count())
	}
}

func TestRunQuantum(t *testing.T) {
	f := newFixture(t, 3)
	for i := 0; i < 3; i++ {
		if _, err := f.m.Create("u.x", aim.Bottom); err != nil {
			t.Fatal(err)
		}
	}
	var ran []uint64
	n, err := f.m.RunQuantum(5, func(p *Process) {
		ran = append(ran, p.ID())
		p.AddCPU(10)
	})
	if err != nil || n != 5 {
		t.Fatalf("RunQuantum = %d, %v", n, err)
	}
	// Round robin over three processes: 1,2,3,1,2.
	want := []uint64{1, 2, 3, 1, 2}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("order = %v, want %v", ran, want)
		}
	}
	p1, _ := f.m.Lookup(1)
	if p1.CPU() != 20 {
		t.Errorf("CPU accounting = %d", p1.CPU())
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Ready, Running, Blocked, Dead, State(9)} {
		if s.String() == "" {
			t.Errorf("State(%d) empty", int(s))
		}
	}
}

func TestNewQueueValidation(t *testing.T) {
	if _, err := NewQueue(nil, nil); err == nil {
		t.Error("nil segment accepted")
	}
}
