package uproc

import (
	"multics/internal/hw"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// An Executor runs the per-processor quantum loop: each simulated
// processor repeatedly dispatches a ready process, runs body with the
// process bound, and preempts. Two implementations exist:
//
//   - GoroutineExecutor, the original RunQuantumParallel model — one
//     real goroutine per hw.Processor, interleaved by the Go runtime.
//     It exercises real memory orderings and is what -race storms run.
//   - SimExecutor, the deterministic virtual-time model — one
//     cooperative schedsim task per processor, interleaved by a seeded
//     strategy at the kernel's yield points. Identical seeds replay
//     identical schedules, byte-for-byte identical traces.
type Executor interface {
	// Name labels the executor in test output and failure reports.
	Name() string
	// RunQuanta runs up to n quanta on each processor, returning the
	// total quanta completed and the first error.
	RunQuanta(m *Manager, cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error)
}

// GoroutineExecutor is the real-goroutine executor; see
// RunQuantumParallel.
type GoroutineExecutor struct{}

// Name implements Executor.
func (GoroutineExecutor) Name() string { return "goroutines" }

// RunQuanta implements Executor.
func (GoroutineExecutor) RunQuanta(m *Manager, cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error) {
	return m.RunQuantumParallel(cpus, n, body)
}

// SimExecutor is the deterministic virtual-time executor: the
// processors run as cooperative schedsim tasks under Strategy
// (Random(Seed) when nil), yielding at every instrumented kernel
// point and at each quantum boundary. Any invariant panic or
// deadlock surfaces as a *schedsim.Failure carrying Seed.
type SimExecutor struct {
	Seed     int64
	Strategy schedsim.Strategy
}

// Name implements Executor.
func (SimExecutor) Name() string { return "schedsim" }

// RunQuanta implements Executor.
func (e SimExecutor) RunQuanta(m *Manager, cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error) {
	ex := schedsim.New(schedsim.Config{
		Name:     "uproc",
		Seed:     e.Seed,
		Strategy: e.Strategy,
	})
	// The tasks are serialized by the schedsim token, so the shared
	// counters need no further synchronization; the token hand-off
	// orders every access.
	total := 0
	var first error
	for wi, cpu := range cpus {
		wi, cpu := wi, cpu
		ex.Go(cpuTaskName(cpu.ID), func() {
			defer trace.BindCPU(cpu.ID)()
			ran, err := m.workerLoop(wi, cpu, n, body, true)
			total += ran
			if err != nil && first == nil {
				first = err
			}
		})
	}
	if err := ex.Run(); err != nil {
		return total, err
	}
	return total, first
}

func cpuTaskName(id int) string {
	// Avoid fmt on the executor setup path; ids are small.
	const digits = "0123456789"
	if id < 10 {
		return "cpu" + digits[id:id+1]
	}
	return "cpu" + digits[id/10%10:id/10%10+1] + digits[id%10:id%10+1]
}

// RunQuantumWith runs the quantum loop under the given executor; it
// is RunQuantumParallel with the execution model made pluggable.
func (m *Manager) RunQuantumWith(ex Executor, cpus []*hw.Processor, n int, body func(cpu *hw.Processor, p *Process)) (int, error) {
	return ex.RunQuanta(m, cpus, n, body)
}
