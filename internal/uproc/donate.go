package uproc

import (
	"sync"

	"multics/internal/lockrank"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// MaxDonationDepth bounds a donation chain walk: a waiter boosts the
// holder of the lock it wants, and if that holder is itself waiting,
// the boost follows it, up to this many hops.
const MaxDonationDepth = 8

// A PLock is a priority-donating mutex for process-context code: the
// kernel gate and any other lock that user processes contend for.
// Without donation, a low-priority process holding the lock can be
// starved off the CPU by middle-priority processes while a
// high-priority process waits — the classic priority inversion. A
// PLock waiter donates its effective priority to the holder, chaining
// through the holder's own wait if necessary, so the holder runs at
// the waiter's priority until it releases.
//
// The underlying mutex is a lockrank.Mutex ranked by the owning
// module, so the certification-order discipline and the deterministic
// executor's yield points apply unchanged. The bookkeeping lock
// (state) is a plain leaf mutex: its critical sections never reach a
// yield point, so it cannot deadlock the schedule.
type PLock struct {
	m    *Manager
	mu   lockrank.Mutex
	name string

	state   sync.Mutex
	holder  *Process
	waiters []*Process
}

// NewPLock builds a priority-donating lock owned by the named module
// (which gives the underlying mutex its certification rank). The
// manager resolves donor and holder scheduling state; a nil manager
// degrades to a plain ranked mutex.
func NewPLock(m *Manager, module string) *PLock {
	l := &PLock{m: m, name: module}
	l.mu.Init(module)
	return l
}

// Name returns the owning module's name.
func (l *PLock) Name() string { return l.name }

// Acquire takes the lock on behalf of p, donating p's effective
// priority to the current holder (and down its wait chain) before
// blocking. A nil p acquires without donation — boot-time and
// kernel-daemon callers have no process identity.
func (l *PLock) Acquire(p *Process) {
	if p == nil || l.m == nil {
		l.mu.Lock()
		l.state.Lock()
		l.holder = p
		l.state.Unlock()
		return
	}
	l.state.Lock()
	l.waiters = append(l.waiters, p)
	holder := l.holder
	l.state.Unlock()
	p.pmu.Lock()
	p.waitingOn = l
	p.pmu.Unlock()
	if holder != nil {
		l.m.donate(p, l)
	}
	l.mu.Lock()
	l.state.Lock()
	l.holder = p
	for i, w := range l.waiters {
		if w == p {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			break
		}
	}
	l.state.Unlock()
	p.pmu.Lock()
	p.waitingOn = nil
	p.held = append(p.held, l)
	p.pmu.Unlock()
}

// TryAcquire takes the lock if it is free, reporting whether it did.
// On failure the waiter's intent is recorded (p.waitingOn) and its
// priority donated, exactly as for a blocking Acquire — a polling
// waiter still boosts the holder, which is what lets the deterministic
// sweep tests drive contention without parking tasks.
func (l *PLock) TryAcquire(p *Process) bool {
	if l.mu.TryLock() {
		l.state.Lock()
		l.holder = p
		l.state.Unlock()
		if p != nil {
			p.pmu.Lock()
			p.waitingOn = nil
			p.held = append(p.held, l)
			p.pmu.Unlock()
		}
		return true
	}
	if p != nil && l.m != nil {
		p.pmu.Lock()
		p.waitingOn = l
		p.pmu.Unlock()
		l.m.donate(p, l)
	}
	return false
}

// Release drops the lock, first recomputing the holder's donated
// priority from the locks it still holds — the donation from this
// lock's waiters ends now.
func (l *PLock) Release() {
	l.state.Lock()
	p := l.holder
	l.holder = nil
	l.state.Unlock()
	if p != nil && l.m != nil {
		p.pmu.Lock()
		for i, hl := range p.held {
			if hl == l {
				p.held = append(p.held[:i], p.held[i+1:]...)
				break
			}
		}
		held := append([]*PLock(nil), p.held...)
		p.pmu.Unlock()
		// Recompute what is still donated: the highest effective
		// priority among waiters of the locks p still holds. Each
		// waiter's priority is read under its own lock, one at a time
		// — two process locks are never nested.
		donated := 0
		for _, hl := range held {
			hl.state.Lock()
			ws := append([]*Process(nil), hl.waiters...)
			hl.state.Unlock()
			for _, w := range ws {
				if e := w.Effective(); e > donated {
					donated = e
				}
			}
		}
		p.pmu.Lock()
		p.donated = donated
		eff := p.base
		if p.donated > eff {
			eff = p.donated
		}
		if eff != p.eff {
			p.eff = eff
			l.m.requeuePriority(p)
		}
		p.pmu.Unlock()
	}
	l.mu.Unlock()
}

// donate walks the donation chain from donor's wait on l: boost the
// holder to donor's effective priority; if the holder is itself
// waiting on a lock, follow it, up to MaxDonationDepth hops. One
// process lock is held at a time; the chain snapshot races benignly
// with releases (a stale boost is corrected by the holder's own
// Release recompute).
func (m *Manager) donate(donor *Process, l *PLock) {
	if !m.donation.Load() {
		return
	}
	donor.pmu.Lock()
	pri := donor.eff
	donorID := donor.id
	donor.pmu.Unlock()
	lock := l
	for depth := 1; lock != nil && depth <= MaxDonationDepth; depth++ {
		lock.state.Lock()
		h := lock.holder
		lock.state.Unlock()
		if h == nil || h == donor {
			return
		}
		h.pmu.Lock()
		if pri <= h.eff {
			h.pmu.Unlock()
			return
		}
		h.donated = pri
		h.eff = pri
		m.requeuePriority(h)
		next := h.waitingOn
		hid := h.id
		h.pmu.Unlock()
		m.donations.Add(1)
		if d := int64(depth); d > m.maxDonationDepth.Load() {
			m.maxDonationDepth.Store(d)
		}
		if ss := m.sinks.Load(); ss.sink != nil {
			ss.sink.Emit(trace.Event{Kind: trace.EvSchedDonate, Module: ModuleName, Arg0: int64(donorID), Arg1: int64(hid), Arg2: int64(pri)})
		}
		schedsim.Yield(schedsim.PointMark, "uproc-donate")
		lock = next
	}
}
