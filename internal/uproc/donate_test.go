package uproc

import (
	"errors"
	"fmt"
	"testing"

	"multics/internal/aim"
	"multics/internal/schedsim"
	"multics/internal/vproc"
)

// inversionRig builds the classic chained priority inversion on a
// fresh fixture: L (priority 2) holds lock A; M2 (priority 5) holds
// lock B and is already recorded waiting on A; M1 (priority 8) is
// pure CPU burn; H (priority 12) polls for B. Without donation the
// strict-priority scheduler runs H and M1 forever — L never releases
// A, so M2 never releases B, so H never gets it. With donation H's
// failed try chains H -> B's holder M2 -> M2's wait on A -> L, and
// the boosted L outranks M1.
type inversionRig struct {
	f            *fixture
	lockA, lockB *PLock
	l, m2, m1, h *Process

	lReleased bool
	m2Done    bool
	hGotB     bool
}

func newInversionRig(t *testing.T, donation bool) *inversionRig {
	t.Helper()
	f := newFixture(t, 4) // two multiplexable virtual processors
	f.m.SetDonation(donation)
	r := &inversionRig{
		f:     f,
		lockA: NewPLock(f.m, "test-lock-a"),
		lockB: NewPLock(f.m, "test-lock-b"),
	}
	mk := func(name string, pri int) *Process {
		p, err := f.m.Create(name, aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		f.m.SetPriority(p, pri)
		return p
	}
	r.l = mk("low.x", 2)
	r.m2 = mk("mid2.x", 5)
	r.m1 = mk("mid1.x", 8)
	r.h = mk("high.x", 12)
	if !r.lockA.TryAcquire(r.l) {
		t.Fatal("setup: L could not take lock A")
	}
	if !r.lockB.TryAcquire(r.m2) {
		t.Fatal("setup: M2 could not take lock B")
	}
	// M2's wait on A is on record before the schedule starts, so H's
	// first donation must chain through it (depth 2).
	if r.lockA.TryAcquire(r.m2) {
		t.Fatal("setup: lock A was unexpectedly free")
	}
	return r
}

// body is what each process does with a quantum.
func (r *inversionRig) body(p *Process) {
	switch p {
	case r.l:
		if !r.lReleased {
			r.lReleased = true
			r.lockA.Release()
		}
	case r.m2:
		if !r.m2Done && r.lockA.TryAcquire(r.m2) {
			r.m2Done = true
			r.lockA.Release()
			r.lockB.Release()
		}
	case r.h:
		if !r.hGotB && r.lockB.TryAcquire(r.h) {
			r.hGotB = true
			r.lockB.Release()
		}
	case r.m1:
		// CPU-bound: burns the quantum and stays ready.
	}
}

// worker is one simulated processor's dispatch loop, run as a
// schedsim task; the shared rig fields are serialized by the schedsim
// token.
func (r *inversionRig) worker(wi, budget int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("worker %d: %v", wi, rec)
		}
	}()
	for q := 0; q < budget && !r.hGotB; q++ {
		schedsim.Yield(schedsim.PointQuantum, "dispatch")
		p, epoch, derr := r.f.m.DispatchOn(wi)
		if errors.Is(derr, ErrNoReady) || errors.Is(derr, vproc.ErrNoFreeVP) {
			continue
		}
		if derr != nil {
			return derr
		}
		r.body(p)
		if perr := r.f.m.preemptIfCurrent(p, epoch); perr != nil {
			return perr
		}
	}
	return nil
}

// run executes the rig's two processors under the given strategy and
// returns the executor and the first worker error.
func (r *inversionRig) run(strat schedsim.Strategy, budget int) (*schedsim.Executor, error) {
	ex := schedsim.New(schedsim.Config{Name: "inversion", Strategy: strat})
	errs := make([]error, 2)
	for wi := 0; wi < 2; wi++ {
		wi := wi
		ex.Go(fmt.Sprintf("cpu%d", wi), func() { errs[wi] = r.worker(wi, budget) })
	}
	if err := ex.Run(); err != nil {
		return ex, err
	}
	for _, e := range errs {
		if e != nil {
			return ex, e
		}
	}
	return ex, nil
}

// TestPriorityInversionWithoutDonation demonstrates the inversion the
// donation machinery exists to solve: with donation off, the
// high-priority process never acquires lock B because the lock's
// holder chain is starved behind the CPU-bound middle priority.
func TestPriorityInversionWithoutDonation(t *testing.T) {
	r := newInversionRig(t, false)
	if _, err := r.run(schedsim.Random(1977), 24); err != nil {
		t.Fatal(err)
	}
	if r.hGotB {
		t.Fatal("H acquired lock B without donation: the inversion scenario is broken")
	}
	if r.lReleased {
		t.Fatal("starved L ran without donation: the inversion scenario is broken")
	}
	st := r.f.m.SchedStats()
	if st.Donations != 0 {
		t.Fatalf("donation off, yet %d donations", st.Donations)
	}
}

// TestSweepDonationResolvesInversion systematically explores
// interleavings around the donation walk and the dispatch decision:
// in EVERY explored schedule the donation chain (depth >= 2: H's
// failed try on B boosts B's holder M2, then follows M2's recorded
// wait to A's holder L) must let H acquire lock B within the quantum
// budget. Donation and depth counters prove the sweep exercised the
// chain rather than passing vacuously.
func TestSweepDonationResolvesInversion(t *testing.T) {
	var totalDonations, maxDepth int64
	maxSched, maxPre := schedsim.EnvBudget(48, 2)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointMark && d.Detail == "uproc-donate" ||
				d.Point == schedsim.PointQuantum
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		r := newInversionRig(t, true)
		ex, err := r.run(strat, 24)
		if err != nil {
			return ex, err
		}
		if !r.hGotB {
			return ex, fmt.Errorf("high-priority process never acquired lock B: inversion unresolved")
		}
		st := r.f.m.SchedStats()
		if st.Donations == 0 {
			return ex, fmt.Errorf("H acquired lock B with zero donations: scenario degenerated")
		}
		totalDonations += st.Donations
		if st.MaxDonationDepth > maxDepth {
			maxDepth = st.MaxDonationDepth
		}
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatalf("sweep vacuous: no in-window decisions over %d schedules", rep.Schedules)
	}
	if totalDonations == 0 {
		t.Fatal("sweep vacuous: no donations in any schedule")
	}
	if maxDepth < 2 {
		t.Fatalf("donation chain never reached depth 2 (max %d): the chained walk was not exercised", maxDepth)
	}
	t.Logf("%d schedules, %d in-window decisions, %d donations, max chain depth %d, truncated=%v",
		rep.Schedules, rep.WindowDecisions, totalDonations, maxDepth, rep.Truncated)
}
