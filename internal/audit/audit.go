// Package audit implements the reviewable-kernel goal the project
// aimed at: "two or more small, expert teams of programmers can be
// assigned to be auditors of the code ... to try to understand the
// function of every program statement and to report anything that is
// not understandable or potentially in error."
//
// Because the kernel's modules are object managers with explicit
// interfaces and a verified loop-free dependency structure, each can
// be audited independently, bottom-up. This package makes that
// executable: every manager exposes an Audit method checking its own
// representation invariants, and the auditor runs them in the
// certification order computed from the dependency graph, plus the
// cross-module checks (the storage accounting balance) that only a
// whole-system view can make.
package audit

import (
	"fmt"
	"strings"

	"multics/internal/core"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/quota"
)

// A Finding is one invariant violation, attributed to the module
// whose audit discovered it.
type Finding struct {
	Module string
	Detail string
	// Cycle is the simulated cycle clock at which the violation was
	// detected.
	Cycle int64
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (detected at cycle %d)", f.Module, f.Detail, f.Cycle)
}

// A Report is the result of one audit pass.
type Report struct {
	// Order is the certification order the audit followed.
	Order [][]string
	// Findings is every violation, in audit order. An empty list is
	// a clean audit.
	Findings []Finding
	// Cycles is the simulated cost of the audit pass itself: the
	// auditors' reads are metered like everyone else's.
	Cycles int64
}

// Clean reports whether the audit found nothing.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

func (r Report) String() string {
	var b strings.Builder
	b.WriteString("audit order:\n")
	for i, layer := range r.Order {
		fmt.Fprintf(&b, "    layer %d: %s\n", i, strings.Join(layer, ", "))
	}
	fmt.Fprintf(&b, "audit pass cost %d simulated cycles\n", r.Cycles)
	if r.Clean() {
		b.WriteString("no findings: every module invariant and the global accounting balance hold\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d findings:\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "    %s\n", f)
	}
	return b.String()
}

// Run performs a full audit pass over a live kernel: the structural
// check, each manager's self-audit in certification order, and the
// cross-module storage-accounting balance.
func Run(k *core.Kernel) (r Report) {
	start := k.Meter.Snapshot()
	defer func() { r.Cycles = k.Meter.Since(start) }()
	add := func(module string, details []string) {
		for _, d := range details {
			r.Findings = append(r.Findings, Finding{Module: module, Detail: d, Cycle: k.Meter.Cycles()})
		}
	}

	// The structure itself.
	if err := k.Graph.Verify(); err != nil {
		add("dependency-structure", []string{err.Error()})
		// Without a lattice there is no certification order.
		return r
	}
	layers, err := k.Graph.Layers()
	if err != nil {
		add("dependency-structure", []string{err.Error()})
		return r
	}
	r.Order = layers

	// Core segments must be sealed after initialization.
	if !k.CoreSegs.Sealed() {
		add(core.ModCoreSeg, []string{"core segment allocation not sealed"})
	}

	// Per-module self-audits, bottom-up.
	add(core.ModVProc, k.VProcs.Audit())
	add(core.ModFrame, k.Frames.Audit())
	add(core.ModSegment, k.Segs.Audit())
	add(core.ModKnownSeg, k.KSM.Audit())
	add(core.ModUProc, k.Procs.Audit())

	// Cross-module: every allocated disk record is charged to
	// exactly one quota cell (cached value wins for active cells).
	charged, allocated, errs := Balance(k)
	add(core.ModQuota, errs)
	if charged != allocated {
		add(core.ModQuota, []string{fmt.Sprintf("%d pages charged across all cells but %d records allocated", charged, allocated)})
	}
	return r
}

// Balance computes the global storage accounting: pages charged
// across every quota cell versus records allocated across every pack.
func Balance(k *core.Kernel) (charged, allocated int, problems []string) {
	for _, packID := range k.Vols.Packs() {
		pack, err := k.Vols.Pack(packID)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		allocated += pack.UsedRecords()
		pack.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			// The auditor's table probe is metered like any other
			// reference.
			k.Meter.Add(hw.CycMemRef)
			if !e.Quota.Valid {
				return
			}
			cell := quota.CellName{Pack: packID, TOC: idx}
			if k.Cells.Active(cell) {
				_, used, err := k.Cells.Info(cell)
				if err != nil {
					problems = append(problems, err.Error())
					return
				}
				charged += used
			} else {
				charged += e.Quota.Used
			}
		})
	}
	return charged, allocated, problems
}
