package audit

import (
	"strings"
	"testing"

	"multics/internal/aim"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/hw"
)

func bootK(t *testing.T) *core.Kernel {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.RootQuota = 10000
	k, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFreshKernelAuditsClean(t *testing.T) {
	k := bootK(t)
	r := Run(k)
	if !r.Clean() {
		t.Fatalf("fresh kernel has findings:\n%s", r)
	}
	if len(r.Order) == 0 {
		t.Error("no certification order")
	}
	if !strings.Contains(r.String(), "no findings") {
		t.Error("clean report does not say so")
	}
}

func TestBusyKernelAuditsClean(t *testing.T) {
	// A kernel that has serviced faults, evicted, reclaimed zero
	// pages and relocated a segment still satisfies every invariant.
	cfg := core.DefaultConfig()
	cfg.MemFrames = 20
	cfg.WiredFrames = 8
	cfg.RootQuota = 10000
	cfg.Packs = []core.PackSpec{{ID: "p0", Records: 16}, {ID: "p1", Records: 4096}}
	k, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.CreateProcess("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	if _, err := k.CreateDir(cpu, p, nil, "d", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"d"}, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"d", "f"})
	if err != nil {
		t.Fatal(err)
	}
	// Drive growth past the small pack (relocation) and past the
	// pageable memory (eviction); touch a page read-only so a zero
	// page exists.
	if _, err := k.Read(cpu, p, segno, 3*hw.PageWords); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if k.Restores() == 0 {
		t.Fatal("fixture did not trigger a relocation")
	}
	r := Run(k)
	if !r.Clean() {
		t.Fatalf("busy kernel has findings:\n%s", r)
	}
	charged, allocated, errs := Balance(k)
	if len(errs) > 0 || charged != allocated {
		t.Errorf("balance = %d/%d, %v", charged, allocated, errs)
	}
}

func TestAuditDetectsInjectedCorruption(t *testing.T) {
	// Corrupt a live page descriptor behind the page frame
	// manager's back; the audit must find it.
	k := bootK(t)
	p, err := k.CreateProcess("a.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	e, err := p.KST().Entry(segno)
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.Segs.Lookup(e.UID)
	if err != nil {
		t.Fatal(err)
	}
	// The sabotage: point the resident descriptor at frame 0.
	if _, err := a.PageTable().Update(0, func(d *hw.PTW) { d.Frame = 0 }); err != nil {
		t.Fatal(err)
	}
	r := Run(k)
	if r.Clean() {
		t.Fatal("audit missed a corrupted page descriptor")
	}
	found := false
	for _, f := range r.Findings {
		if f.Module == core.ModFrame {
			found = true
		}
	}
	if !found {
		t.Errorf("corruption not attributed to the page frame manager:\n%s", r)
	}
	if !strings.Contains(r.String(), "findings") {
		t.Error("report rendering broken")
	}
}

func TestAuditDetectsAccountingDrift(t *testing.T) {
	// Leak a record allocation with no charge; the balance check
	// must catch it.
	k := bootK(t)
	pack, err := k.Vols.Pack("dska")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pack.AllocRecord(); err != nil {
		t.Fatal(err)
	}
	r := Run(k)
	if r.Clean() {
		t.Fatal("audit missed an uncharged record")
	}
}
