package directory

import (
	"testing"
	"testing/quick"

	"multics/internal/hw"
)

func TestPrincipalParts(t *testing.T) {
	p := Principal("bob.sys")
	if p.Person() != "bob" || p.Project() != "sys" {
		t.Errorf("parts = %q, %q", p.Person(), p.Project())
	}
	q := Principal("alice")
	if q.Person() != "alice" || q.Project() != "" {
		t.Errorf("parts = %q, %q", q.Person(), q.Project())
	}
}

func TestTermMatching(t *testing.T) {
	cases := []struct {
		pattern   string
		principal Principal
		want      bool
	}{
		{"bob.sys", "bob.sys", true},
		{"bob.sys", "bob.dev", false},
		{"bob.sys", "eve.sys", false},
		{"bob.*", "bob.sys", true},
		{"bob.*", "bob.dev", true},
		{"bob.*", "eve.sys", false},
		{"*.sys", "bob.sys", true},
		{"*.sys", "bob.dev", false},
		{"*.*", "anyone.anywhere", true},
		{"*", "anyone.anywhere", true},
		{"bob", "bob.sys", true}, // bare person pattern matches any project
	}
	for _, c := range cases {
		got := Term{Pattern: c.pattern}.Matches(c.principal)
		if got != c.want {
			t.Errorf("%q matches %q = %v, want %v", c.pattern, c.principal, got, c.want)
		}
	}
}

func TestACLFirstMatchWins(t *testing.T) {
	acl := ACL{
		{Pattern: "eve.*", Mode: 0}, // explicit denial
		{Pattern: "*.sys", Mode: hw.Read | hw.Write},
		{Pattern: "*", Mode: hw.Read},
	}
	if got := acl.ModeFor("eve.sys"); got != 0 {
		t.Errorf("eve.sys mode = %v, want denial from first term", got)
	}
	if got := acl.ModeFor("bob.sys"); got != hw.Read|hw.Write {
		t.Errorf("bob.sys mode = %v", got)
	}
	if got := acl.ModeFor("stranger.elsewhere"); got != hw.Read {
		t.Errorf("stranger mode = %v", got)
	}
	if !acl.Allows("bob.sys", hw.Read) || acl.Allows("stranger.x", hw.Write) {
		t.Error("Allows wrong")
	}
}

func TestOwnerAndPublic(t *testing.T) {
	o := Owner("bob.sys")
	if !o.Allows("bob.sys", hw.Read|hw.Write|hw.Execute) {
		t.Error("owner lacks full access")
	}
	if o.ModeFor("eve.sys") != 0 {
		t.Error("non-owner has access")
	}
	pub := Public(hw.Read)
	if !pub.Allows("anyone.at-all", hw.Read) || pub.Allows("anyone.at-all", hw.Write) {
		t.Error("Public wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := ACL{{Pattern: "*", Mode: hw.Read}}
	b := a.Clone()
	b[0].Mode = hw.Write
	if a[0].Mode != hw.Read {
		t.Error("Clone aliases the original")
	}
}

// Property: a term with pattern "person.project" matches exactly the
// principal with those components.
func TestExactTermProperty(t *testing.T) {
	f := func(p1, p2, q1, q2 uint8) bool {
		person := string(rune('a' + p1%4))
		project := string(rune('a' + p2%4))
		other := Principal(string(rune('a'+q1%4)) + "." + string(rune('a'+q2%4)))
		term := Term{Pattern: person + "." + project}
		want := other.Person() == person && other.Project() == project
		return term.Matches(other) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
