package directory

import (
	"errors"
	"testing"

	"multics/internal/aim"
	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/segment"
	"multics/internal/upsignal"
	"multics/internal/vproc"
)

const (
	alice = Principal("alice.sys")
	bob   = Principal("bob.dev")
	eve   = Principal("eve.out")
)

type fixture struct {
	mem     *hw.Memory
	meter   *hw.CostMeter
	vols    *disk.Volumes
	cells   *quota.Manager
	segs    *segment.Manager
	ksm     *knownseg.Manager
	signals *upsignal.Dispatcher
	m       *Manager
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(3 + 32)
	cm, err := coreseg.NewManager(mem, 3, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, _ := cm.Allocate("vp-states", 4*vproc.StateWords)
	qtable, _ := cm.Allocate("quota-table", hw.PageWords)
	ast, _ := cm.Allocate("ast", hw.PageWords)
	vps, err := vproc.NewManager(4, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(pageframe.PageWriterModule); err != nil {
		t.Fatal(err)
	}
	frames, err := pageframe.NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	if _, err := vols.AddPack("dska", 256); err != nil {
		t.Fatal(err)
	}
	if _, err := vols.AddPack("dskb", 256); err != nil {
		t.Fatal(err)
	}
	cells, err := quota.NewManager(vols, qtable, meter)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segment.NewManager(vols, frames, cells, ast, meter)
	if err != nil {
		t.Fatal(err)
	}
	signals := upsignal.NewDispatcher()
	ksm := knownseg.NewManager(segs, signals, meter)
	m, err := NewManager(segs, ksm, cells, signals, meter, Config{
		RootPack: "dska", RootQuota: 200, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: mem, meter: meter, vols: vols, cells: cells, segs: segs, ksm: ksm, signals: signals, m: m}
}

func TestCreateSearchInitiate(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	dirID, err := f.m.Create(alice, aim.Bottom, root, "home", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := f.m.Create(alice, aim.Bottom, dirID, "notes", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Search finds them.
	got, err := f.m.Search(alice, aim.Bottom, root, "home")
	if err != nil || got != dirID {
		t.Errorf("Search(home) = %v, %v", got, err)
	}
	got, err = f.m.Search(alice, aim.Bottom, dirID, "notes")
	if err != nil || got != fileID {
		t.Errorf("Search(notes) = %v, %v", got, err)
	}
	// A searchable directory reports a genuinely missing name.
	if _, err := f.m.Search(alice, aim.Bottom, dirID, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Search(ghost) = %v", err)
	}
	// Initiate grants the owner full access.
	g, err := f.m.Initiate(alice, aim.Bottom, fileID)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Access.Has(hw.Read|hw.Write) || g.IsDir || !g.HasCell {
		t.Errorf("grant = %+v", g)
	}
	// The governing cell is the root's (no deeper quota dirs).
	m, err := f.m.Status(alice, aim.Bottom, f.m.RootID())
	if err != nil {
		t.Fatal(err)
	}
	if g.Cell != m.Addr {
		t.Errorf("cell = %v, want root's %v", g.Cell, m.Addr)
	}
	// Access is determined entirely by the file's own ACL: bob has
	// none.
	if _, err := f.m.Initiate(bob, aim.Bottom, fileID); !errors.Is(err, ErrNoAccess) {
		t.Errorf("bob Initiate = %v", err)
	}
	// List requires read access.
	names, err := f.m.List(alice, aim.Bottom, dirID)
	if err != nil || len(names) != 1 || names[0] != "notes" {
		t.Errorf("List = %v, %v", names, err)
	}
}

func TestCreateValidation(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	if _, err := f.m.Create(alice, aim.Bottom, root, "", false, nil, aim.Bottom); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := f.m.Create(alice, aim.Bottom, Identifier(12345), "x", false, nil, aim.Bottom); !errors.Is(err, ErrNoAccess) {
		t.Error("create under bogus id succeeded")
	}
	id, err := f.m.Create(alice, aim.Bottom, root, "a", false, nil, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(alice, aim.Bottom, root, "a", false, nil, aim.Bottom); !errors.Is(err, ErrExists) {
		t.Error("duplicate name accepted")
	}
	// Creating under a file is rejected.
	if _, err := f.m.Create(alice, aim.Bottom, id, "x", false, nil, aim.Bottom); !errors.Is(err, ErrNotDir) {
		t.Error("create under a file succeeded")
	}
	// A label that does not dominate the directory's is rejected.
	low := aim.Label{Level: aim.Unclassified}
	// (Created while operating at Bottom: writing the unclassified
	// root at a higher label would itself be a write-down.)
	secretDir, err := f.m.Create(alice, aim.Bottom, root, "vault", true, Public(hw.Read|hw.Write), aim.Label{Level: aim.Secret})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(alice, aim.Label{Level: aim.Secret}, secretDir, "downgrade", false, nil, low); err == nil {
		t.Error("label below containing directory accepted")
	}
}

func TestModifyRequiresWriteAndAIM(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	// Directory writable only by alice.
	dirID, err := f.m.Create(alice, aim.Bottom, root, "mine", true, ACL{{Pattern: string(alice), Mode: hw.Read | hw.Write}, {Pattern: "*", Mode: hw.Read}}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(bob, aim.Bottom, dirID, "intruder", false, nil, aim.Bottom); !errors.Is(err, ErrNoAccess) {
		t.Errorf("bob create = %v", err)
	}
	// AIM: a secret-cleared alice cannot write an unclassified
	// directory (no write down).
	if _, err := f.m.Create(alice, aim.Label{Level: aim.Secret}, dirID, "leak", false, nil, aim.Label{Level: aim.Secret}); !errors.Is(err, ErrNoAccess) {
		t.Errorf("write-down create = %v", err)
	}
}

func TestBrattInaccessibleDirectory(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	// A directory eve cannot read, containing a file eve CAN use.
	hidden, err := f.m.Create(alice, aim.Bottom, root, "hidden", true, ACL{{Pattern: string(alice), Mode: hw.Read | hw.Write}}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := f.m.Create(alice, aim.Bottom, hidden, "public-file", false, Public(hw.Read), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Eve searches the inaccessible directory: she gets identifiers
	// whether or not the name exists.
	gotReal, err := f.m.Search(eve, aim.Bottom, hidden, "public-file")
	if err != nil {
		t.Fatalf("search for existing name: %v", err)
	}
	gotMyth, err := f.m.Search(eve, aim.Bottom, hidden, "no-such-file")
	if err != nil {
		t.Fatalf("search for missing name: %v", err)
	}
	if gotMyth == 0 || gotReal == 0 {
		t.Error("zero identifier returned")
	}
	// The real one is real: eve can initiate the file she is
	// entitled to, reached through a directory she may not read.
	if gotReal != fileID {
		t.Errorf("identifier for existing entry = %v, want real %v", gotReal, fileID)
	}
	g, err := f.m.Initiate(eve, aim.Bottom, gotReal)
	if err != nil {
		t.Fatalf("initiate through inaccessible path: %v", err)
	}
	if !g.Access.Has(hw.Read) {
		t.Errorf("grant = %+v", g)
	}
	// The mythical one behaves like a real one in searches…
	deeper, err := f.m.Search(eve, aim.Bottom, gotMyth, "anything")
	if err != nil {
		t.Fatalf("search of mythical directory: %v", err)
	}
	if deeper == 0 {
		t.Error("mythical directory search returned zero")
	}
	// …and is stable: probing twice yields the same identifier.
	again, err := f.m.Search(eve, aim.Bottom, hidden, "no-such-file")
	if err != nil || again != gotMyth {
		t.Errorf("mythical identifier not stable: %v vs %v", again, gotMyth)
	}
	// Using it ends in exactly the same answer as a forbidden real
	// object: "no access".
	_, errMyth := f.m.Initiate(eve, aim.Bottom, gotMyth)
	privID, err := f.m.Search(alice, aim.Bottom, hidden, "public-file")
	if err != nil {
		t.Fatal(err)
	}
	_ = privID
	privateFile, err := f.m.Create(alice, aim.Bottom, hidden, "private-file", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	realForbidden, err := f.m.Search(eve, aim.Bottom, hidden, "private-file")
	if err != nil {
		t.Fatal(err)
	}
	if realForbidden != privateFile {
		t.Errorf("expected real id for existing entry")
	}
	_, errReal := f.m.Initiate(eve, aim.Bottom, realForbidden)
	if !errors.Is(errMyth, ErrNoAccess) || !errors.Is(errReal, ErrNoAccess) {
		t.Errorf("errors differ: mythical %v, real %v", errMyth, errReal)
	}
	if errMyth.Error() != errReal.Error() {
		t.Errorf("error texts distinguish mythical from real: %q vs %q", errMyth, errReal)
	}
}

func TestSearchNonexistentDirectoryYieldsIdentifiers(t *testing.T) {
	// "It will even return an identifier if asked to search a
	// non-existent directory."
	f := newFixture(t)
	bogus := Identifier(0xdeadbeef)
	id, err := f.m.Search(eve, aim.Bottom, bogus, "x")
	if err != nil || id == 0 {
		t.Fatalf("Search of nonexistent dir = %v, %v", id, err)
	}
	id2, err := f.m.Search(eve, aim.Bottom, id, "y")
	if err != nil || id2 == 0 {
		t.Fatalf("chained mythical search = %v, %v", id2, err)
	}
}

func TestSearchFileAsDirectory(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	fileID, err := f.m.Create(alice, aim.Bottom, root, "plain", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// The owner learns the truth.
	if _, err := f.m.Search(alice, aim.Bottom, fileID, "x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("owner search of file = %v", err)
	}
	// A stranger cannot distinguish it from an inaccessible
	// directory.
	id, err := f.m.Search(eve, aim.Bottom, fileID, "x")
	if err != nil || id == 0 {
		t.Errorf("stranger search of file = %v, %v", id, err)
	}
}

func TestAIMFiltersGrantedModes(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	secret := aim.Label{Level: aim.Secret}
	fileID, err := f.m.Create(alice, aim.Bottom, root, "intel", false, Public(hw.Read|hw.Write), secret)
	if err != nil {
		t.Fatal(err)
	}
	// An unclassified process gets nothing despite the permissive
	// ACL (no read up; no write up either? write up is allowed).
	g, err := f.m.Initiate(bob, aim.Bottom, fileID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Access.Has(hw.Read) {
		t.Error("read up granted")
	}
	if !g.Access.Has(hw.Write) {
		t.Error("write up (blind append) denied") // *-property permits it
	}
	// A secret process gets both.
	g, err = f.m.Initiate(bob, secret, fileID)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Access.Has(hw.Read | hw.Write) {
		t.Errorf("secret process grant = %v", g.Access)
	}
	// A top-secret process may read but not write (no write down).
	ts := aim.Label{Level: aim.TopSecret}
	g, err = f.m.Initiate(bob, ts, fileID)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Access.Has(hw.Read) || g.Access.Has(hw.Write) {
		t.Errorf("top-secret grant = %v", g.Access)
	}
}

func TestDelete(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	dirID, err := f.m.Create(alice, aim.Bottom, root, "d", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(alice, aim.Bottom, dirID, "f", false, nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	// Non-empty directory cannot be deleted.
	if err := f.m.Delete(alice, aim.Bottom, root, "d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("delete non-empty = %v", err)
	}
	if err := f.m.Delete(alice, aim.Bottom, dirID, "f"); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Delete(alice, aim.Bottom, root, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Search(alice, aim.Bottom, root, "d"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted dir still found: %v", err)
	}
	if err := f.m.Delete(alice, aim.Bottom, root, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete of missing name = %v", err)
	}
	// Strangers cannot delete.
	if _, err := f.m.Create(alice, aim.Bottom, root, "keep", false, nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	rootEntry, _ := f.m.Status(alice, aim.Bottom, root)
	_ = rootEntry
}

func TestSetACL(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	fileID, err := f.m.Create(alice, aim.Bottom, root, "f", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Grant bob access: the canonical Multics transaction — one ACL
	// change on the file, nothing else.
	if err := f.m.SetACL(alice, aim.Bottom, fileID, ACL{
		{Pattern: string(alice), Mode: hw.Read | hw.Write},
		{Pattern: string(bob), Mode: hw.Read},
	}); err != nil {
		t.Fatal(err)
	}
	g, err := f.m.Initiate(bob, aim.Bottom, fileID)
	if err != nil || !g.Access.Has(hw.Read) {
		t.Errorf("bob after grant = %+v, %v", g, err)
	}
	// The root's ACL cannot be replaced.
	if err := f.m.SetACL(alice, aim.Bottom, root, Public(hw.Read)); !errors.Is(err, ErrNoAccess) {
		t.Errorf("SetACL on root = %v", err)
	}
	if err := f.m.SetACL(alice, aim.Bottom, Identifier(999), nil); !errors.Is(err, ErrNoAccess) {
		t.Errorf("SetACL on bogus id = %v", err)
	}
}

func TestDesignateQuotaChildlessRule(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	dirID, err := f.m.Create(alice, aim.Bottom, root, "proj", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(alice, aim.Bottom, dirID, "child", false, nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	// The paper's semantics change: designation requires a
	// childless directory.
	if err := f.m.DesignateQuota(alice, aim.Bottom, dirID, 50); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("designation with children = %v", err)
	}
	if err := f.m.Delete(alice, aim.Bottom, dirID, "child"); err != nil {
		t.Fatal(err)
	}
	if err := f.m.DesignateQuota(alice, aim.Bottom, dirID, 50); err != nil {
		t.Fatalf("designation of childless dir: %v", err)
	}
	if err := f.m.DesignateQuota(alice, aim.Bottom, dirID, 50); err == nil {
		t.Error("double designation succeeded")
	}
	limit, used, err := f.m.QuotaInfo(dirID)
	if err != nil || limit != 50 {
		t.Fatalf("QuotaInfo = %d/%d, %v", used, limit, err)
	}
	// New children charge the new cell, not the root's.
	fileID, err := f.m.Create(alice, aim.Bottom, dirID, "data", false, nil, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.m.Initiate(alice, aim.Bottom, fileID)
	if err != nil {
		t.Fatal(err)
	}
	dirEntry, err := f.m.Status(alice, aim.Bottom, dirID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cell != dirEntry.Addr {
		t.Errorf("governing cell = %v, want %v", g.Cell, dirEntry.Addr)
	}
	// Undesignation also requires childlessness.
	if err := f.m.UndesignateQuota(alice, aim.Bottom, dirID); !errors.Is(err, ErrHasChildren) {
		t.Errorf("undesignation with children = %v", err)
	}
	if err := f.m.Delete(alice, aim.Bottom, dirID, "data"); err != nil {
		t.Fatal(err)
	}
	if err := f.m.UndesignateQuota(alice, aim.Bottom, dirID); err != nil {
		t.Fatalf("undesignation of childless dir: %v", err)
	}
	if _, _, err := f.m.QuotaInfo(dirID); err == nil {
		t.Error("QuotaInfo after undesignation succeeded")
	}
}

func TestQuotaChargeTransferOnDesignation(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	rootEntry, _ := f.m.Status(alice, aim.Bottom, root)
	dirID, err := f.m.Create(alice, aim.Bottom, root, "d", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Give the directory some storage of its own: a child entry
	// grows its segment; deleting the child leaves the page (and
	// the directory childless, so designation is legal).
	if _, err := f.m.Create(alice, aim.Bottom, dirID, "x", false, nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Delete(alice, aim.Bottom, dirID, "x"); err != nil {
		t.Fatal(err)
	}
	_, rootUsedBefore, err := f.cells.Info(rootEntry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if rootUsedBefore == 0 {
		t.Fatal("directory creation charged nothing to root")
	}
	if err := f.m.DesignateQuota(alice, aim.Bottom, dirID, 50); err != nil {
		t.Fatal(err)
	}
	// The directory's own page moved from the root's cell to its
	// own.
	_, rootUsedAfter, _ := f.cells.Info(rootEntry.Addr)
	_, dirUsed, err := f.m.QuotaInfo(dirID)
	if err != nil {
		t.Fatal(err)
	}
	if rootUsedAfter >= rootUsedBefore {
		t.Errorf("root used %d -> %d, want a release", rootUsedBefore, rootUsedAfter)
	}
	if dirUsed != rootUsedBefore-rootUsedAfter {
		t.Errorf("charge moved %d pages but cell shows %d", rootUsedBefore-rootUsedAfter, dirUsed)
	}
}

func TestResolvePathKernelRevealsNothing(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	hidden, err := f.m.Create(alice, aim.Bottom, root, "hidden", true, ACL{{Pattern: string(alice), Mode: hw.Read | hw.Write}}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := f.m.Create(alice, aim.Bottom, hidden, "f", false, Public(hw.Read), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Found: eve reaches the public file through the hidden dir.
	got, err := f.m.ResolvePathKernel(eve, aim.Bottom, []string{"hidden", "f"})
	if err != nil || got != fileID {
		t.Errorf("resolve = %v, %v", got, err)
	}
	// All failures are the same bare answer.
	_, errMissingDir := f.m.ResolvePathKernel(eve, aim.Bottom, []string{"nosuch", "f"})
	_, errMissingFile := f.m.ResolvePathKernel(eve, aim.Bottom, []string{"hidden", "nosuch"})
	privID, err := f.m.Create(alice, aim.Bottom, hidden, "priv", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	_ = privID
	_, errForbidden := f.m.ResolvePathKernel(eve, aim.Bottom, []string{"hidden", "priv"})
	for i, e := range []error{errMissingDir, errMissingFile, errForbidden} {
		if !errors.Is(e, ErrNoAccess) {
			t.Errorf("failure %d = %v, want bare no-access", i, e)
		}
	}
	if errMissingDir.Error() != errForbidden.Error() {
		t.Error("kernel resolver distinguishes missing from forbidden")
	}
}

func TestRelocationNoticeUpdatesEntryAndRestoresProcess(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	fileID, err := f.m.Create(alice, aim.Bottom, root, "f", false, nil, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := f.m.Status(alice, aim.Bottom, fileID)
	restored := ""
	f.m.Restore = func(state any) { restored = state.(string) }
	newAddr := disk.SegAddr{Pack: "dskb", TOC: 17}
	if err := f.signals.Raise(upsignal.Signal{
		Target: knownseg.RelocationTarget,
		Args:   knownseg.RelocationNotice{UID: entry.UID, NewAddr: newAddr, SavedState: "resume-me"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.signals.Dispatch(); err != nil {
		t.Fatal(err)
	}
	after, _ := f.m.Status(alice, aim.Bottom, fileID)
	if after.Addr != newAddr {
		t.Errorf("entry addr = %v, want %v", after.Addr, newAddr)
	}
	if restored != "resume-me" {
		t.Errorf("process state not restored: %q", restored)
	}
}

func TestStatusRequiresParentRead(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	hidden, err := f.m.Create(alice, aim.Bottom, root, "hidden", true, ACL{{Pattern: string(alice), Mode: hw.Read | hw.Write}}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := f.m.Create(alice, aim.Bottom, hidden, "f", false, Public(hw.Read), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Status(eve, aim.Bottom, fileID); !errors.Is(err, ErrNoAccess) {
		t.Errorf("Status through unreadable dir = %v", err)
	}
	if _, err := f.m.Status(alice, aim.Bottom, fileID); err != nil {
		t.Errorf("owner Status = %v", err)
	}
}

func TestDirectoriesOccupyQuota(t *testing.T) {
	// Directory growth is charged storage: creating many entries
	// consumes pages of the directory segment against the governing
	// cell.
	f := newFixture(t)
	root := f.m.RootID()
	rootEntry, _ := f.m.Status(alice, aim.Bottom, root)
	_, before, err := f.cells.Info(rootEntry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	// 1024/32 = 32 entries per page; create 40 to cross a page
	// boundary.
	dirID, err := f.m.Create(alice, aim.Bottom, root, "big", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		name := string(rune('a'+i/26)) + string(rune('a'+i%26))
		if _, err := f.m.Create(alice, aim.Bottom, dirID, name, false, nil, aim.Bottom); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	_, after, _ := f.cells.Info(rootEntry.Addr)
	if after < before+2 {
		t.Errorf("root cell used %d -> %d; a 40-entry directory should consume at least 2 pages", before, after)
	}
}
