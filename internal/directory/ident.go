package directory

import "hash/fnv"

// An Identifier is the opaque handle the directory-searching primitive
// returns. Real identifiers name directory entries; mythical
// identifiers are deterministically fabricated for searches the caller
// was not entitled to observe the result of, and are indistinguishable
// from real ones: both are hash outputs of the same width, and a
// mythical identifier is accepted anywhere a directory identifier is,
// yielding further mythical identifiers. Only an attempt to actually
// use the object at the end of a path reveals — as a bare "no access"
// — that nothing was ever there (or that something was: the caller
// cannot tell which).
type Identifier uint64

// idGen fabricates identifiers. Real ones hash a per-system secret
// with a counter; mythical ones hash the secret with the (directory,
// name) pair, so probing the same nonexistent path twice yields the
// same identifier — just as a real entry would.
type idGen struct {
	secret uint64
	count  uint64
}

func (g *idGen) hash(parts ...uint64) Identifier {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return Identifier(h.Sum64())
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// real issues a fresh identifier for a new directory entry.
func (g *idGen) real() Identifier {
	g.count++
	return g.hash(g.secret, 0x5ea1, g.count)
}

// mythical fabricates the stable identifier for name under dir.
func (g *idGen) mythical(dir Identifier, name string) Identifier {
	return g.hash(g.secret, 0x317, uint64(dir), hashString(name))
}
