package directory

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
)

// TestWalkMatchesBuriedResolver builds random trees and checks that,
// for every accessible leaf, component-wise expansion over the Search
// primitive resolves to exactly the identifier the buried in-kernel
// resolver finds. The two naming implementations must agree on the
// entire accessible namespace.
func TestWalkMatchesBuriedResolver(t *testing.T) {
	rng := rand.New(rand.NewSource(140)) // RFC number of the paper
	for trial := 0; trial < 10; trial++ {
		f := newFixture(t)
		root := f.m.RootID()
		type node struct {
			id   Identifier
			path []string
		}
		dirs := []node{{id: root}}
		var leaves []node
		for i := 0; i < 25; i++ {
			parent := dirs[rng.Intn(len(dirs))]
			name := fmt.Sprintf("n%d", i)
			isDir := rng.Intn(3) != 0
			id, err := f.m.Create(alice, aim.Bottom, parent.id, name, isDir, Public(hw.Read|hw.Write), aim.Bottom)
			if err != nil {
				t.Fatal(err)
			}
			child := node{id: id, path: append(append([]string{}, parent.path...), name)}
			if isDir {
				dirs = append(dirs, child)
			} else {
				leaves = append(leaves, child)
			}
		}
		for _, leaf := range append(leaves, dirs[1:]...) {
			// Component-wise walk over Search.
			id := root
			var err error
			for _, name := range leaf.path {
				id, err = f.m.Search(alice, aim.Bottom, id, name)
				if err != nil {
					t.Fatalf("walk %v: %v", leaf.path, err)
				}
			}
			// The buried resolver.
			buried, err := f.m.ResolvePathKernel(alice, aim.Bottom, leaf.path)
			if err != nil {
				t.Fatalf("buried resolve %v: %v", leaf.path, err)
			}
			if id != buried || id != leaf.id {
				t.Fatalf("trial %d path %v: walk=%v buried=%v created=%v", trial, leaf.path, id, buried, leaf.id)
			}
		}
	}
}

// TestMythicalStabilityProperty: mythical identifiers are a pure
// function of (directory identifier, name) — probing any number of
// times, in any order, yields the same values, and distinct names
// yield distinct identifiers (no collisions among a realistic probe
// set).
func TestMythicalStabilityProperty(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	hidden, err := f.m.Create(alice, aim.Bottom, root, "hidden", true, ACL{{Pattern: string(alice), Mode: hw.Read | hw.Write}}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Identifier]string)
	var order []string
	for i := 0; i < 200; i++ {
		order = append(order, fmt.Sprintf("ghost-%d", i))
	}
	rand.New(rand.NewSource(7)).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	first := make(map[string]Identifier)
	for pass := 0; pass < 3; pass++ {
		for _, name := range order {
			id, err := f.m.Search(eve, aim.Bottom, hidden, name)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := first[name]; ok {
				if prev != id {
					t.Fatalf("mythical id for %q changed: %v then %v", name, prev, id)
				}
				continue
			}
			first[name] = id
			if other, dup := seen[id]; dup {
				t.Fatalf("mythical collision: %q and %q both map to %v", name, other, id)
			}
			seen[id] = name
		}
	}
}

// TestConcurrentDirectoryOperations: parallel creates, searches and
// lists against one directory neither corrupt it nor deadlock.
func TestConcurrentDirectoryOperations(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	dirID, err := f.m.Create(alice, aim.Bottom, root, "shared", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-f%d", w, i)
				if _, err := f.m.Create(alice, aim.Bottom, dirID, name, false, nil, aim.Bottom); err != nil {
					errs <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if _, err := f.m.Search(alice, aim.Bottom, dirID, name); err != nil {
					errs <- fmt.Errorf("search %s: %w", name, err)
					return
				}
				if _, err := f.m.List(alice, aim.Bottom, dirID); err != nil {
					errs <- fmt.Errorf("list: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	names, err := f.m.List(alice, aim.Bottom, dirID)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != workers*perWorker {
		t.Errorf("directory holds %d names, want %d", len(names), workers*perWorker)
	}
}

func TestTermString(t *testing.T) {
	s := Term{Pattern: "bob.sys", Mode: hw.Read | hw.Write}.String()
	if s != "bob.sys:rw-" {
		t.Errorf("Term.String = %q", s)
	}
}

func TestRename(t *testing.T) {
	f := newFixture(t)
	root := f.m.RootID()
	dirID, err := f.m.Create(alice, aim.Bottom, root, "d", true, ACL{
		{Pattern: string(alice), Mode: hw.Read | hw.Write},
		{Pattern: "*", Mode: hw.Read},
	}, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := f.m.Create(alice, aim.Bottom, dirID, "old", false, Owner(alice), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Create(alice, aim.Bottom, dirID, "taken", false, nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Rename(alice, aim.Bottom, dirID, "old", "taken"); err == nil {
		t.Error("rename onto an existing name succeeded")
	}
	if err := f.m.Rename(alice, aim.Bottom, dirID, "ghost", "x"); err == nil {
		t.Error("rename of a missing name succeeded")
	}
	if err := f.m.Rename(eve, aim.Bottom, dirID, "old", "new"); err == nil {
		t.Error("rename without modify access succeeded")
	}
	if err := f.m.Rename(alice, aim.Bottom, dirID, "old", "new"); err != nil {
		t.Fatal(err)
	}
	// The identifier is unchanged; only the binding moved.
	got, err := f.m.Search(alice, aim.Bottom, dirID, "new")
	if err != nil || got != fileID {
		t.Errorf("Search(new) = %v, %v", got, err)
	}
	if _, err := f.m.Search(alice, aim.Bottom, dirID, "old"); err == nil {
		t.Error("old name still resolves")
	}
	// Renaming a directory keeps its subtree reachable.
	subID, err := f.m.Create(alice, aim.Bottom, dirID, "sub", true, Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	leafID, err := f.m.Create(alice, aim.Bottom, subID, "leaf", false, nil, aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.m.Rename(alice, aim.Bottom, dirID, "sub", "moved"); err != nil {
		t.Fatal(err)
	}
	got, err = f.m.ResolvePathKernel(alice, aim.Bottom, []string{"d", "moved", "leaf"})
	if err != nil || got != leafID {
		t.Errorf("post-rename resolve = %v, %v", got, err)
	}
	if _, err := f.m.Create(alice, aim.Bottom, subID, "leaf2", false, nil, aim.Bottom); err != nil {
		t.Errorf("create in renamed directory: %v", err)
	}
}
