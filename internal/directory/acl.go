package directory

import (
	"fmt"
	"strings"

	"multics/internal/hw"
)

// A Principal names an authenticated user as person.project, the form
// the answering service establishes at login.
type Principal string

// Person returns the person component.
func (p Principal) Person() string {
	s := string(p)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

// Project returns the project component ("" if absent).
func (p Principal) Project() string {
	s := string(p)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return ""
}

// A Term grants an access mode to the principals matching a pattern.
// Patterns are person.project with either component replaceable by
// "*": "bob.sys" matches exactly, "bob.*" matches bob on any project,
// "*.sys" matches any person on project sys, and "*.*" (or "*")
// matches everyone.
type Term struct {
	Pattern string
	Mode    hw.AccessMode
}

// Matches reports whether the term's pattern covers the principal.
func (t Term) Matches(p Principal) bool {
	pat := t.Pattern
	if pat == "*" {
		return true
	}
	var patPerson, patProject string
	if i := strings.IndexByte(pat, '.'); i >= 0 {
		patPerson, patProject = pat[:i], pat[i+1:]
	} else {
		patPerson, patProject = pat, "*"
	}
	if patPerson != "*" && patPerson != p.Person() {
		return false
	}
	if patProject != "*" && patProject != p.Project() {
		return false
	}
	return true
}

func (t Term) String() string { return fmt.Sprintf("%s:%v", t.Pattern, t.Mode) }

// An ACL is an ordered access control list; the first matching term
// decides, as in Multics.
type ACL []Term

// ModeFor returns the access mode the list grants to the principal
// (zero if no term matches).
func (a ACL) ModeFor(p Principal) hw.AccessMode {
	for _, t := range a {
		if t.Matches(p) {
			return t.Mode
		}
	}
	return 0
}

// Allows reports whether the list grants all modes in want to the
// principal.
func (a ACL) Allows(p Principal, want hw.AccessMode) bool {
	return a.ModeFor(p).Has(want)
}

// Clone returns an independent copy.
func (a ACL) Clone() ACL { return append(ACL(nil), a...) }

// Owner returns an ACL granting full access to one principal only.
func Owner(p Principal) ACL {
	return ACL{{Pattern: string(p), Mode: hw.Read | hw.Write | hw.Execute}}
}

// Public returns an ACL granting mode to everyone.
func Public(mode hw.AccessMode) ACL {
	return ACL{{Pattern: "*", Mode: mode}}
}
