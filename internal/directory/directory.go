// Package directory implements the directory manager: the top module
// of the file-system lattice. It owns the naming hierarchy, the
// access control lists (which, as in Multics, live in directory
// entries, so access to an object is determined entirely by the
// object's own ACL), the AIM labels, and the storage-quota
// designation of directories.
//
// Three of the paper's case studies live here:
//
//   - Bratt's directory-searching primitive (Search): the kernel
//     exports a single-directory search so pathname expansion can run
//     in the user ring; asked to search an inaccessible (or
//     nonexistent) directory it always returns a matching identifier,
//     real or mythical, so a caller can never learn whether a name it
//     had no right to see exists.
//
//   - The quota-directory semantics change: a directory may be
//     designated a quota directory (or undesignated) only while it has
//     no children, which makes the binding between every segment and
//     its governing quota cell static.
//
//   - The relocation-notice handler: the known segment manager signals
//     upward after a full-pack relocation, and the handler here
//     updates the directory entry with the new pack identifier and
//     table-of-contents index, then restores the interrupted process
//     state so it rereferences the segment.
package directory

import (
	"errors"
	"fmt"
	"sort"

	"multics/internal/aim"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/lockrank"
	"multics/internal/quota"
	"multics/internal/segment"
	"multics/internal/upsignal"
)

// ModuleName is this manager's name in the kernel dependency graph.
// It doubles as the upward-signal target for relocation notices
// (knownseg.RelocationTarget names it).
const ModuleName = "directory-manager"

// EntryWords is the directory-segment storage consumed per entry, so
// that directories grow (and charge quota) as they fill.
const EntryWords = 32

// Simulated algorithm-body costs (assembly-cycle units; the manager
// is PL/I-coded in the kernel).
const (
	bodySearch        = 80  // one Search call: probe one directory
	bodyResolveKernel = 150 // one path component inside the buried in-kernel resolver
	bodyInitiate      = 120 // ACL + AIM evaluation and KST handoff
)

// Errors of the user-visible semantics. ErrNoAccess is deliberately
// the answer to several distinguishable situations (no permission,
// mythical identifier, nonexistent object behind an inaccessible
// path): collapsing them is what keeps the naming semantics from
// leaking information.
var (
	ErrNoAccess    = errors.New("directory: no access")
	ErrNotFound    = errors.New("directory: name not found")
	ErrExists      = errors.New("directory: name already exists")
	ErrNotDir      = errors.New("directory: not a directory")
	ErrNotEmpty    = errors.New("directory: directory not empty")
	ErrHasChildren = errors.New("directory: quota designation requires a childless directory")
)

// An Entry is one directory entry: the name-to-segment binding plus
// the object's ACL and AIM label.
type Entry struct {
	Name  string
	ID    Identifier
	UID   uint64
	Addr  disk.SegAddr
	IsDir bool
	ACL   ACL
	Label aim.Label
}

// A Grant is what Initiate hands back for the known segment manager:
// everything a process needs to bind and use a segment, including the
// statically resolved governing quota cell.
type Grant struct {
	UID     uint64
	Addr    disk.SegAddr
	IsDir   bool
	Access  hw.AccessMode
	Label   aim.Label
	Cell    quota.CellName
	HasCell bool
}

// dirNode is the in-memory representation of one directory. The
// authoritative name map is a component of the directory object; its
// representation is stored in the directory's segment (each entry
// consumes EntryWords there, so directories occupy quota like any
// segment).
type dirNode struct {
	entry    *Entry // entry in the parent (nil for root)
	parent   *dirNode
	children map[string]*Entry
	nodes    map[string]*dirNode // child directories
	quotaDir bool
	cell     quota.CellName // governing cell for objects beneath
	// cellUID is the unique identifier of the quota directory owning
	// cell. Unlike the cell's disk address it survives relocation, so
	// it is what gets recorded on disk (TOCEntry.Gov) for the volume
	// salvager's quota recount.
	cellUID uint64
}

// A Manager is the directory manager.
type Manager struct {
	segs    *segment.Manager
	ksm     *knownseg.Manager
	cells   *quota.Manager
	signals *upsignal.Dispatcher
	meter   *hw.CostMeter

	// Lang is the implementation language for the cost model.
	Lang hw.Language

	spread bool

	mu       lockrank.Mutex
	ids      idGen
	root     *dirNode
	rootID   Identifier
	byID     map[Identifier]*Entry
	parentOf map[Identifier]*dirNode
	byUID    map[uint64]*Entry

	// Restore is invoked with the saved process state carried by a
	// relocation notice, after the directory entry is updated; the
	// kernel installs the hook that resumes the process.
	Restore func(state any)
}

// Config parameterizes NewManager.
type Config struct {
	RootPack  string
	RootQuota int
	RootACL   ACL
	RootLabel aim.Label
	// Seed makes identifier fabrication deterministic for tests.
	Seed uint64
	// Spread places new non-directory segments round-robin across
	// the mounted packs instead of on the containing directory's
	// pack, so independent files' faults land on different device
	// arms. Directories stay with their parent: the hierarchy walks
	// remain clustered.
	Spread bool
}

// NewManager creates the directory manager and the root directory —
// a quota directory governing everything until deeper designations
// are made — and registers the relocation-notice handler.
func NewManager(segs *segment.Manager, ksm *knownseg.Manager, cells *quota.Manager, signals *upsignal.Dispatcher, meter *hw.CostMeter, cfg Config) (*Manager, error) {
	if cfg.RootQuota <= 0 {
		return nil, fmt.Errorf("directory: root quota %d", cfg.RootQuota)
	}
	if len(cfg.RootACL) == 0 {
		cfg.RootACL = Public(hw.Read | hw.Write | hw.Execute)
	}
	m := &Manager{
		segs:     segs,
		ksm:      ksm,
		cells:    cells,
		signals:  signals,
		meter:    meter,
		Lang:     hw.PLI,
		spread:   cfg.Spread,
		ids:      idGen{secret: cfg.Seed ^ 0x6180},
		byID:     make(map[Identifier]*Entry),
		parentOf: make(map[Identifier]*dirNode),
		byUID:    make(map[uint64]*Entry),
	}
	m.mu.Init(ModuleName)
	uid := segs.NewUID()
	// The root is its own quota directory, so its pages govern
	// themselves: gov is its own uid.
	addr, err := segs.Create(cfg.RootPack, uid, true, uid)
	if err != nil {
		return nil, err
	}
	if err := cells.InitCell(addr, cfg.RootQuota); err != nil {
		return nil, err
	}
	if _, err := segs.Activate(uid, addr, addr, true); err != nil {
		return nil, err
	}
	rootEntry := &Entry{
		Name: "", ID: m.ids.real(), UID: uid, Addr: addr,
		IsDir: true, ACL: cfg.RootACL.Clone(), Label: cfg.RootLabel,
	}
	m.root = &dirNode{
		entry:    rootEntry,
		children: make(map[string]*Entry),
		nodes:    make(map[string]*dirNode),
		quotaDir: true,
		cell:     addr,
		cellUID:  uid,
	}
	m.rootID = rootEntry.ID
	m.byID[rootEntry.ID] = rootEntry
	m.byUID[uid] = rootEntry
	if signals != nil {
		if err := signals.Register(knownseg.RelocationTarget, m.handleRelocation); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RootID returns the identifier of the root directory, the well-known
// starting point for searches.
func (m *Manager) RootID() Identifier { return m.rootID }

// searchable reports whether the principal may search (read names in)
// the directory: read permission on the directory's own ACL and no
// AIM read-up.
func searchable(p Principal, plabel aim.Label, d *dirNode) bool {
	return d.entry.ACL.Allows(p, hw.Read) && aim.CheckRead(plabel, d.entry.Label) == nil
}

// modifiable reports whether the principal may create or delete
// entries. Modifying a directory is a read-modify-write — creating an
// entry observes name collisions, deleting observes existence — so it
// needs write permission and BOTH flow checks: in effect, a process
// modifies a directory only at the directory's own label. (A pure
// write-up here would leak the directory's names downward through
// collision errors.)
func modifiable(p Principal, plabel aim.Label, d *dirNode) bool {
	return d.entry.ACL.Allows(p, hw.Write) &&
		aim.CheckWrite(plabel, d.entry.Label) == nil &&
		aim.CheckRead(plabel, d.entry.Label) == nil
}

// Search is the protected directory-searching primitive of Bratt's
// design: it searches a single designated directory for one name and
// returns the identifier of the matching entry. If the caller may not
// search the directory — or the "directory" never existed — a matching
// identifier is returned anyway: real when the name exists (so paths
// through forbidden directories still reach files the caller is
// entitled to), mythical otherwise. The caller cannot distinguish the
// cases; pathname expansion above the kernel builds on exactly this.
func (m *Manager) Search(p Principal, plabel aim.Label, dirID Identifier, name string) (Identifier, error) {
	m.meter.AddBody(bodySearch, m.Lang)
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, isReal := m.byID[dirID]
	if !isReal {
		// Mythical directory: mythical child, stable per name.
		return m.ids.mythical(dirID, name), nil
	}
	node := m.nodeFor(entry)
	if node == nil {
		// A file used as a directory. If the caller could know
		// that (it has some access to the file), say so; otherwise
		// behave exactly like an inaccessible directory.
		if entry.ACL.ModeFor(p) != 0 && aim.CheckRead(plabel, entry.Label) == nil {
			return 0, fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
		}
		return m.ids.mythical(dirID, name), nil
	}
	child, exists := node.children[name]
	if searchable(p, plabel, node) {
		if !exists {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return child.ID, nil
	}
	if exists {
		return child.ID, nil
	}
	return m.ids.mythical(dirID, name), nil
}

// nodeFor returns the dirNode backing a directory entry (nil for
// files). Caller holds m.mu.
func (m *Manager) nodeFor(e *Entry) *dirNode {
	if !e.IsDir {
		return nil
	}
	if e.ID == m.rootID {
		return m.root
	}
	parent := m.parentOf[e.ID]
	if parent == nil {
		return nil
	}
	return parent.nodes[e.Name]
}

// Initiate evaluates the caller's right to use the object named by id
// and returns the Grant the known segment manager needs. Access is
// determined entirely by the object's own ACL and label; a mythical
// identifier, a missing object, and a forbidden object all yield the
// same ErrNoAccess.
func (m *Manager) Initiate(p Principal, plabel aim.Label, id Identifier) (Grant, error) {
	m.meter.AddBody(bodyInitiate, m.Lang)
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.byID[id]
	if !ok {
		return Grant{}, ErrNoAccess
	}
	mode := entry.ACL.ModeFor(p)
	if aim.CheckRead(plabel, entry.Label) != nil {
		mode &^= hw.Read | hw.Execute
	}
	if aim.CheckWrite(plabel, entry.Label) != nil {
		mode &^= hw.Write
	}
	if mode == 0 {
		return Grant{}, ErrNoAccess
	}
	cell, hasCell := m.cellForLocked(entry)
	return Grant{
		UID: entry.UID, Addr: entry.Addr, IsDir: entry.IsDir,
		Access: mode, Label: entry.Label, Cell: cell, HasCell: hasCell,
	}, nil
}

// cellForLocked resolves the governing quota cell of an entry: the
// directory's own cell if it is a quota directory, otherwise the cell
// of the containing directory. The resolution is static — recorded at
// creation and designation time — never a runtime hierarchy walk.
func (m *Manager) cellForLocked(e *Entry) (quota.CellName, bool) {
	if e.IsDir {
		if node := m.nodeFor(e); node != nil {
			return node.cell, true
		}
	}
	parent := m.parentOf[e.ID]
	if parent == nil {
		return quota.CellName{}, false
	}
	return parent.cell, true
}

// Create makes a new file or directory entry under dirID. The new
// object's label must dominate the containing directory's (AIM keeps
// labels non-decreasing along paths), and the caller needs modify
// access to the directory. The entry's storage is charged against the
// directory's segment.
func (m *Manager) Create(p Principal, plabel aim.Label, dirID Identifier, name string, isDir bool, acl ACL, label aim.Label) (Identifier, error) {
	if name == "" {
		return 0, errors.New("directory: empty name")
	}
	m.mu.Lock()
	entry, ok := m.byID[dirID]
	if !ok {
		m.mu.Unlock()
		return 0, ErrNoAccess
	}
	node := m.nodeFor(entry)
	if node == nil {
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	if !modifiable(p, plabel, node) {
		m.mu.Unlock()
		return 0, ErrNoAccess
	}
	if _, exists := node.children[name]; exists {
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrExists, name)
	}
	if !label.Valid() || !label.Dominates(node.entry.Label) {
		m.mu.Unlock()
		return 0, fmt.Errorf("directory: label %v does not dominate containing directory's %v", label, node.entry.Label)
	}
	if len(acl) == 0 {
		acl = Owner(p)
	}
	dirUID := node.entry.UID
	dirPack := node.entry.Addr.Pack
	inheritCell := node.cell
	inheritCellUID := node.cellUID
	nEntries := len(node.children) + 1
	m.mu.Unlock()

	// Grow the directory's segment to hold the new entry (charged
	// to the directory's governing cell; may relocate the directory
	// itself, which recordNewAddr absorbs).
	lastOff := nEntries*EntryWords - 1
	if newAddr, err := m.segs.EnsureResident(dirUID, hw.PageOf(lastOff)); err != nil {
		return 0, err
	} else if newAddr != nil {
		m.recordNewAddr(dirUID, *newAddr)
		dirPack = newAddr.Pack
	}

	uid := m.segs.NewUID()
	if m.spread && !isDir {
		if id := m.segs.SpreadPack(); id != "" {
			dirPack = id
		}
	}
	addr, err := m.segs.Create(dirPack, uid, isDir, inheritCellUID)
	if err != nil {
		return 0, err
	}
	if isDir {
		// Directory segments stay active: the directory manager
		// writes entries into them. Their pages charge the
		// inherited governing cell until a quota designation.
		if _, err := m.segs.Activate(uid, addr, inheritCell, true); err != nil {
			return 0, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	child := &Entry{
		Name: name, ID: m.ids.real(), UID: uid, Addr: addr,
		IsDir: isDir, ACL: acl.Clone(), Label: label,
	}
	node.children[name] = child
	m.byID[child.ID] = child
	m.byUID[uid] = child
	m.parentOf[child.ID] = node
	if isDir {
		node.nodes[name] = &dirNode{
			entry:    child,
			parent:   node,
			children: make(map[string]*Entry),
			nodes:    make(map[string]*dirNode),
			cell:     node.cell, // inherit until designated
			cellUID:  node.cellUID,
		}
	}
	// Mark the entry's slot in the directory segment so the page is
	// genuinely non-zero storage.
	_ = m.segs.WriteWord(dirUID, (nEntries-1)*EntryWords, hw.Word(uid).Masked())
	return child.ID, nil
}

// List returns the names in a directory, sorted, for callers with
// read access.
func (m *Manager) List(p Principal, plabel aim.Label, dirID Identifier) ([]string, error) {
	m.meter.AddBody(bodySearch, m.Lang)
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.byID[dirID]
	if !ok {
		return nil, ErrNoAccess
	}
	node := m.nodeFor(entry)
	if node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	if !searchable(p, plabel, node) {
		return nil, ErrNoAccess
	}
	names := make([]string, 0, len(node.children))
	for n := range node.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the named entry from dirID and destroys its segment.
// A directory must be empty; a quota directory's cell is removed with
// it.
func (m *Manager) Delete(p Principal, plabel aim.Label, dirID Identifier, name string) error {
	m.mu.Lock()
	entry, ok := m.byID[dirID]
	if !ok {
		m.mu.Unlock()
		return ErrNoAccess
	}
	node := m.nodeFor(entry)
	if node == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	if !modifiable(p, plabel, node) {
		m.mu.Unlock()
		return ErrNoAccess
	}
	child, exists := node.children[name]
	if !exists {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	var childNode *dirNode
	if child.IsDir {
		childNode = node.nodes[name]
		if childNode != nil && len(childNode.children) > 0 {
			m.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNotEmpty, name)
		}
	}
	m.mu.Unlock()

	if err := m.segs.Delete(child.UID, child.Addr); err != nil {
		return err
	}
	if childNode != nil && childNode.quotaDir {
		if m.cells.Active(child.Addr) {
			if err := m.cells.Deactivate(child.Addr); err != nil {
				return err
			}
		}
		// The cell died with its table-of-contents entry.
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(node.children, name)
	delete(node.nodes, name)
	delete(m.byID, child.ID)
	delete(m.byUID, child.UID)
	delete(m.parentOf, child.ID)
	return nil
}

// Rename changes an entry's name within its directory. The object,
// its identifier, its segment and its charges are untouched — only the
// binding in the containing directory moves, which is why the right to
// rename is modify access on that directory.
func (m *Manager) Rename(p Principal, plabel aim.Label, dirID Identifier, oldName, newName string) error {
	if newName == "" {
		return errors.New("directory: empty name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.byID[dirID]
	if !ok {
		return ErrNoAccess
	}
	node := m.nodeFor(entry)
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	if !modifiable(p, plabel, node) {
		return ErrNoAccess
	}
	child, exists := node.children[oldName]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	if _, taken := node.children[newName]; taken {
		return fmt.Errorf("%w: %s", ErrExists, newName)
	}
	delete(node.children, oldName)
	node.children[newName] = child
	child.Name = newName
	if n, ok := node.nodes[oldName]; ok {
		delete(node.nodes, oldName)
		node.nodes[newName] = n
	}
	return nil
}

// SetACL replaces the ACL of the named object. As in Multics the ACL
// lives in the containing directory's entry, so the right to change
// it is modify access on that directory.
func (m *Manager) SetACL(p Principal, plabel aim.Label, id Identifier, acl ACL) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.byID[id]
	if !ok {
		return ErrNoAccess
	}
	parent := m.parentOf[id]
	if parent == nil {
		// The root's ACL is fixed at initialization.
		return ErrNoAccess
	}
	if !modifiable(p, plabel, parent) {
		return ErrNoAccess
	}
	entry.ACL = acl.Clone()
	return nil
}

// Status returns a copy of the entry for callers with read access to
// the containing directory (the names and attributes of entries are
// the directory's information).
func (m *Manager) Status(p Principal, plabel aim.Label, id Identifier) (Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.byID[id]
	if !ok {
		return Entry{}, ErrNoAccess
	}
	parent := m.parentOf[id]
	if parent != nil && !searchable(p, plabel, parent) {
		return Entry{}, ErrNoAccess
	}
	cp := *entry
	cp.ACL = entry.ACL.Clone()
	return cp, nil
}

// handleRelocation is the upward-signal handler: it records the moved
// segment's new disk address in the directory entry, pushes the new
// address into every known segment table, and restores the saved
// process state so the process rereferences the segment.
func (m *Manager) handleRelocation(sig upsignal.Signal) error {
	notice, ok := sig.Args.(knownseg.RelocationNotice)
	if !ok {
		return fmt.Errorf("directory: relocation signal with %T payload", sig.Args)
	}
	m.recordNewAddr(notice.UID, notice.NewAddr)
	if m.Restore != nil && notice.SavedState != nil {
		m.Restore(notice.SavedState)
	}
	return nil
}

// recordNewAddr updates the directory entry (and dependent cached
// names) after a segment moved to a new pack.
func (m *Manager) recordNewAddr(uid uint64, newAddr disk.SegAddr) {
	m.mu.Lock()
	entry, ok := m.byUID[uid]
	if !ok {
		m.mu.Unlock()
		return
	}
	oldAddr := entry.Addr
	entry.Addr = newAddr
	// If the moved segment was a quota directory, every node bound
	// to its cell follows the new name.
	var rebind func(n *dirNode)
	rebind = func(n *dirNode) {
		if n.cell == oldAddr {
			n.cell = newAddr
		}
		for _, c := range n.nodes {
			rebind(c)
		}
	}
	rebind(m.root)
	m.mu.Unlock()
	if m.ksm != nil {
		m.ksm.UpdateAddr(uid, newAddr)
		m.ksm.UpdateCell(oldAddr, newAddr)
	}
}

// DesignateQuota makes a childless directory a quota directory with
// the given limit, transferring the charge for its existing pages
// from the previously governing cell to the new one. The childless
// rule is the paper's semantics change: it is what makes every
// segment's quota-cell binding static.
func (m *Manager) DesignateQuota(p Principal, plabel aim.Label, id Identifier, limit int) error {
	m.mu.Lock()
	entry, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return ErrNoAccess
	}
	node := m.nodeFor(entry)
	if node == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	parent := m.parentOf[id]
	if parent == nil {
		m.mu.Unlock()
		return errors.New("directory: root quota is fixed at initialization")
	}
	if !modifiable(p, plabel, parent) {
		m.mu.Unlock()
		return ErrNoAccess
	}
	if len(node.children) > 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s has %d", ErrHasChildren, entry.Name, len(node.children))
	}
	if node.quotaDir {
		m.mu.Unlock()
		return fmt.Errorf("directory: %s is already a quota directory", entry.Name)
	}
	oldCell := node.cell
	addr := entry.Addr
	uid := entry.UID
	m.mu.Unlock()

	// Move the directory's own stored pages from the old cell to
	// the new one. Rebinding the active segment requires a
	// deactivate/reactivate cycle, since the binding is static.
	pack, err := m.packEntry(addr)
	if err != nil {
		return err
	}
	stored := pack.Records()
	if stored > limit {
		return fmt.Errorf("%w: directory already holds %d pages", quota.ErrExceeded, stored)
	}
	if err := m.segs.Deactivate(uid); err != nil && !errors.Is(err, segment.ErrNotActive) {
		return err
	}
	if err := m.cells.InitCell(addr, limit); err != nil {
		return err
	}
	if _, err := m.segs.Activate(uid, addr, addr, true); err != nil {
		return err
	}
	if stored > 0 {
		if err := m.cells.Charge(addr, stored); err != nil {
			return err
		}
		if err := m.releaseFrom(oldCell, stored); err != nil {
			return err
		}
	}
	// The directory's own pages now charge its own cell; record the
	// new governing uid on disk so a salvage recount agrees.
	if err := m.segs.SetGov(addr, uid); err != nil {
		return err
	}
	m.mu.Lock()
	node.quotaDir = true
	node.cell = addr
	node.cellUID = uid
	m.mu.Unlock()
	return nil
}

// UndesignateQuota reverses DesignateQuota, again only for a childless
// directory, moving the charge back to the containing directory's
// cell.
func (m *Manager) UndesignateQuota(p Principal, plabel aim.Label, id Identifier) error {
	m.mu.Lock()
	entry, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return ErrNoAccess
	}
	node := m.nodeFor(entry)
	parent := m.parentOf[id]
	if node == nil || parent == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotDir, entry.Name)
	}
	if !modifiable(p, plabel, parent) {
		m.mu.Unlock()
		return ErrNoAccess
	}
	if len(node.children) > 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s has %d", ErrHasChildren, entry.Name, len(node.children))
	}
	if !node.quotaDir {
		m.mu.Unlock()
		return fmt.Errorf("directory: %s is not a quota directory", entry.Name)
	}
	parentCell := parent.cell
	parentCellUID := parent.cellUID
	addr := entry.Addr
	uid := entry.UID
	m.mu.Unlock()

	pack, err := m.packEntry(addr)
	if err != nil {
		return err
	}
	stored := pack.Records()
	if err := m.segs.Deactivate(uid); err != nil && !errors.Is(err, segment.ErrNotActive) {
		return err
	}
	if stored > 0 {
		if err := m.chargeTo(parentCell, stored); err != nil {
			return err
		}
		if err := m.releaseFrom(addr, stored); err != nil {
			return err
		}
	}
	if m.cells.Active(addr) {
		if err := m.cells.Deactivate(addr); err != nil {
			return err
		}
	}
	if err := m.cells.RemoveCell(addr); err != nil {
		return err
	}
	if _, err := m.segs.Activate(uid, addr, parentCell, true); err != nil {
		return err
	}
	// The directory's pages charge the containing directory's cell
	// again; rebind the on-disk governing uid to match.
	if err := m.segs.SetGov(addr, parentCellUID); err != nil {
		return err
	}
	m.mu.Lock()
	node.quotaDir = false
	node.cell = parentCell
	node.cellUID = parentCellUID
	m.mu.Unlock()
	return nil
}

// QuotaInfo reports the limit and use of a quota directory's cell.
func (m *Manager) QuotaInfo(id Identifier) (limit, used int, err error) {
	m.mu.Lock()
	entry, ok := m.byID[id]
	var node *dirNode
	if ok {
		node = m.nodeFor(entry)
	}
	m.mu.Unlock()
	if !ok || node == nil || !node.quotaDir {
		return 0, 0, fmt.Errorf("directory: not a quota directory")
	}
	if !m.cells.Active(entry.Addr) {
		if err := m.cells.Activate(entry.Addr); err != nil {
			return 0, 0, err
		}
	}
	return m.cells.Info(entry.Addr)
}

// packEntry fetches the table-of-contents entry behind addr.
func (m *Manager) packEntry(addr disk.SegAddr) (disk.TOCEntry, error) {
	// The segment manager's volumes are not exported; reach the
	// entry via a throwaway activation-free read using the quota
	// manager's volume registry is not possible either, so the
	// directory manager carries its own handle in cfg? Instead the
	// segment manager exposes the read below.
	return m.segs.DiskEntry(addr)
}

// chargeTo charges n pages to a cell, activating it if needed.
func (m *Manager) chargeTo(cell quota.CellName, n int) error {
	if !m.cells.Active(cell) {
		if err := m.cells.Activate(cell); err != nil {
			return err
		}
	}
	return m.cells.Charge(cell, n)
}

// releaseFrom releases n pages from a cell, activating it if needed.
func (m *Manager) releaseFrom(cell quota.CellName, n int) error {
	if !m.cells.Active(cell) {
		if err := m.cells.Activate(cell); err != nil {
			return err
		}
	}
	return m.cells.Release(cell, n)
}

// ResolvePathKernel is the buried, pre-kernel-design pathname
// resolver: the entire tree-name expansion runs inside the protected
// supervisor, and the response is only ever the final identifier or a
// bare ErrNoAccess that confirms nothing about the intervening
// directories. It exists for comparison with the user-ring walk built
// on Search.
func (m *Manager) ResolvePathKernel(p Principal, plabel aim.Label, path []string) (Identifier, error) {
	id := m.rootID
	for _, name := range path {
		m.meter.AddBody(bodyResolveKernel, m.Lang)
		m.mu.Lock()
		entry, ok := m.byID[id]
		if !ok {
			m.mu.Unlock()
			return 0, ErrNoAccess
		}
		node := m.nodeFor(entry)
		if node == nil {
			m.mu.Unlock()
			return 0, ErrNoAccess
		}
		child, exists := node.children[name]
		m.mu.Unlock()
		if !exists {
			return 0, ErrNoAccess
		}
		id = child.ID
	}
	// The caller must have some access to the final object, or the
	// answer is the uninformative one.
	m.mu.Lock()
	entry := m.byID[id]
	mode := entry.ACL.ModeFor(p)
	bad := mode == 0 || aim.CheckRead(plabel, entry.Label) != nil && aim.CheckWrite(plabel, entry.Label) != nil
	m.mu.Unlock()
	if bad {
		return 0, ErrNoAccess
	}
	return id, nil
}
