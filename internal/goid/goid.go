// Package goid identifies the current goroutine.
//
// Go deliberately provides no goroutine-local storage, but two kernel
// mechanisms need to know "which execution context am I in": the
// ranked-lock checker keeps a per-goroutine stack of held locks, and
// the trace recorder attributes events to the simulated processor a
// goroutine is driving. Both key their side tables by the goroutine
// id parsed from the runtime's stack header — the standard trick,
// confined to this one package so the rest of the kernel never sees
// it.
package goid

import "runtime"

// ID returns the current goroutine's id. It costs one shallow
// runtime.Stack call (a few hundred nanoseconds), so callers on hot
// paths should provide a way to switch themselves off.
func ID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// The header is "goroutine 123 [running]:..."; digits start at
	// offset 10.
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
