package vproc

import "testing"

func TestAuditCleanThenCorrupt(t *testing.T) {
	m, states, _ := newManager(t, 3)
	if _, err := m.BindKernel("daemon"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquireUser(42); err != nil {
		t.Fatal(err)
	}
	if bad := m.Audit(); len(bad) != 0 {
		t.Fatalf("clean manager audits dirty: %v", bad)
	}
	// Corrupt the state block in the core segment.
	if err := states.Write(0, 99); err != nil {
		t.Fatal(err)
	}
	if bad := m.Audit(); len(bad) == 0 {
		t.Error("audit missed a corrupted state block")
	}
	// Corrupt the module index: point it at a free vp.
	m2, _, _ := newManager(t, 2)
	if _, err := m2.BindKernel("d2"); err != nil {
		t.Fatal(err)
	}
	m2.mu.Lock()
	free, _ := m2.VP(1)
	m2.byMod["d2"] = free
	m2.mu.Unlock()
	if bad := m2.Audit(); len(bad) == 0 {
		t.Error("audit missed a module indexed to an unbound vp")
	}
	// Corrupt a binding without the index.
	m3, _, _ := newManager(t, 2)
	if _, err := m3.BindKernel("d3"); err != nil {
		t.Fatal(err)
	}
	m3.mu.Lock()
	delete(m3.byMod, "d3")
	m3.mu.Unlock()
	if bad := m3.Audit(); len(bad) == 0 {
		t.Error("audit missed a bound vp missing from the index")
	}
}
