// Package vproc implements the virtual processor manager: the bottom
// level of the two-level process implementation that breaks the
// classic dependency loop between processor multiplexing and virtual
// memory.
//
// The manager implements a fixed number of virtual processors whose
// states are always in primary memory (a core segment), so this level
// never uses the virtual memory and depends only on primary memory and
// the hardware processors. A subset of the virtual processors is
// multiplexed among user processes as needed; the remainder are
// permanently bound to the interpretation of kernel modules (the
// virtual memory daemons and the user-process scheduler). Fixing the
// number of processes at this level yields the simplifications Brinch
// Hansen argues for, without wiring down every user process state.
//
// Waiting and notification use the eventcount protocol, together with
// the per-processor wakeup-waiting switch and locked-descriptor-
// address register that prevent a notification from being lost between
// a locked-page-descriptor exception and the wait primitive.
package vproc

import (
	"errors"
	"fmt"

	"multics/internal/coreseg"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/trace"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for dispatches and queue messages are attributed to
// it.
const ModuleName = "virtual-processor-manager"

// StateWords is the size of one virtual processor's state block in
// the state core segment.
const StateWords = 8

// Binding describes what a virtual processor is currently
// interpreting.
type Binding int

const (
	// Free: available for multiplexing among user processes.
	Free Binding = iota
	// KernelBound: permanently bound to a kernel module.
	KernelBound
	// UserBound: temporarily carrying a user process.
	UserBound
)

func (b Binding) String() string {
	switch b {
	case Free:
		return "free"
	case KernelBound:
		return "kernel"
	case UserBound:
		return "user"
	default:
		return fmt.Sprintf("binding(%d)", int(b))
	}
}

// ErrNoFreeVP is returned when every multiplexable virtual processor
// is carrying a user process.
var ErrNoFreeVP = errors.New("vproc: no free virtual processor")

// A VP is one virtual processor.
type VP struct {
	id      int
	binding Binding
	module  string // kernel module name when KernelBound
	user    uint64 // user process id when UserBound
	queue   []func()
}

// ID returns the virtual processor number.
func (v *VP) ID() int { return v.id }

// Binding reports the current binding.
func (v *VP) Binding() Binding { return v.binding }

// Module returns the kernel module a KernelBound processor interprets.
func (v *VP) Module() string { return v.module }

// User returns the user process id a UserBound processor carries.
func (v *VP) User() uint64 { return v.user }

// A Manager owns the fixed set of virtual processors.
type Manager struct {
	mu     lockrank.Mutex
	vps    []*VP
	byMod  map[string]*VP
	states *coreseg.Segment
	meter  *hw.CostMeter
	procs  []*hw.Processor
	sink   trace.Sink
	spans  trace.SpanSink
	// free is the multiplexable processors as a LIFO stack, so
	// acquire and release are O(1) however many processors exist.
	free []*VP
	// freeEC counts releases back to the free pool; idle schedulers
	// await it instead of polling AcquireUser.
	freeEC eventcount.Eventcount
	// dispatches counts work items run, for the performance
	// comparisons.
	dispatches int64
}

// SetTrace routes dispatch and queue-message events to s (nil turns
// tracing off).
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	m.sink = s
	m.spans = trace.SpanSinkOf(s)
	m.mu.Unlock()
	m.freeEC.Trace(s, ModuleName)
}

// FreeEC returns the eventcount advanced every time a virtual
// processor returns to the free pool. A scheduler that finds no free
// processor reads it before the failed acquire and awaits the next
// value, so an idle processor sleeps instead of spinning — the
// eventcount discipline of the paper applied to the dispatcher
// itself.
func (m *Manager) FreeEC() *eventcount.Eventcount { return &m.freeEC }

// NewManager creates n virtual processors whose state blocks live in
// the core segment states (which must hold n*StateWords words).
func NewManager(n int, states *coreseg.Segment, meter *hw.CostMeter) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vproc: %d virtual processors", n)
	}
	if states == nil || states.Words() < n*StateWords {
		return nil, fmt.Errorf("vproc: state segment too small for %d virtual processors", n)
	}
	m := &Manager{states: states, meter: meter, byMod: make(map[string]*VP)}
	m.mu.Init(ModuleName)
	for i := 0; i < n; i++ {
		vp := &VP{id: i}
		m.vps = append(m.vps, vp)
		if err := m.saveState(vp); err != nil {
			return nil, err
		}
	}
	// The free stack is seeded in reverse so pops hand out the lowest
	// numbered processor first, matching the original scan order.
	for i := n - 1; i >= 0; i-- {
		m.free = append(m.free, m.vps[i])
	}
	return m, nil
}

// saveState writes the vp's state block into the core segment: the
// point of the two-level design is that these states are always in
// primary memory. Called with or without m.mu; the segment is
// internally bounds-checked.
func (m *Manager) saveState(v *VP) error {
	base := v.id * StateWords
	if err := m.states.Write(base, hw.Word(v.binding)); err != nil {
		return err
	}
	if err := m.states.Write(base+1, hw.Word(v.user).Masked()); err != nil {
		return err
	}
	return m.states.Write(base+2, hw.Word(len(v.queue)))
}

// N reports the fixed number of virtual processors.
func (m *Manager) N() int { return len(m.vps) }

// VP returns virtual processor i.
func (m *Manager) VP(i int) (*VP, error) {
	if i < 0 || i >= len(m.vps) {
		return nil, fmt.Errorf("vproc: no virtual processor %d", i)
	}
	return m.vps[i], nil
}

// BindKernel permanently binds a free virtual processor to the named
// kernel module and returns it. Kernel bindings are made at system
// initialization and never released.
func (m *Manager) BindKernel(module string) (*VP, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byMod[module]; ok {
		return nil, fmt.Errorf("vproc: module %s already has a virtual processor", module)
	}
	v := m.popFree()
	if v == nil {
		return nil, ErrNoFreeVP
	}
	v.binding = KernelBound
	v.module = module
	m.byMod[module] = v
	return v, m.saveState(v)
}

// popFree takes the next free virtual processor off the stack, nil
// when none remain. Caller holds m.mu.
func (m *Manager) popFree() *VP {
	if len(m.free) == 0 {
		return nil
	}
	v := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return v
}

// Enqueue hands a work item to the virtual processor bound to the
// named kernel module. The transfer costs one inter-process message.
func (m *Manager) Enqueue(module string, work func()) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.byMod[module]
	if !ok {
		return fmt.Errorf("vproc: no virtual processor bound to module %s", module)
	}
	m.meter.Add(hw.CycIPC)
	if m.sink != nil {
		m.sink.Emit(trace.Event{Kind: trace.EvIPC, Module: ModuleName, Cost: hw.CycIPC, Arg0: int64(v.id)})
	}
	v.queue = append(v.queue, work)
	return m.saveState(v)
}

// Pending reports the number of queued work items across all kernel
// virtual processors.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.vps {
		n += len(v.queue)
	}
	return n
}

// RunPending dispatches queued work co-operatively, in virtual
// processor order, until every queue is empty (work may enqueue more
// work), and returns the number of items run. Each dispatch costs
// CycDispatch.
func (m *Manager) RunPending() int {
	ran := 0
	for {
		var work func()
		var owner *VP
		m.mu.Lock()
		for _, v := range m.vps {
			if len(v.queue) > 0 {
				work = v.queue[0]
				v.queue = v.queue[1:]
				owner = v
				break
			}
		}
		ss := m.spans
		if owner != nil {
			m.meter.Add(hw.CycDispatch)
			m.dispatches++
			if m.sink != nil {
				m.sink.Emit(trace.Event{Kind: trace.EvDispatch, Module: ModuleName, Cost: hw.CycDispatch, Arg0: int64(owner.id)})
			}
			_ = m.saveState(owner)
		}
		m.mu.Unlock()
		if work == nil {
			return ran
		}
		if ss != nil {
			ss.BeginSpan(trace.SpanVPDispatch, ModuleName, int64(owner.id))
		}
		work()
		if ss != nil {
			ss.EndSpan(trace.SpanVPDispatch)
		}
		ran++
	}
}

// Dispatches reports the total number of work items dispatched.
func (m *Manager) Dispatches() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dispatches
}

// AcquireUser multiplexes a free virtual processor onto the given user
// process. O(1): the free pool is a stack, not a scan.
func (m *Manager) AcquireUser(user uint64) (*VP, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.popFree()
	if v == nil {
		return nil, ErrNoFreeVP
	}
	v.binding = UserBound
	v.user = user
	m.meter.Add(hw.CycDispatch)
	if m.sink != nil {
		m.sink.Emit(trace.Event{Kind: trace.EvDispatch, Module: ModuleName, Cost: hw.CycDispatch, Arg0: int64(v.id), Arg1: int64(user)})
	}
	return v, m.saveState(v)
}

// ReleaseUser returns a user-bound virtual processor to the free pool
// and advances the free-pool eventcount, waking schedulers that went
// to sleep on ErrNoFreeVP.
func (m *Manager) ReleaseUser(v *VP) error {
	m.mu.Lock()
	if v.binding != UserBound {
		m.mu.Unlock()
		return fmt.Errorf("vproc: release of %v virtual processor %d", v.binding, v.id)
	}
	v.binding = Free
	v.user = 0
	m.free = append(m.free, v)
	err := m.saveState(v)
	m.mu.Unlock()
	// Advance outside the lock: waiters woken by the eventcount call
	// straight back into AcquireUser.
	m.freeEC.Advance()
	return err
}

// FreeVPs reports how many virtual processors are available for user
// multiplexing.
func (m *Manager) FreeVPs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// Audit checks the manager's invariants: the module index and the
// virtual processor bindings must agree, and every state block in the
// core segment must match the in-memory state.
func (m *Manager) Audit() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []string
	for mod, v := range m.byMod {
		if v.binding != KernelBound || v.module != mod {
			bad = append(bad, fmt.Sprintf("module %s indexed to vp %d which is %v/%q", mod, v.id, v.binding, v.module))
		}
	}
	onFree := make(map[int]bool, len(m.free))
	for _, v := range m.free {
		if v.binding != Free {
			bad = append(bad, fmt.Sprintf("vp %d on the free stack but bound %v", v.id, v.binding))
		}
		if onFree[v.id] {
			bad = append(bad, fmt.Sprintf("vp %d on the free stack twice", v.id))
		}
		onFree[v.id] = true
	}
	for _, v := range m.vps {
		if v.binding == Free && !onFree[v.id] {
			bad = append(bad, fmt.Sprintf("vp %d free but missing from the free stack", v.id))
		}
		if v.binding == KernelBound {
			if m.byMod[v.module] != v {
				bad = append(bad, fmt.Sprintf("vp %d bound to %q but not indexed", v.id, v.module))
			}
		}
		w, err := m.states.Read(v.id * StateWords)
		if err != nil {
			bad = append(bad, fmt.Sprintf("vp %d state block unreadable: %v", v.id, err))
			continue
		}
		if Binding(w) != v.binding {
			bad = append(bad, fmt.Sprintf("vp %d state block says %v, manager says %v", v.id, Binding(w), v.binding))
		}
	}
	return bad
}

// RegisterProcessor makes a real (simulated) processor known to the
// notification machinery so its wakeup-waiting switch can be set.
func (m *Manager) RegisterProcessor(p *hw.Processor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.procs = append(m.procs, p)
}

// Wait is the wait primitive of the virtual processor manager: it
// blocks until ec reaches v. If proc is non-nil its wakeup-waiting
// switch is honoured: a notification that arrived between the
// locked-descriptor exception and this call makes Wait return
// immediately instead of sleeping through it.
func (m *Manager) Wait(proc *hw.Processor, ec *eventcount.Eventcount, v uint64) uint64 {
	if proc != nil && proc.ClearWakeupWaiting() {
		return ec.Read()
	}
	return ec.Await(v)
}

// Notify advances ec, waking its waiters, and sets the wakeup-waiting
// switch of every registered processor whose locked-descriptor-address
// register names (seg, page) — covering a processor that faulted but
// has not yet reached the wait primitive.
func (m *Manager) Notify(ec *eventcount.Eventcount, seg, page int) uint64 {
	m.mu.Lock()
	procs := append([]*hw.Processor(nil), m.procs...)
	m.mu.Unlock()
	for _, p := range procs {
		if s, pg := p.LockedDescriptor(); s == seg && pg == page {
			p.SetWakeupWaiting()
		}
	}
	return ec.Advance()
}
