package vproc

import (
	"errors"
	"testing"

	"multics/internal/coreseg"
	"multics/internal/eventcount"
	"multics/internal/hw"
)

func newManager(t *testing.T, n int) (*Manager, *coreseg.Segment, *hw.CostMeter) {
	t.Helper()
	mem := hw.NewMemory(8)
	meter := &hw.CostMeter{}
	cm, err := coreseg.NewManager(mem, 4, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, err := cm.Allocate("vp-states", n*StateWords)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(n, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	return m, states, meter
}

func TestFixedNumber(t *testing.T) {
	m, _, _ := newManager(t, 4)
	if m.N() != 4 {
		t.Errorf("N = %d", m.N())
	}
	if _, err := m.VP(3); err != nil {
		t.Error(err)
	}
	if _, err := m.VP(4); err == nil {
		t.Error("VP(4) of 4 succeeded")
	}
	if _, err := NewManager(0, nil, nil); err == nil {
		t.Error("zero virtual processors accepted")
	}
}

func TestStateSegmentTooSmall(t *testing.T) {
	mem := hw.NewMemory(8)
	cm, err := coreseg.NewManager(mem, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := cm.Allocate("tiny", 8)
	if err != nil {
		t.Fatal(err)
	}
	// One frame holds 1024 words = 128 vp states; ask for more.
	if _, err := NewManager(200, tiny, nil); err == nil {
		t.Error("undersized state segment accepted")
	}
}

func TestStatesLiveInCoreSegment(t *testing.T) {
	m, states, _ := newManager(t, 3)
	vp, err := m.BindKernel("page-frame-mgr")
	if err != nil {
		t.Fatal(err)
	}
	w, err := states.Read(vp.ID() * StateWords)
	if err != nil {
		t.Fatal(err)
	}
	if Binding(w) != KernelBound {
		t.Errorf("state word says binding %v, want kernel", Binding(w))
	}
	// A user binding is visible too.
	uvp, err := m.AcquireUser(77)
	if err != nil {
		t.Fatal(err)
	}
	w, err = states.Read(uvp.ID()*StateWords + 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 77 {
		t.Errorf("state word says user %d, want 77", w)
	}
}

func TestBindKernel(t *testing.T) {
	m, _, _ := newManager(t, 2)
	a, err := m.BindKernel("page-writer")
	if err != nil {
		t.Fatal(err)
	}
	if a.Binding() != KernelBound || a.Module() != "page-writer" {
		t.Errorf("vp = %v %q", a.Binding(), a.Module())
	}
	if _, err := m.BindKernel("page-writer"); err == nil {
		t.Error("double binding of one module succeeded")
	}
	if _, err := m.BindKernel("core-reclaimer"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BindKernel("scheduler"); !errors.Is(err, ErrNoFreeVP) {
		t.Errorf("binding beyond fixed supply: %v, want ErrNoFreeVP", err)
	}
	if m.FreeVPs() != 0 {
		t.Errorf("FreeVPs = %d", m.FreeVPs())
	}
}

func TestEnqueueRunPending(t *testing.T) {
	m, _, meter := newManager(t, 2)
	if _, err := m.BindKernel("daemon"); err != nil {
		t.Fatal(err)
	}
	var order []int
	if err := m.Enqueue("daemon", func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue("daemon", func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 2 {
		t.Errorf("Pending = %d", m.Pending())
	}
	before := meter.Snapshot()
	ran := m.RunPending()
	if ran != 2 {
		t.Errorf("RunPending = %d", ran)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want FIFO", order)
	}
	if m.Pending() != 0 {
		t.Errorf("Pending after run = %d", m.Pending())
	}
	if got := meter.Since(before); got < 2*hw.CycDispatch {
		t.Errorf("dispatch cost %d, want >= %d", got, 2*hw.CycDispatch)
	}
	if m.Dispatches() != 2 {
		t.Errorf("Dispatches = %d", m.Dispatches())
	}
	if err := m.Enqueue("nobody", func() {}); err == nil {
		t.Error("enqueue to unbound module succeeded")
	}
}

func TestWorkMayEnqueueMoreWork(t *testing.T) {
	m, _, _ := newManager(t, 1)
	if _, err := m.BindKernel("daemon"); err != nil {
		t.Fatal(err)
	}
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			if err := m.Enqueue("daemon", step); err != nil {
				t.Error(err)
			}
		}
	}
	if err := m.Enqueue("daemon", step); err != nil {
		t.Fatal(err)
	}
	if ran := m.RunPending(); ran != 5 {
		t.Errorf("RunPending = %d, want 5", ran)
	}
}

func TestUserMultiplexing(t *testing.T) {
	m, _, _ := newManager(t, 3)
	if _, err := m.BindKernel("daemon"); err != nil {
		t.Fatal(err)
	}
	a, err := m.AcquireUser(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AcquireUser(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.User() != 1 || b.User() != 2 {
		t.Errorf("users = %d, %d", a.User(), b.User())
	}
	if _, err := m.AcquireUser(3); !errors.Is(err, ErrNoFreeVP) {
		t.Errorf("acquire beyond supply: %v", err)
	}
	if err := m.ReleaseUser(a); err != nil {
		t.Fatal(err)
	}
	if err := m.ReleaseUser(a); err == nil {
		t.Error("double release succeeded")
	}
	c, err := m.AcquireUser(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != a.ID() {
		t.Errorf("released vp %d not reused, got %d", a.ID(), c.ID())
	}
	kvp, _ := m.VP(0)
	if kvp.Binding() == UserBound {
		t.Error("kernel vp was multiplexed to a user")
	}
}

func TestWaitNotify(t *testing.T) {
	m, _, _ := newManager(t, 1)
	var ec eventcount.Eventcount
	done := make(chan uint64, 1)
	go func() { done <- m.Wait(nil, &ec, 1) }()
	m.Notify(&ec, 0, 0)
	if v := <-done; v < 1 {
		t.Errorf("Wait returned %d", v)
	}
}

func TestWakeupWaitingPreventsLostNotification(t *testing.T) {
	// The race the hardware additions close: processor A takes a
	// locked-descriptor fault; before it reaches the wait
	// primitive, the fault servicer unlocks the page and notifies.
	// Without the switch A would wait forever (the eventcount has
	// already passed); with it, Wait returns immediately.
	m, _, _ := newManager(t, 1)
	mem := hw.NewMemory(2)
	proc := hw.NewProcessor(0, mem, nil)
	m.RegisterProcessor(proc)

	pt := hw.NewPageTable(1, false)
	if err := pt.Set(0, hw.PTW{Lock: true}); err != nil {
		t.Fatal(err)
	}
	dt := hw.NewDescriptorTable(4)
	if err := dt.Set(2, hw.SDW{Present: true, Table: pt, Access: hw.Read, MaxRing: hw.UserRing}); err != nil {
		t.Fatal(err)
	}
	proc.UserDT = dt
	proc.Ring = hw.UserRing

	// The fault loads the locked-descriptor-address register.
	_, err := proc.Read(2, 0)
	if !hw.IsFault(err, hw.FaultLockedDescriptor) {
		t.Fatalf("read: %v, want locked-descriptor fault", err)
	}

	var ec eventcount.Eventcount
	target := ec.Read() + 1
	// Notification arrives before the wait primitive is invoked.
	m.Notify(&ec, 2, 0)
	// Wait must not block: the wakeup-waiting switch is set.
	got := m.Wait(proc, &ec, target+1) // deliberately beyond the count
	if got != ec.Read() {
		t.Errorf("Wait returned %d", got)
	}
	if proc.WakeupWaiting() {
		t.Error("switch still set after Wait consumed it")
	}
}

func TestNotifyMatchesDescriptorAddress(t *testing.T) {
	m, _, _ := newManager(t, 1)
	mem := hw.NewMemory(2)
	proc := hw.NewProcessor(0, mem, nil)
	m.RegisterProcessor(proc)
	// Register holds (0,0) by default; a notify for a different
	// descriptor must not set the switch.
	var ec eventcount.Eventcount
	m.Notify(&ec, 9, 9)
	if proc.WakeupWaiting() {
		t.Error("switch set by unrelated notification")
	}
}

func TestBindingString(t *testing.T) {
	for _, b := range []Binding{Free, KernelBound, UserBound, Binding(9)} {
		if b.String() == "" {
			t.Errorf("Binding(%d) has empty name", int(b))
		}
	}
}
