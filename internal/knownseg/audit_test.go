package knownseg

import (
	"testing"

	"multics/internal/disk"
	"multics/internal/quota"
)

func TestKSTAccessors(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, err := f.m.NewKST(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if k.Base() != 8 || k.Capacity() != 16 {
		t.Errorf("Base=%d Capacity=%d", k.Base(), k.Capacity())
	}
	uid1, addr1 := f.newFile(t)
	uid2, addr2 := f.newFile(t)
	if _, err := f.m.MakeKnown(k, entryFor(uid1, addr1, f.cell)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.MakeKnown(k, entryFor(uid2, addr2, f.cell)); err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	k.Each(func(e Entry) { seen = append(seen, e.UID) })
	if len(seen) != 2 {
		t.Errorf("Each visited %d entries", len(seen))
	}
}

func TestAuditCleanAndCorrupt(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, err := f.m.NewKST(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	uid, addr := f.newFile(t)
	segno, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("clean KST audits dirty: %v", bad)
	}
	// Corrupt the bijection: the slot's recorded segno lies.
	k.mu.Lock()
	k.entries[segno-k.base].Segno = segno + 1
	k.mu.Unlock()
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a segno mismatch")
	}
	k.mu.Lock()
	k.entries[segno-k.base].Segno = segno
	// Corrupt the uid index.
	k.byUID[uid] = 3
	k.mu.Unlock()
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a dangling uid index")
	}
}

func TestUpdateCellRenames(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, err := f.m.NewKST(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	uid, addr := f.newFile(t)
	segno, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	newCell := quota.CellName{Pack: "dskb", TOC: disk.TOCIndex(42)}
	f.m.UpdateCell(f.cell, newCell)
	e, err := k.Entry(segno)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cell != newCell {
		t.Errorf("cell = %v, want %v", e.Cell, newCell)
	}
	// Entries bound to other cells are untouched.
	f.m.UpdateCell(quota.CellName{Pack: "zzz"}, f.cell)
	e, _ = k.Entry(segno)
	if e.Cell != newCell {
		t.Error("unrelated UpdateCell rewrote a binding")
	}
}
