// Package knownseg implements the known segment manager: the
// per-process tables (KSTs) that bind segment numbers to segment
// unique identifiers, and the fault services that sit just above the
// segment manager.
//
// The known segment manager is where hardware quota exceptions arrive:
// the exception reports a segment number and page number, the manager
// translates the segment number to a unique identifier, and it invokes
// the segment manager to find the appropriate quota directory, check
// the limit, and add the page. When the downward call chain comes
// back with an unsuspected full-pack exception already handled by
// relocation, the manager transfers the new pack identifier and
// table-of-contents index — plus the saved user process state — to the
// directory manager with an upward signal, leaving no activation
// records behind.
//
// When a process first makes a segment known, the directory manager
// (above) supplies the identity of the appropriate superior quota
// directory; the static binding travels down through activation, and
// no upward hierarchy search ever happens below this level.
package knownseg

import (
	"errors"
	"fmt"

	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/quota"
	"multics/internal/schedsim"
	"multics/internal/segment"
	"multics/internal/upsignal"
)

// ModuleName is this manager's name in the kernel dependency graph.
// The manager's own lock takes the layer's high sub-rank and every
// per-process KST lock the low one, so a KST may be locked while the
// manager lock is held but never the other way round.
const ModuleName = "known-segment-manager"

// RelocationTarget is the upward-signal target name of the directory
// manager's relocation handler.
const RelocationTarget = "directory-manager"

// A RelocationNotice is the upward-signal payload after a full-pack
// relocation: the directory manager must record the segment's new disk
// address in its directory entry and restore the user process state.
type RelocationNotice struct {
	UID     uint64
	NewAddr disk.SegAddr
	// SavedState is the user process state captured just before the
	// original quota exception; the directory manager restores it
	// after updating the entry so the process rereferences the
	// segment.
	SavedState any
}

// ErrKSTFull is returned when a process's known segment table has no
// free segment number.
var ErrKSTFull = errors.New("knownseg: known segment table full")

// ErrUnknown is returned for a segment number with no KST entry.
var ErrUnknown = errors.New("knownseg: segment number not known")

// An Entry is one known-segment-table entry: what a process knows
// about one segment number.
type Entry struct {
	Segno   int
	UID     uint64
	Addr    disk.SegAddr
	Cell    quota.CellName
	HasCell bool
	// Access and rings record what the directory manager granted at
	// initiate time; connections are built with exactly these.
	Access    hw.AccessMode
	MaxRing   int
	WriteRing int
}

// A KST is one process's known segment table.
type KST struct {
	mu      lockrank.Mutex
	base    int
	entries []*Entry
	byUID   map[uint64]int
}

// Base reports the first user segment number.
func (k *KST) Base() int { return k.base }

// Capacity reports the fixed number of segment numbers.
func (k *KST) Capacity() int { return len(k.entries) }

// Known reports the number of live entries.
func (k *KST) Known() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.byUID)
}

// Entry returns a copy of the entry for segno.
func (k *KST) Entry(segno int) (Entry, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := segno - k.base
	if i < 0 || i >= len(k.entries) || k.entries[i] == nil {
		return Entry{}, fmt.Errorf("%w: %d", ErrUnknown, segno)
	}
	return *k.entries[i], nil
}

// Each calls fn for every live entry.
func (k *KST) Each(fn func(Entry)) {
	k.mu.Lock()
	entries := make([]Entry, 0, len(k.byUID))
	for _, e := range k.entries {
		if e != nil {
			entries = append(entries, *e)
		}
	}
	k.mu.Unlock()
	for _, e := range entries {
		fn(e)
	}
}

// Audit checks every known segment table's invariant: the segment
// number index and the uid index are a bijection.
func (m *Manager) Audit() []string {
	m.mu.Lock()
	ksts := append([]*KST(nil), m.ksts...)
	m.mu.Unlock()
	var bad []string
	for ki, k := range ksts {
		k.mu.Lock()
		for uid, i := range k.byUID {
			if i < 0 || i >= len(k.entries) || k.entries[i] == nil {
				bad = append(bad, fmt.Sprintf("KST %d: uid %d indexes empty slot %d", ki, uid, i))
				continue
			}
			if k.entries[i].UID != uid {
				bad = append(bad, fmt.Sprintf("KST %d: uid %d indexes slot holding %d", ki, uid, k.entries[i].UID))
			}
		}
		for i, e := range k.entries {
			if e == nil {
				continue
			}
			if j, ok := k.byUID[e.UID]; !ok || j != i {
				bad = append(bad, fmt.Sprintf("KST %d: slot %d (uid %d) not indexed", ki, i, e.UID))
			}
			if e.Segno != k.base+i {
				bad = append(bad, fmt.Sprintf("KST %d: slot %d records segno %d, want %d", ki, i, e.Segno, k.base+i))
			}
		}
		k.mu.Unlock()
	}
	return bad
}

// A Manager owns every process's KST and provides the fault services.
type Manager struct {
	segs    *segment.Manager
	signals *upsignal.Dispatcher
	meter   *hw.CostMeter

	mu   lockrank.Mutex
	ksts []*KST
}

// NewManager returns a known segment manager over the given segment
// manager and upward-signal dispatcher.
func NewManager(segs *segment.Manager, signals *upsignal.Dispatcher, meter *hw.CostMeter) *Manager {
	m := &Manager{segs: segs, signals: signals, meter: meter}
	m.mu.InitSub(ModuleName, 1)
	return m
}

// NewKST creates a process's known segment table covering segment
// numbers [base, base+capacity).
func (m *Manager) NewKST(base, capacity int) (*KST, error) {
	if base < 0 || capacity <= 0 {
		return nil, fmt.Errorf("knownseg: KST base %d capacity %d", base, capacity)
	}
	k := &KST{base: base, entries: make([]*Entry, capacity), byUID: make(map[uint64]int)}
	k.mu.InitSub(ModuleName, 0)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ksts = append(m.ksts, k)
	return k, nil
}

// DropKST forgets a process's table (process destruction).
func (m *Manager) DropKST(k *KST) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, other := range m.ksts {
		if other == k {
			m.ksts = append(m.ksts[:i], m.ksts[i+1:]...)
			return
		}
	}
}

// MakeKnown binds a segment into the process's address space, using
// the quota-cell identity and access the directory manager resolved.
// If the segment is already known the existing segment number is
// returned.
func (m *Manager) MakeKnown(k *KST, e Entry) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if i, ok := k.byUID[e.UID]; ok {
		return k.base + i, nil
	}
	for i, slot := range k.entries {
		if slot == nil {
			cp := e
			cp.Segno = k.base + i
			k.entries[i] = &cp
			k.byUID[e.UID] = i
			return cp.Segno, nil
		}
	}
	return 0, ErrKSTFull
}

// Terminate unbinds a segment number from the process. The caller is
// responsible for clearing the descriptor.
func (m *Manager) Terminate(k *KST, segno int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := segno - k.base
	if i < 0 || i >= len(k.entries) || k.entries[i] == nil {
		return fmt.Errorf("%w: %d", ErrUnknown, segno)
	}
	delete(k.byUID, k.entries[i].UID)
	k.entries[i] = nil
	return nil
}

// UpdateAddr records a segment's new disk address in every KST that
// knows it. The directory manager calls this — a downward call — as
// part of handling a relocation notice.
func (m *Manager) UpdateAddr(uid uint64, addr disk.SegAddr) {
	m.mu.Lock()
	ksts := append([]*KST(nil), m.ksts...)
	m.mu.Unlock()
	for _, k := range ksts {
		k.mu.Lock()
		if i, ok := k.byUID[uid]; ok {
			k.entries[i].Addr = addr
		}
		k.mu.Unlock()
	}
}

// UpdateCell renames a quota cell in every KST entry bound to it,
// after the cell's quota directory moved packs.
func (m *Manager) UpdateCell(old, new quota.CellName) {
	m.mu.Lock()
	ksts := append([]*KST(nil), m.ksts...)
	m.mu.Unlock()
	for _, k := range ksts {
		k.mu.Lock()
		for _, e := range k.entries {
			if e != nil && e.HasCell && e.Cell == old {
				e.Cell = new
			}
		}
		k.mu.Unlock()
	}
}

// ServiceMissingSegment is the standard machinery for missing-segment
// faults: it activates the segment if necessary and connects it to the
// faulting process's descriptor table with the access recorded at
// initiate time.
func (m *Manager) ServiceMissingSegment(k *KST, dt *hw.DescriptorTable, segno int) error {
	e, err := k.Entry(segno)
	if err != nil {
		return err
	}
	if _, err := m.segs.Lookup(e.UID); errors.Is(err, segment.ErrNotActive) {
		if _, err := m.segs.Activate(e.UID, e.Addr, e.Cell, e.HasCell); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	return m.segs.Connect(e.UID, dt, segno, e.Access, e.MaxRing, e.WriteRing)
}

// ServiceMissingPage translates the faulting segment number and calls
// the segment manager to bring the page in.
func (m *Manager) ServiceMissingPage(k *KST, segno, page int) error {
	e, err := k.Entry(segno)
	if err != nil {
		return err
	}
	return m.segs.ServiceMissingPage(e.UID, page, segno, page)
}

// ServiceQuotaFault handles the hardware quota exception: the first
// touch of a never-before-used (or zero) page. It translates the
// segment number, initiates the downward chain through the segment,
// quota cell and page frame managers, and — when the chain reports
// that a full pack forced a relocation — raises the upward signal that
// hands the directory manager the new address together with the saved
// process state. The raiser keeps nothing on its stack: the caller's
// dispatch loop runs the handler after this call unwinds.
func (m *Manager) ServiceQuotaFault(k *KST, segno, page int, savedState any) error {
	e, err := k.Entry(segno)
	if err != nil {
		return err
	}
	newAddr, err := m.segs.Grow(e.UID, page, segno, page)
	if errors.Is(err, segment.ErrGrowRace) {
		// Lost the race with a zero-page reclaim mid-flight on
		// another processor. Nothing was charged or allocated;
		// returning success makes the caller rereference, which
		// faults again once the reclaim has finished. The marked
		// yield lets schedule sweeps hand the token back to the
		// reclaiming task here, driving the retry to its resolution
		// instead of spinning against a parked peer.
		schedsim.Yield(schedsim.PointMark, "grow-race-retry")
		return nil
	}
	if err != nil {
		return err
	}
	if newAddr != nil {
		k.mu.Lock()
		if i, ok := k.byUID[e.UID]; ok {
			k.entries[i].Addr = *newAddr
		}
		k.mu.Unlock()
		return m.signals.Raise(upsignal.Signal{
			Target: RelocationTarget,
			Args:   RelocationNotice{UID: e.UID, NewAddr: *newAddr, SavedState: savedState},
		})
	}
	return nil
}
