package knownseg

import (
	"errors"
	"testing"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/segment"
	"multics/internal/upsignal"
	"multics/internal/vproc"
)

type fixture struct {
	mem     *hw.Memory
	meter   *hw.CostMeter
	vols    *disk.Volumes
	cells   *quota.Manager
	segs    *segment.Manager
	signals *upsignal.Dispatcher
	m       *Manager
	cell    quota.CellName
}

func newFixture(t *testing.T, pageable, packA int) *fixture {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(3 + pageable)
	cm, err := coreseg.NewManager(mem, 3, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, _ := cm.Allocate("vp-states", 4*vproc.StateWords)
	qtable, _ := cm.Allocate("quota-table", hw.PageWords)
	ast, _ := cm.Allocate("ast", hw.PageWords)
	vps, err := vproc.NewManager(4, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(pageframe.PageWriterModule); err != nil {
		t.Fatal(err)
	}
	frames, err := pageframe.NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	if _, err := vols.AddPack("dska", packA); err != nil {
		t.Fatal(err)
	}
	if _, err := vols.AddPack("dskb", 64); err != nil {
		t.Fatal(err)
	}
	cells, err := quota.NewManager(vols, qtable, meter)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segment.NewManager(vols, frames, cells, ast, meter)
	if err != nil {
		t.Fatal(err)
	}
	signals := upsignal.NewDispatcher()
	m := NewManager(segs, signals, meter)

	// A quota directory to govern everything.
	dirUID := segs.NewUID()
	cell, err := segs.Create("dska", dirUID, true, dirUID)
	if err != nil {
		t.Fatal(err)
	}
	if err := cells.InitCell(cell, 1000); err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: mem, meter: meter, vols: vols, cells: cells, segs: segs, signals: signals, m: m, cell: cell}
}

// newFile creates a file segment and returns its uid and address.
func (f *fixture) newFile(t *testing.T) (uint64, disk.SegAddr) {
	t.Helper()
	uid := f.segs.NewUID()
	addr, err := f.segs.Create("dska", uid, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	return uid, addr
}

func entryFor(uid uint64, addr disk.SegAddr, cell quota.CellName) Entry {
	return Entry{
		UID: uid, Addr: addr, Cell: cell, HasCell: true,
		Access: hw.Read | hw.Write, MaxRing: hw.UserRing, WriteRing: hw.UserRing,
	}
}

func TestMakeKnownAssignsSegnos(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, err := f.m.NewKST(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	uid1, addr1 := f.newFile(t)
	uid2, addr2 := f.newFile(t)
	s1, err := f.m.MakeKnown(k, entryFor(uid1, addr1, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.m.MakeKnown(k, entryFor(uid2, addr2, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 8 || s2 != 9 {
		t.Errorf("segnos = %d, %d", s1, s2)
	}
	// Making the same segment known again returns the same number.
	again, err := f.m.MakeKnown(k, entryFor(uid1, addr1, f.cell))
	if err != nil || again != s1 {
		t.Errorf("re-MakeKnown = %d, %v", again, err)
	}
	if k.Known() != 2 {
		t.Errorf("Known = %d", k.Known())
	}
	e, err := k.Entry(s1)
	if err != nil || e.UID != uid1 || e.Segno != s1 {
		t.Errorf("Entry(%d) = %+v, %v", s1, e, err)
	}
	if _, err := k.Entry(99); !errors.Is(err, ErrUnknown) {
		t.Errorf("Entry(99): %v", err)
	}
}

func TestKSTCapacity(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, err := f.m.NewKST(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		uid, addr := f.newFile(t)
		if _, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell)); err != nil {
			t.Fatal(err)
		}
	}
	uid, addr := f.newFile(t)
	if _, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell)); !errors.Is(err, ErrKSTFull) {
		t.Errorf("MakeKnown on full KST: %v", err)
	}
	// Terminate frees a number for reuse.
	if err := f.m.Terminate(k, 8); err != nil {
		t.Fatal(err)
	}
	if got, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell)); err != nil || got != 8 {
		t.Errorf("MakeKnown after terminate = %d, %v", got, err)
	}
	if err := f.m.Terminate(k, 99); !errors.Is(err, ErrUnknown) {
		t.Errorf("Terminate(99): %v", err)
	}
	if _, err := f.m.NewKST(-1, 2); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := f.m.NewKST(8, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestServiceMissingSegmentActivatesAndConnects(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, _ := f.m.NewKST(8, 4)
	uid, addr := f.newFile(t)
	segno, err := f.m.MakeKnown(k, entryFor(uid, addr, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	dt := hw.NewDescriptorTable(16)
	if err := f.m.ServiceMissingSegment(k, dt, segno); err != nil {
		t.Fatal(err)
	}
	sdw, err := dt.Get(segno)
	if err != nil || !sdw.Present {
		t.Fatalf("descriptor after service = %+v, %v", sdw, err)
	}
	if sdw.Access != (hw.Read|hw.Write) || sdw.MaxRing != hw.UserRing {
		t.Errorf("connection access = %v ring %d", sdw.Access, sdw.MaxRing)
	}
	// A second process connects to the already active segment.
	k2, _ := f.m.NewKST(8, 4)
	segno2, err := f.m.MakeKnown(k2, entryFor(uid, addr, f.cell))
	if err != nil {
		t.Fatal(err)
	}
	dt2 := hw.NewDescriptorTable(16)
	if err := f.m.ServiceMissingSegment(k2, dt2, segno2); err != nil {
		t.Fatal(err)
	}
	if f.segs.Connections(uid) != 2 {
		t.Errorf("connections = %d", f.segs.Connections(uid))
	}
	if err := f.m.ServiceMissingSegment(k, dt, 99); !errors.Is(err, ErrUnknown) {
		t.Errorf("service of unknown segno: %v", err)
	}
}

func TestQuotaFaultGrowsSegment(t *testing.T) {
	f := newFixture(t, 8, 64)
	k, _ := f.m.NewKST(8, 4)
	uid, addr := f.newFile(t)
	segno, _ := f.m.MakeKnown(k, entryFor(uid, addr, f.cell))
	dt := hw.NewDescriptorTable(16)
	if err := f.m.ServiceMissingSegment(k, dt, segno); err != nil {
		t.Fatal(err)
	}
	if err := f.m.ServiceQuotaFault(k, segno, 0, nil); err != nil {
		t.Fatal(err)
	}
	a, err := f.segs.Lookup(uid)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.PageTable().Get(0)
	if !d.Present {
		t.Error("page not present after quota fault service")
	}
	_, used, _ := f.cells.Info(f.cell)
	if used != 1 {
		t.Errorf("quota used = %d", used)
	}
	if err := f.m.ServiceMissingPage(k, 99, 0); !errors.Is(err, ErrUnknown) {
		t.Errorf("missing page on unknown segno: %v", err)
	}
	if err := f.m.ServiceQuotaFault(k, 99, 0, nil); !errors.Is(err, ErrUnknown) {
		t.Errorf("quota fault on unknown segno: %v", err)
	}
}

func TestFullPackRaisesUpwardSignal(t *testing.T) {
	// dska is tiny: growth overflows it and the relocation notice
	// must reach the directory manager via the dispatcher, carrying
	// the saved process state, after the call chain has unwound.
	f := newFixture(t, 16, 3)
	var notices []RelocationNotice
	if err := f.signals.Register(RelocationTarget, func(sig upsignal.Signal) error {
		notices = append(notices, sig.Args.(RelocationNotice))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	k, _ := f.m.NewKST(8, 4)
	uid, addr := f.newFile(t)
	segno, _ := f.m.MakeKnown(k, entryFor(uid, addr, f.cell))
	dt := hw.NewDescriptorTable(16)
	if err := f.m.ServiceMissingSegment(k, dt, segno); err != nil {
		t.Fatal(err)
	}
	a, _ := f.segs.Lookup(uid)
	for i := 0; i < 3; i++ {
		if err := f.m.ServiceQuotaFault(k, segno, i, nil); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
		d, _ := a.PageTable().Get(i)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	// This growth overflows dska.
	saved := "process-state-at-fault"
	if err := f.m.ServiceQuotaFault(k, segno, 3, saved); err != nil {
		t.Fatal(err)
	}
	if len(notices) != 0 {
		t.Fatal("handler ran before dispatch: activation records were left behind")
	}
	if n, err := f.signals.Dispatch(); err != nil || n != 1 {
		t.Fatalf("Dispatch = %d, %v", n, err)
	}
	if len(notices) != 1 {
		t.Fatalf("notices = %d", len(notices))
	}
	got := notices[0]
	if got.UID != uid || got.NewAddr.Pack != "dskb" || got.SavedState != saved {
		t.Errorf("notice = %+v", got)
	}
	// The KST entry already carries the new address.
	e, _ := k.Entry(segno)
	if e.Addr != got.NewAddr {
		t.Errorf("KST addr = %v, want %v", e.Addr, got.NewAddr)
	}
	// Reconnection works via the standard missing-segment machinery
	// (the descriptor was severed by the relocation).
	sdw, _ := dt.Get(segno)
	if sdw.Present {
		t.Fatal("descriptor survived relocation")
	}
	if err := f.m.ServiceMissingSegment(k, dt, segno); err != nil {
		t.Fatal(err)
	}
	if f.segs.Connections(uid) != 1 {
		t.Errorf("connections after reconnect = %d", f.segs.Connections(uid))
	}
}

func TestUpdateAddrReachesAllKSTs(t *testing.T) {
	f := newFixture(t, 8, 64)
	k1, _ := f.m.NewKST(8, 4)
	k2, _ := f.m.NewKST(8, 4)
	uid, addr := f.newFile(t)
	s1, _ := f.m.MakeKnown(k1, entryFor(uid, addr, f.cell))
	s2, _ := f.m.MakeKnown(k2, entryFor(uid, addr, f.cell))
	newAddr := disk.SegAddr{Pack: "dskb", TOC: 7}
	f.m.UpdateAddr(uid, newAddr)
	e1, _ := k1.Entry(s1)
	e2, _ := k2.Entry(s2)
	if e1.Addr != newAddr || e2.Addr != newAddr {
		t.Errorf("addrs = %v, %v", e1.Addr, e2.Addr)
	}
	// Dropped KSTs are not updated (and not crashed on).
	f.m.DropKST(k2)
	f.m.UpdateAddr(uid, addr)
	e1, _ = k1.Entry(s1)
	if e1.Addr != addr {
		t.Errorf("addr after second update = %v", e1.Addr)
	}
}
