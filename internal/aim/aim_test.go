package aim

import (
	"strings"
	"testing"
	"testing/quick"
)

func lbl(level Level, cats ...int) Label {
	var c Compartments
	for _, i := range cats {
		c = c.Union(Compartment(i))
	}
	return Label{Level: level, Cats: c}
}

func TestDominatesBasics(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{lbl(Secret), lbl(Unclassified), true},
		{lbl(Unclassified), lbl(Secret), false},
		{lbl(Secret, 1), lbl(Secret), true},
		{lbl(Secret), lbl(Secret, 1), false},
		{lbl(Secret, 1, 2), lbl(Confidential, 1), true},
		{lbl(Secret, 1), lbl(Confidential, 2), false}, // missing compartment
		{lbl(Secret, 1), lbl(Secret, 1), true},        // reflexive
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v Dominates %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIncomparableLabels(t *testing.T) {
	a := lbl(Secret, 1)
	b := lbl(Secret, 2)
	if a.Comparable(b) {
		t.Error("disjoint-compartment labels reported comparable")
	}
	if err := CheckRead(a, b); err == nil {
		t.Error("read across incomparable labels allowed")
	}
	if err := CheckWrite(a, b); err == nil {
		t.Error("write across incomparable labels allowed")
	}
}

func TestCheckReadWrite(t *testing.T) {
	subject := lbl(Secret, 1)
	low := lbl(Unclassified)
	high := lbl(TopSecret, 1, 2)

	if err := CheckRead(subject, low); err != nil {
		t.Errorf("read down: %v", err)
	}
	if err := CheckRead(subject, high); err == nil {
		t.Error("read up allowed")
	} else if !IsFlowError(err) || !strings.Contains(err.Error(), "no read up") {
		t.Errorf("read-up error = %v", err)
	}
	if err := CheckWrite(subject, high); err != nil {
		t.Errorf("write up: %v", err)
	}
	if err := CheckWrite(subject, low); err == nil {
		t.Error("write down allowed")
	} else if !strings.Contains(err.Error(), "no write down") {
		t.Errorf("write-down error = %v", err)
	}
	// Same label: both directions allowed.
	if err := CheckRead(subject, subject); err != nil {
		t.Errorf("read at same label: %v", err)
	}
	if err := CheckWrite(subject, subject); err != nil {
		t.Errorf("write at same label: %v", err)
	}
}

func TestJoinMeet(t *testing.T) {
	a := lbl(Confidential, 1)
	b := lbl(Secret, 2)
	j := a.Join(b)
	if j.Level != Secret || !j.Cats.Contains(Compartment(1).Union(Compartment(2))) {
		t.Errorf("Join = %v", j)
	}
	m := a.Meet(b)
	if m.Level != Confidential || m.Cats != 0 {
		t.Errorf("Meet = %v", m)
	}
}

func TestTopBottom(t *testing.T) {
	labels := []Label{lbl(Unclassified), lbl(Secret, 3), lbl(TopSecret, 1, 5), Top, Bottom}
	for _, l := range labels {
		if !Top.Dominates(l) {
			t.Errorf("Top does not dominate %v", l)
		}
		if !l.Dominates(Bottom) {
			t.Errorf("%v does not dominate Bottom", l)
		}
	}
}

func TestCompartments(t *testing.T) {
	c := Compartment(0).Union(Compartment(5))
	if c.Count() != 2 {
		t.Errorf("Count = %d", c.Count())
	}
	if !c.Contains(Compartment(5)) || c.Contains(Compartment(1)) {
		t.Error("Contains wrong")
	}
	if got := c.String(); got != "{c0,c5}" {
		t.Errorf("String = %q", got)
	}
	if Compartments(0).String() != "{}" {
		t.Errorf("empty String = %q", Compartments(0).String())
	}
	defer func() {
		if recover() == nil {
			t.Error("Compartment(64) did not panic")
		}
	}()
	Compartment(64)
}

func TestLevelNames(t *testing.T) {
	if Unclassified.String() != "unclassified" || TopSecret.String() != "top-secret" {
		t.Error("level names wrong")
	}
	if Level(3).String() != "level-3" {
		t.Errorf("Level(3) = %q", Level(3).String())
	}
	if !Level(0).Valid() || !Level(7).Valid() || Level(8).Valid() || Level(-1).Valid() {
		t.Error("Valid wrong")
	}
}

func genLabel(a uint8, b uint16) Label {
	return Label{Level: Level(a % NLevels), Cats: Compartments(b)}
}

// Property: Dominates is a partial order (reflexive, antisymmetric,
// transitive).
func TestDominatesPartialOrder(t *testing.T) {
	refl := func(a uint8, b uint16) bool {
		l := genLabel(a, b)
		return l.Dominates(l)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	antisym := func(a1 uint8, b1 uint16, a2 uint8, b2 uint16) bool {
		x, y := genLabel(a1, b1), genLabel(a2, b2)
		if x.Dominates(y) && y.Dominates(x) {
			return x.Equal(y)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(a1 uint8, b1 uint16, a2 uint8, b2 uint16, a3 uint8, b3 uint16) bool {
		x, y, z := genLabel(a1, b1), genLabel(a2, b2), genLabel(a3, b3)
		if x.Dominates(y) && y.Dominates(z) {
			return x.Dominates(z)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// Property: Join is the least upper bound and Meet the greatest lower
// bound.
func TestLatticeProperty(t *testing.T) {
	lub := func(a1 uint8, b1 uint16, a2 uint8, b2 uint16) bool {
		x, y := genLabel(a1, b1), genLabel(a2, b2)
		j := x.Join(y)
		if !j.Dominates(x) || !j.Dominates(y) {
			return false
		}
		// Any other upper bound dominates the join.
		u := x.Join(y).Join(genLabel(a1^a2, b1|b2))
		return u.Dominates(j)
	}
	if err := quick.Check(lub, nil); err != nil {
		t.Errorf("join upper bound: %v", err)
	}
	glb := func(a1 uint8, b1 uint16, a2 uint8, b2 uint16) bool {
		x, y := genLabel(a1, b1), genLabel(a2, b2)
		m := x.Meet(y)
		return x.Dominates(m) && y.Dominates(m)
	}
	if err := quick.Check(glb, nil); err != nil {
		t.Errorf("meet lower bound: %v", err)
	}
}

// Property: the flow checks compose safely — if subject s can read
// object a and write object b, then b's label dominates a's, so
// information never flows downward through a subject.
func TestNoDownwardFlowThroughSubject(t *testing.T) {
	f := func(sa uint8, sb uint16, aa uint8, ab uint16, ba uint8, bb uint16) bool {
		s, a, b := genLabel(sa, sb), genLabel(aa, ab), genLabel(ba, bb)
		if CheckRead(s, a) == nil && CheckWrite(s, b) == nil {
			return b.Dominates(a)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelValidEqual(t *testing.T) {
	if !(Label{Level: Secret}).Valid() || (Label{Level: Level(9)}).Valid() {
		t.Error("Valid wrong")
	}
	a := lbl(Secret, 1)
	if !a.Equal(lbl(Secret, 1)) || a.Equal(lbl(Secret, 2)) {
		t.Error("Equal wrong")
	}
}
