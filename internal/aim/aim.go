// Package aim implements the Access Isolation Mechanism: the
// particular set of security controls the project added to Multics to
// realize the MITRE model of sensitivity levels and compartments
// (Bell and LaPadula, 1973). Every piece of information is labelled
// with a sensitivity level and a set of compartments, and security
// checks are made wherever information could cross level or
// compartment boundaries: a process may read an object only if the
// process label dominates the object label (no read up), and may
// write an object only if the object label dominates the process
// label (no write down).
//
// Labels form a lattice under Dominates; Join and Meet compute least
// upper and greatest lower bounds, which is what flow-control
// arguments about combined information need.
package aim

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Level is a sensitivity level. AIM provides eight, 0 (lowest)
// through 7.
type Level int

// NLevels is the number of sensitivity levels.
const NLevels = 8

// Conventional names for the first four levels.
const (
	Unclassified Level = 0
	Confidential Level = 2
	Secret       Level = 5
	TopSecret    Level = 7
)

// Valid reports whether the level is one of the eight AIM provides.
func (l Level) Valid() bool { return l >= 0 && l < NLevels }

func (l Level) String() string {
	switch l {
	case Unclassified:
		return "unclassified"
	case Confidential:
		return "confidential"
	case Secret:
		return "secret"
	case TopSecret:
		return "top-secret"
	default:
		return fmt.Sprintf("level-%d", int(l))
	}
}

// Compartments is a set of compartment (category) bits. AIM provides
// up to 18 compartments; the simulation allows 64.
type Compartments uint64

// MaxCompartments is the number of distinct compartment bits.
const MaxCompartments = 64

// Compartment returns the set containing only compartment i.
func Compartment(i int) Compartments {
	if i < 0 || i >= MaxCompartments {
		panic(fmt.Sprintf("aim: compartment %d out of range", i))
	}
	return Compartments(1) << uint(i)
}

// Contains reports whether c includes every compartment in sub.
func (c Compartments) Contains(sub Compartments) bool { return c&sub == sub }

// Union returns the compartments in either set.
func (c Compartments) Union(o Compartments) Compartments { return c | o }

// Intersect returns the compartments in both sets.
func (c Compartments) Intersect(o Compartments) Compartments { return c & o }

// Count reports the number of compartments in the set.
func (c Compartments) Count() int { return bits.OnesCount64(uint64(c)) }

func (c Compartments) String() string {
	if c == 0 {
		return "{}"
	}
	var names []string
	for i := 0; i < MaxCompartments; i++ {
		if c.Contains(Compartment(i)) {
			names = append(names, fmt.Sprintf("c%d", i))
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// A Label is the sensitivity marking attached to every subject
// (process) and object (segment, directory, message) in the system.
type Label struct {
	Level Level
	Cats  Compartments
}

// Bottom is the lowest label: unclassified, no compartments. It is
// the label of public information and the default for new objects.
var Bottom = Label{Level: Unclassified}

// Top is the highest label.
var Top = Label{Level: TopSecret, Cats: ^Compartments(0)}

func (l Label) String() string { return fmt.Sprintf("%v %v", l.Level, l.Cats) }

// Valid reports whether the label's level is in range.
func (l Label) Valid() bool { return l.Level.Valid() }

// Dominates reports whether information labelled o may flow to a
// holder labelled l: l's level is at least o's and l holds every
// compartment of o. Dominates is a partial order.
func (l Label) Dominates(o Label) bool {
	return l.Level >= o.Level && l.Cats.Contains(o.Cats)
}

// Equal reports label equality.
func (l Label) Equal(o Label) bool { return l == o }

// Comparable reports whether the two labels are ordered either way;
// incomparable labels (disjoint compartments) permit no flow in either
// direction.
func (l Label) Comparable(o Label) bool { return l.Dominates(o) || o.Dominates(l) }

// Join returns the least upper bound: the label of information
// derived from sources labelled l and o.
func (l Label) Join(o Label) Label {
	lv := l.Level
	if o.Level > lv {
		lv = o.Level
	}
	return Label{Level: lv, Cats: l.Cats.Union(o.Cats)}
}

// Meet returns the greatest lower bound.
func (l Label) Meet(o Label) Label {
	lv := l.Level
	if o.Level < lv {
		lv = o.Level
	}
	return Label{Level: lv, Cats: l.Cats.Intersect(o.Cats)}
}

// A FlowError reports a forbidden information flow, naming the rule
// violated.
type FlowError struct {
	Op              string // "read" or "write"
	Subject, Object Label
	Rule            string
}

func (e *FlowError) Error() string {
	return fmt.Sprintf("aim: %s forbidden (%s): subject %v, object %v", e.Op, e.Rule, e.Subject, e.Object)
}

// CheckRead enforces the simple security property: a subject may read
// an object only if the subject's label dominates the object's (no
// read up).
func CheckRead(subject, object Label) error {
	if subject.Dominates(object) {
		return nil
	}
	return &FlowError{Op: "read", Subject: subject, Object: object, Rule: "simple security property: no read up"}
}

// CheckWrite enforces the *-property: a subject may write an object
// only if the object's label dominates the subject's (no write down),
// so that information the subject holds cannot leak to lower labels.
func CheckWrite(subject, object Label) error {
	if object.Dominates(subject) {
		return nil
	}
	return &FlowError{Op: "write", Subject: subject, Object: object, Rule: "*-property: no write down"}
}

// IsFlowError reports whether err is a forbidden-flow error.
func IsFlowError(err error) bool {
	_, ok := err.(*FlowError)
	return ok
}
