package schedsim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// schedule runs tasks under the given strategy and returns the
// decision log rendered one decision per line.
func schedule(t *testing.T, seed int64, build func(ex *Executor)) (string, error) {
	t.Helper()
	ex := New(Config{Seed: seed})
	build(ex)
	err := ex.Run()
	var b strings.Builder
	for _, d := range ex.Decisions() {
		fmt.Fprintln(&b, d)
	}
	return b.String(), err
}

func chatter(n int) func() {
	return func() {
		for i := 0; i < n; i++ {
			Yield(PointYield, "")
		}
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	build := func(ex *Executor) {
		ex.Go("a", chatter(10))
		ex.Go("b", chatter(10))
		ex.Go("c", chatter(10))
	}
	s1, err1 := schedule(t, 42, build)
	s2, err2 := schedule(t, 42, build)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1 != s2 {
		t.Errorf("same seed produced different schedules:\n%s\nvs\n%s", s1, s2)
	}
	s3, err3 := schedule(t, 43, build)
	if err3 != nil {
		t.Fatal(err3)
	}
	if s1 == s3 {
		t.Error("seeds 42 and 43 produced identical schedules over 30 yields: strategy is not consuming the seed")
	}
}

// TestTokenSerializes proves that only one task runs at a time: an
// unsynchronized counter incremented across yield points stays exact.
// Run under -race this is also the proof that token hand-off carries
// the happens-before edges.
func TestTokenSerializes(t *testing.T) {
	counter := 0
	ex := New(Config{Seed: 7})
	for i := 0; i < 4; i++ {
		ex.Go(fmt.Sprintf("t%d", i), func() {
			for j := 0; j < 100; j++ {
				v := counter
				Yield(PointYield, "between read and write")
				counter = v + 1
			}
		})
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	// The yield sits inside the read-modify-write, so with real
	// concurrency updates would be lost; under the token none are...
	if counter == 400 {
		t.Fatal("no interleaving at all: every task ran to completion unpreempted under a random strategy")
	}
	// ...but interleaved read-modify-write pairs DO lose updates —
	// which is the point: the simulator reproduces racy semantics
	// deterministically. The exact count is a function of the seed.
	again := 0
	ex2 := New(Config{Seed: 7})
	for i := 0; i < 4; i++ {
		ex2.Go(fmt.Sprintf("t%d", i), func() {
			for j := 0; j < 100; j++ {
				v := again
				Yield(PointYield, "between read and write")
				again = v + 1
			}
		})
	}
	if err := ex2.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != again {
		t.Errorf("same seed, different lost-update count: %d vs %d", counter, again)
	}
}

func TestLockAcquireSerializesCriticalSections(t *testing.T) {
	var mu sync.Mutex
	counter := 0
	ex := New(Config{Seed: 3})
	for i := 0; i < 4; i++ {
		ex.Go(fmt.Sprintf("t%d", i), func() {
			for j := 0; j < 50; j++ {
				if !LockAcquire(&mu, "counter") {
					mu.Lock()
				}
				v := counter
				Yield(PointYield, "inside critical section")
				counter = v + 1
				mu.Unlock()
			}
		})
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 200 {
		t.Errorf("lost updates under LockAcquire: got %d, want 200", counter)
	}
}

func TestBlockWakesOnPredicate(t *testing.T) {
	turn := 0
	var order []int
	ex := New(Config{Seed: 1})
	for i := 0; i < 3; i++ {
		ex.Go(fmt.Sprintf("t%d", i), func() {
			Block(fmt.Sprintf("turn %d", i), func() bool { return turn == i })
			order = append(order, i)
			turn++
		})
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Errorf("blocked tasks woke out of turn: %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	ex := New(Config{Seed: 9, Name: "dl"})
	ex.Go("waiter", func() {
		Block("the bell that never rings", func() bool { return false })
	})
	ex.Go("bystander", chatter(3))
	err := ex.Run()
	var f *Failure
	if !errors.As(err, &f) || !f.Deadlock {
		t.Fatalf("want deadlock failure, got %v", err)
	}
	if !strings.Contains(f.Error(), "the bell that never rings") {
		t.Errorf("deadlock report does not name the block reason: %v", f)
	}
	if !strings.Contains(f.Error(), "-sched-seed=9") {
		t.Errorf("deadlock report does not carry the seed: %v", f)
	}
}

func TestPanicCapturedWithSeed(t *testing.T) {
	cleanExit := false
	ex := New(Config{Seed: 1977})
	ex.Go("victim", func() {
		Yield(PointYield, "")
		panic("invariant violated")
	})
	ex.Go("other", func() {
		// Long enough that the victim's panic is guaranteed to land
		// first under any strategy that ever schedules the victim.
		chatter(100000)()
		cleanExit = true
	})
	err := ex.Run()
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("want *Failure, got %v", err)
	}
	if f.Task != "victim" || fmt.Sprint(f.Panic) != "invariant violated" {
		t.Errorf("failure misattributed: %+v", f)
	}
	if !strings.Contains(f.Error(), "-sched-seed=1977") {
		t.Errorf("failure does not print the reproducing seed: %v", f)
	}
	if cleanExit {
		// The abort must unwind the surviving task, not run it to
		// completion against a half-failed schedule.
		t.Error("peer task ran to completion after the schedule aborted")
	}
}

func TestAbortReleasesBlockedTasks(t *testing.T) {
	ex := New(Config{Seed: 5})
	ex.Go("blocked", func() {
		Block("forever", func() bool { return false })
		t.Error("Block returned without its predicate becoming true")
	})
	ex.Go("bomb", func() {
		Yield(PointYield, "")
		panic("boom")
	})
	err := ex.Run()
	var f *Failure
	if !errors.As(err, &f) || f.Task != "bomb" {
		t.Fatalf("want bomb's panic, got %v", err)
	}
}

func TestHooksAreNoOpsOffTask(t *testing.T) {
	// No executor active: every hook must fall through.
	Yield(PointLock, "nobody home")
	Block("nobody home", func() bool { t.Error("predicate evaluated"); return false })
	var mu sync.Mutex
	if LockAcquire(&mu, "x") {
		t.Error("LockAcquire claimed to acquire outside a task")
	}
	if OnTask() {
		t.Error("OnTask true outside a task")
	}
}

// TestSweepFindsLostUpdate is the canonical model-checking exercise:
// two tasks perform an unprotected read-modify-write with a yield in
// the window. The baseline (sticky) schedule never preempts and the
// counter is exact; the sweep must discover the interleaving that
// loses an update.
func TestSweepFindsLostUpdate(t *testing.T) {
	lost := 0
	rep, err := Sweep(SweepConfig{
		MaxSchedules:   32,
		MaxPreemptions: 2,
		Window:         func(d Decision) bool { return d.Point == PointMark },
	}, func(s Strategy) (*Executor, error) {
		counter := 0
		ex := New(Config{Strategy: s})
		for i := 0; i < 2; i++ {
			ex.Go(fmt.Sprintf("t%d", i), func() {
				v := counter
				Yield(PointMark, "rmw-window")
				counter = v + 1
			})
		}
		if err := ex.Run(); err != nil {
			return ex, err
		}
		if counter != 2 {
			lost++
		}
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatal("window never opened: sweep was vacuous")
	}
	if lost == 0 {
		t.Errorf("sweep of %d schedules never produced the lost update", rep.Schedules)
	}
	if rep.Truncated {
		t.Errorf("tiny state space should not truncate: %+v", rep)
	}
}

// TestSweepReplayIsExact: re-running a deviation prefix must replay
// the same schedule decisions up to the deviation point.
func TestSweepReplayIsExact(t *testing.T) {
	build := func(s Strategy) *Executor {
		ex := New(Config{Strategy: s})
		ex.Go("a", chatter(5))
		ex.Go("b", chatter(5))
		return ex
	}
	base := build(Replay(nil, Sticky()))
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	ds := base.Decisions()
	if len(ds) < 4 {
		t.Fatalf("baseline too short: %d decisions", len(ds))
	}
	// Replay the first three baseline choices and check they match.
	prefix := []int{ds[0].Chosen, ds[1].Chosen, ds[2].Chosen}
	re := build(Replay(prefix, Sticky()))
	if err := re.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		got, want := re.Decisions()[i], ds[i]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("replay diverged at step %d: got %v, want %v", i, got, want)
		}
	}
}

func TestMaxStepsBackstop(t *testing.T) {
	ex := New(Config{Seed: 2, MaxSteps: 100})
	ex.Go("spinner", func() {
		for {
			Yield(PointYield, "")
		}
	})
	err := ex.Run()
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("want runaway failure, got %v", err)
	}
	if !strings.Contains(fmt.Sprint(f.Panic), "exceeded 100 steps") {
		t.Errorf("unexpected failure: %v", f)
	}
}
