// Package schedsim is a deterministic virtual-time executor for the
// simulated multiprocessor.
//
// The real-goroutine executor (uproc.RunQuantumParallel) runs one
// goroutine per hw.Processor and lets the Go scheduler interleave
// them; that is the right tool for -race throughput, but the
// interleaving it explores is accidental — the PR-4 zero-reclaim race
// and the PR-6 quota-growth races were caught only because a storm
// test happened to hit the window. schedsim replaces accidental
// interleaving with chosen interleaving: N simulated processors run
// as cooperative tasks on one OS thread's worth of concurrency, and a
// Strategy decides, at every yield point, which task runs next.
//
// A task holds a token; only the token holder executes. At each yield
// point (lock acquire, shootdown broadcast, descriptor publication,
// disk completion, quantum boundary, eventcount await, and explicit
// critical-window marks) the holder asks the executor for a
// scheduling decision and the token moves — or stays — accordingly.
// The token travels over per-task channels, so every cross-task
// transition carries a happens-before edge and the race detector
// stays sound under the simulated schedule.
//
// Two strategies matter:
//
//   - Random(seed): seeded pseudo-random interleaving. A run is a pure
//     function of (workload, seed); any invariant violation reports
//     the seed, and rerunning with -sched-seed=<seed> replays the
//     identical schedule.
//   - Replay(prefix, fallback): force an explicit choice sequence,
//     then continue with a fallback. Sweep uses it to explore every
//     alternative decision around a marked critical window,
//     model-checking style, within configured bounds.
//
// Kernel code never imports an executor instance: the hooks (Yield,
// Block, LockAcquire) look up the calling goroutine in the active
// executor's task registry and are no-ops — one atomic load — for
// ordinary goroutines. The same kernel binary therefore runs
// identically under real goroutines and under the simulator.
package schedsim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"multics/internal/goid"
)

// Point classifies a yield point: where in the kernel the scheduling
// decision was taken. Sweeps use it to focus deviations on a window.
type Point int

const (
	// PointStart is the initial dispatch decision before any task runs.
	PointStart Point = iota
	// PointLock is the decision before a ranked mutex acquisition.
	PointLock
	// PointBlock is the decision taken when a task parks on a
	// readiness predicate (lock contention, eventcount await).
	PointBlock
	// PointShootdown is the decision before a ShootdownBus broadcast.
	PointShootdown
	// PointPublish is the decision before a descriptor (SDW/PTE)
	// publication makes a translation visible to other processors.
	PointPublish
	// PointDisk is the decision at a disk record transfer completion.
	PointDisk
	// PointQuantum is the decision at a scheduler quantum boundary.
	PointQuantum
	// PointMark is an explicitly named critical-window marker placed
	// in kernel code (e.g. "zero-reclaim") for sweeps to target.
	PointMark
	// PointYield is an explicit yield from a test or executor body.
	PointYield
	// PointDone is the decision taken when a task finishes.
	PointDone
	// PointDiskQueue is the decision when a request joins a pack's
	// device queue; with PointDisk completions it brackets the
	// submission/completion races of the asynchronous disk pipeline.
	PointDiskQueue

	numPoints
)

var pointNames = [numPoints]string{
	"start", "lock", "block", "shootdown", "publish",
	"disk", "quantum", "mark", "yield", "done", "disk-queue",
}

func (p Point) String() string {
	if p < 0 || p >= numPoints {
		return fmt.Sprintf("point(%d)", int(p))
	}
	return pointNames[p]
}

// A Decision records one scheduling choice: who yielded, where, which
// tasks were runnable, and which was chosen. The decision log is the
// schedule — replaying the same choices reproduces the same run.
type Decision struct {
	// Step is the decision's index in the schedule; it is the
	// executor's virtual clock.
	Step int
	// Point and Detail locate the yield point ("lock", "pageframe").
	Point  Point
	Detail string
	// Task is the task that yielded the token ("" for the initial
	// dispatch).
	Task string
	// Runnable names the tasks eligible to run, in task order.
	Runnable []string
	// Chosen indexes Runnable.
	Chosen int
}

func (d Decision) String() string {
	where := d.Point.String()
	if d.Detail != "" {
		where += ":" + d.Detail
	}
	return fmt.Sprintf("step %d %s %s -> %s of %v",
		d.Step, d.Task, where, d.Runnable[d.Chosen], d.Runnable)
}

// A Strategy chooses, at each decision, which runnable task runs
// next. Choose returns an index into d.Runnable (d.Chosen is not yet
// set); out-of-range returns are clamped to 0.
type Strategy interface {
	Choose(d Decision) int
}

// Random returns a seeded pseudo-random strategy (splitmix64, so the
// sequence is stable across Go releases). The same seed over the same
// workload yields the same schedule.
func Random(seed int64) Strategy {
	return &randomStrategy{state: uint64(seed)}
}

type randomStrategy struct{ state uint64 }

func (r *randomStrategy) Choose(d Decision) int {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(d.Runnable)))
}

// Sticky returns the strategy that keeps running the yielding task
// while it remains runnable — the minimal-preemption baseline sweeps
// deviate from.
func Sticky() Strategy { return stickyStrategy{} }

type stickyStrategy struct{}

func (stickyStrategy) Choose(d Decision) int {
	for i, name := range d.Runnable {
		if name == d.Task {
			return i
		}
	}
	return 0
}

// RoundRobin returns the fair strategy: the token moves to the next
// runnable task after the yielder, cyclically. It interleaves tasks as
// finely as the yield points allow, which keeps retry loops live
// (every retry lets the other tasks progress) — the right fallback for
// sweeps over windows whose recovery path spins until a peer catches
// up.
func RoundRobin() Strategy { return rrStrategy{} }

type rrStrategy struct{}

func (rrStrategy) Choose(d Decision) int {
	for i, name := range d.Runnable {
		if name == d.Task {
			return (i + 1) % len(d.Runnable)
		}
	}
	// The yielder is blocked or done and no longer runnable; spread
	// deterministically by virtual time.
	return d.Step % len(d.Runnable)
}

// Replay returns a strategy that forces the given choice at each of
// the first len(choices) decisions, then defers to fallback. Sweep
// uses it to pin a deviation prefix.
func Replay(choices []int, fallback Strategy) Strategy {
	if fallback == nil {
		fallback = Sticky()
	}
	return &replayStrategy{choices: choices, fallback: fallback}
}

type replayStrategy struct {
	choices  []int
	fallback Strategy
}

func (r *replayStrategy) Choose(d Decision) int {
	if d.Step < len(r.choices) {
		return r.choices[d.Step]
	}
	return r.fallback.Choose(d)
}

// A Failure reports why a simulated schedule could not complete: a
// task panicked (invariant violation, lockrank violation) or every
// task blocked. It always carries the seed so the schedule can be
// replayed.
type Failure struct {
	// Executor is the executor's name.
	Executor string
	// Seed is the schedule seed.
	Seed int64
	// Task is the panicking task ("" for a deadlock).
	Task string
	// Step is the virtual time of the failure.
	Step int
	// Panic is the recovered panic value, nil for a deadlock.
	Panic any
	// Deadlock reports that every live task was blocked on a
	// predicate that can never become true.
	Deadlock bool
	// Reasons lists each blocked task's reason at a deadlock.
	Reasons []string
}

func (f *Failure) Error() string {
	if f.Deadlock {
		return fmt.Sprintf(
			"schedsim[%s]: deadlock at step %d: every task blocked (%s); reproduce with -sched-seed=%d",
			f.Executor, f.Step, strings.Join(f.Reasons, "; "), f.Seed)
	}
	return fmt.Sprintf(
		"schedsim[%s]: task %q failed at step %d: %v; reproduce with -sched-seed=%d",
		f.Executor, f.Task, f.Step, f.Panic, f.Seed)
}

// Config parameterizes an Executor.
type Config struct {
	// Name labels failure reports (default "schedsim").
	Name string
	// Seed seeds the default Random strategy and is echoed in
	// failure reports so runs are reproducible.
	Seed int64
	// Strategy overrides the default Random(Seed).
	Strategy Strategy
	// MaxSteps bounds the schedule length as a runaway backstop
	// (default 1<<22 decisions).
	MaxSteps int
}

type taskState int

const (
	taskRunnable taskState = iota
	taskBlocked
	taskDone
)

type task struct {
	ex    *Executor
	id    int
	name  string
	fn    func()
	gate  chan struct{}
	state taskState
	ready func() bool
	why   string
}

// An Executor runs a set of tasks — simulated processors — under a
// single token so exactly one executes at a time, consulting its
// Strategy at every yield point. Executors are single-use: Go then
// Run once.
type Executor struct {
	name     string
	seed     int64
	strategy Strategy
	maxSteps int

	tasks []*task

	regMu  sync.Mutex
	byGoid map[uint64]*task

	// The fields below are only touched by the token holder (or by
	// Run while every task is parked), so token hand-off over the
	// gate channels orders all access.
	step      int
	decisions []Decision
	aborting  bool
	failure   *Failure

	done    chan struct{}
	running bool
}

// active is the executor currently in Run, nil otherwise. Hooks called
// from goroutines that are not registered tasks are no-ops, so kernel
// code instrumented with yield points behaves identically when no
// simulation is running.
var active atomic.Pointer[Executor]

// errAborted unwinds a task after another task's failure; the task
// wrapper swallows it.
var errAborted = fmt.Errorf("schedsim: schedule aborted")

// New builds an executor. Add tasks with Go, then call Run.
func New(cfg Config) *Executor {
	st := cfg.Strategy
	if st == nil {
		st = Random(cfg.Seed)
	}
	name := cfg.Name
	if name == "" {
		name = "schedsim"
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 22
	}
	return &Executor{
		name:     name,
		seed:     cfg.Seed,
		strategy: st,
		maxSteps: maxSteps,
		byGoid:   make(map[uint64]*task),
		done:     make(chan struct{}),
	}
}

// Go registers a task. Tasks are identified by name in decisions and
// failure reports; names should be unique ("cpu0", "cpu1", ...).
func (ex *Executor) Go(name string, fn func()) {
	if ex.running {
		panic("schedsim: Go after Run")
	}
	ex.tasks = append(ex.tasks, &task{
		ex:   ex,
		id:   len(ex.tasks),
		name: name,
		fn:   fn,
		gate: make(chan struct{}, 1),
	})
}

// Run executes all tasks to completion under the configured strategy
// and returns nil, or the *Failure describing the first panic or
// deadlock. Only one executor may run at a time per process.
func (ex *Executor) Run() error {
	if ex.running {
		panic("schedsim: Run called twice")
	}
	ex.running = true
	if len(ex.tasks) == 0 {
		return nil
	}
	if !active.CompareAndSwap(nil, ex) {
		panic("schedsim: another executor is already running")
	}
	var ready sync.WaitGroup
	for _, t := range ex.tasks {
		ready.Add(1)
		go t.run(&ready)
	}
	// Every task is parked on its gate before the first decision, so
	// Run may touch executor state here without holding the token.
	ready.Wait()
	first := ex.choose(nil, PointStart, "")
	first.gate <- struct{}{}
	<-ex.done
	active.Store(nil)
	if ex.failure != nil {
		return ex.failure
	}
	return nil
}

// Decisions returns the recorded schedule. Valid after Run.
func (ex *Executor) Decisions() []Decision { return ex.decisions }

// Steps returns the virtual time: the number of scheduling decisions
// taken. Valid after Run.
func (ex *Executor) Steps() int { return ex.step }

// Seed returns the seed the executor reports in failures.
func (ex *Executor) Seed() int64 { return ex.seed }

func (t *task) run(ready *sync.WaitGroup) {
	ex := t.ex
	g := goid.ID()
	ex.regMu.Lock()
	ex.byGoid[g] = t
	ex.regMu.Unlock()
	ready.Done()
	<-t.gate
	func() {
		defer func() {
			if r := recover(); r != nil && r != errAborted {
				if ex.failure == nil {
					ex.failure = &Failure{
						Executor: ex.name,
						Seed:     ex.seed,
						Task:     t.name,
						Step:     ex.step,
						Panic:    r,
					}
				}
				ex.aborting = true
			}
		}()
		if !ex.aborting {
			t.fn()
		}
	}()
	ex.regMu.Lock()
	delete(ex.byGoid, g)
	ex.regMu.Unlock()
	t.state = taskDone
	if next := ex.choose(t, PointDone, t.name); next != nil {
		next.gate <- struct{}{}
	} else {
		close(ex.done)
	}
}

// choose records a scheduling decision at the given point and returns
// the task to receive the token, or nil when no live task remains.
// Only the token holder (or Run, before the first dispatch) may call
// it. from is the yielding task, nil at the initial dispatch.
func (ex *Executor) choose(from *task, p Point, detail string) *task {
	if ex.step >= ex.maxSteps && !ex.aborting {
		ex.failure = &Failure{
			Executor: ex.name,
			Seed:     ex.seed,
			Task:     taskName(from),
			Step:     ex.step,
			Panic:    fmt.Sprintf("schedule exceeded %d steps", ex.maxSteps),
		}
		ex.aborting = true
	}
	if ex.aborting {
		// Drain: wake each remaining task in turn so it unwinds via
		// errAborted; readiness predicates no longer apply.
		for _, t := range ex.tasks {
			if t.state != taskDone && t != from {
				t.state = taskRunnable
				t.ready = nil
				return t
			}
		}
		return nil
	}
	// Collect runnable tasks, waking blocked ones whose predicates
	// have become true. Predicates may carry side effects (try-lock
	// acquires and keeps), so a true return transitions the task to
	// runnable exactly once. Evaluation is in task order, which keeps
	// the runnable set — and therefore the schedule — deterministic.
	var run []*task
	for _, t := range ex.tasks {
		switch t.state {
		case taskRunnable:
			run = append(run, t)
		case taskBlocked:
			if t.ready() {
				t.state = taskRunnable
				t.ready = nil
				run = append(run, t)
			}
		}
	}
	if len(run) == 0 {
		var reasons []string
		for _, t := range ex.tasks {
			if t.state == taskBlocked {
				reasons = append(reasons, t.name+": "+t.why)
			}
		}
		if len(reasons) == 0 {
			return nil // every task finished
		}
		// Nothing outside the executor can change state, so blocked
		// predicates that are all false now are false forever.
		ex.failure = &Failure{
			Executor: ex.name,
			Seed:     ex.seed,
			Step:     ex.step,
			Deadlock: true,
			Reasons:  reasons,
		}
		ex.aborting = true
		return ex.choose(from, p, detail)
	}
	d := Decision{
		Step:     ex.step,
		Point:    p,
		Detail:   detail,
		Task:     taskName(from),
		Runnable: make([]string, len(run)),
	}
	for i, t := range run {
		d.Runnable[i] = t.name
	}
	c := ex.strategy.Choose(d)
	if c < 0 || c >= len(run) {
		c = 0
	}
	d.Chosen = c
	ex.decisions = append(ex.decisions, d)
	ex.step++
	return run[c]
}

func taskName(t *task) string {
	if t == nil {
		return ""
	}
	return t.name
}

// yield offers a scheduling decision at point p. The token may move
// to another task; yield returns when this task is scheduled again.
func (ex *Executor) yield(t *task, p Point, detail string) {
	if ex.aborting {
		panic(errAborted)
	}
	next := ex.choose(t, p, detail)
	if next == t {
		return
	}
	if next == nil {
		panic(errAborted)
	}
	next.gate <- struct{}{}
	<-t.gate
	if ex.aborting {
		panic(errAborted)
	}
}

// block parks t until ready() reports true. A true return is consumed
// — predicates that acquire (try-lock) hold their acquisition when
// block returns. Panics with errAborted if the schedule fails first.
func (ex *Executor) block(t *task, why string, ready func() bool) {
	if ex.aborting {
		panic(errAborted)
	}
	if ready() {
		return
	}
	t.state = taskBlocked
	t.ready = ready
	t.why = why
	next := ex.choose(t, PointBlock, why)
	if next == t {
		return
	}
	if next == nil {
		panic(errAborted)
	}
	next.gate <- struct{}{}
	<-t.gate
	if ex.aborting {
		panic(errAborted)
	}
}

func current() (*Executor, *task) {
	ex := active.Load()
	if ex == nil {
		return nil, nil
	}
	ex.regMu.Lock()
	t := ex.byGoid[goid.ID()]
	ex.regMu.Unlock()
	return ex, t
}

// OnTask reports whether the calling goroutine is a task of the
// active executor.
func OnTask() bool {
	_, t := current()
	return t != nil
}

// Yield offers a scheduling decision at point p. A no-op for
// goroutines that are not tasks of the active executor, so kernel
// code may call it unconditionally.
func Yield(p Point, detail string) {
	ex, t := current()
	if t == nil {
		return
	}
	ex.yield(t, p, detail)
}

// Block parks the calling task until ready() reports true; the true
// return is consumed (a try-lock predicate holds the lock when Block
// returns). A no-op for goroutines that are not tasks — such callers
// must block by their own means.
func Block(why string, ready func() bool) {
	ex, t := current()
	if t == nil {
		return
	}
	ex.block(t, why, ready)
}

// LockAcquire cooperatively acquires mu on behalf of the calling
// task: a PointLock decision, then try-lock, parking on contention.
// Returns false when the caller is not a task, in which case the
// caller must acquire mu itself.
func LockAcquire(mu *sync.Mutex, name string) bool {
	ex, t := current()
	if t == nil {
		return false
	}
	ex.yield(t, PointLock, name)
	if mu.TryLock() {
		return true
	}
	ex.block(t, "lock "+name, mu.TryLock)
	return true
}
