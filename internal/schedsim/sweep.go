// Systematic schedule sweeps: bounded model checking of the
// interleavings around a critical window.
//
// A sweep starts from the baseline schedule (Sticky: no preemption
// beyond what blocking forces) and then, for every decision inside
// the window, re-runs the workload with that decision flipped to each
// alternative runnable task — and recurses, up to MaxPreemptions
// forced deviations per schedule. Because a run is a pure function of
// its choice sequence, a deviation prefix replays exactly and the
// explored schedules form a tree rooted at the baseline.
package schedsim

import (
	"fmt"
	"os"
	"strconv"
)

// EnvBudget returns sweep budgets, raised by the environment when the
// MULTICS_SWEEP_SCHEDULES / MULTICS_SWEEP_PREEMPTIONS variables are
// set: the nightly CI tier uses them to explore far more
// interleavings than a commit gate can afford. Unset or unparsable
// variables leave the given defaults unchanged.
func EnvBudget(schedules, preemptions int) (int, int) {
	if v, err := strconv.Atoi(os.Getenv("MULTICS_SWEEP_SCHEDULES")); err == nil && v > 0 {
		schedules = v
	}
	if v, err := strconv.Atoi(os.Getenv("MULTICS_SWEEP_PREEMPTIONS")); err == nil && v > 0 {
		preemptions = v
	}
	return schedules, preemptions
}

// SweepConfig bounds a systematic sweep.
type SweepConfig struct {
	// MaxSchedules bounds the number of distinct schedules executed
	// (default 64). Truncation is reported, never silent.
	MaxSchedules int
	// MaxPreemptions bounds the forced deviations per schedule
	// (default 2): the classic small-preemption-bound heuristic —
	// most interleaving bugs need only one or two preemptions in the
	// window.
	MaxPreemptions int
	// Window selects the decisions eligible for deviation; nil means
	// every decision (usually far too many — filter by Point or
	// Detail, e.g. PointMark "zero-reclaim").
	Window func(Decision) bool
	// Fallback is the strategy used beyond the deviation prefix
	// (default Sticky). RoundRobin keeps retry loops live when the
	// window's recovery path needs the peer to progress.
	Fallback Strategy
}

// SweepReport summarizes a sweep.
type SweepReport struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// WindowDecisions is the number of in-window decisions seen
	// across all schedules; zero means the window never opened and
	// the sweep was vacuous.
	WindowDecisions int
	// Truncated reports that MaxSchedules was reached with deviation
	// prefixes still queued.
	Truncated bool
}

// Sweep explores interleavings around cfg.Window. run must build a
// fresh system, execute one schedule under the given strategy, and
// return the executor (for its decision log) plus any error — an
// executor Failure or a caller assertion. The first error aborts the
// sweep and is returned wrapped with the deviation prefix that
// produced it.
func Sweep(cfg SweepConfig, run func(Strategy) (*Executor, error)) (SweepReport, error) {
	maxSched := cfg.MaxSchedules
	if maxSched == 0 {
		maxSched = 64
	}
	maxDev := cfg.MaxPreemptions
	if maxDev == 0 {
		maxDev = 2
	}
	type prefix struct {
		choices []int
		depth   int
	}
	queue := []prefix{{nil, 0}}
	seen := map[string]bool{"": true}
	var rep SweepReport
	for len(queue) > 0 {
		if rep.Schedules >= maxSched {
			rep.Truncated = true
			break
		}
		pfx := queue[0]
		queue = queue[1:]
		ex, err := run(Replay(pfx.choices, cfg.Fallback))
		rep.Schedules++
		if err != nil {
			return rep, fmt.Errorf("sweep schedule (deviation prefix %v): %w", pfx.choices, err)
		}
		ds := ex.Decisions()
		if pfx.depth >= maxDev {
			for i := len(pfx.choices); i < len(ds); i++ {
				if cfg.Window == nil || cfg.Window(ds[i]) {
					rep.WindowDecisions++
				}
			}
			continue
		}
		// Deviate only at steps beyond this prefix: earlier steps were
		// already expanded when their own prefix ran.
		for i := len(pfx.choices); i < len(ds); i++ {
			d := ds[i]
			if cfg.Window != nil && !cfg.Window(d) {
				continue
			}
			rep.WindowDecisions++
			for alt := 0; alt < len(d.Runnable); alt++ {
				if alt == d.Chosen {
					continue
				}
				choices := make([]int, 0, i+1)
				for j := 0; j < i; j++ {
					choices = append(choices, ds[j].Chosen)
				}
				choices = append(choices, alt)
				key := fmt.Sprint(choices)
				if seen[key] {
					continue
				}
				seen[key] = true
				queue = append(queue, prefix{choices, pfx.depth + 1})
			}
		}
	}
	return rep, nil
}
