// Package netmux implements the connection of the system to
// multiplexed networks — the area Ciccarelli's project attacked.
//
// Two multiplexed communication streams attach to Multics: the
// ARPANET and the local front-end processor with its terminals. In
// the original organization each network's full protocol handler
// lived in ring zero (about 7,000 lines for the two streams, 20% of
// the supervisor), and attaching a third network would have added a
// third in-kernel handler: kernel bulk grew linearly with networks.
//
// The redesign keeps only a small, network-independent demultiplexer
// in the kernel — it reads enough of each frame to route it to the
// owning connection — and moves the per-network protocol processing
// to the user domain. The kernel residue shrinks below 1,000 lines
// and grows only slightly per attached network.
package netmux

import (
	"errors"
	"fmt"
	"sync"

	"multics/internal/hw"
	"multics/internal/trace"
)

// ModuleName is the demultiplexer's name in kernel traces. The mux is
// not a module of the Figure-4 lattice — it is the small kernel
// residue Ciccarelli's redesign leaves behind — but its events carry
// a registered name like every manager's.
const ModuleName = "net-demux"

// Mode selects the organization.
type Mode int

const (
	// PerNetworkKernel: one full protocol handler per network in
	// ring zero (the original organization).
	PerNetworkKernel Mode = iota
	// GenericKernel: a network-independent demultiplexer in the
	// kernel; protocol handlers in the user ring.
	GenericKernel
)

func (m Mode) String() string {
	if m == PerNetworkKernel {
		return "per-network-kernel"
	}
	return "generic-kernel"
}

// Source-line model for the census: the original organization costs
// PerNetworkLines of kernel per attached network; the redesign costs
// a fixed GenericBaseLines plus a small per-network attachment stub.
const (
	PerNetworkLines    = 3500
	GenericBaseLines   = 800
	GenericPerNetLines = 60
)

// KernelLines reports the kernel source lines for n attached networks
// under each organization.
func KernelLines(m Mode, n int) int {
	if m == PerNetworkKernel {
		return PerNetworkLines * n
	}
	return GenericBaseLines + GenericPerNetLines*n
}

// Algorithm-body costs per frame.
const (
	bodyProtocol = 90 // full protocol processing for one frame
	bodyDemux    = 15 // generic header inspection and routing
)

// A Frame is one unit arriving on a multiplexed stream: a channel
// number and a payload.
type Frame struct {
	Channel int
	Payload []hw.Word
}

// A Network frames and unframes one multiplexed stream.
type Network interface {
	// Name identifies the network ("arpanet", "front-end").
	Name() string
	// Channels reports how many subchannels the stream multiplexes.
	Channels() int
	// Process performs the per-network protocol work for a frame,
	// returning the connection-ready data.
	Process(f Frame) ([]hw.Word, error)
}

// ErrBadChannel reports a frame for a channel the network does not
// multiplex.
var ErrBadChannel = errors.New("netmux: no such channel")

// A Delivery is one demultiplexed unit handed to a connection.
type Delivery struct {
	Network string
	Channel int
	Data    []hw.Word
}

// DefaultQueueCap bounds each (network, channel) delivery queue. A
// connection that stops receiving fills its own queue and loses its
// own frames — counted, never silent — while every other channel of
// the mux keeps flowing.
const DefaultQueueCap = 64

// Drop classes carried in EvNetDrop's Arg1.
const (
	// DropQueueFull: the channel's bounded delivery queue was full.
	DropQueueFull = 0
	// DropProtocol: the per-network protocol handler rejected the
	// frame after the demux routed it.
	DropProtocol = 1
	// DropNoCredit: the connection was out of flow-control credits
	// (emitted by the front-end processor, not the mux).
	DropNoCredit = 2
)

// Stats are the mux's delivery counters.
type Stats struct {
	// Delivered counts frames handed to a connection (queued or
	// consumed by a subscriber).
	Delivered int64
	// Dropped counts frames discarded because a channel's bounded
	// delivery queue was full.
	Dropped int64
	// ProtocolErrors counts frames the per-network protocol handler
	// rejected — work that was metered but produced no delivery.
	ProtocolErrors int64
}

// A Mux is the multiplexed-stream attachment point.
type Mux struct {
	Mode  Mode
	meter *hw.CostMeter

	mu       sync.Mutex
	networks map[string]Network
	order    []string
	// queues hold delivered data per (network, channel), each bounded
	// by queueCap.
	queues map[string]map[int][]Delivery
	// subs are per-network delivery subscribers: when set, deliveries
	// bypass the queues and go straight to the consumer (the
	// front-end processor's connection plane).
	subs      map[string]func(Delivery)
	queueCap  int
	delivered int64
	dropped   int64
	protoErrs int64
	trace     trace.Sink
}

// New returns a mux in the given organization.
func New(mode Mode, meter *hw.CostMeter) *Mux {
	return &Mux{
		Mode:     mode,
		meter:    meter,
		networks: make(map[string]Network),
		queues:   make(map[string]map[int][]Delivery),
		subs:     make(map[string]func(Delivery)),
		queueCap: DefaultQueueCap,
	}
}

// SetTrace routes the mux's frame and drop events to s (nil turns
// tracing off). Events carry ModuleName; register it with the
// recorder.
func (m *Mux) SetTrace(s trace.Sink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trace = s
}

// SetQueueCap rebounds the per-channel delivery queues (non-positive
// restores DefaultQueueCap). Existing queued deliveries are kept even
// if they exceed the new bound.
func (m *Mux) SetQueueCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = DefaultQueueCap
	}
	m.queueCap = n
}

// Subscribe registers fn as the network's delivery consumer:
// deliveries for that network are handed to fn instead of the
// per-channel queues, so a connection plane can route them without
// double buffering. One subscriber per network; fn runs without the
// mux lock held.
func (m *Mux) Subscribe(network string, fn func(Delivery)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.networks[network]; !ok {
		return fmt.Errorf("netmux: no network %s", network)
	}
	if m.subs[network] != nil {
		return fmt.Errorf("netmux: network %s already subscribed", network)
	}
	m.subs[network] = fn
	return nil
}

// Attach connects a network to the system.
func (m *Mux) Attach(n Network) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.networks[n.Name()]; ok {
		return fmt.Errorf("netmux: network %s already attached", n.Name())
	}
	m.networks[n.Name()] = n
	m.order = append(m.order, n.Name())
	m.queues[n.Name()] = make(map[int][]Delivery)
	return nil
}

// Networks returns the attached network names in attachment order.
func (m *Mux) Networks() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// KernelLines reports the kernel bulk of the current attachment set.
func (m *Mux) KernelLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return KernelLines(m.Mode, len(m.networks))
}

// Deliver processes one arriving frame. In the original organization
// the whole protocol runs in the kernel; in the redesign the kernel
// only demultiplexes, and the protocol body runs in the user ring
// (cpu, which may be nil, carries the ring crossings).
func (m *Mux) Deliver(cpu *hw.Processor, network string, f Frame) error {
	m.mu.Lock()
	n, ok := m.networks[network]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("netmux: no network %s", network)
	}
	if f.Channel < 0 || f.Channel >= n.Channels() {
		return fmt.Errorf("%w: %s channel %d", ErrBadChannel, network, f.Channel)
	}
	var data []hw.Word
	var err error
	var kernelCost int64
	switch m.Mode {
	case PerNetworkKernel:
		// Everything in ring zero: one handler per network.
		kernelCost = bodyProtocol
		err = m.gate(cpu, func() error {
			m.meter.AddBody(bodyProtocol, hw.PLI)
			data, err = n.Process(f)
			return err
		})
	case GenericKernel:
		// The kernel routes; the protocol runs as user code, then
		// hands the connection data back through a gate.
		kernelCost = bodyDemux
		if gerr := m.gate(cpu, func() error {
			m.meter.AddBody(bodyDemux, hw.PLI)
			return nil
		}); gerr != nil {
			return gerr
		}
		m.meter.AddBody(bodyProtocol, hw.PLI)
		data, err = n.Process(f)
	}
	if err != nil {
		// The frame's cost is already on the meter (the demux routed
		// it and the protocol body ran before rejecting); count and
		// trace the failure so the spent cycles are attributable
		// rather than vanishing with the error return.
		m.mu.Lock()
		m.protoErrs++
		sink := m.trace
		m.mu.Unlock()
		if sink != nil {
			sink.Emit(trace.Event{
				Kind: trace.EvNetDrop, Module: ModuleName, Cost: kernelCost,
				Arg0: int64(f.Channel), Arg1: DropProtocol, Arg2: int64(len(f.Payload)),
			})
		}
		return err
	}
	d := Delivery{Network: network, Channel: f.Channel, Data: data}
	m.mu.Lock()
	sub := m.subs[network]
	sink := m.trace
	if sub == nil {
		q := m.queues[network]
		if len(q[f.Channel]) >= m.queueCap {
			// The channel's consumer fell behind: its own queue is
			// full, its own frame is lost. Other channels are
			// untouched — per-connection isolation is the point.
			m.dropped++
			depth := len(q[f.Channel])
			m.mu.Unlock()
			if sink != nil {
				sink.Emit(trace.Event{
					Kind: trace.EvNetDrop, Module: ModuleName, Cost: kernelCost,
					Arg0: int64(f.Channel), Arg1: DropQueueFull, Arg2: int64(depth),
				})
			}
			return nil
		}
		q[f.Channel] = append(q[f.Channel], d)
	}
	m.delivered++
	m.mu.Unlock()
	if sink != nil {
		consumed := int64(0)
		if sub != nil {
			consumed = 1
		}
		sink.Emit(trace.Event{
			Kind: trace.EvNetFrame, Module: ModuleName, Cost: kernelCost,
			Arg0: int64(f.Channel), Arg1: int64(len(data)), Arg2: consumed,
		})
	}
	if sub != nil {
		sub(d)
	}
	return nil
}

func (m *Mux) gate(cpu *hw.Processor, fn func() error) error {
	if cpu == nil {
		return fn()
	}
	return cpu.GateCall(hw.KernelRing, true, fn)
}

// Receive pops the next delivery for a connection.
func (m *Mux) Receive(network string, channel int) (Delivery, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queues[network]
	if !ok || len(q[channel]) == 0 {
		return Delivery{}, false
	}
	d := q[channel][0]
	q[channel] = q[channel][1:]
	return d, true
}

// Delivered reports the total frames delivered.
func (m *Mux) Delivered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

// MuxStats reports the delivery counters.
func (m *Mux) MuxStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Delivered: m.delivered, Dropped: m.dropped, ProtocolErrors: m.protoErrs}
}

// Arpanet is a simulated ARPANET attachment: frames carry a host-link
// header word the protocol strips and checksums.
type Arpanet struct {
	Links int
}

// Name implements Network.
func (a Arpanet) Name() string { return "arpanet" }

// Channels implements Network.
func (a Arpanet) Channels() int { return a.Links }

// Process strips the leader word and verifies its parity bit, the
// simulated NCP-style protocol work.
func (a Arpanet) Process(f Frame) ([]hw.Word, error) {
	if len(f.Payload) < 1 {
		return nil, errors.New("arpanet: frame without leader")
	}
	leader := f.Payload[0]
	var parity hw.Word
	for _, w := range f.Payload[1:] {
		parity ^= w
	}
	if leader&1 != parity&1 {
		return nil, errors.New("arpanet: leader parity mismatch")
	}
	return f.Payload[1:], nil
}

// FrontEnd is the simulated local front-end processor multiplexing
// terminals: frames carry characters with a trailing end-of-block
// sentinel.
type FrontEnd struct {
	Terminals int
}

// Name implements Network.
func (t FrontEnd) Name() string { return "front-end" }

// Channels implements Network.
func (t FrontEnd) Channels() int { return t.Terminals }

// Process strips the end-of-block sentinel and rejects unterminated
// blocks.
func (t FrontEnd) Process(f Frame) ([]hw.Word, error) {
	if len(f.Payload) == 0 || f.Payload[len(f.Payload)-1] != 0o777 {
		return nil, errors.New("front-end: unterminated block")
	}
	return f.Payload[:len(f.Payload)-1], nil
}

// InternodeOps bounds the internode opcode word; Internode rejects
// frames whose leading word is not a known operation.
const InternodeOps = 4

// Internode is the kernel-to-kernel stream: frames carry a leading
// operation word and an operation-specific body, and the protocol
// work is only validating the header — the segment machinery on the
// serving node does the rest, behind its own gate.
type Internode struct {
	Links int
}

// Name implements Network.
func (i Internode) Name() string { return "internode" }

// Channels implements Network.
func (i Internode) Channels() int { return i.Links }

// Process validates the operation header and passes the frame
// through.
func (i Internode) Process(f Frame) ([]hw.Word, error) {
	if len(f.Payload) == 0 {
		return nil, errors.New("internode: empty frame")
	}
	if op := f.Payload[0]; op >= InternodeOps {
		return nil, fmt.Errorf("internode: unknown operation %d", uint64(op))
	}
	return f.Payload, nil
}
