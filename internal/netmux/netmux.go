// Package netmux implements the connection of the system to
// multiplexed networks — the area Ciccarelli's project attacked.
//
// Two multiplexed communication streams attach to Multics: the
// ARPANET and the local front-end processor with its terminals. In
// the original organization each network's full protocol handler
// lived in ring zero (about 7,000 lines for the two streams, 20% of
// the supervisor), and attaching a third network would have added a
// third in-kernel handler: kernel bulk grew linearly with networks.
//
// The redesign keeps only a small, network-independent demultiplexer
// in the kernel — it reads enough of each frame to route it to the
// owning connection — and moves the per-network protocol processing
// to the user domain. The kernel residue shrinks below 1,000 lines
// and grows only slightly per attached network.
package netmux

import (
	"errors"
	"fmt"
	"sync"

	"multics/internal/hw"
)

// Mode selects the organization.
type Mode int

const (
	// PerNetworkKernel: one full protocol handler per network in
	// ring zero (the original organization).
	PerNetworkKernel Mode = iota
	// GenericKernel: a network-independent demultiplexer in the
	// kernel; protocol handlers in the user ring.
	GenericKernel
)

func (m Mode) String() string {
	if m == PerNetworkKernel {
		return "per-network-kernel"
	}
	return "generic-kernel"
}

// Source-line model for the census: the original organization costs
// PerNetworkLines of kernel per attached network; the redesign costs
// a fixed GenericBaseLines plus a small per-network attachment stub.
const (
	PerNetworkLines    = 3500
	GenericBaseLines   = 800
	GenericPerNetLines = 60
)

// KernelLines reports the kernel source lines for n attached networks
// under each organization.
func KernelLines(m Mode, n int) int {
	if m == PerNetworkKernel {
		return PerNetworkLines * n
	}
	return GenericBaseLines + GenericPerNetLines*n
}

// Algorithm-body costs per frame.
const (
	bodyProtocol = 90 // full protocol processing for one frame
	bodyDemux    = 15 // generic header inspection and routing
)

// A Frame is one unit arriving on a multiplexed stream: a channel
// number and a payload.
type Frame struct {
	Channel int
	Payload []hw.Word
}

// A Network frames and unframes one multiplexed stream.
type Network interface {
	// Name identifies the network ("arpanet", "front-end").
	Name() string
	// Channels reports how many subchannels the stream multiplexes.
	Channels() int
	// Process performs the per-network protocol work for a frame,
	// returning the connection-ready data.
	Process(f Frame) ([]hw.Word, error)
}

// ErrBadChannel reports a frame for a channel the network does not
// multiplex.
var ErrBadChannel = errors.New("netmux: no such channel")

// A Delivery is one demultiplexed unit handed to a connection.
type Delivery struct {
	Network string
	Channel int
	Data    []hw.Word
}

// A Mux is the multiplexed-stream attachment point.
type Mux struct {
	Mode  Mode
	meter *hw.CostMeter

	mu       sync.Mutex
	networks map[string]Network
	order    []string
	// queues hold delivered data per (network, channel).
	queues    map[string]map[int][]Delivery
	delivered int64
}

// New returns a mux in the given organization.
func New(mode Mode, meter *hw.CostMeter) *Mux {
	return &Mux{
		Mode:     mode,
		meter:    meter,
		networks: make(map[string]Network),
		queues:   make(map[string]map[int][]Delivery),
	}
}

// Attach connects a network to the system.
func (m *Mux) Attach(n Network) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.networks[n.Name()]; ok {
		return fmt.Errorf("netmux: network %s already attached", n.Name())
	}
	m.networks[n.Name()] = n
	m.order = append(m.order, n.Name())
	m.queues[n.Name()] = make(map[int][]Delivery)
	return nil
}

// Networks returns the attached network names in attachment order.
func (m *Mux) Networks() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// KernelLines reports the kernel bulk of the current attachment set.
func (m *Mux) KernelLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return KernelLines(m.Mode, len(m.networks))
}

// Deliver processes one arriving frame. In the original organization
// the whole protocol runs in the kernel; in the redesign the kernel
// only demultiplexes, and the protocol body runs in the user ring
// (cpu, which may be nil, carries the ring crossings).
func (m *Mux) Deliver(cpu *hw.Processor, network string, f Frame) error {
	m.mu.Lock()
	n, ok := m.networks[network]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("netmux: no network %s", network)
	}
	if f.Channel < 0 || f.Channel >= n.Channels() {
		return fmt.Errorf("%w: %s channel %d", ErrBadChannel, network, f.Channel)
	}
	var data []hw.Word
	var err error
	switch m.Mode {
	case PerNetworkKernel:
		// Everything in ring zero: one handler per network.
		err = m.gate(cpu, func() error {
			m.meter.AddBody(bodyProtocol, hw.PLI)
			data, err = n.Process(f)
			return err
		})
	case GenericKernel:
		// The kernel routes; the protocol runs as user code, then
		// hands the connection data back through a gate.
		if gerr := m.gate(cpu, func() error {
			m.meter.AddBody(bodyDemux, hw.PLI)
			return nil
		}); gerr != nil {
			return gerr
		}
		m.meter.AddBody(bodyProtocol, hw.PLI)
		data, err = n.Process(f)
	}
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[network]
	q[f.Channel] = append(q[f.Channel], Delivery{Network: network, Channel: f.Channel, Data: data})
	m.delivered++
	return nil
}

func (m *Mux) gate(cpu *hw.Processor, fn func() error) error {
	if cpu == nil {
		return fn()
	}
	return cpu.GateCall(hw.KernelRing, true, fn)
}

// Receive pops the next delivery for a connection.
func (m *Mux) Receive(network string, channel int) (Delivery, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queues[network]
	if !ok || len(q[channel]) == 0 {
		return Delivery{}, false
	}
	d := q[channel][0]
	q[channel] = q[channel][1:]
	return d, true
}

// Delivered reports the total frames delivered.
func (m *Mux) Delivered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

// Arpanet is a simulated ARPANET attachment: frames carry a host-link
// header word the protocol strips and checksums.
type Arpanet struct {
	Links int
}

// Name implements Network.
func (a Arpanet) Name() string { return "arpanet" }

// Channels implements Network.
func (a Arpanet) Channels() int { return a.Links }

// Process strips the leader word and verifies its parity bit, the
// simulated NCP-style protocol work.
func (a Arpanet) Process(f Frame) ([]hw.Word, error) {
	if len(f.Payload) < 1 {
		return nil, errors.New("arpanet: frame without leader")
	}
	leader := f.Payload[0]
	var parity hw.Word
	for _, w := range f.Payload[1:] {
		parity ^= w
	}
	if leader&1 != parity&1 {
		return nil, errors.New("arpanet: leader parity mismatch")
	}
	return f.Payload[1:], nil
}

// FrontEnd is the simulated local front-end processor multiplexing
// terminals: frames carry characters with a trailing end-of-block
// sentinel.
type FrontEnd struct {
	Terminals int
}

// Name implements Network.
func (t FrontEnd) Name() string { return "front-end" }

// Channels implements Network.
func (t FrontEnd) Channels() int { return t.Terminals }

// Process strips the end-of-block sentinel and rejects unterminated
// blocks.
func (t FrontEnd) Process(f Frame) ([]hw.Word, error) {
	if len(f.Payload) == 0 || f.Payload[len(f.Payload)-1] != 0o777 {
		return nil, errors.New("front-end: unterminated block")
	}
	return f.Payload[:len(f.Payload)-1], nil
}
