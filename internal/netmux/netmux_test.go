package netmux

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"multics/internal/hw"
	"multics/internal/trace"
)

func arpaFrame(channel int, words ...hw.Word) Frame {
	var parity hw.Word
	for _, w := range words {
		parity ^= w
	}
	payload := append([]hw.Word{parity & 1}, words...)
	return Frame{Channel: channel, Payload: payload}
}

func feFrame(channel int, words ...hw.Word) Frame {
	return Frame{Channel: channel, Payload: append(append([]hw.Word{}, words...), 0o777)}
}

func newMux(t *testing.T, mode Mode) (*Mux, *hw.CostMeter) {
	t.Helper()
	meter := &hw.CostMeter{}
	m := New(mode, meter)
	if err := m.Attach(Arpanet{Links: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(FrontEnd{Terminals: 8}); err != nil {
		t.Fatal(err)
	}
	return m, meter
}

func TestDeliverAndReceive(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "arpanet", arpaFrame(2, 10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(nil, "front-end", feFrame(5, 'h', 'i')); err != nil {
		t.Fatal(err)
	}
	d, ok := m.Receive("arpanet", 2)
	if !ok || len(d.Data) != 3 || d.Data[0] != 10 {
		t.Errorf("arpanet delivery = %+v, %v", d, ok)
	}
	d, ok = m.Receive("front-end", 5)
	if !ok || len(d.Data) != 2 || d.Data[1] != 'i' {
		t.Errorf("front-end delivery = %+v, %v", d, ok)
	}
	if _, ok := m.Receive("arpanet", 2); ok {
		t.Error("second receive returned data")
	}
	if m.Delivered() != 2 {
		t.Errorf("Delivered = %d", m.Delivered())
	}
}

func TestChannelIsolation(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "arpanet", arpaFrame(1, 7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Receive("arpanet", 0); ok {
		t.Error("delivery leaked to another channel")
	}
	if _, ok := m.Receive("arpanet", 1); !ok {
		t.Error("delivery missing on its own channel")
	}
}

func TestValidation(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "nonet", arpaFrame(0, 1)); err == nil {
		t.Error("delivery to unattached network succeeded")
	}
	if err := m.Deliver(nil, "arpanet", arpaFrame(99, 1)); !errors.Is(err, ErrBadChannel) {
		t.Errorf("bad channel = %v", err)
	}
	if err := m.Attach(Arpanet{Links: 1}); err == nil {
		t.Error("double attach succeeded")
	}
	// Protocol errors surface.
	if err := m.Deliver(nil, "arpanet", Frame{Channel: 0, Payload: []hw.Word{0, 99}}); err == nil {
		t.Error("parity mismatch accepted")
	}
	if err := m.Deliver(nil, "arpanet", Frame{Channel: 0}); err == nil {
		t.Error("empty arpanet frame accepted")
	}
	if err := m.Deliver(nil, "front-end", Frame{Channel: 0, Payload: []hw.Word{'x'}}); err == nil {
		t.Error("unterminated front-end block accepted")
	}
}

func TestKernelGrowthShapes(t *testing.T) {
	// P7: kernel bulk grows linearly with networks in the old
	// organization, and only slightly in the new one; at the
	// paper's two networks the old costs 7,000 lines and the new
	// residue is below 1,000.
	if got := KernelLines(PerNetworkKernel, 2); got != 7000 {
		t.Errorf("per-network lines at 2 nets = %d, want 7000", got)
	}
	if got := KernelLines(GenericKernel, 2); got >= 1000 {
		t.Errorf("generic lines at 2 nets = %d, want < 1000", got)
	}
	// Marginal cost of a third network.
	oldMarginal := KernelLines(PerNetworkKernel, 3) - KernelLines(PerNetworkKernel, 2)
	newMarginal := KernelLines(GenericKernel, 3) - KernelLines(GenericKernel, 2)
	if oldMarginal != PerNetworkLines {
		t.Errorf("old marginal = %d", oldMarginal)
	}
	if newMarginal >= oldMarginal/10 {
		t.Errorf("new marginal = %d vs old %d; should grow only slightly", newMarginal, oldMarginal)
	}
	m, _ := newMux(t, GenericKernel)
	if m.KernelLines() != KernelLines(GenericKernel, 2) {
		t.Errorf("mux KernelLines = %d", m.KernelLines())
	}
	if len(m.Networks()) != 2 {
		t.Errorf("Networks = %v", m.Networks())
	}
}

func TestGenericKernelSpendsLessKernelTime(t *testing.T) {
	// The kernel-resident cycles per frame shrink in the new
	// organization (the protocol work still happens, but outside).
	kernelCycles := func(mode Mode) int64 {
		m, meter := newMux(t, mode)
		cpu := hw.NewProcessor(0, hw.NewMemory(1), meter)
		cpu.Ring = hw.UserRing
		// Count only ring-zero work: measure with a second meter
		// attached to the gate path by differencing total minus
		// known user-side body.
		meter.Reset()
		for i := 0; i < 100; i++ {
			if err := m.Deliver(cpu, "arpanet", arpaFrame(0, hw.Word(i))); err != nil {
				t.Fatal(err)
			}
		}
		return meter.Cycles()
	}
	oldTotal := kernelCycles(PerNetworkKernel)
	newTotal := kernelCycles(GenericKernel)
	// Total work is similar (same protocol), within 25%.
	diff := oldTotal - newTotal
	if diff < 0 {
		diff = -diff
	}
	if diff*4 > oldTotal {
		t.Errorf("total frame cost diverged: old %d, new %d", oldTotal, newTotal)
	}
}

func TestModeNames(t *testing.T) {
	if PerNetworkKernel.String() == "" || GenericKernel.String() == "" {
		t.Error("mode names empty")
	}
	if (Arpanet{}).Name() != "arpanet" || (FrontEnd{}).Name() != "front-end" {
		t.Error("network names wrong")
	}
}

// recordSink collects emitted events for assertions.
type recordSink struct {
	mu     sync.Mutex
	events []trace.Event
}

func (r *recordSink) Emit(e trace.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordSink) byKind(k trace.Kind) []trace.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []trace.Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestErrorPathsAreCountedAndTraced(t *testing.T) {
	for _, mode := range []Mode{PerNetworkKernel, GenericKernel} {
		t.Run(mode.String(), func(t *testing.T) {
			m, _ := newMux(t, mode)
			sink := &recordSink{}
			m.SetTrace(sink)
			// ErrBadChannel: rejected before any protocol work, so no
			// protocol-error counter moves.
			if err := m.Deliver(nil, "arpanet", arpaFrame(99, 1)); !errors.Is(err, ErrBadChannel) {
				t.Fatalf("bad channel = %v", err)
			}
			if st := m.MuxStats(); st.ProtocolErrors != 0 {
				t.Fatalf("bad channel counted as protocol error: %+v", st)
			}
			// Arpanet parity mismatch.
			if err := m.Deliver(nil, "arpanet", Frame{Channel: 0, Payload: []hw.Word{0, 99}}); err == nil {
				t.Fatal("parity mismatch accepted")
			}
			// Front-end unterminated block.
			if err := m.Deliver(nil, "front-end", Frame{Channel: 0, Payload: []hw.Word{'x'}}); err == nil {
				t.Fatal("unterminated block accepted")
			}
			st := m.MuxStats()
			if st.ProtocolErrors != 2 {
				t.Fatalf("ProtocolErrors = %d, want 2", st.ProtocolErrors)
			}
			if st.Delivered != 0 || st.Dropped != 0 {
				t.Fatalf("stats moved unexpectedly: %+v", st)
			}
			drops := sink.byKind(trace.EvNetDrop)
			if len(drops) != 2 {
				t.Fatalf("EvNetDrop events = %d, want 2", len(drops))
			}
			for _, e := range drops {
				if e.Arg1 != DropProtocol {
					t.Errorf("drop class = %d, want DropProtocol", e.Arg1)
				}
				if e.Module != ModuleName {
					t.Errorf("drop module = %q", e.Module)
				}
				if e.Cost == 0 {
					t.Error("protocol failure traced with zero cost: the metered work is invisible")
				}
			}
		})
	}
}

func TestGenericProtocolFailureIsMetered(t *testing.T) {
	// The satellite fix: a Process failure after the demux gate must
	// leave its cost on the meter (demux + protocol body), not vanish
	// with the early return.
	m, meter := newMux(t, GenericKernel)
	meter.Reset()
	before := meter.Cycles()
	if err := m.Deliver(nil, "front-end", Frame{Channel: 0, Payload: []hw.Word{'x'}}); err == nil {
		t.Fatal("unterminated block accepted")
	}
	spent := meter.Cycles() - before
	if spent == 0 {
		t.Fatal("protocol failure cost nothing: the demux and protocol work disappeared")
	}
}

func TestBoundedQueueDropsAreCounted(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	sink := &recordSink{}
	m.SetTrace(sink)
	m.SetQueueCap(3)
	for i := 0; i < 5; i++ {
		if err := m.Deliver(nil, "front-end", feFrame(1, hw.Word(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := m.MuxStats()
	if st.Delivered != 3 || st.Dropped != 2 {
		t.Fatalf("delivered/dropped = %d/%d, want 3/2", st.Delivered, st.Dropped)
	}
	// The slow channel lost its own frames; another channel of the
	// same network is untouched.
	if err := m.Deliver(nil, "front-end", feFrame(2, 'o', 'k')); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Receive("front-end", 2); !ok {
		t.Fatal("healthy channel starved by a neighbor's overflow")
	}
	if got := len(sink.byKind(trace.EvNetDrop)); got != 2 {
		t.Fatalf("EvNetDrop events = %d, want 2", got)
	}
	for _, e := range sink.byKind(trace.EvNetDrop) {
		if e.Arg1 != DropQueueFull {
			t.Errorf("drop class = %d, want DropQueueFull", e.Arg1)
		}
	}
	// Draining the queue reopens the channel.
	for i := 0; i < 3; i++ {
		if _, ok := m.Receive("front-end", 1); !ok {
			t.Fatalf("queued delivery %d missing", i)
		}
	}
	if err := m.Deliver(nil, "front-end", feFrame(1, 'y')); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Receive("front-end", 1); !ok {
		t.Fatal("channel still dead after drain")
	}
}

func TestSubscriberBypassesQueues(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	var got []Delivery
	if err := m.Subscribe("front-end", func(d Delivery) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe("front-end", func(Delivery) {}); err == nil {
		t.Fatal("double subscribe succeeded")
	}
	if err := m.Subscribe("nonet", func(Delivery) {}); err == nil {
		t.Fatal("subscribe to unattached network succeeded")
	}
	if err := m.Deliver(nil, "front-end", feFrame(3, 'a', 'b')); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Channel != 3 || len(got[0].Data) != 2 {
		t.Fatalf("subscriber saw %+v", got)
	}
	if _, ok := m.Receive("front-end", 3); ok {
		t.Fatal("subscribed delivery also queued")
	}
	if m.Delivered() != 1 {
		t.Fatalf("Delivered = %d", m.Delivered())
	}
}

// TestConcurrentDeliverReceiveStorm hammers Deliver and Receive from
// many goroutines under -race: every frame is either received or
// counted dropped, never lost silently.
func TestConcurrentDeliverReceiveStorm(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	m.SetQueueCap(8)
	const (
		producers = 4
		consumers = 4
		perProd   = 500
		channels  = 8
	)
	var wg sync.WaitGroup
	var received atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				got := false
				for ch := c % channels; ch < channels; ch += consumers {
					if _, ok := m.Receive("front-end", ch); ok {
						received.Add(1)
						got = true
					}
				}
				if !got {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(c)
	}
	var deliverErrs atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				f := feFrame(i%channels, hw.Word(p), hw.Word(i))
				if err := m.Deliver(nil, "front-end", f); err != nil {
					deliverErrs.Add(1)
				}
			}
		}(p)
	}
	// Wait for producers, then let consumers drain what remains.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			goto drained
		default:
		}
		st := m.MuxStats()
		if st.Delivered+st.Dropped >= producers*perProd {
			break
		}
	}
drained:
	close(stop)
	<-done
	// Final drain on the main goroutine.
	for ch := 0; ch < channels; ch++ {
		for {
			if _, ok := m.Receive("front-end", ch); !ok {
				break
			}
			received.Add(1)
		}
	}
	if deliverErrs.Load() != 0 {
		t.Fatalf("%d well-formed frames rejected", deliverErrs.Load())
	}
	st := m.MuxStats()
	total := int64(producers * perProd)
	if st.Delivered+st.Dropped != total {
		t.Fatalf("delivered %d + dropped %d != %d sent", st.Delivered, st.Dropped, total)
	}
	if received.Load() != st.Delivered {
		t.Fatalf("received %d != delivered %d: frames lost silently", received.Load(), st.Delivered)
	}
}
