package netmux

import (
	"errors"
	"testing"

	"multics/internal/hw"
)

func arpaFrame(channel int, words ...hw.Word) Frame {
	var parity hw.Word
	for _, w := range words {
		parity ^= w
	}
	payload := append([]hw.Word{parity & 1}, words...)
	return Frame{Channel: channel, Payload: payload}
}

func feFrame(channel int, words ...hw.Word) Frame {
	return Frame{Channel: channel, Payload: append(append([]hw.Word{}, words...), 0o777)}
}

func newMux(t *testing.T, mode Mode) (*Mux, *hw.CostMeter) {
	t.Helper()
	meter := &hw.CostMeter{}
	m := New(mode, meter)
	if err := m.Attach(Arpanet{Links: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(FrontEnd{Terminals: 8}); err != nil {
		t.Fatal(err)
	}
	return m, meter
}

func TestDeliverAndReceive(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "arpanet", arpaFrame(2, 10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(nil, "front-end", feFrame(5, 'h', 'i')); err != nil {
		t.Fatal(err)
	}
	d, ok := m.Receive("arpanet", 2)
	if !ok || len(d.Data) != 3 || d.Data[0] != 10 {
		t.Errorf("arpanet delivery = %+v, %v", d, ok)
	}
	d, ok = m.Receive("front-end", 5)
	if !ok || len(d.Data) != 2 || d.Data[1] != 'i' {
		t.Errorf("front-end delivery = %+v, %v", d, ok)
	}
	if _, ok := m.Receive("arpanet", 2); ok {
		t.Error("second receive returned data")
	}
	if m.Delivered() != 2 {
		t.Errorf("Delivered = %d", m.Delivered())
	}
}

func TestChannelIsolation(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "arpanet", arpaFrame(1, 7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Receive("arpanet", 0); ok {
		t.Error("delivery leaked to another channel")
	}
	if _, ok := m.Receive("arpanet", 1); !ok {
		t.Error("delivery missing on its own channel")
	}
}

func TestValidation(t *testing.T) {
	m, _ := newMux(t, GenericKernel)
	if err := m.Deliver(nil, "nonet", arpaFrame(0, 1)); err == nil {
		t.Error("delivery to unattached network succeeded")
	}
	if err := m.Deliver(nil, "arpanet", arpaFrame(99, 1)); !errors.Is(err, ErrBadChannel) {
		t.Errorf("bad channel = %v", err)
	}
	if err := m.Attach(Arpanet{Links: 1}); err == nil {
		t.Error("double attach succeeded")
	}
	// Protocol errors surface.
	if err := m.Deliver(nil, "arpanet", Frame{Channel: 0, Payload: []hw.Word{0, 99}}); err == nil {
		t.Error("parity mismatch accepted")
	}
	if err := m.Deliver(nil, "arpanet", Frame{Channel: 0}); err == nil {
		t.Error("empty arpanet frame accepted")
	}
	if err := m.Deliver(nil, "front-end", Frame{Channel: 0, Payload: []hw.Word{'x'}}); err == nil {
		t.Error("unterminated front-end block accepted")
	}
}

func TestKernelGrowthShapes(t *testing.T) {
	// P7: kernel bulk grows linearly with networks in the old
	// organization, and only slightly in the new one; at the
	// paper's two networks the old costs 7,000 lines and the new
	// residue is below 1,000.
	if got := KernelLines(PerNetworkKernel, 2); got != 7000 {
		t.Errorf("per-network lines at 2 nets = %d, want 7000", got)
	}
	if got := KernelLines(GenericKernel, 2); got >= 1000 {
		t.Errorf("generic lines at 2 nets = %d, want < 1000", got)
	}
	// Marginal cost of a third network.
	oldMarginal := KernelLines(PerNetworkKernel, 3) - KernelLines(PerNetworkKernel, 2)
	newMarginal := KernelLines(GenericKernel, 3) - KernelLines(GenericKernel, 2)
	if oldMarginal != PerNetworkLines {
		t.Errorf("old marginal = %d", oldMarginal)
	}
	if newMarginal >= oldMarginal/10 {
		t.Errorf("new marginal = %d vs old %d; should grow only slightly", newMarginal, oldMarginal)
	}
	m, _ := newMux(t, GenericKernel)
	if m.KernelLines() != KernelLines(GenericKernel, 2) {
		t.Errorf("mux KernelLines = %d", m.KernelLines())
	}
	if len(m.Networks()) != 2 {
		t.Errorf("Networks = %v", m.Networks())
	}
}

func TestGenericKernelSpendsLessKernelTime(t *testing.T) {
	// The kernel-resident cycles per frame shrink in the new
	// organization (the protocol work still happens, but outside).
	kernelCycles := func(mode Mode) int64 {
		m, meter := newMux(t, mode)
		cpu := hw.NewProcessor(0, hw.NewMemory(1), meter)
		cpu.Ring = hw.UserRing
		// Count only ring-zero work: measure with a second meter
		// attached to the gate path by differencing total minus
		// known user-side body.
		meter.Reset()
		for i := 0; i < 100; i++ {
			if err := m.Deliver(cpu, "arpanet", arpaFrame(0, hw.Word(i))); err != nil {
				t.Fatal(err)
			}
		}
		return meter.Cycles()
	}
	oldTotal := kernelCycles(PerNetworkKernel)
	newTotal := kernelCycles(GenericKernel)
	// Total work is similar (same protocol), within 25%.
	diff := oldTotal - newTotal
	if diff < 0 {
		diff = -diff
	}
	if diff*4 > oldTotal {
		t.Errorf("total frame cost diverged: old %d, new %d", oldTotal, newTotal)
	}
}

func TestModeNames(t *testing.T) {
	if PerNetworkKernel.String() == "" || GenericKernel.String() == "" {
		t.Error("mode names empty")
	}
	if (Arpanet{}).Name() != "arpanet" || (FrontEnd{}).Name() != "front-end" {
		t.Error("network names wrong")
	}
}
