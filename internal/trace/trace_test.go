package trace

import (
	"strings"
	"testing"
)

type fakeClock struct{ c int64 }

func (f *fakeClock) Cycles() int64 { return f.c }

func TestRecorderStampsAndCounts(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(8, clk)
	r.Register("page-frame-manager", "disk-record-manager")

	clk.c = 100
	r.Emit(Event{Kind: EvPageFetch, Module: "page-frame-manager", Cost: 330})
	clk.c = 250
	r.Emit(Event{Kind: EvDiskRead, Module: "disk-record-manager", Cost: 3000})

	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Seq != 1 || ev[0].Cycle != 100 || ev[0].Kind != EvPageFetch {
		t.Errorf("first event wrong: %+v", ev[0])
	}
	if ev[1].Seq != 2 || ev[1].Cycle != 250 {
		t.Errorf("second event wrong: %+v", ev[1])
	}

	s := r.Snapshot()
	if s.Events != 2 {
		t.Errorf("snapshot events = %d, want 2", s.Events)
	}
	pf := s.Modules["page-frame-manager"]
	if pf.Ops[EvPageFetch] != 1 || pf.Cycles[EvPageFetch] != 330 {
		t.Errorf("page-frame stats wrong: %+v", pf)
	}
	if got := s.TotalCycles(); got != 3330 {
		t.Errorf("TotalCycles = %d, want 3330", got)
	}
}

func TestRingDropsOldest(t *testing.T) {
	r := NewRecorder(3, nil)
	r.Register("m")
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: EvIPC, Module: "m", Arg0: int64(i)})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d retained events, want 3", len(ev))
	}
	if ev[0].Arg0 != 2 || ev[2].Arg0 != 4 {
		t.Errorf("ring kept wrong events: %+v", ev)
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	// Counters survive the drop.
	if s := r.Snapshot(); s.Modules["m"].Ops[EvIPC] != 5 {
		t.Errorf("ops = %d, want 5", s.Modules["m"].Ops[EvIPC])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: EvFault, Module: "x"})
	if ev := r.Events(); ev != nil {
		t.Errorf("nil recorder Events = %v", ev)
	}
	if u := r.Unknown(); u != nil {
		t.Errorf("nil recorder Unknown = %v", u)
	}
	s := r.Snapshot()
	if s.Events != 0 || len(s.Modules) != 0 {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
}

func TestUnknownModuleLint(t *testing.T) {
	r := NewRecorder(4, nil)
	r.Register("known")
	r.Emit(Event{Kind: EvIPC, Module: "known"})
	r.Emit(Event{Kind: EvIPC, Module: "drifted"})
	u := r.Unknown()
	if len(u) != 1 || u[0] != "drifted" {
		t.Errorf("Unknown = %v, want [drifted]", u)
	}
}

func TestSnapshotSince(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(16, clk)
	r.Register("a", "b")
	clk.c = 10
	r.Emit(Event{Kind: EvFault, Module: "a", Cost: 50, Arg0: 1})
	before := r.Snapshot()
	clk.c = 40
	r.Emit(Event{Kind: EvFault, Module: "a", Cost: 50, Arg0: 1})
	r.Emit(Event{Kind: EvDispatch, Module: "b", Cost: 80})
	diff := r.Snapshot().Since(before)
	if diff.Events != 2 || diff.Cycle != 30 {
		t.Errorf("diff events=%d cycle=%d, want 2, 30", diff.Events, diff.Cycle)
	}
	a := diff.Modules["a"]
	if a.Ops[EvFault] != 1 || a.Cycles[EvFault] != 50 || a.Faults[1] != 1 {
		t.Errorf("diff module a = %+v", a)
	}
	if diff.Modules["b"].Cycles[EvDispatch] != 80 {
		t.Errorf("diff module b = %+v", diff.Modules["b"])
	}
}

func TestTableAndPromDeterministic(t *testing.T) {
	build := func() Snapshot {
		clk := &fakeClock{}
		r := NewRecorder(16, clk)
		r.Register("low", "high", "idle")
		clk.c = 5
		r.Emit(Event{Kind: EvDiskRead, Module: "low", Cost: 3000})
		clk.c = 9
		r.Emit(Event{Kind: EvGateCross, Module: "high", Cost: 30})
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	layers := [][]string{{"low"}, {"high", "idle"}}
	if s1.Table(layers) != s2.Table(layers) {
		t.Error("Table not deterministic")
	}
	if s1.PromText() != s2.PromText() {
		t.Error("PromText not deterministic")
	}
	tab := s1.Table(layers)
	// All registered modules appear, even with zero events.
	for _, name := range []string{"low", "high", "idle"} {
		if !strings.Contains(tab, name) {
			t.Errorf("table missing module %q:\n%s", name, tab)
		}
	}
	if strings.Contains(tab, "UNREGISTERED") {
		t.Errorf("unexpected unregistered row:\n%s", tab)
	}
	prom := s1.PromText()
	if !strings.Contains(prom, `multics_module_cycles_total{module="low"} 3000`) {
		t.Errorf("prom missing low cycles:\n%s", prom)
	}
	if !strings.Contains(prom, `multics_module_ops_total{module="high",kind="gate-cross"} 1`) {
		t.Errorf("prom missing high ops:\n%s", prom)
	}
}

func TestFormatEventsStable(t *testing.T) {
	ev := []Event{
		{Seq: 1, Cycle: 10, Kind: EvFault, Module: "m", Cost: 50, Arg0: 1, Arg1: 2, Arg2: 3},
		{Seq: 2, Cycle: 20, Kind: EvAdvance, Module: "m", Arg0: 7},
	}
	a, b := FormatEvents(ev), FormatEvents(ev)
	if a != b {
		t.Error("FormatEvents not deterministic")
	}
	if !strings.Contains(a, "fault") || !strings.Contains(a, "advance") {
		t.Errorf("missing kind names:\n%s", a)
	}
}

func TestRobustnessKindsNamedAndCounted(t *testing.T) {
	// The fault plane's and salvager's kinds are real members of the
	// kind space: named, formatted, and attributed like any other.
	for _, k := range []Kind{EvFaultInjected, EvSalvageRepair} {
		if int(k) >= NumKinds {
			t.Fatalf("kind %d outside NumKinds", int(k))
		}
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind(%d) unnamed: %q", int(k), s)
		}
	}
	r := NewRecorder(8, nil)
	r.Register("disk-record-manager", "volume-salvager")
	r.Emit(Event{Kind: EvFaultInjected, Module: "disk-record-manager", Arg0: 2, Arg1: 1})
	r.Emit(Event{Kind: EvSalvageRepair, Module: "volume-salvager", Arg0: 4})
	s := r.Snapshot()
	if s.Modules["disk-record-manager"].Ops[EvFaultInjected] != 1 {
		t.Error("fault-injected not attributed to the disk manager")
	}
	if s.Modules["volume-salvager"].Ops[EvSalvageRepair] != 1 {
		t.Error("salvage-repair not attributed to the salvager")
	}
	if len(r.Unknown()) != 0 {
		t.Errorf("registered modules flagged unknown: %v", r.Unknown())
	}
	out := FormatEvents(r.Events())
	if !strings.Contains(out, "fault-injected") || !strings.Contains(out, "salvage-repair") {
		t.Errorf("kind names missing from formatted stream:\n%s", out)
	}
}
