// Spans: the latency layer of the meters. Events answer "what
// happened and what did it cost"; spans answer "how long did the
// compound operation take, and where inside it did the time go". A
// span is a fixed-size begin/end record stamped from the simulated
// cycle clock, nested per processor, so a page-fault service span
// contains its disk-read and shootdown children and the retained
// stream supports a critical-path decomposition and a folded-stack
// (flamegraph) export.
//
// The hot-path discipline matches events: instrumented code guards
// every site with a nil check on a SpanSink obtained once via
// SpanSinkOf, and Begin/End write into preallocated fixed-size
// structures — per-slot stacks of fixed depth, a preallocated span
// ring, and 64-bucket log₂ histograms whose stat blocks are allocated
// once per (module, kind). Durations are simulated cycles, so
// single-processor runs are byte-deterministic.
package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// SpanKind identifies one class of compound kernel operation.
type SpanKind uint8

const (
	// SpanFaultService: one page-fault service in the page frame
	// manager, from entry to unlock-and-notify (Arg is the page).
	SpanFaultService SpanKind = iota
	// SpanDiskRead: one record transferred from a pack (Arg is the
	// record address).
	SpanDiskRead
	// SpanDiskWrite: one record or batch transferred to a pack (Arg
	// is the record address, or the batch size for a batch).
	SpanDiskWrite
	// SpanShootdown: a cross-processor associative-memory
	// invalidation broadcast (Arg is the page or segment number).
	SpanShootdown
	// SpanGate: a protected gate call — both ring crossings plus the
	// kernel body between them (Arg is the ring entered).
	SpanGate
	// SpanSignal: one upward-signal handler run by the dispatch loop
	// (the module is the signal's target).
	SpanSignal
	// SpanQuantum: one scheduler quantum — dispatch, user body, and
	// preemption (Arg is the quantum's index in its RunQuantum call).
	SpanQuantum
	// SpanVPDispatch: one work item run by a kernel-bound virtual
	// processor (Arg is the virtual processor id).
	SpanVPDispatch
	// SpanLockWait: a processor blocked on a locked page descriptor
	// until the holder's notify (Arg is the page).
	SpanLockWait

	// NumSpanKinds is the size of per-kind arrays.
	NumSpanKinds = int(SpanLockWait) + 1
)

var spanKindNames = [NumSpanKinds]string{
	"fault-service", "disk-read", "disk-write", "shootdown", "gate",
	"signal-handle", "quantum", "vp-dispatch", "lock-wait",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("span(%d)", int(k))
}

// A Span is one completed compound operation. The value is fixed-size
// so the span ring never allocates.
type Span struct {
	// ID is the span's identity, assigned at begin time; parents
	// always have smaller IDs than their children.
	ID uint64
	// Parent is the ID of the enclosing span on the same processor,
	// zero for a root.
	Parent uint64
	// CPU identifies the processor the span ran on, as processor id
	// plus one; zero means outside any processor's dispatch.
	CPU int32
	// Kind classifies the operation.
	Kind SpanKind
	// Module is the operating module's name in the dependency graph.
	Module string
	// Proc is the user process that was running on the span's
	// processor when it ended, zero when none was dispatched.
	Proc uint64
	// Start and End are the simulated cycle clock at begin and end.
	Start, End int64
	// Child is the portion of the span's cycles spent inside nested
	// child spans; Children counts them.
	Child    int64
	Children int32
	// Arg is kind-specific (see the SpanKind constants).
	Arg int64
}

// Cycles reports the span's total duration in simulated cycles.
func (s Span) Cycles() int64 { return s.End - s.Start }

// Self reports the span's duration minus the time inside child spans.
func (s Span) Self() int64 { return s.Cycles() - s.Child }

func (s Span) String() string {
	cpu := "-"
	if s.CPU > 0 {
		cpu = fmt.Sprintf("%d", s.CPU-1)
	}
	return fmt.Sprintf("%8d %10d %10d p%-2s %-13s %-26s parent=%-8d cyc=%-8d self=%-8d kids=%-3d proc=%-4d arg=%d",
		s.ID, s.Start, s.End, cpu, s.Kind, s.Module, s.Parent, s.Cycles(), s.Self(), s.Children, s.Proc, s.Arg)
}

// SpanBuckets is the number of log₂ latency buckets per (module,
// kind): bucket 0 holds zero-cycle spans, bucket i (i ≥ 1) holds
// durations in [2^(i-1), 2^i − 1], and the top bucket absorbs
// everything beyond.
const SpanBuckets = 64

// bucketOf maps a duration to its log₂ bucket.
func bucketOf(d int64) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= SpanBuckets {
		b = SpanBuckets - 1
	}
	return b
}

// BucketUpper reports the inclusive upper bound of bucket i: zero for
// bucket 0, 2^i − 1 otherwise. Percentiles are reported as bucket
// upper bounds, so they are deterministic and overestimate the true
// value by at most 2×.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// A SpanKey names one latency histogram: the operating module and the
// span kind.
type SpanKey struct {
	Module string
	Kind   SpanKind
}

// SpanStats is one (module, kind) latency histogram: fixed-size, so
// updating it on the hot path allocates nothing.
type SpanStats struct {
	// Count is completed spans; Cycles their total duration; Child
	// the portion of Cycles inside nested child spans.
	Count, Cycles, Child int64
	// Max is the exact largest duration seen (a running maximum: in a
	// Since diff it is the maximum at the later snapshot, not the
	// interval's).
	Max int64
	// Buckets counts spans by log₂ duration bucket (see SpanBuckets).
	Buckets [SpanBuckets]int64
}

// Self reports the histogram's total cycles minus time inside child
// spans.
func (h SpanStats) Self() int64 { return h.Cycles - h.Child }

// Percentile reports the latency at or below which the fraction q
// (0 < q ≤ 1) of spans completed, as the containing bucket's upper
// bound clamped to Max — deterministic, and an overestimate of at
// most 2×. Percentile(1) equals Max exactly.
func (h SpanStats) Percentile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for i := 0; i < SpanBuckets; i++ {
		cum += h.Buckets[i]
		if cum >= rank {
			u := BucketUpper(i)
			if u > h.Max {
				u = h.Max
			}
			return u
		}
	}
	return h.Max
}

func (h SpanStats) sub(prev SpanStats) SpanStats {
	out := SpanStats{
		Count:  h.Count - prev.Count,
		Cycles: h.Cycles - prev.Cycles,
		Child:  h.Child - prev.Child,
		Max:    h.Max, // running maximum; see the field comment
	}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// ProcStats is one user process's share of the meters: the self-time
// (span cycles minus child-span cycles, so nothing is double-counted)
// of every span that ended while the process was running.
type ProcStats struct {
	Cycles int64
	Spans  int64
}

func (p ProcStats) sub(prev ProcStats) ProcStats {
	return ProcStats{Cycles: p.Cycles - prev.Cycles, Spans: p.Spans - prev.Spans}
}

// A SpanSink consumes begin/end span marks in addition to events.
// *Recorder satisfies it. Instrumented modules obtain one with
// SpanSinkOf and guard every site with a nil check, mirroring the
// event discipline.
type SpanSink interface {
	Sink
	BeginSpan(kind SpanKind, module string, arg int64)
	EndSpan(kind SpanKind)
}

// SpanSinkOf reports s as a SpanSink, nil when s is nil, not
// span-capable, or a typed-nil *Recorder.
func SpanSinkOf(s Sink) SpanSink {
	if r, ok := s.(*Recorder); ok {
		if r == nil {
			return nil
		}
		return r
	}
	ss, ok := s.(SpanSink)
	if !ok {
		return nil
	}
	return ss
}

// A ProcessBinder learns which user process a processor is running,
// for per-process cycle attribution. *Recorder satisfies it; the
// scheduler calls it at dispatch time.
type ProcessBinder interface {
	SetRunningProcess(pid uint64)
}

// spanSlots is one per-processor span stack per possible BindCPU
// binding, plus slot 0 for unbound goroutines.
const spanSlots = 65

// MaxSpanDepth bounds span nesting per processor; a begin past the
// limit is dropped (and its matching end absorbed) rather than grown.
const MaxSpanDepth = 32

// spanFrame is one open span on a processor's stack.
type spanFrame struct {
	id       uint64
	kind     SpanKind
	module   string
	arg      int64
	start    int64
	child    int64
	children int32
}

type spanStack struct {
	depth    int
	overflow int // begins dropped past MaxSpanDepth, to absorb their ends
	frames   [MaxSpanDepth]spanFrame
}

// spanState is the recorder's span machinery, guarded by the
// recorder's mutex.
type spanState struct {
	buf        []Span // completed-span ring, preallocated
	start      int    // index of the oldest retained span
	n          int    // retained spans
	seq        uint64 // spans ever begun
	done       uint64 // spans ever completed
	dropped    uint64 // completed spans overwritten by ring wrap
	mismatched uint64 // ends with no matching begin

	stacks  [spanSlots]spanStack
	curProc [spanSlots]uint64

	stats map[SpanKey]*SpanStats
	procs map[uint64]*ProcStats
}

func (s *spanState) init(capacity int) {
	s.buf = make([]Span, capacity)
	s.stats = make(map[SpanKey]*SpanStats)
	s.procs = make(map[uint64]*ProcStats)
}

// BeginSpan opens a span of the given kind on the calling goroutine's
// processor slot. A nil recorder drops the mark.
func (r *Recorder) BeginSpan(kind SpanKind, module string, arg int64) {
	if r == nil {
		return
	}
	slot := int(boundCPU()) % spanSlots
	r.mu.Lock()
	st := &r.sp.stacks[slot]
	if st.depth >= MaxSpanDepth {
		st.overflow++
		r.mu.Unlock()
		return
	}
	r.sp.seq++
	var start int64
	if r.clock != nil {
		start = r.clock.Cycles()
	}
	st.frames[st.depth] = spanFrame{id: r.sp.seq, kind: kind, module: module, arg: arg, start: start}
	st.depth++
	r.mu.Unlock()
}

// EndSpan closes the innermost open span on the calling goroutine's
// processor slot, which must be of the given kind: the duration is
// charged to the (module, kind) histogram, to the enclosing span's
// child time, and — self-time only — to the running user process. A
// mismatched end is counted and otherwise ignored.
func (r *Recorder) EndSpan(kind SpanKind) {
	if r == nil {
		return
	}
	slot := int(boundCPU()) % spanSlots
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.sp.stacks[slot]
	if st.overflow > 0 {
		st.overflow--
		return
	}
	if st.depth == 0 || st.frames[st.depth-1].kind != kind {
		r.sp.mismatched++
		return
	}
	st.depth--
	f := st.frames[st.depth]
	var end int64
	if r.clock != nil {
		end = r.clock.Cycles()
	}
	dur := end - f.start
	var parent uint64
	if st.depth > 0 {
		p := &st.frames[st.depth-1]
		parent = p.id
		p.child += dur
		p.children++
	}
	pid := r.sp.curProc[slot]
	sp := Span{
		ID: f.id, Parent: parent, CPU: int32(slot), Kind: kind, Module: f.module,
		Proc: pid, Start: f.start, End: end, Child: f.child, Children: f.children, Arg: f.arg,
	}
	s := &r.sp
	if s.n == len(s.buf) {
		s.buf[s.start] = sp
		s.start = (s.start + 1) % len(s.buf)
		s.dropped++
	} else {
		s.buf[(s.start+s.n)%len(s.buf)] = sp
		s.n++
	}
	s.done++
	key := SpanKey{Module: f.module, Kind: kind}
	h, ok := s.stats[key]
	if !ok {
		h = new(SpanStats)
		s.stats[key] = h
	}
	h.Count++
	h.Cycles += dur
	h.Child += f.child
	if dur > h.Max {
		h.Max = dur
	}
	h.Buckets[bucketOf(dur)]++
	if pid != 0 {
		pa, ok := s.procs[pid]
		if !ok {
			pa = new(ProcStats)
			s.procs[pid] = pa
		}
		pa.Cycles += dur - f.child
		pa.Spans++
	}
}

// SetRunningProcess records which user process the calling
// goroutine's processor is running; span self-time is attributed to
// it until the next call. Zero means none.
func (r *Recorder) SetRunningProcess(pid uint64) {
	if r == nil {
		return
	}
	slot := int(boundCPU()) % spanSlots
	r.mu.Lock()
	r.sp.curProc[slot] = pid
	r.mu.Unlock()
}

// Spans returns the retained completed spans, completion order,
// oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.sp.n)
	for i := 0; i < r.sp.n; i++ {
		out[i] = r.sp.buf[(r.sp.start+i)%len(r.sp.buf)]
	}
	return out
}

// SpansDropped reports how many completed spans the ring has
// overwritten.
func (r *Recorder) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sp.dropped
}

// SpanMismatches reports how many EndSpan calls found no matching
// open span — an instrumentation bug if nonzero.
func (r *Recorder) SpanMismatches() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sp.mismatched
}

// spanKeys returns the snapshot's histogram keys sorted by module
// then kind.
func (s Snapshot) spanKeys() []SpanKey {
	keys := make([]SpanKey, 0, len(s.Spans))
	for key := range s.Spans {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Module != keys[j].Module {
			return keys[i].Module < keys[j].Module
		}
		return keys[i].Kind < keys[j].Kind
	})
	return keys
}

// FormatSpans renders a span slice one line per span, a fixed format
// suitable for byte-identical comparison across runs.
func FormatSpans(spans []Span) string {
	var b strings.Builder
	for _, s := range spans {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FoldedStacks renders completed spans in the collapsed-stack format
// flamegraph tools consume: one line per distinct ancestry path,
// "module:kind;module:kind;... self-cycles", aggregated and sorted. A
// span whose parent was overwritten by the ring roots its own stack;
// zero-self-time spans contribute no width and are omitted.
func FoldedStacks(spans []Span) string {
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	agg := make(map[string]int64)
	var parts []string
	for i := range spans {
		sp := &spans[i]
		self := sp.Self()
		if self <= 0 {
			continue
		}
		parts = parts[:0]
		// Parents begin before children, so IDs strictly decrease up
		// the chain and the walk terminates.
		for cur := sp; cur != nil; cur = byID[cur.Parent] {
			parts = append(parts, cur.Module+":"+cur.Kind.String())
		}
		for l, r := 0, len(parts)-1; l < r; l, r = l+1, r-1 {
			parts[l], parts[r] = parts[r], parts[l]
		}
		agg[strings.Join(parts, ";")] += self
	}
	paths := make([]string, 0, len(agg))
	for p := range agg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		b.WriteString(p)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(agg[p], 10))
		b.WriteByte('\n')
	}
	return b.String()
}
