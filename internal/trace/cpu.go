package trace

import (
	"sync"
	"sync/atomic"

	"multics/internal/goid"
)

// Processor attribution. Most trace events are emitted by object
// managers that have no idea which simulated CPU invoked them: the
// manager is entered by an ordinary call, not a hardware dispatch.
// The scheduler therefore binds each goroutine that drives a
// processor to that processor's id, and the recorder stamps every
// unstamped event with the binding of the goroutine that emitted it.
// When no goroutine is bound — the deterministic single-processor
// mode never binds — the lookup is a single atomic load, so the
// default mode pays nothing and stays byte-identical across runs.

const bindShards = 64

type bindShard struct {
	mu  sync.Mutex
	cpu map[uint64]int32
}

var (
	bindCount atomic.Int64
	bindTab   [bindShards]bindShard
)

// BindCPU associates the calling goroutine with the simulated
// processor id, so events it emits through any Recorder are
// attributed to that processor. It returns the function that removes
// the binding, which must be called from the same goroutine.
// Bindings nest: unbinding restores the binding that was in force.
func BindCPU(cpu int) func() {
	g := goid.ID()
	s := &bindTab[g%bindShards]
	s.mu.Lock()
	if s.cpu == nil {
		s.cpu = make(map[uint64]int32)
	}
	prev, had := s.cpu[g]
	s.cpu[g] = int32(cpu) + 1
	s.mu.Unlock()
	if !had {
		bindCount.Add(1)
	}
	return func() {
		s.mu.Lock()
		if had {
			s.cpu[g] = prev
		} else {
			delete(s.cpu, g)
		}
		s.mu.Unlock()
		if !had {
			bindCount.Add(-1)
		}
	}
}

// BoundCPU reports the calling goroutine's processor binding as the
// processor id plus one, zero when unbound. The cost meter uses it to
// attribute cycles per processor; like event stamping, it is a single
// atomic load when no binding exists anywhere.
func BoundCPU() int32 { return boundCPU() }

// boundCPU returns the calling goroutine's processor binding (id plus
// one), zero if none.
func boundCPU() int32 {
	if bindCount.Load() == 0 {
		return 0
	}
	g := goid.ID()
	s := &bindTab[g%bindShards]
	s.mu.Lock()
	c := s.cpu[g]
	s.mu.Unlock()
	return c
}
