package trace

import (
	"sync"
	"testing"
)

// TestConcurrentEmitGapFreeSeq drives the recorder from many
// goroutines at once — the multiprocessor kernel's emission pattern —
// and requires the ring's sequence numbering to stay gap-free: every
// event gets a distinct consecutive sequence number and none is lost.
func TestConcurrentEmitGapFreeSeq(t *testing.T) {
	const emitters, perEmitter = 8, 1000
	r := NewRecorder(emitters*perEmitter, nil)
	r.Register("m")
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perEmitter; j++ {
				r.Emit(Event{Kind: EvIPC, Module: "m", Arg0: int64(i), Arg1: int64(j)})
			}
		}(i)
	}
	wg.Wait()

	ev := r.Events()
	if len(ev) != emitters*perEmitter {
		t.Fatalf("retained %d events, want %d", len(ev), emitters*perEmitter)
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: numbering has a gap or a duplicate", i, e.Seq)
		}
	}
	s := r.Snapshot()
	if s.Events != emitters*perEmitter || s.Dropped != 0 {
		t.Fatalf("snapshot: %d events, %d dropped; want %d, 0", s.Events, s.Dropped, emitters*perEmitter)
	}
	if s.Modules["m"].Ops[EvIPC] != emitters*perEmitter {
		t.Fatalf("per-module count %d, want %d", s.Modules["m"].Ops[EvIPC], emitters*perEmitter)
	}
}

// TestConcurrentRingWrap overruns a small ring from many goroutines
// at once and requires exact accounting: Dropped reports precisely the
// overrun, Events returns exactly the newest capacity events in
// sequence order, and the unregistered emitter is flagged by Unknown.
func TestConcurrentRingWrap(t *testing.T) {
	const capacity, emitters, perEmitter = 64, 8, 500
	const total = emitters * perEmitter
	r := NewRecorder(capacity, nil)
	r.Register("m")
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mod := "m"
			if i == 0 {
				mod = "drifted" // never registered
			}
			for j := 0; j < perEmitter; j++ {
				r.Emit(Event{Kind: EvIPC, Module: mod, Arg0: int64(i)})
			}
		}(i)
	}
	wg.Wait()

	if d := r.Dropped(); d != total-capacity {
		t.Errorf("Dropped = %d, want %d", d, total-capacity)
	}
	ev := r.Events()
	if len(ev) != capacity {
		t.Fatalf("retained %d events, want %d", len(ev), capacity)
	}
	for i, e := range ev {
		if want := uint64(total - capacity + i + 1); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d: ring did not keep the newest in order", i, e.Seq, want)
		}
	}
	if got := r.Unknown(); len(got) != 1 || got[0] != "drifted" {
		t.Errorf("Unknown = %v, want [drifted]", got)
	}
	s := r.Snapshot()
	if s.Events != total {
		t.Errorf("snapshot events = %d, want %d", s.Events, total)
	}
	if n := s.Modules["m"].Ops[EvIPC] + s.Modules["drifted"].Ops[EvIPC]; n != total {
		t.Errorf("per-module counts sum to %d, want %d: overwritten events must stay counted", n, total)
	}
}

// TestConcurrentSpans closes spans from several bound goroutines at
// once under the race detector and requires the aggregate accounting
// to come out exact.
func TestConcurrentSpans(t *testing.T) {
	const workers, perWorker = 6, 300
	r := NewRecorder(workers*perWorker, nil)
	r.Register("m")
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			unbind := BindCPU(i)
			defer unbind()
			r.SetRunningProcess(uint64(i + 1))
			for j := 0; j < perWorker; j++ {
				r.BeginSpan(SpanVPDispatch, "m", int64(j))
				r.EndSpan(SpanVPDispatch)
			}
		}(i)
	}
	wg.Wait()

	if m := r.SpanMismatches(); m != 0 {
		t.Errorf("SpanMismatches = %d, want 0", m)
	}
	if d := r.SpansDropped(); d != 0 {
		t.Errorf("SpansDropped = %d, want 0", d)
	}
	s := r.Snapshot()
	h := s.Spans[SpanKey{Module: "m", Kind: SpanVPDispatch}]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var spans int64
	for pid, pa := range s.Procs {
		if pid < 1 || pid > workers {
			t.Errorf("unexpected process %d in accounting", pid)
		}
		spans += pa.Spans
	}
	if spans != workers*perWorker {
		t.Errorf("process accounting covers %d spans, want %d", spans, workers*perWorker)
	}
}

// TestBindCPUAttribution checks that events emitted by a goroutine
// bound to a processor carry that processor's id, that unbound
// emission stays unattributed, and that an emitter's own stamp wins.
func TestBindCPUAttribution(t *testing.T) {
	r := NewRecorder(64, nil)
	r.Register("m")

	r.Emit(Event{Kind: EvIPC, Module: "m"})

	var wg sync.WaitGroup
	for cpu := 0; cpu < 3; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			unbind := BindCPU(cpu)
			defer unbind()
			r.Emit(Event{Kind: EvDispatch, Module: "m", Arg0: int64(cpu)})
		}(cpu)
	}
	wg.Wait()

	unbind := BindCPU(5)
	r.Emit(Event{Kind: EvFault, Module: "m", CPU: 2}) // hardware stamped CPU 1 itself
	unbind()
	r.Emit(Event{Kind: EvIPC, Module: "m"}) // unbound again

	for _, e := range r.Events() {
		switch e.Kind {
		case EvIPC:
			if e.CPU != 0 {
				t.Errorf("unbound event attributed to cpu %d", e.CPU-1)
			}
		case EvDispatch:
			if e.CPU != int32(e.Arg0)+1 {
				t.Errorf("bound event for cpu %d carries cpu stamp %d", e.Arg0, e.CPU)
			}
		case EvFault:
			if e.CPU != 2 {
				t.Errorf("pre-stamped event overwritten: cpu stamp %d", e.CPU)
			}
		}
	}
}
