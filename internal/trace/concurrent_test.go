package trace

import (
	"sync"
	"testing"
)

// TestConcurrentEmitGapFreeSeq drives the recorder from many
// goroutines at once — the multiprocessor kernel's emission pattern —
// and requires the ring's sequence numbering to stay gap-free: every
// event gets a distinct consecutive sequence number and none is lost.
func TestConcurrentEmitGapFreeSeq(t *testing.T) {
	const emitters, perEmitter = 8, 1000
	r := NewRecorder(emitters*perEmitter, nil)
	r.Register("m")
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perEmitter; j++ {
				r.Emit(Event{Kind: EvIPC, Module: "m", Arg0: int64(i), Arg1: int64(j)})
			}
		}(i)
	}
	wg.Wait()

	ev := r.Events()
	if len(ev) != emitters*perEmitter {
		t.Fatalf("retained %d events, want %d", len(ev), emitters*perEmitter)
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: numbering has a gap or a duplicate", i, e.Seq)
		}
	}
	s := r.Snapshot()
	if s.Events != emitters*perEmitter || s.Dropped != 0 {
		t.Fatalf("snapshot: %d events, %d dropped; want %d, 0", s.Events, s.Dropped, emitters*perEmitter)
	}
	if s.Modules["m"].Ops[EvIPC] != emitters*perEmitter {
		t.Fatalf("per-module count %d, want %d", s.Modules["m"].Ops[EvIPC], emitters*perEmitter)
	}
}

// TestBindCPUAttribution checks that events emitted by a goroutine
// bound to a processor carry that processor's id, that unbound
// emission stays unattributed, and that an emitter's own stamp wins.
func TestBindCPUAttribution(t *testing.T) {
	r := NewRecorder(64, nil)
	r.Register("m")

	r.Emit(Event{Kind: EvIPC, Module: "m"})

	var wg sync.WaitGroup
	for cpu := 0; cpu < 3; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			unbind := BindCPU(cpu)
			defer unbind()
			r.Emit(Event{Kind: EvDispatch, Module: "m", Arg0: int64(cpu)})
		}(cpu)
	}
	wg.Wait()

	unbind := BindCPU(5)
	r.Emit(Event{Kind: EvFault, Module: "m", CPU: 2}) // hardware stamped CPU 1 itself
	unbind()
	r.Emit(Event{Kind: EvIPC, Module: "m"}) // unbound again

	for _, e := range r.Events() {
		switch e.Kind {
		case EvIPC:
			if e.CPU != 0 {
				t.Errorf("unbound event attributed to cpu %d", e.CPU-1)
			}
		case EvDispatch:
			if e.CPU != int32(e.Arg0)+1 {
				t.Errorf("bound event for cpu %d carries cpu stamp %d", e.Arg0, e.CPU)
			}
		case EvFault:
			if e.CPU != 2 {
				t.Errorf("pre-stamped event overwritten: cpu stamp %d", e.CPU)
			}
		}
	}
}
