// Package trace implements the kernel's event-tracing and metering
// subsystem: "the meters". The paper's argument rests on being able
// to see inside the kernel — auditors who understand every statement,
// a census of module sizes, and performance claims about ring
// crossings, IPC and process swaps. This package makes the running
// simulation observable the same way: every object manager emits
// typed events into a fixed-capacity ring buffer, each stamped with
// the simulated cycle clock and the emitting module's name from the
// dependency graph, and per-module counters attribute cycles to the
// module that spent them.
//
// The discipline is deliberately cheap. Instrumented code holds a
// Sink field that is nil when tracing is off, and every emission site
// guards with a single predictable branch:
//
//	if m.trace != nil {
//		m.trace.Emit(trace.Event{...})
//	}
//
// When tracing is on, Emit writes one fixed-size Event value into a
// preallocated ring and bumps integer counters — no allocation on the
// hot path (a module's counter block is allocated once, the first
// time the module is seen).
//
// Everything is deterministic: two identical boots running identical
// workloads produce byte-identical event streams and snapshots,
// because events are stamped with the simulated cycle clock, not wall
// time.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind identifies one class of kernel event: the taxonomy of things
// the paper's performance discussion turns on.
type Kind uint8

const (
	// EvFault: the hardware took an exception (Arg0 is the fault
	// kind, Arg1/Arg2 the faulting segment and page).
	EvFault Kind = iota
	// EvGateCross: one crossing of a protection-ring boundary
	// (Arg0 is the ring left, Arg1 the ring entered).
	EvGateCross
	// EvPageFetch: the page frame manager made a page resident
	// (Arg0 is the owning segment UID, Arg1 the page; Arg2 is 1
	// when the contents came from a disk record, 0 for a zero
	// page, 2 for a never-before-used page being added).
	EvPageFetch
	// EvPageEvict: a page was removed from primary memory (Arg0
	// UID, Arg1 page; Arg2 is 1 when the page was all zeros and
	// its record was releasable).
	EvPageEvict
	// EvLockSpin: a processor waited on a locked page descriptor
	// set by another processor's fault service (Arg0 is the page).
	EvLockSpin
	// EvDispatch: a virtual processor was dispatched (Arg0 is the
	// virtual processor id, Arg1 the user process id or 0).
	EvDispatch
	// EvIPC: one message through a real-memory queue between
	// levels (Arg0/Arg1 are sender-specific).
	EvIPC
	// EvProcessSwap: a user-process state was loaded (Arg1 = 0) or
	// stored (Arg1 = 1) through the virtual memory (Arg0 is the
	// process id).
	EvProcessSwap
	// EvDiskRead: one record transferred from a pack (Arg0 is the
	// record address).
	EvDiskRead
	// EvDiskWrite: one record transferred to a pack (Arg0 is the
	// record address).
	EvDiskWrite
	// EvQuotaCheck: a growth was checked against a quota cell
	// (Arg0 pages requested, Arg1 pages used before, Arg2 limit).
	EvQuotaCheck
	// EvSignalRaise: a lower module raised an upward signal; the
	// event is attributed to the target module.
	EvSignalRaise
	// EvSignalHandle: the dispatch loop ran an upward signal's
	// handler after the raising chain unwound.
	EvSignalHandle
	// EvAwait: a process blocked awaiting an eventcount value
	// (Arg0 is the awaited value, Arg1 the current count).
	EvAwait
	// EvAdvance: an eventcount was advanced, waking whoever was
	// behind (Arg0 is the new count).
	EvAdvance
	// EvFaultInjected: the disk fault plane injected a fault (Arg0
	// is the operation class, -1 for a table-of-contents mutation;
	// Arg1 is 0 transient, 1 permanent, 2 crash).
	EvFaultInjected
	// EvSalvageRepair: the volume salvager repaired one
	// inconsistency (Arg0 is the repair class, Arg1/Arg2
	// repair-specific).
	EvSalvageRepair
	// EvAssocHit: a processor's associative memory answered an
	// address translation without a table walk (Arg0 segment
	// number, Arg1 page).
	EvAssocHit
	// EvAssocMiss: the associative memory could not answer and the
	// processor walked the descriptor tables (Arg0 segment number,
	// Arg1 page).
	EvAssocMiss
	// EvAssocClear: associative-memory entries were invalidated
	// (Arg0 is the clear class: 0 a page shootdown, 1 a segment
	// shootdown, 2 a process switch; Arg1 the page or segment
	// number, -1 for a process switch; Arg2 the entries cleared).
	EvAssocClear
	// EvWriteError: a grouped page write-back submission failed even
	// after retries, losing the evicted pages' contents (Arg0 is the
	// number of pages in the failed submission, Arg1 the first
	// record address).
	EvWriteError
	// EvRetryPressure: a fault-service retry loop crossed half its
	// retry budget — it is being starved of forward progress and will
	// error out if the pressure persists (Arg0 segment number, Arg1
	// offset, Arg2 retries so far).
	EvRetryPressure
	// EvSchedSteal: a draining run queue stole a ready process from
	// another queue (Arg0 the thief queue, Arg1 the victim queue,
	// Arg2 the process id).
	EvSchedSteal
	// EvSchedMigrate: a process's home run queue changed at dispatch
	// (Arg0 the old queue, Arg1 the new queue, Arg2 the process id).
	EvSchedMigrate
	// EvSchedDonate: a waiter donated its priority to a lock holder
	// (Arg0 the donor process id, Arg1 the holder process id, Arg2
	// the holder's new effective priority).
	EvSchedDonate
	// EvDiskQueue: a request joined a pack's device queue (Arg0 the
	// request's first record address, Arg1 the queue depth after the
	// enqueue, Arg2 1 for a speculative read-ahead request).
	EvDiskQueue
	// EvPrefetchIssue: the page frame manager queued a speculative
	// read of a predicted-next page (Arg0 the record address, Arg1
	// the page number).
	EvPrefetchIssue
	// EvPrefetchHit: a demand fault was satisfied from the speculative
	// read-ahead cache without a demand disk read (Arg0 the record
	// address, Arg1 the page number).
	EvPrefetchHit
	// EvPrefetchDrop: a speculative entry was discarded unclaimed
	// (Arg0 the record address, Arg1 the page number, Arg2 the class:
	// 0 the speculative transfer faulted, 1 the entry went stale, 2
	// the frame was stolen back by the second-chance clock).
	EvPrefetchDrop
	// EvNetFrame: a frame was demultiplexed and handed to its
	// connection (Arg0 the channel or connection id, Arg1 the payload
	// words, Arg2 1 when a subscriber consumed it directly, 0 when it
	// was queued).
	EvNetFrame
	// EvNetDrop: a frame was discarded instead of delivered (Arg0
	// the channel or connection id, Arg1 the drop class: 0 a full
	// delivery queue, 1 a protocol failure, 2 a connection out of
	// credits; Arg2 the queue depth or credit count at the drop).
	EvNetDrop
	// EvNetCredit: a consumer returned one flow-control credit to its
	// connection (Arg0 the connection id, Arg1 the credits available
	// after the return).
	EvNetCredit
	// EvRemoteSeg: one remote segment operation crossed the
	// inter-node channel (Arg0 the operation: 0 a read, 1 a copy;
	// Arg1 the words moved, Arg2 the serving-side channel).
	EvRemoteSeg

	// NumKinds is the size of per-kind counter arrays.
	NumKinds = int(EvRemoteSeg) + 1
)

var kindNames = [NumKinds]string{
	"fault", "gate-cross", "page-fetch", "page-evict", "lock-spin",
	"dispatch", "ipc", "process-swap", "disk-read", "disk-write",
	"quota-check", "signal-raise", "signal-handle", "await", "advance",
	"fault-injected", "salvage-repair", "assoc-hit", "assoc-miss",
	"assoc-clear", "write-error", "retry-pressure", "sched-steal",
	"sched-migrate", "sched-donate", "disk-queue", "prefetch-issue",
	"prefetch-hit", "prefetch-drop", "net-frame", "net-drop",
	"net-credit", "remote-seg",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MaxFaultKinds bounds the fault-by-type histogram; the hardware
// defines seven fault kinds and the array leaves one spare.
const MaxFaultKinds = 8

// faultNamer renders a fault-kind index in tables. Package hw
// replaces it at init with the hardware's own names, so the trace
// package needs no dependency on the hardware layer.
var faultNamer = func(kind int) string { return fmt.Sprintf("fault-%d", kind) }

// SetFaultNamer installs the renderer for fault-kind indices in
// exported tables. It is called once, from package init, before any
// recorder exists.
func SetFaultNamer(f func(kind int) string) {
	if f != nil {
		faultNamer = f
	}
}

// An Event is one record in the kernel event stream. The value is
// fixed-size so the ring buffer never allocates.
type Event struct {
	// Seq is the event's position in the stream, starting at 1.
	Seq uint64
	// Cycle is the simulated cycle clock when the event was
	// emitted.
	Cycle int64
	// CPU identifies the emitting processor, as processor id plus
	// one; zero means the event was emitted outside any processor's
	// dispatch (boot, daemons not bound to a CPU, tests). The
	// hardware stamps its own events; manager events are stamped
	// from the goroutine's BindCPU binding by the recorder.
	CPU int32
	// Kind classifies the event.
	Kind Kind
	// Module is the emitting module's name in the dependency
	// graph.
	Module string
	// Cost is the simulated cycles the metered operation charged;
	// the attribution table sums it per module.
	Cost int64
	// Arg0, Arg1, Arg2 are kind-specific (see the Kind constants).
	Arg0, Arg1, Arg2 int64
}

func (e Event) String() string {
	cpu := "-"
	if e.CPU > 0 {
		cpu = fmt.Sprintf("%d", e.CPU-1)
	}
	return fmt.Sprintf("%8d %10d p%-2s %-13s %-26s cost=%-5d %d %d %d",
		e.Seq, e.Cycle, cpu, e.Kind, e.Module, e.Cost, e.Arg0, e.Arg1, e.Arg2)
}

// A Sink consumes kernel events. Instrumented modules hold a Sink
// that is nil when tracing is off; every emission site must guard
// with a nil check so the uninstrumented path costs one predictable
// branch and nothing else.
type Sink interface {
	Emit(e Event)
}

// A Clock supplies the simulated cycle stamp for events. The
// hardware cost meter satisfies it.
type Clock interface {
	Cycles() int64
}

// ModuleStats is one module's share of the meters: event counts and
// attributed cycles by kind, and fault counts by fault type.
type ModuleStats struct {
	// Ops counts events by kind.
	Ops [NumKinds]int64
	// Cycles sums attributed cycles by kind.
	Cycles [NumKinds]int64
	// Faults counts EvFault events by fault kind (Arg0).
	Faults [MaxFaultKinds]int64
}

// TotalOps reports the module's event count across all kinds.
func (m ModuleStats) TotalOps() int64 {
	var n int64
	for _, v := range m.Ops {
		n += v
	}
	return n
}

// TotalCycles reports the cycles attributed to the module across all
// kinds.
func (m ModuleStats) TotalCycles() int64 {
	var n int64
	for _, v := range m.Cycles {
		n += v
	}
	return n
}

func (m ModuleStats) sub(prev ModuleStats) ModuleStats {
	var out ModuleStats
	for i := range m.Ops {
		out.Ops[i] = m.Ops[i] - prev.Ops[i]
		out.Cycles[i] = m.Cycles[i] - prev.Cycles[i]
	}
	for i := range m.Faults {
		out.Faults[i] = m.Faults[i] - prev.Faults[i]
	}
	return out
}

// A Recorder is the concrete Sink: a fixed-capacity ring of events
// plus the per-module meters. It is safe for concurrent use by
// multiple simulated processors.
type Recorder struct {
	clock Clock

	mu      sync.Mutex
	buf     []Event // ring storage, preallocated
	start   int     // index of the oldest retained event
	n       int     // retained events
	seq     uint64  // events ever emitted
	dropped uint64  // events overwritten by ring wrap

	stats      map[string]*ModuleStats
	registered map[string]bool
	unknown    map[string]bool

	// sp is the span machinery (see span.go), guarded by mu.
	sp spanState
}

// DefaultCapacity is the ring capacity used when a caller passes a
// non-positive one.
const DefaultCapacity = 1 << 14

// NewRecorder returns a recorder retaining the most recent capacity
// events, stamping them from clock (which may be nil; events then
// carry cycle 0).
func NewRecorder(capacity int, clock Clock) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{
		clock:      clock,
		buf:        make([]Event, capacity),
		stats:      make(map[string]*ModuleStats),
		registered: make(map[string]bool),
		unknown:    make(map[string]bool),
	}
	r.sp.init(capacity)
	return r
}

// Register declares the module names instrumentation is allowed to
// emit — normally the modules of the kernel's dependency graph. A
// name emitted without registration is reported by Unknown, the
// cheap lint that instrumentation stays in sync with the graph.
// Registered modules appear in attribution tables even with zero
// events.
func (r *Recorder) Register(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		r.registered[name] = true
		if _, ok := r.stats[name]; !ok {
			r.stats[name] = new(ModuleStats)
		}
	}
}

// Emit records one event, stamping its sequence number and simulated
// cycle clock. A nil recorder drops the event, so a *Recorder is a
// usable Sink even before tracing is wired up.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if e.CPU == 0 {
		e.CPU = boundCPU()
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.clock != nil {
		e.Cycle = r.clock.Cycles()
	}
	if r.n == len(r.buf) {
		// Overwrite the oldest event.
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	}
	st, ok := r.stats[e.Module]
	if !ok {
		st = new(ModuleStats)
		r.stats[e.Module] = st
	}
	if !r.registered[e.Module] {
		r.unknown[e.Module] = true
	}
	st.Ops[e.Kind]++
	st.Cycles[e.Kind] += e.Cost
	if e.Kind == EvFault && e.Arg0 >= 0 && e.Arg0 < MaxFaultKinds {
		st.Faults[e.Arg0]++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Unknown returns, sorted, every module name that emitted without
// being registered. A non-empty result means instrumentation has
// drifted from the dependency graph.
func (r *Recorder) Unknown() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name := range r.unknown {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dropped reports how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// A Snapshot is a consistent copy of the meters at one instant,
// diffable against an earlier one.
type Snapshot struct {
	// Events is the count of events ever emitted.
	Events uint64
	// Dropped is the count of events the ring overwrote.
	Dropped uint64
	// Cycle is the simulated cycle clock at the snapshot.
	Cycle int64
	// Modules maps each module name seen (or registered) to its
	// counters.
	Modules map[string]ModuleStats
	// Spans maps each (module, span kind) seen to its latency
	// histogram.
	Spans map[SpanKey]SpanStats
	// Procs maps each user process that had span cycles attributed to
	// its accounting.
	Procs map[uint64]ProcStats
}

// Snapshot copies the meters. A nil recorder yields a zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Modules: make(map[string]ModuleStats),
		Spans:   make(map[SpanKey]SpanStats),
		Procs:   make(map[uint64]ProcStats),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Events = r.seq
	s.Dropped = r.dropped
	if r.clock != nil {
		s.Cycle = r.clock.Cycles()
	}
	for name, st := range r.stats {
		s.Modules[name] = *st
	}
	for key, h := range r.sp.stats {
		s.Spans[key] = *h
	}
	for pid, pa := range r.sp.procs {
		s.Procs[pid] = *pa
	}
	return s
}

// Since returns the difference s minus prev: what happened between
// the two snapshots. The meters are monotonic — no counter ever
// shrinks and no module, histogram, or process entry is ever removed
// — so every key of prev also exists in s and the difference is
// well-defined. (A key absent from prev diffs against the zero
// value.) The one non-counter is SpanStats.Max, which stays the
// running maximum at s rather than the interval's.
func (s Snapshot) Since(prev Snapshot) Snapshot {
	out := Snapshot{
		Events:  s.Events - prev.Events,
		Dropped: s.Dropped - prev.Dropped,
		Cycle:   s.Cycle - prev.Cycle,
		Modules: make(map[string]ModuleStats, len(s.Modules)),
		Spans:   make(map[SpanKey]SpanStats, len(s.Spans)),
		Procs:   make(map[uint64]ProcStats, len(s.Procs)),
	}
	for name, st := range s.Modules {
		out.Modules[name] = st.sub(prev.Modules[name])
	}
	for key, h := range s.Spans {
		out.Spans[key] = h.sub(prev.Spans[key])
	}
	for pid, pa := range s.Procs {
		out.Procs[pid] = pa.sub(prev.Procs[pid])
	}
	return out
}

// TotalCycles sums the attributed cycles across every module.
func (s Snapshot) TotalCycles() int64 {
	var n int64
	for _, st := range s.Modules {
		n += st.TotalCycles()
	}
	return n
}

// moduleNames returns the snapshot's module names sorted.
func (s Snapshot) moduleNames() []string {
	names := make([]string, 0, len(s.Modules))
	for name := range s.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Table renders the human cycle-attribution table. Layers gives the
// module certification order (bottom layer first), as computed from
// the dependency graph; modules the snapshot saw that appear in no
// layer are appended at the end, marked unregistered, so drifted
// instrumentation is visible rather than silently dropped.
func (s Snapshot) Table(layers [][]string) string {
	var b strings.Builder
	total := s.TotalCycles()
	fmt.Fprintf(&b, "cycle attribution by module, certification order (%d events, %d cycles attributed):\n", s.Events, total)
	listed := make(map[string]bool)
	writeRow := func(prefix, name string) {
		st := s.Modules[name]
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.TotalCycles()) / float64(total)
		}
		fmt.Fprintf(&b, "    %s%-28s %12d cyc %5.1f%% %8d events", prefix, name, st.TotalCycles(), share, st.TotalOps())
		var faults int64
		for _, f := range st.Faults {
			faults += f
		}
		if faults > 0 {
			var parts []string
			for kind, f := range st.Faults {
				if f > 0 {
					parts = append(parts, fmt.Sprintf("%s=%d", faultNamer(kind), f))
				}
			}
			fmt.Fprintf(&b, "  faults: %s", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	for i, layer := range layers {
		for _, name := range layer {
			listed[name] = true
			writeRow(fmt.Sprintf("layer %d  ", i), name)
		}
	}
	for _, name := range s.moduleNames() {
		if !listed[name] {
			writeRow("UNREGISTERED  ", name)
		}
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "    (ring overwrote %d oldest events)\n", s.Dropped)
	}
	return b.String()
}

// String renders the table with every module in one nameless layer,
// sorted, for callers without a dependency graph at hand.
func (s Snapshot) String() string {
	return s.Table([][]string{s.moduleNames()})
}

// PromText renders the meters as Prometheus-style text exposition
// lines, deterministically ordered, for scraping or diffing.
func (s Snapshot) PromText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multics_trace_events_total %d\n", s.Events)
	fmt.Fprintf(&b, "multics_trace_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(&b, "multics_sim_cycles_total %d\n", s.Cycle)
	for _, name := range s.moduleNames() {
		st := s.Modules[name]
		fmt.Fprintf(&b, "multics_module_cycles_total{module=%q} %d\n", name, st.TotalCycles())
		for kind := 0; kind < NumKinds; kind++ {
			if st.Cycles[kind] == 0 {
				continue
			}
			fmt.Fprintf(&b, "multics_module_cycles_total{module=%q,kind=%q} %d\n", name, Kind(kind), st.Cycles[kind])
		}
		for kind := 0; kind < NumKinds; kind++ {
			if st.Ops[kind] == 0 {
				continue
			}
			fmt.Fprintf(&b, "multics_module_ops_total{module=%q,kind=%q} %d\n", name, Kind(kind), st.Ops[kind])
		}
		for kind, f := range st.Faults {
			if f > 0 {
				fmt.Fprintf(&b, "multics_module_faults_total{module=%q,kind=%q} %d\n", name, faultNamer(kind), f)
			}
		}
	}
	for _, key := range s.spanKeys() {
		h := s.Spans[key]
		top := 0
		for i := 0; i < SpanBuckets; i++ {
			if h.Buckets[i] > 0 {
				top = i
			}
		}
		var cum int64
		for i := 0; i <= top; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "multics_span_cycles_bucket{module=%q,span=%q,le=\"%d\"} %d\n", key.Module, key.Kind, BucketUpper(i), cum)
		}
		fmt.Fprintf(&b, "multics_span_cycles_bucket{module=%q,span=%q,le=\"+Inf\"} %d\n", key.Module, key.Kind, h.Count)
		fmt.Fprintf(&b, "multics_span_cycles_sum{module=%q,span=%q} %d\n", key.Module, key.Kind, h.Cycles)
		fmt.Fprintf(&b, "multics_span_cycles_count{module=%q,span=%q} %d\n", key.Module, key.Kind, h.Count)
	}
	pids := make([]uint64, 0, len(s.Procs))
	for pid := range s.Procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		pa := s.Procs[pid]
		fmt.Fprintf(&b, "multics_process_cycles_total{pid=\"%d\"} %d\n", pid, pa.Cycles)
		fmt.Fprintf(&b, "multics_process_spans_total{pid=\"%d\"} %d\n", pid, pa.Spans)
	}
	return b.String()
}

// FormatEvents renders an event slice one line per event, a fixed
// format suitable for byte-identical comparison across runs.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
