package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestSpanNestingAndLinkage drives one fault-service span with a
// nested disk read and checks the whole record: completion order
// (children complete first), parent linkage, child-time attribution,
// and the cycle stamps from the simulated clock.
func TestSpanNestingAndLinkage(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(16, clk)
	r.Register("page-frame-manager", "disk-record-manager")

	clk.c = 100
	r.BeginSpan(SpanFaultService, "page-frame-manager", 7)
	clk.c = 150
	r.BeginSpan(SpanDiskRead, "disk-record-manager", 42)
	clk.c = 3150
	r.EndSpan(SpanDiskRead)
	clk.c = 3400
	r.EndSpan(SpanFaultService)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	child, parent := spans[0], spans[1]
	if child.Kind != SpanDiskRead || parent.Kind != SpanFaultService {
		t.Fatalf("completion order wrong: %v then %v", child.Kind, parent.Kind)
	}
	if child.Parent != parent.ID {
		t.Errorf("child.Parent = %d, want parent ID %d", child.Parent, parent.ID)
	}
	if parent.ID >= child.ID {
		t.Errorf("parent ID %d not smaller than child ID %d", parent.ID, child.ID)
	}
	if parent.Parent != 0 {
		t.Errorf("root span has parent %d", parent.Parent)
	}
	if child.Start != 150 || child.End != 3150 || child.Cycles() != 3000 {
		t.Errorf("child stamps wrong: %+v", child)
	}
	if parent.Start != 100 || parent.End != 3400 || parent.Cycles() != 3300 {
		t.Errorf("parent stamps wrong: %+v", parent)
	}
	if parent.Child != 3000 || parent.Children != 1 {
		t.Errorf("parent child accounting wrong: child=%d children=%d", parent.Child, parent.Children)
	}
	if parent.Self() != 300 || child.Self() != 3000 {
		t.Errorf("self times wrong: parent=%d child=%d", parent.Self(), child.Self())
	}
	if parent.Arg != 7 || child.Arg != 42 {
		t.Errorf("args wrong: parent=%d child=%d", parent.Arg, child.Arg)
	}

	s := r.Snapshot()
	pf := s.Spans[SpanKey{Module: "page-frame-manager", Kind: SpanFaultService}]
	if pf.Count != 1 || pf.Cycles != 3300 || pf.Child != 3000 || pf.Self() != 300 || pf.Max != 3300 {
		t.Errorf("fault-service histogram wrong: %+v", pf)
	}
	dr := s.Spans[SpanKey{Module: "disk-record-manager", Kind: SpanDiskRead}]
	if dr.Count != 1 || dr.Cycles != 3000 || dr.Child != 0 || dr.Max != 3000 {
		t.Errorf("disk-read histogram wrong: %+v", dr)
	}
}

// TestSpanProcessAttribution checks that span self-time — and only
// self-time, so nothing is double-counted — is charged to the process
// the processor was running, and that pid zero charges nobody.
func TestSpanProcessAttribution(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(16, clk)
	r.Register("m")

	r.SetRunningProcess(9)
	clk.c = 0
	r.BeginSpan(SpanGate, "m", 1)
	clk.c = 40
	r.BeginSpan(SpanDiskRead, "m", 2)
	clk.c = 140
	r.EndSpan(SpanDiskRead)
	clk.c = 200
	r.EndSpan(SpanGate)

	r.SetRunningProcess(0)
	clk.c = 300
	r.BeginSpan(SpanGate, "m", 3)
	clk.c = 400
	r.EndSpan(SpanGate)

	s := r.Snapshot()
	if len(s.Procs) != 1 {
		t.Fatalf("got %d process entries, want 1: %v", len(s.Procs), s.Procs)
	}
	pa := s.Procs[9]
	// Self-times: disk-read 100, gate 200-100 = 100; total 200 over 2 spans.
	if pa.Cycles != 200 || pa.Spans != 2 {
		t.Errorf("process 9 accounting = %+v, want 200 cycles over 2 spans", pa)
	}
}

// TestSpanRingWrap fills a 3-slot span ring with 5 spans and requires
// the exact drop count and the newest 3 in completion order.
func TestSpanRingWrap(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(3, clk)
	r.Register("m")
	for i := 0; i < 5; i++ {
		clk.c = int64(i) * 10
		r.BeginSpan(SpanSignal, "m", int64(i))
		clk.c = int64(i)*10 + 5
		r.EndSpan(SpanSignal)
	}
	if d := r.SpansDropped(); d != 2 {
		t.Errorf("SpansDropped = %d, want 2", d)
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Arg != int64(i+2) {
			t.Errorf("span %d has arg %d, want %d (oldest two overwritten)", i, sp.Arg, i+2)
		}
	}
	s := r.Snapshot()
	h := s.Spans[SpanKey{Module: "m", Kind: SpanSignal}]
	if h.Count != 5 {
		t.Errorf("histogram count = %d, want 5: the ring wrap must not lose statistics", h.Count)
	}
}

// TestSpanMismatchCounting checks that an end with no open span, or
// with the wrong kind, is counted and otherwise ignored — the open
// span survives and can still close properly.
func TestSpanMismatchCounting(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(8, clk)
	r.Register("m")

	r.EndSpan(SpanGate) // nothing open
	r.BeginSpan(SpanFaultService, "m", 1)
	r.EndSpan(SpanDiskRead) // wrong kind
	clk.c = 50
	r.EndSpan(SpanFaultService) // proper close

	if m := r.SpanMismatches(); m != 2 {
		t.Errorf("SpanMismatches = %d, want 2", m)
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Kind != SpanFaultService || spans[0].Cycles() != 50 {
		t.Errorf("open span damaged by mismatched ends: %v", spans)
	}
}

// TestSpanDepthOverflow opens past MaxSpanDepth and requires the
// excess begins to be dropped, their ends absorbed, and the retained
// nesting to close cleanly with no mismatches.
func TestSpanDepthOverflow(t *testing.T) {
	r := NewRecorder(MaxSpanDepth+8, &fakeClock{})
	r.Register("m")
	const extra = 3
	for i := 0; i < MaxSpanDepth+extra; i++ {
		r.BeginSpan(SpanGate, "m", int64(i))
	}
	for i := 0; i < MaxSpanDepth+extra; i++ {
		r.EndSpan(SpanGate)
	}
	if m := r.SpanMismatches(); m != 0 {
		t.Errorf("SpanMismatches = %d, want 0: overflow ends must be absorbed", m)
	}
	if n := len(r.Spans()); n != MaxSpanDepth {
		t.Errorf("completed %d spans, want %d", n, MaxSpanDepth)
	}
}

// TestBucketSemantics pins the log₂ bucket layout: bucket 0 holds
// zero, bucket i holds [2^(i-1), 2^i − 1], and BucketUpper reports the
// inclusive upper bound.
func TestBucketSemantics(t *testing.T) {
	cases := []struct {
		d      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.bucket)
		}
		if c.d > 0 {
			if u := BucketUpper(c.bucket); u < c.d {
				t.Errorf("BucketUpper(%d) = %d below member %d", c.bucket, u, c.d)
			}
			if l := BucketUpper(c.bucket - 1); l >= c.d {
				t.Errorf("BucketUpper(%d) = %d not below member %d of next bucket", c.bucket-1, l, c.d)
			}
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
}

// TestPercentileUpperBound checks the deterministic percentile
// semantics: the containing bucket's upper bound, clamped to the exact
// running Max, with Percentile(1) equal to Max.
func TestPercentileUpperBound(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(128, clk)
	r.Register("m")
	emit := func(d int64) {
		start := clk.c
		r.BeginSpan(SpanDiskRead, "m", 0)
		clk.c = start + d
		r.EndSpan(SpanDiskRead)
	}
	// 90 fast spans of 100 cycles (bucket 7, upper 127), 9 of 1000
	// (bucket 10, upper 1023), 1 of 5000 (bucket 13, upper 8191).
	for i := 0; i < 90; i++ {
		emit(100)
	}
	for i := 0; i < 9; i++ {
		emit(1000)
	}
	emit(5000)

	h := r.Snapshot().Spans[SpanKey{Module: "m", Kind: SpanDiskRead}]
	if h.Count != 100 || h.Max != 5000 {
		t.Fatalf("histogram wrong: count=%d max=%d", h.Count, h.Max)
	}
	if p := h.Percentile(0.5); p != 127 {
		t.Errorf("p50 = %d, want 127 (bucket upper bound of the 100-cycle bucket)", p)
	}
	if p := h.Percentile(0.99); p != 1023 {
		t.Errorf("p99 = %d, want 1023", p)
	}
	if p := h.Percentile(1); p != 5000 {
		t.Errorf("p100 = %d, want exact max 5000", p)
	}

	// Clamp: a single 5-cycle span sits in bucket 3 (upper 7), but the
	// reported percentile must never exceed the exact observed maximum.
	var one SpanStats
	one.Count = 1
	one.Cycles = 5
	one.Max = 5
	one.Buckets[bucketOf(5)] = 1
	if p := one.Percentile(0.5); p != 5 {
		t.Errorf("clamped percentile = %d, want 5 (Max)", p)
	}
	var zero SpanStats
	if p := zero.Percentile(0.99); p != 0 {
		t.Errorf("empty histogram percentile = %d, want 0", p)
	}
}

// TestSpanHotPathAllocationFree is the acceptance criterion for the
// latency layer: once a (module, kind) stat block and a process entry
// exist, a begin/end pair — ring write, histogram update, process
// accounting and all — allocates nothing.
func TestSpanHotPathAllocationFree(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(64, clk)
	r.Register("m")
	r.SetRunningProcess(3)
	// Warm up: allocate the stat block and the process entry once.
	r.BeginSpan(SpanFaultService, "m", 0)
	r.EndSpan(SpanFaultService)

	allocs := testing.AllocsPerRun(200, func() {
		clk.c++
		r.BeginSpan(SpanFaultService, "m", 1)
		clk.c++
		r.EndSpan(SpanFaultService)
	})
	if allocs != 0 {
		t.Errorf("span hot path allocates %.1f objects per begin/end pair, want 0", allocs)
	}

	// The event path makes the same promise.
	r.Emit(Event{Kind: EvPageFetch, Module: "m"})
	allocs = testing.AllocsPerRun(200, func() {
		r.Emit(Event{Kind: EvPageFetch, Module: "m", Cost: 10})
	})
	if allocs != 0 {
		t.Errorf("event hot path allocates %.1f objects per emit, want 0", allocs)
	}
}

// TestFoldedStacks pins the collapsed-stack export: one line per
// distinct ancestry path, self-cycles aggregated, sorted, zero-width
// spans omitted.
func TestFoldedStacks(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(32, clk)
	r.Register("pf", "disk")
	storm := func() {
		start := clk.c
		r.BeginSpan(SpanFaultService, "pf", 0)
		clk.c = start + 10
		r.BeginSpan(SpanDiskRead, "disk", 0)
		clk.c = start + 110
		r.EndSpan(SpanDiskRead)
		clk.c = start + 130
		r.EndSpan(SpanFaultService)
	}
	storm()
	storm()
	// A root with zero self-time: all its cycles inside the child.
	start := clk.c
	r.BeginSpan(SpanFaultService, "pf", 0)
	r.BeginSpan(SpanDiskWrite, "disk", 0)
	clk.c = start + 50
	r.EndSpan(SpanDiskWrite)
	r.EndSpan(SpanFaultService)

	got := FoldedStacks(r.Spans())
	want := "pf:fault-service 60\n" +
		"pf:fault-service;disk:disk-read 200\n" +
		"pf:fault-service;disk:disk-write 50\n"
	if got != want {
		t.Errorf("FoldedStacks:\n%swant:\n%s", got, want)
	}
}

// TestNilRecorderSpansSafe mirrors the event discipline: a nil
// *Recorder accepts every span call and reports emptiness.
func TestNilRecorderSpansSafe(t *testing.T) {
	var r *Recorder
	r.BeginSpan(SpanGate, "m", 0)
	r.EndSpan(SpanGate)
	r.SetRunningProcess(4)
	if r.Spans() != nil {
		t.Error("nil recorder returned spans")
	}
	if r.SpansDropped() != 0 || r.SpanMismatches() != 0 {
		t.Error("nil recorder reported counters")
	}
	s := r.Snapshot()
	if len(s.Spans) != 0 || len(s.Procs) != 0 {
		t.Error("nil recorder snapshot has span state")
	}
}

type eventOnlySink struct{}

func (eventOnlySink) Emit(Event) {}

// TestSpanSinkOf checks the typed-nil hazard and the capability
// check: a nil interface, a typed-nil *Recorder, and a Sink without
// span support all come back nil; a live recorder comes back itself.
func TestSpanSinkOf(t *testing.T) {
	if ss := SpanSinkOf(nil); ss != nil {
		t.Error("SpanSinkOf(nil) != nil")
	}
	var nilRec *Recorder
	if ss := SpanSinkOf(nilRec); ss != nil {
		t.Error("SpanSinkOf(typed-nil *Recorder) != nil")
	}
	if ss := SpanSinkOf(eventOnlySink{}); ss != nil {
		t.Error("SpanSinkOf(event-only sink) != nil")
	}
	r := NewRecorder(8, nil)
	ss := SpanSinkOf(r)
	if ss == nil {
		t.Fatal("SpanSinkOf(live recorder) == nil")
	}
	ss.BeginSpan(SpanGate, "m", 0)
	ss.EndSpan(SpanGate)
	if len(r.Spans()) != 1 {
		t.Error("span through SpanSinkOf not recorded")
	}
}

// TestSpanPerCPUStacks binds goroutines to distinct processors and
// requires their spans to nest per processor, not across: each span
// carries its own CPU stamp and roots its own stack.
func TestSpanPerCPUStacks(t *testing.T) {
	r := NewRecorder(64, &fakeClock{})
	r.Register("m")
	var ready, done sync.WaitGroup
	release := make(chan struct{})
	for cpu := 0; cpu < 3; cpu++ {
		ready.Add(1)
		done.Add(1)
		go func(cpu int) {
			defer done.Done()
			unbind := BindCPU(cpu)
			defer unbind()
			r.BeginSpan(SpanQuantum, "m", int64(cpu))
			ready.Done()
			<-release
			r.EndSpan(SpanQuantum)
		}(cpu)
	}
	ready.Wait() // all three spans open at once, one per processor
	close(release)
	done.Wait()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Parent != 0 {
			t.Errorf("span on cpu %d nested under %d: stacks leaked across processors", sp.CPU-1, sp.Parent)
		}
		if sp.CPU != int32(sp.Arg)+1 {
			t.Errorf("span for cpu %d carries stamp %d", sp.Arg, sp.CPU)
		}
	}
	if m := r.SpanMismatches(); m != 0 {
		t.Errorf("SpanMismatches = %d, want 0", m)
	}
}

// TestPromTextGolden pins the full exposition format — per-module
// totals, per-kind cycle and op series, span histogram series with
// cumulative buckets, and per-process series — against a golden
// string, so the ordering is provably deterministic.
func TestPromTextGolden(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(64, clk)
	r.Register("alpha", "beta")

	clk.c = 10
	r.Emit(Event{Kind: EvGateCross, Module: "beta", Cost: 40})
	clk.c = 20
	r.Emit(Event{Kind: EvPageFetch, Module: "alpha", Cost: 330})
	r.Emit(Event{Kind: EvPageFetch, Module: "alpha", Cost: 330})

	r.SetRunningProcess(5)
	r.BeginSpan(SpanFaultService, "alpha", 0)
	clk.c = 120 // duration 100: bucket 7
	r.EndSpan(SpanFaultService)
	r.BeginSpan(SpanFaultService, "alpha", 0)
	clk.c = 123 // duration 3: bucket 2
	r.EndSpan(SpanFaultService)
	r.SetRunningProcess(0)
	clk.c = 200

	want := strings.Join([]string{
		`multics_trace_events_total 3`,
		`multics_trace_dropped_total 0`,
		`multics_sim_cycles_total 200`,
		`multics_module_cycles_total{module="alpha"} 660`,
		`multics_module_cycles_total{module="alpha",kind="page-fetch"} 660`,
		`multics_module_ops_total{module="alpha",kind="page-fetch"} 2`,
		`multics_module_cycles_total{module="beta"} 40`,
		`multics_module_cycles_total{module="beta",kind="gate-cross"} 40`,
		`multics_module_ops_total{module="beta",kind="gate-cross"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="0"} 0`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="1"} 0`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="3"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="7"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="15"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="31"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="63"} 1`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="127"} 2`,
		`multics_span_cycles_bucket{module="alpha",span="fault-service",le="+Inf"} 2`,
		`multics_span_cycles_sum{module="alpha",span="fault-service"} 103`,
		`multics_span_cycles_count{module="alpha",span="fault-service"} 2`,
		`multics_process_cycles_total{pid="5"} 103`,
		`multics_process_spans_total{pid="5"} 2`,
		``,
	}, "\n")
	if got := r.Snapshot().PromText(); got != want {
		t.Errorf("PromText:\n%swant:\n%s", got, want)
	}
}

// TestSnapshotSinceSpans checks the diff semantics of the latency
// layer: counts and bucket contents subtract, Max stays the running
// maximum, and process accounting subtracts.
func TestSnapshotSinceSpans(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(32, clk)
	r.Register("m")
	r.SetRunningProcess(2)
	emit := func(d int64) {
		start := clk.c
		r.BeginSpan(SpanDiskWrite, "m", 0)
		clk.c = start + d
		r.EndSpan(SpanDiskWrite)
	}
	emit(1000)
	before := r.Snapshot()
	emit(10)
	emit(20)
	diff := r.Snapshot().Since(before)

	h := diff.Spans[SpanKey{Module: "m", Kind: SpanDiskWrite}]
	if h.Count != 2 || h.Cycles != 30 {
		t.Errorf("diff histogram = %+v, want 2 spans over 30 cycles", h)
	}
	if h.Max != 1000 {
		t.Errorf("diff Max = %d, want running maximum 1000", h.Max)
	}
	if h.Buckets[bucketOf(1000)] != 0 {
		t.Errorf("diff still counts the pre-snapshot span's bucket")
	}
	if h.Buckets[bucketOf(10)] != 1 || h.Buckets[bucketOf(20)] != 1 {
		t.Errorf("diff buckets wrong: %v", h.Buckets[:8])
	}
	if pa := diff.Procs[2]; pa.Cycles != 30 || pa.Spans != 2 {
		t.Errorf("diff process accounting = %+v, want 30 cycles over 2 spans", pa)
	}
}
