// Fault plane: deterministic fault injection for the disk substrate.
//
// The paper argues the storage design in robustness terms — every page
// of a segment on one pack, relocation as a multi-step update of two
// tables of contents plus a directory entry, quota cells statically
// bound so used-counts stay recomputable — but robustness claims are
// only testable against failures. A FaultPlan makes the failures
// injectable and exactly reproducible: it is seeded and step-counted
// (no wall clock anywhere), so two runs of the same workload against
// the same plan fail at the same operations with the same errors.
//
// Three failure classes are modeled:
//
//   - transient transfer faults (ErrTransient): the record transfer or
//     allocation fails once and succeeds when retried, as a marginal
//     head or a busy channel would;
//   - permanent faults (ErrPermanent): the operation fails every time;
//     callers must give up cleanly, never corrupt, never panic;
//   - a crash (ErrCrashed): at the Nth disk mutation the machine
//     halts. The Nth mutation and everything after it fail, and the
//     packs keep whatever half-updated state the interrupted
//     multi-step operation had reached — the state the volume
//     salvager exists to repair.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"multics/internal/hw"
)

// Typed injected faults. Callers must test with errors.Is: every
// injection site wraps these with operation context.
var (
	// ErrTransient marks an injected fault that goes away on retry.
	ErrTransient = errors.New("disk: transient transfer fault")
	// ErrPermanent marks an injected fault that never goes away.
	ErrPermanent = errors.New("disk: permanent device fault")
	// ErrCrashed marks the simulated crash: the machine has halted
	// and every disk operation after the crash point fails.
	ErrCrashed = errors.New("disk: simulated crash")
)

// An Op names one injectable pack operation.
type Op int

const (
	// OpRead is Pack.ReadRecord.
	OpRead Op = iota
	// OpWrite is Pack.WriteRecord.
	OpWrite
	// OpAlloc is Pack.AllocRecord.
	OpAlloc

	numOps = int(OpAlloc) + 1
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// A Rule injects typed faults into one operation class by occurrence
// count: the After-th call of Op (0-based, counted per plan) starts
// failing, for Times calls (Times <= 0 means forever — a permanent
// device fault).
type Rule struct {
	// Op selects the operation class.
	Op Op
	// Pack restricts the rule to one pack; empty matches every pack.
	Pack string
	// After is the 0-based occurrence of Op at which the rule
	// starts firing.
	After int
	// Times is how many occurrences fail; <= 0 means every one from
	// After on.
	Times int
	// Permanent selects ErrPermanent over ErrTransient.
	Permanent bool
}

// A FaultPlan decides, deterministically, which disk operations fail.
// One plan is shared by every pack of a Volumes registry so its step
// counters give a global order to all disk activity. The zero value
// injects nothing; methods on a nil plan are no-ops, so the
// uninstrumented path costs one nil check.
//
// Determinism: counters advance only when the kernel performs disk
// operations, and the optional random transients are drawn from a
// seeded xorshift generator advanced once per fallible operation —
// never from wall time.
type FaultPlan struct {
	// CrashAtMutation, when positive, halts the machine at the Nth
	// disk mutation (1-based): that mutation and every operation
	// after it fail with ErrCrashed.
	CrashAtMutation int
	// Rules are the typed per-operation injections.
	Rules []Rule
	// Seed drives the optional random transient stream.
	Seed uint64
	// TransientEvery, when positive, makes roughly one in that many
	// fallible operations fail with ErrTransient, chosen by the
	// seeded generator.
	TransientEvery int

	// mu orders the counters: one plan is shared by every pack, each
	// of which calls in under its own lock.
	mu        sync.Mutex
	mutations int
	opCount   [numOps]int
	rng       uint64
	crashed   bool
}

// Mutations reports how many disk mutations the plan has counted; the
// crash-point sweep uses it to bound its sweep.
func (f *FaultPlan) Mutations() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mutations
}

// Crashed reports whether the crash point has been reached.
func (f *FaultPlan) Crashed() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// xorshift64 is the seeded deterministic generator for random
// transients.
func (f *FaultPlan) next() uint64 {
	if f.rng == 0 {
		f.rng = f.Seed | 1
	}
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

// checkOp is called by a pack, under the pack lock and the plan's
// owner ordering, before performing op. mutating operations advance
// the mutation counter; once the crash point is reached every
// operation fails. The returned error is nil when the operation may
// proceed.
func (f *FaultPlan) checkOp(op Op, pack string, mutating bool) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("disk: %v on pack %s after crash point: %w", op, pack, ErrCrashed)
	}
	if mutating {
		f.mutations++
		if f.CrashAtMutation > 0 && f.mutations >= f.CrashAtMutation {
			f.crashed = true
			return fmt.Errorf("disk: crash at mutation %d (%v on pack %s): %w", f.mutations, op, pack, ErrCrashed)
		}
	}
	n := f.opCount[op]
	f.opCount[op]++
	for _, r := range f.Rules {
		if r.Op != op || (r.Pack != "" && r.Pack != pack) {
			continue
		}
		if n < r.After || (r.Times > 0 && n >= r.After+r.Times) {
			continue
		}
		if r.Permanent {
			return fmt.Errorf("disk: injected fault, %v #%d on pack %s: %w", op, n, pack, ErrPermanent)
		}
		return fmt.Errorf("disk: injected fault, %v #%d on pack %s: %w", op, n, pack, ErrTransient)
	}
	if f.TransientEvery > 0 && f.next()%uint64(f.TransientEvery) == 0 {
		return fmt.Errorf("disk: injected random fault, %v #%d on pack %s: %w", op, n, pack, ErrTransient)
	}
	return nil
}

// checkMutation covers mutating operations that transfer no records
// (table-of-contents updates, record frees): they advance the crash
// clock but carry no typed-injection rules.
func (f *FaultPlan) checkMutation(pack string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("disk: mutation on pack %s after crash point: %w", pack, ErrCrashed)
	}
	f.mutations++
	if f.CrashAtMutation > 0 && f.mutations >= f.CrashAtMutation {
		f.crashed = true
		return fmt.Errorf("disk: crash at mutation %d (pack %s): %w", f.mutations, pack, ErrCrashed)
	}
	return nil
}

// MaxRetries bounds the transient-fault retry loops in the paths that
// must be crash-interruptible and re-entrant.
const MaxRetries = 3

// retryBackoffCycles is the base of the deterministic exponential
// backoff charged to the meter between retries: there is no wall
// clock, so waiting is modeled as simulated cycles.
const retryBackoffCycles = hw.CycDiskSeek

// Retry runs fn, retrying up to MaxRetries times while it reports an
// injected transient fault. Each retry charges a deterministic,
// exponentially growing backoff to meter (which may be nil). Any
// other error — permanent faults, crashes, real failures — is
// returned immediately: retrying cannot help and must not loop.
func Retry(meter *hw.CostMeter, fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !errors.Is(err, ErrTransient) || attempt == MaxRetries {
			return err
		}
		meter.Add(retryBackoffCycles << attempt)
	}
}
