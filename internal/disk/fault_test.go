package disk

import (
	"errors"
	"fmt"
	"testing"

	"multics/internal/hw"
	"multics/internal/trace"
)

func faultFixture(t *testing.T, plan *FaultPlan) (*Volumes, *Pack) {
	t.Helper()
	vols := NewVolumes(&hw.CostMeter{})
	p, err := vols.AddPack("dska", 16)
	if err != nil {
		t.Fatal(err)
	}
	vols.SetFaultPlan(plan)
	return vols, p
}

func TestNilPlanInjectsNothing(t *testing.T) {
	_, p := faultFixture(t, nil)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := p.WriteRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	var nilPlan *FaultPlan
	if nilPlan.Mutations() != 0 || nilPlan.Crashed() {
		t.Error("nil plan reports activity")
	}
}

func TestRuleInjectsTransientByOccurrence(t *testing.T) {
	// The second write (occurrence 1) fails once, transiently.
	plan := &FaultPlan{Rules: []Rule{{Op: OpWrite, After: 1, Times: 1}}}
	_, p := faultFixture(t, plan)
	buf := make([]hw.Word, hw.PageWords)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteRecord(r, buf); err != nil {
		t.Fatalf("write #0: %v", err)
	}
	err = p.WriteRecord(r, buf)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("write #1 = %v, want transient", err)
	}
	if errors.Is(err, ErrPermanent) || errors.Is(err, ErrCrashed) {
		t.Fatalf("transient fault also matches other sentinels: %v", err)
	}
	if err := p.WriteRecord(r, buf); err != nil {
		t.Fatalf("write #2 after transient: %v", err)
	}
}

func TestRulePermanentAndPackScoped(t *testing.T) {
	plan := &FaultPlan{Rules: []Rule{{Op: OpAlloc, Pack: "dskb", Permanent: true}}}
	vols, p := faultFixture(t, plan)
	pb, err := vols.AddPack("dskb", 16)
	if err != nil {
		t.Fatal(err)
	}
	// The rule names dskb only; dska allocates freely.
	if _, err := p.AllocRecord(); err != nil {
		t.Fatalf("alloc on unscoped pack: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := pb.AllocRecord(); !errors.Is(err, ErrPermanent) {
			t.Fatalf("alloc #%d on dskb = %v, want permanent", i, err)
		}
	}
}

func TestCrashAtMutationHaltsEverything(t *testing.T) {
	plan := &FaultPlan{CrashAtMutation: 3}
	_, p := faultFixture(t, plan)
	buf := make([]hw.Word, hw.PageWords)
	r, err := p.AllocRecord() // mutation 1
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteRecord(r, buf); err != nil { // mutation 2
		t.Fatal(err)
	}
	// Mutation 3 is the crash: it does not apply.
	if _, err := p.CreateEntry(9, false, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("mutation at crash point = %v, want crashed", err)
	}
	if !plan.Crashed() {
		t.Error("plan not marked crashed")
	}
	if p.Entries() != 0 {
		t.Error("the crashing mutation applied")
	}
	// After the crash even reads fail.
	if err := p.ReadRecord(r, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash = %v, want crashed", err)
	}
	if _, err := p.AllocRecord(); !errors.Is(err, ErrCrashed) {
		t.Errorf("alloc after crash = %v, want crashed", err)
	}
	if plan.Mutations() != 3 {
		t.Errorf("mutation count = %d, want 3 (post-crash attempts do not count)", plan.Mutations())
	}
	// The pack stays dirty: the salvager's cue.
	if !p.Dirty() {
		t.Error("pack clean after crash")
	}
}

func TestSeededTransientsAreDeterministic(t *testing.T) {
	run := func() []int {
		plan := &FaultPlan{Seed: 42, TransientEvery: 4}
		_, p := faultFixture(t, plan)
		buf := make([]hw.Word, hw.PageWords)
		r, err := retried(p.AllocRecord)
		if err != nil {
			t.Fatal(err)
		}
		var failed []int
		for i := 0; i < 64; i++ {
			if err := p.WriteRecord(r, buf); err != nil {
				if !errors.Is(err, ErrTransient) {
					t.Fatalf("write %d: %v", i, err)
				}
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded stream injected nothing in 64 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ at %d: %v vs %v", i, a, b)
		}
	}
}

// retried adapts a value-returning operation to Retry for the test
// above.
func retried(fn func() (RecordAddr, error)) (RecordAddr, error) {
	var r RecordAddr
	err := Retry(nil, func() error {
		var err error
		r, err = fn()
		return err
	})
	return r, err
}

func TestRetryRecoversTransientsOnly(t *testing.T) {
	meter := &hw.CostMeter{}

	// A fault that clears within MaxRetries attempts succeeds, and
	// the deterministic backoff is charged.
	calls := 0
	err := Retry(meter, func() error {
		calls++
		if calls <= 2 {
			return fmt.Errorf("test: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry = %v after %d calls", err, calls)
	}
	if meter.Cycles() == 0 {
		t.Error("no backoff cycles charged")
	}

	// A fault that never clears gives up after MaxRetries+1 attempts.
	calls = 0
	err = Retry(nil, func() error { calls++; return fmt.Errorf("test: %w", ErrTransient) })
	if !errors.Is(err, ErrTransient) || calls != MaxRetries+1 {
		t.Errorf("persistent transient: %v after %d calls", err, calls)
	}

	// Permanent faults are not retried at all.
	calls = 0
	err = Retry(nil, func() error { calls++; return fmt.Errorf("test: %w", ErrPermanent) })
	if !errors.Is(err, ErrPermanent) || calls != 1 {
		t.Errorf("permanent fault: %v after %d calls", err, calls)
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{OpRead, OpWrite, OpAlloc, Op(9)} {
		if op.String() == "" {
			t.Errorf("Op(%d) empty", int(op))
		}
	}
}

func TestInjectedFaultsAreTraced(t *testing.T) {
	plan := &FaultPlan{
		Rules:           []Rule{{Op: OpWrite, After: 0, Times: 1}},
		CrashAtMutation: 4,
	}
	vols, p := faultFixture(t, plan)
	rec := trace.NewRecorder(16, nil)
	rec.Register(ModuleName)
	vols.SetTrace(rec)

	buf := make([]hw.Word, hw.PageWords)
	r, err := p.AllocRecord() // mutation 1
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteRecord(r, buf); !errors.Is(err, ErrTransient) { // mutation 2, injected
		t.Fatalf("first write = %v, want transient", err)
	}
	if err := p.WriteRecord(r, buf); err != nil { // mutation 3
		t.Fatal(err)
	}
	if err := p.WriteRecord(r, buf); !errors.Is(err, ErrCrashed) { // mutation 4: crash
		t.Fatalf("crash write = %v, want crashed", err)
	}

	var got []trace.Event
	for _, ev := range rec.Events() {
		if ev.Kind == trace.EvFaultInjected {
			got = append(got, ev)
		}
	}
	if len(got) != 2 {
		t.Fatalf("%d fault-injected events, want 2 (transient + crash)", len(got))
	}
	if got[0].Module != ModuleName || got[0].Arg0 != int64(OpWrite) || got[0].Arg1 != 0 {
		t.Errorf("transient event = %+v", got[0])
	}
	if got[1].Arg1 != 2 {
		t.Errorf("crash event class = %d, want 2", got[1].Arg1)
	}
	if len(rec.Unknown()) != 0 {
		t.Errorf("fault events from unregistered module: %v", rec.Unknown())
	}
}
