// Package disk simulates the secondary-storage substrate of Multics:
// demountable disk packs, each with a table of contents naming the
// segments it stores, and per-segment file maps allocating one record
// per non-zero page.
//
// The details the paper's arguments depend on are reproduced exactly:
//
//   - a directory entry names a segment by pack identifier and an
//     index into that pack's table of contents;
//   - for robustness and demountability, all pages of a segment live
//     on the same pack, so growing a segment can raise a full-pack
//     exception that forces the whole segment to move to an emptier
//     pack and the directory entry to be updated;
//   - page-sized blocks of zeros are represented by flags in the file
//     map rather than by allocated records, so a 100-page file that is
//     non-zero in only two pages is charged for two records.
package disk

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"multics/internal/hw"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for record transfers are attributed to it.
const ModuleName = "disk-record-manager"

// ErrPackFull is reported when a record allocation finds no free
// record on the pack: the full-disk-pack exception of the paper.
var ErrPackFull = errors.New("disk: pack full")

// RecordAddr is the index of one 1024-word record on a pack.
type RecordAddr int

// TOCIndex is an index into a pack's table of contents.
type TOCIndex int

// SegAddr is the permanent name of a segment's storage: the containing
// pack and the index of its table-of-contents entry. This is the form
// in which a file-system directory entry names a segment.
type SegAddr struct {
	Pack string
	TOC  TOCIndex
}

func (a SegAddr) String() string { return fmt.Sprintf("%s:%d", a.Pack, int(a.TOC)) }

// PageState classifies one page in a file map.
type PageState int

const (
	// PageUnallocated marks a page that has never been used. A
	// reference to it is what raises the quota exception.
	PageUnallocated PageState = iota
	// PageZero marks a page whose contents are entirely zero and is
	// therefore represented by this flag alone, with no record.
	PageZero
	// PageStored marks a page stored in a disk record.
	PageStored
)

func (s PageState) String() string {
	switch s {
	case PageUnallocated:
		return "unallocated"
	case PageZero:
		return "zero"
	case PageStored:
		return "stored"
	default:
		return fmt.Sprintf("pagestate(%d)", int(s))
	}
}

// A FileMapEntry locates one page of a segment.
type FileMapEntry struct {
	State  PageState
	Record RecordAddr
}

// A QuotaCell is the storage-quota record kept in the table-of-contents
// entry of a directory that has been designated a quota directory: a
// limit on the pages chargeable to the subtree and the count of pages
// currently used. The quota cell manager caches these in primary
// memory; this struct is their home on disk.
type QuotaCell struct {
	Valid bool
	Limit int
	Used  int
}

// A TOCEntry describes one segment stored on a pack.
type TOCEntry struct {
	// UID is the segment's system-wide unique identifier.
	UID uint64
	// Dir records that the segment holds a directory.
	Dir bool
	// Gov is the unique identifier of the quota directory whose cell
	// this segment's pages are charged to (zero for segments that
	// never grow). Because quota cells are statically bound, the
	// binding can be recorded here at creation — which is what lets
	// the volume salvager recompute every cell's used-count from the
	// file maps alone after a crash. Naming the governing cell by
	// segment UID rather than disk address keeps the binding valid
	// across relocations.
	Gov uint64
	// Map is the file map, one entry per page.
	Map []FileMapEntry
	// Quota is the quota cell, meaningful only for quota
	// directories.
	Quota QuotaCell
	live  bool
}

// Records reports the number of disk records the entry occupies (its
// chargeable size).
func (e *TOCEntry) Records() int {
	n := 0
	for _, m := range e.Map {
		if m.State == PageStored {
			n++
		}
	}
	return n
}

// A Pack is one demountable disk pack: a fixed number of records, a
// free list, and a table of contents. All methods are safe for
// concurrent use.
type Pack struct {
	id       string
	capacity int

	mu      sync.Mutex
	mounted bool
	dirty   bool
	used    int
	free    []RecordAddr
	data    map[RecordAddr][]hw.Word
	toc     []TOCEntry
	meter   *hw.CostMeter
	sink    trace.Sink
	spans   trace.SpanSink
	faults  *FaultPlan
	// head is the record the heads are positioned over after the last
	// transfer; distance from it prices the next seek.
	head RecordAddr

	// dev is the pack's asynchronous request queue (queue.go).
	dev device
}

// SetTrace routes this pack's record transfers to s (nil turns
// tracing off).
func (p *Pack) SetTrace(s trace.Sink) {
	p.mu.Lock()
	p.sink = s
	p.spans = trace.SpanSinkOf(s)
	p.mu.Unlock()
}

// SetFaultPlan installs a fault plan on this pack (nil removes it —
// the reboot path, where the new machine sees the old packs but not
// the old failure schedule).
func (p *Pack) SetFaultPlan(f *FaultPlan) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Dirty reports whether the pack has seen a mutation since it was
// last salvaged (or created). A pack that is dirty when mounted at
// boot was not shut down cleanly and must be salvaged before use.
func (p *Pack) Dirty() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirty
}

// MarkClean clears the dirty flag; the volume salvager calls it after
// a successful repair pass.
func (p *Pack) MarkClean() {
	p.mu.Lock()
	p.dirty = false
	p.mu.Unlock()
}

// noteInjected emits a trace event for an injected fault; called with
// p.mu held.
func (p *Pack) noteInjected(op int64, err error) {
	if p.sink == nil {
		return
	}
	var class int64
	switch {
	case errors.Is(err, ErrCrashed):
		class = 2
	case errors.Is(err, ErrPermanent):
		class = 1
	}
	p.sink.Emit(trace.Event{Kind: trace.EvFaultInjected, Module: ModuleName, Arg0: op, Arg1: class})
}

// NewPack returns a mounted pack with the given identifier and record
// capacity, metering transfers onto meter (which may be nil).
func NewPack(id string, capacity int, meter *hw.CostMeter) *Pack {
	if capacity <= 0 {
		panic(fmt.Sprintf("disk: NewPack capacity = %d", capacity))
	}
	p := &Pack{
		id:       id,
		capacity: capacity,
		mounted:  true,
		data:     make(map[RecordAddr][]hw.Word),
		meter:    meter,
	}
	for r := capacity - 1; r >= 0; r-- {
		p.free = append(p.free, RecordAddr(r))
	}
	return p
}

// ID returns the pack identifier.
func (p *Pack) ID() string { return p.id }

// Capacity reports the total number of records.
func (p *Pack) Capacity() int { return p.capacity }

// FreeRecords reports the number of unallocated records.
func (p *Pack) FreeRecords() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// UsedRecords reports the number of allocated records.
func (p *Pack) UsedRecords() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

func (p *Pack) checkMounted() error {
	if !p.mounted {
		return fmt.Errorf("disk: pack %s is not mounted", p.id)
	}
	return nil
}

// AllocRecord allocates one record, returning ErrPackFull when none
// remain.
func (p *Pack) AllocRecord() (RecordAddr, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return 0, err
	}
	if err := p.faults.checkOp(OpAlloc, p.id, true); err != nil {
		p.noteInjected(int64(OpAlloc), err)
		return 0, err
	}
	if len(p.free) == 0 {
		return 0, ErrPackFull
	}
	p.dirty = true
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.used++
	return r, nil
}

// FreeRecord returns a record to the free list and discards its
// contents.
func (p *Pack) FreeRecord(r RecordAddr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if r < 0 || int(r) >= p.capacity {
		return fmt.Errorf("disk: record %d outside pack %s of %d records", r, p.id, p.capacity)
	}
	if err := p.faults.checkMutation(p.id); err != nil {
		p.noteInjected(-1, err)
		return err
	}
	p.dirty = true
	delete(p.data, r)
	p.free = append(p.free, r)
	p.used--
	return nil
}

// ClaimRecord removes the specific record r from the free list,
// allocating it in place. The volume salvager uses it to honour a
// file-map claim on a record that an interrupted operation left free;
// it is an error if r is not free.
func (p *Pack) ClaimRecord(r RecordAddr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if r < 0 || int(r) >= p.capacity {
		return fmt.Errorf("disk: record %d outside pack %s of %d records", r, p.id, p.capacity)
	}
	for i, f := range p.free {
		if f == r {
			p.dirty = true
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.used++
			return nil
		}
	}
	return fmt.Errorf("disk: record %d on pack %s is not free", r, p.id)
}

// FreeRecordList returns a copy of the free list; the volume salvager
// diffs it against the file-map claims.
func (p *Pack) FreeRecordList() []RecordAddr {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]RecordAddr(nil), p.free...)
}

// ReadRecord copies record r into dst (PageWords words). Reading a
// never-written record yields zeros.
func (p *Pack) ReadRecord(r RecordAddr, dst []hw.Word) error {
	// A record transfer is a yield point under the deterministic
	// executor: the schedule may preempt at every disk completion.
	schedsim.Yield(schedsim.PointDisk, "read")
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if len(dst) != hw.PageWords {
		return fmt.Errorf("disk: ReadRecord buffer of %d words, want %d", len(dst), hw.PageWords)
	}
	if r < 0 || int(r) >= p.capacity {
		return fmt.Errorf("disk: record %d outside pack %s", r, p.id)
	}
	if p.spans != nil {
		p.spans.BeginSpan(trace.SpanDiskRead, ModuleName, int64(r))
		defer p.spans.EndSpan(trace.SpanDiskRead)
	}
	if err := p.faults.checkOp(OpRead, p.id, false); err != nil {
		p.noteInjected(int64(OpRead), err)
		return err
	}
	p.meter.Add(hw.CycDiskSeek + hw.CycDiskRecord)
	p.head = r
	if p.sink != nil {
		p.sink.Emit(trace.Event{Kind: trace.EvDiskRead, Module: ModuleName, Cost: hw.CycDiskSeek + hw.CycDiskRecord, Arg0: int64(r)})
	}
	if d, ok := p.data[r]; ok {
		copy(dst, d)
	} else {
		clear(dst)
	}
	return nil
}

// WriteRecord stores src (PageWords words) into record r.
func (p *Pack) WriteRecord(r RecordAddr, src []hw.Word) error {
	schedsim.Yield(schedsim.PointDisk, "write")
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if len(src) != hw.PageWords {
		return fmt.Errorf("disk: WriteRecord buffer of %d words, want %d", len(src), hw.PageWords)
	}
	if r < 0 || int(r) >= p.capacity {
		return fmt.Errorf("disk: record %d outside pack %s", r, p.id)
	}
	if p.spans != nil {
		p.spans.BeginSpan(trace.SpanDiskWrite, ModuleName, int64(r))
		defer p.spans.EndSpan(trace.SpanDiskWrite)
	}
	if err := p.faults.checkOp(OpWrite, p.id, true); err != nil {
		p.noteInjected(int64(OpWrite), err)
		return err
	}
	p.dirty = true
	p.meter.Add(hw.CycDiskSeek + hw.CycDiskRecord)
	p.head = r
	if p.sink != nil {
		p.sink.Emit(trace.Event{Kind: trace.EvDiskWrite, Module: ModuleName, Cost: hw.CycDiskSeek + hw.CycDiskRecord, Arg0: int64(r)})
	}
	d, ok := p.data[r]
	if !ok {
		d = make([]hw.Word, hw.PageWords)
		p.data[r] = d
	}
	copy(d, src)
	return nil
}

// WriteRecordBatch stores several records in one submission, pricing
// each positioning movement by distance: adjacent records transfer
// back to back for free, short hops within ShortSeekSpan records pay
// the CycDiskSeekShort tier, and long hops pay the full CycDiskSeek —
// so a sorted (elevator-ordered) batch is measurably cheaper than the
// same records scattered. Each record passes the same fault-plane
// check as an individual WriteRecord, in order, so crash-point sweeps
// observe the same mutation sequence; on an injected fault the
// earlier records of the batch are already on the pack, exactly as if
// they had been written singly.
func (p *Pack) WriteRecordBatch(recs []RecordAddr, bufs [][]hw.Word) error {
	schedsim.Yield(schedsim.PointDisk, "write-batch")
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if len(recs) != len(bufs) {
		return fmt.Errorf("disk: WriteRecordBatch with %d records but %d buffers", len(recs), len(bufs))
	}
	for i, r := range recs {
		if len(bufs[i]) != hw.PageWords {
			return fmt.Errorf("disk: WriteRecordBatch buffer of %d words, want %d", len(bufs[i]), hw.PageWords)
		}
		if r < 0 || int(r) >= p.capacity {
			return fmt.Errorf("disk: record %d outside pack %s", r, p.id)
		}
	}
	if p.spans != nil {
		p.spans.BeginSpan(trace.SpanDiskWrite, ModuleName, int64(len(recs)))
		defer p.spans.EndSpan(trace.SpanDiskWrite)
	}
	for i, r := range recs {
		if err := p.faults.checkOp(OpWrite, p.id, true); err != nil {
			p.noteInjected(int64(OpWrite), err)
			return err
		}
		p.dirty = true
		cost := seekDelta(p.head, r) + hw.CycDiskRecord
		p.meter.Add(cost)
		p.head = r
		if p.sink != nil {
			p.sink.Emit(trace.Event{Kind: trace.EvDiskWrite, Module: ModuleName, Cost: cost, Arg0: int64(r)})
		}
		d, ok := p.data[r]
		if !ok {
			d = make([]hw.Word, hw.PageWords)
			p.data[r] = d
		}
		copy(d, bufs[i])
	}
	return nil
}

// CreateEntry allocates a table-of-contents entry for a new segment
// with the given unique identifier. gov names, by unique identifier,
// the quota directory whose cell the segment's pages will charge
// (zero for a segment that never grows); recording it here is what
// keeps used-counts recomputable by the volume salvager.
func (p *Pack) CreateEntry(uid uint64, dir bool, gov uint64) (TOCIndex, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return 0, err
	}
	if err := p.faults.checkMutation(p.id); err != nil {
		p.noteInjected(-1, err)
		return 0, err
	}
	p.dirty = true
	for i := range p.toc {
		if !p.toc[i].live {
			p.toc[i] = TOCEntry{UID: uid, Dir: dir, Gov: gov, live: true}
			return TOCIndex(i), nil
		}
	}
	p.toc = append(p.toc, TOCEntry{UID: uid, Dir: dir, Gov: gov, live: true})
	return TOCIndex(len(p.toc) - 1), nil
}

// DeleteEntry removes a table-of-contents entry, freeing every record
// its file map holds.
func (p *Pack) DeleteEntry(idx TOCIndex) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.entry(idx)
	if err != nil {
		return err
	}
	if err := p.faults.checkMutation(p.id); err != nil {
		p.noteInjected(-1, err)
		return err
	}
	p.dirty = true
	for _, m := range e.Map {
		if m.State == PageStored {
			delete(p.data, m.Record)
			p.free = append(p.free, m.Record)
			p.used--
		}
	}
	*e = TOCEntry{}
	return nil
}

// DropEntry clears a table-of-contents entry without freeing the
// records its file map names. The volume salvager uses it to discard
// the losing copy of a duplicated entry: any records only that copy
// claimed become orphans, which the salvager's orphan scan then frees
// — freeing them here could double-free a record the surviving copy
// also claims.
func (p *Pack) DropEntry(idx TOCIndex) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.entry(idx)
	if err != nil {
		return err
	}
	if err := p.faults.checkMutation(p.id); err != nil {
		p.noteInjected(-1, err)
		return err
	}
	p.dirty = true
	*e = TOCEntry{}
	return nil
}

func (p *Pack) entry(idx TOCIndex) (*TOCEntry, error) {
	if idx < 0 || int(idx) >= len(p.toc) || !p.toc[idx].live {
		return nil, fmt.Errorf("disk: no table-of-contents entry %d on pack %s", idx, p.id)
	}
	return &p.toc[idx], nil
}

// Entry returns a copy of table-of-contents entry idx.
func (p *Pack) Entry(idx TOCIndex) (TOCEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.entry(idx)
	if err != nil {
		return TOCEntry{}, err
	}
	cp := *e
	cp.Map = append([]FileMapEntry(nil), e.Map...)
	return cp, nil
}

// UpdateEntry applies fn to table-of-contents entry idx under the pack
// lock. If fn returns an error the entry keeps any changes fn already
// made; callers use this only for atomic read-modify-write.
func (p *Pack) UpdateEntry(idx TOCIndex, fn func(*TOCEntry) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.entry(idx)
	if err != nil {
		return err
	}
	if err := p.faults.checkMutation(p.id); err != nil {
		p.noteInjected(-1, err)
		return err
	}
	p.dirty = true
	return fn(e)
}

// EachEntry calls fn for every live table-of-contents entry with a
// copy of the entry.
func (p *Pack) EachEntry(fn func(TOCIndex, TOCEntry)) {
	p.mu.Lock()
	snapshot := make([]TOCEntry, len(p.toc))
	copy(snapshot, p.toc)
	p.mu.Unlock()
	for i, e := range snapshot {
		if e.live {
			cp := e
			cp.Map = append([]FileMapEntry(nil), e.Map...)
			fn(TOCIndex(i), cp)
		}
	}
}

// Entries reports the number of live table-of-contents entries.
func (p *Pack) Entries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.toc {
		if p.toc[i].live {
			n++
		}
	}
	return n
}

// Volumes is the disk volume control module: the registry of mounted
// packs. It is the lowest module of the file system proper.
type Volumes struct {
	mu     sync.Mutex
	packs  map[string]*Pack
	meter  *hw.CostMeter
	sink   trace.Sink
	faults *FaultPlan
}

// SetTrace routes record transfers on every pack — mounted now or
// added later — to s.
func (v *Volumes) SetTrace(s trace.Sink) {
	v.mu.Lock()
	v.sink = s
	packs := make([]*Pack, 0, len(v.packs))
	for _, p := range v.packs {
		packs = append(packs, p)
	}
	v.mu.Unlock()
	for _, p := range packs {
		p.SetTrace(s)
	}
}

// SetFaultPlan installs a fault plan on every pack — mounted now or
// added later — so the plan's step counters order all disk activity.
// Nil removes the plan: the reboot path.
func (v *Volumes) SetFaultPlan(f *FaultPlan) {
	v.mu.Lock()
	v.faults = f
	packs := make([]*Pack, 0, len(v.packs))
	for _, p := range v.packs {
		packs = append(packs, p)
	}
	v.mu.Unlock()
	for _, p := range packs {
		p.SetFaultPlan(f)
	}
}

// NewVolumes returns an empty volume registry.
func NewVolumes(meter *hw.CostMeter) *Volumes {
	return &Volumes{packs: make(map[string]*Pack), meter: meter}
}

// AddPack creates and mounts a new pack.
func (v *Volumes) AddPack(id string, capacity int) (*Pack, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.packs[id]; ok {
		return nil, fmt.Errorf("disk: pack %s already mounted", id)
	}
	p := NewPack(id, capacity, v.meter)
	p.SetTrace(v.sink)
	p.SetFaultPlan(v.faults)
	v.packs[id] = p
	return p, nil
}

// Pack returns the mounted pack with the given identifier.
func (v *Volumes) Pack(id string) (*Pack, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p, ok := v.packs[id]
	if !ok {
		return nil, fmt.Errorf("disk: no mounted pack %s", id)
	}
	return p, nil
}

// Mount returns a previously demounted pack to service under its own
// identifier: demountability is the point of keeping every page of a
// segment on one pack.
func (v *Volumes) Mount(p *Pack) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.packs[p.ID()]; ok {
		return fmt.Errorf("disk: pack %s already mounted", p.ID())
	}
	p.mu.Lock()
	p.mounted = true
	p.sink = v.sink
	p.spans = trace.SpanSinkOf(v.sink)
	p.faults = v.faults
	p.mu.Unlock()
	v.packs[p.ID()] = p
	return nil
}

// Demount removes a pack from the registry. Its contents survive in
// the returned Pack but no further transfers are honoured.
func (v *Volumes) Demount(id string) (*Pack, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p, ok := v.packs[id]
	if !ok {
		return nil, fmt.Errorf("disk: no mounted pack %s", id)
	}
	delete(v.packs, id)
	p.mu.Lock()
	p.mounted = false
	p.mu.Unlock()
	return p, nil
}

// Emptiest returns the mounted pack with the most free records,
// excluding the named pack; the segment-relocation path uses it to
// choose the destination after a full-pack exception. It returns an
// error when no other pack has free space.
func (v *Volumes) Emptiest(exclude string) (*Pack, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var ids []string
	for id := range v.packs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic tie-break
	var best *Pack
	for _, id := range ids {
		p := v.packs[id]
		if id == exclude {
			continue
		}
		if best == nil || p.FreeRecords() > best.FreeRecords() {
			best = p
		}
	}
	if best == nil || best.FreeRecords() == 0 {
		return nil, fmt.Errorf("disk: no pack with free space (excluding %s)", exclude)
	}
	return best, nil
}

// Packs returns the identifiers of all mounted packs, sorted.
func (v *Volumes) Packs() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var ids []string
	for id := range v.packs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
