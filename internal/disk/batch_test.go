package disk

import (
	"testing"

	"multics/internal/hw"
)

// A grouped submission writes every record and prices each
// positioning movement by distance: an adjacent run transfers back to
// back with no seek at all, so elevator-ordered batches are rewarded.
func TestWriteRecordBatch(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 8, meter)
	var recs []RecordAddr
	var bufs [][]hw.Word
	for i := 0; i < 3; i++ {
		r, err := p.AllocRecord()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]hw.Word, hw.PageWords)
		buf[0] = hw.Word(100 + i)
		recs = append(recs, r)
		bufs = append(bufs, buf)
	}
	before := meter.Cycles()
	if err := p.WriteRecordBatch(recs, bufs); err != nil {
		t.Fatal(err)
	}
	// Records 0,1,2 from a head parked at 0: three back-to-back
	// transfers, no positioning.
	if got, want := meter.Cycles()-before, int64(3*hw.CycDiskRecord); got != want {
		t.Errorf("adjacent batch of 3 cost %d cycles, want %d (three back-to-back transfers)", got, want)
	}
	dst := make([]hw.Word, hw.PageWords)
	for i, r := range recs {
		if err := p.ReadRecord(r, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != hw.Word(100+i) {
			t.Errorf("record %d word 0 = %d, want %d", r, dst[0], 100+i)
		}
	}
}

// The two seek tiers: a hop within ShortSeekSpan records pays the
// short tier, a hop beyond it the full average seek. A scattered
// batch is therefore measurably dearer than the same records sorted.
func TestWriteRecordBatchSeekTiers(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 512, meter)
	buf := make([]hw.Word, hw.PageWords)
	// Park the head at record 2.
	if err := p.WriteRecord(2, buf); err != nil {
		t.Fatal(err)
	}
	before := meter.Cycles()
	// 2 -> 10 short, 10 -> 12 short, 12 -> 400 long.
	if err := p.WriteRecordBatch([]RecordAddr{10, 12, 400}, [][]hw.Word{buf, buf, buf}); err != nil {
		t.Fatal(err)
	}
	want := int64(2*hw.CycDiskSeekShort + hw.CycDiskSeek + 3*hw.CycDiskRecord)
	if got := meter.Cycles() - before; got != want {
		t.Errorf("tiered batch cost %d cycles, want %d (two short seeks, one long, three transfers)", got, want)
	}
}

// Validation happens before any transfer: a bad entry anywhere in the
// batch leaves every record untouched.
func TestWriteRecordBatchValidatesUpFront(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 4, meter)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	good := make([]hw.Word, hw.PageWords)
	good[0] = 55
	if err := p.WriteRecord(r, good); err != nil {
		t.Fatal(err)
	}
	good[0] = 99
	if err := p.WriteRecordBatch([]RecordAddr{r, RecordAddr(9)}, [][]hw.Word{good, good}); err == nil {
		t.Error("out-of-range record in batch accepted")
	}
	if err := p.WriteRecordBatch([]RecordAddr{r, r}, [][]hw.Word{good, good[:5]}); err == nil {
		t.Error("short buffer in batch accepted")
	}
	if err := p.WriteRecordBatch([]RecordAddr{r}, [][]hw.Word{good, good}); err == nil {
		t.Error("mismatched batch lengths accepted")
	}
	dst := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(r, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 55 {
		t.Errorf("rejected batch modified record: word 0 = %d, want 55", dst[0])
	}
}
