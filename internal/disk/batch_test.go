package disk

import (
	"testing"

	"multics/internal/hw"
)

// A grouped submission writes every record but pays the seek once.
func TestWriteRecordBatch(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 8, meter)
	var recs []RecordAddr
	var bufs [][]hw.Word
	for i := 0; i < 3; i++ {
		r, err := p.AllocRecord()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]hw.Word, hw.PageWords)
		buf[0] = hw.Word(100 + i)
		recs = append(recs, r)
		bufs = append(bufs, buf)
	}
	before := meter.Cycles()
	if err := p.WriteRecordBatch(recs, bufs); err != nil {
		t.Fatal(err)
	}
	if got, want := meter.Cycles()-before, int64(hw.CycDiskSeek+3*hw.CycDiskRecord); got != want {
		t.Errorf("batch of 3 cost %d cycles, want %d (one seek, three transfers)", got, want)
	}
	dst := make([]hw.Word, hw.PageWords)
	for i, r := range recs {
		if err := p.ReadRecord(r, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != hw.Word(100+i) {
			t.Errorf("record %d word 0 = %d, want %d", r, dst[0], 100+i)
		}
	}
}

// Validation happens before any transfer: a bad entry anywhere in the
// batch leaves every record untouched.
func TestWriteRecordBatchValidatesUpFront(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 4, meter)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	good := make([]hw.Word, hw.PageWords)
	good[0] = 55
	if err := p.WriteRecord(r, good); err != nil {
		t.Fatal(err)
	}
	good[0] = 99
	if err := p.WriteRecordBatch([]RecordAddr{r, RecordAddr(9)}, [][]hw.Word{good, good}); err == nil {
		t.Error("out-of-range record in batch accepted")
	}
	if err := p.WriteRecordBatch([]RecordAddr{r, r}, [][]hw.Word{good, good[:5]}); err == nil {
		t.Error("short buffer in batch accepted")
	}
	if err := p.WriteRecordBatch([]RecordAddr{r}, [][]hw.Word{good, good}); err == nil {
		t.Error("mismatched batch lengths accepted")
	}
	dst := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(r, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 55 {
		t.Errorf("rejected batch modified record: word 0 = %d, want 55", dst[0])
	}
}
