package disk

import (
	"errors"
	"testing"
	"testing/quick"

	"multics/internal/hw"
)

func TestAllocUntilFull(t *testing.T) {
	p := NewPack("dska", 3, nil)
	seen := map[RecordAddr]bool{}
	for i := 0; i < 3; i++ {
		r, err := p.AllocRecord()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[r] {
			t.Fatalf("record %d allocated twice", r)
		}
		seen[r] = true
	}
	if _, err := p.AllocRecord(); !errors.Is(err, ErrPackFull) {
		t.Errorf("alloc on full pack: %v, want ErrPackFull", err)
	}
	if p.FreeRecords() != 0 || p.UsedRecords() != 3 {
		t.Errorf("free=%d used=%d, want 0/3", p.FreeRecords(), p.UsedRecords())
	}
}

func TestFreeRecordRecycles(t *testing.T) {
	p := NewPack("dska", 1, nil)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]hw.Word, hw.PageWords)
	buf[0] = 42
	if err := p.WriteRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.FreeRecord(r); err != nil {
		t.Fatal(err)
	}
	r2, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Fatalf("recycled record = %d, want %d", r2, r)
	}
	// Contents of a freed-and-reallocated record read as zeros.
	if err := p.ReadRecord(r2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Errorf("freed record retained data: %d", buf[0])
	}
	if err := p.FreeRecord(RecordAddr(99)); err == nil {
		t.Error("free of out-of-range record succeeded")
	}
}

func TestRecordIO(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 4, meter)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	src := make([]hw.Word, hw.PageWords)
	for i := range src {
		src[i] = hw.Word(i)
	}
	if err := p.WriteRecord(r, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(r, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("word %d = %d, want %d", i, dst[i], src[i])
		}
	}
	if meter.Cycles() < 2*(hw.CycDiskSeek+hw.CycDiskRecord) {
		t.Errorf("two transfers accrued only %d cycles", meter.Cycles())
	}
	if err := p.ReadRecord(r, dst[:5]); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := p.WriteRecord(r, src[:5]); err == nil {
		t.Error("short write buffer accepted")
	}
	if err := p.WriteRecord(RecordAddr(9), src); err == nil {
		t.Error("write to out-of-range record succeeded")
	}
}

func TestTOCEntryLifecycle(t *testing.T) {
	p := NewPack("dska", 8, nil)
	idx, err := p.CreateEntry(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Entry(idx)
	if err != nil {
		t.Fatal(err)
	}
	if e.UID != 100 || e.Dir {
		t.Errorf("entry = %+v", e)
	}
	// Grow the file map: one stored page, one zero page, one
	// unallocated page.
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	err = p.UpdateEntry(idx, func(e *TOCEntry) error {
		e.Map = []FileMapEntry{
			{State: PageStored, Record: r},
			{State: PageZero},
			{State: PageUnallocated},
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err = p.Entry(idx)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Records(); got != 1 {
		t.Errorf("Records() = %d, want 1 (zero pages are free)", got)
	}
	// Entry returns a copy: mutating it must not affect the pack.
	e.Map[0].State = PageZero
	e2, _ := p.Entry(idx)
	if e2.Map[0].State != PageStored {
		t.Error("Entry returned aliased file map")
	}
	// DeleteEntry frees the mapped record.
	before := p.FreeRecords()
	if err := p.DeleteEntry(idx); err != nil {
		t.Fatal(err)
	}
	if p.FreeRecords() != before+1 {
		t.Errorf("free records after delete = %d, want %d", p.FreeRecords(), before+1)
	}
	if _, err := p.Entry(idx); err == nil {
		t.Error("deleted entry still readable")
	}
	if p.Entries() != 0 {
		t.Errorf("Entries = %d after delete", p.Entries())
	}
}

func TestTOCSlotReuse(t *testing.T) {
	p := NewPack("dska", 2, nil)
	a, _ := p.CreateEntry(1, false, 0)
	b, _ := p.CreateEntry(2, true, 2)
	if err := p.DeleteEntry(a); err != nil {
		t.Fatal(err)
	}
	c, err := p.CreateEntry(3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("new entry got slot %d, want recycled slot %d", c, a)
	}
	eb, _ := p.Entry(b)
	if eb.UID != 2 || !eb.Dir {
		t.Errorf("entry b corrupted: %+v", eb)
	}
}

func TestQuotaCellStorage(t *testing.T) {
	p := NewPack("dska", 2, nil)
	idx, _ := p.CreateEntry(7, true, 7)
	err := p.UpdateEntry(idx, func(e *TOCEntry) error {
		e.Quota = QuotaCell{Valid: true, Limit: 50, Used: 3}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := p.Entry(idx)
	if !e.Quota.Valid || e.Quota.Limit != 50 || e.Quota.Used != 3 {
		t.Errorf("quota cell = %+v", e.Quota)
	}
}

func TestVolumesRegistry(t *testing.T) {
	v := NewVolumes(nil)
	a, err := v.AddPack("dska", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddPack("dska", 10); err == nil {
		t.Error("duplicate mount succeeded")
	}
	if _, err := v.AddPack("dskb", 20); err != nil {
		t.Fatal(err)
	}
	got, err := v.Pack("dska")
	if err != nil || got != a {
		t.Errorf("Pack(dska) = %v, %v", got, err)
	}
	if _, err := v.Pack("nope"); err == nil {
		t.Error("lookup of unmounted pack succeeded")
	}
	ids := v.Packs()
	if len(ids) != 2 || ids[0] != "dska" || ids[1] != "dskb" {
		t.Errorf("Packs = %v", ids)
	}
}

func TestEmptiestChoosesMostFree(t *testing.T) {
	v := NewVolumes(nil)
	a, _ := v.AddPack("dska", 5)
	if _, err := v.AddPack("dskb", 10); err != nil {
		t.Fatal(err)
	}
	c, _ := v.AddPack("dskc", 10)
	// Fill dskc partially so dskb is emptiest.
	for i := 0; i < 3; i++ {
		if _, err := c.AllocRecord(); err != nil {
			t.Fatal(err)
		}
	}
	best, err := v.Emptiest("dska")
	if err != nil {
		t.Fatal(err)
	}
	if best.ID() != "dskb" {
		t.Errorf("Emptiest = %s, want dskb", best.ID())
	}
	// Excluding everything with space fails.
	v2 := NewVolumes(nil)
	only, _ := v2.AddPack("solo", 1)
	if _, err := only.AllocRecord(); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Emptiest(""); err == nil {
		t.Error("Emptiest with no free space succeeded")
	}
	if _, err := v2.Emptiest("solo"); err == nil {
		t.Error("Emptiest excluding the only pack succeeded")
	}
	_ = a
}

func TestDemountStopsTransfers(t *testing.T) {
	v := NewVolumes(nil)
	p, _ := v.AddPack("dska", 4)
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Demount("dska"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Demount("dska"); err == nil {
		t.Error("double demount succeeded")
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(r, buf); err == nil {
		t.Error("read from demounted pack succeeded")
	}
	if _, err := p.AllocRecord(); err == nil {
		t.Error("alloc on demounted pack succeeded")
	}
	if _, err := p.CreateEntry(1, false, 0); err == nil {
		t.Error("CreateEntry on demounted pack succeeded")
	}
}

func TestSegAddrString(t *testing.T) {
	a := SegAddr{Pack: "dskb", TOC: 17}
	if a.String() != "dskb:17" {
		t.Errorf("String = %q", a.String())
	}
	for _, s := range []PageState{PageUnallocated, PageZero, PageStored, PageState(9)} {
		if s.String() == "" {
			t.Errorf("PageState(%d) has empty name", int(s))
		}
	}
}

// Property: alloc/free keeps free+used == capacity and never hands out
// an address out of range.
func TestAllocFreeInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPack("q", 16, nil)
		var held []RecordAddr
		for _, alloc := range ops {
			if alloc {
				r, err := p.AllocRecord()
				if err != nil {
					if !errors.Is(err, ErrPackFull) {
						return false
					}
					continue
				}
				if r < 0 || int(r) >= 16 {
					return false
				}
				held = append(held, r)
			} else if len(held) > 0 {
				r := held[len(held)-1]
				held = held[:len(held)-1]
				if err := p.FreeRecord(r); err != nil {
					return false
				}
			}
			if p.FreeRecords()+p.UsedRecords() != 16 {
				return false
			}
			if p.UsedRecords() != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Records() counts exactly the PageStored entries.
func TestRecordsCountProperty(t *testing.T) {
	f := func(states []uint8) bool {
		e := TOCEntry{}
		want := 0
		for _, s := range states {
			st := PageState(s % 3)
			if st == PageStored {
				want++
			}
			e.Map = append(e.Map, FileMapEntry{State: st})
		}
		return e.Records() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEachEntryAndCapacity(t *testing.T) {
	p := NewPack("dska", 7, nil)
	if p.Capacity() != 7 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	a, _ := p.CreateEntry(1, false, 0)
	b, _ := p.CreateEntry(2, true, 2)
	if err := p.DeleteEntry(a); err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	p.EachEntry(func(idx TOCIndex, e TOCEntry) {
		seen = append(seen, e.UID)
		if idx != b {
			t.Errorf("unexpected index %d", idx)
		}
	})
	if len(seen) != 1 || seen[0] != 2 {
		t.Errorf("EachEntry saw %v", seen)
	}
}

func TestDemountRemountPreservesData(t *testing.T) {
	v := NewVolumes(nil)
	p, err := v.AddPack("dska", 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]hw.Word, hw.PageWords)
	buf[0] = 314
	if err := p.WriteRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	demounted, err := v.Demount("dska")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mount(demounted); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount(demounted); err == nil {
		t.Error("double mount succeeded")
	}
	back, err := v.Pack("dska")
	if err != nil {
		t.Fatal(err)
	}
	clear(buf)
	if err := back.ReadRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 314 {
		t.Errorf("remounted data = %d", buf[0])
	}
}

func TestEmptiestTieBreakDeterministic(t *testing.T) {
	// Equal free space on every pack: the winner must be the same on
	// every call regardless of map iteration order — the first pack
	// identifier in sorted order.
	vols := NewVolumes(nil)
	for _, id := range []string{"dskc", "dska", "dskb"} {
		if _, err := vols.AddPack(id, 8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		p, err := vols.Emptiest("")
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() != "dska" {
			t.Fatalf("call %d: Emptiest = %s, want dska", i, p.ID())
		}
	}
	// Excluding the winner moves deterministically to the next.
	for i := 0; i < 50; i++ {
		p, err := vols.Emptiest("dska")
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() != "dskb" {
			t.Fatalf("call %d: Emptiest excluding dska = %s, want dskb", i, p.ID())
		}
	}
}
