package disk

import (
	"errors"
	"sync"
	"testing"

	"multics/internal/hw"
)

func queuePage(w hw.Word) []hw.Word {
	buf := make([]hw.Word, hw.PageWords)
	buf[0] = w
	return buf
}

// A demand read drives the device itself; queued speculative requests
// are serviced in CSCAN elevator order, which the device-account total
// pins: the sorted service order pays short seeks where FIFO order
// would pay long ones.
func TestQueueElevatorOrder(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 512, meter)
	for _, r := range []RecordAddr{40, 50, 60, 300} {
		if err := p.WriteRecord(r, queuePage(hw.Word(1000+r))); err != nil {
			t.Fatal(err)
		}
	}
	// Park the head at 0 so every queued position lies ahead of it.
	dst := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(0, dst); err != nil {
		t.Fatal(err)
	}

	specBufs := map[RecordAddr][]hw.Word{}
	var tickets []*Ticket
	for _, r := range []RecordAddr{300, 50, 60} { // scattered submission order
		buf := make([]hw.Word, hw.PageWords)
		specBufs[r] = buf
		tk, err := p.QueueReadAhead(r, buf)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	demand := make([]hw.Word, hw.PageWords)
	if err := p.QueueRead(40, demand); err != nil {
		t.Fatal(err)
	}
	if demand[0] != 1040 {
		t.Errorf("demand read word 0 = %d, want 1040", demand[0])
	}
	// The demand driver services in elevator order and record 40 is
	// the lowest position at the head, so it stops there: the
	// speculative requests stay queued.
	if got := p.DeviceCycles(); got != hw.CycDiskSeekShort+hw.CycDiskRecord {
		t.Errorf("device cycles after demand = %d, want %d", got, hw.CycDiskSeekShort+hw.CycDiskRecord)
	}
	p.DrainQueue()
	// CSCAN from 40: 50 (short), 60 (short), 300 (long).
	want := int64(hw.CycDiskSeekShort+hw.CycDiskRecord) + // demand 0 -> 40
		int64(2*hw.CycDiskSeekShort+hw.CycDiskSeek+3*hw.CycDiskRecord)
	if got := p.DeviceCycles(); got != want {
		t.Errorf("device cycles after drain = %d, want %d (CSCAN order)", got, want)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for r, buf := range specBufs {
		if buf[0] != hw.Word(1000+r) {
			t.Errorf("speculative read of record %d word 0 = %d, want %d", r, buf[0], 1000+r)
		}
	}
	if enq, depth := p.QueueStats(); enq != 4 || depth != 4 {
		t.Errorf("queue stats = %d enqueued, depth %d; want 4, 4", enq, depth)
	}
}

// Cancel withdraws a still-pending speculative request before any disk
// work; a serviced one is merely discarded.
func TestQueueReadAheadCancel(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 64, meter)
	buf := make([]hw.Word, hw.PageWords)
	tk, err := p.QueueReadAhead(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Cancel() {
		t.Error("pending speculative request not canceled")
	}
	if got := p.DeviceCycles(); got != 0 {
		t.Errorf("canceled request charged %d device cycles", got)
	}
	tk2, err := p.QueueReadAhead(5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if tk2.Cancel() {
		t.Error("serviced request reported as canceled before service")
	}
}

// Injected faults reach queued reads exactly as they reach synchronous
// ones; the queue does not retry on its own.
func TestQueueReadInjectedFault(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 64, meter)
	p.SetFaultPlan(&FaultPlan{Rules: []Rule{{Op: OpRead, After: 0, Times: 1}}})
	buf := make([]hw.Word, hw.PageWords)
	if err := p.QueueRead(1, buf); !errors.Is(err, ErrTransient) {
		t.Fatalf("queued read error = %v, want ErrTransient", err)
	}
	if err := p.QueueRead(1, buf); err != nil {
		t.Fatalf("retried queued read: %v", err)
	}
}

// Concurrent demand readers on one pack share the device seat: one
// drives, the others block on the completion eventcount, and every
// read completes with its own data.
func TestQueueConcurrentWaiters(t *testing.T) {
	meter := &hw.CostMeter{}
	p := NewPack("dska", 256, meter)
	for r := 0; r < 8; r++ {
		if err := p.WriteRecord(RecordAddr(r), queuePage(hw.Word(100+r))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	vals := make([]hw.Word, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]hw.Word, hw.PageWords)
			errs[i] = p.QueueRead(RecordAddr(i), buf)
			vals[i] = buf[0]
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if vals[i] != hw.Word(100+i) {
			t.Errorf("reader %d got word %d, want %d", i, vals[i], 100+i)
		}
	}
}
