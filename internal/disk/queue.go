// The asynchronous per-pack disk pipeline: every pack carries a
// request queue serviced by a device context in CSCAN elevator order,
// so seek cost is paid by distance and grouped positioning is
// rewarded.
//
// The device context is not a free-running goroutine. The shared
// trace recorder assigns every event a global sequence number, so a
// device goroutine racing the processor that it just woke would make
// the event order — the repo's determinism surface — depend on the
// host scheduler. Instead the device seat is *donated*: a waiter that
// finds the seat empty takes it and services the queue (in elevator
// order, for every submitter) until its own request completes, then
// releases the seat and advances the completion eventcount so a
// blocked waiter can take over. The effect is the same overlap — a
// faulting process on pack A never waits behind transfers on packs
// B–D, and a second faulter on a busy pack blocks on the eventcount
// instead of spinning in the device path — while the service order
// stays a pure function of the submission order and, under the
// deterministic executor, of the schedule's choices at the
// PointDiskQueue/PointDisk yield points.
//
// Transfer cycles serviced from the queue are charged to the meter's
// global total but to no processor account (CostMeter.AddUnbound),
// and to the pack's own device account: the device does the work, the
// driving processor merely keeps its books. A parallel fault storm's
// makespan is then the busier of the busiest processor and the
// busiest pack, which is what lets it scale with pack count, not just
// processor count.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// ShortSeekSpan is the head movement, in records, still covered by the
// short-seek cost tier; moves beyond it pay the full average seek.
const ShortSeekSpan = 64

// errCanceled marks a speculative request removed from the queue
// before service; it never escapes to demand callers.
var errCanceled = errors.New("disk: queued request canceled")

// seekDelta returns the positioning cost of moving the heads from one
// record to another: nothing for the same or the adjacent record
// (back-to-back transfer), the short tier within ShortSeekSpan
// records, and the full average seek beyond it. This is what makes
// elevator ordering measurable — a sorted run of requests pays short
// or zero seeks where a scattered one pays full ones.
func seekDelta(from, to RecordAddr) int64 {
	d := int64(to - from)
	if d < 0 {
		d = -d
	}
	switch {
	case d <= 1:
		return 0
	case d <= ShortSeekSpan:
		return hw.CycDiskSeekShort
	default:
		return hw.CycDiskSeek
	}
}

// A request is one queued transfer. recs[0] is its elevator position.
type request struct {
	op          Op
	recs        []RecordAddr
	bufs        [][]hw.Word // OpRead: bufs[0] is the destination
	speculative bool

	// Guarded by the owning device's mutex.
	inflight bool
	done     bool
	err      error
}

// A device is one pack's request queue and service seat.
type device struct {
	mu      sync.Mutex
	pending []*request
	driving bool
	// completions advances once per completed request and once per
	// seat release; waiters block on it instead of spinning.
	completions eventcount.Eventcount

	cycles   int64 // device-account cycles, under mu
	maxDepth int
	enqueued int64
}

// A Ticket names one queued request; the holder of a speculative
// read-ahead claims it with Wait or abandons it with Cancel.
type Ticket struct {
	p *Pack
	r *request
}

// QueueRead reads record r into dst through the pack's device queue,
// blocking until the transfer completes. The caller either drives the
// device itself (servicing the whole queue in elevator order on the
// way) or blocks on the completion eventcount while another submitter
// drives.
func (p *Pack) QueueRead(r RecordAddr, dst []hw.Word) error {
	if err := p.checkQueueable(r, dst); err != nil {
		return err
	}
	return p.enqueue(&request{op: OpRead, recs: []RecordAddr{r}, bufs: [][]hw.Word{dst}}).Wait()
}

// QueueReadAhead queues a speculative read of record r into dst and
// returns without waiting. The transfer is serviced when a demand
// submitter next drives the device (or when the returned ticket is
// claimed); until then the request sits in the elevator queue.
func (p *Pack) QueueReadAhead(r RecordAddr, dst []hw.Word) (*Ticket, error) {
	if err := p.checkQueueable(r, dst); err != nil {
		return nil, err
	}
	return p.enqueue(&request{op: OpRead, recs: []RecordAddr{r}, bufs: [][]hw.Word{dst}, speculative: true}), nil
}

// QueueWriteBatch writes a group of records through the device queue
// as one request, blocking until the group is on the pack. Within the
// group records transfer in the order given — callers sort them to
// earn the short-seek tier — and each record passes the same
// fault-plane check as an individual WriteRecord.
func (p *Pack) QueueWriteBatch(recs []RecordAddr, bufs [][]hw.Word) error {
	if len(recs) != len(bufs) {
		return fmt.Errorf("disk: QueueWriteBatch with %d records but %d buffers", len(recs), len(bufs))
	}
	if len(recs) == 0 {
		return nil
	}
	for i, r := range recs {
		if err := p.checkQueueable(r, bufs[i]); err != nil {
			return err
		}
	}
	return p.enqueue(&request{op: OpWrite, recs: recs, bufs: bufs}).Wait()
}

// checkQueueable validates one record/buffer pair before it joins the
// queue, so the driver never services a malformed request.
func (p *Pack) checkQueueable(r RecordAddr, buf []hw.Word) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	if len(buf) != hw.PageWords {
		return fmt.Errorf("disk: queued transfer buffer of %d words, want %d", len(buf), hw.PageWords)
	}
	if r < 0 || int(r) >= p.capacity {
		return fmt.Errorf("disk: record %d outside pack %s", r, p.id)
	}
	return nil
}

// enqueue appends r to the device queue and returns its ticket.
func (p *Pack) enqueue(r *request) *Ticket {
	// Joining the queue is a schedule decision point: sweeps put
	// windows around the submission/completion races.
	schedsim.Yield(schedsim.PointDiskQueue, "enqueue")
	d := &p.dev
	d.mu.Lock()
	d.pending = append(d.pending, r)
	d.enqueued++
	depth := len(d.pending)
	if depth > d.maxDepth {
		d.maxDepth = depth
	}
	d.mu.Unlock()
	// The submitter pays only the enqueue bookkeeping; the transfer
	// itself is device work.
	p.meter.Add(hw.CycDiskQueue)
	p.mu.Lock()
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		var spec int64
		if r.speculative {
			spec = 1
		}
		sink.Emit(trace.Event{
			Kind: trace.EvDiskQueue, Module: ModuleName, Cost: hw.CycDiskQueue,
			Arg0: int64(r.recs[0]), Arg1: int64(depth), Arg2: spec,
		})
	}
	return &Ticket{p: p, r: r}
}

// Wait blocks until the request completes and returns its error. If
// no submitter is driving the device, the waiter takes the seat and
// drives until its own request is done.
func (t *Ticket) Wait() error {
	d := &t.p.dev
	for {
		d.mu.Lock()
		if t.r.done {
			err := t.r.err
			d.mu.Unlock()
			return err
		}
		if !d.driving {
			d.driving = true
			d.mu.Unlock()
			t.p.drive(t.r)
			continue
		}
		// Someone else is driving: block on the completion eventcount.
		// The count was read under d.mu with done still false, so the
		// completion that services this request must advance it past
		// the target — the wait cannot miss its wakeup.
		target := d.completions.Read() + 1
		d.mu.Unlock()
		d.completions.Await(target)
	}
}

// Cancel withdraws a speculative request. A request still waiting in
// the queue is removed before any disk work happens and Cancel
// reports true; a request already serviced (or in flight under a
// concurrent driver) is waited out and discarded.
func (t *Ticket) Cancel() bool {
	d := &t.p.dev
	d.mu.Lock()
	if !t.r.done && !t.r.inflight {
		for i, r := range d.pending {
			if r == t.r {
				d.pending = append(d.pending[:i], d.pending[i+1:]...)
				break
			}
		}
		t.r.done = true
		t.r.err = errCanceled
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	_ = t.Wait()
	return false
}

// drive services the queue in elevator order until `until` completes
// (every request when until is nil), then releases the seat. Each
// completion advances the eventcount and yields to the schedule, so
// under the deterministic executor every disk completion is a
// decision point.
func (p *Pack) drive(until *request) {
	d := &p.dev
	for {
		d.mu.Lock()
		if (until != nil && until.done) || len(d.pending) == 0 {
			d.driving = false
			d.mu.Unlock()
			// Wake the waiters: their request may be done, and if not
			// one of them must take the empty seat.
			d.completions.Advance()
			return
		}
		r := p.pickLocked()
		d.mu.Unlock()

		err := p.service(r)

		d.mu.Lock()
		r.done = true
		r.err = err
		d.mu.Unlock()
		d.completions.Advance()
		schedsim.Yield(schedsim.PointDisk, "complete")
	}
}

// pickLocked removes and returns the next request in CSCAN order: the
// smallest position at or beyond the current head, wrapping to the
// smallest position outright when the head has passed everything.
// Ties break toward the earlier submission, which keeps the order a
// pure function of the queue contents. Caller holds d.mu.
func (p *Pack) pickLocked() *request {
	d := &p.dev
	head := p.headPos()
	best, wrap := -1, -1
	for i, r := range d.pending {
		pos := r.recs[0]
		if pos >= head && (best < 0 || pos < d.pending[best].recs[0]) {
			best = i
		}
		if wrap < 0 || pos < d.pending[wrap].recs[0] {
			wrap = i
		}
	}
	if best < 0 {
		best = wrap
	}
	r := d.pending[best]
	d.pending = append(d.pending[:best], d.pending[best+1:]...)
	r.inflight = true
	return r
}

// headPos reads the current head position.
func (p *Pack) headPos() RecordAddr {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.head
}

// chargeDevice accrues transfer cycles to the meter's global total
// (but no processor account) and to the pack's device account.
// Caller holds p.mu.
func (p *Pack) chargeDevice(n int64) {
	p.meter.AddUnbound(n)
	d := &p.dev
	d.mu.Lock()
	d.cycles += n
	d.mu.Unlock()
}

// service performs one queued request against the pack, charging
// distance-based seek cost from the current head position.
func (p *Pack) service(r *request) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMounted(); err != nil {
		return err
	}
	switch r.op {
	case OpRead:
		rec := r.recs[0]
		if p.spans != nil {
			p.spans.BeginSpan(trace.SpanDiskRead, ModuleName, int64(rec))
			defer p.spans.EndSpan(trace.SpanDiskRead)
		}
		if err := p.faults.checkOp(OpRead, p.id, false); err != nil {
			p.noteInjected(int64(OpRead), err)
			return err
		}
		cost := seekDelta(p.head, rec) + hw.CycDiskRecord
		p.head = rec
		p.chargeDevice(cost)
		if p.sink != nil {
			p.sink.Emit(trace.Event{Kind: trace.EvDiskRead, Module: ModuleName, Cost: cost, Arg0: int64(rec)})
		}
		if d, ok := p.data[rec]; ok {
			copy(r.bufs[0], d)
		} else {
			clear(r.bufs[0])
		}
		return nil
	case OpWrite:
		if p.spans != nil {
			p.spans.BeginSpan(trace.SpanDiskWrite, ModuleName, int64(len(r.recs)))
			defer p.spans.EndSpan(trace.SpanDiskWrite)
		}
		for i, rec := range r.recs {
			if err := p.faults.checkOp(OpWrite, p.id, true); err != nil {
				p.noteInjected(int64(OpWrite), err)
				return err
			}
			p.dirty = true
			cost := seekDelta(p.head, rec) + hw.CycDiskRecord
			p.head = rec
			p.chargeDevice(cost)
			if p.sink != nil {
				p.sink.Emit(trace.Event{Kind: trace.EvDiskWrite, Module: ModuleName, Cost: cost, Arg0: int64(rec)})
			}
			d, ok := p.data[rec]
			if !ok {
				d = make([]hw.Word, hw.PageWords)
				p.data[rec] = d
			}
			copy(d, r.bufs[i])
		}
		return nil
	default:
		return fmt.Errorf("disk: queued request with op %v", r.op)
	}
}

// DrainQueue services every pending request (taking the seat if it is
// free) and returns when the queue is empty; tests and shutdown paths
// use it to quiesce the device.
func (p *Pack) DrainQueue() {
	d := &p.dev
	for {
		d.mu.Lock()
		if len(d.pending) == 0 {
			d.mu.Unlock()
			return
		}
		if !d.driving {
			d.driving = true
			d.mu.Unlock()
			p.drive(nil)
			continue
		}
		target := d.completions.Read() + 1
		d.mu.Unlock()
		d.completions.Await(target)
	}
}

// DeviceCycles reports the transfer cycles the pack's device has
// performed from its queue: the pack's share of a storm's makespan.
func (p *Pack) DeviceCycles() int64 {
	d := &p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cycles
}

// QueueStats reports the device queue's lifetime request count and
// high-water depth.
func (p *Pack) QueueStats() (enqueued int64, maxDepth int) {
	d := &p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.enqueued, d.maxDepth
}
