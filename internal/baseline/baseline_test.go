package baseline

import (
	"errors"
	"testing"

	"multics/internal/hw"
)

func bootSup(t *testing.T, mutate func(*Config)) *Supervisor {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := BootBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrames = cfg.WiredFrames
	if _, err := BootBaseline(cfg); err == nil {
		t.Error("boot with no pageable memory succeeded")
	}
	cfg = DefaultConfig()
	cfg.Packs = nil
	if _, err := BootBaseline(cfg); err == nil {
		t.Error("boot with no packs succeeded")
	}
}

func TestEndToEndFileIO(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("alice.sys", "home", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("alice.sys", "home>data", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("alice.sys")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "home>data")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(cpu, p, segno, 5, 1234); err != nil {
		t.Fatal(err)
	}
	w, err := s.Read(cpu, p, segno, 5)
	if err != nil || w != 1234 {
		t.Fatalf("read back %d, %v", w, err)
	}
	if err := s.Write(cpu, p, segno, 4*hw.PageWords+1, 9); err != nil {
		t.Fatal(err)
	}
	w, err = s.Read(cpu, p, segno, 4*hw.PageWords+1)
	if err != nil || w != 9 {
		t.Fatalf("sparse read %d, %v", w, err)
	}
}

func TestPathResolutionBuriedInKernel(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("alice.sys", "hidden", true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetACL("alice.sys", "hidden", map[string]hw.AccessMode{"alice.sys": hw.Read | hw.Write}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("alice.sys", "hidden>f", false); err != nil {
		t.Fatal(err)
	}
	// The two possible answers: found, or a bare no-access that
	// confirms nothing.
	if _, err := s.ResolvePath("alice.sys", "hidden>f"); err != nil {
		t.Errorf("owner resolve: %v", err)
	}
	_, errMissing := s.ResolvePath("eve.out", "hidden>nothing")
	_, errExisting := s.ResolvePath("eve.out", "hidden>f")
	if !errors.Is(errMissing, ErrNoAccess) {
		t.Errorf("missing = %v", errMissing)
	}
	// eve has no ACL term on f (only alice does), so existing also
	// denies — with the identical answer.
	if !errors.Is(errExisting, ErrNoAccess) {
		t.Errorf("existing = %v", errExisting)
	}
	if errMissing.Error() != errExisting.Error() {
		t.Error("resolver leaks existence information")
	}
}

func TestInterpretiveRetranslationCounted(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("a.x", "f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("a.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(cpu, p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	_, _, retrans, _ := s.Stats()
	if retrans == 0 {
		t.Error("no interpretive retranslations recorded; baseline page control must retranslate under the global lock")
	}
}

func TestQuotaWalkClimbsHierarchy(t *testing.T) {
	s := bootSup(t, nil)
	// Deep path: quota dir at the root only, so growth at depth d
	// walks d+1 AST links.
	path := ""
	for _, name := range []string{"a", "b", "c", "d"} {
		if path == "" {
			path = name
		} else {
			path = path + ">" + name
		}
		if err := s.Create("u.x", path, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Create("u.x", "a>b>c>d>f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "a>b>c>d>f")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(cpu, p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	_, _, _, hops := s.Stats()
	if hops < 6 { // f, d, c, b, a, root
		t.Errorf("quota walk hops = %d, want the full upward search", hops)
	}
	// Dynamic designation mid-tree shortens later walks — the old
	// semantics at its most flexible (and costly to implement).
	if err := s.SetQuota("u.x", "a>b", 100); err != nil {
		t.Fatal(err)
	}
	before := s.QuotaWalkHops
	if err := s.Write(cpu, p, segno, hw.PageWords, 1); err != nil {
		t.Fatal(err)
	}
	delta := s.QuotaWalkHops - before
	if delta != 4 { // f, d, c, b
		t.Errorf("post-designation walk = %d hops, want 4", delta)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("u.x", "d", true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("u.x", "d", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("u.x", "d>f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "d>f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Write(cpu, p, segno, i*hw.PageWords, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Write(cpu, p, segno, 2*hw.PageWords, 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("write beyond quota = %v", err)
	}
}

func TestDeactivationConstrainedByHierarchy(t *testing.T) {
	// The 1974 rule: segment control never deactivates a directory
	// with active inferiors.
	s := bootSup(t, nil)
	if err := s.Create("u.x", "d", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("u.x", "d>f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	if _, err := s.Open(p, "d>f"); err != nil {
		t.Fatal(err)
	}
	dirEnt, err := s.ResolvePath("u.x", "d")
	if err != nil {
		t.Fatal(err)
	}
	fileEnt, err := s.ResolvePath("u.x", "d>f")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deactivate(dirEnt.uid); !errors.Is(err, ErrActiveInferiors) {
		t.Fatalf("deactivating a directory with active inferiors: %v", err)
	}
	// Deactivate bottom-up works.
	if err := s.Deactivate(fileEnt.uid); err != nil {
		t.Fatal(err)
	}
	if err := s.Deactivate(dirEnt.uid); err != nil {
		t.Fatal(err)
	}
}

func TestFullPackDirectEntryUpdate(t *testing.T) {
	s := bootSup(t, func(c *Config) {
		c.Packs = c.Packs[:0]
		c.Packs = append(c.Packs, struct {
			ID      string
			Records int
		}{"dska", 4}, struct {
			ID      string
			Records int
		}{"dskb", 64})
	})
	if err := s.Create("u.x", "f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Write(cpu, p, segno, i*hw.PageWords, hw.Word(10+i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	e, err := s.ResolvePath("u.x", "f")
	if err != nil {
		t.Fatal(err)
	}
	if e.addr.Pack != "dskb" {
		t.Errorf("entry pack = %s; segment control should have updated it in place", e.addr.Pack)
	}
	for i := 0; i < 8; i++ {
		w, err := s.Read(cpu, p, segno, i*hw.PageWords)
		if err != nil || w != hw.Word(10+i) {
			t.Fatalf("page %d = %d, %v", i, w, err)
		}
	}
}

func TestZeroPageReclaim(t *testing.T) {
	s := bootSup(t, func(c *Config) { c.MemFrames = 12 })
	if err := s.Create("u.x", "f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Touch a page, never write it, then flood memory.
	if _, err := s.Read(cpu, p, segno, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if err := s.Write(cpu, p, segno, i*hw.PageWords, 1); err != nil {
			t.Fatal(err)
		}
	}
	root, err := s.ResolvePath("u.x", "")
	if err != nil {
		t.Fatal(err)
	}
	// 7 non-zero pages charged; the zero page was reclaimed.
	if root.quotaUsed != 7 {
		t.Errorf("quota used = %d, want 7 (zero page reclaimed)", root.quotaUsed)
	}
}

func TestCreateValidation(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("u.x", "", true); err == nil {
		t.Error("empty path accepted")
	}
	if err := s.Create("u.x", "a", false); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("u.x", "a", false); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate = %v", err)
	}
	if err := s.Create("u.x", "a>b", false); !errors.Is(err, ErrNoAccess) {
		t.Errorf("create under a file = %v", err)
	}
	if err := s.Create("u.x", "nosuch>b", false); !errors.Is(err, ErrNoAccess) {
		t.Errorf("create under missing dir = %v", err)
	}
	if err := s.SetQuota("u.x", "a", 5); err == nil {
		t.Error("SetQuota on a file succeeded")
	}
}

func TestOneLevelScheduler(t *testing.T) {
	s := bootSup(t, nil)
	for i := 0; i < 3; i++ {
		s.CreateProcess("u.x")
	}
	var order []uint64
	n, err := s.RunQuantum(6, func(p *Process) { order = append(order, p.ID()) })
	if err != nil || n != 6 {
		t.Fatalf("RunQuantum = %d, %v", n, err)
	}
	want := []uint64{1, 2, 3, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSuperficialGraphHasOneLoop(t *testing.T) {
	g := SuperficialGraph()
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("superficial cycles = %v, want exactly the page/process/segment loop", cycles)
	}
	if len(cycles[0]) != 3 {
		t.Errorf("loop = %v, want page-control, process-control, segment-control", cycles[0])
	}
}

func TestActualGraphIsAThicket(t *testing.T) {
	g := ActualGraph()
	cycles := g.Cycles()
	if len(cycles) == 0 {
		t.Fatal("actual structure reported loop-free")
	}
	// The strongly connected knot should entangle at least page,
	// segment, directory and process control.
	largest := 0
	for _, c := range cycles {
		if len(c) > largest {
			largest = len(c)
		}
	}
	if largest < 4 {
		t.Errorf("largest knot has %d modules, want >= 4: %v", largest, cycles)
	}
	if len(g.Undisciplined()) < 4 {
		t.Errorf("undisciplined edges = %d, want the shared-data thicket", len(g.Undisciplined()))
	}
	if err := g.Verify(); err == nil {
		t.Error("Verify accepted the 1974 structure")
	}
	if _, err := g.Layers(); err == nil {
		t.Error("the 1974 structure is layerable; it must not be")
	}
}

func TestMemoryPressure(t *testing.T) {
	s := bootSup(t, func(c *Config) { c.MemFrames = 12 })
	if err := s.Create("u.x", "f", false); err != nil {
		t.Fatal(err)
	}
	p := s.CreateProcess("u.x")
	cpu := s.CPUs[0]
	s.Attach(cpu, p)
	segno, err := s.Open(p, "f")
	if err != nil {
		t.Fatal(err)
	}
	const pages = 10
	for i := 0; i < pages; i++ {
		if err := s.Write(cpu, p, segno, i*hw.PageWords+i, hw.Word(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pages; i++ {
		w, err := s.Read(cpu, p, segno, i*hw.PageWords+i)
		if err != nil || w != hw.Word(i+1) {
			t.Fatalf("page %d = %d, %v", i, w, err)
		}
	}
	_, evictions, _, _ := s.Stats()
	if evictions == 0 {
		t.Error("no evictions under pressure")
	}
}

func TestListAndAccessors(t *testing.T) {
	s := bootSup(t, nil)
	if err := s.Create("u.x", "d", true); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"b", "a", "c"} {
		if err := s.Create("u.x", "d>"+n, false); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List("u.x", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("List = %v", names)
	}
	// Listing a file or without read access fails.
	if _, err := s.List("u.x", "d>a"); err == nil {
		t.Error("List of a file succeeded")
	}
	if err := s.SetACL("u.x", "d", map[string]hw.AccessMode{"u.x": hw.Write}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List("u.x", "d"); err == nil {
		t.Error("List without read access succeeded")
	}
	p := s.CreateProcess("u.x")
	if p.DT() == nil {
		t.Error("nil descriptor table")
	}
}
