package baseline

import (
	"errors"
	"fmt"

	"multics/internal/disk"
	"multics/internal/hw"
)

// activate enters a segment in the AST. Because quota lives in
// directory entries found by climbing the AST, every superior
// directory must be (and remain) active: activation recurses upward
// and bumps inferior counts — the hierarchy constraint the redesign
// removed. Caller holds s.mu.
func (s *Supervisor) activate(e *entry) (*aste, error) {
	if a, ok := s.ast[e.uid]; ok {
		return a, nil
	}
	var parent *aste
	if e.parent != nil {
		var err error
		parent, err = s.activate(e.parent.self)
		if err != nil {
			return nil, err
		}
	}
	pack, err := s.Vols.Pack(e.addr.Pack)
	if err != nil {
		return nil, err
	}
	te, err := pack.Entry(e.addr.TOC)
	if err != nil {
		return nil, err
	}
	// No exception-causing bit on this hardware: every non-resident
	// page is a plain missing-page fault, and page control reads the
	// file map to discover whether the touch is really a growth.
	pt := hw.NewPageTable(MaxPages, false)
	a := &aste{uid: e.uid, ent: e, pt: pt, parent: parent, mapLen: len(te.Map)}
	if parent != nil {
		parent.inferior++
	}
	s.ast[e.uid] = a
	return a, nil
}

// Deactivate removes a segment from the AST, flushing its pages. A
// directory with active inferiors cannot be deactivated: the quota
// search must always find the superior chain in the AST.
func (s *Supervisor) Deactivate(uid uint64) error {
	s.mu.Lock()
	a, ok := s.ast[uid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("baseline: segment %d not active", uid)
	}
	if a.inferior > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d active", ErrActiveInferiors, a.inferior)
	}
	s.mu.Unlock()
	if err := s.flushSegment(a); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range a.conns {
		_ = c.dt.Clear(c.segno)
	}
	if a.parent != nil {
		a.parent.inferior--
	}
	delete(s.ast, uid)
	return nil
}

// CreateProcess makes a baseline process.
func (s *Supervisor) CreateProcess(principal string) *Process {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &Process{
		id:        s.nextPID,
		principal: principal,
		dt:        hw.NewDescriptorTable(64),
		segs:      make(map[int]*aste),
		next:      8,
		ready:     true,
	}
	s.nextPID++
	s.procs[p.id] = p
	s.ready = append(s.ready, p.id)
	return p
}

// Open resolves a path inside the supervisor, activates the segment,
// and connects it to the process's address space.
func (s *Supervisor) Open(p *Process, path string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.resolveLocked(p.principal, path)
	if err != nil {
		return 0, err
	}
	mode := aclModeFor(e, p.principal)
	if mode == 0 {
		return 0, ErrNoAccess
	}
	a, err := s.activate(e)
	if err != nil {
		return 0, err
	}
	segno := p.next
	p.next++
	p.segs[segno] = a
	if err := p.dt.Set(segno, hw.SDW{
		Present: true, Table: a.pt, Access: mode,
		MaxRing: hw.UserRing, WriteRing: hw.UserRing,
	}); err != nil {
		return 0, err
	}
	a.conns = append(a.conns, conn{dt: p.dt, segno: segno})
	return segno, nil
}

// Read performs a user load with baseline fault handling.
func (s *Supervisor) Read(cpu *hw.Processor, p *Process, segno, off int) (hw.Word, error) {
	return s.access(cpu, p, segno, off, false, 0)
}

// Write performs a user store with baseline fault handling.
func (s *Supervisor) Write(cpu *hw.Processor, p *Process, segno, off int, w hw.Word) error {
	_, err := s.access(cpu, p, segno, off, true, w)
	return err
}

// Attach binds a process's address space to a CPU.
func (s *Supervisor) Attach(cpu *hw.Processor, p *Process) {
	cpu.UserDT = p.dt
	cpu.Ring = hw.UserRing
}

func (s *Supervisor) access(cpu *hw.Processor, p *Process, segno, off int, write bool, w hw.Word) (hw.Word, error) {
	const maxFaults = 64
	for tries := 0; tries < maxFaults; tries++ {
		var val hw.Word
		var err error
		if write {
			err = cpu.Write(segno, off, w)
		} else {
			val, err = cpu.Read(segno, off)
		}
		if err == nil {
			return val, nil
		}
		f, ok := hw.AsFault(err)
		if !ok {
			return 0, err
		}
		if f.Kind != hw.FaultMissingPage {
			return 0, err
		}
		if herr := s.handleMissingPage(cpu, p, f); herr != nil {
			return 0, herr
		}
	}
	return 0, fmt.Errorf("baseline: reference at segment %d offset %d made no progress", segno, off)
}

// handleMissingPage is 1974 page control: capture the global lock,
// interpretively retranslate the faulting address (the hardware window
// means another processor may have serviced the fault or changed the
// tables), classify the touch by reading segment control's file map,
// and service it — walking the AST upward for quota if the segment
// must grow, and reaching directly into the directory entry if the
// pack is full.
func (s *Supervisor) handleMissingPage(cpu *hw.Processor, p *Process, f *hw.Fault) error {
	s.global.Lock()
	defer s.global.Unlock()

	// Interpretive retranslation: page control re-walks the
	// translation tables (address space control's and segment
	// control's data) to see whether the descriptor that faulted is
	// still the one in effect.
	s.mu.Lock()
	s.Retranslations++
	s.mu.Unlock()
	s.Meter.AddBody(bodyRetranslate, hw.ASM)
	s.Meter.Add(2 * hw.CycTableWalk)
	a, ok := p.segs[f.Seg]
	if !ok {
		return fmt.Errorf("baseline: fault in unknown segment %d", f.Seg)
	}
	d, err := a.pt.Get(f.Page)
	if err != nil {
		return err
	}
	if d.Present {
		return nil // another processor got here first
	}

	s.Meter.AddBody(bodyFaultService, hw.ASM)
	pack, err := s.Vols.Pack(a.ent.addr.Pack)
	if err != nil {
		return err
	}
	te, err := pack.Entry(a.ent.addr.TOC)
	if err != nil {
		return err
	}
	if f.Page < len(te.Map) && te.Map[f.Page].State == disk.PageStored {
		// An ordinary missing page: read the record in.
		frame, err := s.obtainFrame()
		if err != nil {
			return err
		}
		buf := make([]hw.Word, hw.PageWords)
		if err := pack.ReadRecord(te.Map[f.Page].Record, buf); err != nil {
			return err
		}
		if err := s.Mem.WriteFrame(frame, buf); err != nil {
			return err
		}
		s.installFrame(a, f.Page, frame)
		return nil
	}
	// A never-before-used (or zero) page: segment growth. Page
	// control locates the nearest superior quota directory by
	// following AST links upward — the dependency on segment
	// control's data, and on the AST mirroring the hierarchy.
	if f.Page >= MaxPages {
		return fmt.Errorf("baseline: page %d beyond maximum", f.Page)
	}
	qd, hops := s.findQuotaDir(a)
	s.mu.Lock()
	s.QuotaWalkHops += int64(hops)
	s.mu.Unlock()
	s.Meter.AddBody(int64(hops)*bodyQuotaHop, hw.ASM)
	if qd == nil {
		return errors.New("baseline: no superior quota directory")
	}
	if qd.quotaUsed+1 > qd.quotaLimit {
		return fmt.Errorf("%w: %d/%d at %s", ErrQuotaExceeded, qd.quotaUsed, qd.quotaLimit, qd.name)
	}
	rec, err := pack.AllocRecord()
	if errors.Is(err, disk.ErrPackFull) {
		// Full pack: segment control moves the segment, reading
		// address space control's data to find the directory entry
		// and updating it directly.
		if err := s.relocate(a); err != nil {
			return err
		}
		pack, err = s.Vols.Pack(a.ent.addr.Pack)
		if err != nil {
			return err
		}
		rec, err = pack.AllocRecord()
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	qd.quotaUsed++
	if err := pack.UpdateEntry(a.ent.addr.TOC, func(e *disk.TOCEntry) error {
		for len(e.Map) <= f.Page {
			e.Map = append(e.Map, disk.FileMapEntry{State: disk.PageUnallocated})
		}
		e.Map[f.Page] = disk.FileMapEntry{State: disk.PageStored, Record: rec}
		return nil
	}); err != nil {
		return err
	}
	if f.Page+1 > a.mapLen {
		a.mapLen = f.Page + 1
	}
	frame, err := s.obtainFrame()
	if err != nil {
		return err
	}
	if err := s.Mem.ZeroFrame(frame); err != nil {
		return err
	}
	s.installFrame(a, f.Page, frame)
	return nil
}

// findQuotaDir climbs the AST parent links to the nearest superior
// quota directory (possibly the segment's own entry for a quota
// directory), counting the hops the dynamic search costs.
func (s *Supervisor) findQuotaDir(a *aste) (*entry, int) {
	hops := 0
	for cur := a; cur != nil; cur = cur.parent {
		hops++
		if cur.ent.isQuotaDir {
			return cur.ent, hops
		}
	}
	return nil, hops
}

func (s *Supervisor) installFrame(a *aste, page, frame int) {
	s.mu.Lock()
	s.frames[frame-s.firstFrame] = frameInfo{inUse: true, a: a, page: page}
	s.faults++
	s.mu.Unlock()
	_, _ = a.pt.Update(page, func(d *hw.PTW) {
		d.Present = true
		d.Frame = frame
		d.Used = true
	})
}

// obtainFrame returns a free frame, evicting inline if necessary —
// the single-process organization the redesign replaced with
// dedicated daemons.
func (s *Supervisor) obtainFrame() (int, error) {
	s.mu.Lock()
	if len(s.free) > 0 {
		f := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		return f, nil
	}
	n := len(s.frames)
	victim := -1
	for pass := 0; pass < 2*n && victim < 0; pass++ {
		i := s.clock
		s.clock = (s.clock + 1) % n
		fi := &s.frames[i]
		if !fi.inUse {
			continue
		}
		d, err := fi.a.pt.Get(fi.page)
		if err != nil {
			s.mu.Unlock()
			return 0, err
		}
		if d.Used {
			_, _ = fi.a.pt.Update(fi.page, func(w *hw.PTW) { w.Used = false })
			continue
		}
		victim = i
	}
	if victim < 0 {
		for i := range s.frames {
			if s.frames[i].inUse {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		s.mu.Unlock()
		return 0, errors.New("baseline: no evictable frame")
	}
	info := s.frames[victim]
	s.frames[victim] = frameInfo{}
	s.evictions++
	s.mu.Unlock()

	frame := s.firstFrame + victim
	if err := s.writeBack(info, frame); err != nil {
		return 0, err
	}
	return frame, nil
}

// writeBack persists an evicted page inline, with the zero-page scan
// (and its quota decrement, which costs another upward walk).
func (s *Supervisor) writeBack(info frameInfo, frame int) error {
	zero, err := s.Mem.FrameIsZero(frame)
	if err != nil {
		return err
	}
	if _, err := info.a.pt.Update(info.page, func(d *hw.PTW) {
		d.Present = false
		d.Frame = 0
	}); err != nil {
		return err
	}
	pack, err := s.Vols.Pack(info.a.ent.addr.Pack)
	if err != nil {
		return err
	}
	te, err := pack.Entry(info.a.ent.addr.TOC)
	if err != nil {
		return err
	}
	if info.page >= len(te.Map) || te.Map[info.page].State != disk.PageStored {
		return nil
	}
	rec := te.Map[info.page].Record
	if zero {
		if err := pack.FreeRecord(rec); err != nil {
			return err
		}
		if err := pack.UpdateEntry(info.a.ent.addr.TOC, func(e *disk.TOCEntry) error {
			e.Map[info.page] = disk.FileMapEntry{State: disk.PageZero}
			return nil
		}); err != nil {
			return err
		}
		qd, hops := s.findQuotaDir(info.a)
		s.mu.Lock()
		s.QuotaWalkHops += int64(hops)
		s.mu.Unlock()
		s.Meter.AddBody(int64(hops)*bodyQuotaHop, hw.ASM)
		if qd != nil && qd.quotaUsed > 0 {
			qd.quotaUsed--
		}
		return nil
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := s.Mem.ReadFrame(frame, buf); err != nil {
		return err
	}
	return pack.WriteRecord(rec, buf)
}

// flushSegment evicts every resident page of a segment.
func (s *Supervisor) flushSegment(a *aste) error {
	for {
		s.mu.Lock()
		idx := -1
		for i := range s.frames {
			if s.frames[i].inUse && s.frames[i].a == a {
				idx = i
				break
			}
		}
		if idx < 0 {
			s.mu.Unlock()
			return nil
		}
		info := s.frames[idx]
		s.frames[idx] = frameInfo{}
		s.evictions++
		s.mu.Unlock()
		if err := s.writeBack(info, s.firstFrame+idx); err != nil {
			return err
		}
		s.mu.Lock()
		s.free = append(s.free, s.firstFrame+idx)
		s.mu.Unlock()
	}
}

// relocate moves a segment whose pack filled to the emptiest pack.
// In the baseline structure this is segment control reaching into the
// directory entry (address space control's and directory control's
// data) and updating it in place.
func (s *Supervisor) relocate(a *aste) error {
	if err := s.flushSegment(a); err != nil {
		return err
	}
	oldPack, err := s.Vols.Pack(a.ent.addr.Pack)
	if err != nil {
		return err
	}
	newPack, err := s.Vols.Emptiest(a.ent.addr.Pack)
	if err != nil {
		return err
	}
	te, err := oldPack.Entry(a.ent.addr.TOC)
	if err != nil {
		return err
	}
	newIdx, err := newPack.CreateEntry(a.uid, a.ent.isDir, te.Gov)
	if err != nil {
		return err
	}
	buf := make([]hw.Word, hw.PageWords)
	newMap := make([]disk.FileMapEntry, len(te.Map))
	for i, fm := range te.Map {
		newMap[i] = fm
		if fm.State != disk.PageStored {
			continue
		}
		rec, err := newPack.AllocRecord()
		if err != nil {
			return err
		}
		if err := oldPack.ReadRecord(fm.Record, buf); err != nil {
			return err
		}
		if err := newPack.WriteRecord(rec, buf); err != nil {
			return err
		}
		newMap[i].Record = rec
	}
	if err := newPack.UpdateEntry(newIdx, func(e *disk.TOCEntry) error {
		e.Map = newMap
		return nil
	}); err != nil {
		return err
	}
	if err := oldPack.DeleteEntry(a.ent.addr.TOC); err != nil {
		return err
	}
	// The direct directory-entry update.
	a.ent.addr = disk.SegAddr{Pack: newPack.ID(), TOC: newIdx}
	return nil
}

// Truncate discards every page of an active segment at or beyond
// newPages, freeing records and decrementing the quota count found by
// the usual upward walk.
func (s *Supervisor) Truncate(uid uint64, newPages int) error {
	if newPages < 0 {
		return fmt.Errorf("baseline: truncate to %d pages", newPages)
	}
	s.mu.Lock()
	a, ok := s.ast[uid]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("baseline: segment %d not active", uid)
	}
	// Drop resident frames in the truncated region.
	s.mu.Lock()
	for i := range s.frames {
		fi := &s.frames[i]
		if fi.inUse && fi.a == a && fi.page >= newPages {
			_, _ = fi.a.pt.Update(fi.page, func(d *hw.PTW) { *d = hw.PTW{} })
			s.free = append(s.free, s.firstFrame+i)
			*fi = frameInfo{}
		}
	}
	s.mu.Unlock()
	pack, err := s.Vols.Pack(a.ent.addr.Pack)
	if err != nil {
		return err
	}
	var toFree []disk.RecordAddr
	if err := pack.UpdateEntry(a.ent.addr.TOC, func(e *disk.TOCEntry) error {
		for page := newPages; page < len(e.Map); page++ {
			if e.Map[page].State == disk.PageStored {
				toFree = append(toFree, e.Map[page].Record)
			}
			e.Map[page] = disk.FileMapEntry{State: disk.PageUnallocated}
		}
		if len(e.Map) > newPages {
			e.Map = e.Map[:newPages]
		}
		return nil
	}); err != nil {
		return err
	}
	for _, rec := range toFree {
		if err := pack.FreeRecord(rec); err != nil {
			return err
		}
	}
	for page := newPages; page < MaxPages; page++ {
		if _, err := a.pt.Update(page, func(d *hw.PTW) { *d = hw.PTW{} }); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if a.mapLen > newPages {
		a.mapLen = newPages
	}
	qd, hops := s.findQuotaDir(a)
	s.QuotaWalkHops += int64(hops)
	s.mu.Unlock()
	s.Meter.AddBody(int64(hops)*bodyQuotaHop, hw.ASM)
	if qd != nil {
		qd.quotaUsed -= len(toFree)
		if qd.quotaUsed < 0 {
			qd.quotaUsed = 0
		}
	}
	return nil
}

// Dispatch runs the one-level scheduler: pop the longest-waiting
// ready process and bind it (state swap through the paged store).
func (s *Supervisor) Dispatch() (*Process, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ready) > 0 {
		pid := s.ready[0]
		s.ready = s.ready[1:]
		p := s.procs[pid]
		if p != nil && p.ready {
			p.ready = false
			s.swaps++
			s.Meter.Add(hw.CycProcessSwap + hw.CycDispatch)
			return p, nil
		}
	}
	return nil, errors.New("baseline: no ready process")
}

// Preempt returns a process to the ready queue.
func (s *Supervisor) Preempt(p *Process) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.ready = true
	s.ready = append(s.ready, p.id)
	s.swaps++
	s.Meter.Add(hw.CycProcessSwap)
}

// RunQuantum dispatches up to n processes round-robin.
func (s *Supervisor) RunQuantum(n int, body func(*Process)) (int, error) {
	ran := 0
	for i := 0; i < n; i++ {
		p, err := s.Dispatch()
		if err != nil {
			break
		}
		if body != nil {
			body(p)
			p.cpu++
		}
		s.Preempt(p)
		ran++
	}
	return ran, nil
}
