package baseline

import "multics/internal/deps"

// Module names of the 1974 supervisor as the paper draws them.
const (
	ModDiskVol = "disk-volume-control"
	ModDirCtl  = "directory-control"
	ModAddrCtl = "address-space-control"
	ModSegCtl  = "segment-control"
	ModPageCtl = "page-control"
	ModProcCtl = "process-control"
)

func addModules(g *deps.Graph) {
	g.AddModule(ModDiskVol, "disk packs and record allocation")
	g.AddModule(ModDirCtl, "file-system directory control")
	g.AddModule(ModAddrCtl, "address space control (descriptor segments, KSTs)")
	g.AddModule(ModSegCtl, "segment control (active segment table)")
	g.AddModule(ModPageCtl, "page control (page tables, core map)")
	g.AddModule(ModProcCtl, "process control (scheduling, traffic control)")
}

// SuperficialGraph is Figure 2: the dependency structure of the 1974
// supervisor as it appears from far away — six large modules in a
// nearly linear order, with the one obvious exception of the circular
// dependency between processor multiplexing and the virtual memory.
func SuperficialGraph() *deps.Graph {
	g := deps.New()
	addModules(g)
	g.MustDepend(ModDirCtl, ModAddrCtl, deps.Component, "directories are addressed segments")
	g.MustDepend(ModAddrCtl, ModSegCtl, deps.Component, "address spaces name segments")
	g.MustDepend(ModSegCtl, ModPageCtl, deps.Component, "segments are made of pages")
	g.MustDepend(ModPageCtl, ModDiskVol, deps.Component, "pages live in disk records")
	// The obvious loop: page control gives the processor away on a
	// missing page; process control stores process states in
	// segments.
	g.MustDepend(ModPageCtl, ModProcCtl, deps.Call, "missing page gives the processor to another process")
	g.MustDepend(ModProcCtl, ModSegCtl, deps.Component, "inactive process states are stored in segments")
	return g
}

// ActualGraph is Figure 3: the same system on close inspection, with
// the map, program, address-space and interpreter dependencies — and
// the exception-handling and resource-control paths — that turn the
// nearly linear picture into a thicket of loops. Every added edge is
// documented with the paper's example that motivates it.
func ActualGraph() *deps.Graph {
	g := SuperficialGraph()
	// Missing pages: interpretive retranslation makes page control
	// read the translation tables maintained by segment control and
	// address space control.
	g.MustDepend(ModPageCtl, ModSegCtl, deps.SharedData, "interpretive retranslation reads segment control's tables after capturing the global lock")
	g.MustDepend(ModPageCtl, ModAddrCtl, deps.SharedData, "interpretive retranslation reads the address translation tables")
	// Quota enforcement: page control follows AST links to the
	// nearest superior quota directory, whose limit and count live
	// in the directory entry.
	g.MustDepend(ModPageCtl, ModDirCtl, deps.SharedData, "quota limits and counts live in directory entries found by an upward AST search")
	// Full disk packs: segment control reads address space control's
	// data to find the directory entry and updates it directly.
	g.MustDepend(ModSegCtl, ModDirCtl, deps.SharedData, "full-pack relocation updates the directory entry in place")
	g.MustDepend(ModSegCtl, ModAddrCtl, deps.SharedData, "relocation finds the directory entry through address space control's data base")
	// Programs and maps stored in the objects they implement.
	g.MustDepend(ModPageCtl, ModSegCtl, deps.Program, "page control's code is stored in segments")
	g.MustDepend(ModPageCtl, ModAddrCtl, deps.AddressSpace, "page control's address space is provided by address space control")
	// Directory representations live in segments, closing the loop
	// with segment control's direct directory-entry updates.
	g.MustDepend(ModDirCtl, ModSegCtl, deps.Component, "each directory representation is stored in a segment")
	return g
}
