// Package baseline implements the 1974-vintage Multics supervisor
// structure the kernel design project started from: one monolithic
// body of code in which page control, segment control, address space
// control, directory control and process control share writable data
// directly and depend on one another in loops.
//
// It is not a strawman: it provides the same user-visible functions as
// the redesigned kernel (hierarchy, ACLs, quota, growth, full-pack
// handling, demand paging), implemented with the structures the paper
// attributes to the old system:
//
//   - a global page-table lock, with interpretive retranslation of the
//     faulting virtual address after the lock is captured, because the
//     hardware has no descriptor lock bit (page control must therefore
//     know the format of, and depend on the correctness of, the
//     translation tables maintained by segment control and address
//     space control);
//
//   - quota limits and counts kept in directory entries, located on
//     every segment growth by a dynamic upward search through the
//     active segment table, whose entries are threaded parent-ward to
//     mirror the directory hierarchy — so a directory can never be
//     deactivated while inferior segments are active;
//
//   - full-disk-pack handling in which segment control reads a data
//     base maintained by address space control to find the directory
//     entry and updates that entry directly;
//
//   - pathname resolution buried entirely inside the supervisor; and
//
//   - quota-directory designation allowed at any time, children or
//     not — the flexible semantics whose implementation cost the
//     paper's redesign trades away.
//
// Its declared dependency structure (see graphs.go) reproduces
// Figures 2 and 3: nearly linear from afar, looped up close.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"multics/internal/disk"
	"multics/internal/hw"
)

// MaxPages is the architectural maximum segment length in pages.
const MaxPages = 256

// Simulated algorithm-body costs. The 1974 supervisor is largely
// PL/I but its memory manager hot paths are assembly (the redesign
// recoded them in PL/I, at the factor-of-two instruction cost the
// paper reports).
const (
	bodyFaultService = 150 // page fault service proper (assembly)
	bodyRetranslate  = 60  // interpretive retranslation under the global lock
	bodyQuotaHop     = 25  // one hop of the upward quota search
	bodyResolve      = 150 // one component of in-kernel path resolution
)

// Errors mirroring the user-visible semantics.
var (
	ErrNoAccess        = errors.New("baseline: no access")
	ErrExists          = errors.New("baseline: name already exists")
	ErrNotEmpty        = errors.New("baseline: directory not empty")
	ErrQuotaExceeded   = errors.New("baseline: record quota overflow")
	ErrActiveInferiors = errors.New("baseline: directory has active inferior segments")
)

// An entry is one directory entry. Quota limit and count live right
// here, in the entry, as the old system kept them.
type entry struct {
	name  string
	uid   uint64
	addr  disk.SegAddr
	isDir bool
	acl   map[string]hw.AccessMode // principal pattern -> mode
	// Quota fields, meaningful when isQuotaDir.
	isQuotaDir bool
	quotaLimit int
	quotaUsed  int
	// dir is the in-memory directory body for isDir entries.
	dir *dirBody
	// parent backlink: the shared data segment control reads to
	// find and update entries directly.
	parent *dirBody
}

type dirBody struct {
	self     *entry
	children map[string]*entry
}

// An aste is an active-segment-table entry, threaded parent-ward:
// the shape of the AST must mirror the hierarchy so the quota search
// can climb it.
type aste struct {
	uid      uint64
	ent      *entry
	pt       *hw.PageTable
	parent   *aste // superior directory's AST entry (always present)
	inferior int   // count of active inferiors; blocks deactivation
	mapLen   int
	conns    []conn
}

type conn struct {
	dt    *hw.DescriptorTable
	segno int
}

// A Process is a baseline user process (one-level implementation:
// the supervisor schedules these directly).
type Process struct {
	id        uint64
	principal string
	dt        *hw.DescriptorTable
	segs      map[int]*aste // segno -> active segment (the baseline KST)
	next      int
	ready     bool
	cpu       int64
}

// ID returns the process id.
func (p *Process) ID() uint64 { return p.id }

// DT returns the process's descriptor table.
func (p *Process) DT() *hw.DescriptorTable { return p.dt }

// Config parameterizes BootBaseline.
type Config struct {
	MemFrames   int
	WiredFrames int
	Packs       []struct {
		ID      string
		Records int
	}
	RootQuota int
}

// DefaultConfig returns a machine comparable to core.DefaultConfig.
func DefaultConfig() Config {
	c := Config{MemFrames: 96, WiredFrames: 8, RootQuota: 512}
	c.Packs = append(c.Packs, struct {
		ID      string
		Records int
	}{"dska", 1024}, struct {
		ID      string
		Records int
	}{"dskb", 1024})
	return c
}

// A Supervisor is a booted baseline system.
type Supervisor struct {
	Meter *hw.CostMeter
	Mem   *hw.Memory
	Vols  *disk.Volumes
	CPUs  []*hw.Processor

	// The global page-table lock of 1974 page control.
	global sync.Mutex

	mu      sync.Mutex
	root    *dirBody
	ast     map[uint64]*aste
	nextUID uint64
	nextPID uint64
	procs   map[uint64]*Process
	ready   []uint64

	firstFrame int
	frames     []frameInfo
	free       []int
	clock      int

	// Instrumentation for the comparisons.
	Retranslations int64
	QuotaWalkHops  int64
	faults         int64
	evictions      int64
	swaps          int64
}

type frameInfo struct {
	inUse bool
	a     *aste
	page  int
}

// BootBaseline builds a baseline supervisor.
func BootBaseline(cfg Config) (*Supervisor, error) {
	if cfg.MemFrames <= cfg.WiredFrames {
		return nil, fmt.Errorf("baseline: %d frames with %d wired", cfg.MemFrames, cfg.WiredFrames)
	}
	if len(cfg.Packs) == 0 {
		return nil, errors.New("baseline: no packs")
	}
	s := &Supervisor{
		Meter:      &hw.CostMeter{},
		ast:        make(map[uint64]*aste),
		procs:      make(map[uint64]*Process),
		nextUID:    1,
		nextPID:    1,
		firstFrame: cfg.WiredFrames,
	}
	s.Mem = hw.NewMemory(cfg.MemFrames)
	s.Vols = disk.NewVolumes(s.Meter)
	for _, p := range cfg.Packs {
		if _, err := s.Vols.AddPack(p.ID, p.Records); err != nil {
			return nil, err
		}
	}
	s.frames = make([]frameInfo, cfg.MemFrames-cfg.WiredFrames)
	for f := cfg.MemFrames - 1; f >= cfg.WiredFrames; f-- {
		s.free = append(s.free, f)
	}
	// The root directory, a quota directory.
	rootPack, err := s.Vols.Pack(cfg.Packs[0].ID)
	if err != nil {
		return nil, err
	}
	// The baseline keeps quota in directory entries, not in the pack
	// tables of contents, so no governing uid is recorded (zero).
	uid := s.newUID()
	idx, err := rootPack.CreateEntry(uid, true, 0)
	if err != nil {
		return nil, err
	}
	rootEnt := &entry{
		name: "", uid: uid, addr: disk.SegAddr{Pack: rootPack.ID(), TOC: idx},
		isDir: true, isQuotaDir: true, quotaLimit: cfg.RootQuota,
		acl: map[string]hw.AccessMode{"*": hw.Read | hw.Write | hw.Execute},
	}
	rootEnt.dir = &dirBody{self: rootEnt, children: make(map[string]*entry)}
	s.root = rootEnt.dir
	if _, err := s.activate(rootEnt); err != nil {
		return nil, err
	}
	// Two CPUs without the descriptor-lock addition.
	for i := 0; i < 2; i++ {
		cpu := hw.NewProcessor(i, s.Mem, s.Meter)
		cpu.DescriptorLockHW = false
		cpu.Ring = hw.UserRing
		s.CPUs = append(s.CPUs, cpu)
	}
	return s, nil
}

func (s *Supervisor) newUID() uint64 {
	u := s.nextUID
	s.nextUID++
	return u
}

// Stats reports fault, eviction, retranslation and quota-walk counts.
func (s *Supervisor) Stats() (faults, evictions, retranslations, quotaHops int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults, s.evictions, s.Retranslations, s.QuotaWalkHops
}

// aclAllows applies the entry's ACL to a principal.
func aclAllows(e *entry, principal string, want hw.AccessMode) bool {
	if m, ok := e.acl[principal]; ok {
		return m.Has(want)
	}
	if m, ok := e.acl["*"]; ok {
		return m.Has(want)
	}
	return false
}

// ResolvePath is the buried in-kernel resolver: the only naming
// interface the baseline offers. It answers "found" or ErrNoAccess,
// nothing in between.
func (s *Supervisor) ResolvePath(principal, path string) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolveLocked(principal, path)
}

func (s *Supervisor) resolveLocked(principal, path string) (*entry, error) {
	cur := s.root
	parts := splitPath(path)
	for i, name := range parts {
		s.Meter.AddBody(bodyResolve, hw.PLI)
		child, ok := cur.children[name]
		if !ok {
			return nil, ErrNoAccess
		}
		if i == len(parts)-1 {
			if !aclAllows(child, principal, 0) && aclModeFor(child, principal) == 0 {
				return nil, ErrNoAccess
			}
			return child, nil
		}
		if !child.isDir {
			return nil, ErrNoAccess
		}
		cur = child.dir
	}
	// Empty path names the root.
	return cur.self, nil
}

func aclModeFor(e *entry, principal string) hw.AccessMode {
	if m, ok := e.acl[principal]; ok {
		return m
	}
	return e.acl["*"]
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, ">") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// UIDOf resolves a path and returns the segment unique identifier
// behind it.
func (s *Supervisor) UIDOf(principal, path string) (uint64, error) {
	e, err := s.ResolvePath(principal, path)
	if err != nil {
		return 0, err
	}
	return e.uid, nil
}

// Create makes a file or directory at path (all but the last
// component must exist). The caller needs write access to the
// containing directory.
func (s *Supervisor) Create(principal, path string, isDir bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := splitPath(path)
	if len(parts) == 0 {
		return errors.New("baseline: empty path")
	}
	dirEnt := s.root.self
	if len(parts) > 1 {
		var err error
		dirEnt, err = s.resolveLocked(principal, strings.Join(parts[:len(parts)-1], ">"))
		if err != nil {
			return err
		}
		if !dirEnt.isDir {
			return ErrNoAccess
		}
	}
	if !aclAllows(dirEnt, principal, hw.Write) {
		return ErrNoAccess
	}
	name := parts[len(parts)-1]
	if _, ok := dirEnt.dir.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	pack, err := s.Vols.Pack(dirEnt.addr.Pack)
	if err != nil {
		return err
	}
	uid := s.newUID()
	idx, err := pack.CreateEntry(uid, isDir, 0)
	if err != nil {
		return err
	}
	child := &entry{
		name: name, uid: uid, addr: disk.SegAddr{Pack: pack.ID(), TOC: idx},
		isDir: isDir, parent: dirEnt.dir,
		acl: map[string]hw.AccessMode{principal: hw.Read | hw.Write | hw.Execute},
	}
	if isDir {
		child.dir = &dirBody{self: child, children: make(map[string]*entry)}
	}
	dirEnt.dir.children[name] = child
	return nil
}

// SetACL replaces an object's ACL (write access to the containing
// directory required).
func (s *Supervisor) SetACL(principal, path string, acl map[string]hw.AccessMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.resolveLocked(principal, path)
	if err != nil {
		return err
	}
	if e.parent == nil || !aclAllows(e.parent.self, principal, hw.Write) {
		return ErrNoAccess
	}
	e.acl = acl
	return nil
}

// SetQuota designates (or adjusts) a quota directory — at ANY time,
// children active or not: the 1974 semantics whose implementation
// cost is the dynamic upward search on every growth.
func (s *Supervisor) SetQuota(principal, path string, limit int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.resolveLocked(principal, path)
	if err != nil {
		return err
	}
	if !e.isDir {
		return ErrNoAccess
	}
	if !aclAllows(e, principal, hw.Write) {
		return ErrNoAccess
	}
	e.isQuotaDir = true
	e.quotaLimit = limit
	return nil
}

// List returns the names in a directory.
func (s *Supervisor) List(principal, path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.resolveLocked(principal, path)
	if err != nil {
		return nil, err
	}
	if !e.isDir || !aclAllows(e, principal, hw.Read) {
		return nil, ErrNoAccess
	}
	var names []string
	for n := range e.dir.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
