package fnp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

func newFNP(t *testing.T, conns, shards int) (*FNP, *hw.CostMeter) {
	t.Helper()
	meter := &hw.CostMeter{}
	f, err := New(Config{Connections: conns, Shards: shards, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	return f, meter
}

func TestEnqueueDrainRoundTrip(t *testing.T) {
	f, _ := newFNP(t, 64, 4)
	for i := 0; i < 64; i++ {
		if !f.Enqueue(i, []hw.Word{hw.Word(i)}) {
			t.Fatalf("enqueue %d refused with full credits", i)
		}
	}
	seen := make(map[int]bool)
	total := 0
	for sh := 0; sh < f.Shards(); sh++ {
		total += f.Drain(sh, func(d Delivery) {
			if len(d.Data) != 1 || d.Data[0] != hw.Word(d.Conn) {
				t.Errorf("conn %d got %v", d.Conn, d.Data)
			}
			seen[d.Conn] = true
		})
	}
	if total != 64 || len(seen) != 64 {
		t.Fatalf("drained %d frames over %d conns, want 64/64", total, len(seen))
	}
	st := f.Stats()
	if st.Frames != 64 || st.Delivered != 64 || st.Credits != 64 || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PendingConns != 0 {
		t.Fatalf("pending connections after full drain: %+v", st)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Connections: 0}); err == nil {
		t.Error("zero-connection table accepted")
	}
	if _, err := New(Config{Connections: 8, Shards: 3}); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	f, _ := newFNP(t, 8, 1)
	if f.Enqueue(-1, nil) || f.Enqueue(8, nil) {
		t.Error("out-of-range connection accepted")
	}
	f.Credit(-1) // must not panic
	if st := f.ConnStats(99); st != (ConnStats{}) {
		t.Error("out-of-range ConnStats nonzero")
	}
}

// TestSlowConsumerThrottlesOnlyItself is the flow-control property:
// a connection whose consumer never returns credits drops its own
// overflow and nothing else.
func TestSlowConsumerThrottlesOnlyItself(t *testing.T) {
	f, _ := newFNP(t, 8, 1)
	const slow, fast = 3, 5
	// The slow consumer's line takes RingSlots frames, then drops.
	accepted := 0
	for i := 0; i < RingSlots+6; i++ {
		if f.Enqueue(slow, []hw.Word{hw.Word(i)}) {
			accepted++
		}
	}
	if accepted != RingSlots {
		t.Fatalf("slow line accepted %d, want the %d-slot window", accepted, RingSlots)
	}
	cs := f.ConnStats(slow)
	if cs.Drops != 6 || cs.Credits != 0 || cs.Queued != RingSlots {
		t.Fatalf("slow conn stats = %+v", cs)
	}
	// The fast line, same shard, is completely unaffected: deliver
	// and credit many times its window.
	for i := 0; i < 4*RingSlots; i++ {
		if !f.Enqueue(fast, []hw.Word{'f'}) {
			t.Fatalf("healthy line refused frame %d while a neighbor is throttled", i)
		}
		// Pop until this round's fast frame comes out; the slow
		// conn's frames pop too but never get their credits back —
		// that consumer is the slow one.
		for {
			d, ok := f.Next(0)
			if !ok {
				t.Fatal("queued frame missing")
			}
			if d.Conn == fast {
				f.Credit(fast)
				break
			}
		}
	}
	if cs := f.ConnStats(fast); cs.Drops != 0 {
		t.Fatalf("healthy line dropped %d frames", cs.Drops)
	}
	// Returning the slow line's credits reopens it.
	for i := 0; i < RingSlots; i++ {
		f.Credit(slow)
	}
	if !f.Enqueue(slow, []hw.Word{'s'}) {
		t.Fatal("slow line still closed after credits returned")
	}
}

// TestEventcountConsumer runs a real blocked consumer: the
// read-drain-await idiom must see every frame with no lost wakeup.
func TestEventcountConsumer(t *testing.T) {
	f, _ := newFNP(t, 4, 1)
	const frames = 200
	var got atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		ec := f.DeliveryEC(0)
		for got.Load() < frames {
			seen := ec.Read()
			n := f.Drain(0, func(d Delivery) { got.Add(1) })
			if n == 0 {
				ec.Await(seen + 1)
			}
		}
	}()
	for i := 0; i < frames; i++ {
		for !f.Enqueue(i%4, []hw.Word{hw.Word(i)}) {
			// Out of credits: the consumer is behind; the producer
			// retries (a terminal with flow control pushes back).
		}
	}
	<-done
	if got.Load() != frames {
		t.Fatalf("consumer saw %d frames, want %d", got.Load(), frames)
	}
}

func TestMuxSubscriberFeedsConnections(t *testing.T) {
	meter := &hw.CostMeter{}
	m := netmux.New(netmux.GenericKernel, meter)
	if err := m.Attach(netmux.FrontEnd{Terminals: 16}); err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Connections: 16, Shards: 2, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe("front-end", f.Subscriber()); err != nil {
		t.Fatal(err)
	}
	for term := 0; term < 16; term++ {
		payload := []hw.Word{hw.Word('a' + term), 0o777}
		if err := m.Deliver(nil, "front-end", netmux.Frame{Channel: term, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.Frames != 16 {
		t.Fatalf("connection plane saw %d frames, want 16", st.Frames)
	}
	d, ok := f.Next(f.ShardOf(6))
	if !ok || len(d.Data) != 1 {
		t.Fatalf("delivery = %+v, %v", d, ok)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	f, meter := newFNP(t, 2, 1)
	if f.LatencyPercentile(50) != 0 {
		t.Error("empty histogram nonzero")
	}
	// Enqueue, burn metered cycles, then deliver: latency is the
	// burned span.
	f.Enqueue(0, []hw.Word{'x'})
	meter.Add(1000)
	d, ok := f.Next(0)
	if !ok {
		t.Fatal("frame missing")
	}
	if d.Latency < 1000 {
		t.Fatalf("latency = %d, want >= 1000", d.Latency)
	}
	f.Credit(0)
	// A second, immediate delivery lands in a low bucket.
	f.Enqueue(1, []hw.Word{'y'})
	if _, ok := f.Next(0); !ok {
		t.Fatal("second frame missing")
	}
	p99 := f.LatencyPercentile(99)
	if p99 < 1000 {
		t.Fatalf("p99 = %d, want clamped near the observed max", p99)
	}
	if p50 := f.LatencyPercentile(50); p50 > p99 {
		t.Fatalf("p50 %d > p99 %d", p50, p99)
	}
}

func TestTraceEvents(t *testing.T) {
	f, _ := newFNP(t, 4, 1)
	sink := &recordSink{}
	f.SetTrace(sink)
	for i := 0; i < RingSlots+1; i++ {
		f.Enqueue(0, []hw.Word{hw.Word(i)})
	}
	f.Drain(0, nil)
	if n := len(sink.byKind(trace.EvNetFrame)); n != RingSlots {
		t.Errorf("EvNetFrame = %d, want %d", n, RingSlots)
	}
	drops := sink.byKind(trace.EvNetDrop)
	if len(drops) != 1 || drops[0].Arg1 != netmux.DropNoCredit {
		t.Errorf("drops = %+v", drops)
	}
	if n := len(sink.byKind(trace.EvNetCredit)); n != RingSlots {
		t.Errorf("EvNetCredit = %d, want %d", n, RingSlots)
	}
	for _, e := range sink.events {
		if e.Module != ModuleName && e.Kind != trace.EvAdvance && e.Kind != trace.EvAwait {
			t.Errorf("event %v from module %q", e.Kind, e.Module)
		}
	}
}

type recordSink struct {
	mu     sync.Mutex
	events []trace.Event
}

func (r *recordSink) Emit(e trace.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordSink) byKind(k trace.Kind) []trace.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []trace.Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestConcurrentStorm hammers the table from parallel producers and
// per-shard consumers under -race: accepted+dropped = sent, and every
// accepted frame is delivered exactly once.
func TestConcurrentStorm(t *testing.T) {
	f, _ := newFNP(t, 1024, 8)
	const (
		producers = 4
		perProd   = 2000
	)
	var accepted, dropped, delivered atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	var consumers sync.WaitGroup
	for sh := 0; sh < f.Shards(); sh++ {
		consumers.Add(1)
		go func(sh int) {
			defer consumers.Done()
			ec := f.DeliveryEC(sh)
			for {
				seen := ec.Read()
				n := f.Drain(sh, func(Delivery) { delivered.Add(1) })
				if n > 0 {
					continue
				}
				if stop.Load() {
					// Final drain after producers stopped.
					f.Drain(sh, func(Delivery) { delivered.Add(1) })
					return
				}
				// The read-drain-await idiom; the shutdown advance
				// below wakes anyone parked here.
				ec.Await(seen + 1)
			}
		}(sh)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				conn := (p*perProd + i*37) % f.Connections()
				if f.Enqueue(conn, []hw.Word{hw.Word(i)}) {
					accepted.Add(1)
				} else {
					dropped.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	stop.Store(true)
	for sh := 0; sh < f.Shards(); sh++ {
		f.DeliveryEC(sh).Advance()
	}
	consumers.Wait()
	if accepted.Load()+dropped.Load() != producers*perProd {
		t.Fatalf("accepted %d + dropped %d != %d", accepted.Load(), dropped.Load(), producers*perProd)
	}
	if delivered.Load() != accepted.Load() {
		t.Fatalf("delivered %d != accepted %d: frames lost or duplicated", delivered.Load(), accepted.Load())
	}
	st := f.Stats()
	if st.Frames != accepted.Load() || st.Drops != dropped.Load() || st.Delivered != delivered.Load() {
		t.Fatalf("stats %+v disagree with observed %d/%d/%d", st, accepted.Load(), dropped.Load(), delivered.Load())
	}
}

// TestSweepNoLostWakeupCreditReturn systematically explores the
// producer/consumer interleavings around the fnp-deliver and
// fnp-credit marks: in every explored schedule the blocked consumer
// must see every frame, including ones enqueued in the window between
// its empty drain and its await, and the producer must eventually
// reclaim the credit a slow pop holds. No schedule may end with a
// queued frame and a sleeping consumer.
func TestSweepNoLostWakeupCreditReturn(t *testing.T) {
	maxSched, maxPre := schedsim.EnvBudget(64, 2)
	const frames = 3
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Fallback:       schedsim.RoundRobin(),
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointMark &&
				(d.Detail == "fnp-deliver" || d.Detail == "fnp-credit")
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		f, err := New(Config{Connections: 2, Shards: 1})
		if err != nil {
			return nil, err
		}
		var got int
		ex := schedsim.New(schedsim.Config{Name: "fnp-wakeup", Strategy: strat})
		ex.Go("producer", func() {
			for i := 0; i < frames; i++ {
				for !f.Enqueue(0, []hw.Word{hw.Word(i)}) {
					// Out of credits: the consumer holds them until
					// its credit return; yield until it does.
					schedsim.Yield(schedsim.PointYield, "fnp-retry")
				}
			}
		})
		ex.Go("consumer", func() {
			ec := f.DeliveryEC(0)
			for got < frames {
				seen := ec.Read()
				n := f.Drain(0, func(d Delivery) { got++ })
				if n == 0 {
					// The lost-wakeup window: a frame enqueued right
					// here must already have advanced the count.
					ec.Await(seen + 1)
				}
			}
		})
		if err := ex.Run(); err != nil {
			return ex, err
		}
		if got != frames {
			return ex, fmt.Errorf("consumer saw %d frames, want %d: wakeup lost", got, frames)
		}
		if st := f.Stats(); st.Delivered != frames || st.Credits != frames {
			return ex, fmt.Errorf("stats %+v after clean run", st)
		}
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatalf("sweep vacuous: deliver/credit marks never opened over %d schedules", rep.Schedules)
	}
	t.Logf("%d schedules, %d in-window decisions, truncated=%v",
		rep.Schedules, rep.WindowDecisions, rep.Truncated)
}
