// Package fnp simulates the front-end communications processor: the
// connection plane that multiplexes massive terminal counts onto the
// answering service. Ciccarelli's redesign (internal/netmux) left a
// small generic demultiplexer in the kernel; this package is the
// machine that demultiplexer feeds — the Multics front-end processor
// organization, scaled until cycles per connection, not source lines,
// is the figure of merit.
//
// The organization is three ideas:
//
//   - A sharded connection table. Connections are slots in a flat
//     array, sharded by low bits, so lookup is O(1) and consumers on
//     different shards never contend. The table holds a million
//     connections without per-connection goroutines or channels.
//
//   - Per-connection bounded rings with credit-based flow control. A
//     frame consumes one credit at enqueue; the consumer returns the
//     credit only after it has processed the frame. A slow consumer
//     therefore throttles exactly its own line — its ring fills, its
//     frames drop (counted, traced, never silent) — while every other
//     connection keeps its full window. The mux is never blocked.
//
//   - Eventcount-driven delivery. Each shard advances a delivery
//     eventcount per accepted frame; consumers drain, then Await the
//     count they last read plus one. The read-drain-await idiom is the
//     wakeup-waiting switch in eventcount form: a frame enqueued
//     between the drain and the await has already advanced the count,
//     so the await returns immediately — no lost-wakeup window. The
//     schedule sweeps pin this in every explored interleaving.
package fnp

import (
	"fmt"
	"math/bits"
	"sync"

	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// ModuleName is the connection plane's name in kernel traces.
const ModuleName = "front-end-processor"

// RingSlots is each connection's bounded ring capacity — and, because
// a credit is a ring slot, its flow-control window.
const RingSlots = 4

// DefaultShards is the connection-table shard count when Config
// leaves it zero.
const DefaultShards = 32

// Algorithm-body costs, in the style of every manager: routing one
// frame into its connection ring, and returning one credit.
const (
	bodyRoute  = 8
	bodyCredit = 2
)

// latBuckets sizes the log2 delivery-latency histogram; cycle deltas
// fit in 64 buckets by construction.
const latBuckets = 64

// Config parameterizes New.
type Config struct {
	// Connections is the table size; connection ids are [0, n).
	Connections int
	// Shards must be a power of two; zero selects DefaultShards.
	Shards int
	// Meter charges the simulated routing and credit costs; nil runs
	// unmetered (latency stamps then all read zero).
	Meter *hw.CostMeter
}

// A Delivery is one frame handed to a consumer: the connection it
// belongs to, its data, and the simulated cycles it waited between
// enqueue and delivery.
type Delivery struct {
	Conn    int
	Data    []hw.Word
	Latency int64
}

// conn is one terminal line: a bounded ring of frames, the credit
// window, and its counters. Guarded by the owning shard's lock.
type conn struct {
	ring  [RingSlots][]hw.Word
	stamp [RingSlots]int64
	head  uint8
	count uint8
	// credits are the free window slots from the producer's view: a
	// frame consumes one at enqueue, the consumer returns it after
	// processing. count+popped-but-uncredited = RingSlots-credits, so
	// the ring can never overflow.
	credits uint8
	// pending marks the connection as queued on the shard's
	// round-robin delivery list.
	pending   bool
	drops     int64
	delivered int64
}

// shard is one slice of the connection table with its own lock,
// pending list and delivery eventcount.
type shard struct {
	mu lockableMutex
	// pending is a FIFO of connection ids with queued frames; a
	// connection appears at most once (conn.pending), so the list is
	// bounded by the shard's connection count.
	pending []uint32
	phead   int

	frames    int64
	drops     int64
	delivered int64
	credits   int64

	latHist [latBuckets]int64
	latMax  int64

	// ec is advanced once per accepted frame; consumers idle on it.
	ec eventcount.Eventcount
}

// lockableMutex lets the shard lock participate in deterministic
// schedules: under schedsim the acquisition is a yield point like any
// ranked lock's.
type lockableMutex struct{ mu sync.Mutex }

func (l *lockableMutex) Lock() {
	if schedsim.LockAcquire(&l.mu, "fnp-shard") {
		return
	}
	l.mu.Lock()
}
func (l *lockableMutex) Unlock() { l.mu.Unlock() }

// An FNP is one front-end processor: the sharded connection table.
type FNP struct {
	meter     *hw.CostMeter
	conns     []conn
	shards    []shard
	shardMask uint32
	trace     trace.Sink
}

// New builds the connection table.
func New(cfg Config) (*FNP, error) {
	if cfg.Connections <= 0 {
		return nil, fmt.Errorf("fnp: %d connections", cfg.Connections)
	}
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fnp: shard count %d is not a power of two", n)
	}
	f := &FNP{
		meter:     cfg.Meter,
		conns:     make([]conn, cfg.Connections),
		shards:    make([]shard, n),
		shardMask: uint32(n - 1),
	}
	for i := range f.conns {
		f.conns[i].credits = RingSlots
	}
	return f, nil
}

// SetTrace routes frame, drop and credit events — and the delivery
// eventcounts' await/advance — to s, attributed to ModuleName.
func (f *FNP) SetTrace(s trace.Sink) {
	f.trace = s
	for i := range f.shards {
		f.shards[i].ec.Trace(s, ModuleName)
	}
}

// Connections reports the table size.
func (f *FNP) Connections() int { return len(f.conns) }

// Shards reports the shard count.
func (f *FNP) Shards() int { return len(f.shards) }

// ShardOf reports which shard owns a connection.
func (f *FNP) ShardOf(connID int) int { return int(uint32(connID) & f.shardMask) }

// DeliveryEC returns a shard's delivery eventcount, advanced once per
// accepted frame. Consumers idle with the read-drain-await idiom:
//
//	seen := f.DeliveryEC(sh).Read()
//	for drained := f.Drain(sh, handle); drained == 0; {
//		f.DeliveryEC(sh).Await(seen + 1)
//		...
//	}
func (f *FNP) DeliveryEC(sh int) *eventcount.Eventcount { return &f.shards[sh].ec }

func (f *FNP) cycles() int64 {
	if f.meter == nil {
		return 0
	}
	return f.meter.Cycles()
}

// Enqueue routes one frame into its connection's ring, consuming one
// flow-control credit, and advances the shard's delivery eventcount.
// It reports false — and counts the drop — when the connection is out
// of credits: the frame is lost, the mux and every other connection
// are untouched.
func (f *FNP) Enqueue(connID int, data []hw.Word) bool {
	if connID < 0 || connID >= len(f.conns) {
		return false
	}
	if f.meter != nil {
		f.meter.AddBody(bodyRoute, hw.PLI)
	}
	sh := &f.shards[f.ShardOf(connID)]
	sh.mu.Lock()
	c := &f.conns[connID]
	if c.credits == 0 {
		c.drops++
		sh.drops++
		credits := int64(c.credits)
		sh.mu.Unlock()
		if f.trace != nil {
			f.trace.Emit(trace.Event{
				Kind: trace.EvNetDrop, Module: ModuleName, Cost: bodyRoute,
				Arg0: int64(connID), Arg1: netmux.DropNoCredit, Arg2: credits,
			})
		}
		return false
	}
	c.credits--
	slot := (c.head + c.count) % RingSlots
	c.ring[slot] = data
	c.stamp[slot] = f.cycles()
	c.count++
	sh.frames++
	if !c.pending {
		c.pending = true
		sh.pending = append(sh.pending, uint32(connID))
	}
	sh.mu.Unlock()
	// The lost-wakeup window: the frame is queued but the eventcount
	// has not yet moved. A consumer preempted in here must still see
	// the frame — either its drain finds it, or the Advance below
	// outruns its Await. The sweep tests deviate at this mark.
	schedsim.Yield(schedsim.PointMark, "fnp-deliver")
	sh.ec.Advance()
	if f.trace != nil {
		f.trace.Emit(trace.Event{
			Kind: trace.EvNetFrame, Module: ModuleName, Cost: bodyRoute,
			Arg0: int64(connID), Arg1: int64(len(data)), Arg2: 1,
		})
	}
	return true
}

// Subscriber adapts the table to a netmux network whose channel
// numbers are connection ids: attach it with Mux.Subscribe and every
// demultiplexed frame lands in its connection's ring.
func (f *FNP) Subscriber() func(netmux.Delivery) {
	return func(d netmux.Delivery) { f.Enqueue(d.Channel, d.Data) }
}

// Next pops the next delivery from a shard, round-robin across its
// pending connections. The popped frame's credit stays consumed until
// the consumer calls Credit — that is what makes a slow consumer
// throttle only itself. Returns false when the shard has no queued
// frames.
func (f *FNP) Next(shIdx int) (Delivery, bool) {
	sh := &f.shards[shIdx]
	sh.mu.Lock()
	for sh.phead < len(sh.pending) {
		id := sh.pending[sh.phead]
		sh.phead++
		if sh.phead == len(sh.pending) {
			sh.pending = sh.pending[:0]
			sh.phead = 0
		} else if sh.phead >= 1024 && sh.phead*2 >= len(sh.pending) {
			// Compact the consumed prefix so a long-lived storm does
			// not grow the list by one slot per re-appended pop.
			sh.pending = append(sh.pending[:0], sh.pending[sh.phead:]...)
			sh.phead = 0
		}
		c := &f.conns[id]
		if c.count == 0 {
			c.pending = false
			continue
		}
		data := c.ring[c.head]
		c.ring[c.head] = nil
		lat := f.cycles() - c.stamp[c.head]
		c.head = (c.head + 1) % RingSlots
		c.count--
		if c.count > 0 {
			sh.pending = append(sh.pending, id)
		} else {
			c.pending = false
		}
		c.delivered++
		sh.delivered++
		if lat < 0 {
			lat = 0
		}
		b := bits.Len64(uint64(lat))
		sh.latHist[b]++
		if lat > sh.latMax {
			sh.latMax = lat
		}
		sh.mu.Unlock()
		return Delivery{Conn: int(id), Data: data, Latency: lat}, true
	}
	sh.mu.Unlock()
	return Delivery{}, false
}

// Credit returns one flow-control credit to a connection, reopening a
// window slot for the mux. Consumers call it once per processed
// delivery; a consumer that forgets is a slow consumer by definition.
func (f *FNP) Credit(connID int) {
	if connID < 0 || connID >= len(f.conns) {
		return
	}
	if f.meter != nil {
		f.meter.AddBody(bodyCredit, hw.PLI)
	}
	sh := &f.shards[f.ShardOf(connID)]
	sh.mu.Lock()
	c := &f.conns[connID]
	if c.credits < RingSlots {
		c.credits++
	}
	credits := int64(c.credits)
	sh.credits++
	sh.mu.Unlock()
	// The credit-return window the sweeps deviate at: the window slot
	// is open but no new frame has claimed it yet.
	schedsim.Yield(schedsim.PointMark, "fnp-credit")
	if f.trace != nil {
		f.trace.Emit(trace.Event{
			Kind: trace.EvNetCredit, Module: ModuleName, Cost: bodyCredit,
			Arg0: int64(connID), Arg1: credits,
		})
	}
}

// Drain pops every queued delivery from a shard, handing each to fn
// and returning its credit afterwards. It reports how many frames it
// delivered.
func (f *FNP) Drain(shIdx int, fn func(Delivery)) int {
	n := 0
	for {
		d, ok := f.Next(shIdx)
		if !ok {
			return n
		}
		if fn != nil {
			fn(d)
		}
		f.Credit(d.Conn)
		n++
	}
}

// Stats are the plane-wide counters.
type Stats struct {
	// Connections is the table size.
	Connections int
	// Frames counts accepted frames (credit consumed, ring filled).
	Frames int64
	// Drops counts frames lost to connections out of credits.
	Drops int64
	// Delivered counts frames popped by consumers.
	Delivered int64
	// Credits counts credits returned by consumers.
	Credits int64
	// PendingConns is how many connections have queued frames now.
	PendingConns int
}

// Stats folds the per-shard counters.
func (f *FNP) Stats() Stats {
	st := Stats{Connections: len(f.conns)}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		st.Frames += sh.frames
		st.Drops += sh.drops
		st.Delivered += sh.delivered
		st.Credits += sh.credits
		st.PendingConns += len(sh.pending) - sh.phead
		sh.mu.Unlock()
	}
	return st
}

// ConnStats are one connection's counters: the isolation surface —
// a slow consumer's drops land here and nowhere else.
type ConnStats struct {
	Queued    int
	Credits   int
	Drops     int64
	Delivered int64
}

// ConnStats reports one connection's counters.
func (f *FNP) ConnStats(connID int) ConnStats {
	if connID < 0 || connID >= len(f.conns) {
		return ConnStats{}
	}
	sh := &f.shards[f.ShardOf(connID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := &f.conns[connID]
	return ConnStats{
		Queued:    int(c.count),
		Credits:   int(c.credits),
		Drops:     c.drops,
		Delivered: c.delivered,
	}
}

// LatencyPercentile reports the p-th percentile delivery latency in
// simulated cycles, computed from the log2 histogram: the value is
// the matched bucket's upper bound, clamped to the exact observed
// maximum — deterministic, like the latency observatory's percentiles.
func (f *FNP) LatencyPercentile(p float64) int64 {
	var hist [latBuckets]int64
	var total, max int64
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for b, n := range sh.latHist {
			hist[b] += n
			total += n
		}
		if sh.latMax > max {
			max = sh.latMax
		}
		sh.mu.Unlock()
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	need := int64(float64(total)*p/100 + 0.5)
	if need < 1 {
		need = 1
	}
	var cum int64
	for b, n := range hist {
		cum += n
		if cum >= need {
			upper := int64(1)<<uint(b) - 1
			if upper > max || b == latBuckets-1 {
				upper = max
			}
			return upper
		}
	}
	return max
}
