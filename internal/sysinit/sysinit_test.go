package sysinit

import "testing"

func TestOldPlanAllInKernel(t *testing.T) {
	p := OldPlan()
	for _, s := range p.Steps {
		if s.Env != Kernel {
			t.Errorf("old plan step %s runs in %v", s.Name, s.Env)
		}
	}
	if got := p.KernelLines(); got != 2700 {
		t.Errorf("old plan kernel lines = %d", got)
	}
}

func TestNewPlanMovesTwoThousandLines(t *testing.T) {
	old := OldPlan().KernelLines()
	new_ := NewPlan().KernelLines()
	if old-new_ != 2000 {
		t.Errorf("reduction = %d, want the paper's estimated 2000", old-new_)
	}
}

func TestTwoPhaseBoot(t *testing.T) {
	p := NewPlan()
	im, err := p.RunUserPhase()
	if err != nil {
		t.Fatal(err)
	}
	if im.Len() == 0 {
		t.Fatal("user phase produced an empty image")
	}
	if err := p.RunKernelPhase(im); err != nil {
		t.Fatalf("kernel phase: %v", err)
	}
}

func TestKernelPhaseNeedsImage(t *testing.T) {
	p := NewPlan()
	if err := p.RunKernelPhase(nil); err == nil {
		t.Error("kernel phase without image succeeded")
	}
	// The old plan needs no prior incarnation: its kernel phase
	// runs against an empty (but valid) image because every step is
	// kernel-resident and self-contained... except steps that read
	// config, which the old plan computes in-kernel. Run the old
	// plan end to end the old way: user phase is empty, so feed the
	// kernel phase a full image from a new-style run.
	old := OldPlan()
	im, err := old.RunUserPhase()
	if err != nil {
		t.Fatal(err)
	}
	if im.Len() != 0 {
		t.Errorf("old plan's user phase did work: %d artifacts", im.Len())
	}
}

func TestTamperedImageRejected(t *testing.T) {
	p := NewPlan()
	im, err := p.RunUserPhase()
	if err != nil {
		t.Fatal(err)
	}
	im.Corrupt()
	if err := p.RunKernelPhase(im); err == nil {
		t.Error("kernel booted from a tampered image")
	}
}

func TestImageStore(t *testing.T) {
	im := NewImage()
	im.Put("a", 7)
	im.Put("b", 9)
	if v, ok := im.Get("a"); !ok || v != 7 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := im.Get("zzz"); ok {
		t.Error("missing key found")
	}
	if err := im.Verify(); err != nil {
		t.Errorf("fresh image fails verification: %v", err)
	}
	if im.Len() != 2 {
		t.Errorf("Len = %d", im.Len())
	}
}

func TestEnvNames(t *testing.T) {
	if Kernel.String() == "" || UserProcess.String() == "" {
		t.Error("env names empty")
	}
}
