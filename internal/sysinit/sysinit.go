// Package sysinit models the system initialization redesign: the
// proposal (Luniewski) that certain parts of initialization be done
// in a user process environment in a previous system incarnation,
// removing an estimated 2,000 lines from the kernel.
//
// Initialization is a plan of steps, each of which either must run in
// the kernel of the booting incarnation (setting descriptor tables,
// wiring core segments) or can run as an ordinary user program in the
// PREVIOUS incarnation, producing a boot image the next kernel merely
// verifies and loads.
package sysinit

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Env says where a step may run.
type Env int

const (
	// Kernel: must run inside the booting kernel.
	Kernel Env = iota
	// UserProcess: can run in a user process of a previous
	// incarnation.
	UserProcess
)

func (e Env) String() string {
	if e == Kernel {
		return "kernel"
	}
	return "user-process"
}

// An Image is the boot image a previous incarnation prepares: named,
// checksummed configuration artifacts the next kernel loads.
type Image struct {
	entries map[string]uint64
	sum     uint64
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{entries: make(map[string]uint64)}
}

// Put stores an artifact.
func (im *Image) Put(name string, value uint64) {
	im.entries[name] = value
	im.reseal()
}

// Get fetches an artifact.
func (im *Image) Get(name string) (uint64, bool) {
	v, ok := im.entries[name]
	return v, ok
}

// Len reports the number of artifacts.
func (im *Image) Len() int { return len(im.entries) }

func (im *Image) reseal() {
	h := fnv.New64a()
	names := make([]string, 0, len(im.entries))
	for n := range im.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		_, _ = h.Write([]byte(n))
		v := im.entries[n]
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	im.sum = h.Sum64()
}

// Verify recomputes the checksum; the kernel refuses a tampered
// image.
func (im *Image) Verify() error {
	old := im.sum
	im.reseal()
	if im.sum != old {
		return errors.New("sysinit: boot image checksum mismatch")
	}
	return nil
}

// Corrupt deliberately breaks the seal (for tests and the tiger-team
// example).
func (im *Image) Corrupt() { im.sum ^= 1 }

// A Step is one unit of initialization work.
type Step struct {
	Name  string
	Env   Env
	Lines int // source lines the step contributes to its environment
	Run   func(*Image) error
}

// A Plan is an ordered initialization plan.
type Plan struct {
	Steps []Step
}

// KernelLines reports the source lines the plan keeps in the kernel.
func (p *Plan) KernelLines() int {
	n := 0
	for _, s := range p.Steps {
		if s.Env == Kernel {
			n += s.Lines
		}
	}
	return n
}

// RunUserPhase executes the user-process steps in a previous
// incarnation, producing the boot image.
func (p *Plan) RunUserPhase() (*Image, error) {
	im := NewImage()
	for _, s := range p.Steps {
		if s.Env != UserProcess {
			continue
		}
		if err := s.Run(im); err != nil {
			return nil, fmt.Errorf("sysinit: user step %s: %w", s.Name, err)
		}
	}
	return im, nil
}

// RunKernelPhase executes the kernel steps of the booting
// incarnation against a verified image.
func (p *Plan) RunKernelPhase(im *Image) error {
	if im == nil {
		return errors.New("sysinit: no boot image")
	}
	if err := im.Verify(); err != nil {
		return err
	}
	for _, s := range p.Steps {
		if s.Env != Kernel {
			continue
		}
		if err := s.Run(im); err != nil {
			return fmt.Errorf("sysinit: kernel step %s: %w", s.Name, err)
		}
	}
	return nil
}

// standardSteps is the initialization work of the system, with the
// environment assignment chosen by style: in the old style every step
// is kernel code; in the new style everything that only computes
// configuration moves to a prior incarnation's user process.
func standardSteps(newStyle bool) []Step {
	env := func(movable bool) Env {
		if newStyle && movable {
			return UserProcess
		}
		return Kernel
	}
	return []Step{
		{
			Name: "parse-config-deck", Env: env(true), Lines: 600,
			Run: func(im *Image) error { im.Put("config.mem-frames", 96); im.Put("config.vprocs", 8); return nil },
		},
		{
			Name: "plan-core-segment-layout", Env: env(true), Lines: 700,
			Run: func(im *Image) error { im.Put("layout.wired-frames", 8); return nil },
		},
		{
			Name: "build-pack-tables", Env: env(true), Lines: 700,
			Run: func(im *Image) error { im.Put("packs.count", 2); return nil },
		},
		{
			Name: "wire-core-segments", Env: Kernel, Lines: 300,
			Run: func(im *Image) error {
				if _, ok := im.Get("layout.wired-frames"); !ok {
					return errors.New("no layout in image")
				}
				return nil
			},
		},
		{
			Name: "install-descriptor-tables", Env: Kernel, Lines: 250,
			Run: func(im *Image) error { return nil },
		},
		{
			Name: "start-virtual-processors", Env: Kernel, Lines: 150,
			Run: func(im *Image) error {
				if _, ok := im.Get("config.vprocs"); !ok {
					return errors.New("no processor count in image")
				}
				return nil
			},
		},
	}
}

// OldPlan is the pre-redesign plan: all 2,700 lines in the kernel.
func OldPlan() *Plan { return &Plan{Steps: standardSteps(false)} }

// NewPlan is the redesigned plan: the 2,000 movable lines run as a
// user program in a previous incarnation; 700 remain in the kernel.
func NewPlan() *Plan { return &Plan{Steps: standardSteps(true)} }
