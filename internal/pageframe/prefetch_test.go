package pageframe

import (
	"strings"
	"testing"

	"multics/internal/disk"
	"multics/internal/hw"
)

// A fault carrying read-ahead queues the predicted pages' reads and a
// later demand fault on one of them is served from the speculative
// cache — no second demand read of the record.
func TestPrefetchClaimHit(t *testing.T) {
	f := newFixture(t, 8)
	pt := hw.NewPageTable(4, false)
	recs := []disk.RecordAddr{f.storedPage(t, 10), f.storedPage(t, 11), f.storedPage(t, 12)}
	_, err := f.m.LoadPage(PageReq{
		UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: recs[0], HasRecord: true,
		ReadAhead: []ReadAheadPage{{Page: 1, Record: recs[1]}, {Page: 2, Record: recs[2]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := f.m.Stats(); st.PrefetchIssued != 2 || st.PrefetchHits != 0 {
		t.Fatalf("after fault with read-ahead: issued %d hits %d, want 2, 0", st.PrefetchIssued, st.PrefetchHits)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("audit with parked prefetches: %v", bad)
	}
	for page := 1; page <= 2; page++ {
		if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: page, Pack: f.pack, Record: recs[page], HasRecord: true}); err != nil {
			t.Fatal(err)
		}
		if got := frameWord(t, f.mem, pt, page, 0); got != hw.Word(10+page) {
			t.Errorf("page %d word 0 = %d, want %d", page, got, 10+page)
		}
	}
	st := f.m.Stats()
	if st.PrefetchHits != 2 || st.PrefetchDrops != 0 || st.PrefetchSteals != 0 {
		t.Errorf("hits %d drops %d steals %d, want 2, 0, 0", st.PrefetchHits, st.PrefetchDrops, st.PrefetchSteals)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after claims: %v", bad)
	}
}

// When demand allocation runs dry the second-chance hand takes a
// parked prefetch frame back — the entry spends its reference bit on
// the first sweep and surrenders on the second — before the eviction
// clock touches any resident page.
func TestPrefetchSecondChanceSteal(t *testing.T) {
	f := newFixture(t, 4)
	f.m.FrameBatch = 1
	pt := hw.NewPageTable(6, false)
	recs := []disk.RecordAddr{f.storedPage(t, 20), f.storedPage(t, 21)}
	_, err := f.m.LoadPage(PageReq{
		UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: recs[0], HasRecord: true,
		ReadAhead: []ReadAheadPage{{Page: 1, Record: recs[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 frames: one resident, one cached, two free. Zero-fill faults
	// burn the free pair; the next allocation must steal the cached
	// frame, not evict the resident page.
	for page := 2; page <= 4; page++ {
		if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: page}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.m.Stats()
	if st.PrefetchSteals != 1 {
		t.Fatalf("steals = %d, want 1 (drops %d, evictions %d)", st.PrefetchSteals, st.PrefetchDrops, st.Evictions)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0: the cached frame should absorb the pressure", st.Evictions)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after steal: %v", bad)
	}
	// The stolen speculation is gone; the page still demand-loads.
	ev, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 1, Pack: f.pack, Record: recs[1], HasRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = ev
	if got := frameWord(t, f.mem, pt, 1, 0); got != 21 {
		t.Errorf("page 1 word 0 = %d, want 21", got)
	}
	if st := f.m.Stats(); st.PrefetchHits != 0 {
		t.Errorf("hits = %d, want 0 after the entry was stolen", st.PrefetchHits)
	}
}

// Dropping or truncating a page withdraws its parked speculation: the
// record may be freed and reused, so the entry is dropped stale and
// its frame returns to the free pool.
func TestPrefetchPurgedOnDropPage(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(2, false)
	recs := []disk.RecordAddr{f.storedPage(t, 30), f.storedPage(t, 31)}
	_, err := f.m.LoadPage(PageReq{
		UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: recs[0], HasRecord: true,
		ReadAhead: []ReadAheadPage{{Page: 1, Record: recs[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	free := f.m.FreeFrames()
	f.m.DropPage(pt, 1) // page 1 is not resident — only its speculation exists
	st := f.m.Stats()
	if st.PrefetchDrops != 1 || st.PrefetchHits != 0 {
		t.Errorf("drops %d hits %d, want 1, 0", st.PrefetchDrops, st.PrefetchHits)
	}
	if got := f.m.FreeFrames(); got != free+1 {
		t.Errorf("FreeFrames = %d, want %d: the withdrawn entry's frame must come back", got, free+1)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after purge: %v", bad)
	}
}

// A transient fault on the speculative transfer is dropped silently at
// claim time: the demand fault re-reads the record under its own retry
// budget and still succeeds.
func TestPrefetchTransientFaultDropped(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(2, false)
	recs := []disk.RecordAddr{f.storedPage(t, 40), f.storedPage(t, 41)}
	_, err := f.m.LoadPage(PageReq{
		UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: recs[0], HasRecord: true,
		ReadAhead: []ReadAheadPage{{Page: 1, Record: recs[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The speculative read is queued but not yet serviced; arm the
	// fault plan so the service performed at claim time fails once.
	f.pack.SetFaultPlan(&disk.FaultPlan{Rules: []disk.Rule{{Op: disk.OpRead, After: 0, Times: 1}}})
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 1, Pack: f.pack, Record: recs[1], HasRecord: true}); err != nil {
		t.Fatalf("demand fault failed on a speculative transfer fault: %v", err)
	}
	if got := frameWord(t, f.mem, pt, 1, 0); got != 41 {
		t.Errorf("page 1 word 0 = %d, want 41", got)
	}
	st := f.m.Stats()
	if st.PrefetchDrops != 1 || st.PrefetchHits != 0 {
		t.Errorf("drops %d hits %d, want 1, 0 (the faulted speculation is discarded)", st.PrefetchDrops, st.PrefetchHits)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after dropped speculation: %v", bad)
	}
}

// The audit's cache partition class: ring/map disagreement and a
// disconnected reference bit are each reported.
func TestAuditCatchesCacheCorruption(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(2, false)
	recs := []disk.RecordAddr{f.storedPage(t, 50), f.storedPage(t, 51)}
	_, err := f.m.LoadPage(PageReq{
		UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: recs[0], HasRecord: true,
		ReadAhead: []ReadAheadPage{{Page: 1, Record: recs[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("audit before corruption: %v", bad)
	}
	f.m.mu.Lock()
	cf := f.m.cacheRing[0]
	delete(f.m.cached, descKey{cf.pt, cf.page}) // ring entry with no map index
	f.m.mu.Unlock()
	bad := f.m.Audit()
	if len(bad) == 0 {
		t.Fatal("audit missed a ring entry absent from the cache map")
	}
	joined := strings.Join(bad, "; ")
	if !strings.Contains(joined, "not indexed") || !strings.Contains(joined, "ring holds") {
		t.Errorf("audit reports = %q, want the map/ring disagreement named", joined)
	}

	f.m.mu.Lock()
	f.m.cached[descKey{cf.pt, cf.page}] = cf // repair
	saved := cf.ticket
	cf.ticket = nil // reference bit set but no queued read
	f.m.mu.Unlock()
	bad = f.m.Audit()
	if len(bad) == 0 || !strings.Contains(strings.Join(bad, "; "), "reference bit") {
		t.Errorf("audit reports = %v, want the disconnected reference bit named", bad)
	}
	f.m.mu.Lock()
	cf.ticket = saved
	f.m.mu.Unlock()
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after repair: %v", bad)
	}
}
