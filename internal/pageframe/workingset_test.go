package pageframe

import (
	"testing"

	"multics/internal/hw"
)

func TestSampleWorkingSets(t *testing.T) {
	f := newFixture(t, 6)
	ptA := hw.NewPageTable(0, false)
	ptB := hw.NewPageTable(0, false)
	// Segment 1: three resident pages; segment 2: two.
	for i := 0; i < 3; i++ {
		if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: ptA, Page: i, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: ptB, Page: i, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
	}
	// Everything was just referenced (AddPage sets Used).
	sets, total := f.m.SampleWorkingSets()
	if sets[1] != 3 || sets[2] != 2 || total != 5 {
		t.Fatalf("first sample = %v (total %d)", sets, total)
	}
	// The sample cleared the bits: an idle interval shows empty
	// working sets even though the pages are resident.
	sets, total = f.m.SampleWorkingSets()
	if total != 0 || len(sets) != 0 {
		t.Fatalf("idle sample = %v (total %d)", sets, total)
	}
	// Re-reference one page of segment 1 only.
	if _, err := ptA.Update(1, func(d *hw.PTW) { d.Used = true }); err != nil {
		t.Fatal(err)
	}
	sets, total = f.m.SampleWorkingSets()
	if sets[1] != 1 || sets[2] != 0 || total != 1 {
		t.Fatalf("post-reference sample = %v (total %d)", sets, total)
	}
}

func TestWorkingSetSurvivesEviction(t *testing.T) {
	// Evicted pages leave the working set naturally: only resident
	// frames are sampled.
	f := newFixture(t, 1)
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	pt2 := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	sets, total := f.m.SampleWorkingSets()
	if sets[1] != 0 || sets[2] != 1 || total != 1 {
		t.Fatalf("sample after eviction = %v (total %d)", sets, total)
	}
}
