package pageframe

import (
	"testing"

	"multics/internal/disk"
	"multics/internal/hw"
)

// One allocation under a full memory gathers a whole batch of victims,
// writes the dirty ones back as a single grouped submission (one seek),
// and parks the surplus frames in the allocating processor's cache so
// the next faults take no manager lock and no eviction at all.
func TestBatchEvictionGroupsWriteBack(t *testing.T) {
	const frames = 4
	f := newFixture(t, frames)
	pt := hw.NewPageTable(frames+1, false)
	recs := make([]disk.RecordAddr, frames)
	for i := 0; i < frames; i++ {
		recs[i] = f.storedPage(t, hw.Word(10+i))
		if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: i, Pack: f.pack, Record: recs[i], HasRecord: true}); err != nil {
			t.Fatal(err)
		}
		// Dirty every page with a distinguishable word.
		d, err := pt.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.mem.Write(f.mem.FrameBase(d.Frame)+1, hw.Word(100+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := pt.Update(i, func(w *hw.PTW) { w.Modified = true; w.Used = false }); err != nil {
			t.Fatal(err)
		}
	}
	last := f.storedPage(t, 99)
	before := f.meter.Cycles()
	ev, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: frames, Pack: f.pack, Record: last, HasRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != frames {
		t.Fatalf("evicted %d pages, want the whole batch of %d: %v", len(ev), frames, ev)
	}
	// One fault body, one grouped write-back — the victims sort into
	// ascending elevator order, so from the head parked at the last
	// allocated record the batch pays one short seek and then streams
	// back to back — and one demand read of the record adjacent to the
	// batch's end (no positioning at all). Each of the two device
	// submissions pays the queue bookkeeping charge.
	want := hw.BodyCycles(bodyFaultService, hw.PLI) +
		(hw.CycDiskQueue + hw.CycDiskSeekShort + frames*hw.CycDiskRecord) +
		(hw.CycDiskQueue + hw.CycDiskRecord)
	if got := f.meter.Cycles() - before; got != want {
		t.Errorf("batch eviction fault cost %d cycles, want %d", got, want)
	}
	if evictions := f.m.Stats().Evictions; evictions != frames {
		t.Errorf("evictions = %d, want %d", evictions, frames)
	}
	// Every dirty page landed in its record.
	buf := make([]hw.Word, hw.PageWords)
	for i := 0; i < frames; i++ {
		if err := f.pack.ReadRecord(recs[i], buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != hw.Word(10+i) || buf[1] != hw.Word(100+i) {
			t.Errorf("record of page %d holds %d/%d, want %d/%d", i, buf[0], buf[1], 10+i, 100+i)
		}
	}
	// The surplus victims' frames are parked locally: reloading the
	// evicted pages costs no further eviction.
	if free := f.m.FreeFrames(); free != frames-1 {
		t.Errorf("FreeFrames = %d, want %d parked from the batch", free, frames-1)
	}
	for i := 0; i < frames-1; i++ {
		if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: i, Pack: f.pack, Record: recs[i], HasRecord: true}); err != nil {
			t.Fatal(err)
		}
	}
	if evictions := f.m.Stats().Evictions; evictions != frames {
		t.Errorf("reloads evicted again: evictions = %d, want still %d", evictions, frames)
	}
}
