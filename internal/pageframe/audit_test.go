package pageframe

import (
	"testing"

	"multics/internal/hw"
)

func TestAccessors(t *testing.T) {
	f := newFixture(t, 4)
	if f.m.PageableFrames() != 4 {
		t.Errorf("PageableFrames = %d", f.m.PageableFrames())
	}
	if f.m.Mem() != f.mem {
		t.Error("Mem accessor wrong")
	}
}

func TestAuditCleanThenCorrupt(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("clean manager audits dirty: %v", bad)
	}
	// Corrupt the descriptor: point it elsewhere.
	if _, err := pt.Update(0, func(d *hw.PTW) { d.Frame = 0 }); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a descriptor pointing at the wrong frame")
	}
	if _, err := pt.Update(0, func(d *hw.PTW) { d.Present = false }); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a not-present descriptor for an in-use frame")
	}
}

func TestAuditDetectsFreeListCorruption(t *testing.T) {
	f := newFixture(t, 3)
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	// Duplicate a frame onto the free list (pulling cached frames
	// back into the global pool first, so it is non-empty).
	f.m.mu.Lock()
	f.m.drainCachesLocked()
	f.m.free = append(f.m.free, f.m.free[0])
	f.m.mu.Unlock()
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a duplicated free frame")
	}
	// Free an in-use frame.
	f2 := newFixture(t, 3)
	pt2 := hw.NewPageTable(0, false)
	if _, _, err := f2.m.AddPage(PageReq{UID: 1, PT: pt2, Page: 0, Pack: f2.pack}); err != nil {
		t.Fatal(err)
	}
	d, _ := pt2.Get(0)
	f2.m.mu.Lock()
	f2.m.free = append(f2.m.free, d.Frame)
	f2.m.mu.Unlock()
	if bad := f2.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a frame both free and in use")
	}
	// Lose a frame entirely.
	f3 := newFixture(t, 3)
	f3.m.mu.Lock()
	f3.m.free = f3.m.free[:len(f3.m.free)-1]
	f3.m.mu.Unlock()
	if bad := f3.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a lost frame")
	}
}

func TestLockedFramesAreNotEvicted(t *testing.T) {
	// A descriptor mid-service (lock bit set) must never be chosen
	// as a victim.
	f := newFixture(t, 1)
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Update(0, func(d *hw.PTW) { d.Lock = true }); err != nil {
		t.Fatal(err)
	}
	pt2 := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack}); err == nil {
		t.Error("eviction of a locked frame succeeded")
	}
	// Unlock: now it can be evicted.
	if err := pt.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack}); err != nil {
		t.Errorf("eviction after unlock failed: %v", err)
	}
}
