package pageframe

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/trace"
	"multics/internal/vproc"
)

type fixture struct {
	mem   *hw.Memory
	m     *Manager
	vps   *vproc.Manager
	pack  *disk.Pack
	meter *hw.CostMeter
}

// newFixture builds a machine with `pageable` pageable frames and one
// pack of 64 records.
func newFixture(t *testing.T, pageable int) *fixture {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(1 + pageable)
	cm, err := coreseg.NewManager(mem, 1, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, err := cm.Allocate("vp-states", 4*vproc.StateWords)
	if err != nil {
		t.Fatal(err)
	}
	vps, err := vproc.NewManager(4, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(PageWriterModule); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	pack, err := vols.AddPack("dska", 64)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: mem, m: m, vps: vps, pack: pack, meter: meter}
}

// storedPage allocates a record holding a recognizable pattern and
// returns it.
func (f *fixture) storedPage(t *testing.T, tag hw.Word) disk.RecordAddr {
	t.Helper()
	r, err := f.pack.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]hw.Word, hw.PageWords)
	buf[0] = tag
	if err := f.pack.WriteRecord(r, buf); err != nil {
		t.Fatal(err)
	}
	return r
}

func frameWord(t *testing.T, mem *hw.Memory, pt *hw.PageTable, page, off int) hw.Word {
	t.Helper()
	d, err := pt.Get(page)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Present {
		t.Fatalf("page %d not present", page)
	}
	w, err := mem.Read(mem.FrameBase(d.Frame) + off)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLoadPageFromRecord(t *testing.T) {
	f := newFixture(t, 4)
	rec := f.storedPage(t, 77)
	pt := hw.NewPageTable(1, false)
	ev, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: rec, HasRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Errorf("evictions on empty memory: %v", ev)
	}
	if got := frameWord(t, f.mem, pt, 0, 0); got != 77 {
		t.Errorf("loaded word = %d, want 77", got)
	}
	if faults := f.m.Stats().Faults; faults != 1 {
		t.Errorf("faults = %d", faults)
	}
}

func TestLoadPageZeroFill(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(1, false)
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if got := frameWord(t, f.mem, pt, 0, 5); got != 0 {
		t.Errorf("zero page holds %d", got)
	}
}

func TestLoadPageAlreadyPresent(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(1, false)
	if err := pt.Set(0, hw.PTW{Present: true, Frame: 1, Lock: true}); err != nil {
		t.Fatal(err)
	}
	free := f.m.FreeFrames()
	ev, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack})
	if err != nil || len(ev) != 0 {
		t.Fatalf("LoadPage = %v, %v", ev, err)
	}
	if f.m.FreeFrames() != free {
		t.Error("present page consumed a frame")
	}
	d, _ := pt.Get(0)
	if d.Lock {
		t.Error("descriptor still locked after degenerate service")
	}
}

func TestAddPageAllocatesRecordAndZeroFrame(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(0, false)
	used := f.pack.UsedRecords()
	rec, ev, err := f.m.AddPage(PageReq{UID: 9, PT: pt, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Errorf("unexpected evictions %v", ev)
	}
	if f.pack.UsedRecords() != used+1 {
		t.Error("no record allocated")
	}
	_ = rec
	d, err := pt.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Present || !d.Modified || d.QuotaTrap {
		t.Errorf("descriptor after AddPage = %+v", d)
	}
	if got := frameWord(t, f.mem, pt, 0, 0); got != 0 {
		t.Errorf("new page holds %d", got)
	}
}

// TestAddPageKeepLocked pins the claimed-descriptor discipline the
// quota-growth path depends on: a KeepLocked AddPage publishes the
// page with the lock bit held, evictors pass it over no matter the
// pressure, and only the caller's Unlock releases it. Without this a
// concurrent eviction could zero-reclaim the fresh page before the
// grower records it in the file map.
func TestAddPageKeepLocked(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(0, false)
	req := PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack, KeepLocked: true}
	if _, _, err := f.m.AddPage(req); err != nil {
		t.Fatal(err)
	}
	d, err := pt.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Present || !d.Lock {
		t.Fatalf("descriptor after KeepLocked AddPage = %+v, want present and locked", d)
	}

	// Exhaust memory: every pageable frame is demanded while the
	// claimed page is ineligible.
	for i := 0; i < 6; i++ {
		other := hw.NewPageTable(0, false)
		if _, _, err := f.m.AddPage(PageReq{UID: uint64(i + 2), PT: other, Page: 0, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
	}
	d, _ = pt.Get(0)
	if !d.Present || !d.Lock {
		t.Fatalf("claimed page lost under pressure: %+v", d)
	}

	f.m.Unlock(req)
	d, _ = pt.Get(0)
	if d.Lock {
		t.Error("descriptor still locked after Unlock")
	}
	// Released, the page is an ordinary eviction candidate again.
	for i := 0; i < 6; i++ {
		other := hw.NewPageTable(0, false)
		if _, _, err := f.m.AddPage(PageReq{UID: uint64(i + 20), PT: other, Page: 0, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
	}
	d, _ = pt.Get(0)
	if d.Present {
		t.Error("unlocked page never evicted under full pressure")
	}
}

func TestAddPageFullPackReturnsUpTheChain(t *testing.T) {
	f := newFixture(t, 4)
	for f.pack.FreeRecords() > 0 {
		if _, err := f.pack.AllocRecord(); err != nil {
			t.Fatal(err)
		}
	}
	pt := hw.NewPageTable(0, false)
	free := f.m.FreeFrames()
	_, _, err := f.m.AddPage(PageReq{UID: 9, PT: pt, Page: 0, Pack: f.pack})
	if !errors.Is(err, disk.ErrPackFull) {
		t.Fatalf("AddPage on full pack: %v, want ErrPackFull", err)
	}
	if f.m.FreeFrames() != free {
		t.Error("failed AddPage leaked a frame")
	}
	if pt.Len() != 0 {
		t.Error("failed AddPage grew the page table")
	}
}

func TestEvictionWritesBackDirtyPage(t *testing.T) {
	f := newFixture(t, 2) // only two pageable frames
	f.m.FrameBatch = 1    // single-victim semantics under test
	// Fill both frames with dirty pages.
	var pts []*hw.PageTable
	var recs []disk.RecordAddr
	for i := 0; i < 2; i++ {
		pt := hw.NewPageTable(0, false)
		rec, _, err := f.m.AddPage(PageReq{UID: uint64(i + 1), PT: pt, Page: 0, Pack: f.pack})
		if err != nil {
			t.Fatal(err)
		}
		d, _ := pt.Get(0)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(100+i)); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt)
		recs = append(recs, rec)
	}
	// A third page forces an eviction.
	pt3 := hw.NewPageTable(0, false)
	_, ev, err := f.m.AddPage(PageReq{UID: 3, PT: pt3, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 {
		t.Fatalf("evictions = %v, want one", ev)
	}
	if ev[0].Zero {
		t.Error("dirty page reported zero")
	}
	victim := int(ev[0].UID) - 1
	// The victim's descriptor is now not-present and its contents
	// are on disk.
	d, _ := pts[victim].Get(0)
	if d.Present {
		t.Error("victim descriptor still present")
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := f.pack.ReadRecord(recs[victim], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != hw.Word(100+victim) {
		t.Errorf("written-back word = %d, want %d", buf[0], 100+victim)
	}
	// Reloading the victim restores its contents.
	if _, err := f.m.LoadPage(PageReq{UID: ev[0].UID, PT: pts[victim], Page: 0, Pack: f.pack, Record: recs[victim], HasRecord: true}); err != nil {
		t.Fatal(err)
	}
	if got := frameWord(t, f.mem, pts[victim], 0, 0); got != hw.Word(100+victim) {
		t.Errorf("reloaded word = %d", got)
	}
}

func TestZeroPageEvictionFreesRecordAndSetsQuotaTrap(t *testing.T) {
	f := newFixture(t, 1)
	pt1 := hw.NewPageTable(0, false)
	// Add a page and leave it all zeros.
	_, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt1, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	used := f.pack.UsedRecords()
	// Force eviction with a second page.
	pt2 := hw.NewPageTable(0, false)
	_, ev, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || !ev[0].Zero || !ev[0].FreedRecord {
		t.Fatalf("evictions = %+v, want one zero eviction with freed record", ev)
	}
	if f.pack.UsedRecords() != used { // -1 zero freed, +1 new page
		t.Errorf("used records = %d, want %d", f.pack.UsedRecords(), used)
	}
	d, _ := pt1.Get(0)
	if d.Present || !d.QuotaTrap {
		t.Errorf("zero-evicted descriptor = %+v, want quota trap set", d)
	}
	if zeros := f.m.Stats().ZeroEvictions; zeros != 1 {
		t.Errorf("zeroEvictions = %d", zeros)
	}
}

func TestDaemonWriteBack(t *testing.T) {
	f := newFixture(t, 1)
	f.m.Daemons = true
	pt1 := hw.NewPageTable(0, false)
	rec, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt1, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := pt1.Get(0)
	if err := f.mem.Write(f.mem.FrameBase(d.Frame), 55); err != nil {
		t.Fatal(err)
	}
	before := f.vps.Dispatches()
	pt2 := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if f.vps.Dispatches() == before {
		t.Error("daemon mode did not dispatch the page-writer")
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := f.pack.ReadRecord(rec, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 55 {
		t.Errorf("daemon write-back lost data: %d", buf[0])
	}
}

func TestDaemonModeCostsMore(t *testing.T) {
	// The paper: using dedicated processes required memory
	// management to call process management, a small but
	// unavoidable cost.
	run := func(daemons bool) int64 {
		f := newFixture(t, 1)
		f.m.Daemons = daemons
		f.meter.Reset()
		pt := hw.NewPageTable(0, false)
		if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
		d, _ := pt.Get(0)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			pt2 := hw.NewPageTable(0, false)
			if _, _, err := f.m.AddPage(PageReq{UID: uint64(i + 2), PT: pt2, Page: 0, Pack: f.pack}); err != nil {
				t.Fatal(err)
			}
			d, _ := pt2.Get(0)
			if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		return f.meter.Cycles()
	}
	inline := run(false)
	daemon := run(true)
	if daemon <= inline {
		t.Errorf("daemon organization cost %d cycles <= inline %d; want a small extra cost", daemon, inline)
	}
	if daemon > inline*3/2 {
		t.Errorf("daemon organization cost %d vs inline %d: should be small, not >50%%", daemon, inline)
	}
}

func TestWaitUnlock(t *testing.T) {
	f := newFixture(t, 2)
	pt := hw.NewPageTable(1, false)
	// Not locked: returns immediately.
	if err := f.m.WaitUnlock(nil, pt, 0); err != nil {
		t.Fatal(err)
	}
	// Locked: blocks until service completes.
	if err := pt.Set(0, hw.PTW{Lock: true}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan error, 1)
	go func() {
		defer wg.Done()
		done <- f.m.WaitUnlock(nil, pt, 0)
	}()
	rec := f.storedPage(t, 5)
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: rec, HasRecord: true, NotifySeg: 8, NotifyPage: 0}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d, _ := pt.Get(0)
	if d.Lock || !d.Present {
		t.Errorf("descriptor after service = %+v", d)
	}
}

func TestReleaseSegment(t *testing.T) {
	f := newFixture(t, 4)
	pt := hw.NewPageTable(0, false)
	var recs []disk.RecordAddr
	for i := 0; i < 3; i++ {
		rec, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: i, Pack: f.pack})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	// Dirty page 1; pages 0 and 2 stay zero.
	d, _ := pt.Get(1)
	if err := f.mem.Write(f.mem.FrameBase(d.Frame), 9); err != nil {
		t.Fatal(err)
	}
	ev, err := f.m.ReleaseSegment(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 3 {
		t.Fatalf("reports = %+v, want 3", ev)
	}
	zeros, stored := 0, 0
	for _, e := range ev {
		if e.Zero {
			zeros++
		} else {
			stored++
		}
	}
	if zeros != 2 || stored != 1 {
		t.Errorf("zeros=%d stored=%d", zeros, stored)
	}
	if f.m.FreeFrames() != 4 {
		t.Errorf("FreeFrames = %d after release", f.m.FreeFrames())
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := f.pack.ReadRecord(recs[1], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Errorf("released dirty page word = %d", buf[0])
	}
}

func TestDropPage(t *testing.T) {
	f := newFixture(t, 2)
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	free := f.m.FreeFrames()
	f.m.DropPage(pt, 0)
	if f.m.FreeFrames() != free+1 {
		t.Error("DropPage did not free the frame")
	}
	d, _ := pt.Get(0)
	if d.Present {
		t.Error("dropped page still present")
	}
	// Dropping a non-resident page is a no-op.
	f.m.DropPage(pt, 0)
}

func TestClockGivesSecondChance(t *testing.T) {
	f := newFixture(t, 2)
	f.m.FrameBatch = 1 // single-victim semantics under test
	ptA := hw.NewPageTable(0, false)
	ptB := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: ptA, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: ptB, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	// Mark A referenced, leave B unreferenced.
	if _, err := ptA.Update(0, func(d *hw.PTW) { d.Used = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := ptB.Update(0, func(d *hw.PTW) { d.Used = false }); err != nil {
		t.Fatal(err)
	}
	ptC := hw.NewPageTable(0, false)
	_, ev, err := f.m.AddPage(PageReq{UID: 3, PT: ptC, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].UID != 2 {
		t.Errorf("evicted %+v, want the unreferenced page of segment 2", ev)
	}
}

func TestPLIBodyCostsMoreThanASM(t *testing.T) {
	run := func(lang hw.Language) int64 {
		f := newFixture(t, 4)
		f.m.Lang = lang
		f.meter.Reset()
		pt := hw.NewPageTable(0, false)
		for i := 0; i < 4; i++ {
			if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt, Page: i, Pack: f.pack}); err != nil {
				t.Fatal(err)
			}
		}
		return f.meter.Cycles()
	}
	asm, pli := run(hw.ASM), run(hw.PLI)
	if pli <= asm {
		t.Errorf("PL/I body %d cycles <= assembly %d", pli, asm)
	}
}

func TestNewManagerValidation(t *testing.T) {
	mem := hw.NewMemory(2)
	if _, err := NewManager(mem, 2, nil, nil); err == nil {
		t.Error("manager with no pageable memory accepted")
	}
	if _, err := NewManager(mem, -1, nil, nil); err == nil {
		t.Error("negative first frame accepted")
	}
	if _, err := (&Manager{}).LoadPage(PageReq{}); err == nil {
		t.Error("LoadPage with nil page table succeeded")
	}
	if _, _, err := (&Manager{}).AddPage(PageReq{}); err == nil {
		t.Error("AddPage with nil page table succeeded")
	}
}

func TestWaitUnlockWakeupWaitingWindow(t *testing.T) {
	// Service completes between the fault and WaitUnlock: the
	// waiter must not hang.
	f := newFixture(t, 2)
	proc := hw.NewProcessor(0, f.mem, f.meter)
	f.vps.RegisterProcessor(proc)
	pt := hw.NewPageTable(1, false)
	if err := pt.Set(0, hw.PTW{}); err != nil {
		t.Fatal(err)
	}
	dt := hw.NewDescriptorTable(16)
	if err := dt.Set(8, hw.SDW{Present: true, Table: pt, Access: hw.Read, MaxRing: hw.UserRing}); err != nil {
		t.Fatal(err)
	}
	proc.UserDT = dt
	proc.Ring = hw.UserRing
	proc.DescriptorLockHW = true
	// Fault: sets lock bit, loads the locked-descriptor register.
	_, err := proc.Read(8, 0)
	if !hw.IsFault(err, hw.FaultMissingPage) {
		t.Fatalf("read: %v", err)
	}
	// Another agent services the fault before this processor waits.
	rec := f.storedPage(t, 3)
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: pt, Page: 0, Pack: f.pack, Record: rec, HasRecord: true, NotifySeg: 8, NotifyPage: 0}); err != nil {
		t.Fatal(err)
	}
	// WaitUnlock returns promptly (descriptor no longer locked).
	if err := f.m.WaitUnlock(proc, pt, 0); err != nil {
		t.Fatal(err)
	}
	if w, err := proc.Read(8, 0); err != nil || w != 3 {
		t.Errorf("reference after wait = %d, %v", w, err)
	}
}

func TestEvictionWriteFailureLeaksNoFrames(t *testing.T) {
	// A failed grouped write-back must not strand its victims'
	// frames: they were disconnected and shot down, so they belong
	// on the free list, not in limbo.
	f := newFixture(t, 4)
	for i := 0; i < 4; i++ {
		pt := hw.NewPageTable(0, false)
		if _, _, err := f.m.AddPage(PageReq{UID: uint64(i + 1), PT: pt, Page: 0, Pack: f.pack}); err != nil {
			t.Fatal(err)
		}
		d, _ := pt.Get(0)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	f.pack.SetFaultPlan(&disk.FaultPlan{Rules: []disk.Rule{{Op: disk.OpWrite, Permanent: true}}})
	pt := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 9, PT: pt, Page: 0, Pack: f.pack}); !errors.Is(err, disk.ErrPermanent) {
		t.Fatalf("AddPage over failing disk: %v, want ErrPermanent", err)
	}
	if free := f.m.FreeFrames(); free != 4 {
		t.Errorf("free frames after failed eviction = %d, want all 4 victims recovered", free)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after failed eviction: %v", bad)
	}
	if n := f.m.Stats().WriteBackErrors; n != 1 {
		t.Errorf("write-back errors = %d, want 1", n)
	}
	// With the device healthy again every frame is allocatable.
	f.pack.SetFaultPlan(nil)
	for i := 0; i < 4; i++ {
		pt := hw.NewPageTable(0, false)
		if _, _, err := f.m.AddPage(PageReq{UID: uint64(20 + i), PT: pt, Page: 0, Pack: f.pack}); err != nil {
			t.Fatalf("AddPage %d after recovery: %v", i, err)
		}
	}
}

func TestEvictionMidBatchFailureReinstatesUnreachedVictims(t *testing.T) {
	// When the write-back pass dies partway through a batch, victims
	// it never reached are still resident and mapped — they must go
	// back in the in-use table, not leak.
	f := newFixture(t, 2)
	f.m.FrameBatch = 2
	// First frame: a recordless zero-fill page that is then dirtied;
	// evicting it fails (a dirty page must have a record).
	ptA := hw.NewPageTable(1, false)
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: ptA, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	dA, _ := ptA.Get(0)
	if err := f.mem.Write(f.mem.FrameBase(dA.Frame), 11); err != nil {
		t.Fatal(err)
	}
	// Second frame: an ordinary dirty page with a record.
	recB := f.storedPage(t, 22)
	ptB := hw.NewPageTable(1, false)
	if _, err := f.m.LoadPage(PageReq{UID: 2, PT: ptB, Page: 0, Pack: f.pack, Record: recB, HasRecord: true}); err != nil {
		t.Fatal(err)
	}
	dB, _ := ptB.Get(0)
	if err := f.mem.Write(f.mem.FrameBase(dB.Frame), 33); err != nil {
		t.Fatal(err)
	}
	// A third page forces a two-victim pass that dies on the first.
	pt3 := hw.NewPageTable(1, false)
	if _, err := f.m.LoadPage(PageReq{UID: 3, PT: pt3, Page: 0, Pack: f.pack}); err == nil {
		t.Fatal("evicting a dirty recordless page should fail")
	}
	if free := f.m.FreeFrames(); free != 1 {
		t.Errorf("free frames = %d, want 1 (the disconnected victim's)", free)
	}
	if got := frameWord(t, f.mem, ptB, 0, 0); got != 33 {
		t.Errorf("unreached victim's page holds %d, want 33", got)
	}
	if ev := f.m.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1 (reinstated victim uncounted)", ev)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Errorf("audit after mid-batch failure: %v", bad)
	}
}

func TestZeroEvictionRevalidatesAfterShootdown(t *testing.T) {
	// The zero-page verdict is sampled before the victim's descriptor
	// comes down, but a reference on another processor that translated
	// through a cached PTW may legitimately store into the frame until
	// the shootdown broadcast returns. The evictor must re-scan after
	// the broadcast: such a page is not zero — its record survives, the
	// quota trap comes off, and the store is written back rather than
	// silently discarded.
	f := newFixture(t, 1)
	bus := hw.NewShootdownBus()
	assoc := hw.NewAssociativeMemory()
	bus.Attach(assoc)
	f.m.Bus = bus

	ptA := hw.NewPageTable(0, false)
	recA, _, err := f.m.AddPage(PageReq{UID: 1, PT: ptA, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	dA, _ := ptA.Get(0)
	frame := dA.Frame

	// A "processor" mid-reference: it holds its reference lock, so the
	// shootdown broadcast cannot return until it finishes. It waits for
	// the evictor to take the descriptor down — proof the zero scan
	// already ran — then lands a store through its stale translation.
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		assoc.HoldReference(func() {
			close(ready) // reference lock is held from here on
			for {
				d, err := ptA.Get(0)
				if err != nil {
					done <- err
					return
				}
				if !d.Present {
					break
				}
				runtime.Gosched()
			}
			done <- f.mem.Write(f.mem.FrameBase(frame)+3, 99)
		})
	}()

	// Demand the only frame: page A is evicted while the reference is
	// in flight.
	<-ready
	ptB := hw.NewPageTable(0, false)
	_, evs, err := f.m.AddPage(PageReq{UID: 2, PT: ptB, Page: 0, Pack: f.pack})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("evictions = %+v, want one", evs)
	}
	if evs[0].Zero || evs[0].FreedRecord {
		t.Fatalf("eviction = %+v: racing store classified zero and its record freed", evs[0])
	}
	d, _ := ptA.Get(0)
	if d.Present || d.QuotaTrap {
		t.Errorf("descriptor after revalidated eviction = %+v, want not-present without quota trap", d)
	}
	if z := f.m.Stats().ZeroEvictions; z != 0 {
		t.Errorf("zeroEvictions = %d, want 0", z)
	}
	// The store survived to disk and a reload sees it.
	if _, err := f.m.LoadPage(PageReq{UID: 1, PT: ptA, Page: 0, Pack: f.pack, Record: recA, HasRecord: true}); err != nil {
		t.Fatal(err)
	}
	if got := frameWord(t, f.mem, ptA, 0, 3); got != 99 {
		t.Errorf("reloaded word = %d, want the store that raced the zero scan (99)", got)
	}
}

func TestDaemonWriteBackErrorIsCounted(t *testing.T) {
	// In daemon mode the evicting caller cannot see a write-back
	// failure — the counter and the write-error event must record it.
	f := newFixture(t, 1)
	f.m.Daemons = true
	rec := trace.NewRecorder(64, f.meter)
	f.m.SetTrace(rec)
	pt1 := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 1, PT: pt1, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	d, _ := pt1.Get(0)
	if err := f.mem.Write(f.mem.FrameBase(d.Frame), 55); err != nil {
		t.Fatal(err)
	}
	f.pack.SetFaultPlan(&disk.FaultPlan{Rules: []disk.Rule{{Op: disk.OpWrite, Permanent: true}}})
	pt2 := hw.NewPageTable(0, false)
	if _, _, err := f.m.AddPage(PageReq{UID: 2, PT: pt2, Page: 0, Pack: f.pack}); err != nil {
		t.Fatal(err)
	}
	if n := f.m.Stats().WriteBackErrors; n != 1 {
		t.Errorf("write-back errors = %d, want 1", n)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == trace.EvWriteError {
			if e.Arg0 != 1 {
				t.Errorf("write-error event reports %d pages, want 1", e.Arg0)
			}
			found = true
		}
	}
	if !found {
		t.Error("no write-error event in the trace")
	}
}
