// Package pageframe implements the page frame manager: the module of
// the kernel design that multiplexes the pageable frames of primary
// memory among segment pages.
//
// Its interface is deliberately below the segment abstraction: callers
// (the segment manager) hand it explicit page tables, packs and record
// addresses, so the page frame manager never reads the active segment
// table or the directory hierarchy — the direct cross-module data
// references that riddled the 1974 page control are structurally
// impossible here.
//
// Three details of the paper are reproduced:
//
//   - Fault service uses the descriptor lock bit set by the hardware;
//     when service completes the manager unlocks the descriptor and
//     notifies every process waiting on it (including processors that
//     had not yet reached the wait primitive, via the wakeup-waiting
//     switch). No interpretive retranslation of the faulting address
//     is ever needed.
//
//   - Adding a never-before-used page to a segment allocates a disk
//     record; when the pack is full the resulting exception is
//     returned up the call chain for the segment manager to handle by
//     relocation.
//
//   - The page-removal algorithm scans the contents of pages about to
//     be removed; a page of all zeros is represented by a file-map
//     flag and its record is freed (which is why the paper notes the
//     algorithm must be given otherwise unnecessary access to the data
//     of every page in the system).
//
// The manager can run in the multi-process organization of the
// redesigned memory manager (Huber): page write-backs are performed by
// a dedicated page-writer process on its own virtual processor, which
// costs an inter-process message per write-back but lets the work run
// at low priority. With Daemons false the write-backs run inline, as
// the 1974 design did.
package pageframe

import (
	"errors"
	"fmt"

	"multics/internal/disk"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/trace"
	"multics/internal/vproc"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for page fetches, evictions and descriptor-lock waits
// are attributed to it.
const ModuleName = "page-frame-manager"

// PageWriterModule is the kernel module name of the dedicated
// write-back process.
const PageWriterModule = "page-writer"

// bodyFaultService is the assembly-language cycle cost of the fault
// service algorithm body; the PL/I recoding of the kernel multiplies
// it per hw.BodyCycles.
const bodyFaultService = 150

// ErrNoFrames is returned when every pageable frame is wired by an
// in-flight operation and none can be evicted.
var ErrNoFrames = errors.New("pageframe: no evictable frame")

// A PageReq names one page for LoadPage: which descriptor to satisfy
// and where the page's contents live.
type PageReq struct {
	// UID identifies the owning segment (for eviction reports).
	UID uint64
	// PT and Page locate the descriptor to make present.
	PT   *hw.PageTable
	Page int
	// Pack and Record give the page's disk home. HasRecord is
	// false for a zero page (contents are zeros and no record is
	// held).
	Pack      *disk.Pack
	Record    disk.RecordAddr
	HasRecord bool
	// NotifySeg/NotifyPage name the descriptor address for waiter
	// notification (the segment number the faulting processor's
	// locked-descriptor register holds).
	NotifySeg  int
	NotifyPage int
}

// An Evicted report describes one page the manager removed from
// primary memory while making room. The caller (the segment manager)
// owns the file maps and quota accounting, so the report carries what
// it needs: for a zero page the record was freed and the file map
// should say zero; otherwise the page was written back to its record.
type Evicted struct {
	UID    uint64
	Page   int
	Zero   bool
	Pack   string
	Record disk.RecordAddr
	// FreedRecord reports that a record was released because the
	// page turned out to be all zeros (storage charge released).
	FreedRecord bool
}

type frameInfo struct {
	inUse     bool
	uid       uint64
	page      int
	pt        *hw.PageTable
	pack      *disk.Pack
	record    disk.RecordAddr
	hasRecord bool
}

type descKey struct {
	pt   *hw.PageTable
	page int
}

// A Manager multiplexes the pageable page frames.
type Manager struct {
	mem   *hw.Memory
	meter *hw.CostMeter
	vps   *vproc.Manager

	// Lang is the implementation language of the manager's body for
	// the cost model; the kernel design recodes it in PL/I.
	Lang hw.Language
	// Daemons selects the multi-process write-back organization.
	Daemons bool

	mu      lockrank.Mutex
	sink    trace.Sink
	first   int
	frames  []frameInfo // index 0 is absolute frame `first`
	free    []int       // absolute frame numbers
	clock   int
	unlocks map[descKey]*eventcount.Eventcount

	faults, evictions, zeroEvictions int64
}

// SetTrace routes page fetch/evict and lock-wait events to s, and
// retraces the unlock eventcounts so their await/advance operations
// are attributed to this manager.
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	m.sink = s
	for _, ec := range m.unlocks {
		ec.Trace(s, ModuleName)
	}
	m.mu.Unlock()
}

// emit sends e when tracing is on; the sink is read under the
// manager lock.
func (m *Manager) emit(e trace.Event) {
	m.mu.Lock()
	s := m.sink
	m.mu.Unlock()
	if s != nil {
		s.Emit(e)
	}
}

// NewManager returns a page frame manager owning frames
// [firstFrame, mem.Frames()). The virtual processor manager supplies
// the wait/notify primitives and the page-writer daemon.
func NewManager(mem *hw.Memory, firstFrame int, vps *vproc.Manager, meter *hw.CostMeter) (*Manager, error) {
	if firstFrame < 0 || firstFrame >= mem.Frames() {
		return nil, fmt.Errorf("pageframe: first frame %d of %d leaves no pageable memory", firstFrame, mem.Frames())
	}
	m := &Manager{
		mem:     mem,
		meter:   meter,
		vps:     vps,
		first:   firstFrame,
		frames:  make([]frameInfo, mem.Frames()-firstFrame),
		unlocks: make(map[descKey]*eventcount.Eventcount),
		Lang:    hw.PLI,
	}
	m.mu.Init(ModuleName)
	for f := mem.Frames() - 1; f >= firstFrame; f-- {
		m.free = append(m.free, f)
	}
	return m, nil
}

// PageableFrames reports how many frames the manager multiplexes.
func (m *Manager) PageableFrames() int { return len(m.frames) }

// Mem exposes the primary memory the frames live in, for modules that
// must read or write resident pages directly.
func (m *Manager) Mem() *hw.Memory { return m.mem }

// FreeFrames reports how many frames are currently unassigned.
func (m *Manager) FreeFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// Stats reports the counts of fault services, evictions, and
// zero-page discoveries.
func (m *Manager) Stats() (faults, evictions, zeroEvictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults, m.evictions, m.zeroEvictions
}

// LoadPage services a missing-page fault: it obtains a frame (evicting
// if necessary), fills it from the page's record (or with zeros for a
// zero page), makes the descriptor present, unlocks it, and notifies
// waiters. The eviction reports must be applied by the caller to its
// file maps before it issues further requests. If the descriptor is
// already present the call degenerates to unlock-and-notify.
func (m *Manager) LoadPage(req PageReq) ([]Evicted, error) {
	if req.PT == nil {
		return nil, errors.New("pageframe: LoadPage with nil page table")
	}
	m.meter.AddBody(bodyFaultService, m.Lang)

	cur, err := req.PT.Get(req.Page)
	if err != nil {
		return nil, err
	}
	if cur.Present {
		m.finishService(req)
		return nil, nil
	}

	frame, ev, err := m.obtainFrame()
	if err != nil {
		return nil, err
	}
	if req.HasRecord {
		buf := make([]hw.Word, hw.PageWords)
		if err := disk.Retry(m.meter, func() error {
			return req.Pack.ReadRecord(req.Record, buf)
		}); err != nil {
			m.releaseFrame(frame)
			return ev, fmt.Errorf("pageframe: fetching page %d of segment %d: %w", req.Page, req.UID, err)
		}
		if err := m.mem.WriteFrame(frame, buf); err != nil {
			m.releaseFrame(frame)
			return ev, err
		}
	} else {
		if err := m.mem.ZeroFrame(frame); err != nil {
			m.releaseFrame(frame)
			return ev, err
		}
	}
	m.mu.Lock()
	m.frames[frame-m.first] = frameInfo{
		inUse: true, uid: req.UID, page: req.Page, pt: req.PT,
		pack: req.Pack, record: req.Record, hasRecord: req.HasRecord,
	}
	m.faults++
	if m.sink != nil {
		from := int64(0) // zero page
		if req.HasRecord {
			from = 1 // disk record
		}
		m.sink.Emit(trace.Event{
			Kind: trace.EvPageFetch, Module: ModuleName,
			Cost: hw.BodyCycles(bodyFaultService, m.Lang),
			Arg0: int64(req.UID), Arg1: int64(req.Page), Arg2: from,
		})
	}
	m.mu.Unlock()
	if _, err := req.PT.Update(req.Page, func(d *hw.PTW) {
		d.Present = true
		d.Frame = frame
		d.QuotaTrap = false
		d.Used = true
		d.Modified = false
	}); err != nil {
		return ev, err
	}
	m.finishService(req)
	if m.Daemons {
		// Let the daemon drain any write-backs queued by eviction.
		m.vps.RunPending()
	}
	return ev, nil
}

// AddPage adds a never-before-used page to a segment: it allocates a
// disk record on the segment's pack (reporting disk.ErrPackFull up the
// call chain when there is none), obtains a zeroed frame, and makes
// the descriptor present. The caller has already checked and charged
// quota. On success the new record address is returned for the
// caller's file map.
func (m *Manager) AddPage(req PageReq) (disk.RecordAddr, []Evicted, error) {
	if req.PT == nil {
		return 0, nil, errors.New("pageframe: AddPage with nil page table")
	}
	m.meter.AddBody(bodyFaultService, m.Lang)
	var rec disk.RecordAddr
	if err := disk.Retry(m.meter, func() error {
		var aerr error
		rec, aerr = req.Pack.AllocRecord()
		return aerr
	}); err != nil {
		return 0, nil, fmt.Errorf("pageframe: adding page %d of segment %d: %w", req.Page, req.UID, err)
	}
	frame, ev, err := m.obtainFrame()
	if err != nil {
		_ = req.Pack.FreeRecord(rec)
		return 0, ev, err
	}
	if err := m.mem.ZeroFrame(frame); err != nil {
		_ = req.Pack.FreeRecord(rec)
		m.releaseFrame(frame)
		return 0, ev, err
	}
	m.mu.Lock()
	m.frames[frame-m.first] = frameInfo{
		inUse: true, uid: req.UID, page: req.Page, pt: req.PT,
		pack: req.Pack, record: rec, hasRecord: true,
	}
	m.faults++
	if m.sink != nil {
		m.sink.Emit(trace.Event{
			Kind: trace.EvPageFetch, Module: ModuleName,
			Cost: hw.BodyCycles(bodyFaultService, m.Lang),
			Arg0: int64(req.UID), Arg1: int64(req.Page), Arg2: 2, // never-before-used
		})
	}
	m.mu.Unlock()
	if req.Page >= req.PT.Len() {
		req.PT.Grow(req.Page + 1)
	}
	if _, err := req.PT.Update(req.Page, func(d *hw.PTW) {
		d.Present = true
		d.Frame = frame
		d.QuotaTrap = false
		d.Used = true
		d.Modified = true
	}); err != nil {
		return 0, ev, err
	}
	m.finishService(req)
	if m.Daemons {
		m.vps.RunPending()
	}
	return rec, ev, nil
}

// finishService unlocks the descriptor (harmless if it was never
// locked) and notifies waiters.
func (m *Manager) finishService(req PageReq) {
	_ = req.PT.Unlock(req.Page)
	m.mu.Lock()
	ec := m.unlocks[descKey{req.PT, req.Page}]
	m.mu.Unlock()
	if ec != nil {
		m.vps.Notify(ec, req.NotifySeg, req.NotifyPage)
	} else if m.vps != nil {
		// Still cover a processor between fault and wait.
		var dummy eventcount.Eventcount
		m.vps.Notify(&dummy, req.NotifySeg, req.NotifyPage)
	}
}

// WaitUnlock blocks the caller until the given descriptor's lock bit
// has been cleared by the servicing processor. proc may be nil; when
// it is not, the wakeup-waiting protocol protects the window between
// the locked-descriptor exception and this call.
func (m *Manager) WaitUnlock(proc *hw.Processor, pt *hw.PageTable, page int) error {
	m.mu.Lock()
	key := descKey{pt, page}
	ec := m.unlocks[key]
	if ec == nil {
		ec = new(eventcount.Eventcount)
		ec.Trace(m.sink, ModuleName)
		m.unlocks[key] = ec
	}
	target := ec.Read() + 1
	m.mu.Unlock()

	d, err := pt.Get(page)
	if err != nil {
		return err
	}
	if !d.Lock {
		return nil // already serviced
	}
	m.meter.Add(hw.CycLockWait)
	m.emit(trace.Event{Kind: trace.EvLockSpin, Module: ModuleName, Cost: hw.CycLockWait, Arg0: int64(page)})
	m.vps.Wait(proc, ec, target)
	return nil
}

// obtainFrame returns a free frame, evicting a victim if none is
// free. Caller must not hold m.mu.
func (m *Manager) obtainFrame() (int, []Evicted, error) {
	m.mu.Lock()
	if len(m.free) > 0 {
		f := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.mu.Unlock()
		return f, nil, nil
	}
	victim, err := m.chooseVictimLocked()
	if err != nil {
		m.mu.Unlock()
		return 0, nil, err
	}
	info := m.frames[victim-m.first]
	m.frames[victim-m.first] = frameInfo{}
	m.evictions++
	m.mu.Unlock()

	ev, err := m.writeBack(victim, info)
	if err != nil {
		return 0, nil, err
	}
	var evs []Evicted
	if ev != nil {
		evs = append(evs, *ev)
	}
	return victim, evs, nil
}

// chooseVictimLocked runs the clock over the in-use frames: a frame
// whose descriptor has Used set gets a second chance (the bit is
// cleared); the first frame without it is the victim.
func (m *Manager) chooseVictimLocked() (int, error) {
	n := len(m.frames)
	for pass := 0; pass < 2*n; pass++ {
		i := m.clock
		m.clock = (m.clock + 1) % n
		fi := &m.frames[i]
		if !fi.inUse {
			continue
		}
		d, err := fi.pt.Get(fi.page)
		if err != nil {
			return 0, err
		}
		if d.Lock {
			continue // mid-service, not evictable
		}
		if d.Used {
			_, _ = fi.pt.Update(fi.page, func(w *hw.PTW) { w.Used = false })
			continue
		}
		return m.first + i, nil
	}
	// Second-chance exhausted: take any unlocked in-use frame.
	for i := range m.frames {
		if m.frames[i].inUse {
			d, err := m.frames[i].pt.Get(m.frames[i].page)
			if err != nil {
				return 0, err
			}
			if !d.Lock {
				return m.first + i, nil
			}
		}
	}
	return 0, ErrNoFrames
}

// writeBack removes the victim page from its descriptor and persists
// its contents: zeros free the record (the zero-page optimization),
// anything else is written to the record, by the page-writer daemon
// when the multi-process organization is on.
func (m *Manager) writeBack(frame int, info frameInfo) (*Evicted, error) {
	// Disconnect the descriptor first so no reference sees a frame
	// being recycled. A zero page gets the quota-trap bit so its
	// next touch goes through the charged path again.
	zero, err := m.mem.FrameIsZero(frame)
	if err != nil {
		return nil, err
	}
	if _, err := info.pt.Update(info.page, func(d *hw.PTW) {
		d.Present = false
		d.Frame = 0
		d.QuotaTrap = zero
	}); err != nil {
		return nil, err
	}
	ev := &Evicted{UID: info.uid, Page: info.page, Zero: zero}
	if info.pack != nil {
		ev.Pack = info.pack.ID()
		ev.Record = info.record
	}
	var wasZero int64
	if zero {
		wasZero = 1
	}
	m.emit(trace.Event{Kind: trace.EvPageEvict, Module: ModuleName, Arg0: int64(info.uid), Arg1: int64(info.page), Arg2: wasZero})
	if zero {
		m.mu.Lock()
		m.zeroEvictions++
		m.mu.Unlock()
		if info.hasRecord {
			if err := info.pack.FreeRecord(info.record); err != nil {
				return nil, err
			}
			ev.FreedRecord = true
		}
		return ev, nil
	}
	if !info.hasRecord {
		return nil, fmt.Errorf("pageframe: dirty page %d of segment %d has no record", info.page, info.uid)
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := m.mem.ReadFrame(frame, buf); err != nil {
		return nil, err
	}
	if m.Daemons && m.vps != nil {
		pack, rec := info.pack, info.record
		if err := m.vps.Enqueue(PageWriterModule, func() {
			_ = disk.Retry(m.meter, func() error {
				return pack.WriteRecord(rec, buf)
			})
		}); err != nil {
			return nil, err
		}
	} else {
		if err := disk.Retry(m.meter, func() error {
			return info.pack.WriteRecord(info.record, buf)
		}); err != nil {
			return nil, fmt.Errorf("pageframe: writing back page %d of segment %d: %w", info.page, info.uid, err)
		}
	}
	return ev, nil
}

// releaseFrame returns a frame obtained by obtainFrame that could not
// be used.
func (m *Manager) releaseFrame(frame int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frames[frame-m.first] = frameInfo{}
	m.free = append(m.free, frame)
}

// ReleaseSegment evicts every resident page belonging to pt, writing
// contents back (or freeing records for zero pages), and returns the
// reports. The segment manager calls it on deactivation.
func (m *Manager) ReleaseSegment(pt *hw.PageTable) ([]Evicted, error) {
	var out []Evicted
	for {
		m.mu.Lock()
		idx := -1
		for i := range m.frames {
			if m.frames[i].inUse && m.frames[i].pt == pt {
				idx = i
				break
			}
		}
		if idx < 0 {
			m.mu.Unlock()
			return out, nil
		}
		info := m.frames[idx]
		m.frames[idx] = frameInfo{}
		m.evictions++
		m.mu.Unlock()

		ev, err := m.writeBack(m.first+idx, info)
		if err != nil {
			return out, err
		}
		if ev != nil {
			out = append(out, *ev)
		}
		m.mu.Lock()
		m.free = append(m.free, m.first+idx)
		m.mu.Unlock()
		if m.Daemons && m.vps != nil {
			m.vps.RunPending()
		}
	}
}

// SampleWorkingSets implements the usage estimation of Gifford's
// project study ("Hardware Estimation of a Process' Primary Memory
// Requirements"): the hardware sets a used bit on every reference,
// and a periodic sample reads and clears the bits, yielding each
// segment's count of recently referenced resident pages — its
// working-set contribution. Returns the per-segment counts and the
// total.
func (m *Manager) SampleWorkingSets() (map[uint64]int, int) {
	m.mu.Lock()
	type ref struct {
		pt   *hw.PageTable
		page int
		uid  uint64
	}
	var refs []ref
	for _, fi := range m.frames {
		if fi.inUse {
			refs = append(refs, ref{pt: fi.pt, page: fi.page, uid: fi.uid})
		}
	}
	m.mu.Unlock()
	sets := make(map[uint64]int)
	total := 0
	for _, r := range refs {
		var used bool
		if _, err := r.pt.Update(r.page, func(d *hw.PTW) {
			used = d.Used
			d.Used = false
		}); err != nil {
			continue
		}
		if used {
			sets[r.uid]++
			total++
		}
	}
	return sets, total
}

// Audit checks the manager's own invariants and returns a description
// of every violation: the free list and the in-use frame table must
// partition the pageable frames exactly, and every in-use frame's page
// descriptor must point back at that frame. It is one module's share
// of the paper's audit prong.
func (m *Manager) Audit() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []string
	seen := make(map[int]string, len(m.frames))
	for _, f := range m.free {
		if f < m.first || f >= m.first+len(m.frames) {
			bad = append(bad, fmt.Sprintf("free frame %d outside pageable range", f))
			continue
		}
		if prev, dup := seen[f]; dup {
			bad = append(bad, fmt.Sprintf("frame %d on free list twice (%s)", f, prev))
		}
		seen[f] = "free"
		if m.frames[f-m.first].inUse {
			bad = append(bad, fmt.Sprintf("frame %d both free and in use", f))
		}
	}
	for i, fi := range m.frames {
		frame := m.first + i
		if !fi.inUse {
			if _, ok := seen[frame]; !ok {
				bad = append(bad, fmt.Sprintf("frame %d neither free nor in use", frame))
			}
			continue
		}
		if _, ok := seen[frame]; ok {
			continue // already reported as both
		}
		seen[frame] = "in-use"
		d, err := fi.pt.Get(fi.page)
		if err != nil {
			bad = append(bad, fmt.Sprintf("frame %d: descriptor unreadable: %v", frame, err))
			continue
		}
		if !d.Present || d.Frame != frame {
			bad = append(bad, fmt.Sprintf("frame %d holds page %d of segment %d but its descriptor says present=%v frame=%d", frame, fi.page, fi.uid, d.Present, d.Frame))
		}
	}
	return bad
}

// DropPage discards a resident page without write-back (used when the
// whole segment is being deleted).
func (m *Manager) DropPage(pt *hw.PageTable, page int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.frames {
		if m.frames[i].inUse && m.frames[i].pt == pt && m.frames[i].page == page {
			m.frames[i] = frameInfo{}
			m.free = append(m.free, m.first+i)
			_, _ = pt.Update(page, func(d *hw.PTW) { *d = hw.PTW{} })
			return
		}
	}
}
