// Package pageframe implements the page frame manager: the module of
// the kernel design that multiplexes the pageable frames of primary
// memory among segment pages.
//
// Its interface is deliberately below the segment abstraction: callers
// (the segment manager) hand it explicit page tables, packs and record
// addresses, so the page frame manager never reads the active segment
// table or the directory hierarchy — the direct cross-module data
// references that riddled the 1974 page control are structurally
// impossible here.
//
// Three details of the paper are reproduced:
//
//   - Fault service uses the descriptor lock bit set by the hardware;
//     when service completes the manager unlocks the descriptor and
//     notifies every process waiting on it (including processors that
//     had not yet reached the wait primitive, via the wakeup-waiting
//     switch). No interpretive retranslation of the faulting address
//     is ever needed.
//
//   - Adding a never-before-used page to a segment allocates a disk
//     record; when the pack is full the resulting exception is
//     returned up the call chain for the segment manager to handle by
//     relocation.
//
//   - The page-removal algorithm scans the contents of pages about to
//     be removed; a page of all zeros is represented by a file-map
//     flag and its record is freed (which is why the paper notes the
//     algorithm must be given otherwise unnecessary access to the data
//     of every page in the system).
//
// The manager can run in the multi-process organization of the
// redesigned memory manager (Huber): page write-backs are performed by
// a dedicated page-writer process on its own virtual processor, which
// costs an inter-process message per write-back but lets the work run
// at low priority. With Daemons false the write-backs run inline, as
// the 1974 design did.
package pageframe

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"multics/internal/disk"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/schedsim"
	"multics/internal/trace"
	"multics/internal/vproc"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for page fetches, evictions and descriptor-lock waits
// are attributed to it.
const ModuleName = "page-frame-manager"

// PageWriterModule is the kernel module name of the dedicated
// write-back process.
const PageWriterModule = "page-writer"

// bodyFaultService is the assembly-language cycle cost of the fault
// service algorithm body; the PL/I recoding of the kernel multiplies
// it per hw.BodyCycles.
const bodyFaultService = 150

// ErrNoFrames is returned when every pageable frame is wired by an
// in-flight operation and none can be evicted.
var ErrNoFrames = errors.New("pageframe: no evictable frame")

// A PageReq names one page for LoadPage: which descriptor to satisfy
// and where the page's contents live.
type PageReq struct {
	// UID identifies the owning segment (for eviction reports).
	UID uint64
	// PT and Page locate the descriptor to make present.
	PT   *hw.PageTable
	Page int
	// Pack and Record give the page's disk home. HasRecord is
	// false for a zero page (contents are zeros and no record is
	// held).
	Pack      *disk.Pack
	Record    disk.RecordAddr
	HasRecord bool
	// NotifySeg/NotifyPage name the descriptor address for waiter
	// notification (the segment number the faulting processor's
	// locked-descriptor register holds).
	NotifySeg  int
	NotifyPage int
	// KeepLocked makes AddPage publish the descriptor with the lock
	// bit set instead of unlocking and notifying. The quota path has
	// no hardware-set descriptor lock, so without this a concurrent
	// eviction can take the fresh page — and zero-reclaim it — before
	// the caller has recorded the new page in its file map, leaving
	// the map pointing at a freed record. The caller must call Unlock
	// with the same request once its bookkeeping is consistent.
	KeepLocked bool
	// ReadAhead names the stored pages the caller predicts will fault
	// next (a detected sequential pattern). LoadPage queues their
	// reads speculatively on the pack's elevator and parks the frames
	// in the second-chance cache; speculation failures never fail the
	// demand fault.
	ReadAhead []ReadAheadPage
}

// An Evicted report describes one page the manager removed from
// primary memory while making room. The caller (the segment manager)
// owns the file maps and quota accounting, so the report carries what
// it needs: for a zero page the record was freed and the file map
// should say zero; otherwise the page was written back to its record.
type Evicted struct {
	UID    uint64
	Page   int
	Zero   bool
	Pack   string
	Record disk.RecordAddr
	// FreedRecord reports that a record was released because the
	// page turned out to be all zeros (storage charge released).
	FreedRecord bool
}

type frameInfo struct {
	inUse     bool
	uid       uint64
	page      int
	pt        *hw.PageTable
	pack      *disk.Pack
	record    disk.RecordAddr
	hasRecord bool
}

type descKey struct {
	pt   *hw.PageTable
	page int
}

// DefaultFrameBatch is how many frames an allocation moves between the
// global pool and a processor's local cache, and how many victims one
// eviction pass gathers for a grouped write-back.
const DefaultFrameBatch = 4

// A frameCache is one processor's private stock of free frames,
// refilled in batches from the global pool so the common allocation
// does not take the manager lock at all.
type frameCache struct {
	mu     sync.Mutex
	frames []int
}

// A Manager multiplexes the pageable page frames.
type Manager struct {
	mem   *hw.Memory
	meter *hw.CostMeter
	vps   *vproc.Manager

	// Lang is the implementation language of the manager's body for
	// the cost model; the kernel design recodes it in PL/I.
	Lang hw.Language
	// Daemons selects the multi-process write-back organization.
	Daemons bool
	// Bus broadcasts associative-memory shootdowns whenever the
	// manager disconnects a page descriptor; a nil bus (no
	// translation caches fitted) does nothing.
	Bus *hw.ShootdownBus
	// AssocStats, when set by the kernel, reports the aggregate
	// translation-cache counters Stats folds in: hits, misses and
	// shootdown broadcasts.
	AssocStats func() (hits, misses, shootdowns int64)
	// FrameBatch overrides DefaultFrameBatch when positive.
	FrameBatch int

	mu      lockrank.Mutex
	sink    trace.Sink
	spans   trace.SpanSink
	first   int
	frames  []frameInfo // index 0 is absolute frame `first`
	free    []int       // absolute frame numbers
	clock   int
	unlocks map[descKey]*eventcount.Eventcount

	// The speculative read-ahead cache (see prefetch.go): cached
	// indexes prefetched-but-unclaimed frames by descriptor, cacheRing
	// is the same entries in Clock order, and cacheHand is the
	// second-chance hand's position in the ring.
	cached    map[descKey]*cachedFrame
	cacheRing []*cachedFrame
	cacheHand int

	// caches[i] belongs to the goroutine bound to simulated
	// processor i-1; slot 0 serves unbound callers. The lock order
	// is m.mu before any cache mutex; the fast path takes only the
	// cache mutex.
	caches [hw.MeterCPUs + 1]frameCache

	faults, evictions, zeroEvictions, writeErrors int64
	zeroRescues                                   int64

	prefetchIssued, prefetchHits  int64
	prefetchDrops, prefetchSteals int64
}

// SetTrace routes page fetch/evict and lock-wait events to s, and
// retraces the unlock eventcounts so their await/advance operations
// are attributed to this manager.
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	m.sink = s
	m.spans = trace.SpanSinkOf(s)
	for _, ec := range m.unlocks {
		ec.Trace(s, ModuleName)
	}
	m.mu.Unlock()
}

// spanSink reads the span sink under the manager lock, mirroring
// emit.
func (m *Manager) spanSink() trace.SpanSink {
	m.mu.Lock()
	s := m.spans
	m.mu.Unlock()
	return s
}

// emit sends e when tracing is on; the sink is read under the
// manager lock.
func (m *Manager) emit(e trace.Event) {
	m.mu.Lock()
	s := m.sink
	m.mu.Unlock()
	if s != nil {
		s.Emit(e)
	}
}

// NewManager returns a page frame manager owning frames
// [firstFrame, mem.Frames()). The virtual processor manager supplies
// the wait/notify primitives and the page-writer daemon.
func NewManager(mem *hw.Memory, firstFrame int, vps *vproc.Manager, meter *hw.CostMeter) (*Manager, error) {
	if firstFrame < 0 || firstFrame >= mem.Frames() {
		return nil, fmt.Errorf("pageframe: first frame %d of %d leaves no pageable memory", firstFrame, mem.Frames())
	}
	m := &Manager{
		mem:     mem,
		meter:   meter,
		vps:     vps,
		first:   firstFrame,
		frames:  make([]frameInfo, mem.Frames()-firstFrame),
		unlocks: make(map[descKey]*eventcount.Eventcount),
		cached:  make(map[descKey]*cachedFrame),
		Lang:    hw.PLI,
	}
	m.mu.Init(ModuleName)
	for f := mem.Frames() - 1; f >= firstFrame; f-- {
		m.free = append(m.free, f)
	}
	return m, nil
}

// PageableFrames reports how many frames the manager multiplexes.
func (m *Manager) PageableFrames() int { return len(m.frames) }

// Mem exposes the primary memory the frames live in, for modules that
// must read or write resident pages directly.
func (m *Manager) Mem() *hw.Memory { return m.mem }

// FreeFrames reports how many frames are currently unassigned,
// counting those parked in per-processor caches.
func (m *Manager) FreeFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.free)
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		n += len(c.frames)
		c.mu.Unlock()
	}
	return n
}

// Stats is the manager's counter block: fault services, evictions,
// zero-page discoveries, and — when translation caches are fitted —
// the associative-memory hit/miss and shootdown counts, so the
// attribution of the translation fast path shows up next to the slow
// path it replaces.
type Stats struct {
	Faults        int64
	Evictions     int64
	ZeroEvictions int64
	AssocHits     int64
	AssocMisses   int64
	Shootdowns    int64
	// WriteBackErrors counts grouped write-back submissions that
	// failed even after retries. In daemon mode the evicting caller
	// is long gone when the page-writer hits the error, so this
	// counter (and the write-error trace event) is the only record
	// that evicted pages were lost.
	WriteBackErrors int64
	// ZeroRescues counts zero-reclaim verdicts revoked by the
	// post-shootdown re-validation: a store through a cached
	// translation landed between the zero scan and the broadcast, and
	// the page went back to the dirty write-back path. Schedule
	// sweeps assert this counter to prove the PR-4 window was
	// actually entered, not vacuously passed.
	ZeroRescues int64
	// The read-ahead pipeline's counters: speculative reads queued,
	// demand faults served from the speculative cache, entries
	// discarded unclaimed (speculative transfer faults and stale
	// pages), and frames the second-chance clock took back for demand
	// allocation.
	PrefetchIssued int64
	PrefetchHits   int64
	PrefetchDrops  int64
	PrefetchSteals int64
}

// Stats reports the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Faults: m.faults, Evictions: m.evictions,
		ZeroEvictions: m.zeroEvictions, WriteBackErrors: m.writeErrors,
		ZeroRescues:    m.zeroRescues,
		PrefetchIssued: m.prefetchIssued, PrefetchHits: m.prefetchHits,
		PrefetchDrops: m.prefetchDrops, PrefetchSteals: m.prefetchSteals,
	}
	m.mu.Unlock()
	if m.AssocStats != nil {
		st.AssocHits, st.AssocMisses, st.Shootdowns = m.AssocStats()
	}
	return st
}

// LoadPage services a missing-page fault: it obtains a frame (evicting
// if necessary), fills it from the page's record (or with zeros for a
// zero page), makes the descriptor present, unlocks it, and notifies
// waiters. The eviction reports must be applied by the caller to its
// file maps before it issues further requests. If the descriptor is
// already present the call degenerates to unlock-and-notify.
func (m *Manager) LoadPage(req PageReq) ([]Evicted, error) {
	if req.PT == nil {
		return nil, errors.New("pageframe: LoadPage with nil page table")
	}
	// The fault-service span closes after the daemon drain below, so
	// the write-backs a fault's evictions queued nest inside it.
	if ss := m.spanSink(); ss != nil {
		ss.BeginSpan(trace.SpanFaultService, ModuleName, int64(req.Page))
		defer ss.EndSpan(trace.SpanFaultService)
	}
	m.meter.AddBody(bodyFaultService, m.Lang)

	cur, err := req.PT.Get(req.Page)
	if err != nil {
		return nil, err
	}
	if cur.Present {
		m.finishService(req)
		return nil, nil
	}

	frame := -1
	var ev []Evicted
	if req.HasRecord {
		if f, ok := m.claimPrefetch(req); ok {
			frame = f
		}
	}
	if frame < 0 {
		var err error
		frame, ev, err = m.obtainFrame()
		if err != nil {
			return ev, err
		}
		if req.HasRecord {
			buf := make([]hw.Word, hw.PageWords)
			// The demand read rides the pack's device queue: the faulter
			// drives the elevator itself when the seat is free and blocks
			// on the completion eventcount when another faulter holds it.
			if err := disk.Retry(m.meter, func() error {
				return req.Pack.QueueRead(req.Record, buf)
			}); err != nil {
				m.releaseFrame(frame)
				return ev, fmt.Errorf("pageframe: fetching page %d of segment %d: %w", req.Page, req.UID, err)
			}
			if err := m.mem.WriteFrame(frame, buf); err != nil {
				m.releaseFrame(frame)
				return ev, err
			}
		} else {
			if err := m.mem.ZeroFrame(frame); err != nil {
				m.releaseFrame(frame)
				return ev, err
			}
		}
	}
	// With this fault's contents secured, speculate on the
	// predicted-next pages: their reads join the same elevator queue
	// and wait in the second-chance cache for the following faults of
	// the sequence.
	m.issueReadAhead(req)
	m.mu.Lock()
	m.frames[frame-m.first] = frameInfo{
		inUse: true, uid: req.UID, page: req.Page, pt: req.PT,
		pack: req.Pack, record: req.Record, hasRecord: req.HasRecord,
	}
	m.faults++
	if m.sink != nil {
		from := int64(0) // zero page
		if req.HasRecord {
			from = 1 // disk record
		}
		m.sink.Emit(trace.Event{
			Kind: trace.EvPageFetch, Module: ModuleName,
			Cost: hw.BodyCycles(bodyFaultService, m.Lang),
			Arg0: int64(req.UID), Arg1: int64(req.Page), Arg2: from,
		})
	}
	m.mu.Unlock()
	if m.Daemons {
		// Drain the write-backs queued by this service's evictions
		// BEFORE the descriptor goes present. The drain is disk-bound,
		// and the faulter's descriptor still carries the lock bit the
		// hardware set at fault time, so the fresh frame is not
		// evictable while it runs. Draining afterwards would open a
		// long window in which other processors' evictions could take
		// the page back before the faulter ever rereferences — under
		// heavy overcommit that starves the faulter into a fault loop.
		m.vps.RunPending()
	}
	// Publication is a yield point: the schedule may interleave other
	// processors between the filled frame and the descriptor going
	// present.
	schedsim.Yield(schedsim.PointPublish, "ptw-present")
	if _, err := req.PT.Update(req.Page, func(d *hw.PTW) {
		d.Present = true
		d.Frame = frame
		d.QuotaTrap = false
		d.Used = true
		d.Modified = false
	}); err != nil {
		return ev, err
	}
	m.finishService(req)
	return ev, nil
}

// AddPage adds a never-before-used page to a segment: it allocates a
// disk record on the segment's pack (reporting disk.ErrPackFull up the
// call chain when there is none), obtains a zeroed frame, and makes
// the descriptor present. The caller has already checked and charged
// quota. On success the new record address is returned for the
// caller's file map.
func (m *Manager) AddPage(req PageReq) (disk.RecordAddr, []Evicted, error) {
	if req.PT == nil {
		return 0, nil, errors.New("pageframe: AddPage with nil page table")
	}
	if ss := m.spanSink(); ss != nil {
		ss.BeginSpan(trace.SpanFaultService, ModuleName, int64(req.Page))
		defer ss.EndSpan(trace.SpanFaultService)
	}
	m.meter.AddBody(bodyFaultService, m.Lang)
	var rec disk.RecordAddr
	if err := disk.Retry(m.meter, func() error {
		var aerr error
		rec, aerr = req.Pack.AllocRecord()
		return aerr
	}); err != nil {
		return 0, nil, fmt.Errorf("pageframe: adding page %d of segment %d: %w", req.Page, req.UID, err)
	}
	frame, ev, err := m.obtainFrame()
	if err != nil {
		_ = req.Pack.FreeRecord(rec)
		return 0, ev, err
	}
	if err := m.mem.ZeroFrame(frame); err != nil {
		_ = req.Pack.FreeRecord(rec)
		m.releaseFrame(frame)
		return 0, ev, err
	}
	m.mu.Lock()
	m.frames[frame-m.first] = frameInfo{
		inUse: true, uid: req.UID, page: req.Page, pt: req.PT,
		pack: req.Pack, record: rec, hasRecord: true,
	}
	m.faults++
	if m.sink != nil {
		m.sink.Emit(trace.Event{
			Kind: trace.EvPageFetch, Module: ModuleName,
			Cost: hw.BodyCycles(bodyFaultService, m.Lang),
			Arg0: int64(req.UID), Arg1: int64(req.Page), Arg2: 2, // never-before-used
		})
	}
	m.mu.Unlock()
	if req.Page >= req.PT.Len() {
		req.PT.Grow(req.Page + 1)
	}
	schedsim.Yield(schedsim.PointPublish, "ptw-new-page")
	if _, err := req.PT.Update(req.Page, func(d *hw.PTW) {
		d.Present = true
		d.Frame = frame
		d.QuotaTrap = false
		d.Used = true
		d.Modified = true
		if req.KeepLocked {
			// Claimed for the caller: evictors skip locked
			// descriptors, touchers wait for the unlock.
			d.Lock = true
		}
	}); err != nil {
		return 0, ev, err
	}
	if !req.KeepLocked {
		m.finishService(req)
	}
	if m.Daemons {
		m.vps.RunPending()
	}
	return rec, ev, nil
}

// Unlock releases the descriptor a KeepLocked AddPage left claimed and
// notifies waiters. The caller invokes it exactly once per successful
// KeepLocked service, after its file map names the new page.
func (m *Manager) Unlock(req PageReq) {
	m.finishService(req)
}

// finishService unlocks the descriptor (harmless if it was never
// locked) and notifies waiters.
func (m *Manager) finishService(req PageReq) {
	_ = req.PT.Unlock(req.Page)
	m.mu.Lock()
	ec := m.unlocks[descKey{req.PT, req.Page}]
	m.mu.Unlock()
	if ec != nil {
		m.vps.Notify(ec, req.NotifySeg, req.NotifyPage)
	} else if m.vps != nil {
		// Still cover a processor between fault and wait.
		var dummy eventcount.Eventcount
		m.vps.Notify(&dummy, req.NotifySeg, req.NotifyPage)
	}
}

// WaitUnlock blocks the caller until the given descriptor's lock bit
// has been cleared by the servicing processor. proc may be nil; when
// it is not, the wakeup-waiting protocol protects the window between
// the locked-descriptor exception and this call.
func (m *Manager) WaitUnlock(proc *hw.Processor, pt *hw.PageTable, page int) error {
	m.mu.Lock()
	key := descKey{pt, page}
	ec := m.unlocks[key]
	if ec == nil {
		ec = new(eventcount.Eventcount)
		ec.Trace(m.sink, ModuleName)
		m.unlocks[key] = ec
	}
	target := ec.Read() + 1
	ss := m.spans
	m.mu.Unlock()

	d, err := pt.Get(page)
	if err != nil {
		return err
	}
	if !d.Lock {
		return nil // already serviced
	}
	m.meter.Add(hw.CycLockWait)
	m.emit(trace.Event{Kind: trace.EvLockSpin, Module: ModuleName, Cost: hw.CycLockWait, Arg0: int64(page)})
	if ss != nil {
		ss.BeginSpan(trace.SpanLockWait, ModuleName, int64(page))
	}
	m.vps.Wait(proc, ec, target)
	if ss != nil {
		ss.EndSpan(trace.SpanLockWait)
	}
	return nil
}

// batch reports the frame-batch size in effect.
func (m *Manager) batch() int {
	if m.FrameBatch > 0 {
		return m.FrameBatch
	}
	return DefaultFrameBatch
}

// cache returns the calling goroutine's frame cache: the one of the
// simulated processor it is bound to, or slot 0 when unbound.
func (m *Manager) cache() *frameCache {
	return &m.caches[int(trace.BoundCPU())%len(m.caches)]
}

// drainCachesLocked pulls every privately cached frame back into the
// global pool. The caller holds m.mu.
func (m *Manager) drainCachesLocked() {
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		m.free = append(m.free, c.frames...)
		c.frames = c.frames[:0]
		c.mu.Unlock()
	}
}

// obtainFrame returns a free frame, evicting victims if none is free.
// The common case costs only the local cache's mutex; a refill moves a
// batch of frames from the global pool, and an eviction pass gathers a
// batch of victims whose dirty pages are written back as one grouped
// disk submission, so the manager lock is never held across a disk
// write. Caller must not hold m.mu.
func (m *Manager) obtainFrame() (int, []Evicted, error) {
	c := m.cache()
	c.mu.Lock()
	if n := len(c.frames); n > 0 {
		f := c.frames[n-1]
		c.frames = c.frames[:n-1]
		c.mu.Unlock()
		return f, nil, nil
	}
	c.mu.Unlock()

	batch := m.batch()
	m.mu.Lock()
	if len(m.free) == 0 {
		// The pool is dry; reclaim frames parked at idle processors
		// before resorting to eviction.
		m.drainCachesLocked()
	}
	if len(m.free) > 0 {
		take := batch
		if take > len(m.free) {
			take = len(m.free)
		}
		grabbed := make([]int, take)
		copy(grabbed, m.free[len(m.free)-take:])
		m.free = m.free[:len(m.free)-take]
		m.mu.Unlock()
		if take > 1 {
			c.mu.Lock()
			c.frames = append(c.frames, grabbed[:take-1]...)
			c.mu.Unlock()
		}
		return grabbed[take-1], nil, nil
	}
	// Nothing on the free side: before running the eviction clock over
	// resident pages, consult the speculative cache's second-chance
	// bits — an unclaimed prefetch frame is cheaper to take back than a
	// resident page is to evict and write back.
	if cf := m.stealCachedLocked(); cf != nil {
		m.mu.Unlock()
		cf.ticket.Cancel()
		m.noteDrop(cf, dropSteal)
		return cf.frame, nil, nil
	}
	// Nothing free anywhere: gather up to a batch of victims in one
	// pass over the clock.
	var victims []victim
	for len(victims) < batch {
		vf, err := m.chooseVictimLocked()
		if err != nil {
			if len(victims) == 0 {
				m.mu.Unlock()
				return 0, nil, err
			}
			break
		}
		victims = append(victims, victim{frame: vf, info: m.frames[vf-m.first]})
		m.frames[vf-m.first] = frameInfo{}
		m.evictions++
	}
	m.mu.Unlock()

	evs, done, err := m.writeBackBatch(victims)
	if err != nil {
		m.recoverVictims(victims, done)
		return 0, evs, err
	}
	// The first victim's frame satisfies the caller; the rest refill
	// the local cache. They only become reusable here, after the
	// shootdown broadcast in writeBackBatch has retired every cached
	// translation of them.
	if len(victims) > 1 {
		c.mu.Lock()
		for _, v := range victims[1:] {
			c.frames = append(c.frames, v.frame)
		}
		c.mu.Unlock()
	}
	return victims[0].frame, evs, nil
}

// chooseVictimLocked runs the clock over the in-use frames: a frame
// whose descriptor has Used set gets a second chance (the bit is
// cleared); the first frame without it is the victim.
func (m *Manager) chooseVictimLocked() (int, error) {
	n := len(m.frames)
	for pass := 0; pass < 2*n; pass++ {
		i := m.clock
		m.clock = (m.clock + 1) % n
		fi := &m.frames[i]
		if !fi.inUse {
			continue
		}
		d, err := fi.pt.Get(fi.page)
		if err != nil {
			return 0, err
		}
		if d.Lock {
			continue // mid-service, not evictable
		}
		if d.Used {
			_, _ = fi.pt.Update(fi.page, func(w *hw.PTW) { w.Used = false })
			continue
		}
		return m.first + i, nil
	}
	// Second-chance exhausted: take any unlocked in-use frame.
	for i := range m.frames {
		if m.frames[i].inUse {
			d, err := m.frames[i].pt.Get(m.frames[i].page)
			if err != nil {
				return 0, err
			}
			if !d.Lock {
				return m.first + i, nil
			}
		}
	}
	return 0, ErrNoFrames
}

// A victim is one frame removed from the in-use table whose page is
// still to be disconnected and persisted.
type victim struct {
	frame int
	info  frameInfo
}

// A pendingWrite is one dirty victim's contents awaiting its grouped
// disk submission.
type pendingWrite struct {
	pack *disk.Pack
	rec  disk.RecordAddr
	buf  []hw.Word
}

// writeBackBatch disconnects each victim's descriptor and persists the
// group: zeros free their records (the zero-page optimization), and
// every dirty page is gathered into one grouped disk submission per
// pack — queued to the page-writer daemon when the multi-process
// organization is on — instead of one positioning operation per page.
// Eviction reports are returned for every victim processed, even when
// a later one fails, along with how many victims were disconnected
// (descriptor made not-present and shot down) before the failure, so
// the caller can put exactly those frames back in circulation and
// reinstate the rest. Caller must not hold m.mu.
func (m *Manager) writeBackBatch(victims []victim) ([]Evicted, int, error) {
	var evs []Evicted
	var dirty []pendingWrite
	disconnected := 0
	for _, v := range victims {
		info := v.info
		// Scan for zeros before disconnecting: a zero page's trap
		// bit must appear atomically with not-present, so a racing
		// toucher sees either the resident page or the charged
		// quota path, never a gap.
		zero, err := m.mem.FrameIsZero(v.frame)
		if err != nil {
			return evs, disconnected, err
		}
		if _, err := info.pt.Update(info.page, func(d *hw.PTW) {
			d.Present = false
			d.Frame = 0
			d.QuotaTrap = zero
		}); err != nil {
			return evs, disconnected, err
		}
		// Broadcast before the frame's contents are read or the
		// frame reused: when InvalidatePTW returns, every reference
		// that translated through a cached PTW has completed and no
		// processor can reach the frame again. The marked yield is
		// the PR-4 critical window: a reference through a cached PTW
		// may still complete against the old frame until the
		// broadcast returns, which is why the zero verdict below must
		// be re-validated.
		if zero {
			schedsim.Yield(schedsim.PointMark, "zero-reclaim")
		}
		m.Bus.InvalidatePTW(ModuleName, info.pt, info.page)
		disconnected++
		if zero {
			// Re-validate the zero verdict now that the broadcast has
			// retired every cached translation: a reference on another
			// processor is allowed to complete against the old frame
			// until InvalidatePTW returns, so a store may have landed
			// after the scan. Such a page is not zero after all — it
			// keeps its record and takes the write-back path, and the
			// trap bit set above must come off again.
			still, err := m.mem.FrameIsZero(v.frame)
			if err != nil {
				return evs, disconnected, err
			}
			if !still {
				zero = false
				m.mu.Lock()
				m.zeroRescues++
				m.mu.Unlock()
				if _, err := info.pt.Update(info.page, func(d *hw.PTW) {
					d.QuotaTrap = false
				}); err != nil {
					return evs, disconnected, err
				}
			}
		}
		ev := Evicted{UID: info.uid, Page: info.page, Zero: zero}
		if info.pack != nil {
			ev.Pack = info.pack.ID()
			ev.Record = info.record
		}
		var wasZero int64
		if zero {
			wasZero = 1
		}
		m.emit(trace.Event{Kind: trace.EvPageEvict, Module: ModuleName, Arg0: int64(info.uid), Arg1: int64(info.page), Arg2: wasZero})
		if zero {
			m.mu.Lock()
			m.zeroEvictions++
			m.mu.Unlock()
			if info.hasRecord {
				if err := info.pack.FreeRecord(info.record); err != nil {
					return evs, disconnected, err
				}
				ev.FreedRecord = true
			}
			evs = append(evs, ev)
			continue
		}
		if !info.hasRecord {
			return evs, disconnected, fmt.Errorf("pageframe: dirty page %d of segment %d has no record", info.page, info.uid)
		}
		buf := make([]hw.Word, hw.PageWords)
		if err := m.mem.ReadFrame(v.frame, buf); err != nil {
			return evs, disconnected, err
		}
		dirty = append(dirty, pendingWrite{pack: info.pack, rec: info.record, buf: buf})
		evs = append(evs, ev)
	}
	if len(dirty) == 0 {
		return evs, disconnected, nil
	}
	if m.Daemons && m.vps != nil {
		if err := m.vps.Enqueue(PageWriterModule, func() {
			if err := m.flushWrites(dirty); err != nil {
				m.noteWriteError(len(dirty), dirty[0].rec)
			}
		}); err != nil {
			return evs, disconnected, err
		}
		return evs, disconnected, nil
	}
	if err := m.flushWrites(dirty); err != nil {
		m.noteWriteError(len(dirty), dirty[0].rec)
		return evs, disconnected, fmt.Errorf("pageframe: writing back %d evicted pages: %w", len(dirty), err)
	}
	return evs, disconnected, nil
}

// noteWriteError records a grouped write-back submission that failed
// after retries: the counter feeds Stats, and the trace event is the
// durable record — in daemon mode the evicting caller has long
// returned and the frames are already reused, so nothing can be
// unwound and the loss must not be silent.
func (m *Manager) noteWriteError(pages int, first disk.RecordAddr) {
	m.mu.Lock()
	m.writeErrors++
	m.mu.Unlock()
	m.emit(trace.Event{
		Kind: trace.EvWriteError, Module: ModuleName,
		Arg0: int64(pages), Arg1: int64(first),
	})
}

// flushWrites submits the gathered dirty pages, one queued batch per
// pack in first-seen order. Each pack's records are sorted into
// ascending elevator order first, so the device pays the short-seek
// tier between neighbors instead of the full average seek the
// eviction clock's arbitrary order would cost.
func (m *Manager) flushWrites(dirty []pendingWrite) error {
	var packs []*disk.Pack
	byPack := make(map[*disk.Pack]int)
	for _, w := range dirty {
		if _, ok := byPack[w.pack]; !ok {
			byPack[w.pack] = len(packs)
			packs = append(packs, w.pack)
		}
	}
	for _, pack := range packs {
		var group []pendingWrite
		for _, w := range dirty {
			if w.pack == pack {
				group = append(group, w)
			}
		}
		sort.Slice(group, func(i, j int) bool { return group[i].rec < group[j].rec })
		recs := make([]disk.RecordAddr, len(group))
		bufs := make([][]hw.Word, len(group))
		for i, w := range group {
			recs[i] = w.rec
			bufs[i] = w.buf
		}
		if err := disk.Retry(m.meter, func() error {
			return pack.QueueWriteBatch(recs, bufs)
		}); err != nil {
			return err
		}
	}
	return nil
}

// releaseFrame returns a frame obtained by obtainFrame that could not
// be used.
func (m *Manager) releaseFrame(frame int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frames[frame-m.first] = frameInfo{}
	m.free = append(m.free, frame)
}

// recoverVictims returns a failed write-back pass's frames to the
// manager's books so none leaks: the first `disconnected` victims'
// descriptors were made not-present and shot down, so nothing can
// reach those frames again and they go back on the free list; the
// rest were never touched — their pages are still resident and
// mapped — so their table entries are reinstated and the evictions
// uncounted.
func (m *Manager) recoverVictims(victims []victim, disconnected int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range victims {
		if i < disconnected {
			m.free = append(m.free, v.frame)
		} else {
			m.frames[v.frame-m.first] = v.info
			m.evictions--
		}
	}
}

// ReleaseSegment evicts every resident page belonging to pt, writing
// contents back (or freeing records for zero pages), and returns the
// reports. The segment manager calls it on deactivation.
func (m *Manager) ReleaseSegment(pt *hw.PageTable) ([]Evicted, error) {
	// Withdraw outstanding speculations first: a deactivated segment's
	// records may be freed and reused, and a parked prefetch must not
	// outlive the file map that named it.
	m.purgeCached(pt, 0, true)
	var out []Evicted
	for {
		m.mu.Lock()
		idx := -1
		for i := range m.frames {
			if m.frames[i].inUse && m.frames[i].pt == pt {
				idx = i
				break
			}
		}
		if idx < 0 {
			m.mu.Unlock()
			return out, nil
		}
		info := m.frames[idx]
		m.frames[idx] = frameInfo{}
		m.evictions++
		m.mu.Unlock()

		evs, done, err := m.writeBackBatch([]victim{{frame: m.first + idx, info: info}})
		out = append(out, evs...)
		if err != nil {
			m.recoverVictims([]victim{{frame: m.first + idx, info: info}}, done)
			return out, err
		}
		m.mu.Lock()
		m.free = append(m.free, m.first+idx)
		m.mu.Unlock()
		if m.Daemons && m.vps != nil {
			m.vps.RunPending()
		}
	}
}

// SampleWorkingSets implements the usage estimation of Gifford's
// project study ("Hardware Estimation of a Process' Primary Memory
// Requirements"): the hardware sets a used bit on every reference,
// and a periodic sample reads and clears the bits, yielding each
// segment's count of recently referenced resident pages — its
// working-set contribution. Returns the per-segment counts and the
// total.
func (m *Manager) SampleWorkingSets() (map[uint64]int, int) {
	m.mu.Lock()
	type ref struct {
		pt   *hw.PageTable
		page int
		uid  uint64
	}
	var refs []ref
	for _, fi := range m.frames {
		if fi.inUse {
			refs = append(refs, ref{pt: fi.pt, page: fi.page, uid: fi.uid})
		}
	}
	m.mu.Unlock()
	sets := make(map[uint64]int)
	total := 0
	for _, r := range refs {
		var used bool
		if _, err := r.pt.Update(r.page, func(d *hw.PTW) {
			used = d.Used
			d.Used = false
		}); err != nil {
			continue
		}
		if used {
			sets[r.uid]++
			total++
		}
	}
	return sets, total
}

// Audit checks the manager's own invariants and returns a description
// of every violation: the free list and the in-use frame table must
// partition the pageable frames exactly, and every in-use frame's page
// descriptor must point back at that frame. It is one module's share
// of the paper's audit prong.
func (m *Manager) Audit() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []string
	seen := make(map[int]string, len(m.frames))
	// The global pool and the per-processor caches together form the
	// free side of the partition.
	freeLists := [][]int{m.free}
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		if len(c.frames) > 0 {
			freeLists = append(freeLists, append([]int(nil), c.frames...))
		}
		c.mu.Unlock()
	}
	for _, list := range freeLists {
		for _, f := range list {
			if f < m.first || f >= m.first+len(m.frames) {
				bad = append(bad, fmt.Sprintf("free frame %d outside pageable range", f))
				continue
			}
			if prev, dup := seen[f]; dup {
				bad = append(bad, fmt.Sprintf("frame %d on free list twice (%s)", f, prev))
			}
			seen[f] = "free"
			if m.frames[f-m.first].inUse {
				bad = append(bad, fmt.Sprintf("frame %d both free and in use", f))
			}
		}
	}
	// The speculative read-ahead cache is the partition's third class:
	// every prefetched-but-unclaimed frame must appear in the ring
	// exactly once, agree with the map index, and never double as free
	// or in-use; an entry still carrying its reference bit must be
	// connected to a queued read.
	if len(m.cached) != len(m.cacheRing) {
		bad = append(bad, fmt.Sprintf("prefetch cache map holds %d entries but the ring holds %d", len(m.cached), len(m.cacheRing)))
	}
	for _, cf := range m.cacheRing {
		frame := cf.frame
		if frame < m.first || frame >= m.first+len(m.frames) {
			bad = append(bad, fmt.Sprintf("cached frame %d outside pageable range", frame))
			continue
		}
		if prev, dup := seen[frame]; dup {
			bad = append(bad, fmt.Sprintf("frame %d both cached and %s", frame, prev))
			continue
		}
		seen[frame] = "cached"
		if m.frames[frame-m.first].inUse {
			bad = append(bad, fmt.Sprintf("frame %d both cached and in use", frame))
		}
		if got := m.cached[descKey{cf.pt, cf.page}]; got != cf {
			bad = append(bad, fmt.Sprintf("cached frame %d (page %d of segment %d) not indexed by the cache map", frame, cf.page, cf.uid))
		}
		if cf.ref && cf.ticket == nil {
			bad = append(bad, fmt.Sprintf("cached frame %d carries the reference bit but no queued read", frame))
		}
	}
	for i, fi := range m.frames {
		frame := m.first + i
		if !fi.inUse {
			if _, ok := seen[frame]; !ok {
				bad = append(bad, fmt.Sprintf("frame %d neither free nor in use", frame))
			}
			continue
		}
		if _, ok := seen[frame]; ok {
			continue // already reported as both
		}
		seen[frame] = "in-use"
		d, err := fi.pt.Get(fi.page)
		if err != nil {
			bad = append(bad, fmt.Sprintf("frame %d: descriptor unreadable: %v", frame, err))
			continue
		}
		if !d.Present || d.Frame != frame {
			bad = append(bad, fmt.Sprintf("frame %d holds page %d of segment %d but its descriptor says present=%v frame=%d", frame, fi.page, fi.uid, d.Present, d.Frame))
		}
	}
	return bad
}

// DropPage discards a resident page without write-back (used when the
// whole segment is being deleted). The frame returns to the free pool
// only after the descriptor is cleared and the shootdown broadcast has
// retired every cached translation of it.
func (m *Manager) DropPage(pt *hw.PageTable, page int) {
	// A truncated page's speculation is withdrawn whether or not the
	// page is resident: its record goes back to the pack's free pool
	// and may be reallocated immediately.
	m.purgeCached(pt, page, false)
	m.mu.Lock()
	found := -1
	for i := range m.frames {
		if m.frames[i].inUse && m.frames[i].pt == pt && m.frames[i].page == page {
			m.frames[i] = frameInfo{}
			found = i
			break
		}
	}
	m.mu.Unlock()
	if found < 0 {
		return
	}
	_, _ = pt.Update(page, func(d *hw.PTW) { *d = hw.PTW{} })
	m.Bus.InvalidatePTW(ModuleName, pt, page)
	m.mu.Lock()
	m.free = append(m.free, m.first+found)
	m.mu.Unlock()
}
