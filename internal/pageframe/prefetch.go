// The speculative read-ahead cache: a Clock/Second-Chance layer
// between the free list and the eviction clock.
//
// When the segment manager detects a sequential fault pattern it
// names the predicted-next stored pages in PageReq.ReadAhead; the
// manager reserves a frame for each, queues a speculative read on the
// pack's elevator queue, and parks the pair as a cache entry. A later
// demand fault on the page *claims* the entry — it waits out the
// queued read's ticket and publishes the reserved frame without a
// demand disk read. Until claimed, the entry's frame belongs to
// neither the free list nor the in-use table: it is the cache's own
// partition class, and when demand allocation runs dry the
// second-chance hand sweeps the entries — a set reference bit buys
// one more sweep, a clear one surrenders the frame back to demand use
// — before the eviction clock ever touches a resident page.
package pageframe

import (
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/trace"
)

// ReadAheadPage names one stored page a sequential fault pattern
// predicts will fault next.
type ReadAheadPage struct {
	Page   int
	Record disk.RecordAddr
}

// Drop classes recorded in EvPrefetchDrop's Arg2.
const (
	dropFault int64 = iota // the speculative transfer itself faulted
	dropStale              // the page moved or vanished before claim
	dropSteal              // the second-chance clock took the frame back
)

// A cachedFrame is one prefetched-but-unclaimed page: a reserved
// frame, the buffer its queued read fills, and the ticket that claims
// or cancels that read. ref is the second-chance bit, set at issue;
// entries are immutable after insertion except for ref, which the
// steal hand clears under m.mu.
type cachedFrame struct {
	frame  int
	uid    uint64
	page   int
	pt     *hw.PageTable
	pack   *disk.Pack
	record disk.RecordAddr
	buf    []hw.Word
	ticket *disk.Ticket
	ref    bool
}

// takeCached removes and returns the cache entry for the request's
// page, or nil. An entry whose identity no longer matches the file
// map — the page was truncated and regrown, or the segment relocated,
// since the speculation was issued — is dropped as stale rather than
// returned: claiming it would publish another record's data.
func (m *Manager) takeCached(req PageReq) *cachedFrame {
	m.mu.Lock()
	cf := m.cached[descKey{req.PT, req.Page}]
	if cf == nil {
		m.mu.Unlock()
		return nil
	}
	m.removeCachedLocked(cf)
	m.mu.Unlock()
	if cf.pack != req.Pack || cf.record != req.Record {
		cf.ticket.Cancel()
		m.noteDrop(cf, dropStale)
		m.releaseFrame(cf.frame)
		return nil
	}
	return cf
}

// claimPrefetch tries to satisfy a demand fault from the speculative
// cache. On a hit it waits out the queued read and fills the reserved
// frame, returning it; a speculative transfer fault is dropped
// silently — the demand path below re-reads under its own retry
// budget, so speculation can never fail a fault it meant to serve.
func (m *Manager) claimPrefetch(req PageReq) (int, bool) {
	cf := m.takeCached(req)
	if cf == nil {
		return -1, false
	}
	if err := cf.ticket.Wait(); err != nil {
		m.noteDrop(cf, dropFault)
		m.releaseFrame(cf.frame)
		return -1, false
	}
	if err := m.mem.WriteFrame(cf.frame, cf.buf); err != nil {
		m.noteDrop(cf, dropFault)
		m.releaseFrame(cf.frame)
		return -1, false
	}
	m.mu.Lock()
	m.prefetchHits++
	sink := m.sink
	m.mu.Unlock()
	if sink != nil {
		sink.Emit(trace.Event{
			Kind: trace.EvPrefetchHit, Module: ModuleName,
			Arg0: int64(cf.record), Arg1: int64(cf.page),
		})
	}
	return cf.frame, true
}

// issueReadAhead reserves frames for the request's predicted-next
// pages and queues their speculative reads. Speculation spends only
// genuinely free frames: it never evicts a resident page and never
// steals a sibling cache entry, so under memory pressure read-ahead
// simply switches itself off instead of feeding the thrash it would
// worsen. It never fails the demand fault it rides on — when no frame
// is free (or a read cannot be queued) it stops speculating.
func (m *Manager) issueReadAhead(req PageReq) {
	for _, ra := range req.ReadAhead {
		d, err := req.PT.Get(ra.Page)
		if err != nil {
			break
		}
		if d.Present || d.Lock {
			continue
		}
		key := descKey{req.PT, ra.Page}
		m.mu.Lock()
		_, dup := m.cached[key]
		m.mu.Unlock()
		if dup {
			continue
		}
		frame, ok := m.obtainFreeFrame()
		if !ok {
			break
		}
		buf := make([]hw.Word, hw.PageWords)
		tk, err := req.Pack.QueueReadAhead(ra.Record, buf)
		if err != nil {
			m.releaseFrame(frame)
			break
		}
		cf := &cachedFrame{
			frame: frame, uid: req.UID, page: ra.Page, pt: req.PT,
			pack: req.Pack, record: ra.Record, buf: buf, ticket: tk, ref: true,
		}
		m.mu.Lock()
		if _, dup := m.cached[key]; dup {
			// A concurrent faulter speculated on the same page between
			// the check above and here; keep its entry.
			m.mu.Unlock()
			tk.Cancel()
			m.releaseFrame(frame)
			continue
		}
		m.cached[key] = cf
		m.cacheRing = append(m.cacheRing, cf)
		m.prefetchIssued++
		sink := m.sink
		m.mu.Unlock()
		if sink != nil {
			sink.Emit(trace.Event{
				Kind: trace.EvPrefetchIssue, Module: ModuleName,
				Arg0: int64(ra.Record), Arg1: int64(ra.Page),
			})
		}
	}
}

// obtainFreeFrame takes one frame from the free side only — the
// caller's cache, then the global pool (reclaiming idle processors'
// parked frames) — and reports failure instead of evicting or
// stealing when everything is spoken for. The speculative path uses
// it so read-ahead never displaces resident pages.
func (m *Manager) obtainFreeFrame() (int, bool) {
	c := m.cache()
	c.mu.Lock()
	if n := len(c.frames); n > 0 {
		f := c.frames[n-1]
		c.frames = c.frames[:n-1]
		c.mu.Unlock()
		return f, true
	}
	c.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		m.drainCachesLocked()
	}
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		return f, true
	}
	return 0, false
}

// stealCachedLocked runs the second-chance hand over the cache ring:
// an entry with the reference bit set spends it and survives the
// sweep; the first entry without it is removed and its frame
// surrendered to demand use. Caller holds m.mu and must Cancel the
// returned entry's ticket (outside the lock) before reusing the
// frame.
func (m *Manager) stealCachedLocked() *cachedFrame {
	n := len(m.cacheRing)
	for pass := 0; pass < 2*n; pass++ {
		cf := m.cacheRing[m.cacheHand]
		if cf.ref {
			cf.ref = false
			m.cacheHand = (m.cacheHand + 1) % len(m.cacheRing)
			continue
		}
		m.removeCachedLocked(cf)
		return cf
	}
	return nil
}

// removeCachedLocked unlinks an entry from the map and ring, keeping
// the hand stable. Caller holds m.mu.
func (m *Manager) removeCachedLocked(cf *cachedFrame) {
	delete(m.cached, descKey{cf.pt, cf.page})
	for i, e := range m.cacheRing {
		if e == cf {
			m.cacheRing = append(m.cacheRing[:i], m.cacheRing[i+1:]...)
			if m.cacheHand > i {
				m.cacheHand--
			}
			break
		}
	}
	if m.cacheHand >= len(m.cacheRing) {
		m.cacheHand = 0
	}
}

// purgeCached drops every cache entry for pt (one page, or all of
// them) — truncation, deletion and deactivation must not leave
// speculations pointing at records that may be freed and reused. The
// ring gives the victims a deterministic order.
func (m *Manager) purgeCached(pt *hw.PageTable, page int, all bool) {
	m.mu.Lock()
	var victims []*cachedFrame
	for _, cf := range m.cacheRing {
		if cf.pt == pt && (all || cf.page == page) {
			victims = append(victims, cf)
		}
	}
	for _, cf := range victims {
		m.removeCachedLocked(cf)
	}
	m.mu.Unlock()
	for _, cf := range victims {
		cf.ticket.Cancel()
		m.noteDrop(cf, dropStale)
		m.releaseFrame(cf.frame)
	}
}

// noteDrop counts and traces one speculative entry discarded
// unclaimed.
func (m *Manager) noteDrop(cf *cachedFrame, class int64) {
	m.mu.Lock()
	if class == dropSteal {
		m.prefetchSteals++
	} else {
		m.prefetchDrops++
	}
	sink := m.sink
	m.mu.Unlock()
	if sink != nil {
		sink.Emit(trace.Event{
			Kind: trace.EvPrefetchDrop, Module: ModuleName,
			Arg0: int64(cf.record), Arg1: int64(cf.page), Arg2: class,
		})
	}
}
