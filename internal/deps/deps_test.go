package deps

import (
	"strings"
	"testing"
	"testing/quick"
)

func chain(t *testing.T, names ...string) *Graph {
	t.Helper()
	g := New()
	for _, n := range names {
		g.AddModule(n, "test module "+n)
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.Depend(names[i], names[i+1], Component, ""); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestKindNames(t *testing.T) {
	for k := Component; k <= SharedData; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind name = %q", Kind(99).String())
	}
	for k := Component; k <= Interpreter; k++ {
		if !k.Disciplined() {
			t.Errorf("%v should be disciplined", k)
		}
	}
	for _, k := range []Kind{Call, SharedData} {
		if k.Disciplined() {
			t.Errorf("%v should be undisciplined", k)
		}
	}
}

func TestDependValidation(t *testing.T) {
	g := New()
	g.AddModule("a", "")
	if err := g.Depend("a", "b", Component, ""); err == nil {
		t.Error("dependency on unregistered module accepted")
	}
	if err := g.Depend("b", "a", Component, ""); err == nil {
		t.Error("dependency from unregistered module accepted")
	}
	if err := g.Depend("a", "a", Component, ""); err == nil {
		t.Error("self-dependency accepted")
	}
	g.AddModule("b", "")
	if err := g.Depend("a", "b", Map, "maps stored in b"); err != nil {
		t.Fatal(err)
	}
	es := g.EdgesFrom("a")
	if len(es) != 1 || es[0].To != "b" || es[0].Kind != Map {
		t.Errorf("EdgesFrom(a) = %+v", es)
	}
}

func TestMustDependPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDepend on unknown module did not panic")
		}
	}()
	New().MustDepend("x", "y", Component, "")
}

func TestLoopFreeChain(t *testing.T) {
	g := chain(t, "dir", "seg", "page")
	if !g.LoopFree() {
		t.Errorf("chain reported loops: %v", g.Cycles())
	}
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"page"}, {"seg"}, {"dir"}}
	if len(layers) != len(want) {
		t.Fatalf("layers = %v", layers)
	}
	for i := range want {
		if len(layers[i]) != 1 || layers[i][0] != want[i][0] {
			t.Errorf("layer %d = %v, want %v", i, layers[i], want[i])
		}
	}
	if err := g.Verify(); err != nil {
		t.Errorf("Verify of clean chain: %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	// The paper's classic loop: page control depends on process
	// control (to give the processor away on a missing page), and
	// process control depends on segment control (to store process
	// states), which depends on page control.
	g := New()
	for _, m := range []string{"page", "process", "segment"} {
		g.AddModule(m, "")
	}
	g.MustDepend("page", "process", Call, "missing page gives up processor")
	g.MustDepend("process", "segment", Component, "process states stored in segments")
	g.MustDepend("segment", "page", Component, "segments made of pages")
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v, want one", cycles)
	}
	if len(cycles[0]) != 3 {
		t.Errorf("cycle = %v, want all three modules", cycles[0])
	}
	if g.LoopFree() {
		t.Error("LoopFree on cyclic graph")
	}
	if _, err := g.Layers(); err == nil {
		t.Error("Layers on cyclic graph succeeded")
	}
	if err := g.Verify(); err == nil {
		t.Error("Verify on cyclic graph succeeded")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Errorf("Verify error %q does not mention the loop", err)
	}
}

func TestTwoIndependentCycles(t *testing.T) {
	g := New()
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		g.AddModule(m, "")
	}
	g.MustDepend("a", "b", Call, "")
	g.MustDepend("b", "a", Call, "")
	g.MustDepend("c", "d", SharedData, "")
	g.MustDepend("d", "c", SharedData, "")
	g.MustDepend("a", "e", Component, "")
	cycles := g.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v, want two", cycles)
	}
}

func TestUndisciplinedEdges(t *testing.T) {
	g := New()
	g.AddModule("a", "")
	g.AddModule("b", "")
	g.MustDepend("a", "b", SharedData, "a reads b's table directly")
	u := g.Undisciplined()
	if len(u) != 1 || u[0].Kind != SharedData {
		t.Errorf("Undisciplined = %+v", u)
	}
	// Loop-free but undisciplined still fails Verify: the goal is
	// elimination of such dependencies.
	if g.LoopFree() != true {
		t.Error("graph with one edge is not loop-free?")
	}
	if err := g.Verify(); err == nil {
		t.Error("Verify accepted an undisciplined edge")
	}
}

func TestLayersDiamond(t *testing.T) {
	g := New()
	for _, m := range []string{"top", "l", "r", "bottom"} {
		g.AddModule(m, "")
	}
	g.MustDepend("top", "l", Component, "")
	g.MustDepend("top", "r", Component, "")
	g.MustDepend("l", "bottom", Component, "")
	g.MustDepend("r", "bottom", Component, "")
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 3 {
		t.Fatalf("layers = %v", layers)
	}
	if layers[0][0] != "bottom" || len(layers[1]) != 2 || layers[2][0] != "top" {
		t.Errorf("layers = %v", layers)
	}
}

func TestModuleBookkeeping(t *testing.T) {
	g := New()
	g.AddModule("m", "first")
	g.AddModule("m", "second") // update, not duplicate
	if got := g.Modules(); len(got) != 1 {
		t.Errorf("Modules = %v", got)
	}
	if g.Description("m") != "second" {
		t.Errorf("Description = %q", g.Description("m"))
	}
	if !g.HasModule("m") || g.HasModule("x") {
		t.Error("HasModule wrong")
	}
}

func TestTextAndDOT(t *testing.T) {
	g := chain(t, "dir", "seg")
	g.MustDepend("seg", "dir", SharedData, "bad back edge")
	text := g.Text()
	for _, want := range []string{"dir", "seg", "component", "shared-data"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	dot := g.DOT("fig")
	for _, want := range []string{"digraph", `"dir" -> "seg"`, "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT() missing %q:\n%s", want, dot)
		}
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := chain(t, "a", "b")
	es := g.Edges()
	es[0].To = "corrupted"
	if g.Edges()[0].To != "b" {
		t.Error("Edges returned aliased slice")
	}
	ms := g.Modules()
	ms[0] = "corrupted"
	if g.Modules()[0] != "a" {
		t.Error("Modules returned aliased slice")
	}
}

// Property: a randomly generated DAG (edges only from higher to lower
// index) is always loop-free and layerable, and every module appears
// in exactly one layer.
func TestRandomDAGLoopFree(t *testing.T) {
	f := func(adj [8][8]bool) bool {
		g := New()
		names := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"}
		for _, n := range names {
			g.AddModule(n, "")
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < i; j++ {
				if adj[i][j] {
					g.MustDepend(names[i], names[j], Component, "")
				}
			}
		}
		if !g.LoopFree() {
			return false
		}
		layers, err := g.Layers()
		if err != nil {
			return false
		}
		count := 0
		for _, l := range layers {
			count += len(l)
		}
		return count == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding a back edge to a chain always creates exactly the
// loop spanning the two endpoints' range.
func TestBackEdgeMakesLoop(t *testing.T) {
	f := func(n, from, to uint8) bool {
		size := int(n%6) + 3 // 3..8 modules
		lo := int(to) % size
		hi := int(from) % size
		if lo >= hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true // nothing to do
		}
		g := New()
		names := make([]string, size)
		for i := range names {
			names[i] = string(rune('a' + i))
			g.AddModule(names[i], "")
		}
		for i := 0; i+1 < size; i++ {
			g.MustDepend(names[i], names[i+1], Component, "")
		}
		// chain runs a->b->c...; back edge from the deeper module
		// (higher index) to the shallower one creates a loop.
		g.MustDepend(names[hi], names[lo], Call, "back edge")
		cycles := g.Cycles()
		return len(cycles) == 1 && len(cycles[0]) == hi-lo+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
