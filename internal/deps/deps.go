// Package deps implements the dependency-structure discipline at the
// center of the kernel design project: modules are object managers,
// each dependency of one module on another is classified into one of
// the five kinds the paper enumerates (component, map, program,
// address-space, interpreter), and the whole structure must be
// loop-free — a lattice — so that system correctness can be
// established iteratively, one module at a time.
//
// Two further kinds, Call and SharedData, classify the dependencies
// one encounters in an existing design "modularized and structured by
// different principles (or no principles at all)": explicit procedure
// calls or messages expecting replies, and direct sharing of writable
// data. The paper notes their proper classification is of no concern
// because the goal is their elimination; the analyzer carries them so
// the 1974 baseline structure (Figure 3) can be expressed and its
// loops found.
package deps

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies one dependency of a module on another.
type Kind int

const (
	// Component: M depends on the managers of the objects that are
	// the components of the objects M defines.
	Component Kind = iota
	// Map: M depends on the managers providing the objects in which
	// M's name-to-component maps are stored.
	Map
	// Program: M's algorithms and temporary storage are contained
	// in objects whose managers M depends on.
	Program
	// AddressSpace: the address space in which M executes is an
	// object whose manager M depends on.
	AddressSpace
	// Interpreter: M requires a virtual processor to execute, and
	// depends on the module implementing it.
	Interpreter
	// Call: an explicit procedure call or a message from which a
	// reply is expected (found only in pre-discipline designs).
	Call
	// SharedData: direct sharing of writable data between modules
	// (found only in pre-discipline designs).
	SharedData
)

var kindNames = map[Kind]string{
	Component:    "component",
	Map:          "map",
	Program:      "program",
	AddressSpace: "address-space",
	Interpreter:  "interpreter",
	Call:         "call",
	SharedData:   "shared-data",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Disciplined reports whether k is one of the five kinds a
// type-extension design admits.
func (k Kind) Disciplined() bool { return k <= Interpreter }

// An Edge is one classified dependency: From depends on To.
type Edge struct {
	From, To string
	Kind     Kind
	// Note records why the dependency exists (e.g. "directory
	// representations are stored in segments").
	Note string
}

// A Graph is a set of modules and classified dependencies among them.
// Module and edge insertion order is preserved, so renderings are
// deterministic.
type Graph struct {
	names   []string
	modules map[string]string // name -> description
	edges   []Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{modules: make(map[string]string)}
}

// AddModule registers a module with a one-line description. Adding an
// existing name updates its description.
func (g *Graph) AddModule(name, desc string) {
	if _, ok := g.modules[name]; !ok {
		g.names = append(g.names, name)
	}
	g.modules[name] = desc
}

// HasModule reports whether name is registered.
func (g *Graph) HasModule(name string) bool {
	_, ok := g.modules[name]
	return ok
}

// Modules returns the module names in registration order.
func (g *Graph) Modules() []string {
	return append([]string(nil), g.names...)
}

// Description returns the registered description of a module.
func (g *Graph) Description(name string) string { return g.modules[name] }

// Depend records that from depends on to, with the given kind and
// explanatory note. Both modules must be registered and distinct:
// a module participating in the implementation of its own execution
// environment is exactly the loop the discipline exists to forbid, so
// self-dependencies are rejected outright.
func (g *Graph) Depend(from, to string, kind Kind, note string) error {
	if !g.HasModule(from) {
		return fmt.Errorf("deps: unknown module %q", from)
	}
	if !g.HasModule(to) {
		return fmt.Errorf("deps: unknown module %q", to)
	}
	if from == to {
		return fmt.Errorf("deps: module %q cannot depend on itself", from)
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Kind: kind, Note: note})
	return nil
}

// MustDepend is Depend panicking on error; kernel construction uses it
// for edges that are wrong only if the program itself is wrong.
func (g *Graph) MustDepend(from, to string, kind Kind, note string) {
	if err := g.Depend(from, to, kind, note); err != nil {
		panic(err)
	}
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// EdgesFrom returns the edges leaving module name.
func (g *Graph) EdgesFrom(name string) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Undisciplined returns the edges whose kind does not fit the
// five-way classification of a type-extension design.
func (g *Graph) Undisciplined() []Edge {
	var out []Edge
	for _, e := range g.edges {
		if !e.Kind.Disciplined() {
			out = append(out, e)
		}
	}
	return out
}

// adjacency returns the deduplicated successor lists in deterministic
// order.
func (g *Graph) adjacency() map[string][]string {
	adj := make(map[string][]string, len(g.names))
	seen := make(map[[2]string]bool)
	for _, e := range g.edges {
		k := [2]string{e.From, e.To}
		if seen[k] {
			continue
		}
		seen[k] = true
		adj[e.From] = append(adj[e.From], e.To)
	}
	return adj
}

// Cycles returns every strongly connected component containing more
// than one module, in deterministic order: the dependency loops that
// make iterative certification impossible. A loop-free graph returns
// nil.
func (g *Graph) Cycles() [][]string {
	adj := g.adjacency()
	// Tarjan's strongly-connected-components algorithm, iterative
	// ordering fixed by module registration order.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var counter int
	var sccs [][]string

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range g.names {
		if _, seen := index[v]; !seen {
			strongConnect(v)
		}
	}
	return sccs
}

// LoopFree reports whether the dependency structure is a lattice (no
// cycles).
func (g *Graph) LoopFree() bool { return len(g.Cycles()) == 0 }

// Layers assigns each module its certification layer: a module with no
// dependencies is layer 0, and otherwise a module's layer is one more
// than the highest layer it depends on. Correctness can then be
// established one layer at a time from the bottom. Layers fails if
// the graph has cycles.
func (g *Graph) Layers() ([][]string, error) {
	if cycles := g.Cycles(); len(cycles) > 0 {
		return nil, fmt.Errorf("deps: dependency loops prevent layering: %v", cycles)
	}
	adj := g.adjacency()
	memo := make(map[string]int)
	var depth func(v string) int
	depth = func(v string) int {
		if d, ok := memo[v]; ok {
			return d
		}
		memo[v] = 0 // no cycles, so this placeholder is never read back
		d := 0
		for _, w := range adj[v] {
			if dw := depth(w) + 1; dw > d {
				d = dw
			}
		}
		memo[v] = d
		return d
	}
	max := 0
	for _, v := range g.names {
		if d := depth(v); d > max {
			max = d
		}
	}
	layers := make([][]string, max+1)
	for _, v := range g.names {
		d := memo[v]
		layers[d] = append(layers[d], v)
	}
	return layers, nil
}

// Verify returns an error describing every dependency loop and every
// undisciplined edge, or nil if the structure satisfies the
// type-extension rationale. The kernel refuses to boot if Verify
// fails.
func (g *Graph) Verify() error {
	var problems []string
	for _, c := range g.Cycles() {
		problems = append(problems, fmt.Sprintf("dependency loop among %s", strings.Join(c, ", ")))
	}
	for _, e := range g.Undisciplined() {
		problems = append(problems, fmt.Sprintf("undisciplined %v dependency %s -> %s (%s)", e.Kind, e.From, e.To, e.Note))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("deps: %s", strings.Join(problems, "; "))
}

// Text renders the graph as a readable adjacency listing.
func (g *Graph) Text() string {
	var b strings.Builder
	for _, name := range g.names {
		fmt.Fprintf(&b, "%s — %s\n", name, g.modules[name])
		for _, e := range g.EdgesFrom(name) {
			fmt.Fprintf(&b, "    depends on %-24s [%s] %s\n", e.To, e.Kind, e.Note)
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot form; undisciplined edges are
// drawn dashed and loops can be spotted visually.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=BT;\n  node [shape=box];\n")
	for _, name := range g.names {
		fmt.Fprintf(&b, "  %q;\n", name)
	}
	for _, e := range g.edges {
		style := ""
		if !e.Kind.Disciplined() {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.From, e.To, e.Kind.String(), style)
	}
	b.WriteString("}\n")
	return b.String()
}
