// Package quota implements the quota cell manager of the kernel
// design.
//
// In the 1974 supervisor, quota limits and counts lived in directory
// entries, and page control located the governing quota directory by
// walking segment control's active segment table up the directory
// hierarchy on every segment growth — constraining the active segment
// table to follow the hierarchy's shape and making page control depend
// on segment control.
//
// The redesign makes quota cells explicit objects with their own
// manager. A quota cell is stored in the disk pack table-of-contents
// entry for its directory and is cached in primary memory in a table
// (a core segment) managed here. The segment manager presents the
// cell when a directory is activated and names the cell — statically,
// thanks to the rule that a directory may be designated a quota
// directory only while it has no children — whenever quota must be
// checked. No upward search of the hierarchy remains.
package quota

import (
	"errors"
	"fmt"
	"sync/atomic"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/trace"
)

// ModuleName is this manager's name in the kernel dependency graph;
// trace events for quota checks are attributed to it.
const ModuleName = "quota-cell-manager"

// ErrExceeded is the quota-exhausted error: the requested growth would
// push the count past the cell's limit.
var ErrExceeded = errors.New("quota: limit exceeded")

// ErrNotActive is returned for operations on a cell that has not been
// activated into the primary-memory table.
var ErrNotActive = errors.New("quota: cell not active")

// CellWords is the size of one cached cell in the core-segment table.
const CellWords = 4

// A CellName is the static name of a quota cell: the disk address of
// the table-of-contents entry of its quota directory.
type CellName = disk.SegAddr

type cell struct {
	slot  int
	limit int
	used  int
}

// A Manager caches active quota cells in a core segment and performs
// all operations on them.
type Manager struct {
	vols  *disk.Volumes
	table *coreseg.Segment
	meter *hw.CostMeter

	mu    lockrank.Mutex
	sink  trace.Sink
	cells map[CellName]*cell
	slots []bool // slot occupancy in the core-segment table

	growRaces atomic.Int64
}

// Stats is the manager's counter block.
type Stats struct {
	// GrowRaces counts quota growths that lost the trap-vs-reclaim
	// race (segment.ErrGrowRace): the faulter took a quota trap for a
	// page whose record still existed because the zero-reclaim had
	// not yet reached the file map, and the growth was retried from
	// the rereference. Schedule sweeps assert this counter to prove
	// the PR-6 window was actually exercised, not vacuously passed.
	GrowRaces int64
}

// Stats reports the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{GrowRaces: m.growRaces.Load()}
}

// NoteGrowRace records one quota growth lost to the trap-vs-reclaim
// race. The segment manager calls it where it returns ErrGrowRace.
func (m *Manager) NoteGrowRace() { m.growRaces.Add(1) }

// SetTrace routes quota-check events to s (nil turns tracing off).
func (m *Manager) SetTrace(s trace.Sink) {
	m.mu.Lock()
	m.sink = s
	m.mu.Unlock()
}

// NewManager returns a quota cell manager whose cache lives in the
// core segment table.
func NewManager(vols *disk.Volumes, table *coreseg.Segment, meter *hw.CostMeter) (*Manager, error) {
	if table == nil || table.Words() < CellWords {
		return nil, errors.New("quota: cache table segment too small")
	}
	m := &Manager{
		vols:  vols,
		table: table,
		meter: meter,
		cells: make(map[CellName]*cell),
		slots: make([]bool, table.Words()/CellWords),
	}
	m.mu.Init(ModuleName)
	return m, nil
}

// Capacity reports how many cells the primary-memory table can hold.
func (m *Manager) Capacity() int { return len(m.slots) }

// InitCell establishes a quota cell with the given limit in the
// table-of-contents entry named by name. The directory manager calls
// it when a directory is designated a quota directory; the entry must
// not already hold a valid cell.
func (m *Manager) InitCell(name CellName, limit int) error {
	if limit < 0 {
		return fmt.Errorf("quota: negative limit %d", limit)
	}
	pack, err := m.vols.Pack(name.Pack)
	if err != nil {
		return err
	}
	return pack.UpdateEntry(name.TOC, func(e *disk.TOCEntry) error {
		if e.Quota.Valid {
			return fmt.Errorf("quota: %v already holds a quota cell", name)
		}
		if !e.Dir {
			return fmt.Errorf("quota: %v is not a directory", name)
		}
		e.Quota = disk.QuotaCell{Valid: true, Limit: limit}
		return nil
	})
}

// RemoveCell deletes the quota cell from the named entry (the inverse
// of designation). The cell must be inactive and its count zero.
func (m *Manager) RemoveCell(name CellName) error {
	m.mu.Lock()
	_, active := m.cells[name]
	m.mu.Unlock()
	if active {
		return fmt.Errorf("quota: cell %v is active", name)
	}
	pack, err := m.vols.Pack(name.Pack)
	if err != nil {
		return err
	}
	return pack.UpdateEntry(name.TOC, func(e *disk.TOCEntry) error {
		if !e.Quota.Valid {
			return fmt.Errorf("quota: %v holds no quota cell", name)
		}
		if e.Quota.Used != 0 {
			return fmt.Errorf("quota: cell %v still charges %d pages", name, e.Quota.Used)
		}
		e.Quota = disk.QuotaCell{}
		return nil
	})
}

// Activate loads the cell from its table-of-contents entry into the
// primary-memory table. The segment manager calls it whenever a quota
// directory is activated. Activating an already active cell is an
// error; the caller tracks activation.
func (m *Manager) Activate(name CellName) error {
	pack, err := m.vols.Pack(name.Pack)
	if err != nil {
		return err
	}
	e, err := pack.Entry(name.TOC)
	if err != nil {
		return err
	}
	if !e.Quota.Valid {
		return fmt.Errorf("quota: %v holds no quota cell", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cells[name]; ok {
		return fmt.Errorf("quota: cell %v already active", name)
	}
	slot := -1
	for i, taken := range m.slots {
		if !taken {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("quota: primary-memory table full (%d cells)", len(m.slots))
	}
	c := &cell{slot: slot, limit: e.Quota.Limit, used: e.Quota.Used}
	m.slots[slot] = true
	m.cells[name] = c
	return m.store(c)
}

// store writes the cell through to its slot in the core-segment table.
func (m *Manager) store(c *cell) error {
	base := c.slot * CellWords
	if err := m.table.Write(base, hw.Word(c.used)); err != nil {
		return err
	}
	return m.table.Write(base+1, hw.Word(c.limit))
}

// Deactivate writes the cell back to its table-of-contents entry and
// frees its table slot. The write-back happens first, with bounded
// retry on transient disk faults; the cached copy is evicted only
// after the entry holds the count. On failure the cell stays active
// and the cache remains authoritative — deactivation can be retried,
// and no count is ever lost to a half-done flush.
func (m *Manager) Deactivate(name CellName) error {
	m.mu.Lock()
	c, ok := m.cells[name]
	if !ok {
		m.mu.Unlock()
		return ErrNotActive
	}
	limit, used := c.limit, c.used
	m.mu.Unlock()

	pack, err := m.vols.Pack(name.Pack)
	if err != nil {
		return err
	}
	if err := disk.Retry(m.meter, func() error {
		return pack.UpdateEntry(name.TOC, func(e *disk.TOCEntry) error {
			e.Quota = disk.QuotaCell{Valid: true, Limit: limit, Used: used}
			return nil
		})
	}); err != nil {
		return fmt.Errorf("quota: flushing cell %v: %w", name, err)
	}

	m.mu.Lock()
	// Re-check under the lock: a concurrent Deactivate may have
	// already evicted the cell after our flush.
	if cur, ok := m.cells[name]; ok && cur == c {
		delete(m.cells, name)
		m.slots[c.slot] = false
	}
	m.mu.Unlock()
	return nil
}

// Charge checks that n more pages fit under the cell's limit and adds
// them to the count. It is the operation behind every segment growth.
func (m *Manager) Charge(name CellName, n int) error {
	if n < 0 {
		return fmt.Errorf("quota: negative charge %d", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[name]
	if !ok {
		return ErrNotActive
	}
	m.meter.Add(hw.CycMemRef) // one table probe: the O(1) the redesign buys
	if m.sink != nil {
		m.sink.Emit(trace.Event{
			Kind: trace.EvQuotaCheck, Module: ModuleName, Cost: hw.CycMemRef,
			Arg0: int64(n), Arg1: int64(c.used), Arg2: int64(c.limit),
		})
	}
	if c.used+n > c.limit {
		return fmt.Errorf("%w: cell %v at %d/%d, requested %d", ErrExceeded, name, c.used, c.limit, n)
	}
	c.used += n
	return m.store(c)
}

// Release returns n pages to the cell (pages freed by truncation or
// discovered to be zero by the page-removal algorithm).
func (m *Manager) Release(name CellName, n int) error {
	if n < 0 {
		return fmt.Errorf("quota: negative release %d", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[name]
	if !ok {
		return ErrNotActive
	}
	if n > c.used {
		return fmt.Errorf("quota: release of %d exceeds count %d on cell %v", n, c.used, name)
	}
	c.used -= n
	return m.store(c)
}

// SetLimit changes the cell's limit. A limit below the current count
// is allowed: it simply forbids further growth.
func (m *Manager) SetLimit(name CellName, limit int) error {
	if limit < 0 {
		return fmt.Errorf("quota: negative limit %d", limit)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[name]
	if !ok {
		return ErrNotActive
	}
	c.limit = limit
	return m.store(c)
}

// Info reports the cell's limit and current count.
func (m *Manager) Info(name CellName) (limit, used int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[name]
	if !ok {
		return 0, 0, ErrNotActive
	}
	return c.limit, c.used, nil
}

// Active reports whether the named cell is in the primary-memory
// table.
func (m *Manager) Active(name CellName) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.cells[name]
	return ok
}
