package quota

import (
	"errors"
	"testing"
	"testing/quick"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
)

type fixture struct {
	m    *Manager
	vols *disk.Volumes
	pack *disk.Pack
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mem := hw.NewMemory(4)
	cm, err := coreseg.NewManager(mem, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := cm.Allocate("quota-table", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(nil)
	pack, err := vols.AddPack("dska", 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(vols, table, &hw.CostMeter{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{m: m, vols: vols, pack: pack}
}

// newCell creates a quota directory entry with the given limit and
// returns its cell name.
func (f *fixture) newCell(t *testing.T, limit int) CellName {
	t.Helper()
	uid := uint64(f.pack.Entries() + 1)
	idx, err := f.pack.CreateEntry(uid, true, uid)
	if err != nil {
		t.Fatal(err)
	}
	name := CellName{Pack: "dska", TOC: idx}
	if err := f.m.InitCell(name, limit); err != nil {
		t.Fatal(err)
	}
	return name
}

func TestInitCellValidation(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 10)
	if err := f.m.InitCell(name, 5); err == nil {
		t.Error("double InitCell succeeded")
	}
	// Not a directory.
	idx, err := f.pack.CreateEntry(99, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.m.InitCell(CellName{Pack: "dska", TOC: idx}, 5); err == nil {
		t.Error("InitCell on a non-directory succeeded")
	}
	if err := f.m.InitCell(CellName{Pack: "dska", TOC: 999}, 5); err == nil {
		t.Error("InitCell on missing entry succeeded")
	}
	if err := f.m.InitCell(CellName{Pack: "nope", TOC: 0}, 5); err == nil {
		t.Error("InitCell on missing pack succeeded")
	}
	if err := f.m.InitCell(name, -1); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestChargeReleaseLifecycle(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 5)
	// Operations before activation fail.
	if err := f.m.Charge(name, 1); !errors.Is(err, ErrNotActive) {
		t.Errorf("Charge before activate: %v", err)
	}
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if !f.m.Active(name) {
		t.Error("cell not active after Activate")
	}
	if err := f.m.Charge(name, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 1); !errors.Is(err, ErrExceeded) {
		t.Errorf("charge beyond limit: %v, want ErrExceeded", err)
	}
	limit, used, err := f.m.Info(name)
	if err != nil || limit != 5 || used != 5 {
		t.Errorf("Info = %d/%d, %v", used, limit, err)
	}
	if err := f.m.Release(name, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Release(name, 2); err == nil {
		t.Error("release below zero succeeded")
	}
	_, used, _ = f.m.Info(name)
	if used != 1 {
		t.Errorf("used = %d after release", used)
	}
}

func TestDeactivateWritesBack(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 8)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 6); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Deactivate(name); err != nil {
		t.Fatal(err)
	}
	if f.m.Active(name) {
		t.Error("cell still active")
	}
	e, err := f.pack.Entry(name.TOC)
	if err != nil {
		t.Fatal(err)
	}
	if e.Quota.Used != 6 || e.Quota.Limit != 8 {
		t.Errorf("TOC quota cell = %+v after deactivate", e.Quota)
	}
	// Reactivation restores the count.
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	_, used, _ := f.m.Info(name)
	if used != 6 {
		t.Errorf("used after reactivate = %d", used)
	}
	if err := f.m.Deactivate(CellName{Pack: "dska", TOC: 999}); !errors.Is(err, ErrNotActive) {
		t.Errorf("deactivate of inactive cell: %v", err)
	}
}

func TestDoubleActivate(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 2)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Activate(name); err == nil {
		t.Error("double activate succeeded")
	}
}

func TestRemoveCell(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 5)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.RemoveCell(name); err == nil {
		t.Error("remove of active cell succeeded")
	}
	if err := f.m.Charge(name, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Deactivate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.RemoveCell(name); err == nil {
		t.Error("remove of cell with nonzero count succeeded")
	}
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Release(name, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Deactivate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.RemoveCell(name); err != nil {
		t.Errorf("remove of clean cell: %v", err)
	}
	e, _ := f.pack.Entry(name.TOC)
	if e.Quota.Valid {
		t.Error("cell still valid in TOC after removal")
	}
}

func TestSetLimit(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 5)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 4); err != nil {
		t.Fatal(err)
	}
	// Lowering the limit below the count is allowed but freezes
	// growth.
	if err := f.m.SetLimit(name, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 1); !errors.Is(err, ErrExceeded) {
		t.Errorf("charge after limit cut: %v", err)
	}
	if err := f.m.Release(name, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, 1); err != nil {
		t.Errorf("charge within new limit: %v", err)
	}
	if err := f.m.SetLimit(name, -3); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestCacheTableCapacity(t *testing.T) {
	// A one-frame table holds PageWords/CellWords cells; exceeding
	// that must fail, because the table lives in a fixed core
	// segment.
	f := newFixture(t)
	cap := f.m.Capacity()
	if cap != hw.PageWords/CellWords {
		t.Fatalf("Capacity = %d", cap)
	}
	var names []CellName
	for i := 0; i < cap; i++ {
		n := f.newCell(t, 1)
		if err := f.m.Activate(n); err != nil {
			t.Fatalf("activate %d: %v", i, err)
		}
		names = append(names, n)
	}
	extra := f.newCell(t, 1)
	if err := f.m.Activate(extra); err == nil {
		t.Error("activation beyond table capacity succeeded")
	}
	// Deactivating one frees a slot.
	if err := f.m.Deactivate(names[3]); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Activate(extra); err != nil {
		t.Errorf("activation after slot freed: %v", err)
	}
}

func TestCountsVisibleInCoreSegmentTable(t *testing.T) {
	mem := hw.NewMemory(4)
	cm, err := coreseg.NewManager(mem, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := cm.Allocate("quota-table", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(nil)
	pack, err := vols.AddPack("dska", 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(vols, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := pack.CreateEntry(1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	name := CellName{Pack: "dska", TOC: idx}
	if err := m.InitCell(name, 9); err != nil {
		t.Fatal(err)
	}
	if err := m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(name, 4); err != nil {
		t.Fatal(err)
	}
	// First activation takes slot 0: word 0 = used, word 1 = limit.
	used, err := table.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	limit, err := table.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if used != 4 || limit != 9 {
		t.Errorf("core-segment table shows %d/%d, want 4/9", used, limit)
	}
}

func TestNegativeArguments(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 5)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Charge(name, -1); err == nil {
		t.Error("negative charge accepted")
	}
	if err := f.m.Release(name, -1); err == nil {
		t.Error("negative release accepted")
	}
}

// Property: any sequence of charges and releases keeps 0 <= used <=
// limit, and used equals the sum of successful charges minus
// successful releases.
func TestChargeReleaseInvariant(t *testing.T) {
	f := newFixture(t)
	name := f.newCell(t, 20)
	if err := f.m.Activate(name); err != nil {
		t.Fatal(err)
	}
	model := 0
	prop := func(ops []int8) bool {
		for _, op := range ops {
			n := int(op % 7)
			if n < 0 {
				n = -n
			}
			if op >= 0 {
				if err := f.m.Charge(name, n); err == nil {
					model += n
				} else if !errors.Is(err, ErrExceeded) {
					return false
				}
			} else {
				if err := f.m.Release(name, n); err == nil {
					model -= n
				}
			}
			_, used, err := f.m.Info(name)
			if err != nil {
				return false
			}
			if used != model || used < 0 || used > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
