// Package eventcount implements the synchronization primitives of
// Reed and Kanodia cited by the kernel design: eventcounts and
// sequencers.
//
// An eventcount is a monotonically increasing counter naming how many
// events of some class have occurred. Processes follow it with Read,
// wait for it with Await, and signal with Advance. The property the
// two-level process implementation depends on is that the discoverer
// of an event does not need to know the identity of the processes
// awaiting it: Advance simply increments and wakes whoever is behind.
//
// A sequencer hands out totally ordered tickets, used together with an
// eventcount to build mutual exclusion without a shared lock word.
package eventcount

import (
	"sync"

	"multics/internal/schedsim"
	"multics/internal/trace"
)

// An Eventcount is a monotonically increasing event counter. The zero
// value is a valid eventcount at zero.
type Eventcount struct {
	mu      sync.Mutex
	count   uint64
	changed chan struct{}

	// sink and module route await/advance operations into the
	// kernel trace when the owning manager calls Trace; the zero
	// value emits nothing.
	sink   trace.Sink
	module string
}

// Trace routes this eventcount's await and advance operations to s,
// attributed to module (the owning manager's dependency-graph name).
// A nil s turns tracing off.
func (e *Eventcount) Trace(s trace.Sink, module string) {
	e.mu.Lock()
	e.sink = s
	e.module = module
	e.mu.Unlock()
}

// Read returns the current value. A value read is a lower bound on
// the number of Advance calls completed.
func (e *Eventcount) Read() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Advance increments the eventcount by one, waking every waiter whose
// awaited value has now been reached, and returns the new value.
func (e *Eventcount) Advance() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.count++
	if e.sink != nil {
		e.sink.Emit(trace.Event{Kind: trace.EvAdvance, Module: e.module, Arg0: int64(e.count)})
	}
	if e.changed != nil {
		close(e.changed)
		e.changed = nil
	}
	return e.count
}

// Await blocks until the eventcount reaches at least v and returns the
// value observed (which may exceed v).
func (e *Eventcount) Await(v uint64) uint64 {
	for {
		e.mu.Lock()
		if e.count >= v {
			c := e.count
			e.mu.Unlock()
			return c
		}
		if e.changed == nil {
			e.changed = make(chan struct{})
		}
		if e.sink != nil {
			e.sink.Emit(trace.Event{Kind: trace.EvAwait, Module: e.module, Arg0: int64(v), Arg1: int64(e.count)})
		}
		ch := e.changed
		e.mu.Unlock()
		if schedsim.OnTask() {
			// Under the deterministic executor a channel wait would
			// stall the whole schedule; park the task on a readiness
			// predicate instead and let the scheduler pick an
			// advancer.
			schedsim.Block("eventcount await", func() bool { return e.Read() >= v })
			continue
		}
		<-ch
	}
}

// TryAwait reports whether the eventcount has reached v without
// blocking, returning the current value.
func (e *Eventcount) TryAwait(v uint64) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count, e.count >= v
}

// A Sequencer issues totally ordered tickets. The zero value is valid
// and issues 1 first, so that pairing with a zero eventcount gives the
// usual ticket-lock construction: Await(Ticket()-? ...).
type Sequencer struct {
	mu   sync.Mutex
	next uint64
}

// Ticket returns the next value in the total order, starting at 1.
func (s *Sequencer) Ticket() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return s.next
}

// Read returns the most recently issued ticket (0 if none).
func (s *Sequencer) Read() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// A Mutex is the eventcount-and-sequencer mutual exclusion of Reed and
// Kanodia: a process takes a ticket and awaits the eventcount reaching
// ticket-1 (all earlier holders done), and releasing advances the
// count. It demonstrates that the primitives subsume locking.
type Mutex struct {
	seq  Sequencer
	done Eventcount
}

// Lock acquires the mutex.
func (m *Mutex) Lock() {
	t := m.seq.Ticket()
	m.done.Await(t - 1)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.done.Advance()
}
