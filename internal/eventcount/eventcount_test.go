package eventcount

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestReadAdvance(t *testing.T) {
	var e Eventcount
	if e.Read() != 0 {
		t.Fatalf("zero value reads %d", e.Read())
	}
	if got := e.Advance(); got != 1 {
		t.Fatalf("first Advance = %d", got)
	}
	if got := e.Advance(); got != 2 {
		t.Fatalf("second Advance = %d", got)
	}
	if e.Read() != 2 {
		t.Fatalf("Read = %d, want 2", e.Read())
	}
}

func TestAwaitAlreadyReached(t *testing.T) {
	var e Eventcount
	e.Advance()
	e.Advance()
	if got := e.Await(1); got != 2 {
		t.Errorf("Await(1) = %d, want 2", got)
	}
	if got := e.Await(0); got != 2 {
		t.Errorf("Await(0) = %d, want 2", got)
	}
}

func TestAwaitBlocksUntilAdvance(t *testing.T) {
	var e Eventcount
	done := make(chan uint64, 1)
	go func() { done <- e.Await(3) }()
	select {
	case v := <-done:
		t.Fatalf("Await(3) returned %d before any Advance", v)
	case <-time.After(10 * time.Millisecond):
	}
	e.Advance()
	e.Advance()
	select {
	case v := <-done:
		t.Fatalf("Await(3) returned %d at count 2", v)
	case <-time.After(10 * time.Millisecond):
	}
	e.Advance()
	select {
	case v := <-done:
		if v < 3 {
			t.Errorf("Await(3) = %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Await(3) still blocked after count reached 3")
	}
}

func TestAdvanceWakesAllWaiters(t *testing.T) {
	var e Eventcount
	const n = 8
	var wg sync.WaitGroup
	results := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Await(1)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	e.Advance()
	wg.Wait()
	for i, v := range results {
		if v < 1 {
			t.Errorf("waiter %d observed %d", i, v)
		}
	}
}

func TestAwaiterNeedNotBeKnownToAdvancer(t *testing.T) {
	// The paper's requirement: the discoverer of an event has no
	// knowledge of the identities of waiting processes. Advance on
	// an eventcount with no waiters must not block or fail, and a
	// late waiter still sees the count.
	var e Eventcount
	e.Advance()
	if got := e.Await(1); got != 1 {
		t.Errorf("late Await(1) = %d", got)
	}
}

func TestTryAwait(t *testing.T) {
	var e Eventcount
	if v, ok := e.TryAwait(1); ok || v != 0 {
		t.Errorf("TryAwait(1) on zero = %d,%v", v, ok)
	}
	e.Advance()
	if v, ok := e.TryAwait(1); !ok || v != 1 {
		t.Errorf("TryAwait(1) after advance = %d,%v", v, ok)
	}
}

func TestSequencerTotalOrder(t *testing.T) {
	var s Sequencer
	if s.Read() != 0 {
		t.Fatalf("zero sequencer reads %d", s.Read())
	}
	const n = 100
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tkt := s.Ticket()
			mu.Lock()
			defer mu.Unlock()
			if seen[tkt] {
				t.Errorf("duplicate ticket %d", tkt)
			}
			seen[tkt] = true
		}()
	}
	wg.Wait()
	for i := uint64(1); i <= n; i++ {
		if !seen[i] {
			t.Errorf("ticket %d never issued", i)
		}
	}
	if s.Read() != n {
		t.Errorf("Read = %d, want %d", s.Read(), n)
	}
}

func TestMutexExcludes(t *testing.T) {
	var m Mutex
	var counter, inside int
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Lock()
				inside++
				if inside != 1 {
					t.Errorf("mutual exclusion violated: %d inside", inside)
				}
				counter++
				inside--
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16*50 {
		t.Errorf("counter = %d, want %d", counter, 16*50)
	}
}

// Property: the value returned by Advance equals the number of
// Advances performed, and Read never decreases.
func TestMonotonicProperty(t *testing.T) {
	f := func(n uint8) bool {
		var e Eventcount
		var last uint64
		for i := 0; i < int(n%64); i++ {
			v := e.Advance()
			if v != last+1 {
				return false
			}
			last = v
			if e.Read() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concurrent readers never observe the count going
// backwards.
func TestNoBackwardsReads(t *testing.T) {
	var e Eventcount
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := e.Read()
				if v < prev {
					t.Errorf("count went backwards: %d after %d", v, prev)
					return
				}
				prev = v
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		e.Advance()
	}
	close(stop)
	wg.Wait()
}
