package answering

import (
	"fmt"
	"strings"
	"sync"

	"multics/internal/aim"
	"multics/internal/hw"
)

// A Connector is the connection-driven front door of the answering
// service: terminal lines arrive as frames from the front-end
// processor's connection plane, and the dialog — login, session IO,
// logout — is driven entirely by what comes up the line, instead of
// by direct calls on the Service. This is the organization the
// front-end processor assumes: the answering service sits behind the
// connection plane and consumes deliveries.
//
// The line protocol is one command per frame, characters packed one
// per word:
//
//	login <principal> <password>   open a session at aim.Bottom
//	logout                         close the session
//	anything else                  session IO, counted per word
type Connector struct {
	svc *Service
	// destroy, when non-nil, ends the session's process at logout
	// (the connector holds opaque handles, like the storm driver).
	destroy func(proc any) error

	mu       sync.Mutex
	sessions map[int]*Session
	st       ConnectorStats
}

// ConnectorStats counts the connection-driven dialog.
type ConnectorStats struct {
	// Logins and Logouts count completed session transitions.
	Logins  int64
	Logouts int64
	// LoginFailures counts rejected login lines (bad credentials,
	// double login, malformed command).
	LoginFailures int64
	// IOFrames and IOWords count session IO traffic.
	IOFrames int64
	IOWords  int64
	// Orphans counts IO frames for connections with no session.
	Orphans int64
}

// NewConnector wraps a service. destroy may be nil.
func NewConnector(svc *Service, destroy func(proc any) error) *Connector {
	return &Connector{svc: svc, destroy: destroy, sessions: make(map[int]*Session)}
}

// EncodeLine packs a command line one character per word, the
// front-end terminal framing (without the end-of-block sentinel the
// wire protocol adds).
func EncodeLine(line string) []hw.Word {
	w := make([]hw.Word, len(line))
	for i := 0; i < len(line); i++ {
		w[i] = hw.Word(line[i])
	}
	return w
}

// DecodeLine is EncodeLine's inverse.
func DecodeLine(data []hw.Word) string {
	b := make([]byte, len(data))
	for i, w := range data {
		b[i] = byte(w)
	}
	return string(b)
}

// HandleFrame consumes one delivered frame for a connection. Errors
// are counted and returned; the connection plane treats them as
// dialog outcomes, not delivery failures (the frame was delivered).
func (c *Connector) HandleFrame(conn int, data []hw.Word) error {
	line := DecodeLine(data)
	fields := strings.Fields(line)
	if len(fields) > 0 && fields[0] == "login" {
		if len(fields) != 3 {
			c.count(func(st *ConnectorStats) { st.LoginFailures++ })
			return fmt.Errorf("answering: malformed login on connection %d", conn)
		}
		c.mu.Lock()
		_, on := c.sessions[conn]
		c.mu.Unlock()
		if on {
			c.count(func(st *ConnectorStats) { st.LoginFailures++ })
			return fmt.Errorf("answering: connection %d already logged in", conn)
		}
		sess, err := c.svc.Login(fields[1], fields[2], aim.Bottom)
		if err != nil {
			c.count(func(st *ConnectorStats) { st.LoginFailures++ })
			return err
		}
		c.mu.Lock()
		c.sessions[conn] = sess
		c.st.Logins++
		c.mu.Unlock()
		return nil
	}
	if len(fields) == 1 && fields[0] == "logout" {
		c.mu.Lock()
		sess, on := c.sessions[conn]
		delete(c.sessions, conn)
		c.mu.Unlock()
		if !on {
			c.count(func(st *ConnectorStats) { st.Orphans++ })
			return fmt.Errorf("answering: logout on idle connection %d", conn)
		}
		if err := c.svc.Logout(sess, 0); err != nil {
			return err
		}
		if c.destroy != nil && sess.Process != nil {
			if err := c.destroy(sess.Process); err != nil {
				return err
			}
		}
		c.count(func(st *ConnectorStats) { st.Logouts++ })
		return nil
	}
	// Session IO: anything on a logged-in line is traffic.
	c.mu.Lock()
	_, on := c.sessions[conn]
	if on {
		c.st.IOFrames++
		c.st.IOWords += int64(len(data))
	} else {
		c.st.Orphans++
	}
	c.mu.Unlock()
	return nil
}

// Session reports the connection's open session, nil when idle.
func (c *Connector) Session(conn int) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[conn]
}

// Stats returns the dialog counters.
func (c *Connector) Stats() ConnectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

func (c *Connector) count(f func(*ConnectorStats)) {
	c.mu.Lock()
	f(&c.st)
	c.mu.Unlock()
}
