package answering

import (
	"fmt"
	"sync"

	"multics/internal/aim"
)

// StormConfig shapes a login/timesharing storm: register and log in
// Users principals, run Rounds rounds of QuantaPerRound scheduler
// quanta with every BlockEvery-th session blocking mid-quantum and
// being woken through the real-memory queue, then log everyone out.
type StormConfig struct {
	// Users is the number of simulated users.
	Users int
	// Rounds of timesharing after the login flood; 0 means login/
	// logout only.
	Rounds int
	// QuantaPerRound is the scheduler quanta budget per round, per
	// worker.
	QuantaPerRound int
	// BlockEvery blocks every BlockEvery-th session (rotating by
	// round) inside its quantum, to be woken by a queue message; 0
	// disables blocking.
	BlockEvery int
	// WakeBatch bounds how many wakeups are posted before the queue
	// is drained; it must stay under the real-memory queue's fixed
	// capacity. 0 selects a safe default.
	WakeBatch int
}

// StormOps are the scheduler operations the storm drives, supplied by
// the kernel embedding (the answering service itself knows nothing of
// the process plane — the process handles are opaque, exactly like
// Session.Process).
type StormOps struct {
	// RunQuanta runs up to n scheduler quanta per worker, calling
	// body with each dispatched process.
	RunQuanta func(n int, body func(proc any)) (int, error)
	// Block parks the (running) process until a wakeup message
	// addressed to it arrives.
	Block func(proc any) error
	// Wake posts a wakeup message for the process into the
	// real-memory queue; it can fail when the bounded queue is full.
	Wake func(proc any) error
	// Deliver drains the real-memory queue, waking blocked
	// processes; returns how many woke.
	Deliver func() (int, error)
	// Destroy ends the process at logout.
	Destroy func(proc any) error
	// CPUOf reports the simulated cycles the process consumed, for
	// the accounting record.
	CPUOf func(proc any) int64
}

// StormStats summarizes a storm run.
type StormStats struct {
	Logins  int
	Logouts int
	// Quanta is the total scheduler quanta that ran.
	Quanta int
	// Blocked and Woken count block/wake round trips through the
	// real-memory queue.
	Blocked int
	Woken   int
	// WakeRetries counts wakeups that found the bounded queue full
	// and had to drain it before reposting.
	WakeRetries int
}

// stormPassword is the shared password of the synthetic principals.
const stormPassword = "storm-pw"

// StormPrincipal names the i-th synthetic storm user.
func StormPrincipal(i int) string { return fmt.Sprintf("u%05d.storm", i) }

// RunStorm drives the full storm: register, login flood, timesharing
// rounds with block/wake churn, logout flood. Everything iterates
// over index-ordered slices — never maps — so two identical runs
// make identical calls in identical order.
func (s *Service) RunStorm(cfg StormConfig, ops StormOps) (StormStats, error) {
	var st StormStats
	if cfg.Users <= 0 {
		return st, fmt.Errorf("answering: storm of %d users", cfg.Users)
	}
	if ops.RunQuanta == nil || ops.Deliver == nil || ops.Block == nil || ops.Wake == nil {
		return st, fmt.Errorf("answering: storm ops incomplete")
	}
	wakeBatch := cfg.WakeBatch
	if wakeBatch <= 0 {
		wakeBatch = 128
	}

	// Registration and the login flood.
	sessions := make([]*Session, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		principal := StormPrincipal(i)
		if err := s.Register(principal, stormPassword, aim.Top); err != nil {
			return st, err
		}
		sess, err := s.Login(principal, stormPassword, aim.Bottom)
		if err != nil {
			return st, fmt.Errorf("login %s: %w", principal, err)
		}
		sessions = append(sessions, sess)
		st.Logins++
	}

	// Timesharing rounds: some sessions block inside their quantum,
	// the rest spin; the blocked are woken through the bounded
	// real-memory queue in batches, then delivery runs.
	for r := 0; r < cfg.Rounds; r++ {
		toBlock := make(map[any]bool)
		var blocked []*Session
		if cfg.BlockEvery > 0 {
			for i, sess := range sessions {
				if (i+r)%cfg.BlockEvery == 0 {
					toBlock[sess.Process] = true
					blocked = append(blocked, sess)
				}
			}
		}
		// The quantum callback runs on every worker goroutine of a
		// parallel executor, so the block bookkeeping takes a lock.
		var blockMu sync.Mutex
		var blockErr error
		ran, err := ops.RunQuanta(cfg.QuantaPerRound, func(proc any) {
			blockMu.Lock()
			mine := toBlock[proc]
			if mine {
				delete(toBlock, proc)
			}
			blockMu.Unlock()
			if !mine {
				return
			}
			if err := ops.Block(proc); err != nil {
				blockMu.Lock()
				if blockErr == nil {
					blockErr = err
				}
				blockMu.Unlock()
			}
		})
		st.Quanta += ran
		if err != nil {
			return st, fmt.Errorf("storm round %d: %w", r, err)
		}
		if blockErr != nil {
			return st, fmt.Errorf("storm round %d block: %w", r, blockErr)
		}
		// Wake whoever actually blocked (sessions never dispatched
		// this round are still ready and need no wakeup).
		pending := 0
		for _, sess := range blocked {
			if toBlock[sess.Process] {
				continue // never dispatched, never blocked
			}
			st.Blocked++
			if err := ops.Wake(sess.Process); err != nil {
				// The bounded queue filled: drain it, then repost.
				st.WakeRetries++
				woke, derr := ops.Deliver()
				st.Woken += woke
				if derr != nil {
					return st, derr
				}
				pending = 0
				if err := ops.Wake(sess.Process); err != nil {
					return st, fmt.Errorf("storm round %d wake: %w", r, err)
				}
			}
			pending++
			if pending >= wakeBatch {
				woke, err := ops.Deliver()
				if err != nil {
					return st, err
				}
				st.Woken += woke
				pending = 0
			}
		}
		if pending > 0 {
			woke, err := ops.Deliver()
			if err != nil {
				return st, err
			}
			st.Woken += woke
		}
	}

	// The logout flood.
	for _, sess := range sessions {
		var used int64
		if ops.CPUOf != nil {
			used = ops.CPUOf(sess.Process)
		}
		if err := s.Logout(sess, used); err != nil {
			return st, err
		}
		if ops.Destroy != nil {
			if err := ops.Destroy(sess.Process); err != nil {
				return st, err
			}
		}
		st.Logouts++
	}
	return st, nil
}
