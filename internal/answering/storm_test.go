package answering_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/audit"
	"multics/internal/core"
	"multics/internal/hw"
	"multics/internal/schedsim"
	"multics/internal/uproc"
)

// bootStormKernel boots a kernel scaled to hold users resident
// process states (an active-segment entry and a memory frame each).
func bootStormKernel(t *testing.T, users, nCPU int) *core.Kernel {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Processors = nCPU
	cfg.ASTPages = (users+256)/128 + 2
	cfg.WiredFrames = cfg.ASTPages + 6
	cfg.MemFrames = users + 256 + cfg.WiredFrames
	cfg.RootQuota = 2*users + 1024
	cfg.Packs = []core.PackSpec{{ID: "dska", Records: 8192}, {ID: "dskb", Records: 8192}}
	k, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func stormService(k *core.Kernel) *answering.Service {
	return answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		return k.CreateProcess(principal, label)
	})
}

// TestRunStorm drives a full login/timesharing/logout storm through
// the kernel and checks its books: every login logs out, every
// blocked process is woken, the scheduler dispatched work, and the
// post-storm kernel audit is clean.
func TestRunStorm(t *testing.T) {
	const users = 300
	k := bootStormKernel(t, users, 2)
	svc := stormService(k)
	st, err := svc.RunStorm(answering.StormConfig{
		Users:          users,
		Rounds:         3,
		QuantaPerRound: users + 16,
		BlockEvery:     7,
	}, k.StormOps(uproc.GoroutineExecutor{}, k.CPUs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Logins != users || st.Logouts != users {
		t.Errorf("logins %d logouts %d, want %d each", st.Logins, st.Logouts, users)
	}
	if st.Blocked == 0 || st.Blocked != st.Woken {
		t.Errorf("blocked %d woken %d: every blocked process must be woken", st.Blocked, st.Woken)
	}
	ss := k.Procs.SchedStats()
	if ss.Dispatches == 0 || ss.Wakeups == 0 {
		t.Errorf("dispatches %d wakeups %d: the storm did not exercise the scheduler", ss.Dispatches, ss.Wakeups)
	}
	open := 0
	for _, rec := range svc.Records() {
		if rec.Open {
			open++
		}
	}
	if open != 0 {
		t.Errorf("%d session records still open after the storm", open)
	}
	if rep := audit.Run(k); !rep.Clean() {
		t.Errorf("post-storm audit dirty:\n%s", rep)
	}
}

// TestStormChurnRace hammers the process plane from real goroutines:
// login/logout churn racing against dispatch loops, event delivery,
// and blocking bodies — the -race exercise for the sharded process
// table, the per-CPU run queues, and the wakeup path.
func TestStormChurnRace(t *testing.T) {
	const (
		churners  = 4
		perChurn  = 24
		schedRuns = 40
	)
	k := bootStormKernel(t, churners*perChurn+8, 2)
	svc := stormService(k)
	var wg sync.WaitGroup
	errc := make(chan error, churners+1)
	// The churners: register, login, immediately log out and destroy.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perChurn; i++ {
				principal := fmt.Sprintf("churn%d-%d.race", c, i)
				if err := svc.Register(principal, "pw", aim.Top); err != nil {
					errc <- err
					return
				}
				sess, err := svc.Login(principal, "pw", aim.Bottom)
				if err != nil {
					errc <- err
					return
				}
				p := sess.Process.(*uproc.Process)
				if err := svc.Logout(sess, p.CPU()); err != nil {
					errc <- err
					return
				}
				if err := k.Procs.Destroy(p); err != nil {
					errc <- err
					return
				}
			}
		}(c)
	}
	// The scheduler: dispatch whatever the churners leave ready,
	// block every few quanta, wake by broadcast, deliver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var n atomic.Int64
		for run := 0; run < schedRuns; run++ {
			_, err := k.Procs.RunQuantumParallel(k.CPUs, 8, func(cpu *hw.Processor, p *uproc.Process) {
				if n.Add(1)%5 == 0 {
					// Blocked processes are woken by the broadcast
					// below — or destroyed blocked, which is legal.
					_ = k.Procs.Block(p, nil, 0)
				}
			})
			if err != nil {
				errc <- err
				return
			}
			if err := k.Procs.Wakeup(0, 0); err != nil { // broadcast
				errc <- err
				return
			}
			if _, err := k.Procs.DeliverEvents(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if bad := k.Procs.Audit(); len(bad) != 0 {
		t.Fatalf("process-plane audit dirty after churn: %v", bad)
	}
}

// TestSweepNoLostWakeup systematically explores the interleavings of
// a dispatch-then-block task against a wake-then-deliver task, with
// the sweep window on the uproc-block and uproc-deliver marks. In
// every explored schedule the process must end Ready: if delivery
// scans while the process is still running, the wakeup-waiting
// switch — not luck — must carry the wakeup into the block.
func TestSweepNoLostWakeup(t *testing.T) {
	maxSched, maxPre := schedsim.EnvBudget(32, 2)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointMark &&
				(d.Detail == "uproc-block" || d.Detail == "uproc-deliver")
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		k := bootStormKernel(t, 8, 1)
		svc := stormService(k)
		if err := svc.Register("a.storm", "pw", aim.Top); err != nil {
			return nil, err
		}
		sess, err := svc.Login("a.storm", "pw", aim.Bottom)
		if err != nil {
			return nil, err
		}
		p := sess.Process.(*uproc.Process)
		ex := schedsim.New(schedsim.Config{Name: "wakeup", Strategy: strat})
		ex.Go("cpu0", func() {
			got, _, err := k.Procs.DispatchOn(0)
			if err != nil {
				panic(fmt.Sprintf("dispatch: %v", err))
			}
			if got != p {
				panic(fmt.Sprintf("dispatched pid %d, want %d", got.ID(), p.ID()))
			}
			if err := k.Procs.Block(p, nil, 0); err != nil {
				panic(fmt.Sprintf("block: %v", err))
			}
		})
		ex.Go("waker", func() {
			if err := k.Procs.Wakeup(p.ID(), 1); err != nil {
				panic(fmt.Sprintf("wakeup: %v", err))
			}
			if _, err := k.Procs.DeliverEvents(); err != nil {
				panic(fmt.Sprintf("deliver: %v", err))
			}
		})
		if err := ex.Run(); err != nil {
			return ex, err
		}
		if st := p.State(); st != uproc.Ready {
			return ex, fmt.Errorf("process ended %v, want Ready: wakeup lost", st)
		}
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatalf("sweep vacuous: block/deliver marks never opened over %d schedules", rep.Schedules)
	}
	t.Logf("%d schedules, %d in-window decisions, truncated=%v",
		rep.Schedules, rep.WindowDecisions, rep.Truncated)
}
