// Package answering implements the Multics answering service: the
// programs that regulate attempts to log in, including authenticating
// passwords, creating the user's process, and managing system
// accounting.
//
// The 1974 answering service was a 10,000-line trusted process, all
// of which had to be counted in the security kernel. Montgomery's
// study showed that fewer than 1,000 of those lines need be trusted:
// the Split configuration keeps a small kernel part (password
// verification and process creation with an authenticated principal)
// and moves the dialog and accounting bookkeeping to an ordinary user
// process, the two halves exchanging messages. The paper reports the
// split service ran about 3% slower in its preliminary
// implementation; the cost model reproduces that shape (the message
// passing is the unavoidable extra).
package answering

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"multics/internal/aim"
	"multics/internal/hw"
)

// Mode selects the configuration.
type Mode int

const (
	// Monolithic is the 1974 organization: everything trusted.
	Monolithic Mode = iota
	// Split is Montgomery's organization: a small trusted part plus
	// an untrusted dialog-and-accounting part.
	Split
)

func (m Mode) String() string {
	if m == Monolithic {
		return "monolithic"
	}
	return "split"
}

// Algorithm-body costs. The total login work is the same in both
// configurations — it is the same job, moved — but the split pays
// message passing between its halves.
const (
	bodyLoginTotal   = 3500 // full login processing (dialog, auth, setup, accounting)
	bodyTrustedShare = 500  // the part that must stay in the kernel
	splitMessages    = 2    // request and reply between the halves
)

// Source-line figures from Montgomery's study, used by the census.
const (
	// MonolithicLines is the 1974 answering service.
	MonolithicLines = 10000
	// SplitTrustedLines is the part that must remain in the kernel
	// ("fewer than 1,000").
	SplitTrustedLines = 1000
)

// KernelLines reports the trusted source lines of a configuration.
func KernelLines(m Mode) int {
	if m == Monolithic {
		return MonolithicLines
	}
	return SplitTrustedLines
}

// Errors of the login interface. Bad user and bad password are the
// same answer.
var (
	ErrBadCredentials = errors.New("answering: incorrect login")
	ErrClearance      = errors.New("answering: requested authorization exceeds clearance")
	ErrAlreadyOn      = errors.New("answering: user already registered")
)

// CreateProcess is the kernel service the answering service invokes
// once a principal is authenticated.
type CreateProcess func(principal string, label aim.Label) (any, error)

type user struct {
	hash      uint64
	clearance aim.Label
}

// A SessionRecord is one accounting record.
type SessionRecord struct {
	Principal string
	Label     aim.Label
	// LoginCycles is the simulated cost of the login itself.
	LoginCycles int64
	// CPUUsed is filled at logout.
	CPUUsed int64
	Open    bool
}

// A Session is a logged-in user.
type Session struct {
	Principal string
	Label     aim.Label
	Process   any
	record    int
}

// A Service is an answering service instance.
type Service struct {
	Mode   Mode
	meter  *hw.CostMeter
	create CreateProcess

	mu      sync.Mutex
	users   map[string]user
	records []SessionRecord
	// Salt for password hashing; fixed per system.
	salt uint64
}

// New returns an answering service in the given configuration.
func New(mode Mode, meter *hw.CostMeter, create CreateProcess) *Service {
	return &Service{
		Mode:   mode,
		meter:  meter,
		create: create,
		users:  make(map[string]user),
		salt:   0x6180a13,
	}
}

func hashPassword(salt uint64, principal, password string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(salt >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(principal))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(password))
	return h.Sum64()
}

// Register adds a user with a password and a clearance: the highest
// label at which the user may log in.
func (s *Service) Register(principal, password string, clearance aim.Label) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[principal]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyOn, principal)
	}
	s.users[principal] = user{hash: hashPassword(s.salt, principal, password), clearance: clearance}
	return nil
}

// Login authenticates and creates a process at the requested label.
// In the split configuration the work flows through both halves with
// message passing between them.
func (s *Service) Login(principal, password string, label aim.Label) (*Session, error) {
	start := s.meter.Snapshot()
	switch s.Mode {
	case Monolithic:
		s.meter.AddBody(bodyLoginTotal, hw.PLI)
	case Split:
		// The untrusted half runs the dialog, then messages the
		// trusted half, which authenticates and replies.
		s.meter.AddBody(bodyLoginTotal-bodyTrustedShare, hw.PLI)
		s.meter.Add(splitMessages * hw.CycIPC)
		s.meter.AddBody(bodyTrustedShare, hw.PLI)
	}
	s.mu.Lock()
	u, ok := s.users[principal]
	s.mu.Unlock()
	if !ok || u.hash != hashPassword(s.salt, principal, password) {
		// One answer for both failures.
		return nil, ErrBadCredentials
	}
	if !u.clearance.Dominates(label) {
		return nil, fmt.Errorf("%w: %v above %v", ErrClearance, label, u.clearance)
	}
	proc, err := s.create(principal, label)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, SessionRecord{
		Principal:   principal,
		Label:       label,
		LoginCycles: s.meter.Since(start),
		Open:        true,
	})
	return &Session{Principal: principal, Label: label, Process: proc, record: len(s.records) - 1}, nil
}

// Logout closes a session, recording the CPU it consumed.
func (s *Service) Logout(sess *Session, cpuUsed int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess == nil || sess.record < 0 || sess.record >= len(s.records) || !s.records[sess.record].Open {
		return errors.New("answering: no such open session")
	}
	s.records[sess.record].CPUUsed = cpuUsed
	s.records[sess.record].Open = false
	return nil
}

// Records returns a copy of the accounting records.
func (s *Service) Records() []SessionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SessionRecord(nil), s.records...)
}
