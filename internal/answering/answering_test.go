package answering

import (
	"errors"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
)

func newService(t *testing.T, mode Mode) (*Service, *hw.CostMeter) {
	t.Helper()
	meter := &hw.CostMeter{}
	created := 0
	s := New(mode, meter, func(principal string, label aim.Label) (any, error) {
		created++
		return created, nil
	})
	if err := s.Register("alice.sys", "hunter2", aim.Label{Level: aim.Secret}); err != nil {
		t.Fatal(err)
	}
	return s, meter
}

func TestLoginLogout(t *testing.T) {
	s, _ := newService(t, Monolithic)
	sess, err := s.Login("alice.sys", "hunter2", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Principal != "alice.sys" || sess.Process == nil {
		t.Errorf("session = %+v", sess)
	}
	if err := s.Logout(sess, 420); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 1 || recs[0].CPUUsed != 420 || recs[0].Open {
		t.Errorf("records = %+v", recs)
	}
	if err := s.Logout(sess, 0); err == nil {
		t.Error("double logout succeeded")
	}
	if err := s.Logout(nil, 0); err == nil {
		t.Error("nil logout succeeded")
	}
}

func TestBadUserAndBadPasswordIndistinguishable(t *testing.T) {
	s, _ := newService(t, Monolithic)
	_, errUser := s.Login("nobody.x", "hunter2", aim.Bottom)
	_, errPass := s.Login("alice.sys", "wrong", aim.Bottom)
	if !errors.Is(errUser, ErrBadCredentials) || !errors.Is(errPass, ErrBadCredentials) {
		t.Fatalf("errors = %v / %v", errUser, errPass)
	}
	if errUser.Error() != errPass.Error() {
		t.Error("login failure reveals whether the user exists")
	}
}

func TestClearanceEnforced(t *testing.T) {
	s, _ := newService(t, Monolithic)
	// Alice is cleared to Secret: Top-Secret login denied.
	if _, err := s.Login("alice.sys", "hunter2", aim.Label{Level: aim.TopSecret}); !errors.Is(err, ErrClearance) {
		t.Errorf("over-clearance login = %v", err)
	}
	// Logging in at or below clearance works.
	if _, err := s.Login("alice.sys", "hunter2", aim.Label{Level: aim.Secret}); err != nil {
		t.Errorf("at-clearance login = %v", err)
	}
	if _, err := s.Login("alice.sys", "hunter2", aim.Bottom); err != nil {
		t.Errorf("below-clearance login = %v", err)
	}
}

func TestDoubleRegister(t *testing.T) {
	s, _ := newService(t, Monolithic)
	if err := s.Register("alice.sys", "x", aim.Bottom); !errors.Is(err, ErrAlreadyOn) {
		t.Errorf("double register = %v", err)
	}
}

func TestCreateProcessFailurePropagates(t *testing.T) {
	meter := &hw.CostMeter{}
	boom := errors.New("no more processes")
	s := New(Monolithic, meter, func(string, aim.Label) (any, error) { return nil, boom })
	if err := s.Register("a.b", "p", aim.Top); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Login("a.b", "p", aim.Bottom); !errors.Is(err, boom) {
		t.Errorf("login = %v", err)
	}
	if len(s.Records()) != 0 {
		t.Error("failed login recorded a session")
	}
}

func TestSplitIsAboutThreePercentSlower(t *testing.T) {
	// P3's shape: the split answering service, in its preliminary
	// implementation, ran about 3% slower.
	loginCost := func(mode Mode) int64 {
		s, meter := newService(t, mode)
		meter.Reset()
		if _, err := s.Login("alice.sys", "hunter2", aim.Bottom); err != nil {
			t.Fatal(err)
		}
		return meter.Cycles()
	}
	mono := loginCost(Monolithic)
	split := loginCost(Split)
	slowdown := 100 * float64(split-mono) / float64(mono)
	if slowdown <= 0 {
		t.Fatalf("split login not slower: %d vs %d", split, mono)
	}
	if slowdown < 1 || slowdown > 6 {
		t.Errorf("split slowdown = %.1f%%, want about 3%%", slowdown)
	}
}

func TestKernelLinesPerMode(t *testing.T) {
	if KernelLines(Monolithic) != 10000 {
		t.Errorf("monolithic lines = %d", KernelLines(Monolithic))
	}
	if KernelLines(Split) != 1000 {
		t.Errorf("split lines = %d", KernelLines(Split))
	}
	if Monolithic.String() == "" || Split.String() == "" {
		t.Error("mode names empty")
	}
}

func TestAccountingAccumulates(t *testing.T) {
	s, _ := newService(t, Split)
	if err := s.Register("bob.dev", "pw", aim.Bottom); err != nil {
		t.Fatal(err)
	}
	var sessions []*Session
	for i := 0; i < 3; i++ {
		sess, err := s.Login("bob.dev", "pw", aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	for i, sess := range sessions {
		if err := s.Logout(sess, int64(100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	var total int64
	for _, r := range recs {
		if r.Principal != "bob.dev" || r.Open {
			t.Errorf("record = %+v", r)
		}
		total += r.CPUUsed
	}
	if total != 600 {
		t.Errorf("total CPU = %d", total)
	}
}
