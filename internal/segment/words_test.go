package segment

import (
	"testing"

	"multics/internal/disk"
	"multics/internal/hw"
)

func TestWriteReadWord(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 20)
	uid, _ := f.newSeg(t, cell)
	// A write to a non-resident page is rejected; EnsureResident
	// opens the charged path first.
	if err := f.m.WriteWord(uid, 5, 7); err == nil {
		t.Error("write to non-resident page succeeded")
	}
	if _, err := f.m.ReadWord(uid, 5); err == nil {
		t.Error("read of non-resident page succeeded")
	}
	reloc, err := f.m.EnsureResident(uid, 0)
	if err != nil || reloc != nil {
		t.Fatalf("EnsureResident = %v, %v", reloc, err)
	}
	if err := f.m.WriteWord(uid, 5, 7); err != nil {
		t.Fatal(err)
	}
	w, err := f.m.ReadWord(uid, 5)
	if err != nil || w != 7 {
		t.Fatalf("ReadWord = %d, %v", w, err)
	}
	// A second EnsureResident of a present page is a no-op.
	if _, err := f.m.EnsureResident(uid, 0); err != nil {
		t.Fatal(err)
	}
	// EnsureResident on a stored-but-evicted page takes the
	// missing-page path.
	if err := f.m.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	a, err := f.m.Activate(uid, mustAddr(t, f, uid), cell, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	if _, err := f.m.EnsureResident(uid, 0); err != nil {
		t.Fatal(err)
	}
	w, err = f.m.ReadWord(uid, 5)
	if err != nil || w != 7 {
		t.Fatalf("after round trip ReadWord = %d, %v", w, err)
	}
	// Inactive segment: all the helpers fail cleanly.
	if err := f.m.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.EnsureResident(uid, 0); err == nil {
		t.Error("EnsureResident of inactive segment succeeded")
	}
	if err := f.m.WriteWord(uid, 0, 1); err == nil {
		t.Error("WriteWord of inactive segment succeeded")
	}
	if _, err := f.m.ReadWord(uid, 0); err == nil {
		t.Error("ReadWord of inactive segment succeeded")
	}
}

// mustAddr digs a segment's current disk address out of its pack.
func mustAddr(t *testing.T, f *fixture, uid uint64) disk.SegAddr {
	t.Helper()
	for _, id := range f.vols.Packs() {
		pack, err := f.vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		var found *disk.SegAddr
		pack.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if e.UID == uid {
				a := disk.SegAddr{Pack: id, TOC: idx}
				found = &a
			}
		})
		if found != nil {
			return *found
		}
	}
	t.Fatalf("segment %d has no table-of-contents entry", uid)
	return disk.SegAddr{}
}

func TestDiskEntry(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 10)
	uid, a := f.newSeg(t, cell)
	e, err := f.m.DiskEntry(a.Addr())
	if err != nil || e.UID != uid {
		t.Fatalf("DiskEntry = %+v, %v", e, err)
	}
	if _, err := f.m.DiskEntry(disk.SegAddr{Pack: "none", TOC: 0}); err == nil {
		t.Error("DiskEntry on unmounted pack succeeded")
	}
}

func TestEachActiveAndAudit(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 20)
	uid1, _ := f.newSeg(t, cell)
	uid2, a2 := f.newSeg(t, cell)
	if _, err := f.m.Grow(uid2, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	f.m.EachActive(func(a *ASTE) { seen[a.UID()] = true })
	if !seen[uid1] || !seen[uid2] {
		t.Errorf("EachActive saw %v", seen)
	}
	if bad := f.m.Audit(); len(bad) != 0 {
		t.Fatalf("clean manager audits dirty: %v", bad)
	}
	// Corrupt: mark a page present whose file map says unallocated.
	if _, err := a2.PageTable().Update(3, func(d *hw.PTW) { d.Present = true; d.QuotaTrap = false }); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a phantom resident page")
	}
	if _, err := a2.PageTable().Update(3, func(d *hw.PTW) { d.Present = false; d.QuotaTrap = true }); err != nil {
		t.Fatal(err)
	}
	// Corrupt: a stored page that still traps for quota.
	if _, err := a2.PageTable().Update(0, func(d *hw.PTW) { d.Present = false; d.QuotaTrap = true }); err != nil {
		t.Fatal(err)
	}
	if bad := f.m.Audit(); len(bad) == 0 {
		t.Error("audit missed a stored page behind a quota trap")
	}
}

func TestTruncate(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 20)
	uid, a := f.newSeg(t, cell)
	pack, _ := f.vols.Pack("dska")
	for i := 0; i < 4; i++ {
		if _, err := f.m.Grow(uid, i, 8, i); err != nil {
			t.Fatal(err)
		}
		if err := f.m.WriteWord(uid, i*hw.PageWords, hw.Word(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	_, used, _ := f.cells.Info(cell)
	recordsBefore := pack.UsedRecords()
	if used != 4 {
		t.Fatalf("used = %d before truncate", used)
	}
	if err := f.m.Truncate(uid, 2); err != nil {
		t.Fatal(err)
	}
	_, used, _ = f.cells.Info(cell)
	if used != 2 {
		t.Errorf("used = %d after truncate, want 2", used)
	}
	if pack.UsedRecords() != recordsBefore-2 {
		t.Errorf("records = %d, want %d", pack.UsedRecords(), recordsBefore-2)
	}
	if a.Pages() != 2 {
		t.Errorf("Pages = %d", a.Pages())
	}
	// Surviving pages intact; truncated region grows again through
	// the charged path.
	w, err := f.m.ReadWord(uid, 0)
	if err != nil || w != 1 {
		t.Fatalf("page 0 word = %d, %v", w, err)
	}
	d, _ := a.PageTable().Get(3)
	if d.Present || !d.QuotaTrap {
		t.Errorf("truncated page descriptor = %+v", d)
	}
	if _, err := f.m.Grow(uid, 3, 8, 3); err != nil {
		t.Fatal(err)
	}
	_, used, _ = f.cells.Info(cell)
	if used != 3 {
		t.Errorf("used = %d after regrowth", used)
	}
	// Degenerate arguments.
	if err := f.m.Truncate(uid, -1); err == nil {
		t.Error("negative truncate succeeded")
	}
	if err := f.m.Truncate(999, 0); err == nil {
		t.Error("truncate of inactive segment succeeded")
	}
	// Truncate to zero empties the segment.
	if err := f.m.Truncate(uid, 0); err != nil {
		t.Fatal(err)
	}
	_, used, _ = f.cells.Info(cell)
	if used != 0 {
		t.Errorf("used = %d after truncate to zero", used)
	}
}

// Property: any interleaving of growths and truncations keeps the
// quota cell's count equal to the segment's stored records.
func TestGrowTruncateAccountingProperty(t *testing.T) {
	f := newFixture(t, 16, 512)
	_, cell := f.quotaDir(t, 400)
	uid, a := f.newSeg(t, cell)
	pack, _ := f.vols.Pack("dska")
	rng := func() func() int {
		state := uint64(1977)
		return func() int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state >> 33)
		}
	}()
	for op := 0; op < 120; op++ {
		switch rng() % 3 {
		case 0, 1: // grow a page and dirty it so it is not reclaimed
			page := rng() % 40
			if _, err := f.m.Grow(uid, page, 8, page); err != nil {
				// Re-growing a stored page is rejected; fine.
				continue
			}
			if err := f.m.WriteWord(uid, page*hw.PageWords, hw.Word(op+1)); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := f.m.Truncate(uid, rng()%40); err != nil {
				t.Fatal(err)
			}
		}
		_, used, err := f.cells.Info(cell)
		if err != nil {
			t.Fatal(err)
		}
		e, err := pack.Entry(a.Addr().TOC)
		if err != nil {
			t.Fatal(err)
		}
		if used != e.Records() {
			t.Fatalf("op %d: cell charges %d, segment stores %d records", op, used, e.Records())
		}
	}
}
