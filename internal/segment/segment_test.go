package segment

import (
	"errors"
	"testing"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/vproc"
)

type fixture struct {
	mem    *hw.Memory
	meter  *hw.CostMeter
	vols   *disk.Volumes
	frames *pageframe.Manager
	cells  *quota.Manager
	m      *Manager
}

// newFixture builds the whole lower kernel: wired memory, virtual
// processors, page frames, quota cells, and the segment manager, with
// two packs ("dska" of packA records, "dskb" of 64).
func newFixture(t *testing.T, pageable, packA int) *fixture {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(3 + pageable)
	cm, err := coreseg.NewManager(mem, 3, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, err := cm.Allocate("vp-states", 4*vproc.StateWords)
	if err != nil {
		t.Fatal(err)
	}
	qtable, err := cm.Allocate("quota-table", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	ast, err := cm.Allocate("ast", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	vps, err := vproc.NewManager(4, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(pageframe.PageWriterModule); err != nil {
		t.Fatal(err)
	}
	frames, err := pageframe.NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	if _, err := vols.AddPack("dska", packA); err != nil {
		t.Fatal(err)
	}
	if _, err := vols.AddPack("dskb", 64); err != nil {
		t.Fatal(err)
	}
	cells, err := quota.NewManager(vols, qtable, meter)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(vols, frames, cells, ast, meter)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: mem, meter: meter, vols: vols, frames: frames, cells: cells, m: m}
}

// quotaDir creates a quota directory on dska with the given limit and
// returns its uid and cell name.
func (f *fixture) quotaDir(t *testing.T, limit int) (uint64, quota.CellName) {
	t.Helper()
	uid := f.m.NewUID()
	addr, err := f.m.Create("dska", uid, true, uid)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.cells.InitCell(addr, limit); err != nil {
		t.Fatal(err)
	}
	return uid, addr
}

// newSeg creates and activates a file segment on dska governed by
// cell.
func (f *fixture) newSeg(t *testing.T, cell quota.CellName) (uint64, *ASTE) {
	t.Helper()
	uid := f.m.NewUID()
	addr, err := f.m.Create("dska", uid, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.m.Activate(uid, addr, cell, true)
	if err != nil {
		t.Fatal(err)
	}
	return uid, a
}

func TestActivateBuildsPageTableFromFileMap(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 100)
	uid := f.m.NewUID()
	addr, err := f.m.Create("dska", uid, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pack, _ := f.vols.Pack("dska")
	rec, err := pack.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	if err := pack.UpdateEntry(addr.TOC, func(e *disk.TOCEntry) error {
		e.Map = []disk.FileMapEntry{
			{State: disk.PageStored, Record: rec},
			{State: disk.PageZero},
			{State: disk.PageUnallocated},
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a, err := f.m.Activate(uid, addr, cell, true)
	if err != nil {
		t.Fatal(err)
	}
	pt := a.PageTable()
	d0, _ := pt.Get(0)
	d1, _ := pt.Get(1)
	d2, _ := pt.Get(2)
	if d0.Present || d0.QuotaTrap {
		t.Errorf("stored page descriptor = %+v, want plain missing", d0)
	}
	if !d1.QuotaTrap {
		t.Errorf("zero page descriptor = %+v, want quota trap", d1)
	}
	if !d2.QuotaTrap {
		t.Errorf("unallocated page descriptor = %+v, want quota trap", d2)
	}
	if a.Pages() != 3 || a.Dir() || a.UID() != uid {
		t.Errorf("ASTE = pages %d dir %v uid %d", a.Pages(), a.Dir(), a.UID())
	}
}

func TestActivateValidation(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 10)
	uid, _ := f.newSeg(t, cell)
	a, err := f.m.Lookup(uid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Activate(uid, a.Addr(), cell, true); err == nil {
		t.Error("double activation succeeded")
	}
	if _, err := f.m.Activate(999, a.Addr(), cell, true); err == nil {
		t.Error("activation with wrong uid succeeded")
	}
	if _, err := f.m.Activate(1000, disk.SegAddr{Pack: "none", TOC: 0}, cell, true); err == nil {
		t.Error("activation on unmounted pack succeeded")
	}
	if _, err := f.m.Lookup(424242); !errors.Is(err, ErrNotActive) {
		t.Errorf("Lookup of inactive: %v", err)
	}
}

func TestGrowChargesQuotaAndStoresRecord(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 5)
	uid, a := f.newSeg(t, cell)
	newAddr, err := f.m.Grow(uid, 0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr != nil {
		t.Errorf("relocation on non-full pack: %v", newAddr)
	}
	_, used, err := f.cells.Info(cell)
	if err != nil || used != 1 {
		t.Errorf("quota used = %d, %v", used, err)
	}
	pack, _ := f.vols.Pack("dska")
	e, err := pack.Entry(a.Addr().TOC)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Map) != 1 || e.Map[0].State != disk.PageStored {
		t.Errorf("file map = %+v", e.Map)
	}
	d, _ := a.PageTable().Get(0)
	if !d.Present {
		t.Error("grown page not present")
	}
	// Sparse growth: page 4 extends the map with unallocated holes.
	if _, err := f.m.Grow(uid, 4, 8, 4); err != nil {
		t.Fatal(err)
	}
	e, _ = pack.Entry(a.Addr().TOC)
	if len(e.Map) != 5 {
		t.Fatalf("map length = %d", len(e.Map))
	}
	for i := 1; i < 4; i++ {
		if e.Map[i].State != disk.PageUnallocated {
			t.Errorf("hole page %d = %v", i, e.Map[i].State)
		}
	}
	if e.Records() != 2 {
		t.Errorf("Records = %d, want 2 (holes are free)", e.Records())
	}
}

func TestGrowQuotaExceeded(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 2)
	uid, _ := f.newSeg(t, cell)
	pack, _ := f.vols.Pack("dska")
	usedBefore := pack.UsedRecords()
	for i := 0; i < 2; i++ {
		if _, err := f.m.Grow(uid, i, 8, i); err != nil {
			t.Fatal(err)
		}
	}
	_, err := f.m.Grow(uid, 2, 8, 2)
	if !errors.Is(err, quota.ErrExceeded) {
		t.Fatalf("grow beyond quota: %v", err)
	}
	if pack.UsedRecords() != usedBefore+2 {
		t.Errorf("record leak: used %d, want %d", pack.UsedRecords(), usedBefore+2)
	}
	_, used, _ := f.cells.Info(cell)
	if used != 2 {
		t.Errorf("quota used = %d after failed growth", used)
	}
}

func TestGrowValidation(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 10)
	uid, _ := f.newSeg(t, cell)
	if _, err := f.m.Grow(uid, MaxPages, 8, 0); err == nil {
		t.Error("growth beyond architectural maximum succeeded")
	}
	if _, err := f.m.Grow(uid, -1, 8, 0); err == nil {
		t.Error("negative page accepted")
	}
	if _, err := f.m.Grow(999, 0, 8, 0); !errors.Is(err, ErrNotActive) {
		t.Errorf("grow of inactive segment: %v", err)
	}
	// A segment with no governing cell cannot grow.
	uid2 := f.m.NewUID()
	addr2, err := f.m.Create("dska", uid2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Activate(uid2, addr2, quota.CellName{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Grow(uid2, 0, 8, 0); !errors.Is(err, ErrNoQuotaCell) {
		t.Errorf("grow without cell: %v", err)
	}
	// Growing an already stored page is an error.
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Grow(uid, 0, 8, 0); err == nil {
		t.Error("grow of stored page succeeded")
	}
}

func TestMissingPageRoundTrip(t *testing.T) {
	f := newFixture(t, 2, 64) // tiny memory forces eviction
	_, cell := f.quotaDir(t, 10)
	uid, a := f.newSeg(t, cell)
	// Grow page 0 and dirty it.
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	d, _ := a.PageTable().Get(0)
	if err := f.mem.Write(f.mem.FrameBase(d.Frame), 1234); err != nil {
		t.Fatal(err)
	}
	// Grow two more pages to evict page 0 (write pattern so they
	// are not zero-evicted).
	for i := 1; i <= 2; i++ {
		if _, err := f.m.Grow(uid, i, 8, i); err != nil {
			t.Fatal(err)
		}
		di, _ := a.PageTable().Get(i)
		if err := f.mem.Write(f.mem.FrameBase(di.Frame), hw.Word(i)); err != nil {
			t.Fatal(err)
		}
	}
	d, _ = a.PageTable().Get(0)
	if d.Present {
		t.Fatal("page 0 still present; eviction did not happen")
	}
	// The standard missing-page service brings it back with data.
	if err := f.m.ServiceMissingPage(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	d, _ = a.PageTable().Get(0)
	if !d.Present {
		t.Fatal("page 0 not present after service")
	}
	w, err := f.mem.Read(f.mem.FrameBase(d.Frame))
	if err != nil {
		t.Fatal(err)
	}
	if w != 1234 {
		t.Errorf("page 0 word = %d, want 1234", w)
	}
	// Missing-page service on a never-grown page is rejected: that
	// must take the quota path.
	if err := f.m.ServiceMissingPage(uid, 9, 8, 9); err == nil {
		t.Error("missing-page service of unallocated page succeeded")
	}
}

func TestZeroPageLifecycle(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 10)
	uid, a := f.newSeg(t, cell)
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	_, used, _ := f.cells.Info(cell)
	if used != 1 {
		t.Fatalf("used = %d after growth", used)
	}
	// Deactivate while the page is still all zeros: the page-removal
	// scan turns it into a file-map flag and releases the charge.
	if err := f.m.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	pack, _ := f.vols.Pack("dska")
	e, err := pack.Entry(a.Addr().TOC)
	if err != nil {
		t.Fatal(err)
	}
	if e.Map[0].State != disk.PageZero {
		t.Errorf("file map after zero eviction = %v", e.Map[0].State)
	}
	_, used, _ = f.cells.Info(cell)
	if used != 0 {
		t.Errorf("used = %d after zero eviction, want 0", used)
	}
	// Reactivate: touching the zero page takes the charged path
	// again (the quota-trap bit was set from the file map).
	a2, err := f.m.Activate(uid, a.Addr(), cell, true)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a2.PageTable().Get(0)
	if !d.QuotaTrap {
		t.Errorf("reactivated zero page descriptor = %+v", d)
	}
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	_, used, _ = f.cells.Info(cell)
	if used != 1 {
		t.Errorf("used = %d after re-touch", used)
	}
}

func TestConnectDisconnect(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 10)
	uid, a := f.newSeg(t, cell)
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	dt := hw.NewDescriptorTable(16)
	if err := f.m.Connect(uid, dt, 8, hw.Read|hw.Write, hw.UserRing, hw.UserRing); err != nil {
		t.Fatal(err)
	}
	if f.m.Connections(uid) != 1 {
		t.Errorf("Connections = %d", f.m.Connections(uid))
	}
	proc := hw.NewProcessor(0, f.mem, f.meter)
	proc.UserDT = dt
	proc.Ring = hw.UserRing
	if err := proc.Write(8, 3, 77); err != nil {
		t.Fatal(err)
	}
	w, err := proc.Read(8, 3)
	if err != nil || w != 77 {
		t.Fatalf("read = %d, %v", w, err)
	}
	if err := f.m.Disconnect(uid); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Read(8, 3); !hw.IsFault(err, hw.FaultMissingSegment) {
		t.Errorf("read after disconnect: %v, want missing-segment fault", err)
	}
	_ = a
}

func TestFullPackRelocation(t *testing.T) {
	// dska has only 6 records; dskb has 64. Growing past 6 pages
	// triggers the full-pack exception and the segment moves.
	f := newFixture(t, 16, 6)
	_, cell := f.quotaDir(t, 100)
	uid, a := f.newSeg(t, cell)
	dt := hw.NewDescriptorTable(16)
	if err := f.m.Connect(uid, dt, 8, hw.Read|hw.Write, hw.UserRing, hw.UserRing); err != nil {
		t.Fatal(err)
	}
	// Fill pages 0..4 with recognizable data (the quota dir's entry
	// occupies no records, so 6 are free; keep one spare, then
	// overflow).
	for i := 0; i < 5; i++ {
		if _, err := f.m.Grow(uid, i, 8, i); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
		d, _ := a.PageTable().Get(i)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	packA, _ := f.vols.Pack("dska")
	if packA.FreeRecords() != 1 {
		t.Fatalf("free on dska = %d, fixture assumption broken", packA.FreeRecords())
	}
	if _, err := f.m.Grow(uid, 5, 8, 5); err != nil {
		t.Fatal(err) // takes the last record
	}
	// Dirty page 5 too, or the relocation flush would legitimately
	// zero-collect it and release its charge.
	d5, _ := a.PageTable().Get(5)
	if err := f.mem.Write(f.mem.FrameBase(d5.Frame), 1005); err != nil {
		t.Fatal(err)
	}
	newAddr, err := f.m.Grow(uid, 6, 8, 6)
	if err != nil {
		t.Fatalf("grow with relocation: %v", err)
	}
	if newAddr == nil {
		t.Fatal("no relocation reported on full pack")
	}
	if newAddr.Pack != "dskb" {
		t.Errorf("relocated to %s", newAddr.Pack)
	}
	if a.Addr() != *newAddr {
		t.Errorf("ASTE addr = %v, want %v", a.Addr(), *newAddr)
	}
	// All address spaces were disconnected: the paper's "disconnect
	// all address spaces from the segment".
	if f.m.Connections(uid) != 0 {
		t.Errorf("connections after relocation = %d", f.m.Connections(uid))
	}
	sdw, _ := dt.Get(8)
	if sdw.Present {
		t.Error("descriptor still present after relocation")
	}
	// Old entry is gone; new entry holds all 7 pages.
	if _, err := packA.Entry(disk.TOCIndex(0)); err == nil {
		// entry 0 was the quota dir; the moved segment was entry 1
		if _, err := packA.Entry(disk.TOCIndex(1)); err == nil {
			t.Error("old table-of-contents entry survived relocation")
		}
	}
	packB, _ := f.vols.Pack("dskb")
	e, err := packB.Entry(newAddr.TOC)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Map) != 7 {
		t.Errorf("relocated map has %d pages", len(e.Map))
	}
	// Data survived: service page 0 and check its word.
	if err := f.m.ServiceMissingPage(uid, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	d, _ := a.PageTable().Get(0)
	if !d.Present {
		t.Fatal("page 0 not present")
	}
	w, _ := f.mem.Read(f.mem.FrameBase(d.Frame))
	if w != 1000 {
		t.Errorf("relocated page 0 word = %d, want 1000", w)
	}
	// Quota: 7 pages charged.
	_, used, _ := f.cells.Info(cell)
	if used != 7 {
		t.Errorf("quota used = %d, want 7", used)
	}
}

func TestRelocationOfQuotaDirectoryRebindsCell(t *testing.T) {
	// A quota directory that moves takes its cell with it, and
	// segments bound to the cell follow the new name.
	f := newFixture(t, 16, 4)
	dirUID, cell := f.quotaDir(t, 100)
	dirASTE, err := f.m.Activate(dirUID, cell, cell, true)
	if err != nil {
		t.Fatal(err)
	}
	uid, _ := f.newSeg(t, cell)
	// Fill dska: directory grows its own pages (charged to itself).
	for i := 0; i < 4; i++ {
		if _, err := f.m.Grow(dirUID, i, 4, i); err != nil {
			t.Fatalf("dir grow %d: %v", i, err)
		}
		d, _ := dirASTE.PageTable().Get(i)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), hw.Word(7+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Next directory growth relocates the directory itself.
	newAddr, err := f.m.Grow(dirUID, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr == nil {
		t.Fatal("expected relocation of the quota directory")
	}
	newCell, has := dirASTE.QuotaCell()
	if !has || newCell != *newAddr {
		t.Errorf("directory's own cell = %v, want %v", newCell, *newAddr)
	}
	// The file segment's binding followed.
	fileASTE, err := f.m.Lookup(uid)
	if err != nil {
		t.Fatal(err)
	}
	fileCell, _ := fileASTE.QuotaCell()
	if fileCell != *newAddr {
		t.Errorf("file segment cell = %v, want %v", fileCell, *newAddr)
	}
	// Growth of the file still works against the moved cell.
	if _, err := f.m.Grow(uid, 0, 8, 0); err != nil {
		t.Errorf("grow against moved cell: %v", err)
	}
	_, used, err := f.cells.Info(*newAddr)
	if err != nil {
		t.Fatal(err)
	}
	if used != 6 { // 5 directory pages + 1 file page
		t.Errorf("used = %d, want 6", used)
	}
}

func TestDeactivationOrderUnconstrained(t *testing.T) {
	// The 1974 design could never deactivate a directory whose
	// inferiors were active; the redesign has no such constraint.
	f := newFixture(t, 8, 64)
	dirUID, cell := f.quotaDir(t, 50)
	if _, err := f.m.Activate(dirUID, cell, cell, true); err != nil {
		t.Fatal(err)
	}
	fileUID, _ := f.newSeg(t, cell)
	if _, err := f.m.Grow(fileUID, 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	// Deactivate the directory FIRST, while its inferior is active.
	if err := f.m.Deactivate(dirUID); err != nil {
		t.Fatalf("deactivating superior with active inferior: %v", err)
	}
	// The inferior still works: growth charges the cell even though
	// the owning directory is inactive.
	if _, err := f.m.Grow(fileUID, 1, 8, 1); err != nil {
		t.Errorf("grow after superior deactivated: %v", err)
	}
	if err := f.m.Deactivate(fileUID); err != nil {
		t.Fatal(err)
	}
	if f.m.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d", f.m.ActiveCount())
	}
}

func TestDelete(t *testing.T) {
	f := newFixture(t, 8, 64)
	_, cell := f.quotaDir(t, 10)
	uid, a := f.newSeg(t, cell)
	for i := 0; i < 3; i++ {
		if _, err := f.m.Grow(uid, i, 8, i); err != nil {
			t.Fatal(err)
		}
		d, _ := a.PageTable().Get(i)
		if err := f.mem.Write(f.mem.FrameBase(d.Frame), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Flush so the records really exist on disk.
	if err := f.m.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	a2, err := f.m.Activate(uid, a.Addr(), cell, true)
	if err != nil {
		t.Fatal(err)
	}
	pack, _ := f.vols.Pack("dska")
	usedBefore := pack.UsedRecords()
	if err := f.m.Delete(uid, a2.Addr()); err != nil {
		t.Fatal(err)
	}
	if pack.UsedRecords() != usedBefore-3 {
		t.Errorf("records not freed: %d, want %d", pack.UsedRecords(), usedBefore-3)
	}
	_, used, _ := f.cells.Info(cell)
	if used != 0 {
		t.Errorf("quota used = %d after delete", used)
	}
	if _, err := f.m.Lookup(uid); !errors.Is(err, ErrNotActive) {
		t.Errorf("deleted segment still active: %v", err)
	}
}

func TestASTCapacity(t *testing.T) {
	f := newFixture(t, 4, 64)
	_, cell := f.quotaDir(t, 1000)
	cap := f.m.Capacity()
	if cap != hw.PageWords/ASTEWords {
		t.Fatalf("Capacity = %d", cap)
	}
	var uids []uint64
	for i := 0; i < cap; i++ {
		uid := f.m.NewUID()
		addr, err := f.m.Create("dskb", uid, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.m.Activate(uid, addr, cell, true); err != nil {
			t.Fatalf("activate %d: %v", i, err)
		}
		uids = append(uids, uid)
	}
	uid := f.m.NewUID()
	addr, err := f.m.Create("dskb", uid, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Activate(uid, addr, cell, true); !errors.Is(err, ErrASTFull) {
		t.Errorf("activation beyond AST capacity: %v", err)
	}
	if err := f.m.Deactivate(uids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Activate(uid, addr, cell, true); err != nil {
		t.Errorf("activation after slot freed: %v", err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, nil, nil, nil, nil); err == nil {
		t.Error("nil AST accepted")
	}
}
