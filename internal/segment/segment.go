// Package segment implements the segment manager and its active
// segment table (AST).
//
// A segment object is a growable array of pages whose permanent home
// is a table-of-contents entry on one disk pack. The manager
// activates segments (builds their page tables and enters them in the
// AST), services their missing-page and growth faults by calling down
// to the quota cell and page frame managers, and deactivates them.
//
// Two structural properties distinguish this design from the 1974
// supervisor, both taken from the paper:
//
//   - The governing quota cell of a segment is bound statically at
//     activation: the caller (the known segment manager, which learned
//     it from the directory manager) presents the cell's name, and the
//     segment manager simply forwards it to the quota cell manager
//     when quota must be checked. No upward search of the directory
//     hierarchy happens here, so the AST is free of the hierarchy's
//     shape and segments can be activated and deactivated in any
//     order.
//
//   - A full-pack exception from the page frame manager is handled by
//     relocation: the manager disconnects every address space from the
//     segment, moves it to the emptiest pack, and returns the new pack
//     identifier and table-of-contents index up the call chain so the
//     directory manager (reached by upward signal, above us) can
//     update the directory entry.
package segment

import (
	"errors"
	"fmt"

	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/pageframe"
	"multics/internal/quota"
)

// ModuleName is this manager's name in the kernel dependency graph;
// its lock ranks at the active-segment layer of the lattice.
const ModuleName = "active-segment-manager"

// MaxPages is the architectural maximum segment length in pages
// (256K words).
const MaxPages = 256

// ASTEWords is the size of one active-segment-table entry in the AST
// core segment.
const ASTEWords = 8

// ErrASTFull is returned when the fixed active segment table has no
// free entry.
var ErrASTFull = errors.New("segment: active segment table full")

// ErrNotActive is returned for operations on a segment that is not in
// the active segment table.
var ErrNotActive = errors.New("segment: not active")

// ErrNoQuotaCell is returned when a segment with no governing quota
// cell tries to grow.
var ErrNoQuotaCell = errors.New("segment: no governing quota cell")

// ErrGrowRace is returned when a quota-fault service observes a page
// that the file map still calls stored. That is the window of a
// zero-page reclaim on another processor: the trap bit goes onto the
// page descriptor first and the record is freed a moment later, so a
// reference that faults in between sees the trap with a stale map.
// The service should simply retry the reference; by the time it
// faults again the reclaim has finished and the growth path applies.
var ErrGrowRace = errors.New("segment: page mid-reclaim")

// A CellRef names an optional governing quota cell, for callers that
// carry the binding around before activation. UID is the unique
// identifier of the quota directory owning the cell; it is recorded
// on disk in the table-of-contents entries of governed segments so
// the volume salvager can recompute used-counts.
type CellRef struct {
	Cell quota.CellName
	UID  uint64
	Has  bool
}

// A Conn records one address-space connection to an active segment.
type Conn struct {
	DT    *hw.DescriptorTable
	Segno int
}

// An ASTE is one active-segment-table entry.
type ASTE struct {
	uid     uint64
	addr    disk.SegAddr
	pt      *hw.PageTable
	cell    quota.CellName
	hasCell bool
	dir     bool
	slot    int
	mapLen  int
	conns   []Conn
	// lastFault remembers the previous missing-page fault's page
	// number (protected by the manager lock): a fault on the very
	// next page is a sequential pattern and opens the read-ahead
	// window. Initialized to -2 so page 0 alone never looks
	// sequential.
	lastFault int
}

// UID returns the segment's unique identifier.
func (a *ASTE) UID() uint64 { return a.uid }

// Addr returns the segment's current disk address.
func (a *ASTE) Addr() disk.SegAddr { return a.addr }

// PageTable returns the segment's page table.
func (a *ASTE) PageTable() *hw.PageTable { return a.pt }

// Dir reports whether the segment holds a directory.
func (a *ASTE) Dir() bool { return a.dir }

// QuotaCell returns the statically bound governing quota cell.
func (a *ASTE) QuotaCell() (quota.CellName, bool) { return a.cell, a.hasCell }

// Pages reports the current length of the segment's file map in
// pages (the page table itself always spans the architectural
// maximum).
func (a *ASTE) Pages() int { return a.mapLen }

// astStore is the interface the AST needs from its core segment; it
// matches *coreseg.Segment.
type astStore interface {
	Words() int
	Write(off int, w hw.Word) error
}

// A Manager is the segment manager.
type Manager struct {
	vols   *disk.Volumes
	frames *pageframe.Manager
	cells  *quota.Manager
	ast    astStore
	meter  *hw.CostMeter

	// Bus broadcasts associative-memory shootdowns when a segment
	// descriptor is installed or severed; a nil bus does nothing.
	Bus *hw.ShootdownBus

	mu      lockrank.Mutex
	byUID   map[uint64]*ASTE
	slots   []bool
	nextUID uint64
	// spreadNext is the round-robin position of SpreadPack's
	// rotation over the mounted packs.
	spreadNext int
}

// ReadAheadWindow is how many stored pages beyond a sequential fault
// the segment manager names for speculative reading. The window stops
// early at the first non-stored page: zero and never-used pages take
// the quota path, not the disk.
const ReadAheadWindow = 4

// SpreadPack returns the next pack of a round-robin rotation over the
// mounted packs. Multi-pack configurations use it to place new files:
// Volumes.Emptiest breaks its ties lexicographically, so a burst of
// empty files would otherwise all land on the first pack and their
// faults would serialize behind one device arm.
func (m *Manager) SpreadPack() string {
	ids := m.vols.Packs()
	if len(ids) == 0 {
		return ""
	}
	m.mu.Lock()
	id := ids[m.spreadNext%len(ids)]
	m.spreadNext++
	m.mu.Unlock()
	return id
}

// NewManager returns a segment manager whose active segment table
// lives in the core segment ast.
func NewManager(vols *disk.Volumes, frames *pageframe.Manager, cells *quota.Manager, ast astStore, meter *hw.CostMeter) (*Manager, error) {
	if ast == nil || ast.Words() < ASTEWords {
		return nil, errors.New("segment: AST core segment too small")
	}
	m := &Manager{
		vols:    vols,
		frames:  frames,
		cells:   cells,
		ast:     ast,
		meter:   meter,
		byUID:   make(map[uint64]*ASTE),
		slots:   make([]bool, ast.Words()/ASTEWords),
		nextUID: 1,
	}
	m.mu.Init(ModuleName)
	return m, nil
}

// Capacity reports the fixed number of AST entries.
func (m *Manager) Capacity() int { return len(m.slots) }

// ActiveCount reports the number of active segments.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byUID)
}

// NewUID issues a fresh segment unique identifier.
func (m *Manager) NewUID() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	uid := m.nextUID
	m.nextUID++
	return uid
}

// Create makes a new, empty segment on the named pack and returns its
// disk address. gov names, by unique identifier, the quota directory
// whose cell will be charged for the segment's pages (zero for a
// segment that never grows); it is recorded in the table-of-contents
// entry so storage accounting stays recomputable after a crash.
func (m *Manager) Create(packID string, uid uint64, dir bool, gov uint64) (disk.SegAddr, error) {
	pack, err := m.vols.Pack(packID)
	if err != nil {
		return disk.SegAddr{}, err
	}
	idx, err := pack.CreateEntry(uid, dir, gov)
	if err != nil {
		return disk.SegAddr{}, fmt.Errorf("segment: creating %d on pack %s: %w", uid, packID, err)
	}
	return disk.SegAddr{Pack: packID, TOC: idx}, nil
}

// SetGov rebinds the on-disk governing-cell record of the entry at
// addr. The directory manager calls it when a quota designation (or
// its removal) changes which cell a directory's own pages charge.
func (m *Manager) SetGov(addr disk.SegAddr, gov uint64) error {
	pack, err := m.vols.Pack(addr.Pack)
	if err != nil {
		return err
	}
	return pack.UpdateEntry(addr.TOC, func(e *disk.TOCEntry) error {
		e.Gov = gov
		return nil
	})
}

// Activate enters the segment at addr into the active segment table,
// building its page table from the file map. cell names the governing
// quota cell the caller bound statically; hasCell is false only for
// segments that must never grow. If the segment is itself a quota
// directory, its cell is presented to the quota cell manager.
//
// Unlike the 1974 design, activation has no hierarchy constraints:
// any segment can be activated or deactivated regardless of the state
// of its directory's superiors or inferiors.
func (m *Manager) Activate(uid uint64, addr disk.SegAddr, cell quota.CellName, hasCell bool) (*ASTE, error) {
	pack, err := m.vols.Pack(addr.Pack)
	if err != nil {
		return nil, err
	}
	e, err := pack.Entry(addr.TOC)
	if err != nil {
		return nil, err
	}
	if e.UID != uid {
		return nil, fmt.Errorf("segment: %v holds segment %d, not %d", addr, e.UID, uid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byUID[uid]; ok {
		return nil, fmt.Errorf("segment: %d already active", uid)
	}
	slot := -1
	for i, taken := range m.slots {
		if !taken {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, ErrASTFull
	}
	// The page table spans the architectural maximum: every page
	// beyond the file map (and every zero or unallocated page within
	// it) carries the exception-causing bit, so its first touch
	// raises a quota fault above page control instead of a plain
	// missing-page fault. Stored pages fault missing-page.
	pt := hw.NewPageTable(MaxPages, false)
	for i := 0; i < MaxPages; i++ {
		if i < len(e.Map) && e.Map[i].State == disk.PageStored {
			_ = pt.Set(i, hw.PTW{})
		} else {
			_ = pt.Set(i, hw.PTW{QuotaTrap: true})
		}
	}
	a := &ASTE{uid: uid, addr: addr, pt: pt, cell: cell, hasCell: hasCell, dir: e.Dir, slot: slot, mapLen: len(e.Map), lastFault: -2}
	m.slots[slot] = true
	m.byUID[uid] = a
	_ = m.ast.Write(slot*ASTEWords, hw.Word(uid).Masked())
	// A quota directory's own cell is presented to the quota cell
	// manager on activation.
	if e.Dir && e.Quota.Valid && !m.cells.Active(addr) {
		if err := m.cells.Activate(addr); err != nil {
			delete(m.byUID, uid)
			m.slots[slot] = false
			return nil, err
		}
	}
	return a, nil
}

// Lookup returns the AST entry for uid.
func (m *Manager) Lookup(uid uint64) (*ASTE, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byUID[uid]
	if !ok {
		return nil, fmt.Errorf("%w: segment %d", ErrNotActive, uid)
	}
	return a, nil
}

// ensureCell lazily loads a quota cell into the primary-memory table.
// Because cells live in table-of-contents entries, not in directory
// segments, charging needs no directory to be active — the property
// that frees deactivation from the hierarchy's shape.
func (m *Manager) ensureCell(cell quota.CellName) error {
	if m.cells.Active(cell) {
		return nil
	}
	return m.cells.Activate(cell)
}

// Connect installs the segment in an address space at segment number
// segno with the given access, and records the connection so
// relocation can sever it.
func (m *Manager) Connect(uid uint64, dt *hw.DescriptorTable, segno int, access hw.AccessMode, maxRing, writeRing int) error {
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	if err := dt.Set(segno, hw.SDW{
		Present: true, Table: a.pt, Access: access,
		MaxRing: maxRing, WriteRing: writeRing,
	}); err != nil {
		return err
	}
	// A stale cached descriptor for this segment number (a previous
	// connection) must not outlive the new one.
	m.Bus.InvalidateSDW(ModuleName, dt, segno)
	m.mu.Lock()
	defer m.mu.Unlock()
	a.conns = append(a.conns, Conn{DT: dt, Segno: segno})
	return nil
}

// Disconnect severs every address-space connection to the segment;
// subsequent references take missing-segment faults and reconnect via
// the standard machinery.
func (m *Manager) Disconnect(uid uint64) error {
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	m.mu.Lock()
	conns := a.conns
	a.conns = nil
	m.mu.Unlock()
	for _, c := range conns {
		if err := c.DT.Clear(c.Segno); err != nil {
			return err
		}
		// No processor may keep translating through the severed
		// descriptor: broadcast before the caller goes on to move
		// or destroy the segment's pages.
		m.Bus.InvalidateSDW(ModuleName, c.DT, c.Segno)
	}
	return nil
}

// Connections reports the number of live address-space connections.
func (m *Manager) Connections(uid uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byUID[uid]
	if !ok {
		return 0
	}
	return len(a.conns)
}

// ServiceMissingPage brings a stored page into primary memory: the
// missing-page fault path. notifySeg/notifyPage name the faulting
// descriptor address for waiter notification.
func (m *Manager) ServiceMissingPage(uid uint64, page, notifySeg, notifyPage int) error {
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	pack, err := m.vols.Pack(a.addr.Pack)
	if err != nil {
		return err
	}
	e, err := pack.Entry(a.addr.TOC)
	if err != nil {
		return err
	}
	if page < 0 || page >= len(e.Map) {
		return fmt.Errorf("segment: page %d outside file map of %d pages", page, len(e.Map))
	}
	fm := e.Map[page]
	if fm.State != disk.PageStored {
		return fmt.Errorf("segment: page %d of %d is %v, not stored; growth must take the quota path", page, uid, fm.State)
	}
	// A fault on the page right after this segment's previous fault
	// is a sequential pattern: name the next stored pages (up to the
	// window, stopping at the first hole) for speculative reads on
	// the pack's elevator queue.
	m.mu.Lock()
	seq := a.lastFault == page-1
	a.lastFault = page
	m.mu.Unlock()
	var ahead []pageframe.ReadAheadPage
	if seq {
		for next := page + 1; next <= page+ReadAheadWindow && next < len(e.Map); next++ {
			if e.Map[next].State != disk.PageStored {
				break
			}
			ahead = append(ahead, pageframe.ReadAheadPage{Page: next, Record: e.Map[next].Record})
		}
	}
	ev, err := m.frames.LoadPage(pageframe.PageReq{
		UID: uid, PT: a.pt, Page: page,
		Pack: pack, Record: fm.Record, HasRecord: true,
		NotifySeg: notifySeg, NotifyPage: notifyPage,
		ReadAhead: ahead,
	})
	if err2 := m.applyEvictions(ev); err2 != nil && err == nil {
		err = err2
	}
	return err
}

// Grow services a quota fault: the first touch of a never-before-used
// or zero page. It charges the governing quota cell, then calls the
// page frame manager to add the page. When the pack is full the
// segment is relocated to the emptiest pack and the new disk address
// is returned (non-nil) so the caller can signal the directory manager
// to update the directory entry; the grown page is retried on the new
// pack.
func (m *Manager) Grow(uid uint64, page, notifySeg, notifyPage int) (*disk.SegAddr, error) {
	a, err := m.Lookup(uid)
	if err != nil {
		return nil, err
	}
	if page < 0 || page >= MaxPages {
		return nil, fmt.Errorf("segment: page %d beyond architectural maximum %d", page, MaxPages)
	}
	if !a.hasCell {
		return nil, fmt.Errorf("%w: segment %d", ErrNoQuotaCell, uid)
	}
	if err := m.ensureCell(a.cell); err != nil {
		return nil, err
	}
	pack, err := m.vols.Pack(a.addr.Pack)
	if err != nil {
		return nil, err
	}
	e, err := pack.Entry(a.addr.TOC)
	if err != nil {
		return nil, err
	}
	if page < len(e.Map) && e.Map[page].State == disk.PageStored {
		// Count the lost race before reporting it: the retry is
		// invisible to the caller (the fault service returns clean and
		// the reference is simply reissued), so without the counter
		// the window's tests could pass vacuously.
		m.cells.NoteGrowRace()
		return nil, fmt.Errorf("%w: page %d of %d still stored", ErrGrowRace, page, uid)
	}
	// Check and charge quota: the O(1) static-cell probe.
	if err := m.cells.Charge(a.cell, 1); err != nil {
		return nil, err
	}
	// The descriptor is published with the lock bit held (KeepLocked)
	// and released only after the file map names the new page: between
	// the two, a concurrent eviction could otherwise zero-reclaim the
	// still-zero frame and free its record while this call goes on to
	// mark the map stored — a map entry naming a freed record.
	req := pageframe.PageReq{
		UID: uid, PT: a.pt, Page: page, Pack: pack,
		NotifySeg: notifySeg, NotifyPage: notifyPage, KeepLocked: true,
	}
	rec, ev, err := m.frames.AddPage(req)
	locked := err == nil
	defer func() {
		if locked {
			m.frames.Unlock(req)
		}
	}()
	if aerr := m.applyEvictions(ev); aerr != nil {
		return nil, aerr
	}
	if errors.Is(err, disk.ErrPackFull) {
		// The full-pack exception, returned up the call chain:
		// relocate and retry on the new pack.
		newAddr, rerr := m.relocate(a)
		if rerr != nil {
			_ = m.cells.Release(a.cell, 1)
			if newAddr != (disk.SegAddr{}) {
				// The move committed before the failing step; report
				// the new address so the directory entry is updated.
				return &newAddr, fmt.Errorf("segment: relocating %d after full pack: %w", uid, rerr)
			}
			return nil, fmt.Errorf("segment: relocating %d after full pack: %w", uid, rerr)
		}
		newPack, perr := m.vols.Pack(newAddr.Pack)
		if perr != nil {
			return &newAddr, perr
		}
		req = pageframe.PageReq{
			UID: uid, PT: a.pt, Page: page, Pack: newPack,
			NotifySeg: notifySeg, NotifyPage: notifyPage, KeepLocked: true,
		}
		rec, ev, err = m.frames.AddPage(req)
		locked = err == nil
		if aerr := m.applyEvictions(ev); aerr != nil {
			return &newAddr, aerr
		}
		if err != nil {
			_ = m.cells.Release(a.cell, 1)
			return &newAddr, err
		}
		if err := m.setMapEntry(newAddr, page, disk.FileMapEntry{State: disk.PageStored, Record: rec}); err != nil {
			return &newAddr, err
		}
		m.noteMapLen(a, page+1)
		return &newAddr, nil
	}
	if err != nil {
		_ = m.cells.Release(a.cell, 1)
		return nil, err
	}
	if err := m.setMapEntry(a.addr, page, disk.FileMapEntry{State: disk.PageStored, Record: rec}); err != nil {
		return nil, err
	}
	m.noteMapLen(a, page+1)
	return nil, nil
}

// noteMapLen records growth of the file map.
func (m *Manager) noteMapLen(a *ASTE, n int) {
	m.mu.Lock()
	if n > a.mapLen {
		a.mapLen = n
	}
	m.mu.Unlock()
}

// setMapEntry updates one file-map entry, extending the map with
// unallocated entries as needed.
func (m *Manager) setMapEntry(addr disk.SegAddr, page int, fm disk.FileMapEntry) error {
	pack, err := m.vols.Pack(addr.Pack)
	if err != nil {
		return err
	}
	return pack.UpdateEntry(addr.TOC, func(e *disk.TOCEntry) error {
		for len(e.Map) <= page {
			e.Map = append(e.Map, disk.FileMapEntry{State: disk.PageUnallocated})
		}
		e.Map[page] = fm
		return nil
	})
}

// applyEvictions folds the page frame manager's eviction reports into
// the owning segments' file maps and quota accounting: a zero page
// becomes a file-map flag and releases its storage charge.
func (m *Manager) applyEvictions(evs []pageframe.Evicted) error {
	for _, ev := range evs {
		m.mu.Lock()
		a, ok := m.byUID[ev.UID]
		m.mu.Unlock()
		if !ok {
			return fmt.Errorf("segment: eviction report for inactive segment %d", ev.UID)
		}
		if ev.Zero {
			if err := m.setMapEntry(a.addr, ev.Page, disk.FileMapEntry{State: disk.PageZero}); err != nil {
				return err
			}
			if ev.FreedRecord && a.hasCell {
				if err := m.ensureCell(a.cell); err != nil {
					return err
				}
				if err := m.cells.Release(a.cell, 1); err != nil {
					return err
				}
			}
		}
		// A non-zero eviction was written back in place; the file
		// map already names its record.
	}
	return nil
}

// relocate moves an active segment, whose pack is full, to the
// emptiest mounted pack: flush resident pages, copy every stored
// record, move the table-of-contents entry (including any quota
// cell), sever all address-space connections, and update the AST.
func (m *Manager) relocate(a *ASTE) (disk.SegAddr, error) {
	oldPack, err := m.vols.Pack(a.addr.Pack)
	if err != nil {
		return disk.SegAddr{}, err
	}
	// Flush resident pages so the table-of-contents entry is the
	// whole truth.
	ev, err := m.frames.ReleaseSegment(a.pt)
	if err != nil {
		return disk.SegAddr{}, err
	}
	if err := m.applyEvictions(ev); err != nil {
		return disk.SegAddr{}, err
	}
	newPack, err := m.vols.Emptiest(a.addr.Pack)
	if err != nil {
		return disk.SegAddr{}, err
	}
	e, err := oldPack.Entry(a.addr.TOC)
	if err != nil {
		return disk.SegAddr{}, err
	}
	// If the moving segment is a quota directory whose cell is
	// cached, flush the live count into the old entry before the
	// copy, so the cell survives the move intact.
	cellActive := e.Quota.Valid && m.cells.Active(a.addr)
	if cellActive {
		if err := m.cells.Deactivate(a.addr); err != nil {
			return disk.SegAddr{}, err
		}
		if e, err = oldPack.Entry(a.addr.TOC); err != nil {
			_ = m.cells.Activate(a.addr)
			return disk.SegAddr{}, err
		}
	}
	if newPack.FreeRecords() < e.Records()+1 {
		if cellActive {
			_ = m.cells.Activate(a.addr)
		}
		return disk.SegAddr{}, fmt.Errorf("segment: no pack can hold segment %d (%d records)", a.uid, e.Records()+1)
	}
	// Relocation is a multi-step update of two tables of contents, so
	// it must be interruptible at every step without corruption. abort
	// undoes the visible effects of a failed move — copied records are
	// freed, the half-built new entry is deleted, and a flushed quota
	// cell is re-cached under its old name — leaving the pre-relocation
	// state for a clean retry. After a simulated crash the undo writes
	// fail too; then the pack stays dirty and the volume salvager
	// repairs the leftovers at reboot.
	var (
		haveNew   bool
		newIdx    disk.TOCIndex
		copied    []disk.RecordAddr
		installed bool
	)
	abort := func(cause error) (disk.SegAddr, error) {
		if haveNew {
			if !installed {
				// The copied records are not yet named by the new
				// entry's file map; free them individually.
				for _, r := range copied {
					_ = newPack.FreeRecord(r)
				}
			}
			_ = newPack.DeleteEntry(newIdx)
		}
		if cellActive {
			_ = m.cells.Activate(a.addr)
		}
		return disk.SegAddr{}, cause
	}
	newIdx, err = newPack.CreateEntry(a.uid, a.dir, e.Gov)
	if err != nil {
		return abort(fmt.Errorf("segment: relocating %d: %w", a.uid, err))
	}
	haveNew = true
	newAddr := disk.SegAddr{Pack: newPack.ID(), TOC: newIdx}
	buf := make([]hw.Word, hw.PageWords)
	newMap := make([]disk.FileMapEntry, len(e.Map))
	for i, fm := range e.Map {
		newMap[i] = fm
		if fm.State != disk.PageStored {
			continue
		}
		var rec disk.RecordAddr
		if err := disk.Retry(m.meter, func() error {
			var aerr error
			rec, aerr = newPack.AllocRecord()
			return aerr
		}); err != nil {
			return abort(fmt.Errorf("segment: relocating %d, allocating for page %d: %w", a.uid, i, err))
		}
		copied = append(copied, rec)
		if err := disk.Retry(m.meter, func() error {
			return oldPack.ReadRecord(fm.Record, buf)
		}); err != nil {
			return abort(fmt.Errorf("segment: relocating %d, reading page %d: %w", a.uid, i, err))
		}
		if err := disk.Retry(m.meter, func() error {
			return newPack.WriteRecord(rec, buf)
		}); err != nil {
			return abort(fmt.Errorf("segment: relocating %d, writing page %d: %w", a.uid, i, err))
		}
		newMap[i].Record = rec
	}
	if err := newPack.UpdateEntry(newIdx, func(ne *disk.TOCEntry) error {
		ne.Map = newMap
		ne.Quota = e.Quota
		return nil
	}); err != nil {
		return abort(fmt.Errorf("segment: relocating %d, installing file map: %w", a.uid, err))
	}
	installed = true
	// The new copy is complete; deleting the old entry is the commit
	// point. Before it, aborting restores the original. After it, the
	// segment lives at newAddr, and any later failure is reported
	// alongside that address so callers still record the move.
	if err := oldPack.DeleteEntry(a.addr.TOC); err != nil {
		return abort(fmt.Errorf("segment: relocating %d, deleting old entry: %w", a.uid, err))
	}
	// Rehome the cached cell under its new name. On failure the cell
	// stays safely flushed in the new entry, and charging reactivates
	// it lazily, so the move itself stands.
	var postErr error
	if cellActive {
		if err := m.cells.Activate(newAddr); err != nil {
			postErr = fmt.Errorf("segment: relocated %d but its quota cell is not cached: %w", a.uid, err)
		}
	}
	// Sever the address spaces; processes reconnect through the
	// missing-segment machinery.
	if err := m.Disconnect(a.uid); err != nil && postErr == nil {
		postErr = err
	}
	oldAddr := a.addr
	m.mu.Lock()
	a.addr = newAddr
	// The move renamed any quota cell stored in the entry; rebind
	// every active segment charging against the old name.
	if e.Quota.Valid {
		for _, other := range m.byUID {
			if other.hasCell && other.cell == oldAddr {
				other.cell = newAddr
			}
		}
	}
	m.mu.Unlock()
	return newAddr, postErr
}

// DiskEntry returns a copy of the table-of-contents entry at addr,
// for modules above that need a segment's stored attributes.
func (m *Manager) DiskEntry(addr disk.SegAddr) (disk.TOCEntry, error) {
	pack, err := m.vols.Pack(addr.Pack)
	if err != nil {
		return disk.TOCEntry{}, err
	}
	return pack.Entry(addr.TOC)
}

// EnsureResident makes the given page of an active segment present,
// dispatching to the growth path (for unallocated and zero pages,
// which carry the quota-trap bit) or the missing-page path as the
// descriptor demands — the same triage the hardware exceptions
// perform for user references, available to kernel modules writing
// their own objects. A non-nil disk address reports a relocation the
// caller must record.
func (m *Manager) EnsureResident(uid uint64, page int) (*disk.SegAddr, error) {
	a, err := m.Lookup(uid)
	if err != nil {
		return nil, err
	}
	if page >= a.pt.Len() {
		return m.Grow(uid, page, 0, page)
	}
	d, err := a.pt.Get(page)
	if err != nil {
		return nil, err
	}
	switch {
	case d.Present:
		return nil, nil
	case d.QuotaTrap:
		return m.Grow(uid, page, 0, page)
	default:
		return nil, m.ServiceMissingPage(uid, page, 0, page)
	}
}

// WriteWord stores w at word offset off of an active, resident page
// (see EnsureResident). Kernel modules use it to maintain the objects
// they store in segments.
func (m *Manager) WriteWord(uid uint64, off int, w hw.Word) error {
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	page := hw.PageOf(off)
	d, err := a.pt.Get(page)
	if err != nil {
		return err
	}
	if !d.Present {
		return fmt.Errorf("segment: write to non-resident page %d of %d", page, uid)
	}
	if _, err := a.pt.Update(page, func(p *hw.PTW) { p.Modified = true; p.Used = true }); err != nil {
		return err
	}
	m.meter.Add(hw.CycMemRef)
	return m.frames.Mem().Write(m.frames.Mem().FrameBase(d.Frame)+off%hw.PageWords, w)
}

// ReadWord loads the word at offset off of an active, resident page.
func (m *Manager) ReadWord(uid uint64, off int) (hw.Word, error) {
	a, err := m.Lookup(uid)
	if err != nil {
		return 0, err
	}
	page := hw.PageOf(off)
	d, err := a.pt.Get(page)
	if err != nil {
		return 0, err
	}
	if !d.Present {
		return 0, fmt.Errorf("segment: read of non-resident page %d of %d", page, uid)
	}
	if _, err := a.pt.Update(page, func(p *hw.PTW) { p.Used = true }); err != nil {
		return 0, err
	}
	m.meter.Add(hw.CycMemRef)
	return m.frames.Mem().Read(m.frames.Mem().FrameBase(d.Frame) + off%hw.PageWords)
}

// EachActive calls fn for every active segment.
func (m *Manager) EachActive(fn func(*ASTE)) {
	m.mu.Lock()
	astes := make([]*ASTE, 0, len(m.byUID))
	for _, a := range m.byUID {
		astes = append(astes, a)
	}
	m.mu.Unlock()
	for _, a := range astes {
		fn(a)
	}
}

// Audit checks the manager's invariants: every active segment's page
// table must agree with its file map (a present or locked page is a
// stored page; a quota-trap page is not), and the table-of-contents
// entry must exist and carry the segment's uid.
func (m *Manager) Audit() []string {
	var bad []string
	m.EachActive(func(a *ASTE) {
		e, err := m.DiskEntry(a.Addr())
		if err != nil {
			bad = append(bad, fmt.Sprintf("segment %d: table-of-contents entry unreadable: %v", a.uid, err))
			return
		}
		if e.UID != a.uid {
			bad = append(bad, fmt.Sprintf("segment %d: entry at %v holds uid %d", a.uid, a.Addr(), e.UID))
			return
		}
		for page := 0; page < a.pt.Len(); page++ {
			d, err := a.pt.Get(page)
			if err != nil {
				bad = append(bad, fmt.Sprintf("segment %d page %d: %v", a.uid, page, err))
				continue
			}
			stored := page < len(e.Map) && e.Map[page].State == disk.PageStored
			switch {
			case d.Present && !stored:
				bad = append(bad, fmt.Sprintf("segment %d page %d resident but file map says %v", a.uid, page, stateOf(e.Map, page)))
			case d.QuotaTrap && stored:
				bad = append(bad, fmt.Sprintf("segment %d page %d stored but descriptor still traps for quota", a.uid, page))
			case !d.Present && !d.QuotaTrap && !stored && !d.Lock:
				bad = append(bad, fmt.Sprintf("segment %d page %d is unreachable: not present, not trapped, not stored", a.uid, page))
			}
		}
	})
	return bad
}

func stateOf(m []disk.FileMapEntry, page int) disk.PageState {
	if page < len(m) {
		return m[page].State
	}
	return disk.PageUnallocated
}

// Deactivate removes the segment from the AST, flushing its resident
// pages. No hierarchy constraint applies.
func (m *Manager) Deactivate(uid uint64) error {
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	ev, err := m.frames.ReleaseSegment(a.pt)
	if err != nil {
		return err
	}
	if err := m.applyEvictions(ev); err != nil {
		return err
	}
	if err := m.Disconnect(uid); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byUID, uid)
	m.slots[a.slot] = false
	_ = m.ast.Write(a.slot*ASTEWords, 0)
	return nil
}

// Truncate discards every page of an active segment at or beyond
// newPages: resident frames are dropped without write-back, stored
// records are freed, and the released pages are returned to the
// governing quota cell. Truncation to zero empties the segment
// without destroying it.
func (m *Manager) Truncate(uid uint64, newPages int) error {
	if newPages < 0 {
		return fmt.Errorf("segment: truncate to %d pages", newPages)
	}
	a, err := m.Lookup(uid)
	if err != nil {
		return err
	}
	pack, err := m.vols.Pack(a.addr.Pack)
	if err != nil {
		return err
	}
	// Collect the records under the entry lock; free them after
	// (FreeRecord takes the same pack lock).
	var toFree []disk.RecordAddr
	if err := pack.UpdateEntry(a.addr.TOC, func(e *disk.TOCEntry) error {
		for page := newPages; page < len(e.Map); page++ {
			if e.Map[page].State == disk.PageStored {
				toFree = append(toFree, e.Map[page].Record)
			}
			e.Map[page] = disk.FileMapEntry{State: disk.PageUnallocated}
		}
		if len(e.Map) > newPages {
			e.Map = e.Map[:newPages]
		}
		return nil
	}); err != nil {
		return err
	}
	for _, rec := range toFree {
		if err := pack.FreeRecord(rec); err != nil {
			return err
		}
	}
	freed := len(toFree)
	// Drop resident frames and restore the quota-trap bits so the
	// truncated region grows through the charged path again.
	for page := newPages; page < MaxPages; page++ {
		m.frames.DropPage(a.pt, page)
		if _, err := a.pt.Update(page, func(d *hw.PTW) {
			*d = hw.PTW{QuotaTrap: true}
		}); err != nil {
			return err
		}
	}
	m.mu.Lock()
	if a.mapLen > newPages {
		a.mapLen = newPages
	}
	m.mu.Unlock()
	if freed > 0 && a.hasCell {
		if err := m.ensureCell(a.cell); err != nil {
			return err
		}
		return m.cells.Release(a.cell, freed)
	}
	return nil
}

// Delete destroys a segment: deactivates it if active and deletes its
// table-of-contents entry, releasing its storage charge.
func (m *Manager) Delete(uid uint64, addr disk.SegAddr) error {
	m.mu.Lock()
	a, active := m.byUID[uid]
	m.mu.Unlock()
	var cell quota.CellName
	var hasCell bool
	if active {
		addr = a.addr
		cell, hasCell = a.cell, a.hasCell
		for i := 0; i < a.pt.Len(); i++ {
			m.frames.DropPage(a.pt, i)
		}
		if err := m.Disconnect(uid); err != nil {
			return err
		}
		m.mu.Lock()
		delete(m.byUID, uid)
		m.slots[a.slot] = false
		_ = m.ast.Write(a.slot*ASTEWords, 0)
		m.mu.Unlock()
	}
	pack, err := m.vols.Pack(addr.Pack)
	if err != nil {
		return err
	}
	e, err := pack.Entry(addr.TOC)
	if err != nil {
		return err
	}
	stored := e.Records()
	if err := pack.DeleteEntry(addr.TOC); err != nil {
		return err
	}
	if hasCell && stored > 0 {
		if err := m.ensureCell(cell); err != nil {
			return err
		}
		if err := m.cells.Release(cell, stored); err != nil {
			return err
		}
	}
	return nil
}
