// Package salvage implements the volume salvager: the recovery
// companion to the storage design's robustness arguments.
//
// The paper keeps every page of a segment on one pack "for robustness
// and demountability", moves segments between packs by a multi-step
// update of two tables of contents, and binds quota cells statically
// so that used-counts stay recomputable. The salvager is where those
// properties pay off: after a crash, each pack's table of contents and
// free list — plus the governing-directory uid recorded in every entry
// — contain enough information to restore every invariant without any
// cross-pack log. Historical Multics ran exactly such a salvager at
// every boot after an unclean shutdown.
//
// Four classes of damage are repaired, in a fixed order so salvage is
// deterministic and idempotent:
//
//  1. Duplicate table-of-contents entries: an interrupted relocation
//     leaves the same segment uid on two packs. The copy with more
//     stored records is the survivor (relocation installs the new file
//     map only after every record is copied, so the incomplete copy is
//     recognizable); the loser is dropped without freeing records, and
//     anything only it claimed falls out as an orphan.
//
//  2. File-map claims on free records: a crash between freeing a
//     zero page's record and flagging the page zero leaves the map
//     claiming a record on the free list. The claim is honoured by
//     re-allocating the record in place (its contents read as zeros —
//     which is what the page held).
//
//  3. Duplicate claims and orphans: a record claimed by two file maps
//     is copied so each claimant has its own; an allocated record
//     claimed by no file map is returned to the free list.
//
//  4. Quota used-counts: every quota cell's count is recomputed as the
//     stored records of the segments bound to it (by the Gov uid in
//     their entries). Zero pages hold no records and are charged zero,
//     per the paper's accounting.
package salvage

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/trace"
)

// ModuleName is the salvager's name in the kernel dependency graph;
// its repair events are attributed to it.
const ModuleName = "volume-salvager"

// A RepairKind classifies one salvage repair.
type RepairKind int

const (
	// DuplicateEntry is an interrupted relocation's extra
	// table-of-contents entry, dropped in favour of the complete copy.
	DuplicateEntry RepairKind = iota
	// BadMapEntry is a file-map entry naming a record outside the
	// pack; the page reverts to unallocated.
	BadMapEntry
	// FreeClaimed is a record claimed by a file map but found on the
	// free list; the claim is honoured.
	FreeClaimed
	// DuplicateClaim is a record claimed by two file maps; the later
	// claimant receives its own copy.
	DuplicateClaim
	// OrphanFreed is an allocated record no file map claims, returned
	// to the free list.
	OrphanFreed
	// QuotaRecount is a quota cell whose used-count disagreed with a
	// fresh recount from the file maps.
	QuotaRecount
)

func (k RepairKind) String() string {
	switch k {
	case DuplicateEntry:
		return "duplicate-entry"
	case BadMapEntry:
		return "bad-map-entry"
	case FreeClaimed:
		return "free-claimed"
	case DuplicateClaim:
		return "duplicate-claim"
	case OrphanFreed:
		return "orphan-freed"
	case QuotaRecount:
		return "quota-recount"
	default:
		return fmt.Sprintf("repair(%d)", int(k))
	}
}

// A Finding is one repair, attributed to the pack it was made on, in
// the style of the audit package's findings.
type Finding struct {
	Pack   string
	Kind   RepairKind
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %v: %s", f.Pack, f.Kind, f.Detail)
}

// A Report is the result of one salvage pass.
type Report struct {
	// Packs are the packs salvaged, in the order they were scanned.
	Packs []string
	// Findings is every repair made, in repair order. An empty list
	// means the packs were already consistent.
	Findings []Finding
}

// Clean reports whether salvage found nothing to repair.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

func (r Report) String() string {
	var b strings.Builder
	if len(r.Packs) == 0 {
		b.WriteString("salvage: no dirty packs\n")
		return b.String()
	}
	fmt.Fprintf(&b, "salvage: %s\n", strings.Join(r.Packs, ", "))
	if r.Clean() {
		b.WriteString("no repairs: tables of contents, free lists and quota cells consistent\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d repairs:\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "    %s\n", f)
	}
	return b.String()
}

// Run salvages every dirty mounted pack (every mounted pack when force
// is set) and returns the repair report. The pass is deterministic —
// packs, entries and records are scanned in sorted order — and
// idempotent: a second pass over the same packs repairs nothing.
//
// The recount of quota cells assumes the full configuration is
// mounted: a cell's governed segments are found by the Gov uid in
// their entries, wherever they live. Repair events are emitted to sink
// (which may be nil) as trace.EvSalvageRepair.
func Run(vols *disk.Volumes, sink trace.Sink, force bool) (Report, error) {
	var r Report
	inSet := make(map[string]bool)
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		if force || p.Dirty() {
			inSet[id] = true
		}
	}
	if len(inSet) == 0 {
		return r, nil
	}

	emit := func(kind RepairKind, pack string, a1, a2 int64, format string, args ...any) {
		r.Findings = append(r.Findings, Finding{Pack: pack, Kind: kind, Detail: fmt.Sprintf(format, args...)})
		if sink != nil {
			sink.Emit(trace.Event{Kind: trace.EvSalvageRepair, Module: ModuleName, Arg0: int64(kind), Arg1: a1, Arg2: a2})
		}
	}

	// Phase 1: duplicate table-of-contents entries, resolved across
	// every mounted pack (an interrupted relocation's pair always
	// spans two packs). The winner is the copy with the most stored
	// records; ties break to the lexically first (pack, index), so two
	// complete copies resolve the same way every run.
	type entryRef struct {
		pack    string
		idx     disk.TOCIndex
		records int
	}
	byUID := make(map[uint64][]entryRef)
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			byUID[e.UID] = append(byUID[e.UID], entryRef{pack: id, idx: idx, records: e.Records()})
		})
	}
	uids := make([]uint64, 0, len(byUID))
	for uid := range byUID {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		refs := byUID[uid]
		if len(refs) < 2 {
			continue
		}
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].records != refs[j].records {
				return refs[i].records > refs[j].records
			}
			if refs[i].pack != refs[j].pack {
				return refs[i].pack < refs[j].pack
			}
			return refs[i].idx < refs[j].idx
		})
		winner := refs[0]
		for _, loser := range refs[1:] {
			p, err := vols.Pack(loser.pack)
			if err != nil {
				return r, err
			}
			// Drop, not delete: records shared with nothing are
			// freed by the orphan scan; deleting here could not know
			// which records the interrupted operation really owned.
			if err := p.DropEntry(loser.idx); err != nil {
				return r, err
			}
			inSet[loser.pack] = true
			emit(DuplicateEntry, loser.pack, int64(uid), int64(loser.idx),
				"segment %d duplicated; kept %s:%d (%d records), dropped %s:%d (%d records)",
				uid, winner.pack, winner.idx, winner.records, loser.pack, loser.idx, loser.records)
		}
	}

	r.Packs = make([]string, 0, len(inSet))
	for id := range inSet {
		r.Packs = append(r.Packs, id)
	}
	sort.Strings(r.Packs)

	// Phase 2, per pack: reconcile file-map claims with the record
	// allocation state.
	for _, id := range r.Packs {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		type claim struct {
			idx  disk.TOCIndex
			page int
		}
		claims := make(map[disk.RecordAddr][]claim)
		var bad []claim
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			for pg, fm := range e.Map {
				if fm.State != disk.PageStored {
					continue
				}
				if fm.Record < 0 || int(fm.Record) >= p.Capacity() {
					bad = append(bad, claim{idx: idx, page: pg})
					continue
				}
				claims[fm.Record] = append(claims[fm.Record], claim{idx: idx, page: pg})
			}
		})
		for _, c := range bad {
			if err := p.UpdateEntry(c.idx, func(e *disk.TOCEntry) error {
				e.Map[c.page] = disk.FileMapEntry{State: disk.PageUnallocated}
				return nil
			}); err != nil {
				return r, err
			}
			emit(BadMapEntry, id, int64(c.idx), int64(c.page),
				"entry %d page %d named a record outside the pack; page reverts to unallocated", c.idx, c.page)
		}

		free := make(map[disk.RecordAddr]bool)
		for _, rec := range p.FreeRecordList() {
			free[rec] = true
		}
		recs := make([]disk.RecordAddr, 0, len(claims))
		for rec := range claims {
			recs = append(recs, rec)
			cl := claims[rec]
			sort.Slice(cl, func(i, j int) bool {
				if cl[i].idx != cl[j].idx {
					return cl[i].idx < cl[j].idx
				}
				return cl[i].page < cl[j].page
			})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
		// Honour every claim on a free record first, so that the
		// allocations below can never hand a claimed record out
		// again. The map's claim wins over the free list: the only
		// path that frees a still-claimed record is the zero page
		// removal, and a freed record reads as zeros — exactly what
		// that page held.
		for _, rec := range recs {
			if !free[rec] {
				continue
			}
			if err := p.ClaimRecord(rec); err != nil {
				return r, err
			}
			delete(free, rec)
			cl := claims[rec]
			emit(FreeClaimed, id, int64(rec), int64(cl[0].idx),
				"record %d claimed by entry %d page %d but free; claim honoured", rec, cl[0].idx, cl[0].page)
		}
		buf := make([]hw.Word, hw.PageWords)
		claimed := make(map[disk.RecordAddr]bool)
		for _, rec := range recs {
			cl := claims[rec]
			claimed[rec] = true
			// Duplicate claims: the first claimant keeps the record,
			// every other gets its own copy of the contents.
			for _, extra := range cl[1:] {
				newRec, err := p.AllocRecord()
				if errors.Is(err, disk.ErrPackFull) {
					if uerr := p.UpdateEntry(extra.idx, func(e *disk.TOCEntry) error {
						e.Map[extra.page] = disk.FileMapEntry{State: disk.PageUnallocated}
						return nil
					}); uerr != nil {
						return r, uerr
					}
					emit(DuplicateClaim, id, int64(rec), int64(extra.idx),
						"record %d claimed by entries %d and %d; pack full, entry %d page %d reverts to unallocated",
						rec, cl[0].idx, extra.idx, extra.idx, extra.page)
					continue
				}
				if err != nil {
					return r, err
				}
				if err := p.ReadRecord(rec, buf); err != nil {
					return r, err
				}
				if err := p.WriteRecord(newRec, buf); err != nil {
					return r, err
				}
				if err := p.UpdateEntry(extra.idx, func(e *disk.TOCEntry) error {
					e.Map[extra.page].Record = newRec
					return nil
				}); err != nil {
					return r, err
				}
				claimed[newRec] = true
				delete(free, newRec)
				emit(DuplicateClaim, id, int64(rec), int64(newRec),
					"record %d claimed by entries %d and %d; entry %d page %d copied to record %d",
					rec, cl[0].idx, extra.idx, extra.idx, extra.page, newRec)
			}
		}
		// Orphans: allocated records no file map claims.
		for rec := disk.RecordAddr(0); int(rec) < p.Capacity(); rec++ {
			if free[rec] || claimed[rec] {
				continue
			}
			if err := p.FreeRecord(rec); err != nil {
				return r, err
			}
			emit(OrphanFreed, id, int64(rec), 0, "record %d allocated but unreachable from any file map; freed", rec)
		}
	}

	// Phase 3: recompute quota used-counts. Each entry's Gov uid names
	// the quota directory its pages charge; summing stored records per
	// governing uid across every mounted pack rebuilds each cell's
	// count from scratch. Zero pages hold no records: charged zero.
	govUsed := make(map[uint64]int)
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if e.Gov != 0 {
				govUsed[e.Gov] += e.Records()
			}
		})
	}
	for _, id := range r.Packs {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		type fix struct {
			idx  disk.TOCIndex
			uid  uint64
			had  int
			want int
		}
		var fixes []fix
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if !e.Quota.Valid {
				return
			}
			if want := govUsed[e.UID]; e.Quota.Used != want {
				fixes = append(fixes, fix{idx: idx, uid: e.UID, had: e.Quota.Used, want: want})
			}
		})
		for _, f := range fixes {
			if err := p.UpdateEntry(f.idx, func(e *disk.TOCEntry) error {
				e.Quota.Used = f.want
				return nil
			}); err != nil {
				return r, err
			}
			emit(QuotaRecount, id, int64(f.uid), int64(f.want),
				"quota cell of directory %d recorded %d pages used; recount says %d", f.uid, f.had, f.want)
		}
	}

	// The repairs themselves dirtied the packs; clean flags are the
	// last thing written, mirroring a real salvager's completion mark.
	for _, id := range r.Packs {
		p, err := vols.Pack(id)
		if err != nil {
			return r, err
		}
		p.MarkClean()
	}
	return r, nil
}
