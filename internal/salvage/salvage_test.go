package salvage_test

import (
	"fmt"
	"testing"

	"multics/internal/coreseg"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/salvage"
	"multics/internal/segment"
	"multics/internal/vproc"
)

// The crash-point sweep's scripted workload: pagesA committed pages
// per file before faults are armed, then growth to pagesB pages per
// file — enough to overflow the small pack and force relocations.
const (
	nFiles = 3
	pagesA = 3
	pagesB = 9
	packA  = 24
	packB  = 96
)

// machine is the lower kernel: memory, virtual processors, page
// frames, quota cells, two packs and the segment manager.
type machine struct {
	meter  *hw.CostMeter
	mem    *hw.Memory
	vols   *disk.Volumes
	frames *pageframe.Manager
	cells  *quota.Manager
	segs   *segment.Manager
}

func newMachine(t *testing.T) *machine {
	t.Helper()
	meter := &hw.CostMeter{}
	mem := hw.NewMemory(3 + 16)
	cm, err := coreseg.NewManager(mem, 3, meter)
	if err != nil {
		t.Fatal(err)
	}
	states, err := cm.Allocate("vp-states", 4*vproc.StateWords)
	if err != nil {
		t.Fatal(err)
	}
	qtable, err := cm.Allocate("quota-table", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	ast, err := cm.Allocate("ast", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	vps, err := vproc.NewManager(4, states, meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vps.BindKernel(pageframe.PageWriterModule); err != nil {
		t.Fatal(err)
	}
	frames, err := pageframe.NewManager(mem, cm.FirstPageableFrame(), vps, meter)
	if err != nil {
		t.Fatal(err)
	}
	vols := disk.NewVolumes(meter)
	if _, err := vols.AddPack("dska", packA); err != nil {
		t.Fatal(err)
	}
	if _, err := vols.AddPack("dskb", packB); err != nil {
		t.Fatal(err)
	}
	cells, err := quota.NewManager(vols, qtable, meter)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segment.NewManager(vols, frames, cells, ast, meter)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{meter: meter, mem: mem, vols: vols, frames: frames, cells: cells, segs: segs}
}

// patA and patB are the words the two workload phases write; any
// other non-zero word found on disk afterwards is corruption.
func patA(file, page int) hw.Word { return hw.Word(100_000 + file*1_000 + page) }
func patB(file, page int) hw.Word { return hw.Word(200_000 + file*1_000 + page) }

// findEntries returns every (pack, index, entry) holding uid, across
// all mounted packs in sorted pack order.
type foundEntry struct {
	pack string
	idx  disk.TOCIndex
	e    disk.TOCEntry
}

func findEntries(t *testing.T, vols *disk.Volumes, uid uint64) []foundEntry {
	t.Helper()
	var out []foundEntry
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if e.UID == uid {
				out = append(out, foundEntry{pack: id, idx: idx, e: e})
			}
		})
	}
	return out
}

func readPage(t *testing.T, vols *disk.Volumes, packID string, rec disk.RecordAddr) []hw.Word {
	t.Helper()
	p, err := vols.Pack(packID)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]hw.Word, hw.PageWords)
	if err := p.ReadRecord(rec, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// scenario runs the two-phase workload. Phase A (unfaulted) builds a
// quota directory and nFiles files with pagesA flushed pages each.
// Then plan is armed and phase B grows every file to pagesB pages —
// overflowing dska, forcing relocations — and deactivates everything,
// tolerating crash errors throughout. It returns the machine, the
// file uids, the quota directory's uid, and the golden on-disk page
// images captured between the phases.
func scenario(t *testing.T, plan *disk.FaultPlan) (*machine, []uint64, uint64, map[uint64][][]hw.Word) {
	t.Helper()
	m := newMachine(t)

	// Phase A: committed state.
	dirUID := m.segs.NewUID()
	cell, err := m.segs.Create("dska", dirUID, true, dirUID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.cells.InitCell(cell, 200); err != nil {
		t.Fatal(err)
	}
	uids := make([]uint64, nFiles)
	for i := range uids {
		uid := m.segs.NewUID()
		uids[i] = uid
		addr, err := m.segs.Create("dska", uid, false, dirUID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.segs.Activate(uid, addr, cell, true); err != nil {
			t.Fatal(err)
		}
		for pg := 0; pg < pagesA; pg++ {
			if _, err := m.segs.Grow(uid, pg, 8, pg); err != nil {
				t.Fatalf("phase A grow file %d page %d: %v", i, pg, err)
			}
			if err := m.segs.WriteWord(uid, pg*hw.PageWords, patA(i, pg)); err != nil {
				t.Fatal(err)
			}
			if err := m.segs.WriteWord(uid, pg*hw.PageWords+17, patA(i, pg)); err != nil {
				t.Fatal(err)
			}
		}
		// Deactivation flushes every page and the file map: phase A
		// is now committed on disk.
		if err := m.segs.Deactivate(uid); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.cells.Deactivate(cell); err != nil {
		t.Fatal(err)
	}

	// Golden images, read back from the packs themselves.
	golden := make(map[uint64][][]hw.Word, nFiles)
	for i, uid := range uids {
		found := findEntries(t, m.vols, uid)
		if len(found) != 1 {
			t.Fatalf("file %d: %d table-of-contents entries before faults", i, len(found))
		}
		pages := make([][]hw.Word, pagesA)
		for pg := 0; pg < pagesA; pg++ {
			fm := found[0].e.Map[pg]
			if fm.State != disk.PageStored {
				t.Fatalf("file %d page %d not stored after deactivation: %v", i, pg, fm.State)
			}
			pages[pg] = readPage(t, m.vols, found[0].pack, fm.Record)
		}
		golden[uid] = pages
	}

	// Phase B: under the fault plan. Every error after the crash
	// point is expected; the invariant under test is that nothing
	// panics and the packs stay repairable.
	m.vols.SetFaultPlan(plan)
	for _, uid := range uids {
		found := findEntries(t, m.vols, uid)
		addr := disk.SegAddr{Pack: found[0].pack, TOC: found[0].idx}
		_, _ = m.segs.Activate(uid, addr, cell, true)
	}
	for pg := pagesA; pg < pagesB; pg++ {
		for i, uid := range uids {
			if _, err := m.segs.Grow(uid, pg, 8, pg); err != nil {
				continue
			}
			if _, err := m.segs.EnsureResident(uid, pg); err != nil {
				continue
			}
			_ = m.segs.WriteWord(uid, pg*hw.PageWords, patB(i, pg))
			_ = m.segs.WriteWord(uid, pg*hw.PageWords+17, patB(i, pg))
		}
	}
	for _, uid := range uids {
		_ = m.segs.Deactivate(uid)
	}
	_ = m.cells.Deactivate(cell)
	return m, uids, dirUID, golden
}

// reboot demounts the machine's packs (simulated memory contents are
// lost), clears the fault plan, and mounts the survivors in a fresh
// volume registry — the disk state a rebooted kernel would see.
func reboot(t *testing.T, m *machine) *disk.Volumes {
	t.Helper()
	fresh := disk.NewVolumes(&hw.CostMeter{})
	for _, id := range []string{"dska", "dskb"} {
		p, err := m.vols.Demount(id)
		if err != nil {
			t.Fatal(err)
		}
		p.SetFaultPlan(nil)
		if err := fresh.Mount(p); err != nil {
			t.Fatal(err)
		}
	}
	return fresh
}

// checkInvariants asserts everything the salvager guarantees: a
// second pass repairs nothing; free lists and file maps partition
// every pack's records exactly; quota used-counts equal a fresh
// recount; each golden file survives as exactly one entry whose
// committed pages hold the golden words; and phase-B pages hold
// either their pattern or zeros — never foreign data.
func checkInvariants(t *testing.T, vols *disk.Volumes, uids []uint64, dirUID uint64, golden map[uint64][][]hw.Word) {
	t.Helper()

	rerun, err := salvage.Run(vols, nil, true)
	if err != nil {
		t.Fatalf("second salvage pass: %v", err)
	}
	if !rerun.Clean() {
		t.Errorf("salvage not idempotent; second pass repaired:\n%v", rerun)
	}

	govUsed := make(map[uint64]int)
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Dirty() {
			t.Errorf("pack %s still dirty after salvage", id)
		}
		claims := make(map[disk.RecordAddr]int)
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if e.Gov != 0 {
				govUsed[e.Gov] += e.Records()
			}
			for pg, fm := range e.Map {
				if fm.State != disk.PageStored {
					continue
				}
				if fm.Record < 0 || int(fm.Record) >= p.Capacity() {
					t.Errorf("pack %s entry %d page %d: record %d out of range", id, idx, pg, fm.Record)
					return
				}
				claims[fm.Record]++
			}
		})
		free := make(map[disk.RecordAddr]bool)
		for _, r := range p.FreeRecordList() {
			free[r] = true
		}
		for rec, n := range claims {
			if n > 1 {
				t.Errorf("pack %s: record %d claimed by %d file maps", id, rec, n)
			}
			if free[rec] {
				t.Errorf("pack %s: record %d both claimed and free", id, rec)
			}
		}
		for rec := disk.RecordAddr(0); int(rec) < p.Capacity(); rec++ {
			if !free[rec] && claims[rec] == 0 {
				t.Errorf("pack %s: record %d orphaned (allocated, unclaimed)", id, rec)
			}
		}
	}
	for _, id := range vols.Packs() {
		p, err := vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		p.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if !e.Quota.Valid {
				return
			}
			if e.Quota.Used != govUsed[e.UID] {
				t.Errorf("pack %s entry %d: quota cell records %d used, recount says %d", id, idx, e.Quota.Used, govUsed[e.UID])
			}
		})
	}

	for i, uid := range uids {
		found := findEntries(t, vols, uid)
		if len(found) != 1 {
			t.Errorf("file %d: %d table-of-contents entries after salvage, want 1", i, len(found))
			continue
		}
		e := found[0].e
		for pg := 0; pg < pagesA; pg++ {
			if pg >= len(e.Map) || e.Map[pg].State != disk.PageStored {
				t.Errorf("file %d committed page %d not stored after salvage", i, pg)
				continue
			}
			got := readPage(t, vols, found[0].pack, e.Map[pg].Record)
			for off, w := range golden[uid][pg] {
				if got[off] != w {
					t.Errorf("file %d page %d word %d = %d, want %d: committed data lost", i, pg, off, got[off], w)
					break
				}
			}
		}
		for pg := pagesA; pg < len(e.Map); pg++ {
			if e.Map[pg].State != disk.PageStored {
				continue
			}
			got := readPage(t, vols, found[0].pack, e.Map[pg].Record)
			want := patB(i, pg)
			for off, w := range got {
				ok := w == 0 || ((off == 0 || off == 17) && w == want)
				if !ok {
					t.Errorf("file %d page %d word %d = %d: foreign data after salvage", i, pg, off, w)
					break
				}
			}
		}
	}
}

// TestCrashPointSweep is the robustness argument made executable:
// crash the disk plane at the k-th mutation for every k the workload
// reaches, reboot, salvage, and demand every invariant back. -short
// strides through the crash points instead of visiting all of them.
func TestCrashPointSweep(t *testing.T) {
	// Baseline run counts the workload's disk mutations.
	base := &disk.FaultPlan{}
	m, uids, dirUID, golden := scenario(t, base)
	mutations := base.Mutations()
	if mutations < 20 {
		t.Fatalf("workload made only %d disk mutations; sweep is vacuous", mutations)
	}
	vols := reboot(t, m)
	if _, err := salvage.Run(vols, nil, false); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, vols, uids, dirUID, golden)

	stride := 1
	if testing.Short() {
		stride = mutations/12 + 1
	}
	for k := 1; k <= mutations; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			plan := &disk.FaultPlan{CrashAtMutation: k, Seed: uint64(k)}
			m, uids, dirUID, golden := scenario(t, plan)
			if !plan.Crashed() {
				t.Fatalf("plan armed at mutation %d of %d never crashed", k, mutations)
			}
			vols := reboot(t, m)
			rep, err := salvage.Run(vols, nil, false)
			if err != nil {
				t.Fatalf("salvage after crash at %d: %v", k, err)
			}
			if len(rep.Packs) == 0 {
				t.Fatal("no packs salvaged after a crash")
			}
			checkInvariants(t, vols, uids, dirUID, golden)
		})
	}
}

// TestSalvageCleanMachine: salvaging consistent packs repairs nothing
// but still clears their dirty flags.
func TestSalvageNoDirtyPacks(t *testing.T) {
	m := newMachine(t)
	rep, err := salvage.Run(m.vols, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 0 || !rep.Clean() {
		t.Errorf("fresh packs salvaged: %v", rep)
	}
}

func TestSalvageCleanWorkloadRepairsNothing(t *testing.T) {
	m, _, _, _ := scenario(t, &disk.FaultPlan{})
	rep, err := salvage.Run(m.vols, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// The packs are dirty — they were mutated and never salvaged —
	// but an uncrashed workload leaves nothing to repair.
	if len(rep.Packs) == 0 {
		t.Error("mutated packs not scanned")
	}
	if !rep.Clean() {
		t.Errorf("clean shutdown needed repairs:\n%v", rep)
	}
	for _, id := range m.vols.Packs() {
		p, err := m.vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Dirty() {
			t.Errorf("pack %s dirty after salvage", id)
		}
	}
}

// TestSalvageRepairsCraftedDamage drives each repair class directly:
// an orphaned record, a claimed-but-free record, a duplicate claim, a
// duplicate entry pair, and a miscounted quota cell.
func TestSalvageRepairsCraftedDamage(t *testing.T) {
	meter := &hw.CostMeter{}
	vols := disk.NewVolumes(meter)
	pa, err := vols.AddPack("dska", 32)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := vols.AddPack("dskb", 32)
	if err != nil {
		t.Fatal(err)
	}

	// A quota directory (uid 1, governing itself) with one stored,
	// correctly counted page.
	dirIdx, err := pa.CreateEntry(1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirRec, err := pa.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.UpdateEntry(dirIdx, func(e *disk.TOCEntry) error {
		e.Map = []disk.FileMapEntry{{State: disk.PageStored, Record: dirRec}}
		e.Quota = disk.QuotaCell{Valid: true, Limit: 100, Used: 40} // wrong: recount will say otherwise
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A file (uid 2) with two pages: page 0 stored, page 1 claiming
	// the same record as page 0 (duplicate claim).
	buf := make([]hw.Word, hw.PageWords)
	fileIdx, err := pa.CreateEntry(2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	fileRec, err := pa.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 777
	if err := pa.WriteRecord(fileRec, buf); err != nil {
		t.Fatal(err)
	}
	if err := pa.UpdateEntry(fileIdx, func(e *disk.TOCEntry) error {
		e.Map = []disk.FileMapEntry{
			{State: disk.PageStored, Record: fileRec},
			{State: disk.PageStored, Record: fileRec},
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// An orphan: allocated, claimed by nothing.
	if _, err := pa.AllocRecord(); err != nil {
		t.Fatal(err)
	}

	// A claimed-but-free record: a crash between freeing a zero
	// page's record and marking the page zero.
	zrec, err := pa.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	zIdx, err := pa.CreateEntry(3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.UpdateEntry(zIdx, func(e *disk.TOCEntry) error {
		e.Map = []disk.FileMapEntry{{State: disk.PageStored, Record: zrec}}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := pa.FreeRecord(zrec); err != nil {
		t.Fatal(err)
	}

	// A duplicate entry: uid 2 again on dskb with fewer stored
	// records — the incomplete half of an interrupted relocation.
	dupIdx, err := pb.CreateEntry(2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	dupRec, err := pb.AllocRecord()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 888
	if err := pb.WriteRecord(dupRec, buf); err != nil {
		t.Fatal(err)
	}
	// The copy's map was never installed: zero stored records.
	_ = dupIdx

	rep, err := salvage.Run(vols, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[salvage.RepairKind]int)
	for _, f := range rep.Findings {
		kinds[f.Kind]++
	}
	if kinds[salvage.DuplicateEntry] != 1 {
		t.Errorf("duplicate-entry repairs = %d, want 1\n%v", kinds[salvage.DuplicateEntry], rep)
	}
	if kinds[salvage.FreeClaimed] != 1 {
		t.Errorf("free-claimed repairs = %d, want 1\n%v", kinds[salvage.FreeClaimed], rep)
	}
	if kinds[salvage.DuplicateClaim] != 1 {
		t.Errorf("duplicate-claim repairs = %d, want 1\n%v", kinds[salvage.DuplicateClaim], rep)
	}
	// dupRec on dskb becomes an orphan once its entry is dropped.
	if kinds[salvage.OrphanFreed] != 2 {
		t.Errorf("orphan-freed repairs = %d, want 2 (crafted orphan + dropped copy's record)\n%v", kinds[salvage.OrphanFreed], rep)
	}
	if kinds[salvage.QuotaRecount] != 1 {
		t.Errorf("quota-recount repairs = %d, want 1\n%v", kinds[salvage.QuotaRecount], rep)
	}

	// The duplicate claim was resolved by copying: both pages of uid
	// 2 stored, distinct records, same contents.
	var fe disk.TOCEntry
	ok := false
	pa.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
		if e.UID == 2 {
			fe, ok = e, true
		}
	})
	if !ok {
		t.Fatal("file entry vanished")
	}
	if len(fe.Map) != 2 || fe.Map[0].State != disk.PageStored || fe.Map[1].State != disk.PageStored {
		t.Fatalf("file map after salvage: %+v", fe.Map)
	}
	if fe.Map[0].Record == fe.Map[1].Record {
		t.Error("duplicate claim survived salvage")
	}
	for pg := 0; pg < 2; pg++ {
		got := readPage(t, vols, "dska", fe.Map[pg].Record)
		if got[0] != 777 {
			t.Errorf("page %d word 0 = %d, want 777", pg, got[0])
		}
	}

	// The honoured claim reads as zeros — what the zero page held.
	got := readPage(t, vols, "dska", zrec)
	for off, w := range got {
		if w != 0 {
			t.Fatalf("honoured claim word %d = %d, want 0", off, w)
		}
	}

	// Quota recount: dir page + file pages (2) + honoured zero-claim
	// page, all governed by uid 1.
	var de disk.TOCEntry
	pa.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
		if e.UID == 1 {
			de = e
		}
	})
	if de.Quota.Used != 4 {
		t.Errorf("recounted quota used = %d, want 4", de.Quota.Used)
	}

	if pa.Dirty() || pb.Dirty() {
		t.Error("packs still dirty after salvage")
	}
	rerun, err := salvage.Run(vols, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rerun.Clean() {
		t.Errorf("second pass not clean:\n%v", rerun)
	}
}

// TestDemountMountRoundTrip: a segment with resident modified pages
// is deactivated, its pack demounted and remounted, and everything —
// contents, quota, page frames — survives the round trip.
func TestDemountMountRoundTrip(t *testing.T) {
	m := newMachine(t)
	dirUID := m.segs.NewUID()
	cell, err := m.segs.Create("dska", dirUID, true, dirUID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.cells.InitCell(cell, 100); err != nil {
		t.Fatal(err)
	}
	uid := m.segs.NewUID()
	addr, err := m.segs.Create("dska", uid, false, dirUID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.segs.Activate(uid, addr, cell, true); err != nil {
		t.Fatal(err)
	}
	freeBefore := m.frames.FreeFrames()
	for pg := 0; pg < 4; pg++ {
		if _, err := m.segs.Grow(uid, pg, 8, pg); err != nil {
			t.Fatal(err)
		}
		if err := m.segs.WriteWord(uid, pg*hw.PageWords+1, hw.Word(4000+pg)); err != nil {
			t.Fatal(err)
		}
	}
	// Deactivation writes the resident dirty pages back; demount
	// must then find nothing resident and lose nothing.
	if err := m.segs.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	if err := m.cells.Deactivate(cell); err != nil {
		t.Fatal(err)
	}
	if got := m.frames.FreeFrames(); got != freeBefore {
		t.Errorf("page frames leaked across deactivation: %d free, was %d", got, freeBefore)
	}
	pack, err := m.vols.Demount("dska")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.vols.Pack("dska"); err == nil {
		t.Error("demounted pack still addressable")
	}
	if err := m.vols.Mount(pack); err != nil {
		t.Fatal(err)
	}

	// Remounted: reactivate and read every word back.
	if _, err := m.segs.Activate(uid, addr, cell, true); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < 4; pg++ {
		if _, err := m.segs.EnsureResident(uid, pg); err != nil {
			t.Fatal(err)
		}
		w, err := m.segs.ReadWord(uid, pg*hw.PageWords+1)
		if err != nil {
			t.Fatal(err)
		}
		if w != hw.Word(4000+pg) {
			t.Errorf("page %d word = %d after round trip, want %d", pg, w, 4000+pg)
		}
	}
	if err := m.segs.Deactivate(uid); err != nil {
		t.Fatal(err)
	}
	if got := m.frames.FreeFrames(); got != freeBefore {
		t.Errorf("page frames leaked across the round trip: %d free, was %d", got, freeBefore)
	}
	if err := m.cells.Activate(cell); err != nil {
		t.Fatal(err)
	}
	_, used, err := m.cells.Info(cell)
	if err != nil {
		t.Fatal(err)
	}
	if used != 4 {
		t.Errorf("quota used after round trip = %d, want 4", used)
	}
}
