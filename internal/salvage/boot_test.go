package salvage_test

import (
	"fmt"
	"testing"

	"multics/internal/aim"
	"multics/internal/core"
	"multics/internal/directory"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/trace"
)

// crashedKernelPacks boots a full kernel, runs a paging workload with
// a crash armed at the k-th disk mutation, and returns the demounted
// packs — the disk state the next boot inherits.
func crashedKernelPacks(t *testing.T, k int) []*disk.Pack {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Packs = []core.PackSpec{{ID: "dska", Records: 64}, {ID: "dskb", Records: 128}}
	cfg.Processors = 1
	kern, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu := kern.CPUs[0]
	p, err := kern.CreateProcess("crash.sys", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	kern.Attach(cpu, p)
	if _, err := kern.CreateDir(cpu, p, nil, "d", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}

	plan := &disk.FaultPlan{CrashAtMutation: k, Seed: uint64(k)}
	kern.Vols.SetFaultPlan(plan)
	// Grow files until dska overflows and segments relocate; every
	// error past the crash point is expected.
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("f%d", f)
		if _, err := kern.CreateFile(cpu, p, []string{"d"}, name, nil, aim.Bottom); err != nil {
			continue
		}
		segno, err := kern.OpenPath(cpu, p, []string{"d", name})
		if err != nil {
			continue
		}
		for i := 0; i < 30; i++ {
			_ = kern.Write(cpu, p, segno, i*hw.PageWords, hw.Word(f*100+i+1))
		}
	}
	if !plan.Crashed() {
		t.Skipf("workload stopped before mutation %d (made %d)", k, plan.Mutations())
	}

	var packs []*disk.Pack
	for _, id := range []string{"dska", "dskb"} {
		pk, err := kern.Vols.Demount(id)
		if err != nil {
			t.Fatal(err)
		}
		pk.SetFaultPlan(nil)
		packs = append(packs, pk)
	}
	return packs
}

// TestBootSalvagesDirtyPacks: a kernel booted on the packs of a
// crashed predecessor salvages them before anything else runs, keeps
// the report, attributes the repairs to the volume-salvager module,
// and is then fully usable.
func TestBootSalvagesDirtyPacks(t *testing.T) {
	packs := crashedKernelPacks(t, 40)

	cfg := core.DefaultConfig()
	cfg.Packs = nil
	cfg.Mount = packs
	cfg.Processors = 1
	cfg.TraceEvents = 1 << 12
	kern, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The root pack took every mutation up to the crash, so it is
	// dirty for certain; dskb only if a relocation reached it.
	if len(kern.Salvage.Packs) == 0 || kern.Salvage.Packs[0] != "dska" {
		t.Fatalf("boot salvaged packs %v, want at least dska", kern.Salvage.Packs)
	}
	for _, id := range kern.Salvage.Packs {
		p, err := kern.Vols.Pack(id)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Dirty() {
			// Boot itself mutates the packs after salvage (the new
			// root directory), so they are dirty again — which is
			// itself evidence salvage ran before the mutations.
			t.Errorf("pack %s never touched after salvage", id)
		}
	}
	// Salvage repairs, if any, were recorded and legally attributed.
	if unknown := kern.Trace.Unknown(); len(unknown) != 0 {
		t.Errorf("trace events from unregistered modules: %v", unknown)
	}
	repairs := 0
	for _, ev := range kern.Trace.Events() {
		if ev.Kind == trace.EvSalvageRepair {
			repairs++
			if ev.Module != "volume-salvager" {
				t.Errorf("salvage repair attributed to %q", ev.Module)
			}
		}
	}
	if repairs != len(kern.Salvage.Findings) {
		t.Errorf("%d repair events, report has %d findings", repairs, len(kern.Salvage.Findings))
	}

	// The rebooted kernel works: build and read back a fresh file.
	cpu := kern.CPUs[0]
	p, err := kern.CreateProcess("reboot.sys", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	kern.Attach(cpu, p)
	if _, err := kern.CreateFile(cpu, p, nil, "after", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := kern.OpenPath(cpu, p, []string{"after"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := kern.Write(cpu, p, segno, i*hw.PageWords, hw.Word(9000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		w, err := kern.Read(cpu, p, segno, i*hw.PageWords)
		if err != nil {
			t.Fatal(err)
		}
		if w != hw.Word(9000+i) {
			t.Errorf("word %d = %d after reboot, want %d", i, w, 9000+i)
		}
	}
}

// TestBootWithoutPacksRejected: a configuration with neither new nor
// mounted packs cannot boot.
func TestBootWithoutPacksRejected(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Packs = nil
	cfg.Mount = nil
	if _, err := core.Boot(cfg); err == nil {
		t.Error("boot with no disk packs succeeded")
	}
}
