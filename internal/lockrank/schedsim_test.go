package lockrank

// The locking discipline must not depend on the execution model: an
// acquisition order that panics under real goroutines must panic with
// the identical message under the deterministic executor, in every
// schedule a sweep can produce. Otherwise the simulator would certify
// interleavings the -race build rejects (or vice versa) and its
// verdicts would be worthless.

import (
	"strings"
	"testing"

	"multics/internal/schedsim"
)

// violate acquires t-bottom then t-top: an ascending acquisition the
// certification order forbids.
func violate() {
	var top, bot Mutex
	top.Init("t-top")
	bot.Init("t-bottom")
	bot.Lock()
	defer bot.Unlock()
	top.Lock()
	top.Unlock()
}

// TestViolationIdenticalUnderBothExecutors runs the same violation on
// a plain goroutine and as a schedsim task and requires the identical
// panic message from both.
func TestViolationIdenticalUnderBothExecutors(t *testing.T) {
	install(t)

	goroutineMsg := make(chan any, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { goroutineMsg <- recover() }()
		violate()
	}()
	<-done

	ex := schedsim.New(schedsim.Config{Name: "lockrank", Seed: 1})
	ex.Go("violator", violate)
	err := ex.Run()
	if err == nil {
		t.Fatal("violation did not panic under the deterministic executor")
	}
	f, ok := err.(*schedsim.Failure)
	if !ok {
		t.Fatalf("got %T (%v), want *schedsim.Failure", err, err)
	}

	want := <-goroutineMsg
	if want == nil {
		t.Fatal("violation did not panic under a plain goroutine")
	}
	if f.Panic != want {
		t.Errorf("panic differs by executor:\ngoroutines: %v\nschedsim:   %v", want, f.Panic)
	}
	if !strings.Contains(f.Error(), "-sched-seed=") {
		t.Errorf("failure does not name the reproducing seed: %v", f)
	}
}

// TestSweepViolationFiresInEverySchedule sweeps the interleavings of a
// violating task against a well-behaved one: no schedule may let the
// ascending acquisition slip through unreported.
func TestSweepViolationFiresInEverySchedule(t *testing.T) {
	install(t)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   32,
		MaxPreemptions: 2,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointLock
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		ex := schedsim.New(schedsim.Config{Name: "lockrank-sweep", Strategy: strat})
		ex.Go("legal", func() {
			var top, bot Mutex
			top.Init("t-top")
			bot.Init("t-bottom")
			for i := 0; i < 4; i++ {
				top.Lock()
				bot.Lock()
				bot.Unlock()
				top.Unlock()
			}
		})
		ex.Go("violator", violate)
		err := ex.Run()
		if err == nil {
			return ex, errorString("schedule completed without the violation panicking")
		}
		f, ok := err.(*schedsim.Failure)
		if !ok || f.Task != "violator" || f.Panic == nil {
			return ex, err
		}
		if msg, ok := f.Panic.(string); !ok || !strings.Contains(msg, "must descend the certification order") {
			return ex, err
		}
		return ex, nil // the expected panic, in this schedule too
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules < 2 {
		t.Fatalf("sweep explored only %d schedule(s): no interleavings were actually checked", rep.Schedules)
	}
	if rep.WindowDecisions == 0 {
		t.Fatal("sweep vacuous: no lock-acquire decisions were eligible for deviation")
	}
	t.Logf("%d schedules, %d lock decisions, truncated=%v", rep.Schedules, rep.WindowDecisions, rep.Truncated)
}

type errorString string

func (e errorString) Error() string { return string(e) }
