package lockrank

import (
	"strings"
	"sync"
	"testing"
)

func install(t *testing.T) {
	t.Helper()
	SetLayers([][]string{
		{"t-bottom"},
		{"t-middle"},
		{"t-top"},
	})
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a lockrank panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	fn()
}

func TestDescendingOrderAllowed(t *testing.T) {
	install(t)
	var top, mid, bot Mutex
	top.Init("t-top")
	mid.Init("t-middle")
	bot.Init("t-bottom")

	top.Lock()
	mid.Lock()
	bot.Lock()
	bot.Unlock()
	mid.Unlock()
	top.Unlock()
	if held := HeldByCaller(); len(held) != 0 {
		t.Fatalf("held stack not empty after release: %v", held)
	}
}

func TestAscendingOrderPanics(t *testing.T) {
	install(t)
	var top, bot Mutex
	top.Init("t-top")
	bot.Init("t-bottom")

	bot.Lock()
	defer bot.Unlock()
	mustPanic(t, "t-top", func() { top.Lock() })
}

func TestEqualRankPanics(t *testing.T) {
	install(t)
	var a, b Mutex
	a.Init("t-middle")
	b.Init("t-middle")

	a.Lock()
	defer a.Unlock()
	mustPanic(t, "t-middle", func() { b.Lock() })
}

func TestSubRanksOrderWithinModule(t *testing.T) {
	install(t)
	var primary, inner Mutex
	primary.InitSub("t-middle", 1)
	inner.InitSub("t-middle", 0)

	// Primary first, inner nested below it: legal.
	primary.Lock()
	inner.Lock()
	inner.Unlock()
	primary.Unlock()

	// The other way round is an ascent.
	inner.Lock()
	defer inner.Unlock()
	mustPanic(t, "t-middle#1", func() { primary.Lock() })
}

func TestUnrankedAndUncheckedAreInert(t *testing.T) {
	install(t)
	var zero Mutex // never initialized: plain mutex
	var bot, top Mutex
	bot.Init("t-bottom")
	top.Init("t-top")

	bot.Lock()
	zero.Lock()
	zero.Unlock()
	bot.Unlock()

	prev := SetChecking(false)
	defer SetChecking(prev)
	// With checking off the ascent is tolerated (release build).
	bot.Lock()
	top.Lock()
	top.Unlock()
	bot.Unlock()
}

func TestRanksFollowLayers(t *testing.T) {
	install(t)
	var mid Mutex
	mid.InitSub("t-middle", 2)
	if got, want := mid.Rank(), Rank(1*MaxSubs+2); got != want {
		t.Fatalf("rank = %d, want %d", got, want)
	}
	if got := RankOf("t-top", 0); got != Rank(2*MaxSubs) {
		t.Fatalf("RankOf(t-top, 0) = %d, want %d", got, 2*MaxSubs)
	}
	if got := RankOf("t-unknown", 0); got != Unranked {
		t.Fatalf("RankOf(t-unknown) = %d, want Unranked", got)
	}

	found := false
	for _, e := range Table() {
		if e.Module == "t-middle" && e.Sub == 2 {
			found = true
			if e.Layer != 1 || e.Rank != Rank(1*MaxSubs+2) {
				t.Fatalf("table entry %+v has wrong layer/rank", e)
			}
		}
	}
	if !found {
		t.Fatal("declared lock missing from Table()")
	}
}

func TestConcurrentDisjointGoroutines(t *testing.T) {
	install(t)
	var bot Mutex
	bot.Init("t-bottom")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var top Mutex
			top.Init("t-top")
			for j := 0; j < 200; j++ {
				top.Lock()
				bot.Lock()
				bot.Unlock()
				top.Unlock()
			}
		}()
	}
	wg.Wait()
}
