// Package lockrank turns the kernel's certification order into a
// runtime locking discipline.
//
// The dependency lattice (package deps) proves that module A may call
// module B only when A is certified in a later layer than B. On a
// multiprocessor the same structure must govern mutual exclusion: a
// processor holding module A's lock may acquire module B's lock only
// if B lies strictly below A, because calls — and therefore nested
// acquisitions — only ever go downward. Any other acquisition order
// could deadlock against a processor traversing the lattice properly,
// and would mean a lower layer is waiting on an upper one, the exact
// dependency the redesign eliminated.
//
// A Mutex is bound at initialization to its owning module's name; its
// rank is the module's certification layer, computed from
// deps.Graph.Layers() and installed at boot. Acquiring a Mutex while
// holding one of equal or lower rank panics when checking is on (the
// debug build); SetChecking(false) turns the primitive into a plain
// mutex for release builds and benchmarks. Modules that own more than
// one lock split their layer into sub-ranks, so the discipline also
// orders locks within a module.
//
// Locks whose module is not in the installed layer table — unit tests
// exercising one manager alone, or hardware-level leaf locks — are
// unranked and unchecked.
package lockrank

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"multics/internal/goid"
	"multics/internal/schedsim"
)

// Rank is a lock's position in the acquisition order: certification
// layer times MaxSubs plus the sub-rank. Locks must be acquired in
// strictly descending rank order.
type Rank int

// Unranked marks a lock whose module has no installed layer; it is
// never checked.
const Unranked Rank = -1

// MaxSubs is the number of sub-ranks each certification layer is
// divided into, for modules that own several locks.
const MaxSubs = 8

var checking atomic.Bool

func init() { checking.Store(true) }

// SetChecking turns the acquisition-order checker on or off
// process-wide and returns the previous setting. Checking is on by
// default (the debug build); benchmarks measuring parallel throughput
// turn it off (the release build).
func SetChecking(on bool) bool { return checking.Swap(on) }

// Checking reports whether the acquisition-order checker is on.
func Checking() bool { return checking.Load() }

var reg struct {
	mu sync.Mutex
	// layer maps a module name to its certification layer.
	layer map[string]int
	// locks records every (module, sub) a Mutex was initialized
	// with, for the rank table.
	locks map[string]map[int]bool
}

// SetLayers installs module ranks from a certification order: every
// module in layers[i] gets layer i. The kernel calls it at boot with
// deps.Graph.Layers(); the graph is static, so repeated boots install
// identical ranks.
func SetLayers(layers [][]string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.layer == nil {
		reg.layer = make(map[string]int)
	}
	for i, layer := range layers {
		for _, mod := range layer {
			reg.layer[mod] = i
		}
	}
}

// SetModuleLayer installs one module's layer directly, for locks that
// sit outside the dependency graph proper — the kernel's own gate
// lock ranks one layer above the whole lattice.
func SetModuleLayer(module string, layer int) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.layer == nil {
		reg.layer = make(map[string]int)
	}
	reg.layer[module] = layer
}

// LayerOf reports the installed certification layer of a module.
func LayerOf(module string) (int, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	l, ok := reg.layer[module]
	return l, ok
}

// RankOf computes the rank a lock of the given module and sub-rank
// would have, Unranked if the module has no installed layer.
func RankOf(module string, sub int) Rank {
	l, ok := LayerOf(module)
	if !ok {
		return Unranked
	}
	return Rank(l*MaxSubs + sub)
}

func noteLock(module string, sub int) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.locks == nil {
		reg.locks = make(map[string]map[int]bool)
	}
	subs := reg.locks[module]
	if subs == nil {
		subs = make(map[int]bool)
		reg.locks[module] = subs
	}
	subs[sub] = true
}

// An Entry describes one declared ranked lock in the rank table.
type Entry struct {
	Module string
	Sub    int
	// Layer is the module's certification layer, -1 if none is
	// installed.
	Layer int
	// Rank is the acquisition rank, Unranked if no layer is
	// installed.
	Rank Rank
}

// Name renders the lock's name: the module, with "#sub" appended for
// sub-ranked locks.
func (e Entry) Name() string {
	if e.Sub == 0 {
		return e.Module
	}
	return fmt.Sprintf("%s#%d", e.Module, e.Sub)
}

// Table returns every declared ranked lock with its resolved rank,
// sorted by rank (unranked last), then name. cmd/depgraph prints it
// alongside the Figure-4 lattice.
func Table() []Entry {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var out []Entry
	for module, subs := range reg.locks {
		for sub := range subs {
			e := Entry{Module: module, Sub: sub, Layer: -1, Rank: Unranked}
			if l, ok := reg.layer[module]; ok {
				e.Layer = l
				e.Rank = Rank(l*MaxSubs + sub)
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Rank, out[j].Rank
		if (ri == Unranked) != (rj == Unranked) {
			return rj == Unranked
		}
		if ri != rj {
			return ri < rj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// held tracks, per goroutine, the ranked locks currently held. The
// table is sharded so the checker does not itself serialize the
// processors it is checking.
const heldShards = 64

type holder struct {
	rank Rank
	name string
}

type shard struct {
	mu   sync.Mutex
	held map[uint64][]holder
}

var shards [heldShards]shard

func shardFor(g uint64) *shard { return &shards[g%heldShards] }

// A Mutex is a mutual-exclusion lock ranked by its owning module's
// certification layer. The zero value is usable as an unranked plain
// mutex; Init or InitSub binds it to a module before first use.
type Mutex struct {
	mu     sync.Mutex
	module string
	sub    int
	// rank caches the resolved rank plus one; zero means not yet
	// resolved (ranks are static once the layer table is
	// installed, so the cache never invalidates).
	rank atomic.Int64
	// tracked is written only by the holder between Lock and
	// Unlock: whether this acquisition pushed a held-stack entry.
	tracked bool
}

// Init binds the mutex to its owning module at sub-rank 0.
func (m *Mutex) Init(module string) { m.InitSub(module, 0) }

// InitSub binds the mutex to its owning module at the given sub-rank.
// Higher sub-ranks must be acquired first; a module's primary lock
// conventionally takes the highest sub-rank it uses, and locks it
// nests inside take lower ones.
func (m *Mutex) InitSub(module string, sub int) {
	if sub < 0 || sub >= MaxSubs {
		panic(fmt.Sprintf("lockrank: sub-rank %d out of range [0,%d)", sub, MaxSubs))
	}
	m.module = module
	m.sub = sub
	noteLock(module, sub)
}

// Name renders the lock's name for diagnostics.
func (m *Mutex) Name() string {
	if m.module == "" {
		return "(unranked)"
	}
	if m.sub == 0 {
		return m.module
	}
	return fmt.Sprintf("%s#%d", m.module, m.sub)
}

// Rank returns the lock's current rank, Unranked while its module has
// no installed layer.
func (m *Mutex) Rank() Rank {
	if r := m.rank.Load(); r != 0 {
		return Rank(r - 1)
	}
	if m.module == "" {
		return Unranked
	}
	l, ok := LayerOf(m.module)
	if !ok {
		return Unranked
	}
	r := Rank(l*MaxSubs + m.sub)
	m.rank.Store(int64(r) + 1)
	return r
}

// pushHeld checks the acquisition order and records the lock on the
// calling goroutine's held stack. It reports whether an entry was
// pushed (checking on and the lock ranked); a rank violation panics.
func (m *Mutex) pushHeld() bool {
	if !checking.Load() {
		return false
	}
	r := m.Rank()
	if r == Unranked {
		return false
	}
	g := goid.ID()
	s := shardFor(g)
	s.mu.Lock()
	for _, h := range s.held[g] {
		if h.rank <= r {
			violation := fmt.Sprintf(
				"lockrank: acquiring %s (rank %d) while holding %s (rank %d): lock acquisition must descend the certification order",
				m.Name(), r, h.name, h.rank)
			s.mu.Unlock()
			panic(violation)
		}
	}
	if s.held == nil {
		s.held = make(map[uint64][]holder)
	}
	s.held[g] = append(s.held[g], holder{rank: r, name: m.Name()})
	s.mu.Unlock()
	return true
}

// popHeld removes the lock's entry from the calling goroutine's held
// stack, innermost first.
func popHeld(name string) {
	g := goid.ID()
	s := shardFor(g)
	s.mu.Lock()
	stack := s.held[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].name == name {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(s.held, g)
	} else {
		s.held[g] = stack
	}
	s.mu.Unlock()
}

// Lock acquires the mutex. With checking on, acquiring while the
// calling goroutine holds a ranked lock of equal or lower rank panics:
// that acquisition order does not exist in the certified lattice.
func (m *Mutex) Lock() {
	track := m.pushHeld()
	// Under the deterministic executor the acquisition is a yield
	// point and contention parks the task cooperatively; otherwise it
	// is a plain mutex acquire. The rank check above ran either way —
	// the discipline is identical under both executors.
	if !schedsim.LockAcquire(&m.mu, m.Name()) {
		m.mu.Lock()
	}
	m.tracked = track
}

// TryLock acquires the mutex only if it is free, reporting whether it
// did. The rank check runs exactly as for Lock — a try-acquire in an
// order the lattice forbids panics even when the lock happens to be
// free, so the discipline cannot be weakened by polling. A failed try
// is not a yield point: the caller stays runnable and decides itself
// how to wait.
func (m *Mutex) TryLock() bool {
	track := m.pushHeld()
	if !m.mu.TryLock() {
		if track {
			popHeld(m.Name())
		}
		return false
	}
	m.tracked = track
	return true
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	track := m.tracked
	m.tracked = false
	name := m.Name()
	m.mu.Unlock()
	if track {
		popHeld(name)
	}
}

// HeldByCaller returns the names of the ranked locks the calling
// goroutine currently holds, innermost last — a debugging aid.
func HeldByCaller() []string {
	g := goid.ID()
	s := shardFor(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, h := range s.held[g] {
		out = append(out, h.name)
	}
	return out
}
