// Package upsignal implements the software mechanism for signalling
// upward in the dependency structure without creating dependencies:
// control and arguments are transferred to a higher-level module
// without leaving behind any procedure activation records or other
// unfinished business in expectation of a subsequent return of
// control.
//
// A lower-level module Raises a signal and returns normally; its
// entire call chain unwinds. The kernel's dispatch loop then runs the
// registered handler of the target module. Because nothing below the
// handler is waiting for it, the lower modules do not depend on the
// higher one finishing the job — the property that lets the known
// segment manager hand the directory manager the task of updating a
// directory entry after a full-pack relocation.
package upsignal

import (
	"fmt"
	"sync"

	"multics/internal/goid"
	"multics/internal/trace"
)

// A Signal is one upward transfer: the target module's name and the
// arguments it needs (including any saved process state the handler
// must restore).
type Signal struct {
	Target string
	Args   any
}

// A Handler consumes one signal at the upper level.
type Handler func(Signal) error

// A Dispatcher queues raised signals and runs them outside the
// raiser's call chain.
type Dispatcher struct {
	mu       sync.Mutex
	handlers map[string]Handler
	pending  []Signal
	// dispatcher is the goroutine id currently running Dispatch;
	// it guards against a handler being run re-entrantly from
	// inside its own lower-level call chain. Dispatch calls from
	// other processors are not re-entrance — they serialize on
	// dispatchMu instead.
	dispatcher uint64
	raised     int64
	handled    int64
	sink       trace.Sink
	spans      trace.SpanSink

	// dispatchMu serializes Dispatch across processors, so handlers
	// run one at a time even when several CPUs unwind fault chains
	// concurrently.
	dispatchMu sync.Mutex
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// SetTrace routes raise and handle events to s, each attributed to
// the signal's target module (targets are dependency-graph module
// names). A nil s turns tracing off.
func (d *Dispatcher) SetTrace(s trace.Sink) {
	d.mu.Lock()
	d.sink = s
	d.spans = trace.SpanSinkOf(s)
	d.mu.Unlock()
}

// Register installs the handler for a target module. A module
// registers once, at system initialization.
func (d *Dispatcher) Register(target string, h Handler) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.handlers[target]; ok {
		return fmt.Errorf("upsignal: module %s already registered", target)
	}
	if h == nil {
		return fmt.Errorf("upsignal: nil handler for module %s", target)
	}
	d.handlers[target] = h
	return nil
}

// Raise queues a signal for the target module and returns immediately:
// the raiser keeps no activation record waiting for the handler. The
// target must be registered.
func (d *Dispatcher) Raise(sig Signal) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.handlers[sig.Target]; !ok {
		return fmt.Errorf("upsignal: no handler registered for module %s", sig.Target)
	}
	d.pending = append(d.pending, sig)
	d.raised++
	if d.sink != nil {
		d.sink.Emit(trace.Event{Kind: trace.EvSignalRaise, Module: sig.Target, Arg0: int64(len(d.pending))})
	}
	return nil
}

// Pending reports the number of queued signals.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Stats reports how many signals have been raised and handled.
func (d *Dispatcher) Stats() (raised, handled int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.raised, d.handled
}

// Dispatch runs queued signals in order until the queue is empty
// (handlers may raise further signals) and returns the number handled.
// The kernel calls it after every downward call chain has unwound. A
// handler error stops dispatch and is returned; remaining signals stay
// queued. Dispatch is not re-entrant within one call chain: a nested
// call (a handler signalling and then dispatching) is a structural
// error and panics, because it would put activation records of lower
// modules under the upper handler. Concurrent Dispatch calls from
// other processors are legal and simply wait their turn.
func (d *Dispatcher) Dispatch() (int, error) {
	g := goid.ID()
	d.mu.Lock()
	if d.dispatcher == g {
		d.mu.Unlock()
		panic("upsignal: re-entrant Dispatch — a lower module is waiting on an upper handler")
	}
	d.mu.Unlock()
	d.dispatchMu.Lock()
	d.mu.Lock()
	d.dispatcher = g
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.dispatcher = 0
		d.mu.Unlock()
		d.dispatchMu.Unlock()
	}()

	n := 0
	for {
		d.mu.Lock()
		if len(d.pending) == 0 {
			d.mu.Unlock()
			return n, nil
		}
		sig := d.pending[0]
		d.pending = d.pending[1:]
		h := d.handlers[sig.Target]
		ss := d.spans
		d.mu.Unlock()

		if ss != nil {
			ss.BeginSpan(trace.SpanSignal, sig.Target, int64(n))
		}
		err := h(sig)
		if ss != nil {
			ss.EndSpan(trace.SpanSignal)
		}
		if err != nil {
			return n, fmt.Errorf("upsignal: handler for %s: %w", sig.Target, err)
		}
		d.mu.Lock()
		d.handled++
		if d.sink != nil {
			d.sink.Emit(trace.Event{Kind: trace.EvSignalHandle, Module: sig.Target, Arg0: d.handled})
		}
		d.mu.Unlock()
		n++
	}
}
