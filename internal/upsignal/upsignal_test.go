package upsignal

import (
	"errors"
	"testing"
)

func TestRegisterValidation(t *testing.T) {
	d := NewDispatcher()
	if err := d.Register("dir", func(Signal) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("dir", func(Signal) error { return nil }); err == nil {
		t.Error("double registration succeeded")
	}
	if err := d.Register("x", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestRaiseRequiresHandler(t *testing.T) {
	d := NewDispatcher()
	if err := d.Raise(Signal{Target: "nobody"}); err == nil {
		t.Error("raise to unregistered module succeeded")
	}
}

func TestHandlerRunsAfterRaiserUnwinds(t *testing.T) {
	// The property the mechanism exists for: the raiser's call
	// chain completes before the handler runs.
	d := NewDispatcher()
	var seq []string
	if err := d.Register("dir", func(sig Signal) error {
		seq = append(seq, "handler:"+sig.Args.(string))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	lowLevel := func() {
		if err := d.Raise(Signal{Target: "dir", Args: "update-entry"}); err != nil {
			t.Error(err)
		}
		seq = append(seq, "raiser-unwound")
	}
	lowLevel()
	if d.Pending() != 1 {
		t.Fatalf("Pending = %d", d.Pending())
	}
	n, err := d.Dispatch()
	if err != nil || n != 1 {
		t.Fatalf("Dispatch = %d, %v", n, err)
	}
	want := []string{"raiser-unwound", "handler:update-entry"}
	if len(seq) != 2 || seq[0] != want[0] || seq[1] != want[1] {
		t.Errorf("sequence = %v, want %v", seq, want)
	}
}

func TestHandlerMayRaiseFurtherSignals(t *testing.T) {
	d := NewDispatcher()
	var got []int
	if err := d.Register("a", func(sig Signal) error {
		got = append(got, sig.Args.(int))
		if sig.Args.(int) < 3 {
			return d.Raise(Signal{Target: "a", Args: sig.Args.(int) + 1})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Raise(Signal{Target: "a", Args: 1}); err != nil {
		t.Fatal(err)
	}
	n, err := d.Dispatch()
	if err != nil || n != 3 {
		t.Fatalf("Dispatch = %d, %v", n, err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("got = %v", got)
	}
}

func TestHandlerErrorStopsDispatch(t *testing.T) {
	d := NewDispatcher()
	boom := errors.New("boom")
	calls := 0
	if err := d.Register("a", func(Signal) error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = d.Raise(Signal{Target: "a"})
	_ = d.Raise(Signal{Target: "a"})
	n, err := d.Dispatch()
	if !errors.Is(err, boom) || n != 0 {
		t.Fatalf("Dispatch = %d, %v", n, err)
	}
	if d.Pending() != 1 {
		t.Errorf("Pending = %d, want the second signal retained", d.Pending())
	}
	// A later dispatch drains it.
	n, err = d.Dispatch()
	if err != nil || n != 1 {
		t.Errorf("second Dispatch = %d, %v", n, err)
	}
	raised, handled := d.Stats()
	if raised != 2 || handled != 1 {
		t.Errorf("Stats = %d raised, %d handled", raised, handled)
	}
}

func TestReentrantDispatchPanics(t *testing.T) {
	d := NewDispatcher()
	if err := d.Register("a", func(Signal) error {
		_, _ = d.Dispatch() // structural error
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = d.Raise(Signal{Target: "a"})
	defer func() {
		if recover() == nil {
			t.Error("re-entrant Dispatch did not panic")
		}
	}()
	_, _ = d.Dispatch()
}

func TestFIFOOrder(t *testing.T) {
	d := NewDispatcher()
	var got []int
	_ = d.Register("a", func(sig Signal) error {
		got = append(got, sig.Args.(int))
		return nil
	})
	for i := 0; i < 5; i++ {
		if err := d.Raise(Signal{Target: "a", Args: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Dispatch(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v", got)
		}
	}
}
