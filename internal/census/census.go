// Package census reproduces the paper's kernel-size accounting: the
// measure of the Multics kernel in PL/I-equivalent source lines, the
// inventory of what was in it at the start of the project, and the
// six re-engineering projects whose combined effect cut the kernel
// roughly in half.
//
// The paper's choice of measure is kept: the most useful and
// consistent measure of kernel size is the number of source lines
// that would exist had the system been coded uniformly in PL/I
// (recoding assembly in PL/I shrinks source by slightly more than a
// factor of two, while roughly doubling generated instructions).
package census

import (
	"fmt"
	"strings"

	"multics/internal/answering"
	"multics/internal/hw"
	"multics/internal/linker"
	"multics/internal/netmux"
	"multics/internal/sysinit"
)

// A Module is one body of supervisor code in the inventory.
type Module struct {
	Name string
	// Lines is actual source lines in the module's Language.
	Lines    int
	Language hw.Language
	// Ring 0 modules are the supervisor proper; the answering
	// service runs in a trusted process outside ring zero but must
	// be counted in the kernel.
	Ring int
	// Entries is the module's internal entry points; UserGates of
	// them are callable from the user domain.
	Entries   int
	UserGates int
	// InKernel is false once a project removes the module from the
	// trusted base.
	InKernel bool
}

// An Inventory is a full census of the kernel at one moment.
type Inventory struct {
	Modules []Module
}

// StartInventory is the September-1973-style census the project
// started from: the equivalent of 54,000 lines — 44,000 source lines
// within ring zero (36,000 PL/I-equivalent once the ~16,000 assembly
// lines are discounted at the recoding factor) plus the 10,000-line
// answering service — with roughly 1,200 supervisor entry points of
// which 157 were user-callable gates.
func StartInventory() Inventory {
	return Inventory{Modules: []Module{
		{Name: "page-control", Lines: 4000, Language: hw.ASM, Ring: 0, Entries: 90, UserGates: 2, InKernel: true},
		{Name: "traffic-control", Lines: 4000, Language: hw.ASM, Ring: 0, Entries: 110, UserGates: 6, InKernel: true},
		{Name: "fault-and-interrupt", Lines: 8000, Language: hw.ASM, Ring: 0, Entries: 160, UserGates: 4, InKernel: true},
		{Name: "segment-control", Lines: 5000, Language: hw.PLI, Ring: 0, Entries: 140, UserGates: 12, InKernel: true},
		{Name: "directory-control", Lines: 6000, Language: hw.PLI, Ring: 0, Entries: 230, UserGates: 46, InKernel: true},
		{Name: "address-space-control", Lines: 3000, Language: hw.PLI, Ring: 0, Entries: 120, UserGates: 18, InKernel: true},
		{Name: "dynamic-linker", Lines: 2000, Language: hw.PLI, Ring: 0, Entries: 30, UserGates: 17, InKernel: true},
		{Name: "name-management", Lines: 1000, Language: hw.PLI, Ring: 0, Entries: 25, UserGates: 10, InKernel: true},
		{Name: "network-io", Lines: 7000, Language: hw.PLI, Ring: 0, Entries: 150, UserGates: 22, InKernel: true},
		{Name: "initialization", Lines: 2000, Language: hw.PLI, Ring: 0, Entries: 45, UserGates: 0, InKernel: true},
		{Name: "miscellaneous-supervisor", Lines: 2000, Language: hw.PLI, Ring: 0, Entries: 100, UserGates: 20, InKernel: true},
		{Name: "answering-service", Lines: answering.MonolithicLines, Language: hw.PLI, Ring: 4, Entries: 120, UserGates: 0, InKernel: true},
	}}
}

// clone copies the inventory so projects do not alias.
func (inv Inventory) clone() Inventory {
	return Inventory{Modules: append([]Module(nil), inv.Modules...)}
}

// find locates a module index by name.
func (inv Inventory) find(name string) int {
	for i := range inv.Modules {
		if inv.Modules[i].Name == name {
			return i
		}
	}
	return -1
}

// KernelLines is the headline number: actual source lines currently
// counted in the kernel (ring zero plus trusted processes).
func (inv Inventory) KernelLines() int {
	n := 0
	for _, m := range inv.Modules {
		if m.InKernel {
			n += m.Lines
		}
	}
	return n
}

// RingZeroLines counts only the ring-zero portion.
func (inv Inventory) RingZeroLines() int {
	n := 0
	for _, m := range inv.Modules {
		if m.InKernel && m.Ring == 0 {
			n += m.Lines
		}
	}
	return n
}

// PLIEquivalentLines applies the paper's measure: assembly counts at
// the factor it would shrink to if recoded in PL/I.
func (inv Inventory) PLIEquivalentLines() int {
	n := 0
	for _, m := range inv.Modules {
		if !m.InKernel {
			continue
		}
		if m.Language == hw.ASM {
			n += m.Lines / 2
		} else {
			n += m.Lines
		}
	}
	return n
}

// Entries reports the ring-zero supervisor's entry points (the
// paper's ~1,200) and the user-callable gates among them (157).
func (inv Inventory) Entries() (entries, gates int) {
	for _, m := range inv.Modules {
		if m.InKernel && m.Ring == 0 {
			entries += m.Entries
			gates += m.UserGates
		}
	}
	return entries, gates
}

// A Project is one re-engineering experiment with its effect on the
// inventory.
type Project struct {
	Name string
	// Reduction is the kernel-line reduction the paper's table
	// credits to the project.
	Reduction int
	// Apply transforms the inventory.
	Apply func(Inventory) Inventory
	// Note is the paper's one-line summary.
	Note string
}

// removeModule marks a module out of the kernel, optionally leaving a
// residue module of the given size inside.
func removeModule(name string, residueLines int) func(Inventory) Inventory {
	return func(inv Inventory) Inventory {
		out := inv.clone()
		i := out.find(name)
		if i < 0 {
			return out
		}
		if residueLines == 0 {
			out.Modules[i].InKernel = false
			return out
		}
		m := out.Modules[i]
		frac := float64(residueLines) / float64(m.Lines)
		out.Modules[i].Lines = residueLines
		out.Modules[i].Entries = int(float64(m.Entries)*frac + 0.5)
		out.Modules[i].UserGates = int(float64(m.UserGates)*frac + 0.5)
		return out
	}
}

// Projects returns the six projects in the order of the paper's
// table. The reduction figures are the paper's; tests verify the
// transformations produce exactly them.
func Projects() []Project {
	return []Project{
		{
			Name:      "Linker",
			Reduction: linker.KernelLines(linker.InKernel) - linker.KernelLines(linker.UserRing),
			Apply:     removeModule("dynamic-linker", 0),
			Note:      "dynamic linker extracted to the user ring (Janson 1974): -5% object code, -2.5% entries, -11% user gates",
		},
		{
			Name:      "Name Manager",
			Reduction: 1000,
			Apply:     removeModule("name-management", 0),
			Note:      "pathname expansion moved above the search primitive (Bratt 1975); the algorithm shrank by a factor of four outside the kernel",
		},
		{
			Name:      "Answering Service",
			Reduction: answering.KernelLines(answering.Monolithic) - answering.KernelLines(answering.Split),
			Apply:     removeModule("answering-service", answering.SplitTrustedLines),
			Note:      "login and accounting split; fewer than 1,000 of 10,000 lines need be trusted (Montgomery 1976)",
		},
		{
			Name:      "Network I/O",
			Reduction: netmux.KernelLines(netmux.PerNetworkKernel, 2) - 1000,
			Apply:     removeModule("network-io", 1000),
			Note:      "per-network handlers replaced by a generic demultiplexer; 7,000 lines shrink below 1,000 (Ciccarelli 1977)",
		},
		{
			Name:      "Initialization",
			Reduction: sysinit.OldPlan().KernelLines() - sysinit.NewPlan().KernelLines(),
			Apply:     removeModule("initialization", 0),
			Note:      "configuration work moved to a user process of a previous incarnation (Luniewski)",
		},
		{
			Name:      "Exclusive use of PL/I",
			Reduction: 8000,
			Apply: func(inv Inventory) Inventory {
				out := inv.clone()
				for i := range out.Modules {
					if out.Modules[i].InKernel && out.Modules[i].Language == hw.ASM {
						out.Modules[i].Lines /= 2
						out.Modules[i].Language = hw.PLI
					}
				}
				return out
			},
			Note: "assembly recoded in PL/I: source halves, generated instructions roughly double (Huber 1976)",
		},
	}
}

// A TableRow is one line of the size table.
type TableRow struct {
	Name      string
	Reduction int
}

// Table is the regenerated size accounting.
type Table struct {
	StartRingZero  int
	StartAnswering int
	StartTotal     int
	Rows           []TableRow
	TotalReduction int
	Final          int
}

// SizeTable applies every project to the starting inventory and
// regenerates the paper's table.
func SizeTable() Table {
	inv := StartInventory()
	t := Table{
		StartRingZero:  inv.RingZeroLines(),
		StartAnswering: inv.KernelLines() - inv.RingZeroLines(),
		StartTotal:     inv.KernelLines(),
	}
	for _, p := range Projects() {
		before := inv.KernelLines()
		inv = p.Apply(inv)
		got := before - inv.KernelLines()
		t.Rows = append(t.Rows, TableRow{Name: p.Name, Reduction: got})
		t.TotalReduction += got
	}
	t.Final = inv.KernelLines()
	return t
}

// FinalInventory applies every project and returns the resulting
// inventory.
func FinalInventory() Inventory {
	inv := StartInventory()
	for _, p := range Projects() {
		inv = p.Apply(inv)
	}
	return inv
}

// String renders the table in the paper's layout.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel Size, Start of Project\n")
	fmt.Fprintf(&b, "  %5dK ring 0\n", t.StartRingZero/1000)
	fmt.Fprintf(&b, "  %5dK Answering Service\n", t.StartAnswering/1000)
	fmt.Fprintf(&b, "  %5dK TOTAL\n\nReductions\n", t.StartTotal/1000)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-22s %2dK\n", r.Name, r.Reduction/1000)
	}
	fmt.Fprintf(&b, "  %-22s %2dK\n", "TOTAL", t.TotalReduction/1000)
	fmt.Fprintf(&b, "\nRemaining kernel: %dK (%d%% of the start)\n", t.Final/1000, 100*t.Final/t.StartTotal)
	return b.String()
}

// EntryStats reproduces the paper's entry-point observations around
// the linker removal.
type EntryStats struct {
	StartEntries, StartGates int
	AfterEntries, AfterGates int
	EntryDropPercent         float64
	GateDropPercent          float64
}

// LinkerEntryStats computes the effect of removing the dynamic linker
// on the supervisor's interface.
func LinkerEntryStats() EntryStats {
	inv := StartInventory()
	e0, g0 := inv.Entries()
	after := Projects()[0].Apply(inv)
	e1, g1 := after.Entries()
	return EntryStats{
		StartEntries: e0, StartGates: g0,
		AfterEntries: e1, AfterGates: g1,
		EntryDropPercent: 100 * float64(e0-e1) / float64(e0),
		GateDropPercent:  100 * float64(g0-g1) / float64(g0),
	}
}

// FileStoreSpecialization estimates the further reduction from
// specializing the finished kernel to a network-connected file store:
// the paper's best estimate is "at most another 15 to 25%", because
// most removable function is already gone. We model it as removing
// the residual traffic-control generality and part of the
// miscellaneous supervisor.
func FileStoreSpecialization() (percent float64) {
	inv := FinalInventory()
	total := inv.KernelLines()
	removable := 0
	for _, m := range inv.Modules {
		if !m.InKernel {
			continue
		}
		switch m.Name {
		case "traffic-control":
			removable += m.Lines * 3 / 4 // general-purpose scheduling
		case "miscellaneous-supervisor":
			removable += m.Lines
		case "fault-and-interrupt":
			removable += m.Lines / 4 // user-program fault surface
		}
	}
	return 100 * float64(removable) / float64(total)
}
