package census

import (
	"strings"
	"testing"

	"multics/internal/hw"
)

func TestStartInventoryMatchesPaper(t *testing.T) {
	inv := StartInventory()
	if got := inv.RingZeroLines(); got != 44000 {
		t.Errorf("ring zero source lines = %d, want 44,000", got)
	}
	if got := inv.KernelLines(); got != 54000 {
		t.Errorf("total kernel lines = %d, want 54,000", got)
	}
	if got := inv.PLIEquivalentLines() - (inv.KernelLines() - inv.RingZeroLines()); got != 36000 {
		t.Errorf("ring-zero PL/I-equivalent = %d, want 36,000", got)
	}
	entries, gates := inv.Entries()
	if entries != 1200 {
		t.Errorf("supervisor entry points = %d, want ~1,200", entries)
	}
	if gates != 157 {
		t.Errorf("user gates = %d, want 157", gates)
	}
	// About 10% of the module count, and the hot paths, are
	// assembly (the draft's 10% and its 44K-vs-36K arithmetic are
	// in tension; we keep the table's arithmetic).
	asm := 0
	for _, m := range inv.Modules {
		if m.Language == hw.ASM {
			asm += m.Lines
		}
	}
	if asm != 16000 {
		t.Errorf("assembly lines = %d, want 16,000 (so recoding saves the table's 8K)", asm)
	}
}

func TestSizeTableMatchesPaper(t *testing.T) {
	tab := SizeTable()
	if tab.StartRingZero != 44000 || tab.StartAnswering != 10000 || tab.StartTotal != 54000 {
		t.Fatalf("start = %d + %d = %d", tab.StartRingZero, tab.StartAnswering, tab.StartTotal)
	}
	want := map[string]int{
		"Linker":                2000,
		"Name Manager":          1000,
		"Answering Service":     9000,
		"Network I/O":           6000,
		"Initialization":        2000,
		"Exclusive use of PL/I": 8000,
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if want[r.Name] != r.Reduction {
			t.Errorf("%s reduction = %d, want %d", r.Name, r.Reduction, want[r.Name])
		}
	}
	if tab.TotalReduction != 28000 {
		t.Errorf("total reduction = %d, want 28,000", tab.TotalReduction)
	}
	if tab.Final != 26000 {
		t.Errorf("final kernel = %d, want 26,000 (roughly half)", tab.Final)
	}
	if tab.Final*2 > tab.StartTotal {
		t.Error("the combined effect should cut the kernel roughly in half")
	}
}

func TestDeclaredReductionsMatchRealized(t *testing.T) {
	// Every project's declared (paper) reduction must equal what its
	// transformation actually removes.
	inv := StartInventory()
	for _, p := range Projects() {
		before := inv.KernelLines()
		inv = p.Apply(inv)
		got := before - inv.KernelLines()
		if got != p.Reduction {
			t.Errorf("%s: realized %d, declared %d", p.Name, got, p.Reduction)
		}
	}
}

func TestLinkerEntryStats(t *testing.T) {
	st := LinkerEntryStats()
	if st.StartEntries != 1200 || st.StartGates != 157 {
		t.Fatalf("start = %d entries, %d gates", st.StartEntries, st.StartGates)
	}
	// "it only removed 2 1/2% of the entry points inside the
	// kernel ... but it eliminated 11% of the entry points from the
	// user domain into the kernel."
	if st.EntryDropPercent < 2 || st.EntryDropPercent > 3 {
		t.Errorf("entry drop = %.1f%%, want about 2.5%%", st.EntryDropPercent)
	}
	if st.GateDropPercent < 10 || st.GateDropPercent > 12 {
		t.Errorf("gate drop = %.1f%%, want about 11%%", st.GateDropPercent)
	}
}

func TestFinalInventoryComposition(t *testing.T) {
	inv := FinalInventory()
	// Nothing assembly remains.
	for _, m := range inv.Modules {
		if m.InKernel && m.Language == hw.ASM {
			t.Errorf("module %s still assembly", m.Name)
		}
	}
	// The linker, name manager and initialization are gone.
	for _, name := range []string{"dynamic-linker", "name-management", "initialization"} {
		i := inv.find(name)
		if i >= 0 && inv.Modules[i].InKernel {
			t.Errorf("module %s still in the kernel", name)
		}
	}
	// The answering service and network residues are small.
	for _, c := range []struct {
		name string
		max  int
	}{{"answering-service", 1000}, {"network-io", 1000}} {
		i := inv.find(c.name)
		if i < 0 {
			t.Fatalf("module %s missing", c.name)
		}
		if m := inv.Modules[i]; m.InKernel && m.Lines > c.max {
			t.Errorf("%s residue = %d lines, want <= %d", c.name, m.Lines, c.max)
		}
	}
}

func TestConclusionNumbers(t *testing.T) {
	// "the kernel of a general-purpose system seems still to be a
	// large program--30,000 lines of source code in this case
	// study" (the table says 26K; both round to 'roughly half of
	// 54K'). And specialization to a file store buys at most
	// another 15-25%.
	tab := SizeTable()
	if tab.Final < 24000 || tab.Final > 30000 {
		t.Errorf("final kernel = %d, want in the 24-30K band", tab.Final)
	}
	pct := FileStoreSpecialization()
	if pct < 15 || pct > 25 {
		t.Errorf("file-store specialization = %.0f%%, want 15-25%%", pct)
	}
}

func TestTableRendering(t *testing.T) {
	s := SizeTable().String()
	for _, want := range []string{"44K ring 0", "10K Answering Service", "54K TOTAL", "Linker", "28K", "26K"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering missing %q:\n%s", want, s)
		}
	}
}

func TestCloneDoesNotAlias(t *testing.T) {
	a := StartInventory()
	b := a.clone()
	b.Modules[0].Lines = 1
	if a.Modules[0].Lines == 1 {
		t.Error("clone aliases modules")
	}
	if a.find("no-such-module") != -1 {
		t.Error("find invented a module")
	}
}
